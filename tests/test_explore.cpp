#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "explore/explore.hpp"
#include "util/error.hpp"

using namespace jungle;
using namespace jungle::explore;

// Smoke tests for the fault-schedule explorer itself: the replay format
// round-trips, a depth-bounded enumeration over the triple-plummer
// experiment finds no invariant violations, and replaying one schedule
// twice is bit-for-bit deterministic (the property that makes any failing
// schedule a one-line repro).

namespace {

std::string example_ini(const std::string& name) {
  std::string path =
      std::string(JUNGLE_SOURCE_DIR) + "/examples/experiments/" + name;
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

util::Config triple_plummer() {
  return util::Config::parse(example_ini("triple-plummer.ini"));
}

}  // namespace

TEST(Explore, ScheduleFormatRoundTrips) {
  const std::string text =
      "ckpt.commit@1#0=crash:node0;recover.replace@-1#2=link:metro-wan";
  Schedule schedule = parse_schedule(text);
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0].point, amuse::faultpoint::Point::ckpt_commit);
  EXPECT_EQ(schedule[0].iteration, 1);
  EXPECT_EQ(schedule[0].occurrence, 0);
  EXPECT_EQ(schedule[0].kind, Injection::Kind::crash);
  EXPECT_EQ(schedule[0].victim, "node0");
  EXPECT_EQ(schedule[1].point, amuse::faultpoint::Point::recover_replace);
  EXPECT_EQ(schedule[1].iteration, -1);
  EXPECT_EQ(schedule[1].occurrence, 2);
  EXPECT_EQ(schedule[1].kind, Injection::Kind::link);
  EXPECT_EQ(schedule[1].victim, "metro-wan");
  EXPECT_EQ(format_schedule(schedule), text);

  EXPECT_THROW(parse_schedule("nonsense"), ConfigError);
  EXPECT_THROW(parse_schedule("no.such.point@0#0=crash:x"), ConfigError);
  EXPECT_THROW(parse_schedule("step.evolve@0#0=melt:x"), ConfigError);
  EXPECT_THROW(parse_schedule("step.evolve@0#0=crash:"), ConfigError);
}

TEST(Explore, ProcessTierKindsRoundTrip) {
  // The PR 8 victim tiers survive the replay format: a failing schedule
  // that kills a daemon or proxy replays as exactly that.
  const std::string text =
      "step.evolve@0#0=daemon:edge;step.evolve@1#0=proxy:node0;"
      "ckpt.capture@1#0=worker:node0;ckpt.commit@1#1=timer:node1";
  Schedule schedule = parse_schedule(text);
  ASSERT_EQ(schedule.size(), 4u);
  EXPECT_EQ(schedule[0].kind, Injection::Kind::daemon);
  EXPECT_EQ(schedule[0].victim, "edge");
  EXPECT_EQ(schedule[1].kind, Injection::Kind::proxy);
  EXPECT_EQ(schedule[2].kind, Injection::Kind::worker);
  EXPECT_EQ(schedule[3].kind, Injection::Kind::timer);
  EXPECT_EQ(schedule[3].victim, "node1");
  EXPECT_EQ(format_schedule(schedule), text);
}

TEST(Explore, GoldenRunIsHealthyAndListsVictims) {
  Options options;
  options.iterations = 2;
  Explorer explorer(triple_plummer(), options);
  const RunReport& gold = explorer.golden();
  EXPECT_TRUE(gold.completed) << gold.error;
  EXPECT_EQ(gold.restarts, 0);
  EXPECT_EQ(gold.fired, 0);
  EXPECT_NE(gold.final_digest, 0u);
  ASSERT_EQ(gold.commits.size(), 2u);  // one committed checkpoint per step
  // Candidate victims: every host but the client for the crash/timer/
  // process tiers, the WAN link, and the client *only* as a daemon victim
  // (killing the daemon process is survivable; crashing the script's
  // machine is not a protocol scenario).
  bool has_node0 = false, has_wan = false, has_client_crash = false;
  bool has_daemon = false, has_proxy = false, has_worker = false;
  bool has_timer = false;
  for (const Injection& victim : explorer.candidate_victims()) {
    has_node0 |= victim.kind == Injection::Kind::crash &&
                 victim.victim == "node0";
    has_wan |= victim.kind == Injection::Kind::link &&
               victim.victim == "metro-wan";
    has_client_crash |= victim.kind == Injection::Kind::crash &&
                        victim.victim == "edge";
    has_daemon |= victim.kind == Injection::Kind::daemon &&
                  victim.victim == "edge";
    has_proxy |= victim.kind == Injection::Kind::proxy;
    has_worker |= victim.kind == Injection::Kind::worker;
    has_timer |= victim.kind == Injection::Kind::timer;
  }
  EXPECT_TRUE(has_node0);
  EXPECT_TRUE(has_wan);
  EXPECT_FALSE(has_client_crash);
  EXPECT_TRUE(has_daemon);
  EXPECT_TRUE(has_proxy);
  EXPECT_TRUE(has_worker);
  EXPECT_TRUE(has_timer);
}

TEST(Explore, VictimKindFilterRestrictsTheSet) {
  Options options;
  options.iterations = 2;
  options.victim_kinds = {Injection::Kind::daemon, Injection::Kind::proxy};
  Explorer explorer(triple_plummer(), options);
  ASSERT_FALSE(explorer.candidate_victims().empty());
  for (const Injection& victim : explorer.candidate_victims()) {
    EXPECT_TRUE(victim.kind == Injection::Kind::daemon ||
                victim.kind == Injection::Kind::proxy);
  }
}

TEST(Explore, DepthBoundedEnumerationFindsNoViolations) {
  // A budgeted single-fault slice of the full exploration (CI runs the
  // deeper sweep): every run must recover onto the golden trajectory.
  Options options;
  options.iterations = 2;
  options.max_faults = 1;
  options.max_schedules = 10;
  Explorer explorer(triple_plummer(), options);
  Explorer::Summary summary = explorer.explore();
  EXPECT_EQ(summary.schedules, 10);
  for (const Violation& violation : summary.violations) {
    ADD_FAILURE() << violation.schedule << ": " << violation.what;
  }
}

TEST(Explore, ReplayIsDeterministic) {
  // The one-line-repro property: the same schedule on a fresh testbed
  // lands on the same bits, twice.
  Options options;
  options.iterations = 2;
  Explorer explorer(triple_plummer(), options);
  Schedule schedule = parse_schedule("step.evolve@1#0=crash:node0");
  RunReport first = explorer.run_schedule(schedule);
  RunReport second = explorer.run_schedule(schedule);
  ASSERT_TRUE(first.completed) << first.error;
  ASSERT_TRUE(second.completed) << second.error;
  EXPECT_EQ(first.fired, 1);
  EXPECT_EQ(second.fired, 1);
  EXPECT_EQ(first.final_digest, second.final_digest);
  EXPECT_EQ(first.energy, second.energy);
  EXPECT_EQ(first.restarts, second.restarts);
  EXPECT_EQ(first.commits, second.commits);
  EXPECT_EQ(first.placement, second.placement);
  EXPECT_EQ(first.resume_hash, second.resume_hash);
  EXPECT_EQ(first.live_processes, second.live_processes);

  // And the recovered run is on the golden trajectory.
  std::vector<Violation> violations;
  explorer.check(schedule, first, violations);
  for (const Violation& violation : violations) {
    ADD_FAILURE() << violation.schedule << ": " << violation.what;
  }
}
