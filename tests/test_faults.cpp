#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "amuse/experiment.hpp"
#include "amuse/faultpoint.hpp"
#include "amuse/faults.hpp"
#include "sim/network.hpp"

using namespace jungle;
using namespace jungle::amuse;
using namespace jungle::amuse::experiment;

// Standalone regression cases for interleavings the fault-schedule explorer
// (src/explore/) found and this PR fixed. Each test installs a faultpoint
// hook directly — no Explorer involved — so the cases stay runnable and
// debuggable as ordinary unit tests. The invariant throughout: whatever the
// schedule breaks, recovery must land the physics bit-for-bit back on the
// fault-free trajectory (same checkpoint-digest hash family as the
// protocol itself) without leaking simulated processes.

namespace {

std::string example_ini(const std::string& name) {
  std::string path =
      std::string(JUNGLE_SOURCE_DIR) + "/examples/experiments/" + name;
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// One injection: crash a host (or cut a WAN link) the `occurrence`-th time
/// the run reaches (point, iteration). Iteration -1 addresses points hit
/// outside a bridge step (recovery internals, worker spawn); occurrence -1
/// means "the first reach after the previous shot fired" — handy for points
/// like spawn.worker that also fire during startup, where the absolute
/// occurrence index depends on the topology rather than the scenario.
struct Shot {
  faultpoint::Point point;
  int iteration = 0;
  int occurrence = 0;
  bool cut_link = false;
  std::string victim;
};

struct Outcome {
  bool completed = false;
  std::string error;
  int restarts = 0;
  int fired = 0;
  std::uint64_t digest = 0;
  double energy = 0.0;
  std::size_t live = 0;
};

Outcome run_triple_plummer(const std::vector<Shot>& shots) {
  util::Config config = util::Config::parse(example_ini("triple-plummer.ini"));
  ExperimentSpec spec = ExperimentSpec::from_config(config);
  spec.checkpointing = true;

  JungleTestbed bed(config);
  Outcome out;
  std::map<std::pair<int, int>, int> seen;
  std::size_t next = 0;
  {
    faultpoint::ScopedHook guard([&](const faultpoint::Context& ctx) {
      int occurrence = seen[{static_cast<int>(ctx.point), ctx.iteration}]++;
      if (next >= shots.size()) return;
      const Shot& shot = shots[next];
      if (shot.point != ctx.point || shot.iteration != ctx.iteration) return;
      if (shot.occurrence >= 0 && shot.occurrence != occurrence) return;
      ++next;
      if (shot.cut_link) {
        bed.network().set_link_down(shot.victim, true);
      } else {
        sim::Host* victim = bed.network().find_host(shot.victim);
        if (victim != nullptr && victim->is_up()) victim->crash();
      }
    });
    try {
      Result result = run_experiment(bed, spec);
      out.completed = true;
      out.restarts = result.restarts;
      // Digest the final states through the checkpoint layer's own hash so
      // "matches the fault-free run" means bit-for-bit, not approximately.
      GraphCheckpoint fin;
      fin.epoch = result.iterations;
      fin.resize(result.models.size());
      for (std::size_t i = 0; i < result.models.size(); ++i) {
        const ModelResult& model = result.models[i];
        if (model.role == sched::Role::gravity)
          fin.gravity[i].state = model.gravity;
        else if (model.role == sched::Role::hydro)
          fin.hydro[i].state = model.hydro;
        out.energy += model.kinetic + model.potential + model.thermal;
      }
      out.digest = digest(fin);
    } catch (const std::exception& error) {
      out.error = error.what();
    }
  }
  out.fired = static_cast<int>(next);
  out.live = bed.simulation().live_processes();
  return out;
}

const Outcome& golden() {
  static Outcome gold = run_triple_plummer({});
  return gold;
}

void expect_recovered_on_golden(const Outcome& out) {
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_EQ(out.digest, golden().digest);
  EXPECT_NEAR(out.energy, golden().energy,
              1e-8 * std::max(1.0, std::fabs(golden().energy)));
  // Crashed hosts take their own processes down, so fewer survivors than
  // the golden run is fine; more means recovery leaked one.
  EXPECT_LE(out.live, golden().live);
}

}  // namespace

TEST(Faults, FaultFreeBaselineIsHealthy) {
  const Outcome& gold = golden();
  ASSERT_TRUE(gold.completed) << gold.error;
  EXPECT_EQ(gold.restarts, 0);
  EXPECT_NE(gold.digest, 0u);
  EXPECT_LT(gold.energy, 0.0);  // three bound clusters
}

TEST(Faults, CrashDuringCommitRollsBackAtomically) {
  // Explorer schedule "ckpt.commit@0#0=crash:node0": the field worker's
  // host dies inside the per-model commit loop of epoch 1, with a bridge
  // step still to run. The graph-wide atomic commit must not leave a
  // half-staged snapshot behind: the next step's death notice triggers a
  // re-place and a rollback onto a *consistent* epoch, landing the replay
  // on the golden trajectory — a partial commit would leave mixed-epoch
  // checkpoints and a diverged final digest.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::ckpt_commit, 0, 0, false, "node0"}});
  EXPECT_EQ(out.fired, 1);
  EXPECT_GE(out.restarts, 1);
  expect_recovered_on_golden(out);
}

TEST(Faults, CrashDuringCaptureReplaysBitExact) {
  // Explorer schedule "ckpt.capture@0#0=crash:node0": death while the very
  // first checkpoint is being captured forces a rollback to the initial
  // conditions. This is the interleaving that exposed the corrector-force
  // hole: a restored integrator that re-evaluates forces instead of
  // carrying the checkpointed ones diverges by roundoff in its first step.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::ckpt_capture, 0, 0, false, "node0"}});
  EXPECT_EQ(out.fired, 1);
  EXPECT_GE(out.restarts, 1);
  expect_recovered_on_golden(out);
}

TEST(Faults, DoubleFaultDuringReplaceRecovers) {
  // Explorer schedule "step.evolve@1#0=crash:node0;
  // recover.replace@-1#0=crash:node1": the second cluster node dies while
  // recovery is still re-placing the victims of the first crash. The
  // replace loop must fold the new death into its exclusions and keep
  // going, not wedge on a worker it was about to start.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::step_evolve, 1, 0, false, "node0"},
       Shot{faultpoint::Point::recover_replace, -1, 0, false, "node1"}});
  EXPECT_EQ(out.fired, 2);
  EXPECT_GE(out.restarts, 1);
  expect_recovered_on_golden(out);
}

TEST(Faults, WanCutMidStepBreaksIdleConnectionsToo) {
  // Explorer schedule "step.evolve@0#0=link:metro-wan": cutting the only
  // WAN link strands the cluster-side workers. Connections with a frame in
  // flight notice via retry exhaustion, but *idle* pipes (and receive-port
  // readers parked behind them) used to block forever — the leaked-process
  // hole. The link watcher's keepalive timeout must break them so every
  // stranded reader unwinds with a ConnectError and recovery proceeds.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::step_evolve, 0, 0, true, "metro-wan"}});
  EXPECT_EQ(out.fired, 1);
  EXPECT_GE(out.restarts, 1);
  expect_recovered_on_golden(out);
}

TEST(Faults, CrashDuringReplaceSpawnRetries) {
  // Explorer schedule "spawn.worker@-1#0=crash:node1" layered after a
  // first crash: the daemon's bounded spawn retry must absorb a resource
  // dying at the worst moment — exactly when a replacement is being
  // started on it — and fall back to another node.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::step_top_kick, 1, 0, false, "node0"},
       Shot{faultpoint::Point::spawn_worker, -1, -1, false, "node1"}});
  EXPECT_GE(out.fired, 1);  // second shot only fires if recovery respawns
  EXPECT_GE(out.restarts, 1);
  expect_recovered_on_golden(out);
}
