#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <functional>

#include "amuse/experiment.hpp"
#include "amuse/faultpoint.hpp"
#include "amuse/faults.hpp"
#include "obs/metrics.hpp"
#include "sim/network.hpp"

using namespace jungle;
using namespace jungle::amuse;
using namespace jungle::amuse::experiment;

// Standalone regression cases for interleavings the fault-schedule explorer
// (src/explore/) found and this PR fixed. Each test installs a faultpoint
// hook directly — no Explorer involved — so the cases stay runnable and
// debuggable as ordinary unit tests. The invariant throughout: whatever the
// schedule breaks, recovery must land the physics bit-for-bit back on the
// fault-free trajectory (same checkpoint-digest hash family as the
// protocol itself) without leaking simulated processes.

namespace {

std::string example_ini(const std::string& name) {
  std::string path =
      std::string(JUNGLE_SOURCE_DIR) + "/examples/experiments/" + name;
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// One injection: crash a host (or cut a WAN link) the `occurrence`-th time
/// the run reaches (point, iteration). Iteration -1 addresses points hit
/// outside a bridge step (recovery internals, worker spawn); occurrence -1
/// means "the first reach after the previous shot fired" — handy for points
/// like spawn.worker that also fire during startup, where the absolute
/// occurrence index depends on the topology rather than the scenario.
struct Shot {
  faultpoint::Point point;
  int iteration = 0;
  int occurrence = 0;
  bool cut_link = false;
  std::string victim;
  /// Process-tier victim (PR 8): when non-empty, kill this process on the
  /// victim host (e.g. "amuse-daemon", "job", "worker") instead of
  /// crashing the machine — the supervised in-place recovery tier.
  std::string kill_process;
};

struct Outcome {
  bool completed = false;
  std::string error;
  int restarts = 0;
  int fired = 0;
  std::uint64_t digest = 0;
  double energy = 0.0;
  std::size_t live = 0;
  std::string placement;
  // Deltas of the process-global fault/RPC counters across this run.
  double rollbacks = 0.0;
  double rpc_retries = 0.0;
  double supervisor_restarts = 0.0;
  double degraded_iterations = 0.0;
};

Outcome run_triple_plummer(
    const std::vector<Shot>& shots,
    const std::function<void(ExperimentSpec&)>& mutate = {}) {
  util::Config config = util::Config::parse(example_ini("triple-plummer.ini"));
  ExperimentSpec spec = ExperimentSpec::from_config(config);
  spec.checkpointing = true;
  if (mutate) mutate(spec);

  double rollbacks0 = obs::metrics::counter_value("fault.rollbacks");
  double retries0 = obs::metrics::counter_value("rpc.retries");
  double restarts0 = obs::metrics::counter_value("fault.supervisor_restarts");
  double degraded0 = obs::metrics::counter_value("fault.degraded_iterations");

  JungleTestbed bed(config);
  Outcome out;
  std::map<std::pair<int, int>, int> seen;
  std::size_t next = 0;
  {
    faultpoint::ScopedHook guard([&](const faultpoint::Context& ctx) {
      int occurrence = seen[{static_cast<int>(ctx.point), ctx.iteration}]++;
      if (next >= shots.size()) return;
      const Shot& shot = shots[next];
      if (shot.point != ctx.point || shot.iteration != ctx.iteration) return;
      if (shot.occurrence >= 0 && shot.occurrence != occurrence) return;
      ++next;
      if (shot.cut_link) {
        bed.network().set_link_down(shot.victim, true);
      } else {
        sim::Host* victim = bed.network().find_host(shot.victim);
        if (victim != nullptr && victim->is_up()) {
          if (shot.kill_process.empty()) {
            victim->crash();
          } else {
            victim->kill_process(shot.kill_process);
          }
        }
      }
    });
    try {
      Result result = run_experiment(bed, spec);
      out.completed = true;
      out.restarts = result.restarts;
      out.placement = result.placement;
      // Digest the final states through the checkpoint layer's own hash so
      // "matches the fault-free run" means bit-for-bit, not approximately.
      GraphCheckpoint fin;
      fin.epoch = result.iterations;
      fin.resize(result.models.size());
      for (std::size_t i = 0; i < result.models.size(); ++i) {
        const ModelResult& model = result.models[i];
        if (model.role == sched::Role::gravity)
          fin.gravity[i].state = model.gravity;
        else if (model.role == sched::Role::hydro)
          fin.hydro[i].state = model.hydro;
        out.energy += model.kinetic + model.potential + model.thermal;
      }
      out.digest = digest(fin);
    } catch (const std::exception& error) {
      out.error = error.what();
    }
  }
  out.fired = static_cast<int>(next);
  out.live = bed.simulation().live_processes();
  out.rollbacks = obs::metrics::counter_value("fault.rollbacks") - rollbacks0;
  out.rpc_retries = obs::metrics::counter_value("rpc.retries") - retries0;
  out.supervisor_restarts =
      obs::metrics::counter_value("fault.supervisor_restarts") - restarts0;
  out.degraded_iterations =
      obs::metrics::counter_value("fault.degraded_iterations") - degraded0;
  return out;
}

const Outcome& golden() {
  static Outcome gold = run_triple_plummer({});
  return gold;
}

void expect_recovered_on_golden(const Outcome& out) {
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_EQ(out.digest, golden().digest);
  EXPECT_NEAR(out.energy, golden().energy,
              1e-8 * std::max(1.0, std::fabs(golden().energy)));
  // Crashed hosts take their own processes down, so fewer survivors than
  // the golden run is fine; more means recovery leaked one.
  EXPECT_LE(out.live, golden().live);
}

}  // namespace

TEST(Faults, FaultFreeBaselineIsHealthy) {
  const Outcome& gold = golden();
  ASSERT_TRUE(gold.completed) << gold.error;
  EXPECT_EQ(gold.restarts, 0);
  EXPECT_NE(gold.digest, 0u);
  EXPECT_LT(gold.energy, 0.0);  // three bound clusters
}

TEST(Faults, CrashDuringCommitRollsBackAtomically) {
  // Explorer schedule "ckpt.commit@0#0=crash:node0": the field worker's
  // host dies inside the per-model commit loop of epoch 1, with a bridge
  // step still to run. The graph-wide atomic commit must not leave a
  // half-staged snapshot behind: the next step's death notice triggers a
  // re-place and a rollback onto a *consistent* epoch, landing the replay
  // on the golden trajectory — a partial commit would leave mixed-epoch
  // checkpoints and a diverged final digest.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::ckpt_commit, 0, 0, false, "node0"}});
  EXPECT_EQ(out.fired, 1);
  EXPECT_GE(out.restarts, 1);
  expect_recovered_on_golden(out);
}

TEST(Faults, CrashDuringCaptureReplaysBitExact) {
  // Explorer schedule "ckpt.capture@0#0=crash:node0": death while the very
  // first checkpoint is being captured forces a rollback to the initial
  // conditions. This is the interleaving that exposed the corrector-force
  // hole: a restored integrator that re-evaluates forces instead of
  // carrying the checkpointed ones diverges by roundoff in its first step.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::ckpt_capture, 0, 0, false, "node0"}});
  EXPECT_EQ(out.fired, 1);
  EXPECT_GE(out.restarts, 1);
  expect_recovered_on_golden(out);
}

TEST(Faults, DoubleFaultDuringReplaceRecovers) {
  // Explorer schedule "step.evolve@1#0=crash:node0;
  // recover.replace@-1#0=crash:node1": the second cluster node dies while
  // recovery is still re-placing the victims of the first crash. The
  // replace loop must fold the new death into its exclusions and keep
  // going, not wedge on a worker it was about to start.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::step_evolve, 1, 0, false, "node0"},
       Shot{faultpoint::Point::recover_replace, -1, 0, false, "node1"}});
  EXPECT_EQ(out.fired, 2);
  EXPECT_GE(out.restarts, 1);
  expect_recovered_on_golden(out);
}

TEST(Faults, WanCutMidStepBreaksIdleConnectionsToo) {
  // Explorer schedule "step.evolve@0#0=link:metro-wan": cutting the only
  // WAN link strands the cluster-side workers. Connections with a frame in
  // flight notice via retry exhaustion, but *idle* pipes (and receive-port
  // readers parked behind them) used to block forever — the leaked-process
  // hole. The link watcher's keepalive timeout must break them so every
  // stranded reader unwinds with a ConnectError and recovery proceeds.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::step_evolve, 0, 0, true, "metro-wan"}});
  EXPECT_EQ(out.fired, 1);
  EXPECT_GE(out.restarts, 1);
  expect_recovered_on_golden(out);
}

TEST(Faults, CrashDuringReplaceSpawnRetries) {
  // Explorer schedule "spawn.worker@-1#0=crash:node1" layered after a
  // first crash: the daemon's bounded spawn retry must absorb a resource
  // dying at the worst moment — exactly when a replacement is being
  // started on it — and fall back to another node.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::step_top_kick, 1, 0, false, "node0"},
       Shot{faultpoint::Point::spawn_worker, -1, -1, false, "node1"}});
  EXPECT_GE(out.fired, 1);  // second shot only fires if recovery respawns
  EXPECT_GE(out.restarts, 1);
  expect_recovered_on_golden(out);
}

// ---------------------------------------------------------------------------
// PR 8: the process-fault tier. Victims are single processes (daemon
// accept loop, worker proxy, native worker) killed while their host stays
// up; the supervisors must recover *in place* — same hosts, same placement,
// no exclusions — and land the run back on the golden bits.
// ---------------------------------------------------------------------------

TEST(Faults, DaemonKillRestartsInPlace) {
  // Kill the daemon's accept loop mid-run. Nothing is listening while the
  // supervisor's backoff runs, but connect() backlogs into the server
  // socket's mailbox, so the restart is invisible to everyone — no
  // rollback, no re-placement, identical physics.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::step_evolve, 0, 0, false, "edge",
            "amuse-daemon"}});
  EXPECT_EQ(out.fired, 1);
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_EQ(out.restarts, 0);  // host not excluded, nothing re-placed
  EXPECT_GE(out.supervisor_restarts, 1.0);
  EXPECT_EQ(out.digest, golden().digest);
  EXPECT_EQ(out.placement, golden().placement);
  EXPECT_LE(out.live, golden().live);
}

TEST(Faults, DaemonDoubleKillWithReplacementTraffic) {
  // The double-fault case from the issue: the daemon is killed once per
  // iteration (the second kill lands just after the first supervised
  // restart, doubling the backoff), and then a node crash forces a
  // re-place *through* the daemon while its second restart is still
  // pending. start_worker's connect backlogs in the accept queue until
  // the next accept-loop generation picks it up.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::step_top_kick, 0, 0, false, "edge",
            "amuse-daemon"},
       Shot{faultpoint::Point::step_top_kick, 1, 0, false, "edge",
            "amuse-daemon"},
       Shot{faultpoint::Point::step_evolve, 1, -1, false, "node0"}});
  EXPECT_GE(out.fired, 2);
  EXPECT_GE(out.restarts, 1);
  EXPECT_GE(out.supervisor_restarts, 2.0);
  expect_recovered_on_golden(out);
}

TEST(Faults, ProxyKillRecoversInPlaceWithoutReplacement) {
  // Kill the worker proxy (the gat job process) on the GPU node. The
  // daemon's per-channel supervisor redeploys it on the *same* node and
  // reports process_crash on the still-open relay; the script revives the
  // client, restores the committed state into the blank replacement and
  // replays — no exclusion, no re-placement.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::step_evolve, 1, 0, false, "node0", "job"}});
  EXPECT_EQ(out.fired, 1);
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_GE(out.restarts, 1);  // a rollback+replay, but in place
  EXPECT_GE(out.supervisor_restarts, 1.0);
  EXPECT_EQ(out.digest, golden().digest);
  EXPECT_EQ(out.placement, golden().placement);
  EXPECT_LE(out.live, golden().live);
}

TEST(Faults, WorkerKillEscalatesToSupervisedRestart) {
  // Kill the *native worker* process, not its proxy. The proxy's loopback
  // pump sees the abnormal break, escalates (aborts its registry
  // connection and unwinds the relay), the registry broadcasts died, and
  // from there recovery is the same supervised in-place path.
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::step_evolve, 1, 0, false, "node0", "worker"}});
  EXPECT_EQ(out.fired, 1);
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_GE(out.restarts, 1);
  EXPECT_GE(out.supervisor_restarts, 1.0);
  EXPECT_EQ(out.digest, golden().digest);
  EXPECT_EQ(out.placement, golden().placement);
  EXPECT_LE(out.live, golden().live);
}

TEST(Faults, LinkFlapCompletesThroughRetriesWithoutRollback) {
  // Flap the WAN link for less than the outage grace budget. Safe calls
  // ride out the outage through hop retries plus idempotent resends; no
  // worker is declared dead, nothing rolls back, and the physics is
  // untouched — only the clock stretches.
  Outcome out = run_triple_plummer({}, [](ExperimentSpec& spec) {
    spec.flap_link = "metro-wan";
    spec.flap_after_iteration = 1;
    spec.flap_down_s = 2.0;
  });
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_EQ(out.restarts, 0);
  EXPECT_EQ(out.rollbacks, 0.0);
  EXPECT_GE(out.rpc_retries, 1.0);
  EXPECT_EQ(out.digest, golden().digest);
  EXPECT_EQ(out.placement, golden().placement);
}

TEST(Faults, ProxyKillMidStripedTransferDegradesAndRecovers) {
  // Large model: its state crosses the WAN striped over parallel streams.
  // After iteration 1, most of the link's streams fail (they stay failed),
  // so every later bulk transfer runs degraded on the survivors — and in
  // the middle of the degraded checkpoint capture the proxy is killed.
  // Both machineries must compose: degraded stripes for the bytes, the
  // supervised in-place restart for the process.
  auto enlarge = [](ExperimentSpec& spec) {
    spec.models[0].n = 1400;  // 7 doubles/particle: ~78 KiB, > the 64 KiB stripe threshold
  };
  Outcome baseline = run_triple_plummer({}, enlarge);
  ASSERT_TRUE(baseline.completed) << baseline.error;
  Outcome out = run_triple_plummer(
      {Shot{faultpoint::Point::ckpt_capture, 1, 0, false, "node0", "job"}},
      [&](ExperimentSpec& spec) {
        spec.models[0].n = 1400;
        spec.flap_link = "metro-wan";
        spec.flap_after_iteration = 1;
        spec.flap_streams = 6;
        spec.flap_streams_heal_s = 0.0;  // stay failed for the rest
      });
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_EQ(out.fired, 1);
  EXPECT_GE(out.degraded_iterations, 1.0);
  EXPECT_EQ(out.digest, baseline.digest);
  EXPECT_LE(out.live, baseline.live);
}
