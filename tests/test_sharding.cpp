// Domain-decomposed gravity: shard-count independence. The physics a
// sharded model produces must not depend on K beyond roundoff — K = 1 is
// bit-identical to a plain worker (same code path by construction), K > 1
// stays inside a bounded energy-drift envelope of the unsharded run, and
// the virtual wall-clock drops as the N^2 work spreads over K nodes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "amuse/clients.hpp"
#include "amuse/experiment.hpp"
#include "amuse/ic.hpp"
#include "amuse/sharded.hpp"
#include "amuse/workers.hpp"
#include "kernels/morton.hpp"

using namespace jungle;
using namespace jungle::amuse;
using namespace jungle::amuse::experiment;
using kernels::Vec3;

namespace {

struct LocalWorld {
  sim::Simulation sim;
  sim::Network net{sim};
  smartsockets::SmartSockets sockets{net};
  sim::Host* desktop;

  LocalWorld() {
    net.add_site("vu");
    desktop = &net.add_host("desktop", "vu", 8, 10);
  }

  ~LocalWorld() { sim.shutdown(); }

  void run(std::function<void()> script) {
    desktop->spawn("script", std::move(script));
    sim.run();
  }
};

std::unique_ptr<GravityClient> local_gravity(LocalWorld& w) {
  WorkerSpec spec;
  spec.code = "phigrape";
  spec.ncores = 1;
  return std::make_unique<GravityClient>(start_local_worker(
      w.sockets, w.net, *w.desktop, *w.desktop, spec, ChannelKind::mpi));
}

bool bit_identical(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(Vec3)) == 0);
}

/// Evolve one plummer model through `shards` workers; final state + total
/// energy. K >= 1 goes through the ShardedGravityClient facade; K == 0
/// means a plain (facade-less) GravityClient — the unsharded reference.
struct ShardRun {
  GravityState state;
  double energy = 0.0;
  double energy_drift = 0.0;  // |E(t) - E(0)| / |E(0)|
};

ShardRun run_sharded(int shards, std::size_t n, double t_end) {
  LocalWorld w;
  ShardRun out;
  w.run([&] {
    util::Rng rng(42);
    auto model = ic::plummer_sphere(n, rng);
    if (shards > 1) {
      // Mirror the experiment runner: shards own contiguous Morton ranges.
      auto order = kernels::morton_order(model.position);
      model.mass = kernels::permute(
          std::span<const double>(model.mass), order);
      model.position = kernels::permute(
          std::span<const Vec3>(model.position), order);
      model.velocity = kernels::permute(
          std::span<const Vec3>(model.velocity), order);
    }
    std::unique_ptr<GravityClient> gravity;
    if (shards == 0) {
      gravity = local_gravity(w);
    } else {
      std::vector<std::unique_ptr<GravityClient>> subs;
      for (int k = 0; k < shards; ++k) subs.push_back(local_gravity(w));
      gravity = std::make_unique<ShardedGravityClient>(std::move(subs));
    }
    gravity->set_params(1e-4, 0.02);
    gravity->add_particles(model.mass, model.position, model.velocity);
    auto [k0, p0] = gravity->energies();
    // Bridge-step cadence: each evolve refreshes the ghost rows, exactly
    // like a running experiment (one giant step would starve the ghosts).
    const double dt = 1.0 / 32.0;
    for (double t = dt; t < t_end + dt / 2; t += dt) gravity->evolve(t);
    auto [k1, p1] = gravity->energies();
    out.state = gravity->get_state();
    out.energy = k1 + p1;
    out.energy_drift = std::abs((k1 + p1) - (k0 + p0)) / std::abs(k0 + p0);
    gravity->close();
  });
  return out;
}

}  // namespace

// ------------------------------------------------ facade unit invariants

TEST(Sharding, OneShardBitIdenticalToPlainWorker) {
  ShardRun plain = run_sharded(0, 128, 0.25);
  ShardRun facade = run_sharded(1, 128, 0.25);
  EXPECT_TRUE(bit_identical(plain.state.position, facade.state.position));
  EXPECT_TRUE(bit_identical(plain.state.velocity, facade.state.velocity));
  EXPECT_EQ(plain.energy, facade.energy);
}

TEST(Sharding, EnergyDriftBoundedForAllShardCounts) {
  // The ghost corrector drifts unowned rows ballistically within a step, so
  // K > 1 is an approximation — but one that must stay inside the same
  // conservation envelope the unsharded integrator is held to.
  for (int shards : {1, 2, 4}) {
    ShardRun run = run_sharded(shards, 128, 0.25);
    EXPECT_LT(run.energy_drift, 1e-2)
        << "energy drift out of envelope at K=" << shards;
  }
}

TEST(Sharding, ShardCountsAgreeOnFinalEnergy) {
  ShardRun one = run_sharded(1, 128, 0.25);
  for (int shards : {2, 4}) {
    ShardRun run = run_sharded(shards, 128, 0.25);
    EXPECT_NEAR(run.energy, one.energy, 1e-2 * std::abs(one.energy))
        << "K=" << shards << " diverged from K=1";
  }
}

TEST(Sharding, KickAndStateRoundTripThroughFacade) {
  LocalWorld w;
  w.run([&] {
    util::Rng rng(7);
    std::size_t n = 96;
    auto model = ic::plummer_sphere(n, rng);
    std::vector<std::unique_ptr<GravityClient>> subs;
    for (int k = 0; k < 3; ++k) subs.push_back(local_gravity(w));
    ShardedGravityClient gravity(std::move(subs));
    gravity.set_params(1e-4, 0.02);
    gravity.add_particles(model.mass, model.position, model.velocity);

    // A kick must land on every shard's owned rows; the merged state must
    // reflect it on the very next fetch.
    std::vector<Vec3> before = gravity.get_state().velocity;
    std::vector<Vec3> accel(n, Vec3{1.0, 0.0, 0.0});
    gravity.kick_async(accel, 0.5).get();
    const GravityState& state = gravity.get_state();
    ASSERT_EQ(state.velocity.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(state.velocity[i].x, before[i].x + 0.5, 1e-12);
    }
    gravity.close();
  });
}

// --------------------------------------------- experiment-level sharding

namespace {

Result run_experiment_with_workers(int workers, int n, int iterations) {
  ExperimentSpec spec;
  spec.name = "shard-independence";
  spec.iterations = iterations;
  ModelSpec g;
  g.name = "gravity";
  g.role = sched::Role::gravity;
  g.kernel = "phigrape";
  g.n = static_cast<std::size_t>(n);
  g.workers = workers;
  spec.models.push_back(g);
  JungleTestbed bed;
  return run_experiment(bed, spec);
}

}  // namespace

TEST(Sharding, ExperimentEnergyEnvelopeAcrossWorkerCounts) {
  double reference = 0.0;
  for (int workers : {1, 2, 4}) {
    Result result = run_experiment_with_workers(workers, 192, 2);
    const ModelResult& model = result.models.at(0);
    double energy = model.kinetic + model.potential;
    ASSERT_LT(energy, 0.0) << "cluster must stay bound at workers="
                           << workers;
    if (workers == 1) {
      reference = energy;
    } else {
      EXPECT_NEAR(energy, reference, 1e-2 * std::abs(reference))
          << "workers=" << workers;
    }
  }
}

TEST(Sharding, FourWorkersFasterThanOne) {
  Result one = run_experiment_with_workers(1, 256, 2);
  Result four = run_experiment_with_workers(4, 256, 2);
  // Acceptance: the sharded model completes measurably more iterations per
  // virtual second at the same N (ghost exchange overhead < 4x compute
  // division on the lan-dense das4-vu resource).
  EXPECT_LT(four.seconds_per_iteration, one.seconds_per_iteration * 0.75)
      << "sharding must buy real virtual wall-clock";
}

TEST(Sharding, ValidateRejectsBadWorkerCounts) {
  ExperimentSpec spec;
  spec.name = "bad";
  spec.iterations = 1;
  ModelSpec g;
  g.name = "g";
  g.role = sched::Role::gravity;
  g.n = 16;
  g.workers = 0;
  spec.models.push_back(g);
  EXPECT_THROW(spec.validate(), ConfigError);

  spec.models[0].workers = 2;
  spec.models[0].role = sched::Role::hydro;
  EXPECT_THROW(spec.validate(), ConfigError);

  spec.models[0].role = sched::Role::gravity;
  spec.models[0].kernel = "phigrape-gpu";
  EXPECT_THROW(spec.validate(), ConfigError);

  spec.models[0].kernel = "phigrape";
  EXPECT_NO_THROW(spec.validate());
}

TEST(Sharding, MortonOrderingKeepsShardsCompact) {
  // The locality invariant the decomposition relies on: walking the Morton
  // order visits spatial neighbours — the curve length (sum of successor
  // distances) is far shorter than walking the particles in draw order, so
  // any contiguous index range is a spatially coherent block.
  util::Rng rng(11);
  auto model = amuse::ic::plummer_sphere(512, rng);
  auto order = kernels::morton_order(model.position);
  auto sorted = kernels::permute(
      std::span<const Vec3>(model.position), order);
  auto curve_length = [](std::span<const Vec3> points) {
    double sum = 0.0;
    for (std::size_t i = 1; i < points.size(); ++i) {
      sum += (points[i] - points[i - 1]).norm();
    }
    return sum;
  };
  EXPECT_LT(curve_length(sorted), curve_length(model.position) * 0.5);
}
