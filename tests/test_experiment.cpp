#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "amuse/experiment.hpp"
#include "amuse/ic.hpp"
#include "amuse/scenario.hpp"

using namespace jungle;
using namespace jungle::amuse;
using namespace jungle::amuse::experiment;
using sched::Role;

namespace {

ExperimentSpec tiny_classic() {
  scenario::Options options;
  options.n_stars = 64;
  options.n_gas = 256;
  options.iterations = 2;
  return scenario::classic_spec(scenario::Kind::local_gpu, options);
}

std::string example_ini(const std::string& name) {
  std::string path =
      std::string(JUNGLE_SOURCE_DIR) + "/examples/experiments/" + name;
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

// ------------------------------------------------- spec parse + validate

TEST(Experiment, SpecIniRoundTrip) {
  const char* ini = R"(
[experiment]
name = merger
dt = 0.015625
iterations = 4
se_every = 2
seed = 7
datapath = synchronous
checkpointing = true

[model one]
role = gravity
kernel = phigrape
n = 100
ic = plummer
offset = -2 0 0
velocity = 0.1 0 0

[model two]
role = gravity
n = 150
offset = 2 0 0

[model gasdisk]
role = hydro
n = 400
total_mass = 0.5
radius = 2.0

[model tides]
role = field
kernel = fi

[model burning]
role = stellar
n = 100
of = one
feedback = gasdisk

[coupling one-two]
field = tides
a = one
b = two

[coupling one-gas]
field = tides
a = one
b = gasdisk
every = 2
)";
  ExperimentSpec spec = ExperimentSpec::from_config(util::Config::parse(ini));
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.name, "merger");
  EXPECT_DOUBLE_EQ(spec.dt, 0.015625);
  EXPECT_EQ(spec.iterations, 4);
  EXPECT_EQ(spec.datapath, Datapath::synchronous);
  EXPECT_TRUE(spec.checkpointing);
  ASSERT_EQ(spec.models.size(), 5u);
  EXPECT_EQ(spec.models[0].name, "one");
  EXPECT_EQ(spec.models[0].kernel, "phigrape");
  EXPECT_DOUBLE_EQ(spec.models[0].offset.x, -2.0);
  EXPECT_DOUBLE_EQ(spec.models[0].bulk_velocity.x, 0.1);
  EXPECT_EQ(spec.models[3].role, Role::coupler);
  EXPECT_EQ(spec.models[4].of, "one");
  ASSERT_EQ(spec.couplings.size(), 2u);
  EXPECT_EQ(spec.couplings[1].every, 2);

  // ... and the workload mirrors the graph for the scheduler.
  sched::Workload load = spec.workload();
  ASSERT_EQ(load.models.size(), 5u);
  EXPECT_EQ(load.models[1].n, 150u);
  EXPECT_TRUE(load.with_stellar_evolution);
  ASSERT_EQ(load.couplings.size(), 2u);
  EXPECT_EQ(load.couplings[1].every, 2);
  EXPECT_EQ(load.couplings[1].b, 2);  // gasdisk's slot
}

TEST(Experiment, ValidationRejectsDanglingCouplingReferences) {
  ExperimentSpec spec = tiny_classic();
  spec.couplings[0].b = "nebula";  // no such model
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = tiny_classic();
  spec.couplings[0].field = "nebula";
  EXPECT_THROW(spec.validate(), ConfigError);

  // A field model no coupling references is a typo, not a model.
  spec = tiny_classic();
  spec.couplings.clear();
  EXPECT_THROW(spec.validate(), ConfigError);

  // Coupling a system to itself is meaningless.
  spec = tiny_classic();
  spec.couplings[0].b = spec.couplings[0].a;
  EXPECT_THROW(spec.validate(), ConfigError);

  // A coupling endpoint must be a dynamic model, not the stellar code.
  spec = tiny_classic();
  spec.couplings[0].b = "se";
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(Experiment, ValidationRejectsBrokenStellarWiring) {
  ExperimentSpec spec = tiny_classic();
  for (ModelSpec& model : spec.models) {
    if (model.role == Role::stellar) model.of = "gas";  // hydro, not gravity
  }
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = tiny_classic();
  for (ModelSpec& model : spec.models) {
    if (model.role == Role::stellar) model.of.clear();
  }
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(Experiment, FaultPolicyWithoutCheckpointingIsAnError) {
  // The silent-option-loss fix: a kill switch the runner cannot honor must
  // fail validation instead of being ignored.
  ExperimentSpec spec = tiny_classic();
  ASSERT_FALSE(spec.checkpointing);
  spec.kill_host = "desktop";
  spec.kill_after_iteration = 1;
  EXPECT_THROW(spec.validate(), ConfigError);
  spec.checkpointing = true;
  EXPECT_NO_THROW(spec.validate());
  // ... and half a kill switch is equally broken.
  spec.kill_after_iteration = -1;
  EXPECT_THROW(spec.validate(), ConfigError);
  // ... as is a kill step the run never reaches.
  spec.kill_after_iteration = spec.iterations + 1;
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(Experiment, KillHostOnNonAutoplaceKindIsAnError) {
  scenario::Options options;
  options.kill_host = "lgm-node";
  options.kill_after_iteration = 1;
  EXPECT_THROW(scenario::classic_spec(scenario::Kind::jungle, options),
               ConfigError);
  EXPECT_NO_THROW(
      scenario::classic_spec(scenario::Kind::autoplace, options).validate());
}

TEST(Experiment, ValidationCatchesEmptyAndMalformedGraphs) {
  ExperimentSpec empty;
  EXPECT_THROW(empty.validate(), ConfigError);

  ExperimentSpec spec = tiny_classic();
  spec.models[0].n = 0;  // stars without particles
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = tiny_classic();
  spec.models[1].n = 32;  // the field kernel owns no particles
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = tiny_classic();
  spec.models[0].kernel = "gadget";  // wrong role for the kernel
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = tiny_classic();
  spec.models[2].name = "stars";  // duplicate name
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = tiny_classic();
  spec.models[0].ic = "gas-sphere";  // not a gravity recipe (nor a typo)
  EXPECT_THROW(spec.validate(), ConfigError);

  spec = tiny_classic();
  spec.couplings[0].every = 3;  // truncated window: 2 iterations % 3 != 0
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(Experiment, ExperimentSectionWithoutModelsIsAnError) {
  // [experiment] knobs on a bare topology INI would be silently replaced
  // by the caller's Options — option loss, so it must throw.
  const char* ini = R"(
[site home]
[host solo]
site = home
cores = 4
gflops = 0.2

[experiment]
iterations = 50
)";
  scenario::Options options;
  options.n_stars = 32;
  options.n_gas = 64;
  options.iterations = 1;
  options.with_stellar_evolution = false;
  EXPECT_THROW(
      scenario::run_scenario_config(util::Config::parse(ini), options),
      ConfigError);
}

TEST(Experiment, OptionsFaultInjectionRejectedOnGraphInis) {
  // When the INI declares its own model graph, the caller's Options only
  // parameterize the classic run — a kill switch passed there would be
  // silently dropped, so it throws instead.
  util::Config config = util::Config::parse(example_ini("triple-plummer.ini"));
  scenario::Options options;
  options.kill_host = "node0";
  options.kill_after_iteration = 1;
  EXPECT_THROW(scenario::run_scenario_config(config, options), ConfigError);
}

// ------------------------------------------- N=2 bit-identity vs old path

namespace {

/// The pre-generalization bridge, replicated call-for-call from the old
/// hard-coded stars+gas implementation (pipelined phases with client-side
/// Δv = a * dt, full SE mass arrays): the reference the generalized
/// graph bridge must reproduce bit-exactly at N=2.
struct OldBridgeReference {
  GravityClient& stars;
  HydroClient& gas;
  FieldClient& coupler;
  StellarClient* stellar;
  Bridge::Config config;
  double time = 0.0;
  int steps = 0;
  std::vector<double> zams_se, zams_dynamical;

  void cross_kick(double dt) {
    Future stars_reply = stars.request_state(state_field::coupling);
    Future gas_reply = gas.request_state(state_field::coupling);
    stars.finish_state(stars_reply, state_field::coupling);
    gas.finish_state(gas_reply, state_field::coupling);
    const GravityState& s = stars.cached_state();
    const HydroState& g = gas.cached_state();

    Future on_stars = coupler.accel_for_async(
        FieldTag::gas_on_stars, gas.coupling_sources_id(), g.mass,
        g.position, stars.position_id(), s.position);
    Future on_gas = coupler.accel_for_async(
        FieldTag::stars_on_gas, stars.coupling_sources_id(), s.mass,
        s.position, gas.position_id(), g.position);

    const std::vector<kernels::Vec3>& accel_on_stars =
        coupler.finish_accel(FieldTag::gas_on_stars, on_stars);
    std::vector<kernels::Vec3> star_kicks(accel_on_stars.size());
    for (std::size_t i = 0; i < star_kicks.size(); ++i) {
      star_kicks[i] = accel_on_stars[i] * dt;
    }
    const std::vector<kernels::Vec3>& accel_on_gas =
        coupler.finish_accel(FieldTag::stars_on_gas, on_gas);
    std::vector<kernels::Vec3> gas_kicks(accel_on_gas.size());
    for (std::size_t i = 0; i < gas_kicks.size(); ++i) {
      gas_kicks[i] = accel_on_gas[i] * dt;
    }
    // Client-side multiply, shipped as Δv (dt = 1 on the wire).
    Future star_done = stars.kick_async(star_kicks);
    Future gas_done = gas.kick_async(gas_kicks);
    star_done.get();
    gas_done.get();
  }

  void stellar_update() {
    double age = (config.t_offset + time) * config.myr_per_nbody_time;
    stellar->evolve_to(age);
    std::vector<double> se_masses = stellar->masses();
    Future reply = stars.request_state(state_field::coupling);
    const GravityState& state =
        stars.finish_state(reply, state_field::coupling);
    if (zams_dynamical.empty()) {
      zams_se = se_masses;
      zams_dynamical = state.mass;
    }
    std::vector<double> new_masses(se_masses.size());
    double wind_mass = 0.0;
    for (std::size_t i = 0; i < se_masses.size(); ++i) {
      new_masses[i] = zams_dynamical[i] * se_masses[i] / zams_se[i];
      wind_mass += std::max(0.0, state.mass[i] - new_masses[i]);
    }
    stars.set_masses(new_masses);

    Future gas_reply = gas.request_state(state_field::coupling);
    const HydroState& gas_state =
        gas.finish_state(gas_reply, state_field::coupling);
    std::vector<std::int32_t> indices;
    std::vector<double> delta_u;
    auto nearest = [&](const kernels::Vec3& where) {
      std::size_t best = 0;
      double best_r2 = 1e300;
      for (std::size_t i = 0; i < gas_state.position.size(); ++i) {
        double r2 = (gas_state.position[i] - where).norm2();
        if (r2 < best_r2) {
          best_r2 = r2;
          best = i;
        }
      }
      return static_cast<std::int32_t>(best);
    };
    if (wind_mass > 0.0 && config.wind_specific_energy > 0.0) {
      std::size_t heaviest = 0;
      for (std::size_t i = 1; i < zams_se.size(); ++i) {
        if (zams_se[i] > zams_se[heaviest]) heaviest = i;
      }
      double energy = config.feedback_efficiency * wind_mass *
                      config.wind_specific_energy;
      std::int32_t target = nearest(state.position[heaviest]);
      indices.push_back(target);
      delta_u.push_back(energy / gas_state.mass[target]);
    }
    for (std::int32_t star : stellar->supernovae()) {
      double energy = config.feedback_efficiency * config.supernova_energy;
      std::int32_t target = nearest(state.position[star]);
      indices.push_back(target);
      delta_u.push_back(energy / gas_state.mass[target]);
    }
    if (!indices.empty()) gas.inject(indices, delta_u);
  }

  void step() {
    double dt = config.dt;
    cross_kick(dt / 2.0);
    Future stars_future = stars.evolve_async(time + dt);
    Future gas_future = gas.evolve_async(time + dt);
    stars_future.get();
    gas_future.get();
    cross_kick(dt / 2.0);
    time += dt;
    ++steps;
    if (stellar != nullptr && steps % config.se_every == 0) stellar_update();
  }
};

}  // namespace

TEST(Experiment, ClassicPairBitIdenticalToOldBridgePath) {
  // Acceptance: the classic embedded cluster flowing through the
  // ExperimentSpec path (generalized N-system bridge, accel+dt kicks,
  // delta SE masses) lands bit-exactly on the old hard-coded two-system
  // pipeline. Same ICs, same worker kinds, physics compared per particle.
  scenario::Options options;
  options.n_stars = 48;
  options.n_gas = 160;
  options.iterations = 4;
  options.dt = 1.0 / 64.0;
  options.se_every = 2;

  Result via_spec = run_experiment(
      scenario::classic_spec(scenario::Kind::local_gpu, options));
  ASSERT_EQ(via_spec.models.size(), 2u);
  const GravityState& stars_spec = via_spec.models[0].gravity;
  const HydroState& gas_spec = via_spec.models[1].hydro;

  // The reference runs the same placement by hand: local workers on the
  // desktop, the old fixed call sequence.
  sim::Simulation sim;
  sim::Network net(sim);
  net.add_site("vu");
  sim::Host& desktop = net.add_host("desktop", "vu", 4, 0.15);
  desktop.set_gpu(sim::GpuSpec{"geforce-9600gt", 1.2});
  smartsockets::SmartSockets sockets(net);
  GravityState stars_ref;
  HydroState gas_ref;
  desktop.spawn("reference", [&] {
    WorkerSpec grav{.code = "phigrape-gpu"};
    WorkerSpec field{.code = "octgrav"};
    WorkerSpec hydro{.code = "gadget", .nranks = 2, .ncores = 1};
    WorkerSpec sse{.code = "sse"};
    GravityClient stars(start_local_worker(sockets, net, desktop, desktop,
                                           grav, ChannelKind::mpi));
    FieldClient coupler(start_local_worker(sockets, net, desktop, desktop,
                                           field, ChannelKind::mpi));
    HydroClient gas(start_local_worker(sockets, net, desktop, desktop, hydro,
                                       ChannelKind::mpi));
    StellarClient stellar(start_local_worker(sockets, net, desktop, desktop,
                                             sse, ChannelKind::mpi));
    // The old full-array SE mass channel.
    stellar.set_delta_exchange(false);

    util::Rng rng(options.seed);
    auto model = ic::plummer_sphere(options.n_stars, rng);
    stars.add_particles(model.mass, model.position, model.velocity);
    auto cloud = ic::gas_sphere(options.n_gas, rng, 2.0, 1.5);
    gas.add_gas(cloud.mass, cloud.position, cloud.velocity,
                cloud.internal_energy);
    auto zams = ic::salpeter_masses(options.n_stars, rng);
    zams[0] = 20.0;
    stellar.add_stars(zams);

    Bridge::Config config;
    config.dt = options.dt;
    config.se_every = options.se_every;
    config.myr_per_nbody_time = 0.47;
    config.feedback_efficiency = 0.1;
    config.wind_specific_energy = 5.0;
    config.supernova_energy = 40.0;
    OldBridgeReference bridge{stars, gas, coupler, &stellar, config};
    for (int i = 0; i < options.iterations; ++i) bridge.step();
    stars_ref = stars.get_state();
    gas_ref = gas.get_state();
    stars.close();
    gas.close();
    coupler.close();
    stellar.close();
  });
  sim.run();
  sim.shutdown();

  ASSERT_EQ(stars_ref.position.size(), stars_spec.position.size());
  for (std::size_t i = 0; i < stars_ref.position.size(); ++i) {
    EXPECT_EQ(stars_ref.mass[i], stars_spec.mass[i]) << "star " << i;
    EXPECT_EQ(stars_ref.position[i].x, stars_spec.position[i].x);
    EXPECT_EQ(stars_ref.position[i].y, stars_spec.position[i].y);
    EXPECT_EQ(stars_ref.position[i].z, stars_spec.position[i].z);
    EXPECT_EQ(stars_ref.velocity[i].x, stars_spec.velocity[i].x);
  }
  ASSERT_EQ(gas_ref.position.size(), gas_spec.position.size());
  for (std::size_t i = 0; i < gas_ref.position.size(); ++i) {
    EXPECT_EQ(gas_ref.position[i].x, gas_spec.position[i].x);
    EXPECT_EQ(gas_ref.velocity[i].x, gas_spec.velocity[i].x);
    EXPECT_EQ(gas_ref.internal_energy[i], gas_spec.internal_energy[i]);
  }
}

// --------------------------------------------- multi-system experiments

namespace {

/// Total energy of a set of gravity-model results: per-system kinetic +
/// potential (from the workers) plus the softened cross-system potential
/// the couplings mediate, computed directly from the final states.
double total_energy(const Result& result, double eps2 = 1e-4) {
  double energy = 0.0;
  for (const ModelResult& model : result.models) {
    energy += model.kinetic + model.potential;
  }
  for (std::size_t a = 0; a < result.models.size(); ++a) {
    for (std::size_t b = a + 1; b < result.models.size(); ++b) {
      const GravityState& one = result.models[a].gravity;
      const GravityState& two = result.models[b].gravity;
      for (std::size_t i = 0; i < one.mass.size(); ++i) {
        for (std::size_t j = 0; j < two.mass.size(); ++j) {
          double r = std::sqrt(
              (one.position[i] - two.position[j]).norm2() + eps2);
          energy -= one.mass[i] * two.mass[j] / r;
        }
      }
    }
  }
  return energy;
}

}  // namespace

TEST(Experiment, TriplePlummerIniRunsUnderAutoplace) {
  // Acceptance: a >= 3-model experiment defined purely in an INI runs under
  // autoplace with the scheduler placing the full role set — no C++ per
  // experiment.
  util::Config config = util::Config::parse(example_ini("triple-plummer.ini"));
  ExperimentSpec spec = ExperimentSpec::from_config(config);
  ASSERT_EQ(spec.models.size(), 4u);  // three clusters + the shared coupler
  ASSERT_EQ(spec.couplings.size(), 3u);

  JungleTestbed bed(config);
  sched::Placement plan = plan_experiment(bed, spec);
  ASSERT_EQ(plan.roles.size(), 4u);
  for (const sched::Assignment& a : plan.roles) {
    ASSERT_NE(a.host, nullptr);
    EXPECT_FALSE(a.spec.code.empty());
  }
  EXPECT_LT(plan.modeled_seconds_per_iteration, 1e6);

  Result result = run_experiment_config(config);
  EXPECT_EQ(result.experiment, spec.name);
  EXPECT_GT(result.seconds_per_iteration, 0.0);
  EXPECT_EQ(result.restarts, 0);
  ASSERT_EQ(result.models.size(), 3u);
  for (const ModelResult& model : result.models) {
    EXPECT_EQ(model.role, Role::gravity);
    EXPECT_FALSE(model.gravity.position.empty());
  }
}

TEST(Experiment, TriplePlummerEnergyDriftBounded) {
  // A gravity-only coupled N=3 run must conserve total energy (including
  // the cross-system terms the couplings mediate) to within the tree
  // coupler's approximation error over a few bridge steps.
  util::Config config = util::Config::parse(example_ini("triple-plummer.ini"));
  ExperimentSpec spec = ExperimentSpec::from_config(config);

  spec.iterations = 1;
  JungleTestbed short_bed(config);
  Result one = run_experiment(short_bed, spec);

  spec.iterations = 5;
  JungleTestbed long_bed(config);
  Result five = run_experiment(long_bed, spec);

  double e1 = total_energy(one);
  double e5 = total_energy(five);
  ASSERT_LT(e1, 0.0);  // bound systems
  EXPECT_LT(std::abs(e5 - e1) / std::abs(e1), 0.05);
}

TEST(Experiment, GravityOnlySingleModelRuns) {
  // The graph degenerates gracefully: one model, no couplings — the bridge
  // is a pure evolve loop (what the quickstart example builds).
  ExperimentSpec spec;
  spec.name = "solo";
  spec.iterations = 2;
  ModelSpec cluster;
  cluster.name = "cluster";
  cluster.role = Role::gravity;
  cluster.n = 128;
  cluster.place = "local";
  spec.models = {cluster};
  Result result = run_experiment(spec);
  ASSERT_EQ(result.models.size(), 1u);
  EXPECT_GT(result.seconds_per_iteration, 0.0);
  EXPECT_DOUBLE_EQ(result.bound_gas_fraction, 1.0);  // no gas anywhere
  double virial = -2.0 * result.models[0].kinetic / result.models[0].potential;
  EXPECT_NEAR(virial, 1.0, 0.2);
}

TEST(Experiment, CouplingCadenceRunsAndConservesMomentumShape) {
  // Two clusters coupled every 2nd step: the nested-BRIDGE cadence must
  // run and keep the pair bound (kicks of every*dt/2 at window bounds).
  ExperimentSpec spec;
  spec.name = "cadence";
  spec.iterations = 4;
  ModelSpec one;
  one.name = "one";
  one.role = Role::gravity;
  one.n = 64;
  one.offset = {-1.5, 0.0, 0.0};
  one.place = "local";
  ModelSpec two = one;
  two.name = "two";
  two.offset = {1.5, 0.0, 0.0};
  ModelSpec tides;
  tides.name = "tides";
  tides.role = Role::coupler;
  tides.place = "local";
  spec.models = {one, two, tides};
  spec.couplings = {{"pair", "tides", "one", "two", 2}};
  Result result = run_experiment(spec);
  ASSERT_EQ(result.models.size(), 2u);
  // Both clusters should still be roughly where they started (bound,
  // slow drift), not ejected: centres stay within a few length units.
  for (const ModelResult& model : result.models) {
    kernels::Vec3 com{};
    double mass = 0.0;
    for (std::size_t i = 0; i < model.gravity.mass.size(); ++i) {
      com = com + model.gravity.position[i] * model.gravity.mass[i];
      mass += model.gravity.mass[i];
    }
    com = com * (1.0 / mass);
    EXPECT_LT(std::abs(com.x), 3.0);
    EXPECT_LT(std::abs(com.y), 1.0);
  }
}
