#include <gtest/gtest.h>

#include <cmath>

#include "amuse/diagnostics.hpp"
#include "amuse/ic.hpp"
#include "util/rng.hpp"

using namespace jungle;
using namespace jungle::amuse;
using kernels::Vec3;

TEST(Diagnostics, CentreOfMassWeighted) {
  std::vector<double> mass{1.0, 3.0};
  std::vector<Vec3> pos{{0, 0, 0}, {4, 0, 0}};
  Vec3 com = diagnostics::centre_of_mass(mass, pos);
  EXPECT_DOUBLE_EQ(com.x, 3.0);
  EXPECT_DOUBLE_EQ(com.y, 0.0);
}

TEST(Diagnostics, LagrangianRadiiMonotonic) {
  util::Rng rng(3);
  auto model = ic::plummer_sphere(2000, rng);
  std::vector<double> fractions{0.1, 0.25, 0.5, 0.75, 0.9};
  auto radii =
      diagnostics::lagrangian_radii(model.mass, model.position, fractions);
  ASSERT_EQ(radii.size(), 5u);
  for (std::size_t i = 1; i < radii.size(); ++i) {
    EXPECT_GT(radii[i], radii[i - 1]);
  }
  // Plummer: r_half = a / sqrt(2^(2/3) - 1) = 1.30 a ~ 0.766.
  EXPECT_NEAR(radii[2], 0.766, 0.08);
}

TEST(Diagnostics, LagrangianRadiiOfShellIsShellRadius) {
  // All mass at radius 2: every fraction returns ~2.
  std::vector<double> mass(100, 0.01);
  std::vector<Vec3> pos;
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    double z = rng.uniform(-1, 1);
    double phi = rng.uniform(0, 6.283185307);
    double r = std::sqrt(1 - z * z);
    pos.push_back({2 * r * std::cos(phi), 2 * r * std::sin(phi), 2 * z});
  }
  std::vector<double> fractions{0.25, 0.75};
  auto radii = diagnostics::lagrangian_radii(mass, pos, fractions);
  // The random shell's centre of mass is only statistically at the
  // origin; radii match the shell radius to sampling noise.
  EXPECT_NEAR(radii[0], 2.0, 0.25);
  EXPECT_NEAR(radii[1], 2.0, 0.25);
}

TEST(Diagnostics, VirialRatioOfPlummerNearOne) {
  util::Rng rng(7);
  auto model = ic::plummer_sphere(3000, rng);
  double q =
      diagnostics::virial_ratio(model.mass, model.position, model.velocity);
  EXPECT_NEAR(q, 1.0, 0.1);
}

TEST(Diagnostics, ColdBoundGasIsBound) {
  // Cold, slow gas deep in a massive potential: everything bound.
  util::Rng rng(9);
  auto gas = ic::gas_sphere(500, rng, 1.0, 1.0, 0.01);
  std::vector<double> star_mass{5.0};
  std::vector<Vec3> star_pos{{0, 0, 0}};
  double bound = diagnostics::bound_gas_fraction(
      gas.mass, gas.position, gas.velocity, gas.internal_energy, star_mass,
      star_pos);
  EXPECT_GT(bound, 0.95);
}

TEST(Diagnostics, FastHotGasIsUnbound) {
  util::Rng rng(9);
  auto gas = ic::gas_sphere(500, rng, 0.01, 1.0, 0.0);
  // Give every particle escape-level speed and heat.
  std::vector<Vec3> fast(gas.position.size(), Vec3{50, 0, 0});
  std::vector<double> hot(gas.position.size(), 100.0);
  std::vector<double> star_mass{0.1};
  std::vector<Vec3> star_pos{{0, 0, 0}};
  double bound = diagnostics::bound_gas_fraction(
      gas.mass, gas.position, fast, hot, star_mass, star_pos);
  EXPECT_LT(bound, 0.05);
}

TEST(Diagnostics, BoundFractionFallsWithInjectedEnergy) {
  // Monotonicity in the Fig-6 observable: heating gas unbinds more of it.
  util::Rng rng(11);
  auto gas = ic::gas_sphere(400, rng, 1.0, 1.0, 0.01);
  std::vector<double> star_mass{1.0};
  std::vector<Vec3> star_pos{{0, 0, 0}};
  double previous = 1.1;
  for (double heat : {0.0, 1.0, 3.0, 10.0}) {
    std::vector<double> u(gas.internal_energy);
    for (double& value : u) value += heat;
    double bound = diagnostics::bound_gas_fraction(
        gas.mass, gas.position, gas.velocity, u, star_mass, star_pos);
    EXPECT_LE(bound, previous + 1e-12) << "heat " << heat;
    previous = bound;
  }
}

TEST(Diagnostics, EmptyInputsAreSafe) {
  std::vector<double> none;
  std::vector<Vec3> no_pos;
  EXPECT_DOUBLE_EQ(diagnostics::centre_of_mass(none, no_pos).norm(), 0.0);
  EXPECT_DOUBLE_EQ(
      diagnostics::bound_gas_fraction(none, no_pos, no_pos, none, none,
                                      no_pos),
      0.0);
}
