#include <gtest/gtest.h>

#include "deploy/deploy.hpp"

using namespace jungle;
using namespace jungle::sim;
using namespace jungle::deploy;

namespace {

const char* kJungleConfig = R"(
# A miniature of the paper's Fig-12 lab setup.
[site vu]
lan_latency_ms = 0.1
lan_gbit = 1

[site leiden]
lan_latency_ms = 0.1
lan_gbit = 1

[host desktop]
site = vu
cores = 4
gflops = 10

[host fs-lgm]
site = leiden
cores = 8
gflops = 10
inbound = false

[host lgm-node]
site = leiden
cores = 8
gflops = 10
gpu_model = tesla-c2050
gpu_gflops = 500

[link vu leiden]
latency_ms = 0.5
gbit = 1
name = lightpath

[resource local]
middleware = local
frontend = desktop

[resource lgm]
middleware = sge
frontend = fs-lgm
nodes = lgm-node
queue_delay = 1.5
)";

struct World {
  Simulation sim;
  Network net{sim};
  smartsockets::SmartSockets sockets{net};
  util::Config config = util::Config::parse(kJungleConfig);

  World() { build_topology(config, net); }
};

}  // namespace

TEST(Deploy, TopologyFromConfig) {
  World w;
  EXPECT_EQ(w.net.host("desktop").cores(), 4);
  EXPECT_EQ(w.net.host("lgm-node").gpu()->model, "tesla-c2050");
  EXPECT_FALSE(w.net.host("fs-lgm").firewall().allow_inbound);
  EXPECT_NEAR(w.net.rtt(w.net.host("desktop"), w.net.host("lgm-node")),
              2 * (0.1e-3 + 0.5e-3 + 0.1e-3), 1e-12);
}

TEST(Deploy, ResourcesFromConfig) {
  World w;
  auto resources = resources_from_config(w.config, w.net);
  ASSERT_EQ(resources.size(), 2u);
  EXPECT_EQ(resources[0].name, "local");
  EXPECT_EQ(resources[1].middleware, "sge");
  EXPECT_EQ(resources[1].frontend->name(), "fs-lgm");
  ASSERT_EQ(resources[1].nodes.size(), 1u);
  EXPECT_TRUE(resources[1].queue != nullptr);
  EXPECT_DOUBLE_EQ(resources[1].queue_base_delay, 1.5);
}

TEST(Deploy, MissingHostInResourceThrows) {
  World w;
  auto config = util::Config::parse(
      "[resource bad]\nmiddleware = ssh\nfrontend = ghost\n");
  EXPECT_THROW(resources_from_config(config, w.net), ConfigError);
}

TEST(Deploy, UnknownNodeHostInResourceThrows) {
  World w;
  auto config = util::Config::parse(
      "[resource bad]\nmiddleware = sge\nfrontend = fs-lgm\n"
      "nodes = lgm-node, ghost-node\n");
  try {
    resources_from_config(config, w.net);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& failure) {
    EXPECT_NE(std::string(failure.what()).find("ghost-node"),
              std::string::npos);
  }
}

TEST(Deploy, MissingMiddlewareThrows) {
  World w;
  auto config =
      util::Config::parse("[resource bad]\nfrontend = desktop\n");
  EXPECT_THROW(resources_from_config(config, w.net), ConfigError);
}

TEST(Deploy, NonPositiveRatesRejected) {
  // Zero/negative device rates would poison every scheduler cost query.
  auto build = [](const std::string& text) {
    Simulation sim;
    Network net{sim};
    build_topology(util::Config::parse(text), net);
  };
  EXPECT_THROW(build("[host a]\nsite = x\ngflops = 0\n"), ConfigError);
  EXPECT_THROW(build("[host a]\nsite = x\ngflops = -2\n"), ConfigError);
  EXPECT_THROW(build("[host a]\nsite = x\ncores = 0\n"), ConfigError);
  EXPECT_THROW(build("[host a]\nsite = x\ncores = -1\n"), ConfigError);
  EXPECT_THROW(
      build("[host a]\nsite = x\ngpu_model = t\ngpu_gflops = 0\n"),
      ConfigError);
  // A gpu_model without its rate is also a configuration error.
  EXPECT_THROW(build("[host a]\nsite = x\ngpu_model = t\n"), ConfigError);
  // Sane values pass.
  build("[host a]\nsite = x\ncores = 2\ngflops = 0.5\n");
}

TEST(Deploy, StartHubsMarksTunnelsForFirewalledFrontends) {
  World w;
  Deployer deployer(w.net, w.sockets, w.net.host("desktop"));
  deployer.add_resources(resources_from_config(w.config, w.net));
  deployer.start_hubs();
  auto edges = w.sockets.overlay_map();
  ASSERT_EQ(edges.size(), 1u);  // desktop hub <-> fs-lgm hub
  EXPECT_EQ(edges[0].kind, smartsockets::OverlayEdge::Kind::tunnel);
}

TEST(Deploy, SubmitRunsJobOnNamedResource) {
  World w;
  Deployer deployer(w.net, w.sockets, w.net.host("desktop"));
  deployer.add_resources(resources_from_config(w.config, w.net));
  std::string ran_on;
  gat::JobDescription desc;
  desc.name = "gravity-worker";
  desc.needs_gpu = true;
  desc.main = [&](gat::JobContext& context) {
    ran_on = context.hosts.front()->name();
  };
  w.net.host("desktop").spawn("script", [&] {
    auto job = deployer.submit(desc, "lgm");
    EXPECT_EQ(job->wait_until_terminal(), gat::JobState::stopped);
  });
  w.sim.run();
  EXPECT_EQ(ran_on, "lgm-node");
}

TEST(Deploy, UnknownResourceThrows) {
  World w;
  Deployer deployer(w.net, w.sockets, w.net.host("desktop"));
  EXPECT_THROW(deployer.resource("nonexistent"), ConfigError);
}

TEST(Deploy, DashboardShowsJobsOverlayTrafficLoad) {
  World w;
  Deployer deployer(w.net, w.sockets, w.net.host("desktop"));
  deployer.add_resources(resources_from_config(w.config, w.net));
  gat::JobDescription desc;
  desc.name = "worker";
  desc.main = [&](gat::JobContext& context) {
    context.hosts.front()->compute(5e9, DeviceKind::cpu, 1);
  };
  w.net.host("desktop").spawn("script", [&] {
    auto job = deployer.submit(desc, "lgm");
    job->wait_until_terminal();
  });
  w.sim.run();
  std::string dashboard = deployer.dashboard();
  EXPECT_NE(dashboard.find("lgm [sge]"), std::string::npos);
  EXPECT_NE(dashboard.find("worker @ lgm : STOPPED"), std::string::npos);
  EXPECT_NE(dashboard.find("=tunnel="), std::string::npos);
  EXPECT_NE(dashboard.find("lgm-node: cpu="), std::string::npos);
}

TEST(Deploy, ResourceNamesInOrder) {
  World w;
  Deployer deployer(w.net, w.sockets, w.net.host("desktop"));
  deployer.add_resources(resources_from_config(w.config, w.net));
  auto names = deployer.resource_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "local");
  EXPECT_EQ(names[1], "lgm");
}
