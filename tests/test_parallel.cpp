#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

using jungle::util::PerLane;
using jungle::util::ThreadPool;

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, 17, [&](std::size_t lo, std::size_t hi, unsigned) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeDoesNothing) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, 8, [&](std::size_t, std::size_t, unsigned) {
    ++calls;
  });
  pool.parallel_for(9, 3, 8, [&](std::size_t, std::size_t, unsigned) {
    ++calls;
  });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, GrainLargerThanRangeRunsInlineOnCaller) {
  ThreadPool pool(4);
  std::size_t seen_lo = 99, seen_hi = 0;
  unsigned seen_lane = 99;
  int calls = 0;
  pool.parallel_for(2, 10, 100,
                    [&](std::size_t lo, std::size_t hi, unsigned lane) {
                      ++calls;
                      seen_lo = lo;
                      seen_hi = hi;
                      seen_lane = lane;
                    });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_lo, 2u);
  EXPECT_EQ(seen_hi, 10u);
  EXPECT_EQ(seen_lane, 0u);  // the caller is always lane 0
}

TEST(ParallelFor, GrainZeroIsTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 100, 0, [&](std::size_t lo, std::size_t hi, unsigned) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 100u);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  auto boom = [&] {
    pool.parallel_for(0, 1000, 1, [&](std::size_t lo, std::size_t, unsigned) {
      if (lo == 500) throw std::runtime_error("chunk 500 failed");
    });
  };
  EXPECT_THROW(boom(), std::runtime_error);
  // The pool survives a failed job and runs the next one normally.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 64, 4, [&](std::size_t lo, std::size_t hi, unsigned) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ParallelFor, LaneIdsAreInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.parallel_for(0, 3000, 1, [&](std::size_t, std::size_t, unsigned lane) {
    if (lane >= pool.lanes()) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(pool.lanes(), 3u);
}

TEST(ParallelFor, NestedCallRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t, std::size_t, unsigned) {
    // A nested parallel_for from inside a chunk must not deadlock; it runs
    // serially on the calling lane.
    pool.parallel_for(0, 10, 2, [&](std::size_t lo, std::size_t hi, unsigned) {
      inner_total.fetch_add(hi - lo);
    });
  });
  EXPECT_EQ(inner_total.load(), 80u);
}

TEST(ParallelFor, SingleLanePoolRunsSerially) {
  ThreadPool pool(1);
  std::size_t total = 0;  // no atomics needed: everything on the caller
  pool.parallel_for(0, 1000, 7, [&](std::size_t lo, std::size_t hi, unsigned) {
    total += hi - lo;
  });
  EXPECT_EQ(total, 1000u);
}

TEST(ParallelFor, ReductionViaPerLaneIsExact) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100'000;
  PerLane<std::uint64_t> partial(pool, 0);
  pool.parallel_for(0, kN, 128,
                    [&](std::size_t lo, std::size_t hi, unsigned lane) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        partial[lane] += i;
                      }
                    });
  std::uint64_t total = 0;
  partial.for_each([&](std::uint64_t v) { total += v; });
  EXPECT_EQ(total, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, DefaultLanesHonoursJungleThreadsEnv) {
  ASSERT_EQ(setenv("JUNGLE_THREADS", "5", 1), 0);
  EXPECT_EQ(ThreadPool::default_lanes(), 5u);
  ASSERT_EQ(setenv("JUNGLE_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::default_lanes(), 1u);
  ASSERT_EQ(unsetenv("JUNGLE_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_lanes(), 1u);
}

TEST(ThreadPool, ConcurrentCallersSerializeCorrectly) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        pool.parallel_for(0, 256, 16,
                          [&](std::size_t lo, std::size_t hi, unsigned) {
                            total.fetch_add(hi - lo);
                          });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 4u * 20u * 256u);
}
