// Property-style parameterized sweeps over the stack's invariants:
// connectivity always resolves when a hub is reachable, unit algebra obeys
// group laws, tree force error decreases monotonically-ish with theta,
// Hermite energy drift shrinks with eta, IMF samples stay in range for any
// bounds, MPI collectives agree with their definitions for any rank count.
#include <gtest/gtest.h>

#include <cmath>

#include "amuse/ic.hpp"
#include "amuse/units.hpp"
#include "kernels/bhtree.hpp"
#include "kernels/hermite.hpp"
#include "kernels/sse.hpp"
#include "mpi/mpi.hpp"
#include "smartsockets/smartsockets.hpp"
#include "util/rng.hpp"

using namespace jungle;

// ----------------------------------------------------- connectivity sweep

// Firewall configuration of (client, server) as a 2x3 product:
// inbound-open / inbound-blocked / NAT on each side.
struct FirewallConfig {
  int client_mode;  // 0 open, 1 blocked, 2 nat
  int server_mode;
};

class ConnectivityMatrix : public ::testing::TestWithParam<FirewallConfig> {};

TEST_P(ConnectivityMatrix, HubOverlayAlwaysConnectsWhenOutboundWorks) {
  auto config = GetParam();
  sim::Simulation simulation;
  sim::Network net(simulation);
  smartsockets::SmartSockets sockets(net);
  net.add_site("a");
  net.add_site("b");
  net.add_site("hub");
  sim::Host& client = net.add_host("client", "a", 2, 1);
  sim::Host& server = net.add_host("server", "b", 2, 1);
  sim::Host& hub_box = net.add_host("hub-box", "hub", 2, 1);
  net.add_link("a", "hub", 1e-3, 1e9 / 8);
  net.add_link("hub", "b", 1e-3, 1e9 / 8);
  net.add_link("a", "b", 1e-3, 1e9 / 8);
  auto apply = [](sim::Host& host, int mode) {
    if (mode == 1) host.firewall().allow_inbound = false;
    if (mode == 2) host.firewall().nat = true;
  };
  apply(client, config.client_mode);
  apply(server, config.server_mode);
  sockets.start_hub(hub_box);

  auto& listener = sockets.listen(server, "svc");
  bool server_got = false;
  std::string payload;
  server.spawn("server", [&] {
    auto conn = listener.accept();
    auto bytes = conn->recv();
    server_got = bytes.has_value();
    if (bytes) payload.assign(bytes->begin(), bytes->end());
  });
  bool connected = false;
  smartsockets::ConnectionKind kind{};
  client.spawn("client", [&] {
    auto conn = sockets.connect(client, server, "svc",
                                sim::TrafficClass::control);
    connected = true;
    kind = conn->kind();
    conn->send(std::vector<std::uint8_t>{'o', 'k'});
  });
  simulation.run();
  simulation.shutdown();

  // The paper's claim: outbound is always possible, so with a reachable
  // open hub, SmartSockets must ALWAYS find a path.
  EXPECT_TRUE(connected);
  EXPECT_TRUE(server_got);
  EXPECT_EQ(payload, "ok");
  // Strategy sanity: open server => direct; blocked/NAT server with open
  // client => reverse; both restricted => relayed.
  bool server_open = config.server_mode == 0;
  bool client_reachable = config.client_mode == 0;
  if (server_open) {
    EXPECT_EQ(kind, smartsockets::ConnectionKind::direct);
  } else if (client_reachable) {
    EXPECT_EQ(kind, smartsockets::ConnectionKind::reverse);
  } else {
    EXPECT_EQ(kind, smartsockets::ConnectionKind::relayed);
  }
}

std::string firewall_case_name(
    const ::testing::TestParamInfo<FirewallConfig>& info) {
  static const char* const kNames[] = {"open", "blocked", "nat"};
  return std::string("client_") + kNames[info.param.client_mode] +
         "_server_" + kNames[info.param.server_mode];
}

INSTANTIATE_TEST_SUITE_P(
    AllFirewallCombinations, ConnectivityMatrix,
    ::testing::Values(FirewallConfig{0, 0}, FirewallConfig{0, 1},
                      FirewallConfig{0, 2}, FirewallConfig{1, 0},
                      FirewallConfig{1, 1}, FirewallConfig{1, 2},
                      FirewallConfig{2, 0}, FirewallConfig{2, 1},
                      FirewallConfig{2, 2}),
    firewall_case_name);

// ------------------------------------------------------- unit group laws

class UnitAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(UnitAlgebra, MultiplicationRoundTripsThroughDivision) {
  util::Rng rng(GetParam());
  using namespace amuse;
  const Unit* pool[] = {&units::m,   &units::kg,  &units::s,
                        &units::parsec, &units::msun, &units::myr,
                        &units::kms, &units::j};
  for (int trial = 0; trial < 50; ++trial) {
    const Unit& a = *pool[rng.below(8)];
    const Unit& b = *pool[rng.below(8)];
    double va = rng.uniform(0.1, 10.0);
    double vb = rng.uniform(0.1, 10.0);
    Quantity qa(va, a), qb(vb, b);
    // (qa * qb) / qb == qa, dimensionally and numerically.
    Quantity round_trip = (qa * qb) / qb;
    EXPECT_TRUE(round_trip.unit().same_dimensions(a));
    EXPECT_NEAR(round_trip.value_in(a), va, 1e-9 * std::abs(va));
    // Conversion consistency: value_in(x) * x->si == raw * self->si.
    EXPECT_NEAR(qa.value_in(a) * a.si_factor, va * a.si_factor, 1e-12);
  }
}

TEST_P(UnitAlgebra, ConverterRoundTripIsIdentity) {
  util::Rng rng(GetParam() + 100);
  using namespace amuse;
  NBodyConverter convert(Quantity(rng.uniform(10, 1e6), units::msun),
                         Quantity(rng.uniform(0.01, 100), units::parsec));
  const Unit* pool[] = {&units::msun, &units::parsec, &units::myr,
                        &units::kms, &units::j};
  for (int trial = 0; trial < 20; ++trial) {
    const Unit& unit = *pool[rng.below(5)];
    double value = rng.uniform(0.1, 1e3);
    double nbody = convert.to_nbody(Quantity(value, unit));
    EXPECT_NEAR(convert.to_si(nbody, unit).raw(), value,
                1e-9 * std::abs(value));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnitAlgebra, ::testing::Values(1, 2, 3, 4));

// --------------------------------------------------- tree accuracy sweep

class TreeAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(TreeAccuracy, ForceErrorBoundedByTheta) {
  double theta = GetParam();
  util::Rng rng(17);
  auto model = amuse::ic::plummer_sphere(512, rng);
  kernels::BarnesHutTree tree(theta, 1e-4);
  tree.build(model.position, model.mass);
  double worst = 0.0;
  for (int probe = 0; probe < 24; ++probe) {
    kernels::Vec3 point = model.position[probe * 20];
    kernels::Vec3 direct{};
    for (std::size_t j = 0; j < model.mass.size(); ++j) {
      kernels::Vec3 dr = model.position[j] - point;
      double d2 = dr.norm2() + 1e-4;
      direct += (model.mass[j] / (d2 * std::sqrt(d2))) * dr;
    }
    double rel = (tree.accel_at(point) - direct).norm() /
                 (direct.norm() + 1e-12);
    worst = std::max(worst, rel);
  }
  // Empirical monopole error envelope ~ theta^2.
  EXPECT_LT(worst, std::max(1e-9, 0.2 * theta * theta));
}

INSTANTIATE_TEST_SUITE_P(ThetaSweep, TreeAccuracy,
                         ::testing::Values(0.01, 0.3, 0.6, 0.9));

// ----------------------------------------------- hermite accuracy sweep

class HermiteAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(HermiteAccuracy, EnergyDriftShrinksWithEta) {
  double eta = GetParam();
  kernels::HermiteIntegrator::Params params;
  params.eps2 = 0.0;
  params.eta = eta;
  kernels::HermiteIntegrator nbody(params);
  nbody.add_particle(0.6, {0.4, 0, 0}, {0, 0.55, 0});
  nbody.add_particle(0.4, {-0.6, 0, 0}, {0, -0.825, 0});
  double e0 = nbody.kinetic_energy() + nbody.potential_energy();
  nbody.evolve(10.0);
  double drift = std::abs(nbody.kinetic_energy() +
                          nbody.potential_energy() - e0) /
                 std::abs(e0);
  // 4th-order scheme: drift ~ eta^4 per step and more steps at small eta;
  // a generous per-eta envelope catches regressions.
  EXPECT_LT(drift, 50.0 * eta * eta * eta);
}

INSTANTIATE_TEST_SUITE_P(EtaSweep, HermiteAccuracy,
                         ::testing::Values(0.005, 0.01, 0.02, 0.05));

// -------------------------------------------------------- IMF bounds

class ImfBounds
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ImfBounds, SamplesAlwaysInsideRange) {
  auto [lo, hi] = GetParam();
  util::Rng rng(5);
  auto masses = amuse::ic::salpeter_masses(2000, rng, lo, hi);
  for (double mass : masses) {
    EXPECT_GE(mass, lo);
    EXPECT_LE(mass, hi);
  }
  // Mean must sit between the bounds and below the midpoint (bottom-heavy).
  double mean = 0;
  for (double mass : masses) mean += mass;
  mean /= static_cast<double>(masses.size());
  EXPECT_GT(mean, lo);
  EXPECT_LT(mean, 0.5 * (lo + hi));
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, ImfBounds,
    ::testing::Values(std::make_pair(0.1, 100.0), std::make_pair(0.3, 25.0),
                      std::make_pair(1.0, 8.0), std::make_pair(5.0, 50.0)));

// --------------------------------------------------- MPI collective laws

class CollectiveRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveRanks, AllreduceMatchesDefinitionForAnyRankCount) {
  int nranks = GetParam();
  sim::Simulation simulation;
  sim::Network net(simulation);
  net.add_site("cluster", 2e-6, 32e9 / 8);
  std::vector<sim::Host*> hosts;
  for (int i = 0; i < std::min(nranks, 4); ++i) {
    hosts.push_back(&net.add_host("n" + std::to_string(i), "cluster", 8, 10));
  }
  mpi::MpiWorld world(net, hosts, nranks);
  std::vector<double> sums(nranks), gathers(nranks);
  world.launch("coll", [&](mpi::Comm& comm) {
    double mine = static_cast<double>((comm.rank() + 3) * 7 % 11);
    sums[comm.rank()] = comm.allreduce_sum(mine);
    gathers[comm.rank()] =
        static_cast<double>(comm.allgatherv(std::vector<double>{mine}).size());
  });
  simulation.run();
  simulation.shutdown();
  double expected = 0;
  for (int r = 0; r < nranks; ++r) {
    expected += static_cast<double>((r + 3) * 7 % 11);
  }
  for (int r = 0; r < nranks; ++r) {
    EXPECT_DOUBLE_EQ(sums[r], expected) << "rank " << r;
    EXPECT_DOUBLE_EQ(gathers[r], static_cast<double>(nranks));
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveRanks,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ------------------------------------------------ SSE remnant invariants

class SseMassSweep : public ::testing::TestWithParam<double> {};

TEST_P(SseMassSweep, EveryStarEndsAsTheRightRemnant) {
  double zams = GetParam();
  kernels::StellarEvolution se;
  se.add_star(zams);
  double end = kernels::StellarEvolution::main_sequence_lifetime_myr(zams) *
                   1.2 +
               10.0;
  se.evolve_to(end);
  const auto& star = se.star(0);
  if (zams >= kernels::StellarEvolution::kSupernovaThreshold) {
    EXPECT_EQ(star.phase, kernels::StellarEvolution::Phase::neutron_star);
    EXPECT_DOUBLE_EQ(star.mass, 1.4);
  } else {
    EXPECT_EQ(star.phase, kernels::StellarEvolution::Phase::white_dwarf);
    EXPECT_DOUBLE_EQ(star.mass, std::min(0.6, zams));
  }
  EXPECT_LE(star.mass, zams);
  // Remnants are inert: evolving further changes nothing.
  double mass_before = star.mass;
  se.evolve_to(end * 2);
  EXPECT_DOUBLE_EQ(se.star(0).mass, mass_before);
}

INSTANTIATE_TEST_SUITE_P(MassGrid, SseMassSweep,
                         ::testing::Values(0.5, 1.0, 3.0, 7.9, 8.0, 15.0,
                                           25.0));
