// The observability layer: spans across RPC hops, metrics correctness, the
// disabled fast path, structured logging, and the scheduler's
// modeled-vs-measured calibration loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"
#include "amuse/ic.hpp"
#include "amuse/scenario.hpp"
#include "amuse/workers.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "util/logging.hpp"

using namespace jungle;
using namespace jungle::amuse;

// Allocation counter for the zero-allocation assertion on the disabled
// tracing path (this TU is its own test binary, so the override is local).
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* memory = std::malloc(size);
  if (memory == nullptr) throw std::bad_alloc();
  return memory;
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* memory = std::malloc(size);
  if (memory == nullptr) throw std::bad_alloc();
  return memory;
}
void operator delete(void* memory) noexcept { std::free(memory); }
void operator delete(void* memory, std::size_t) noexcept { std::free(memory); }
void operator delete[](void* memory) noexcept { std::free(memory); }
void operator delete[](void* memory, std::size_t) noexcept {
  std::free(memory);
}

namespace {

struct LocalWorld {
  sim::Simulation sim;
  sim::Network net{sim};
  smartsockets::SmartSockets sockets{net};
  sim::Host* desktop;

  LocalWorld() {
    net.add_site("vu");
    desktop = &net.add_host("desktop", "vu", 4, 10);
    desktop->set_gpu(sim::GpuSpec{"gt9600", 90});
    obs::trace::bind_clock(
        this, [this] { return sim.now(); },
        [this] { return sim.current_name(); });
  }

  ~LocalWorld() {
    obs::trace::unbind_clock(this);
    sim.shutdown();
  }

  void run(std::function<void()> script) {
    desktop->spawn("script", std::move(script));
    sim.run();
  }
};

const obs::trace::SpanRecord* find_span(
    const std::vector<obs::trace::SpanRecord>& spans, const std::string& name,
    const std::string& category = "") {
  for (const auto& rec : spans) {
    if (rec.name == name && (category.empty() || rec.category == category)) {
      return &rec;
    }
  }
  return nullptr;
}

}  // namespace

// ----------------------------------------------------------------- metrics

TEST(Metrics, HistogramSummaryTracksMoments) {
  obs::metrics::Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.observe(i * 0.01);  // 0.01..1.0
  auto summary = histogram.summary();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_NEAR(summary.sum, 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(summary.min, 0.01);
  EXPECT_DOUBLE_EQ(summary.max, 1.0);
  EXPECT_NEAR(summary.mean(), 0.505, 1e-9);
  // Quarter-decade buckets: percentiles land within one bucket's span.
  double resolution = std::pow(10.0, 1.0 / 4.0);
  EXPECT_GT(summary.p50, 0.5 / resolution);
  EXPECT_LT(summary.p50, 0.5 * resolution);
  EXPECT_GE(summary.p90, summary.p50);
  EXPECT_GE(summary.p99, summary.p90);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(Metrics, RegistryCountsAndSnapshots) {
  obs::metrics::counter("test.hits").add(3.0);
  obs::metrics::counter("test.hits").increment();
  obs::metrics::gauge("test.depth").set(7.0);
  EXPECT_DOUBLE_EQ(obs::metrics::counter_value("test.hits"), 4.0);
  EXPECT_DOUBLE_EQ(obs::metrics::gauge_value("test.depth"), 7.0);
  EXPECT_DOUBLE_EQ(obs::metrics::counter_value("test.unregistered"), 0.0);
  std::string json = obs::metrics::snapshot_json();
  EXPECT_NE(json.find("\"test.hits\":4"), std::string::npos);
  EXPECT_NE(json.find("\"test.depth\":7"), std::string::npos);
}

// ------------------------------------------------------------------- spans

TEST(Trace, DisabledFastPathAllocatesNothing) {
  obs::trace::set_enabled(false);
  bool any_active = false;
  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::trace::Span span = obs::trace::span("hot-path", "test");
    any_active = any_active || span.active();
  }
  std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_FALSE(any_active);
  EXPECT_EQ(after, before);
  EXPECT_EQ(obs::trace::current_span(), 0u);
}

TEST(Trace, SpansNestAndRestoreTheCurrentContext) {
  obs::trace::reset();
  obs::trace::set_enabled(true);
  {
    obs::trace::Span outer = obs::trace::span("outer", "test");
    EXPECT_EQ(obs::trace::current_span(), outer.id());
    {
      obs::trace::Span inner = obs::trace::span("inner", "test");
      EXPECT_EQ(obs::trace::current_span(), inner.id());
    }
    EXPECT_EQ(obs::trace::current_span(), outer.id());
  }
  EXPECT_EQ(obs::trace::current_span(), 0u);
  auto spans = obs::trace::snapshot();
  const auto* outer = find_span(spans, "outer");
  const auto* inner = find_span(spans, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(outer->parent, 0u);
  obs::trace::set_enabled(false);
  obs::trace::reset();
}

TEST(Trace, SpansParentAcrossAnRpcHop) {
  obs::trace::reset();
  obs::trace::set_enabled(true);
  {
    LocalWorld world;
    world.run([&] {
      obs::trace::Span root = obs::trace::span("script-root", "test");
      WorkerSpec spec;
      spec.code = "phigrape";
      spec.ncores = 2;
      GravityClient gravity(start_local_worker(world.sockets, world.net,
                                               *world.desktop, *world.desktop,
                                               spec, ChannelKind::mpi));
      util::Rng rng(7);
      auto model = ic::plummer_sphere(32, rng);
      gravity.add_particles(model.mass, model.position, model.velocity);
      gravity.evolve(1.0 / 32.0);
      gravity.close();
    });
  }
  obs::trace::set_enabled(false);
  auto spans = obs::trace::snapshot();
  const auto* root = find_span(spans, "script-root");
  const auto* client = find_span(spans, "rpc:grav_evolve", "rpc");
  const auto* serve = find_span(spans, "grav_evolve", "serve");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(client, nullptr);
  ASSERT_NE(serve, nullptr);
  // The worker-side span parents under the in-flight client call (the span
  // id crossed the wire in the frame header), and the client recorded the
  // remote span for the exporter's flow arrow.
  EXPECT_EQ(client->parent, root->id);
  EXPECT_EQ(serve->parent, client->id);
  EXPECT_EQ(client->remote, serve->id);
  // Different simulated processes, one causal interval.
  EXPECT_NE(client->process, serve->process);
  EXPECT_GE(serve->sim_begin, client->sim_begin);
  EXPECT_LE(serve->sim_end, client->sim_end + 1e-12);
  // The worker's kernel compute span nests under the serve span.
  const auto* compute = find_span(spans, "compute", "kernel");
  ASSERT_NE(compute, nullptr);
  EXPECT_EQ(compute->parent, serve->id);
  obs::trace::reset();
}

TEST(Trace, TraceIdSurvivesStripedBulkTransfers) {
  obs::trace::reset();
  obs::trace::set_enabled(true);
  std::size_t state_size = 0;
  {
    LocalWorld world;
    world.run([&] {
      WorkerSpec spec;
      spec.code = "phigrape";
      spec.ncores = 2;
      GravityClient gravity(start_local_worker(world.sockets, world.net,
                                               *world.desktop, *world.desktop,
                                               spec, ChannelKind::mpi));
      util::Rng rng(9);
      // 2000 particles * 56 B > the 64 KiB stripe threshold: both the
      // request and the state reply cross as parallel stripes.
      auto model = ic::plummer_sphere(2000, rng);
      gravity.add_particles(model.mass, model.position, model.velocity);
      state_size = gravity.get_state().mass.size();
      gravity.close();
    });
  }
  obs::trace::set_enabled(false);
  EXPECT_EQ(state_size, 2000u);
  auto spans = obs::trace::snapshot();
  const auto* add_client = find_span(spans, "rpc:grav_add_particles", "rpc");
  const auto* add_serve = find_span(spans, "grav_add_particles", "serve");
  const auto* get_client = find_span(spans, "rpc:grav_get_state", "rpc");
  const auto* get_serve = find_span(spans, "grav_get_state", "serve");
  ASSERT_NE(add_client, nullptr);
  ASSERT_NE(add_serve, nullptr);
  ASSERT_NE(get_client, nullptr);
  ASSERT_NE(get_serve, nullptr);
  // Striping reassembles the frame before delivery, so the header's span id
  // still parents the serve span — in both directions.
  EXPECT_EQ(add_serve->parent, add_client->id);
  EXPECT_EQ(add_client->remote, add_serve->id);
  EXPECT_EQ(get_serve->parent, get_client->id);
  EXPECT_EQ(get_client->remote, get_serve->id);
  obs::trace::reset();
}

// ----------------------------------------------------------------- logging

TEST(Logging, ParseLevelCoversTheJungleLogValues) {
  EXPECT_EQ(log::parse_level("debug"), log::Level::debug);
  EXPECT_EQ(log::parse_level("info"), log::Level::info);
  EXPECT_EQ(log::parse_level("warn"), log::Level::warn);
  EXPECT_EQ(log::parse_level("error"), log::Level::error);
  EXPECT_EQ(log::parse_level("off"), log::Level::off);
  EXPECT_EQ(log::parse_level("nonsense", log::Level::info), log::Level::info);
}

TEST(Logging, StructuredSinkCarriesTheActiveSpan) {
  obs::trace::reset();
  obs::trace::set_enabled(true);
  std::vector<log::Record> records;
  {
    log::ScopedStructuredSink sink(
        [&](const log::Record& record) { records.push_back(record); });
    obs::trace::Span span = obs::trace::span("logging", "test");
    log::warn("obs-test") << "tagged line";
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].span, span.id());
    EXPECT_EQ(records[0].component, "obs-test");
    EXPECT_EQ(records[0].level, log::Level::warn);
    EXPECT_NE(records[0].message.find("tagged"), std::string::npos);
  }
  obs::trace::set_enabled(false);
  obs::trace::reset();
  // Without tracing, log records carry span 0 — lines stay tag-free.
  std::vector<log::Record> untraced;
  {
    log::ScopedStructuredSink sink(
        [&](const log::Record& record) { untraced.push_back(record); });
    log::warn("obs-test") << "plain line";
  }
  ASSERT_EQ(untraced.size(), 1u);
  EXPECT_EQ(untraced[0].span, 0u);
}

// -------------------------------------------------------------- rpc meters

TEST(Metrics, RpcClientMetersCallsBytesAndLatency) {
  double calls_before = obs::metrics::counter_value("rpc.obs-test.calls");
  double bytes_before = obs::metrics::counter_value("rpc.obs-test.bytes_out");
  double flops_before = obs::metrics::counter_value("worker.phigrape.flops");
  std::uint64_t latency_before =
      obs::metrics::histogram("rpc.obs-test.latency_s").count();
  {
    LocalWorld world;
    world.run([&] {
      WorkerSpec spec;
      spec.code = "phigrape";
      spec.ncores = 2;
      GravityClient gravity(start_local_worker(world.sockets, world.net,
                                               *world.desktop, *world.desktop,
                                               spec, ChannelKind::mpi));
      gravity.rpc().set_meter("obs-test");
      util::Rng rng(11);
      auto model = ic::plummer_sphere(64, rng);
      gravity.add_particles(model.mass, model.position, model.velocity);
      gravity.evolve(1.0 / 32.0);
      gravity.close();
    });
  }
  EXPECT_GE(obs::metrics::counter_value("rpc.obs-test.calls") - calls_before,
            2.0);
  EXPECT_GT(
      obs::metrics::counter_value("rpc.obs-test.bytes_out") - bytes_before,
      0.0);
  EXPECT_GT(obs::metrics::histogram("rpc.obs-test.latency_s").count(),
            latency_before);
  // The worker side metered kernel work under its code name (no spec.meter
  // set on a bare local worker).
  EXPECT_GT(obs::metrics::counter_value("worker.phigrape.flops") -
                flops_before,
            0.0);
}

// ------------------------------------------------- calibration (the loop)

TEST(Sched, CalibrationClampsAndDefaults) {
  sched::Calibration calibration;
  EXPECT_TRUE(calibration.empty());
  EXPECT_DOUBLE_EQ(calibration.scale_for("absent"), 1.0);
  calibration.set_scale("grav", 1000.0);
  EXPECT_DOUBLE_EQ(calibration.scale_for("grav"), 64.0);
  calibration.set_scale("grav", 1e-4);
  EXPECT_DOUBLE_EQ(calibration.scale_for("grav"), 1.0 / 64.0);
  calibration.set_scale("grav", 2.5);
  EXPECT_DOUBLE_EQ(calibration.scale_for("grav"), 2.5);
  calibration.set_scale("bad", -1.0);  // ignored, not clamped to the floor
  EXPECT_DOUBLE_EQ(calibration.scale_for("bad"), 1.0);
  EXPECT_FALSE(calibration.empty());
}

TEST(Sched, CalibrationScalesModeledCompute) {
  scenario::Options options;
  options.n_stars = 200;
  options.n_gas = 800;
  options.with_stellar_evolution = false;
  auto spec = scenario::classic_spec(scenario::Kind::autoplace, options);
  scenario::JungleTestbed bed;
  sched::Scheduler scheduler(bed.network(), bed.client_host(),
                             bed.deployer().resources());
  sched::Workload load = spec.workload();
  sched::Placement plan = scheduler.plan(load);

  sched::Calibration calibration;
  for (const auto& model : load.models) calibration.set_scale(model.name, 4.0);
  scheduler.set_calibration(calibration);
  sched::Placement scored = plan;
  scheduler.score(load, scored);
  for (std::size_t i = 0; i < plan.roles.size(); ++i) {
    if (plan.roles[i].compute_seconds <= 0.0) continue;
    EXPECT_NEAR(scored.roles[i].compute_seconds,
                4.0 * plan.roles[i].compute_seconds,
                1e-9 * plan.roles[i].compute_seconds)
        << "role " << plan.names[i];
  }
  EXPECT_GT(scored.modeled_seconds_per_iteration,
            plan.modeled_seconds_per_iteration);
}

TEST(Sched, FirstIterationCalibratesWithinTwofold) {
  // The regression the tracing layer exists to close: the static cost
  // model is off by an order of magnitude or more; after one measured
  // iteration the calibrated model must sit within 2x of measured.
  scenario::Options options;
  options.n_stars = 200;
  options.n_gas = 800;
  options.iterations = 2;
  options.with_stellar_evolution = false;
  std::vector<std::string> sched_lines;
  log::Level previous = log::threshold();
  log::set_threshold(log::Level::info);
  scenario::Result result;
  {
    log::ScopedStructuredSink sink([&](const log::Record& record) {
      if (record.component == "sched") sched_lines.push_back(record.message);
    });
    result = scenario::run_scenario(scenario::Kind::jungle, options);
  }
  log::set_threshold(previous);

  EXPECT_GT(result.precalibration_drift, 0.0);
  EXPECT_GT(result.compute_drift, 0.0);
  EXPECT_LE(result.compute_drift, 2.0);
  EXPECT_LE(result.compute_drift, result.precalibration_drift + 1e-12);
  EXPECT_GT(result.calibrated_seconds_per_iteration, 0.0);
  EXPECT_GT(obs::metrics::gauge_value("sched.compute_drift"), 0.0);
  EXPECT_GT(obs::metrics::gauge_value("sched.precalibration_drift"), 0.0);
  bool saw_cost_table = false;
  for (const std::string& line : sched_lines) {
    if (line.find("calibrated") != std::string::npos) saw_cost_table = true;
  }
  EXPECT_TRUE(saw_cost_table) << "no calibrated cost table in the sched log";
  // The per-iteration log covers the whole run, with no replays.
  ASSERT_EQ(result.iteration_log.size(), 2u);
  for (const auto& row : result.iteration_log) {
    EXPECT_FALSE(row.replay);
    EXPECT_GT(row.seconds, 0.0);
    EXPECT_GT(row.flops, 0.0);
    EXPECT_GT(row.rpc_calls, 0u);
  }
}

TEST(Diagnostics, IterationLogMarksReplayedStepsDistinctly) {
  // Same fault shape as the scenario recovery test: gravity's host dies
  // after step 1, step 2 rolls back and re-runs — the re-run must be
  // marked as a replay in the iteration log and the dashboard.
  scenario::Options options;
  options.n_stars = 600;
  options.n_gas = 2000;
  options.iterations = 3;
  options.with_stellar_evolution = false;
  scenario::JungleTestbed probe;
  auto plan =
      scenario::placement_for(probe, scenario::Kind::autoplace, options);
  ASSERT_NE(plan.role(sched::Role::gravity).host, nullptr);
  options.kill_host = plan.role(sched::Role::gravity).host->name();
  options.kill_after_iteration = 1;

  scenario::Result result =
      scenario::run_scenario(scenario::Kind::autoplace, options);
  EXPECT_GE(result.restarts, 1);
  ASSERT_EQ(result.iteration_log.size(), 3u);
  EXPECT_FALSE(result.iteration_log[0].replay);
  EXPECT_TRUE(result.iteration_log[1].replay);
  EXPECT_GE(result.iteration_log[1].restarts, 1);
  EXPECT_FALSE(result.iteration_log[2].replay);
  EXPECT_NE(result.dashboard.find("[REPLAY]"), std::string::npos);
  EXPECT_NE(result.dashboard.find("-- iterations --"), std::string::npos);
  // Rollback/replay surfaced on the registry too.
  EXPECT_GT(obs::metrics::counter_value("fault.rollbacks"), 0.0);
  EXPECT_GT(obs::metrics::counter_value("fault.replayed_steps"), 0.0);
  EXPECT_GT(obs::metrics::counter_value("fault.checkpoints"), 0.0);
}

TEST(Diagnostics, IterationFormattersRenderReplayRows) {
  std::vector<diagnostics::IterationReport> log(2);
  log[0].iteration = 1;
  log[0].seconds = 1.5;
  log[0].rpc_calls = 10;
  log[1].iteration = 2;
  log[1].seconds = 2.5;
  log[1].replay = true;
  log[1].restarts = 1;
  std::string table = diagnostics::iteration_table(log);
  EXPECT_NE(table.find("#1"), std::string::npos);
  EXPECT_NE(table.find("[REPLAY]"), std::string::npos);
  EXPECT_NE(table.find("[restarts=1]"), std::string::npos);
  std::string json = diagnostics::iteration_json(log);
  EXPECT_NE(json.find("\"replay\": true"), std::string::npos);
  EXPECT_NE(json.find("\"iteration\": 2"), std::string::npos);
}
