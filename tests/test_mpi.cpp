#include <gtest/gtest.h>

#include <numeric>

#include "mpi/mpi.hpp"

using namespace jungle;
using namespace jungle::sim;
using namespace jungle::mpi;

namespace {

struct Cluster {
  Simulation sim;
  Network net{sim};
  std::vector<Host*> nodes;

  explicit Cluster(int node_count, double lan_latency = 2e-6,
                   double lan_bw = 32e9 / 8) {
    net.add_site("das4", lan_latency, lan_bw);  // QDR infiniband-ish
    for (int i = 0; i < node_count; ++i) {
      nodes.push_back(&net.add_host("node" + std::to_string(i), "das4", 8, 10));
    }
  }
};

}  // namespace

TEST(Mpi, PointToPointRoundTrip) {
  Cluster c(2);
  MpiWorld world(c.net, c.nodes, 2);
  std::vector<double> got;
  world.launch("pingpong", [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 7, std::vector<double>{1.5, 2.5});
      got = comm.recv_doubles(1, 8);
    } else {
      auto data = comm.recv_doubles(0, 7);
      for (double& v : data) v *= 2;
      comm.send_doubles(0, 8, data);
    }
  });
  c.sim.spawn("waiter", [&] { world.wait(); });
  c.sim.run();
  EXPECT_TRUE(world.done());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0], 3.0);
  EXPECT_DOUBLE_EQ(got[1], 5.0);
}

TEST(Mpi, TagMatchingHoldsBackOtherTags) {
  Cluster c(2);
  MpiWorld world(c.net, c.nodes, 2);
  std::vector<double> first, second;
  world.launch("tags", [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, /*tag=*/5, std::vector<double>{5.0});
      comm.send_doubles(1, /*tag=*/6, std::vector<double>{6.0});
    } else {
      // Receive tag 6 first even though tag 5 arrives first.
      first = comm.recv_doubles(0, 6);
      second = comm.recv_doubles(0, 5);
    }
  });
  c.sim.run();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_DOUBLE_EQ(first[0], 6.0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_DOUBLE_EQ(second[0], 5.0);
}

TEST(Mpi, AnySourceReceives) {
  Cluster c(3);
  MpiWorld world(c.net, c.nodes, 3);
  int received = 0;
  world.launch("anysrc", [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        comm.recv(kAnySource, 1);
        ++received;
      }
    } else {
      util::ByteWriter writer;
      writer.put<int>(comm.rank());
      comm.send(0, 1, std::move(writer));
    }
  });
  c.sim.run();
  EXPECT_EQ(received, 2);
}

TEST(Mpi, BarrierSynchronizesRanks) {
  Cluster c(4);
  MpiWorld world(c.net, c.nodes, 4);
  std::vector<double> after_times;
  world.launch("barrier", [&](Comm& comm) {
    // Rank r works r seconds, then everyone meets at the barrier.
    comm.host().compute(static_cast<double>(comm.rank()) * 10e9,
                        DeviceKind::cpu, 1);
    comm.barrier();
    after_times.push_back(c.sim.now());
  });
  c.sim.run();
  ASSERT_EQ(after_times.size(), 4u);
  // Everyone leaves the barrier no earlier than the slowest rank (3 s).
  for (double t : after_times) EXPECT_GE(t, 3.0);
}

TEST(Mpi, BcastDeliversToAll) {
  Cluster c(3);
  MpiWorld world(c.net, c.nodes, 3);
  std::vector<std::vector<std::uint8_t>> results(3);
  world.launch("bcast", [&](Comm& comm) {
    std::vector<std::uint8_t> data;
    if (comm.rank() == 1) data = {9, 8, 7};
    results[comm.rank()] = comm.bcast(std::move(data), 1);
  });
  c.sim.run();
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(results[r], (std::vector<std::uint8_t>{9, 8, 7})) << "rank " << r;
  }
}

TEST(Mpi, AllreduceSumMinMax) {
  Cluster c(4);
  MpiWorld world(c.net, c.nodes, 4);
  std::vector<double> sums(4), mins(4), maxs(4);
  world.launch("reduce", [&](Comm& comm) {
    double mine = static_cast<double>(comm.rank() + 1);  // 1..4
    sums[comm.rank()] = comm.allreduce_sum(mine);
    mins[comm.rank()] = comm.allreduce_min(mine);
    maxs[comm.rank()] = comm.allreduce_max(mine);
  });
  c.sim.run();
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(sums[r], 10.0);
    EXPECT_DOUBLE_EQ(mins[r], 1.0);
    EXPECT_DOUBLE_EQ(maxs[r], 4.0);
  }
}

TEST(Mpi, AllgathervConcatenatesInRankOrder) {
  Cluster c(3);
  MpiWorld world(c.net, c.nodes, 3);
  std::vector<std::vector<double>> results(3);
  world.launch("gather", [&](Comm& comm) {
    // Rank r contributes r+1 copies of r.
    std::vector<double> mine(comm.rank() + 1,
                             static_cast<double>(comm.rank()));
    results[comm.rank()] = comm.allgatherv(mine);
  });
  c.sim.run();
  std::vector<double> expected{0, 1, 1, 2, 2, 2};
  for (int r = 0; r < 3; ++r) EXPECT_EQ(results[r], expected);
}

TEST(Mpi, GathervRootOnly) {
  Cluster c(3);
  MpiWorld world(c.net, c.nodes, 3);
  std::vector<std::size_t> sizes(3, 999);
  world.launch("gatherv", [&](Comm& comm) {
    std::vector<double> mine{static_cast<double>(comm.rank())};
    sizes[comm.rank()] = comm.gatherv(mine, 0).size();
  });
  c.sim.run();
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 0u);
  EXPECT_EQ(sizes[2], 0u);
}

TEST(Mpi, MoreRanksThanHostsRoundRobins) {
  Cluster c(2);
  MpiWorld world(c.net, c.nodes, 4);
  EXPECT_EQ(&world.host_of(0), c.nodes[0]);
  EXPECT_EQ(&world.host_of(1), c.nodes[1]);
  EXPECT_EQ(&world.host_of(2), c.nodes[0]);
  std::vector<double> sums(4);
  world.launch("rr", [&](Comm& comm) {
    sums[comm.rank()] = comm.allreduce_sum(1.0);
  });
  c.sim.run();
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 4.0);
}

TEST(Mpi, TrafficIsAccountedAsMpiClass) {
  Cluster c(2);
  MpiWorld world(c.net, c.nodes, 2);
  world.launch("traffic", [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 0, std::vector<double>(1000, 1.0));
    } else {
      comm.recv_doubles(0, 0);
    }
  });
  c.sim.run();
  double mpi_bytes = 0;
  for (const auto& link : c.net.traffic_report()) {
    mpi_bytes += link.bytes_by_class[static_cast<int>(TrafficClass::mpi)];
  }
  EXPECT_GT(mpi_bytes, 8000.0);  // 1000 doubles + framing
  EXPECT_GT(world.bytes_sent(), 8000.0);
}

TEST(Mpi, InvalidRankThrows) {
  Cluster c(2);
  MpiWorld world(c.net, c.nodes, 2);
  world.launch("bad", [&](Comm& comm) {
    if (comm.rank() == 0) {
      util::ByteWriter writer;
      EXPECT_THROW(comm.send(5, 0, std::move(writer)), Error);
    }
  });
  c.sim.run();
}

TEST(Mpi, DeterministicCollectiveTiming) {
  auto run_once = [] {
    Cluster c(4);
    MpiWorld world(c.net, c.nodes, 4);
    double finish = -1;
    world.launch("det", [&](Comm& comm) {
      for (int i = 0; i < 5; ++i) {
        comm.allgatherv(std::vector<double>(100, 1.0));
      }
      if (comm.rank() == 0) finish = c.sim.now();
    });
    c.sim.run();
    return finish;
  };
  double a = run_once();
  double b = run_once();
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.0);
}
