#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/network.hpp"
#include "sim/simulation.hpp"

using namespace jungle;
using namespace jungle::sim;

// ------------------------------------------------------------- scheduling

TEST(Simulation, CallbacksFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(2.0, [&] { order.push_back(2); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, EqualTimesFireInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ProcessSleepAdvancesVirtualTime) {
  Simulation sim;
  double woke_at = -1;
  sim.spawn("sleeper", [&] {
    sim.sleep(5.5);
    woke_at = sim.now();
  });
  sim.run();
  EXPECT_DOUBLE_EQ(woke_at, 5.5);
}

TEST(Simulation, RunUntilStopsEarly) {
  Simulation sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, NestedSpawnFromProcess) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn("parent", [&] {
    log.push_back("parent@" + std::to_string(sim.now()));
    sim.spawn("child", [&] {
      sim.sleep(1.0);
      log.push_back("child@" + std::to_string(sim.now()));
    });
    sim.sleep(2.0);
    log.push_back("parent-done@" + std::to_string(sim.now()));
  });
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[1], "child@1.000000");
  EXPECT_EQ(log[2], "parent-done@2.000000");
}

TEST(Simulation, DeterministicInterleaving) {
  // Two identical runs must produce identical traces (the basis for every
  // reproducibility claim in the benches).
  auto run_once = [] {
    Simulation sim;
    std::vector<std::string> trace;
    for (int p = 0; p < 4; ++p) {
      sim.spawn("p" + std::to_string(p), [&, p] {
        for (int i = 0; i < 3; ++i) {
          sim.sleep(0.5 + 0.1 * p);
          trace.push_back(std::to_string(p) + "@" + std::to_string(sim.now()));
        }
      });
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulation, ProcessExceptionPropagatesFromRun) {
  Simulation sim;
  sim.spawn("bad", [] { throw Error("boom"); });
  EXPECT_THROW(sim.run(), Error);
}

TEST(Simulation, KillRaisesProcessKilled) {
  Simulation sim;
  bool reached_end = false;
  bool cleanup_ran = false;
  ProcessId victim = sim.spawn("victim", [&] {
    struct Cleanup {
      bool* flag;
      ~Cleanup() { *flag = true; }
    } cleanup{&cleanup_ran};
    sim.sleep(100.0);
    reached_end = true;
  });
  sim.at(1.0, [&] { sim.kill(victim); });
  sim.run();
  EXPECT_FALSE(reached_end);
  EXPECT_TRUE(cleanup_ran);  // RAII unwound
  EXPECT_TRUE(sim.finished(victim));
}

TEST(Simulation, YieldNowKeepsTimeButReorders) {
  Simulation sim;
  std::vector<int> order;
  sim.spawn("a", [&] {
    sim.yield_now();
    order.push_back(1);
  });
  sim.spawn("b", [&] { order.push_back(0); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulation, BlockedProcessesAreKilledAtDestruction) {
  // A process waiting forever must not hang the destructor.
  auto sim = std::make_unique<Simulation>();
  auto signal = std::make_unique<Signal>(*sim);
  sim->spawn("stuck", [&] { signal->wait(); });
  sim->run();  // returns: no events pending
  EXPECT_EQ(sim->live_processes(), 1u);
  sim.reset();  // must not deadlock
  SUCCEED();
}

// ----------------------------------------------------------------- signal

TEST(Signal, NotifyOneWakesSingleWaiter) {
  Simulation sim;
  Signal signal(sim);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn("waiter", [&] {
      signal.wait();
      ++woken;
    });
  }
  sim.at(1.0, [&] { signal.notify_one(); });
  sim.run();
  EXPECT_EQ(woken, 1);
}

TEST(Signal, NotifyAllWakesEveryone) {
  Simulation sim;
  Signal signal(sim);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn("waiter", [&] {
      signal.wait();
      ++woken;
    });
  }
  sim.at(1.0, [&] { signal.notify_all(); });
  sim.run();
  EXPECT_EQ(woken, 3);
}

TEST(Signal, WaitForTimesOut) {
  Simulation sim;
  Signal signal(sim);
  bool notified = true;
  sim.spawn("waiter", [&] { notified = signal.wait_for(2.0); });
  sim.run();
  EXPECT_FALSE(notified);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Signal, WaitForNotifiedBeforeTimeout) {
  Simulation sim;
  Signal signal(sim);
  bool notified = false;
  double at = -1;
  sim.spawn("waiter", [&] {
    notified = signal.wait_for(10.0);
    at = sim.now();
  });
  sim.at(1.0, [&] { signal.notify_one(); });
  sim.run();
  EXPECT_TRUE(notified);
  EXPECT_DOUBLE_EQ(at, 1.0);
}

// ---------------------------------------------------------------- mailbox

TEST(Mailbox, BlockingGetReceivesInOrder) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<int> received;
  sim.spawn("consumer", [&] {
    for (int i = 0; i < 3; ++i) received.push_back(box.get());
  });
  sim.at(1.0, [&] { box.put(10); });
  sim.at(2.0, [&] {
    box.put(20);
    box.put(30);
  });
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{10, 20, 30}));
}

TEST(Mailbox, GetForTimesOut) {
  Simulation sim;
  Mailbox<int> box(sim);
  bool got = true;
  sim.spawn("consumer", [&] { got = box.get_for(3.0).has_value(); });
  sim.run();
  EXPECT_FALSE(got);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Mailbox, TryGetNonBlocking) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::optional<int> first, second;
  sim.spawn("consumer", [&] {
    first = box.try_get();
    box.put(5);
    second = box.try_get();
  });
  sim.run();
  EXPECT_FALSE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 5);
}

// ------------------------------------------------------------------- host

TEST(Host, ComputeAdvancesTimeByFlopsOverRate) {
  Simulation sim;
  Network net(sim);
  Host& host = net.add_host("desktop", "vu", 4, 10.0);  // 10 GF/s per core
  double elapsed = -1;
  host.spawn("worker", [&] {
    double start = sim.now();
    host.compute(20e9, DeviceKind::cpu, 1);  // 20 GF on 1 core = 2 s
    elapsed = sim.now() - start;
  });
  sim.run();
  EXPECT_DOUBLE_EQ(elapsed, 2.0);
  EXPECT_DOUBLE_EQ(host.busy_core_seconds(), 2.0);
}

TEST(Host, MultiCoreComputeScalesDown) {
  Simulation sim;
  Network net(sim);
  Host& host = net.add_host("desktop", "vu", 4, 10.0);
  double elapsed = -1;
  host.spawn("worker", [&] {
    double start = sim.now();
    host.compute(40e9, DeviceKind::cpu, 4);  // 4 cores: 1 s
    elapsed = sim.now() - start;
  });
  sim.run();
  EXPECT_DOUBLE_EQ(elapsed, 1.0);
  // busy time counts all used cores
  EXPECT_DOUBLE_EQ(host.busy_core_seconds(), 4.0);
}

TEST(Host, CoreRequestIsCappedAtHostCores) {
  Simulation sim;
  Network net(sim);
  Host& host = net.add_host("desktop", "vu", 2, 10.0);
  EXPECT_DOUBLE_EQ(host.compute_time(40e9, DeviceKind::cpu, 16), 2.0);
}

TEST(Host, GpuComputeUsesGpuRate) {
  Simulation sim;
  Network net(sim);
  Host& host = net.add_host("lgm", "leiden", 4, 10.0);
  host.set_gpu(GpuSpec{"tesla-c2050", 500.0});
  EXPECT_DOUBLE_EQ(host.compute_time(500e9, DeviceKind::gpu), 1.0);
}

TEST(Host, GpuComputeWithoutGpuThrows) {
  Simulation sim;
  Network net(sim);
  Host& host = net.add_host("plain", "vu", 4, 10.0);
  EXPECT_THROW(host.compute_time(1e9, DeviceKind::gpu), CodeError);
}

TEST(Host, CrashKillsProcessesAndFiresCallbacks) {
  Simulation sim;
  Network net(sim);
  Host& host = net.add_host("node0", "das4", 8, 10.0);
  bool finished = false;
  bool observed = false;
  host.on_crash([&] { observed = true; });
  host.spawn("longjob", [&] {
    sim.sleep(100.0);
    finished = true;
  });
  sim.at(1.0, [&] { host.crash(); });
  sim.run();
  EXPECT_FALSE(finished);
  EXPECT_TRUE(observed);
  EXPECT_FALSE(host.is_up());
}

TEST(Host, SpawnOnDownHostThrows) {
  Simulation sim;
  Network net(sim);
  Host& host = net.add_host("node0", "das4", 8, 10.0);
  host.crash();
  EXPECT_THROW(host.spawn("job", [] {}), CodeError);
}

TEST(Host, SelfCrashUnwindsCurrentProcess) {
  Simulation sim;
  Network net(sim);
  Host& host = net.add_host("node0", "das4", 8, 10.0);
  bool after_crash = false;
  host.spawn("suicidal", [&] {
    host.crash();
    after_crash = true;  // unreachable
  });
  sim.run();
  EXPECT_FALSE(after_crash);
  EXPECT_FALSE(host.is_up());
}

// ---------------------------------------------------------------- network

namespace {
struct Topology {
  Simulation sim;
  Network net{sim};
  Topology() {
    net.add_site("vu", 0.1 * net::ms, 1.0 * net::gbit);
    net.add_site("leiden", 0.1 * net::ms, 1.0 * net::gbit);
    net.add_site("seattle", 0.1 * net::ms, 1.0 * net::gbit);
    net.add_host("desktop", "vu", 4, 10.0);
    net.add_host("lgm", "leiden", 8, 10.0);
    net.add_host("laptop", "seattle", 2, 5.0);
    net.add_link("vu", "leiden", 0.5 * net::ms, 1.0 * net::gbit, "starplane");
    net.add_link("seattle", "vu", 45.0 * net::ms, 1.0 * net::gbit,
                 "transatlantic");
  }
};
}  // namespace

TEST(Network, LoopbackDeliveryTime) {
  Topology t;
  t.net.set_loopback(5 * net::us, 10.0 * net::gbit);
  Host& host = t.net.host("desktop");
  auto arrival = t.net.send(host, host, 1.25e9, TrafficClass::control);
  ASSERT_TRUE(arrival.has_value());
  // 1.25 GB at 10 Gbit/s (=1.25 GB/s) -> 1 s + 5 us latency
  EXPECT_NEAR(*arrival, 1.0 + 5e-6, 1e-9);
}

TEST(Network, SameSiteUsesLan) {
  Topology t;
  t.net.add_host("desktop2", "vu", 4, 10.0);
  auto arrival = t.net.send(t.net.host("desktop"), t.net.host("desktop2"),
                            125e6, TrafficClass::control);
  ASSERT_TRUE(arrival.has_value());
  // 125 MB at 1 Gbit/s (=125 MB/s) -> 1 s + 0.1 ms
  EXPECT_NEAR(*arrival, 1.0 + 1e-4, 1e-9);
}

TEST(Network, WanPathSumsLatenciesAcrossHops) {
  Topology t;
  // seattle -> leiden routes through vu: lan + transatlantic + starplane + lan
  double rtt = t.net.rtt(t.net.host("laptop"), t.net.host("lgm"));
  double one_way = 1e-4 + 45e-3 + 0.5e-3 + 1e-4;
  EXPECT_NEAR(rtt, 2 * one_way, 1e-12);
}

TEST(Network, LinkOccupancyQueuesBackToBackTransfers) {
  Topology t;
  Host& a = t.net.host("desktop");
  Host& b = t.net.host("lgm");
  // Two 125 MB messages over the same 1 Gbit path: the second queues behind
  // the first on every link.
  auto first = t.net.send(a, b, 125e6, TrafficClass::mpi);
  auto second = t.net.send(a, b, 125e6, TrafficClass::mpi);
  ASSERT_TRUE(first && second);
  EXPECT_GT(*second, *first);
  EXPECT_NEAR(*second - *first, 1.0, 1e-6);  // one extra serialization
}

TEST(Network, StreamCapAggregatesAcrossStripes) {
  Topology t;
  // A long fat pipe: 1 Gbit capacity, one stream tops out at 12.5 MB/s.
  t.net.add_site("far", 0.1 * net::ms, 1.0 * net::gbit);
  t.net.add_host("farbox", "far", 4, 10.0);
  t.net.add_link("vu", "far", 40.0 * net::ms, 1.0 * net::gbit, "longfat",
                 100.0 * net::mbit);
  Host& a = t.net.host("desktop");
  Host& b = t.net.host("farbox");
  auto single = t.net.send(a, b, 125e6, TrafficClass::ipl);
  double single_cost = *single;
  // 8 parallel streams fill the link: 8x12.5 MB/s = the full gigabit.
  Topology u;  // fresh occupancy
  u.net.add_site("far", 0.1 * net::ms, 1.0 * net::gbit);
  u.net.add_host("farbox", "far", 4, 10.0);
  u.net.add_link("vu", "far", 40.0 * net::ms, 1.0 * net::gbit, "longfat",
                 100.0 * net::mbit);
  auto striped = u.net.send(u.net.host("desktop"), u.net.host("farbox"),
                            125e6, TrafficClass::ipl, {}, 8);
  ASSERT_TRUE(single && striped);
  // Single stream: 125 MB at 12.5 MB/s = 10 s on the capped hop; 8 stripes
  // aggregate to 100 MB/s = 1.25 s. The rest of the path is identical.
  EXPECT_NEAR(single_cost - *striped, 10.0 - 1.25, 1e-3);
  EXPECT_NEAR(u.net.path_bandwidth(u.net.host("desktop"),
                                   u.net.host("farbox"), 8),
              800.0 * net::mbit, 1.0);
  EXPECT_NEAR(u.net.path_bandwidth(u.net.host("desktop"),
                                   u.net.host("farbox"), 1),
              100.0 * net::mbit, 1.0);
}

TEST(Network, TrafficAccountingPerClass) {
  Topology t;
  Host& a = t.net.host("desktop");
  Host& b = t.net.host("lgm");
  t.net.send(a, b, 1000, TrafficClass::ipl);
  t.net.send(a, b, 500, TrafficClass::mpi);
  bool found = false;
  for (const auto& report : t.net.traffic_report()) {
    if (report.name == "starplane") {
      found = true;
      EXPECT_DOUBLE_EQ(report.bytes_by_class[static_cast<int>(TrafficClass::ipl)],
                       1000);
      EXPECT_DOUBLE_EQ(report.bytes_by_class[static_cast<int>(TrafficClass::mpi)],
                       500);
      EXPECT_EQ(report.messages, 2u);
    }
  }
  EXPECT_TRUE(found);
  t.net.reset_traffic();
  for (const auto& report : t.net.traffic_report()) {
    EXPECT_EQ(report.messages, 0u);
  }
}

TEST(Network, DownLinkLosesMessages) {
  Topology t;
  t.net.set_link_down("starplane", true);
  auto arrival = t.net.send(t.net.host("desktop"), t.net.host("lgm"), 100,
                            TrafficClass::control);
  EXPECT_FALSE(arrival.has_value());
  t.net.set_link_down("starplane", false);
  arrival = t.net.send(t.net.host("desktop"), t.net.host("lgm"), 100,
                       TrafficClass::control);
  EXPECT_TRUE(arrival.has_value());
}

TEST(Network, UnknownLinkThrows) {
  Topology t;
  EXPECT_THROW(t.net.set_link_down("nonexistent", true), ConfigError);
}

TEST(Network, FirewallBlocksInboundAcrossSites) {
  Topology t;
  Host& open_host = t.net.host("desktop");
  Host& fw = t.net.host("lgm");
  fw.firewall().allow_inbound = false;
  EXPECT_FALSE(t.net.can_connect(open_host, fw));
  // outbound from the firewalled host still works
  EXPECT_TRUE(t.net.can_connect(fw, open_host));
}

TEST(Network, NatBlocksInboundEvenWhenOpen) {
  Topology t;
  Host& natted = t.net.host("laptop");
  natted.firewall().nat = true;
  natted.firewall().allow_inbound = true;
  EXPECT_FALSE(t.net.can_connect(t.net.host("desktop"), natted));
}

TEST(Network, SameSiteIgnoresFirewall) {
  Topology t;
  t.net.add_host("desktop2", "vu", 4, 10.0);
  Host& a = t.net.host("desktop");
  Host& b = t.net.host("desktop2");
  b.firewall().allow_inbound = false;
  EXPECT_TRUE(t.net.can_connect(a, b));
}

TEST(Network, DisconnectedSitesUnreachable) {
  Topology t;
  t.net.add_host("island", "nowhere", 1, 1.0);
  EXPECT_FALSE(t.net.can_connect(t.net.host("desktop"), t.net.host("island")));
  EXPECT_THROW(
      t.net.send(t.net.host("desktop"), t.net.host("island"), 1,
                 TrafficClass::control),
      ConnectError);
}

TEST(Network, DeliveryCallbackFiresAtArrival) {
  Topology t;
  double delivered_at = -1;
  t.sim.spawn("sender", [&] {
    t.sim.sleep(1.0);
    t.net.send(t.net.host("desktop"), t.net.host("lgm"), 1000,
               TrafficClass::control, [&] { delivered_at = t.sim.now(); });
  });
  t.sim.run();
  EXPECT_GT(delivered_at, 1.0);
}

TEST(Network, DuplicateHostThrows) {
  Topology t;
  EXPECT_THROW(t.net.add_host("desktop", "vu", 1, 1.0), ConfigError);
}
