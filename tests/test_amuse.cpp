#include <gtest/gtest.h>

#include <cmath>

#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"
#include "amuse/ic.hpp"
#include "amuse/particles.hpp"
#include "amuse/units.hpp"
#include "amuse/workers.hpp"

using namespace jungle;
using namespace jungle::amuse;

// ------------------------------------------------------------------ units

TEST(Units, ConvertLengths) {
  Quantity distance(1.0, units::parsec);
  EXPECT_NEAR(distance.value_in(units::m), 3.0857e16, 1e13);
  EXPECT_NEAR(distance.value_in(units::au), 206265.0, 10.0);
}

TEST(Units, IncompatibleConversionThrows) {
  Quantity mass(1.0, units::msun);
  EXPECT_THROW(mass.value_in(units::parsec), UnitError);
  EXPECT_THROW(mass + Quantity(1.0, units::s), UnitError);
}

TEST(Units, ArithmeticComposesDimensions) {
  Quantity speed = Quantity(10.0, units::km) / Quantity(2.0, units::s);
  EXPECT_NEAR(speed.value_in(units::kms), 5.0, 1e-12);
  Quantity energy = Quantity(2.0, units::kg) * speed * speed;
  EXPECT_NEAR(energy.value_in(units::j), 2.0 * 25e6, 1.0);
}

TEST(Units, SqrtHalvesExponents) {
  Quantity area(9.0, units::m * units::m);
  EXPECT_NEAR(area.sqrt().value_in(units::m), 3.0, 1e-12);
  EXPECT_THROW(Quantity(1.0, units::m).sqrt(), UnitError);
}

TEST(Units, ComparisonAcrossUnits) {
  EXPECT_TRUE(Quantity(1.0, units::parsec) > Quantity(1.0, units::au));
  EXPECT_TRUE(Quantity(999.0, units::m) < Quantity(1.0, units::km));
}

TEST(Units, NBodyConverterRoundTrips) {
  // A 1000 MSun, 1 pc cluster — the embedded-cluster scales.
  NBodyConverter convert(Quantity(1000.0, units::msun),
                         Quantity(1.0, units::parsec));
  double mass_nbody = convert.to_nbody(Quantity(500.0, units::msun));
  EXPECT_NEAR(mass_nbody, 0.5, 1e-12);
  Quantity back = convert.to_si(0.5, units::msun);
  EXPECT_NEAR(back.value_in(units::msun), 500.0, 1e-9);
}

TEST(Units, NBodyTimeScalePhysicallySensible) {
  NBodyConverter convert(Quantity(1000.0, units::msun),
                         Quantity(1.0, units::parsec));
  // T = sqrt(L^3/(GM)) ~ 0.47 Myr for these scales.
  EXPECT_NEAR(convert.time_scale().value_in(units::myr), 0.47, 0.05);
}

TEST(Units, ConverterRejectsWrongDimensions) {
  EXPECT_THROW(NBodyConverter(Quantity(1.0, units::parsec),
                              Quantity(1.0, units::parsec)),
               UnitError);
  NBodyConverter convert(Quantity(1.0, units::msun),
                         Quantity(1.0, units::parsec));
  EXPECT_THROW(convert.to_nbody(Quantity(1.0, units::kelvin)), UnitError);
}

// -------------------------------------------------------------- particles

TEST(Particles, AttributesAndCheckedSet) {
  ParticleSet set;
  set.add_attribute("mass", units::msun);
  set.add_rows(3);
  set.attribute("mass").set(0, Quantity(2.0, units::msun));
  set.attribute("mass").set(1, Quantity(1.98892e30, units::kg));  // 1 MSun
  EXPECT_NEAR(set.attribute("mass").at(1).value_in(units::msun), 1.0, 1e-9);
  EXPECT_THROW(set.attribute("mass").set(2, Quantity(1.0, units::m)),
               UnitError);
}

TEST(Particles, ChannelCopiesWithConversion) {
  ParticleSet se_view;
  se_view.add_attribute("mass", units::kg);
  se_view.add_rows(2);
  se_view.attribute("mass").set(0, Quantity(1.0, units::msun));
  se_view.attribute("mass").set(1, Quantity(2.0, units::msun));

  ParticleSet dyn_view;
  dyn_view.add_attribute("mass", units::msun);
  dyn_view.add_rows(2);
  se_view.copy_attributes_to(dyn_view, {"mass"});
  EXPECT_NEAR(dyn_view.attribute("mass").at(0).value_in(units::msun), 1.0,
              1e-9);
  EXPECT_NEAR(dyn_view.attribute("mass").at(1).value_in(units::msun), 2.0,
              1e-9);
}

TEST(Particles, ChannelSizeMismatchThrows) {
  ParticleSet a, b;
  a.add_attribute("mass", units::kg);
  a.add_rows(2);
  b.add_attribute("mass", units::kg);
  b.add_rows(3);
  EXPECT_THROW(a.copy_attributes_to(b, {"mass"}), CodeError);
}

TEST(Particles, GatherScatterVec3) {
  ParticleSet set;
  set.add_attribute("x", units::parsec);
  set.add_attribute("y", units::parsec);
  set.add_attribute("z", units::parsec);
  set.add_rows(2);
  set.scatter_vec3("x", "y", "z", {{1, 2, 3}, {4, 5, 6}}, units::parsec);
  auto gathered = set.gather_vec3("x", "y", "z", units::parsec);
  EXPECT_DOUBLE_EQ(gathered[1].y, 5.0);
  // Gather in different unit converts.
  auto in_au = set.gather_vec3("x", "y", "z", units::au);
  EXPECT_NEAR(in_au[0].x, 206265.0, 10.0);
}

TEST(Particles, MissingAttributeThrows) {
  ParticleSet set;
  EXPECT_THROW(set.attribute("nope"), ConfigError);
}

// ----------------------------------------------- local workers + clients

namespace {

struct LocalWorld {
  sim::Simulation sim;
  sim::Network net{sim};
  smartsockets::SmartSockets sockets{net};
  sim::Host* desktop;

  LocalWorld() {
    net.add_site("vu");
    desktop = &net.add_host("desktop", "vu", 4, 10);
    desktop->set_gpu(sim::GpuSpec{"gt9600", 90});
  }

  ~LocalWorld() { sim.shutdown(); }

  /// Run `script` as the user's process.
  void run(std::function<void()> script) {
    desktop->spawn("script", std::move(script));
    sim.run();
  }
};

}  // namespace

TEST(AmuseLocal, GravityWorkerEndToEnd) {
  LocalWorld w;
  double energy_error = 1.0;
  w.run([&] {
    WorkerSpec spec;
    spec.code = "phigrape";
    spec.ncores = 4;
    GravityClient gravity(start_local_worker(w.sockets, w.net, *w.desktop,
                                             *w.desktop, spec,
                                             ChannelKind::mpi));
    util::Rng rng(4);
    auto model = ic::plummer_sphere(64, rng);
    gravity.add_particles(model.mass, model.position, model.velocity);
    auto [k0, p0] = gravity.energies();
    gravity.evolve(0.5);
    auto [k1, p1] = gravity.energies();
    energy_error = std::abs((k1 + p1) - (k0 + p0)) / std::abs(k0 + p0);
    EXPECT_NEAR(gravity.model_time(), 0.5, 1e-12);
    auto state = gravity.get_state();
    EXPECT_EQ(state.mass.size(), 64u);
    gravity.close();
  });
  EXPECT_LT(energy_error, 1e-2);
}

TEST(AmuseLocal, EvolveChargesVirtualCpuTime) {
  LocalWorld w;
  double elapsed = 0.0;
  w.run([&] {
    WorkerSpec spec;
    spec.code = "phigrape";
    spec.ncores = 1;
    GravityClient gravity(start_local_worker(w.sockets, w.net, *w.desktop,
                                             *w.desktop, spec,
                                             ChannelKind::mpi));
    util::Rng rng(4);
    auto model = ic::plummer_sphere(128, rng);
    gravity.add_particles(model.mass, model.position, model.velocity);
    double t0 = w.sim.now();
    gravity.evolve(0.125);
    elapsed = w.sim.now() - t0;
    gravity.close();
  });
  // N^2 pair costs at 10 GF/s must take real virtual time.
  EXPECT_GT(elapsed, 1e-5);
  EXPECT_GT(w.desktop->busy_core_seconds(), 0.0);
}

TEST(AmuseLocal, GpuVariantFasterThanCpu) {
  auto run_variant = [](const std::string& code) {
    LocalWorld w;
    double elapsed = -1;
    w.run([&] {
      WorkerSpec spec;
      spec.code = code;
      spec.ncores = 1;
      GravityClient gravity(start_local_worker(w.sockets, w.net, *w.desktop,
                                               *w.desktop, spec,
                                               ChannelKind::mpi));
      util::Rng rng(4);
      auto model = ic::plummer_sphere(256, rng);
      gravity.add_particles(model.mass, model.position, model.velocity);
      double t0 = w.sim.now();
      gravity.evolve(0.125);
      elapsed = w.sim.now() - t0;
      gravity.close();
    });
    return elapsed;
  };
  double cpu = run_variant("phigrape");
  double gpu = run_variant("phigrape-gpu");
  // 90 GF GPU vs 10 GF core: ~9x, minus messaging overheads.
  EXPECT_GT(cpu / gpu, 4.0);
}

TEST(AmuseLocal, FieldWorkerComputesCrossGravity) {
  LocalWorld w;
  w.run([&] {
    WorkerSpec spec;
    spec.code = "fi";
    FieldClient field(start_local_worker(w.sockets, w.net, *w.desktop,
                                         *w.desktop, spec,
                                         ChannelKind::socket));
    std::vector<double> masses{1.0};
    std::vector<Vec3> sources{{0, 0, 0}};
    field.set_sources(masses, sources);
    auto accel = field.accel_at(std::vector<Vec3>{{2, 0, 0}});
    ASSERT_EQ(accel.size(), 1u);
    // Point mass: |a| = 1/4 at r=2 (small softening).
    EXPECT_NEAR(accel[0].x, -0.25, 0.01);
    field.close();
  });
}

TEST(AmuseLocal, SseWorkerRoundTrip) {
  LocalWorld w;
  w.run([&] {
    WorkerSpec spec;
    spec.code = "sse";
    StellarClient stellar(start_local_worker(w.sockets, w.net, *w.desktop,
                                             *w.desktop, spec,
                                             ChannelKind::socket));
    std::vector<double> zams{1.0, 20.0};
    stellar.add_stars(zams);
    stellar.evolve_to(50.0);  // 20 MSun star is gone by 50 Myr
    auto masses = stellar.masses();
    ASSERT_EQ(masses.size(), 2u);
    EXPECT_NEAR(masses[0], 1.0, 0.01);
    EXPECT_DOUBLE_EQ(masses[1], 1.4);
    auto sn = stellar.supernovae();
    ASSERT_EQ(sn.size(), 1u);
    EXPECT_EQ(sn[0], 1);
    stellar.close();
  });
}

TEST(AmuseLocal, HydroWorkerEvolvesGas) {
  LocalWorld w;
  w.run([&] {
    WorkerSpec spec;
    spec.code = "gadget";
    HydroClient hydro(start_local_worker(w.sockets, w.net, *w.desktop,
                                         *w.desktop, spec,
                                         ChannelKind::mpi));
    util::Rng rng(17);
    auto gas = ic::gas_sphere(200, rng, 1.0, 1.0, 1.0);  // hot ball
    hydro.add_gas(gas.mass, gas.position, gas.velocity, gas.internal_energy);
    hydro.evolve(0.05);
    auto state = hydro.get_state();
    EXPECT_EQ(state.mass.size(), 200u);
    // Densities computed during the run.
    EXPECT_GT(state.density[0], 0.0);
    auto [kin, therm, pot] = hydro.energies();
    EXPECT_GT(therm, 0.0);
    (void)kin;
    (void)pot;
    hydro.close();
  });
}

TEST(AmuseLocal, WorkerErrorPropagatesAsCodeError) {
  LocalWorld w;
  bool threw = false;
  w.run([&] {
    WorkerSpec spec;
    spec.code = "sse";
    StellarClient stellar(start_local_worker(w.sockets, w.net, *w.desktop,
                                             *w.desktop, spec,
                                             ChannelKind::socket));
    std::vector<double> zams{1.0};
    stellar.add_stars(zams);
    stellar.evolve_to(10.0);
    try {
      stellar.evolve_to(1.0);  // backwards: worker raises
    } catch (const CodeError& failure) {
      threw = true;
      EXPECT_NE(std::string(failure.what()).find("backwards"),
                std::string::npos);
    }
    // The worker survives an error and keeps serving.
    EXPECT_EQ(stellar.masses().size(), 1u);
    stellar.close();
  });
  EXPECT_TRUE(threw);
}

TEST(AmuseLocal, AsyncCallsOverlapOnDistinctWorkers) {
  // Two workers evolving concurrently: total time ~ max, not sum.
  LocalWorld w;
  double concurrent = -1;
  w.run([&] {
    WorkerSpec spec;
    spec.code = "phigrape";
    spec.ncores = 1;
    GravityClient a(start_local_worker(w.sockets, w.net, *w.desktop,
                                       *w.desktop, spec, ChannelKind::mpi));
    GravityClient b(start_local_worker(w.sockets, w.net, *w.desktop,
                                       *w.desktop, spec, ChannelKind::mpi));
    util::Rng rng(4);
    auto model = ic::plummer_sphere(128, rng);
    a.add_particles(model.mass, model.position, model.velocity);
    b.add_particles(model.mass, model.position, model.velocity);
    double t0 = w.sim.now();
    Future fa = a.evolve_async(0.0625);
    Future fb = b.evolve_async(0.0625);
    fa.get();
    fb.get();
    concurrent = w.sim.now() - t0;

    double t1 = w.sim.now();
    a.evolve(0.125);
    b.evolve(0.125);
    double sequential = w.sim.now() - t1;
    // Concurrent futures must beat back-to-back sync calls.
    EXPECT_LT(concurrent, 0.75 * sequential);
    a.close();
    b.close();
  });
  EXPECT_GT(concurrent, 0.0);
}

TEST(AmuseLocal, ParallelGadgetMatchesSerialPhysics) {
  // The multi-rank worker must produce the same thermodynamics as serial
  // (same shared-memory numerics, partitioned compute).
  auto run_gadget = [](int nranks) {
    sim::Simulation sim;
    sim::Network net{sim};
    smartsockets::SmartSockets sockets{net};
    net.add_site("das4", 2e-6, 32e9 / 8);
    std::vector<sim::Host*> nodes;
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(&net.add_host("n" + std::to_string(i), "das4", 8, 10));
    }
    double thermal = -1;
    nodes[0]->spawn("script", [&] {
      WorkerSpec spec;
      spec.code = "gadget";
      spec.nranks = nranks;
      // start_local_worker runs it on nodes[0]; multi-rank needs run_worker
      // with all hosts — use the lower-level path.
      static std::uint64_t seq = 900;
      std::string service = "w" + std::to_string(++seq);
      auto& listener = sockets.listen(*nodes[0], service);
      auto hosts = nodes;
      nodes[0]->spawn("gadget-worker", [&listener, &sockets, hosts, spec,
                                        service, &net] {
        auto conn = listener.accept();
        sockets.unlisten(*hosts[0], service);
        run_worker(std::make_unique<ConnectionPipe>(std::move(conn)), spec,
                   hosts, net);
      });
      auto conn =
          sockets.connect(*nodes[0], *nodes[0], service,
                          sim::TrafficClass::mpi);
      HydroClient hydro(std::make_unique<RpcClient>(
          *nodes[0], std::make_unique<ConnectionPipe>(std::move(conn)),
          "gadget"));
      util::Rng rng(17);
      auto gas = ic::gas_sphere(300, rng, 1.0, 1.0, 0.5);
      hydro.add_gas(gas.mass, gas.position, gas.velocity,
                    gas.internal_energy);
      hydro.evolve(0.02);
      auto [kin, therm, pot] = hydro.energies();
      (void)kin;
      (void)pot;
      thermal = therm;
      hydro.close();
    });
    sim.run();
    return thermal;
  };
  double serial = run_gadget(1);
  double parallel = run_gadget(4);
  EXPECT_NEAR(parallel, serial, std::abs(serial) * 1e-9);
}
