#include <gtest/gtest.h>

#include "amuse/scenario.hpp"

using namespace jungle::amuse::scenario;

namespace {

Options small_options() {
  Options options;
  options.n_stars = 200;
  options.n_gas = 800;
  options.iterations = 1;
  options.with_stellar_evolution = false;  // keep the smoke tests fast
  return options;
}

}  // namespace

// E1's shape at reduced size: the orderings the paper reports must hold at
// any problem size our model runs.

TEST(Scenario, GpuConfigurationBeatsCpuByFactorSeveral) {
  Result cpu = run_scenario(Kind::local_cpu, small_options());
  Result gpu = run_scenario(Kind::local_gpu, small_options());
  EXPECT_GT(cpu.seconds_per_iteration / gpu.seconds_per_iteration, 2.0);
}

TEST(Scenario, RemoteGpuComparableToLocalGpu) {
  // Paper: 89 -> 84 s/iter ("using a GPU 30 km away is faster than the GPU
  // inside our own machine"). At minimum the remote GPU must not lose badly.
  Result local = run_scenario(Kind::local_gpu, small_options());
  Result remote = run_scenario(Kind::remote_gpu, small_options());
  EXPECT_LT(remote.seconds_per_iteration,
            1.25 * local.seconds_per_iteration);
  // ... and it must actually have used the WAN.
  EXPECT_GT(remote.wan_bytes, 0.0);
  EXPECT_DOUBLE_EQ(local.wan_bytes, 0.0);
}

TEST(Scenario, JungleIsFastestConfiguration) {
  Options options = small_options();
  Result gpu = run_scenario(Kind::local_gpu, options);
  Result jungle = run_scenario(Kind::jungle, options);
  EXPECT_LT(jungle.seconds_per_iteration, gpu.seconds_per_iteration);
}

TEST(Scenario, TransatlanticCouplerCostsButWorks) {
  Options options = small_options();
  Result jungle = run_scenario(Kind::jungle, options);
  Result sc11 = run_scenario(Kind::sc11, options);
  // Worst case is slower (every RPC pays a 45 ms one-way trip) but bounded.
  // At this tiny size latency dominates (~25x); at the bench's production
  // size the overhead is ~1.4x.
  EXPECT_GT(sc11.seconds_per_iteration, jungle.seconds_per_iteration);
  EXPECT_LT(sc11.seconds_per_iteration,
            40.0 * jungle.seconds_per_iteration);
  EXPECT_GT(sc11.wan_bytes, jungle.wan_bytes);
}

TEST(Scenario, DeterministicRuns) {
  Result a = run_scenario(Kind::local_gpu, small_options());
  Result b = run_scenario(Kind::local_gpu, small_options());
  EXPECT_DOUBLE_EQ(a.seconds_per_iteration, b.seconds_per_iteration);
  EXPECT_DOUBLE_EQ(a.wan_bytes, b.wan_bytes);
}

TEST(Scenario, DashboardListsAllFourModels) {
  Options options = small_options();
  options.with_stellar_evolution = true;
  Result jungle = run_scenario(Kind::jungle, options);
  EXPECT_NE(jungle.dashboard.find("phigrape-gpu"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("octgrav"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("gadget"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("sse"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("=tunnel="), std::string::npos);
}
