#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "amuse/scenario.hpp"

using namespace jungle::amuse::scenario;

namespace {

Options small_options() {
  Options options;
  options.n_stars = 200;
  options.n_gas = 800;
  options.iterations = 1;
  options.with_stellar_evolution = false;  // keep the smoke tests fast
  return options;
}

jungle::util::Config load_topology(const std::string& name) {
  std::string path =
      std::string(JUNGLE_SOURCE_DIR) + "/examples/topologies/" + name;
  std::ifstream in(path);
  if (!in) throw jungle::ConfigError("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return jungle::util::Config::parse(text.str());
}

}  // namespace

// E1's shape at reduced size: the orderings the paper reports must hold at
// any problem size our model runs.

TEST(Scenario, GpuConfigurationBeatsCpuByFactorSeveral) {
  Result cpu = run_scenario(Kind::local_cpu, small_options());
  Result gpu = run_scenario(Kind::local_gpu, small_options());
  EXPECT_GT(cpu.seconds_per_iteration / gpu.seconds_per_iteration, 2.0);
}

TEST(Scenario, RemoteGpuComparableToLocalGpu) {
  // Paper: 89 -> 84 s/iter ("using a GPU 30 km away is faster than the GPU
  // inside our own machine"). At minimum the remote GPU must not lose badly.
  Result local = run_scenario(Kind::local_gpu, small_options());
  Result remote = run_scenario(Kind::remote_gpu, small_options());
  EXPECT_LT(remote.seconds_per_iteration,
            1.25 * local.seconds_per_iteration);
  // ... and it must actually have used the WAN.
  EXPECT_GT(remote.wan_bytes, 0.0);
  EXPECT_DOUBLE_EQ(local.wan_bytes, 0.0);
}

TEST(Scenario, JungleIsFastestConfiguration) {
  Options options = small_options();
  Result gpu = run_scenario(Kind::local_gpu, options);
  Result jungle = run_scenario(Kind::jungle, options);
  EXPECT_LT(jungle.seconds_per_iteration, gpu.seconds_per_iteration);
}

TEST(Scenario, TransatlanticCouplerCostsButWorks) {
  Options options = small_options();
  Result jungle = run_scenario(Kind::jungle, options);
  Result sc11 = run_scenario(Kind::sc11, options);
  // Worst case is slower (every RPC pays a 45 ms one-way trip) but bounded.
  // At this tiny size latency dominates (~25x); at the bench's production
  // size the overhead is ~1.4x.
  EXPECT_GT(sc11.seconds_per_iteration, jungle.seconds_per_iteration);
  EXPECT_LT(sc11.seconds_per_iteration,
            40.0 * jungle.seconds_per_iteration);
  EXPECT_GT(sc11.wan_bytes, jungle.wan_bytes);
}

TEST(Scenario, DeterministicRuns) {
  Result a = run_scenario(Kind::local_gpu, small_options());
  Result b = run_scenario(Kind::local_gpu, small_options());
  EXPECT_DOUBLE_EQ(a.seconds_per_iteration, b.seconds_per_iteration);
  EXPECT_DOUBLE_EQ(a.wan_bytes, b.wan_bytes);
}

TEST(Scenario, DashboardListsAllFourModels) {
  Options options = small_options();
  options.with_stellar_evolution = true;
  Result jungle = run_scenario(Kind::jungle, options);
  EXPECT_NE(jungle.dashboard.find("phigrape-gpu"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("octgrav"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("gadget"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("sse"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("=tunnel="), std::string::npos);
  // The placement panel reports the kernel->host map and modeled vs
  // measured cost for the hard-coded kinds too.
  EXPECT_NE(jungle.dashboard.find("-- placement"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("modeled="), std::string::npos);
  EXPECT_GT(jungle.modeled_seconds_per_iteration, 0.0);
}

// ---------------------------------------------- adaptive placement (PR 2)

TEST(Scenario, AutoplaceModeledCostNeverWorseThanJungle) {
  Options options = small_options();
  JungleTestbed bed;
  auto autoplaced = placement_for(bed, Kind::autoplace, options);
  auto table = placement_for(bed, Kind::jungle, options);
  EXPECT_LE(autoplaced.modeled_seconds_per_iteration,
            table.modeled_seconds_per_iteration);

  Result result = run_scenario(Kind::autoplace, options);
  EXPECT_EQ(result.placement, autoplaced.describe());
  EXPECT_GT(result.seconds_per_iteration, 0.0);
  EXPECT_EQ(result.restarts, 0);
  EXPECT_NE(result.dashboard.find("-- placement"), std::string::npos);
}

TEST(Scenario, AutoplaceRunsArbitraryIniTopology) {
  // Any topology INI is a runnable scenario: a GPU-less two-host world.
  const char* ini = R"(
[site home]
lan_latency_ms = 0.1
lan_gbit = 1

[host desktop]
site = home
cores = 4
gflops = 0.15

[host beefy]
site = home
cores = 16
gflops = 0.3

[resource beefy]
middleware = ssh
frontend = beefy

[scenario]
client = desktop
)";
  Options options = small_options();
  Result result =
      run_scenario_config(jungle::util::Config::parse(ini), options);
  EXPECT_GT(result.seconds_per_iteration, 0.0);
  EXPECT_GT(result.bound_gas_fraction, 0.0);
  // No GPU anywhere: the scheduler must have picked the CPU kernels.
  EXPECT_NE(result.placement.find("phigrape"), std::string::npos);
  EXPECT_EQ(result.placement.find("phigrape-gpu"), std::string::npos);
  EXPECT_NE(result.placement.find("fi"), std::string::npos);
}

// ------------------------------------------- wide-area data path (PR 3)

TEST(Scenario, PipelinedDataPathShipsFarFewerWanBytes) {
  // The delta exchange + combined coupler queries against the serial
  // full-fetch baseline, on the jungle map where coupling crosses WANs.
  Options options = small_options();
  options.iterations = 4;  // let the delta caches settle past the cold start
  options.datapath = Datapath::synchronous;
  Result sync = run_scenario(Kind::jungle, options);
  options.datapath = Datapath::pipelined;
  Result pipelined = run_scenario(Kind::jungle, options);
  EXPECT_LT(pipelined.wan_ipl_bytes_per_step,
            0.6 * sync.wan_ipl_bytes_per_step);
  EXPECT_LE(pipelined.seconds_per_iteration, sync.seconds_per_iteration);
  // A pure wire optimization: the trajectory observable is bit-identical.
  EXPECT_DOUBLE_EQ(pipelined.bound_gas_fraction, sync.bound_gas_fraction);
}

TEST(Scenario, TopologyCorpusPlacesAndRunsSanely) {
  // Every deployment INI in examples/topologies is a runnable scenario:
  // autoplace must produce a finite-cost plan with every role mapped to a
  // reachable machine, and a short run must complete.
  const char* corpus[] = {"lan-dense.ini", "asymmetric-bandwidth.ini",
                          "deep-wan-3hop.ini", "nat-edge.ini",
                          "transatlantic-stripe.ini"};
  Options options = small_options();
  for (const char* name : corpus) {
    SCOPED_TRACE(name);
    jungle::util::Config config = load_topology(name);
    JungleTestbed bed(config);
    auto plan = placement_for(bed, Kind::autoplace, options);
    EXPECT_LT(plan.modeled_seconds_per_iteration, 1e6);
    for (const auto& assignment : plan.roles) {
      ASSERT_NE(assignment.host, nullptr);
      EXPECT_FALSE(assignment.spec.code.empty());
    }
    Result result = run_scenario_config(load_topology(name), options);
    EXPECT_GT(result.seconds_per_iteration, 0.0);
    EXPECT_GT(result.bound_gas_fraction, 0.0);
    EXPECT_EQ(result.restarts, 0);
  }
}

TEST(Scenario, DeepWanPlacementGoesRemoteAndStripes) {
  // On the 3-hop deep-WAN topology the weak edge client cannot carry the
  // models: the plan must cross the WAN, which is what the pipelined path
  // (and the striped bulk transfers on its stream-capped links) is for.
  // Needs a real problem size — at toy sizes everything fits the laptop.
  Options options = small_options();
  options.n_stars = 400;
  options.n_gas = 3000;
  options.iterations = 2;
  JungleTestbed bed(load_topology("deep-wan-3hop.ini"));
  auto plan = placement_for(bed, Kind::autoplace, options);
  int remote_roles = 0;
  for (const auto& assignment : plan.roles) {
    if (!assignment.local()) ++remote_roles;
  }
  EXPECT_GE(remote_roles, 2);

  options.datapath = Datapath::synchronous;
  Result sync = run_scenario_config(load_topology("deep-wan-3hop.ini"),
                                    options);
  options.datapath = Datapath::pipelined;
  Result pipelined = run_scenario_config(load_topology("deep-wan-3hop.ini"),
                                         options);
  EXPECT_LT(pipelined.seconds_per_iteration, sync.seconds_per_iteration);
}

TEST(Scenario, NatEdgeNeverPlacesOnUnreachableFrontend) {
  // gamer-pc sits behind NAT: no middleware can reach it from the (also
  // NAT'd) client, so the planner must not choose it even though its GPU
  // looks attractive.
  Options options = small_options();
  JungleTestbed bed(load_topology("nat-edge.ini"));
  auto plan = placement_for(bed, Kind::autoplace, options);
  for (const auto& assignment : plan.roles) {
    EXPECT_EQ(assignment.resource.find("gamer-pc"), std::string::npos);
  }
}

TEST(Scenario, AutoplaceFaultReplacementCompletesRun) {
  // Kill the host running gravity mid-run: the scheduler must re-place it
  // on a surviving machine and the run must finish with physics close to
  // the fault-free trajectory (checkpoint rollback, not restart-from-zero).
  Options options = small_options();
  // Enough stars that the planner sends gravity to a remote GPU (at tiny
  // sizes the desktop GPU wins and there is nothing remote to kill).
  options.n_stars = 600;
  options.n_gas = 2000;
  options.iterations = 3;
  JungleTestbed probe;
  auto plan = placement_for(probe, Kind::autoplace, options);
  ASSERT_NE(plan.role(jungle::sched::Role::gravity).host, nullptr);
  std::string gravity_host =
      plan.role(jungle::sched::Role::gravity).host->name();
  ASSERT_FALSE(plan.role(jungle::sched::Role::gravity).resource.empty())
      << "fault test needs gravity on a remote resource";

  Result clean = run_scenario(Kind::autoplace, options);

  Options faulty = options;
  faulty.kill_host = gravity_host;
  faulty.kill_after_iteration = 1;
  Result recovered = run_scenario(Kind::autoplace, faulty);
  EXPECT_EQ(recovered.restarts, 1);
  EXPECT_EQ(recovered.iterations, options.iterations);
  // The re-placed map must not use the dead machine.
  EXPECT_EQ(recovered.placement.find(gravity_host), std::string::npos);
  EXPECT_NEAR(recovered.bound_gas_fraction, clean.bound_gas_fraction, 0.05);
  EXPECT_NE(recovered.dashboard.find("restarts=1"), std::string::npos);

  // Delta caches must be invalidated across the rollback/replay: the
  // recovered pipelined run lands bit-exactly on the synchronous baseline
  // recovering from the same fault — a stale client state cache or coupler
  // source/accel cache would diverge the replayed trajectory.
  Options faulty_sync = faulty;
  faulty_sync.datapath = Datapath::synchronous;
  Result recovered_sync = run_scenario(Kind::autoplace, faulty_sync);
  EXPECT_EQ(recovered_sync.restarts, 1);
  EXPECT_DOUBLE_EQ(recovered.bound_gas_fraction,
                   recovered_sync.bound_gas_fraction);
}
