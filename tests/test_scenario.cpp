#include <gtest/gtest.h>

#include "amuse/scenario.hpp"

using namespace jungle::amuse::scenario;

namespace {

Options small_options() {
  Options options;
  options.n_stars = 200;
  options.n_gas = 800;
  options.iterations = 1;
  options.with_stellar_evolution = false;  // keep the smoke tests fast
  return options;
}

}  // namespace

// E1's shape at reduced size: the orderings the paper reports must hold at
// any problem size our model runs.

TEST(Scenario, GpuConfigurationBeatsCpuByFactorSeveral) {
  Result cpu = run_scenario(Kind::local_cpu, small_options());
  Result gpu = run_scenario(Kind::local_gpu, small_options());
  EXPECT_GT(cpu.seconds_per_iteration / gpu.seconds_per_iteration, 2.0);
}

TEST(Scenario, RemoteGpuComparableToLocalGpu) {
  // Paper: 89 -> 84 s/iter ("using a GPU 30 km away is faster than the GPU
  // inside our own machine"). At minimum the remote GPU must not lose badly.
  Result local = run_scenario(Kind::local_gpu, small_options());
  Result remote = run_scenario(Kind::remote_gpu, small_options());
  EXPECT_LT(remote.seconds_per_iteration,
            1.25 * local.seconds_per_iteration);
  // ... and it must actually have used the WAN.
  EXPECT_GT(remote.wan_bytes, 0.0);
  EXPECT_DOUBLE_EQ(local.wan_bytes, 0.0);
}

TEST(Scenario, JungleIsFastestConfiguration) {
  Options options = small_options();
  Result gpu = run_scenario(Kind::local_gpu, options);
  Result jungle = run_scenario(Kind::jungle, options);
  EXPECT_LT(jungle.seconds_per_iteration, gpu.seconds_per_iteration);
}

TEST(Scenario, TransatlanticCouplerCostsButWorks) {
  Options options = small_options();
  Result jungle = run_scenario(Kind::jungle, options);
  Result sc11 = run_scenario(Kind::sc11, options);
  // Worst case is slower (every RPC pays a 45 ms one-way trip) but bounded.
  // At this tiny size latency dominates (~25x); at the bench's production
  // size the overhead is ~1.4x.
  EXPECT_GT(sc11.seconds_per_iteration, jungle.seconds_per_iteration);
  EXPECT_LT(sc11.seconds_per_iteration,
            40.0 * jungle.seconds_per_iteration);
  EXPECT_GT(sc11.wan_bytes, jungle.wan_bytes);
}

TEST(Scenario, DeterministicRuns) {
  Result a = run_scenario(Kind::local_gpu, small_options());
  Result b = run_scenario(Kind::local_gpu, small_options());
  EXPECT_DOUBLE_EQ(a.seconds_per_iteration, b.seconds_per_iteration);
  EXPECT_DOUBLE_EQ(a.wan_bytes, b.wan_bytes);
}

TEST(Scenario, DashboardListsAllFourModels) {
  Options options = small_options();
  options.with_stellar_evolution = true;
  Result jungle = run_scenario(Kind::jungle, options);
  EXPECT_NE(jungle.dashboard.find("phigrape-gpu"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("octgrav"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("gadget"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("sse"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("=tunnel="), std::string::npos);
  // The placement panel reports the kernel->host map and modeled vs
  // measured cost for the hard-coded kinds too.
  EXPECT_NE(jungle.dashboard.find("-- placement"), std::string::npos);
  EXPECT_NE(jungle.dashboard.find("modeled="), std::string::npos);
  EXPECT_GT(jungle.modeled_seconds_per_iteration, 0.0);
}

// ---------------------------------------------- adaptive placement (PR 2)

TEST(Scenario, AutoplaceModeledCostNeverWorseThanJungle) {
  Options options = small_options();
  JungleTestbed bed;
  auto autoplaced = placement_for(bed, Kind::autoplace, options);
  auto table = placement_for(bed, Kind::jungle, options);
  EXPECT_LE(autoplaced.modeled_seconds_per_iteration,
            table.modeled_seconds_per_iteration);

  Result result = run_scenario(Kind::autoplace, options);
  EXPECT_EQ(result.placement, autoplaced.describe());
  EXPECT_GT(result.seconds_per_iteration, 0.0);
  EXPECT_EQ(result.restarts, 0);
  EXPECT_NE(result.dashboard.find("-- placement"), std::string::npos);
}

TEST(Scenario, AutoplaceRunsArbitraryIniTopology) {
  // Any topology INI is a runnable scenario: a GPU-less two-host world.
  const char* ini = R"(
[site home]
lan_latency_ms = 0.1
lan_gbit = 1

[host desktop]
site = home
cores = 4
gflops = 0.15

[host beefy]
site = home
cores = 16
gflops = 0.3

[resource beefy]
middleware = ssh
frontend = beefy

[scenario]
client = desktop
)";
  Options options = small_options();
  Result result =
      run_scenario_config(jungle::util::Config::parse(ini), options);
  EXPECT_GT(result.seconds_per_iteration, 0.0);
  EXPECT_GT(result.bound_gas_fraction, 0.0);
  // No GPU anywhere: the scheduler must have picked the CPU kernels.
  EXPECT_NE(result.placement.find("phigrape"), std::string::npos);
  EXPECT_EQ(result.placement.find("phigrape-gpu"), std::string::npos);
  EXPECT_NE(result.placement.find("fi"), std::string::npos);
}

TEST(Scenario, AutoplaceFaultReplacementCompletesRun) {
  // Kill the host running gravity mid-run: the scheduler must re-place it
  // on a surviving machine and the run must finish with physics close to
  // the fault-free trajectory (checkpoint rollback, not restart-from-zero).
  Options options = small_options();
  // Enough stars that the planner sends gravity to a remote GPU (at tiny
  // sizes the desktop GPU wins and there is nothing remote to kill).
  options.n_stars = 600;
  options.n_gas = 2000;
  options.iterations = 3;
  JungleTestbed probe;
  auto plan = placement_for(probe, Kind::autoplace, options);
  ASSERT_NE(plan.role(jungle::sched::Role::gravity).host, nullptr);
  std::string gravity_host =
      plan.role(jungle::sched::Role::gravity).host->name();
  ASSERT_FALSE(plan.role(jungle::sched::Role::gravity).resource.empty())
      << "fault test needs gravity on a remote resource";

  Result clean = run_scenario(Kind::autoplace, options);

  Options faulty = options;
  faulty.kill_host = gravity_host;
  faulty.kill_after_iteration = 1;
  Result recovered = run_scenario(Kind::autoplace, faulty);
  EXPECT_EQ(recovered.restarts, 1);
  EXPECT_EQ(recovered.iterations, options.iterations);
  // The re-placed map must not use the dead machine.
  EXPECT_EQ(recovered.placement.find(gravity_host), std::string::npos);
  EXPECT_NEAR(recovered.bound_gas_fraction, clean.bound_gas_fraction, 0.05);
  EXPECT_NE(recovered.dashboard.find("restarts=1"), std::string::npos);
}
