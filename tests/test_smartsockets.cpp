#include <gtest/gtest.h>

#include "smartsockets/smartsockets.hpp"

using namespace jungle;
using namespace jungle::sim;
using namespace jungle::smartsockets;

namespace {

/// Three-site jungle: an open cluster (amsterdam), a firewalled GPU machine
/// (leiden), and a NAT'ed laptop (seattle) — the paper's connectivity zoo.
struct World {
  Simulation sim;
  Network net{sim};
  SmartSockets sockets{net};

  World() {
    net.add_site("amsterdam", 0.1e-3, 1e9 / 8);
    net.add_site("leiden", 0.1e-3, 1e9 / 8);
    net.add_site("seattle", 0.1e-3, 1e9 / 8);
    net.add_host("fs0", "amsterdam", 8, 10);
    net.add_host("node0", "amsterdam", 8, 10);
    net.add_host("lgm", "leiden", 8, 10);
    net.add_host("laptop", "seattle", 2, 5);
    net.add_link("amsterdam", "leiden", 0.5e-3, 1e9 / 8, "starplane");
    net.add_link("seattle", "amsterdam", 45e-3, 1e9 / 8, "transatlantic");
  }

  ~World() { sim.shutdown(); }

  std::vector<std::uint8_t> bytes(std::initializer_list<int> values) {
    return std::vector<std::uint8_t>(values.begin(), values.end());
  }
};

}  // namespace

TEST(SmartSockets, DirectEndToEnd) {
  World w;
  ServerSocket& server = w.sockets.listen(w.net.host("lgm"), "echo");
  std::string received;
  ConnectionKind server_kind{};
  w.net.host("lgm").spawn("server", [&] {
    auto conn = server.accept();
    server_kind = conn->kind();
    auto data = conn->recv();
    ASSERT_TRUE(data.has_value());
    received.assign(data->begin(), data->end());
    conn->send(std::vector<std::uint8_t>{'o', 'k'});
    conn->close();
  });
  std::string reply;
  w.net.host("fs0").spawn("client", [&] {
    auto conn = w.sockets.connect(w.net.host("fs0"), w.net.host("lgm"),
                                  "echo", TrafficClass::control);
    EXPECT_EQ(conn->kind(), ConnectionKind::direct);
    conn->send(std::vector<std::uint8_t>{'h', 'i'});
    auto data = conn->recv();
    ASSERT_TRUE(data.has_value());
    reply.assign(data->begin(), data->end());
    auto eof = conn->recv();
    EXPECT_FALSE(eof.has_value());
  });
  w.sim.run();
  EXPECT_EQ(received, "hi");
  EXPECT_EQ(reply, "ok");
  EXPECT_EQ(server_kind, ConnectionKind::direct);
  EXPECT_EQ(w.sockets.setup_stats().direct, 1);
}

TEST(SmartSockets, ReverseConnectionThroughFirewall) {
  World w;
  // lgm blocks inbound; hubs exist at both sites (hubs pair via reverse
  // setups among themselves, so a one-way-reachable hub still overlays).
  w.net.host("lgm").firewall().allow_inbound = false;
  w.sockets.start_hub(w.net.host("fs0"));
  w.sockets.start_hub(w.net.host("lgm"));
  ServerSocket& server = w.sockets.listen(w.net.host("lgm"), "svc");
  bool connected = false;
  bool accepted = false;
  w.net.host("lgm").spawn("server", [&] {
    auto conn = server.accept();
    accepted = true;
    EXPECT_EQ(conn->kind(), ConnectionKind::reverse);
  });
  w.net.host("fs0").spawn("client", [&] {
    auto conn = w.sockets.connect(w.net.host("fs0"), w.net.host("lgm"), "svc",
                                  TrafficClass::control);
    EXPECT_EQ(conn->kind(), ConnectionKind::reverse);
    connected = true;
  });
  w.sim.run();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(accepted);
  EXPECT_EQ(w.sockets.setup_stats().reverse, 1);
}

TEST(SmartSockets, RelayEndToEnd) {
  World w;
  w.net.host("lgm").firewall().allow_inbound = false;
  w.net.host("laptop").firewall().nat = true;
  w.sockets.start_hub(w.net.host("fs0"));
  ServerSocket& server = w.sockets.listen(w.net.host("lgm"), "svc");
  std::string received;
  w.net.host("lgm").spawn("server", [&] {
    auto conn = server.accept();
    auto data = conn->recv();
    ASSERT_TRUE(data.has_value());
    received.assign(data->begin(), data->end());
  });
  w.net.host("laptop").spawn("client", [&] {
    auto conn = w.sockets.connect(w.net.host("laptop"), w.net.host("lgm"),
                                  "svc", TrafficClass::control);
    EXPECT_EQ(conn->kind(), ConnectionKind::relayed);
    conn->send(std::vector<std::uint8_t>{'x', 'y', 'z'});
  });
  w.sim.run();
  EXPECT_EQ(received, "xyz");
  EXPECT_EQ(w.sockets.setup_stats().relayed, 1);
  // Relayed traffic crosses both WAN links (via the fs0 hub).
  bool starplane_used = false, transatlantic_used = false;
  for (const auto& link : w.net.traffic_report()) {
    if (link.name == "starplane" && link.messages > 0) starplane_used = true;
    if (link.name == "transatlantic" && link.messages > 0) {
      transatlantic_used = true;
    }
  }
  EXPECT_TRUE(starplane_used);
  EXPECT_TRUE(transatlantic_used);
}

TEST(SmartSockets, ConnectionRefusedWithoutListener) {
  World w;
  bool threw = false;
  w.net.host("fs0").spawn("client", [&] {
    try {
      w.sockets.connect(w.net.host("fs0"), w.net.host("lgm"), "nothing",
                        TrafficClass::control);
    } catch (const ConnectError&) {
      threw = true;
    }
  });
  w.sim.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(w.sockets.setup_stats().failed, 1);
}

TEST(SmartSockets, NoOverlayRouteFails) {
  World w;
  w.net.host("lgm").firewall().allow_inbound = false;
  // No hubs at all: neither reverse nor relay possible.
  w.sockets.listen(w.net.host("lgm"), "svc");
  bool threw = false;
  w.net.host("fs0").spawn("client", [&] {
    try {
      w.sockets.connect(w.net.host("fs0"), w.net.host("lgm"), "svc",
                        TrafficClass::control);
    } catch (const ConnectError&) {
      threw = true;
    }
  });
  w.sim.run();
  EXPECT_TRUE(threw);
}

TEST(SmartSockets, MessagesSurviveTransientLinkFailure) {
  World w;
  ServerSocket& server = w.sockets.listen(w.net.host("lgm"), "svc");
  std::vector<std::string> received;
  w.net.host("lgm").spawn("server", [&] {
    auto conn = server.accept();
    while (auto data = conn->recv()) {
      received.emplace_back(data->begin(), data->end());
    }
  });
  w.net.host("fs0").spawn("client", [&] {
    auto conn = w.sockets.connect(w.net.host("fs0"), w.net.host("lgm"), "svc",
                                  TrafficClass::control);
    conn->send(std::vector<std::uint8_t>{'1'});
    w.net.set_link_down("starplane", true);
    conn->send(std::vector<std::uint8_t>{'2'});  // lost, then retried
    conn->send(std::vector<std::uint8_t>{'3'});
    w.sim.sleep(0.2);
    w.net.set_link_down("starplane", false);
    conn->send(std::vector<std::uint8_t>{'4'});
    conn->close();
  });
  w.sim.run();
  // All four arrive, in order, despite the outage.
  ASSERT_EQ(received.size(), 4u);
  EXPECT_EQ(received[0], "1");
  EXPECT_EQ(received[1], "2");
  EXPECT_EQ(received[2], "3");
  EXPECT_EQ(received[3], "4");
}

TEST(SmartSockets, HostCrashBreaksConnection) {
  World w;
  ServerSocket& server = w.sockets.listen(w.net.host("lgm"), "svc");
  bool server_saw_break = false;
  w.net.host("lgm").spawn("server", [&] {
    auto conn = server.accept();
    try {
      while (conn->recv()) {
      }
    } catch (const ConnectError&) {
      server_saw_break = true;
    }
  });
  w.net.host("fs0").spawn("client", [&] {
    auto conn = w.sockets.connect(w.net.host("fs0"), w.net.host("lgm"), "svc",
                                  TrafficClass::control);
    w.sim.sleep(1.0);
    w.net.host("fs0").crash();  // kills this process too
  });
  w.sim.run();
  EXPECT_TRUE(server_saw_break);
}

TEST(SmartSockets, OverlayMapMarksTunnelsAndOneWays) {
  World w;
  w.net.host("lgm").firewall().allow_inbound = false;  // one-way edge
  w.sockets.start_hub(w.net.host("fs0"));
  w.sockets.start_hub(w.net.host("lgm"));
  w.sockets.start_hub(w.net.host("laptop"), /*tunneled=*/true);
  auto edges = w.sockets.overlay_map();
  int tunnels = 0, oneways = 0, open = 0;
  for (const auto& edge : edges) {
    switch (edge.kind) {
      case OverlayEdge::Kind::tunnel: ++tunnels; break;
      case OverlayEdge::Kind::oneway: ++oneways; break;
      case OverlayEdge::Kind::open: ++open; break;
    }
  }
  EXPECT_EQ(tunnels, 2);  // laptop pairs with both others
  EXPECT_EQ(oneways, 1);  // fs0 -> lgm only
  EXPECT_EQ(open, 0);
}

TEST(SmartSockets, SetupChargesRtt) {
  World w;
  w.sockets.listen(w.net.host("lgm"), "svc");
  double setup_time = -1;
  w.net.host("fs0").spawn("client", [&] {
    double start = w.sim.now();
    w.sockets.connect(w.net.host("fs0"), w.net.host("lgm"), "svc",
                      TrafficClass::control);
    setup_time = w.sim.now() - start;
  });
  w.sim.run();
  EXPECT_NEAR(setup_time, w.net.rtt(w.net.host("fs0"), w.net.host("lgm")),
              1e-9);
}

TEST(SmartSockets, DuplicateListenThrows) {
  World w;
  w.sockets.listen(w.net.host("lgm"), "svc");
  EXPECT_THROW(w.sockets.listen(w.net.host("lgm"), "svc"), ConnectError);
  w.sockets.unlisten(w.net.host("lgm"), "svc");
  EXPECT_NO_THROW(w.sockets.listen(w.net.host("lgm"), "svc"));
}

TEST(SmartSockets, BulkFramesStripeAcrossStreamCappedLinks) {
  // A window-limited lightpath: one stream gets 1/8th of the capacity. A
  // bulk frame (above the stripe threshold) is carried over parallel
  // streams and aggregates most of the link back; a small frame is not.
  auto run_transfer = [](double payload_bytes) {
    World w;
    w.net.add_site("far", 0.1e-3, 1e9 / 8);
    w.net.add_host("farbox", "far", 4, 10);
    w.net.add_link("amsterdam", "far", 40e-3, 1e9 / 8, "longfat",
                   (1e9 / 8) / 8.0);
    ServerSocket& server = w.sockets.listen(w.net.host("farbox"), "bulk");
    double received_at = -1;
    std::uint64_t striped = 0;
    w.net.host("farbox").spawn("server", [&] {
      auto conn = server.accept();
      conn->recv();
      received_at = w.sim.now();
    });
    w.net.host("fs0").spawn("client", [&] {
      auto conn = w.sockets.connect(w.net.host("fs0"), w.net.host("farbox"),
                                    "bulk", TrafficClass::ipl);
      conn->send(std::vector<std::uint8_t>(
          static_cast<std::size_t>(payload_bytes), 0));
      striped = conn->striped_sends();
    });
    w.sim.run();
    return std::pair{received_at, striped};
  };
  auto [bulk_time, bulk_striped] = run_transfer(12.5e6);  // 12.5 MB
  auto [small_time, small_striped] = run_transfer(32e3);  // under threshold
  EXPECT_EQ(bulk_striped, 1u);
  EXPECT_EQ(small_striped, 0u);
  // Unstriped, the capped hop alone would cost 12.5 MB / (125/8 MB/s) =
  // 0.8 s (plus ~0.35 s of LAN crossings, latency and setup); with 8
  // stripes the hop shrinks to ~0.1 s.
  EXPECT_LT(bulk_time, 0.6);
  EXPECT_GT(bulk_time, 0.15);
  EXPECT_LT(small_time, 0.2);
}

TEST(SmartSockets, LargeTransferRespectsBandwidth) {
  World w;
  ServerSocket& server = w.sockets.listen(w.net.host("lgm"), "bulk");
  double received_at = -1;
  w.net.host("lgm").spawn("server", [&] {
    auto conn = server.accept();
    conn->recv();
    received_at = w.sim.now();
  });
  w.net.host("fs0").spawn("client", [&] {
    auto conn = w.sockets.connect(w.net.host("fs0"), w.net.host("lgm"),
                                  "bulk", TrafficClass::control);
    conn->send(std::vector<std::uint8_t>(125'000'000, 0));  // 125 MB
  });
  w.sim.run();
  // 125 MB over 1 Gbit/s ~ 1 s per link crossing; three links on the path.
  EXPECT_GT(received_at, 1.0);
  EXPECT_LT(received_at, 5.0);
}
