#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "amuse/ic.hpp"
#include "kernels/bhtree.hpp"
#include "kernels/hermite.hpp"
#include "kernels/sph.hpp"
#include "kernels/sse.hpp"
#include "kernels/treefield.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

using namespace jungle;
using namespace jungle::kernels;

// ---------------------------------------------------------------- hermite

TEST(Hermite, TwoBodyCircularOrbitPeriod) {
  // Equal masses m=0.5 at +/-0.5 on x, circular velocity v=0.5 each:
  // total mass 1, separation 1 -> omega=1, period 2*pi.
  HermiteIntegrator::Params params;
  params.eps2 = 0.0;
  params.eta = 0.01;
  HermiteIntegrator nbody(params);
  nbody.add_particle(0.5, {0.5, 0, 0}, {0, 0.5, 0});
  nbody.add_particle(0.5, {-0.5, 0, 0}, {0, -0.5, 0});
  double period = 2.0 * M_PI;
  nbody.evolve(period);
  // Back to the start after one full orbit.
  EXPECT_NEAR(nbody.positions()[0].x, 0.5, 5e-3);
  EXPECT_NEAR(nbody.positions()[0].y, 0.0, 5e-3);
}

TEST(Hermite, EnergyConservedOverOrbit) {
  HermiteIntegrator::Params params;
  params.eps2 = 0.0;
  params.eta = 0.01;
  HermiteIntegrator nbody(params);
  nbody.add_particle(0.5, {0.5, 0, 0}, {0, 0.5, 0});
  nbody.add_particle(0.5, {-0.5, 0, 0}, {0, -0.5, 0});
  double e0 = nbody.kinetic_energy() + nbody.potential_energy();
  nbody.evolve(20.0);
  double e1 = nbody.kinetic_energy() + nbody.potential_energy();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 1e-6);
}

TEST(Hermite, PlummerEnergyDriftSmall) {
  util::Rng rng(42);
  auto model = amuse::ic::plummer_sphere(128, rng);
  HermiteIntegrator nbody;  // default eps2 softening
  for (std::size_t i = 0; i < model.mass.size(); ++i) {
    nbody.add_particle(model.mass[i], model.position[i], model.velocity[i]);
  }
  double e0 = nbody.kinetic_energy() + nbody.potential_energy();
  nbody.evolve(1.0);
  double e1 = nbody.kinetic_energy() + nbody.potential_energy();
  EXPECT_LT(std::abs(e1 - e0) / std::abs(e0), 2e-3);
}

TEST(Hermite, MomentumConserved) {
  util::Rng rng(7);
  auto model = amuse::ic::plummer_sphere(64, rng);
  HermiteIntegrator nbody;
  for (std::size_t i = 0; i < model.mass.size(); ++i) {
    nbody.add_particle(model.mass[i], model.position[i], model.velocity[i]);
  }
  nbody.evolve(0.5);
  Vec3 p{};
  for (std::size_t i = 0; i < nbody.size(); ++i) {
    p += nbody.masses()[i] * nbody.velocities()[i];
  }
  EXPECT_NEAR(p.norm(), 0.0, 1e-10);
}

TEST(Hermite, PairCountGrowsQuadratically) {
  auto pairs_for = [](std::size_t n) {
    util::Rng rng(1);
    auto model = amuse::ic::plummer_sphere(n, rng);
    HermiteIntegrator nbody;
    for (std::size_t i = 0; i < n; ++i) {
      nbody.add_particle(model.mass[i], model.position[i], model.velocity[i]);
    }
    nbody.evolve(0.01);
    return static_cast<double>(nbody.pair_evaluations());
  };
  double small = pairs_for(64);
  double large = pairs_for(128);
  // Per force evaluation the ratio is exactly 4; step counts differ a bit.
  EXPECT_GT(large / small, 2.5);
}

TEST(Hermite, KickChangesVelocity) {
  HermiteIntegrator nbody;
  nbody.add_particle(1.0, {0, 0, 0}, {0, 0, 0});
  nbody.kick(0, {0.5, 0, 0});
  EXPECT_DOUBLE_EQ(nbody.velocities()[0].x, 0.5);
}

TEST(Hermite, EvolveEmptySystemAdvancesTime) {
  HermiteIntegrator nbody;
  nbody.evolve(3.0);
  EXPECT_DOUBLE_EQ(nbody.time(), 3.0);
}

// ----------------------------------------------------------------- bhtree

TEST(BarnesHut, MatchesDirectSummationAtSmallTheta) {
  util::Rng rng(11);
  auto model = amuse::ic::plummer_sphere(256, rng);
  BarnesHutTree tree(0.01, 1e-4);  // theta -> 0: effectively direct
  tree.build(model.position, model.mass);
  for (int probe = 0; probe < 8; ++probe) {
    Vec3 point = model.position[probe * 20];
    Vec3 direct{};
    for (std::size_t j = 0; j < model.mass.size(); ++j) {
      Vec3 dr = model.position[j] - point;
      double d2 = dr.norm2() + 1e-4;
      direct += (model.mass[j] / (d2 * std::sqrt(d2))) * dr;
    }
    Vec3 approx = tree.accel_at(point);
    EXPECT_NEAR((approx - direct).norm(), 0.0, 1e-9);
  }
}

TEST(BarnesHut, ErrorBoundedAtModerateTheta) {
  util::Rng rng(13);
  auto model = amuse::ic::plummer_sphere(512, rng);
  BarnesHutTree tree(0.6, 1e-4);
  tree.build(model.position, model.mass);
  double worst = 0.0;
  for (int probe = 0; probe < 16; ++probe) {
    Vec3 point = model.position[probe * 30];
    Vec3 direct{};
    for (std::size_t j = 0; j < model.mass.size(); ++j) {
      Vec3 dr = model.position[j] - point;
      double d2 = dr.norm2() + 1e-4;
      direct += (model.mass[j] / (d2 * std::sqrt(d2))) * dr;
    }
    Vec3 approx = tree.accel_at(point);
    double rel = (approx - direct).norm() / (direct.norm() + 1e-12);
    worst = std::max(worst, rel);
  }
  EXPECT_LT(worst, 0.05);  // few-percent monopole accuracy
}

TEST(BarnesHut, InteractionCountSubQuadratic) {
  auto interactions_for = [](std::size_t n) {
    util::Rng rng(3);
    auto model = amuse::ic::plummer_sphere(n, rng);
    BarnesHutTree tree(0.6, 1e-4);
    tree.build(model.position, model.mass);
    for (std::size_t i = 0; i < n; ++i) tree.accel_at(model.position[i]);
    return static_cast<double>(tree.interactions());
  };
  double small = interactions_for(256);
  double large = interactions_for(1024);
  // Quadratic would be x16; N log N is ~x5-9 at these sizes.
  EXPECT_LT(large / small, 11.0);
}

TEST(BarnesHut, PotentialNegativeAndDeepestAtCentre) {
  util::Rng rng(5);
  auto model = amuse::ic::plummer_sphere(256, rng);
  BarnesHutTree tree(0.6, 1e-4);
  tree.build(model.position, model.mass);
  double centre = tree.potential_at({0, 0, 0});
  double edge = tree.potential_at({10, 0, 0});
  EXPECT_LT(centre, edge);
  EXPECT_LT(centre, 0.0);
  EXPECT_NEAR(edge, -1.0 / 10.0, 0.01);  // total mass 1 far away
}

TEST(BarnesHut, EmptyTreeGivesZero) {
  BarnesHutTree tree;
  tree.build({}, {});
  EXPECT_DOUBLE_EQ(tree.accel_at(Vec3{1, 2, 3}).norm(), 0.0);
  EXPECT_DOUBLE_EQ(tree.potential_at(Vec3{1, 2, 3}), 0.0);
}

TEST(BarnesHut, CoincidentParticlesKeepTotalMass) {
  // Regression: >= kLeafCapacity exactly-coincident particles used to be
  // folded into an interior monopole with an inconsistent normalization.
  // They now extend the deepest leaf's body list, so the far field must see
  // exactly the summed mass and the build must not blow up.
  std::vector<Vec3> positions(12, Vec3{0.25, -0.5, 0.125});
  std::vector<double> masses(12, 0.5);
  positions.push_back({1.0, 1.0, 1.0});  // one distinct particle
  masses.push_back(2.0);
  BarnesHutTree tree(0.6, 0.0);
  tree.build(positions, masses);

  // Far field: total mass 8 at distance ~100.
  Vec3 far{100.0, 0.0, 0.0};
  double phi = tree.potential_at(far);
  double expected = 0.0;
  for (std::size_t j = 0; j < masses.size(); ++j) {
    expected -= masses[j] / (positions[j] - far).norm();
  }
  EXPECT_NEAR(phi, expected, std::abs(expected) * 1e-3);

  // Near field at the distinct particle: the 12 coincident bodies act as a
  // single point of mass 6 (exact, not an approximate monopole).
  Vec3 probe = positions.back();
  Vec3 accel = tree.accel_at(probe);
  Vec3 dr = positions[0] - probe;
  double r = dr.norm();
  Vec3 direct = (6.0 / (r * r * r)) * dr;
  EXPECT_NEAR((accel - direct).norm(), 0.0, 1e-12);
}

TEST(BarnesHut, ThreeCoincidentOnlyParticlesAreExact) {
  std::vector<Vec3> positions(3, Vec3{0, 0, 0});
  std::vector<double> masses{1.0, 2.0, 3.0};
  BarnesHutTree tree(0.6, 0.0);
  tree.build(positions, masses);
  Vec3 probe{0.0, 3.0, 0.0};
  Vec3 accel = tree.accel_at(probe);
  EXPECT_NEAR(accel.y, -6.0 / 9.0, 1e-12);
  EXPECT_NEAR(accel.x, 0.0, 1e-15);
  // Potential at the coincident point skips the self-bodies cleanly.
  EXPECT_DOUBLE_EQ(tree.potential_at(Vec3{0, 0, 0}), 0.0);
}

TEST(BarnesHut, BatchedAccelMatchesSerialBitExactly) {
  util::Rng rng(17);
  auto model = amuse::ic::plummer_sphere(512, rng);
  BarnesHutTree tree(0.6, 1e-4);
  tree.build(model.position, model.mass);

  std::vector<Vec3> serial(model.position.size());
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < model.position.size(); ++i) {
    serial[i] = tree.accel_at(model.position[i], count);
  }

  util::ThreadPool pool(4);
  tree.set_thread_pool(&pool);
  std::vector<Vec3> batched(model.position.size());
  std::uint64_t before = tree.interactions();
  tree.accel_at(model.position, batched);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].x, batched[i].x) << i;
    EXPECT_EQ(serial[i].y, batched[i].y) << i;
    EXPECT_EQ(serial[i].z, batched[i].z) << i;
  }
  // Interaction accounting is identical too.
  EXPECT_EQ(tree.interactions() - before, count);
}

TEST(Hermite, ForcesIndependentOfThreadCount) {
  // N above kParallelThreshold so the tiled parallel path engages.
  const std::size_t n = 400;
  auto run = [&](unsigned lanes) {
    util::Rng rng(23);
    auto model = amuse::ic::plummer_sphere(n, rng);
    util::ThreadPool pool(lanes);
    HermiteIntegrator nbody;
    nbody.set_thread_pool(&pool);
    for (std::size_t i = 0; i < n; ++i) {
      nbody.add_particle(model.mass[i], model.position[i], model.velocity[i]);
    }
    nbody.evolve(0.125);
    nbody.set_thread_pool(nullptr);  // pool dies with this lambda frame
    return nbody;
  };
  auto one = run(1);
  auto four_a = run(4);
  auto four_b = run(4);
  for (std::size_t i = 0; i < n; ++i) {
    // Same lane count => bit-identical (chunk->lane mapping cannot matter).
    EXPECT_EQ(four_a.positions()[i].x, four_b.positions()[i].x) << i;
    EXPECT_EQ(four_a.velocities()[i].y, four_b.velocities()[i].y) << i;
    // 1 lane (sequential symmetric path) vs 4 lanes (tiled path): the
    // summation order differs, so allow rounding-level drift only.
    EXPECT_NEAR(one.positions()[i].x, four_a.positions()[i].x, 1e-12) << i;
    EXPECT_NEAR(one.positions()[i].y, four_a.positions()[i].y, 1e-12) << i;
    EXPECT_NEAR(one.positions()[i].z, four_a.positions()[i].z, 1e-12) << i;
    EXPECT_NEAR(one.velocities()[i].x, four_a.velocities()[i].x, 1e-12) << i;
  }
}

TEST(TreeField, CrossForcesAreSymmetricInMass) {
  // Field of a 2-mass source at a probe: doubling source masses doubles
  // the acceleration.
  TreeField field(0.6, 0.0);
  std::vector<double> masses{1.0, 1.0};
  std::vector<Vec3> sources{{1, 0, 0}, {-1, 0, 0}};
  field.set_sources(masses, sources);
  Vec3 a1 = field.accel_at(std::vector<Vec3>{{0, 1, 0}})[0];
  std::vector<double> doubled{2.0, 2.0};
  field.set_sources(doubled, sources);
  Vec3 a2 = field.accel_at(std::vector<Vec3>{{0, 1, 0}})[0];
  EXPECT_NEAR(a2.norm(), 2.0 * a1.norm(), 1e-12);
}

// -------------------------------------------------------------------- sse

TEST(Sse, LifetimeDecreasesWithMass) {
  double previous = std::numeric_limits<double>::max();
  for (double mass : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    double lifetime = StellarEvolution::main_sequence_lifetime_myr(mass);
    EXPECT_LT(lifetime, previous) << "mass " << mass;
    previous = lifetime;
  }
}

TEST(Sse, SunLikeStarStaysOnMainSequence) {
  StellarEvolution se;
  se.add_star(1.0);
  se.evolve_to(4600.0);  // the Sun today
  EXPECT_EQ(se.star(0).phase, StellarEvolution::Phase::main_sequence);
  EXPECT_NEAR(se.star(0).mass, 1.0, 0.01);
}

TEST(Sse, MassiveStarExplodes) {
  StellarEvolution se;
  se.add_star(20.0);
  double t_end = StellarEvolution::main_sequence_lifetime_myr(20.0) +
                 StellarEvolution::giant_lifetime_myr(20.0) + 1.0;
  se.evolve_to(t_end);
  EXPECT_EQ(se.star(0).phase, StellarEvolution::Phase::neutron_star);
  EXPECT_DOUBLE_EQ(se.star(0).mass, 1.4);
  ASSERT_EQ(se.recent_supernovae().size(), 1u);
  EXPECT_EQ(se.recent_supernovae()[0], 0);
}

TEST(Sse, LowMassStarBecomesWhiteDwarf) {
  StellarEvolution se;
  se.add_star(2.0);
  double t_end = StellarEvolution::main_sequence_lifetime_myr(2.0) * 1.2;
  se.evolve_to(t_end);
  EXPECT_EQ(se.star(0).phase, StellarEvolution::Phase::white_dwarf);
  EXPECT_DOUBLE_EQ(se.star(0).mass, 0.6);
  EXPECT_TRUE(se.recent_supernovae().empty());
}

TEST(Sse, MassNeverIncreases) {
  StellarEvolution se;
  se.add_star(15.0);
  double previous = 15.0;
  for (double t = 0; t < 20.0; t += 0.5) {
    se.evolve_to(t);
    EXPECT_LE(se.star(0).mass, previous + 1e-12);
    previous = se.star(0).mass;
  }
}

TEST(Sse, MassLossAccumulatesDuringGiantPhase) {
  StellarEvolution se;
  se.add_star(10.0);
  double t_ms = StellarEvolution::main_sequence_lifetime_myr(10.0);
  se.evolve_to(t_ms + 0.5 * StellarEvolution::giant_lifetime_myr(10.0));
  EXPECT_EQ(se.star(0).phase, StellarEvolution::Phase::giant);
  EXPECT_GT(se.recent_mass_loss(), 0.0);
}

TEST(Sse, BackwardsEvolutionThrows) {
  StellarEvolution se;
  se.add_star(1.0);
  se.evolve_to(10.0);
  EXPECT_THROW(se.evolve_to(5.0), CodeError);
}

TEST(Sse, GiantsAreBrighterAndBigger) {
  StellarEvolution se;
  se.add_star(5.0);
  se.evolve_to(1.0);
  double l_ms = se.star(0).luminosity;
  double r_ms = se.star(0).radius;
  double t_ms = StellarEvolution::main_sequence_lifetime_myr(5.0);
  se.evolve_to(t_ms + 0.1 * StellarEvolution::giant_lifetime_myr(5.0));
  EXPECT_GT(se.star(0).luminosity, 5.0 * l_ms);
  EXPECT_GT(se.star(0).radius, 10.0 * r_ms);
}

// -------------------------------------------------------------------- sph

namespace {
/// Uniform-ish gas ball for SPH tests.
kernels::SphSystem make_gas_ball(std::size_t n, double u = 0.05,
                                 bool gravity = false) {
  SphSystem::Params params;
  params.self_gravity = gravity;
  SphSystem sph(params);
  util::Rng rng(99);
  auto gas = amuse::ic::gas_sphere(n, rng, 1.0, 1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    sph.add_particle(gas.mass[i], gas.position[i], gas.velocity[i], u);
  }
  return sph;
}
}  // namespace

TEST(Sph, DensityMatchesUniformSphere) {
  auto sph = make_gas_ball(2000);
  sph.prepare_step();
  sph.compute_density(0, sph.size());
  // Homogeneous sphere of mass 1, radius 1: rho = 3/(4 pi) ~ 0.2387.
  double expected = 3.0 / (4.0 * M_PI);
  // Median density of the inner half (edges are biased low).
  std::vector<double> inner;
  for (std::size_t i = 0; i < sph.size(); ++i) {
    if (sph.positions()[i].norm() < 0.6) inner.push_back(sph.densities()[i]);
  }
  ASSERT_GT(inner.size(), 100u);
  std::sort(inner.begin(), inner.end());
  double median = inner[inner.size() / 2];
  // Summation density self-term biases high at finite neighbour number.
  EXPECT_NEAR(median, expected, 0.30 * expected);
}

TEST(Sph, MomentumConservedWithoutGravity) {
  auto sph = make_gas_ball(500);
  sph.evolve(0.05);
  Vec3 p{};
  for (std::size_t i = 0; i < sph.size(); ++i) {
    p += sph.masses()[i] * sph.velocities()[i];
  }
  EXPECT_NEAR(p.norm(), 0.0, 1e-8);
}

TEST(Sph, PressureDrivesExpansion) {
  // Hot ball, no gravity: the rarefaction wave needs about a sound-crossing
  // time to reach the centre, after which the ball blows apart.
  auto sph = make_gas_ball(400, /*u=*/1.0);
  auto mean_radius = [&] {
    double sum = 0;
    for (const Vec3& p : sph.positions()) sum += p.norm();
    return sum / static_cast<double>(sph.size());
  };
  double r0 = mean_radius();
  sph.evolve(0.8);
  EXPECT_GT(mean_radius(), 1.15 * r0);
}

TEST(Sph, EnergyInjectionRaisesThermalEnergy) {
  auto sph = make_gas_ball(300);
  sph.prepare_step();
  sph.compute_density(0, sph.size());
  double before = sph.thermal_energy();
  sph.inject_energy(0, 10.0);
  double after = sph.thermal_energy();
  EXPECT_NEAR(after - before, 10.0 * sph.masses()[0], 1e-9);
}

TEST(Sph, InjectionBeforeFirstDensityIsNotLost) {
  SphSystem sph;
  sph.params().self_gravity = false;
  sph.add_particle(1.0, {0, 0, 0}, {0, 0, 0}, 1.0);
  sph.inject_energy(0, 2.0);
  sph.prepare_step();
  sph.compute_density(0, 1);
  EXPECT_NEAR(sph.internal_energies()[0], 3.0, 1e-9);
}

TEST(Sph, SelfGravityBindsColdGas) {
  // Cold ball with gravity: it contracts (mean radius shrinks).
  auto sph = make_gas_ball(400, /*u=*/0.01, /*gravity=*/true);
  auto mean_radius = [&] {
    double sum = 0;
    for (const Vec3& p : sph.positions()) sum += p.norm();
    return sum / static_cast<double>(sph.size());
  };
  double r0 = mean_radius();
  sph.evolve(0.3);
  EXPECT_LT(mean_radius(), r0);
}

TEST(Sph, TimestepRespectsCfl) {
  auto sph = make_gas_ball(200, 1.0);
  sph.prepare_step();
  sph.compute_density(0, sph.size());
  sph.compute_forces(0, sph.size());
  double dt = sph.timestep(0, sph.size());
  EXPECT_GT(dt, 0.0);
  EXPECT_LE(dt, sph.params().dt_max);
}

TEST(Sph, GridNeighboursMatchBruteForce) {
  auto sph = make_gas_ball(800);
  sph.prepare_step();
  // Also exercise a radius larger than one grid cell (span > 1).
  for (double radius : {0.08, 0.25, 0.9}) {
    for (int i = 0; i < static_cast<int>(sph.size()); i += 37) {
      auto grid = sph.neighbours_of(i, radius);
      std::vector<int> brute;
      for (int j = 0; j < static_cast<int>(sph.size()); ++j) {
        if ((sph.positions()[j] - sph.positions()[i]).norm2() <=
            radius * radius) {
          brute.push_back(j);
        }
      }
      ASSERT_EQ(grid, brute) << "particle " << i << " radius " << radius;
    }
  }
}

TEST(Sph, ResultsIndependentOfThreadCount) {
  auto run = [&](unsigned lanes) {
    util::ThreadPool pool(lanes);
    auto sph = make_gas_ball(600, /*u=*/0.05, /*gravity=*/true);
    sph.set_thread_pool(&pool);
    sph.evolve(0.05);
    sph.set_thread_pool(nullptr);  // pool dies with this lambda frame
    return sph;
  };
  auto one = run(1);
  auto four_a = run(4);
  auto four_b = run(4);
  ASSERT_EQ(one.size(), four_a.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    // The density/force passes write disjoint per-particle slots in a fixed
    // neighbour order, so any lane count is bit-identical.
    EXPECT_EQ(one.densities()[i], four_a.densities()[i]) << i;
    EXPECT_EQ(one.positions()[i].x, four_a.positions()[i].x) << i;
    EXPECT_EQ(one.velocities()[i].z, four_a.velocities()[i].z) << i;
    EXPECT_EQ(four_a.positions()[i].x, four_b.positions()[i].x) << i;
  }
  EXPECT_EQ(one.neighbour_interactions(), four_a.neighbour_interactions());
  EXPECT_EQ(one.tree_interactions(), four_a.tree_interactions());
}

TEST(Sph, EvolveReachesExactEndTime) {
  auto sph = make_gas_ball(100);
  sph.evolve(0.037);
  EXPECT_DOUBLE_EQ(sph.time(), 0.037);
}

// ------------------------------------------------------------- ic checks

TEST(InitialConditions, PlummerIsVirialised) {
  util::Rng rng(123);
  auto model = amuse::ic::plummer_sphere(2000, rng);
  double kinetic = 0.0;
  for (std::size_t i = 0; i < model.mass.size(); ++i) {
    kinetic += 0.5 * model.mass[i] * model.velocity[i].norm2();
  }
  // Standard N-body units: T = 1/4.
  EXPECT_NEAR(kinetic, 0.25, 0.03);
  double total_mass =
      std::accumulate(model.mass.begin(), model.mass.end(), 0.0);
  EXPECT_NEAR(total_mass, 1.0, 1e-12);
}

TEST(InitialConditions, PlummerCentred) {
  util::Rng rng(9);
  auto model = amuse::ic::plummer_sphere(500, rng);
  Vec3 com{};
  for (std::size_t i = 0; i < model.mass.size(); ++i) {
    com += model.mass[i] * model.position[i];
  }
  EXPECT_NEAR(com.norm(), 0.0, 1e-12);
}

TEST(InitialConditions, SalpeterSlopeRoughlyRight) {
  util::Rng rng(77);
  auto masses = amuse::ic::salpeter_masses(20000, rng, 0.3, 25.0);
  // Count ratio across one decade: N(0.3..1)/N(1..10) for alpha=2.35.
  int low = 0, high = 0;
  for (double m : masses) {
    if (m < 1.0) ++low;
    else if (m < 10.0) ++high;
  }
  double ratio = static_cast<double>(low) / std::max(1, high);
  // Analytic ratio ~ (0.3^-1.35 - 1) / (1 - 10^-1.35) ~ 4.3
  EXPECT_NEAR(ratio, 4.3, 1.0);
  for (double m : masses) {
    EXPECT_GE(m, 0.3);
    EXPECT_LE(m, 25.0);
  }
}

TEST(InitialConditions, GasSphereInsideRadius) {
  util::Rng rng(31);
  auto gas = amuse::ic::gas_sphere(1000, rng, 2.0, 3.0);
  double total = std::accumulate(gas.mass.begin(), gas.mass.end(), 0.0);
  EXPECT_NEAR(total, 2.0, 1e-12);
  for (const Vec3& p : gas.position) EXPECT_LE(p.norm(), 3.0 + 1e-12);
}
