#include <gtest/gtest.h>

#include "amuse/scenario.hpp"
#include "sched/scheduler.hpp"

using namespace jungle;
using namespace jungle::sched;
using jungle::amuse::scenario::JungleTestbed;
using jungle::amuse::scenario::Kind;

namespace {

Workload small_load() {
  Workload load;
  load.n_stars = 200;
  load.n_gas = 800;
  load.iterations = 4;
  return load;
}

/// The paper's production size: at this scale compute dominates messaging
/// and the remote placements win (the Figs 9/12 regime).
Workload production_load() {
  Workload load;
  load.n_stars = 1000;
  load.n_gas = 10000;
  return load;
}

/// A one-machine world: desktop only, optionally without its GPU — the
/// paper's local-CPU configuration as a topology.
struct LocalWorld {
  sim::Simulation sim;
  sim::Network net{sim};
  std::vector<gat::Resource> resources;  // none: only the client machine
  sim::Host* desktop;

  explicit LocalWorld(bool with_gpu) {
    net.add_site("vu");
    desktop = &net.add_host("desktop", "vu", 4, 0.15);
    if (with_gpu) desktop->set_gpu(sim::GpuSpec{"geforce", 1.2});
  }
};

/// Client plus one single-node remote resource whose WAN latency and queue
/// delay are configurable — the knobs the monotonicity invariants turn.
struct RemoteWorld {
  sim::Simulation sim;
  sim::Network net{sim};
  std::vector<gat::Resource> resources;
  sim::Host* desktop;
  sim::Host* node;

  explicit RemoteWorld(double latency_s, double queue_delay = 0.0,
                       double node_gpu_gflops = 6.0) {
    net.add_site("vu", 0.1e-3, 1e9 / 8);
    net.add_site("far", 0.1e-3, 1e9 / 8);
    desktop = &net.add_host("desktop", "vu", 4, 0.15);
    node = &net.add_host("node", "far", 8, 0.3);
    if (node_gpu_gflops > 0) {
      node->set_gpu(sim::GpuSpec{"tesla", node_gpu_gflops});
    }
    net.add_link("vu", "far", latency_s, 1e9 / 8, "wan");
    gat::Resource remote;
    remote.name = "far";
    remote.middleware = "sge";
    remote.frontend = node;
    remote.queue_base_delay = queue_delay;
    resources.push_back(remote);
  }

  Placement remote_everything() {
    Scheduler scheduler(net, *desktop, resources);
    Placement p = scheduler.plan(small_load());
    return p;
  }
};

}  // namespace

TEST(Sched, LocalCpuTopologyReproducesLocalCpuPlacement) {
  // Given only a GPU-less desktop, the scheduler must rediscover the
  // paper's local-CPU configuration: Fi + phiGRAPE(CPU), everything local.
  LocalWorld world(/*with_gpu=*/false);
  Scheduler scheduler(world.net, *world.desktop, world.resources);
  Placement p = scheduler.plan(small_load());
  EXPECT_EQ(p.role(Role::gravity).spec.code, "phigrape");
  EXPECT_EQ(p.role(Role::coupler).spec.code, "fi");
  EXPECT_EQ(p.role(Role::hydro).spec.code, "gadget");
  EXPECT_EQ(p.role(Role::stellar).spec.code, "sse");
  for (const Assignment& a : p.roles) EXPECT_TRUE(a.local());
}

TEST(Sched, LocalGpuTopologyPrefersGpuKernels) {
  // Same machine with its GPU back: the tree kernels must move onto it
  // (the paper's local-GPU configuration, 353 -> 89 s/iter).
  LocalWorld world(/*with_gpu=*/true);
  Scheduler scheduler(world.net, *world.desktop, world.resources);
  Placement p = scheduler.plan(small_load());
  EXPECT_EQ(p.role(Role::gravity).spec.code, "phigrape-gpu");
  EXPECT_EQ(p.role(Role::coupler).spec.code, "octgrav");
}

TEST(Sched, CostModelMonotoneInLatency) {
  RemoteWorld near_world(0.5e-3);
  RemoteWorld far_world(45e-3);
  Placement near_p = near_world.remote_everything();
  Placement far_p = far_world.remote_everything();
  // Same candidate space, only the WAN latency differs: pin the same
  // (remote) assignment on both and compare modeled costs directly.
  Scheduler near_s(near_world.net, *near_world.desktop, near_world.resources);
  Scheduler far_s(far_world.net, *far_world.desktop, far_world.resources);
  Placement pinned = near_p;
  double cost_near = near_s.score(small_load(), pinned);
  // Rebuild the same placement against the far world's hosts.
  Placement pinned_far = pinned;
  for (Assignment& a : pinned_far.roles) {
    if (!a.local()) a.host = far_world.node;
    if (a.local()) a.host = far_world.desktop;
  }
  double cost_far = far_s.score(small_load(), pinned_far);
  EXPECT_GT(cost_far, cost_near);
}

TEST(Sched, CostModelMonotoneInQueueDelay) {
  RemoteWorld cheap(0.5e-3, /*queue_delay=*/0.0);
  RemoteWorld queued(0.5e-3, /*queue_delay=*/30.0);
  Scheduler cheap_s(cheap.net, *cheap.desktop, cheap.resources);
  Scheduler queued_s(queued.net, *queued.desktop, queued.resources);
  Placement p = cheap.remote_everything();
  Placement p_cheap = p;
  double base = cheap_s.score(small_load(), p_cheap);
  Placement p_queued = p;
  for (Assignment& a : p_queued.roles) {
    a.host = a.local() ? queued.desktop : queued.node;
  }
  double delayed = queued_s.score(small_load(), p_queued);
  EXPECT_GT(delayed, base);
}

TEST(Sched, PrefersGpuForTreeKernelsWhenGpuDominates) {
  // Enough stars that gravity dominates the evolve phase: a remote Tesla
  // across a fast link beats the 0.15 GF/core desktop.
  Workload load = production_load();
  load.n_stars = 2000;
  load.n_gas = 500;
  RemoteWorld world(0.5e-3, 0.0, /*node_gpu_gflops=*/6.0);
  Scheduler scheduler(world.net, *world.desktop, world.resources);
  Placement p = scheduler.plan(load);
  EXPECT_EQ(p.role(Role::gravity).spec.code, "phigrape-gpu");
  EXPECT_EQ(p.role(Role::gravity).resource, "far");
  // ... and when the "GPU" is slower than the desktop's cores, it is left
  // alone (the kernels stay CPU-side).
  RemoteWorld weak(0.5e-3, 0.0, /*node_gpu_gflops=*/0.01);
  Scheduler weak_s(weak.net, *weak.desktop, weak.resources);
  Placement q = weak_s.plan(load);
  EXPECT_NE(q.role(Role::gravity).spec.code, "phigrape-gpu");
}

TEST(Sched, JungleRediscoversPaperPlacementShape) {
  JungleTestbed bed;
  amuse::scenario::Options options;
  options.n_stars = 1000;
  options.n_gas = 10000;
  Placement plan =
      amuse::scenario::placement_for(bed, Kind::autoplace, options);
  // Gravity belongs on a remote GPU (the LGM Tesla is the fastest device).
  EXPECT_EQ(plan.role(Role::gravity).spec.code, "phigrape-gpu");
  EXPECT_EQ(plan.role(Role::gravity).resource, "lgm");
  // The gas code belongs on the 8-node DAS-4 VU cluster.
  EXPECT_EQ(plan.role(Role::hydro).resource, "das4-vu");
  EXPECT_EQ(plan.role(Role::hydro).spec.nranks, 8);
  // The coupler belongs on a GPU too.
  EXPECT_TRUE(plan.role(Role::coupler).spec.needs_gpu());
}

TEST(Sched, AutoplaceModeledCostNeverWorseThanJungleTable) {
  // plan() is an exhaustive argmin over a space that contains the Fig-12
  // assignment, so it can only tie or beat it. This is the PR's acceptance
  // inequality, checked at both test and production sizes.
  for (std::size_t scale : {1UL, 5UL}) {
    JungleTestbed bed;
    amuse::scenario::Options options;
    options.n_stars = 200 * scale;
    options.n_gas = 2000 * scale;
    Placement autoplaced =
        amuse::scenario::placement_for(bed, Kind::autoplace, options);
    Placement table =
        amuse::scenario::placement_for(bed, Kind::jungle, options);
    EXPECT_LE(autoplaced.modeled_seconds_per_iteration,
              table.modeled_seconds_per_iteration);
  }
}

TEST(Sched, ExcludedHostNeverAppearsInPlanOrReplacement) {
  JungleTestbed bed;
  amuse::scenario::Options options;
  Scheduler scheduler(bed.network(), bed.desktop(),
                      bed.deployer().resources());
  Workload load = production_load();
  Placement before = scheduler.plan(load);
  ASSERT_NE(before.role(Role::gravity).host, nullptr);
  std::string grav_host = before.role(Role::gravity).host->name();

  scheduler.exclude_host(grav_host);
  Assignment replacement = scheduler.replace(load, before, Role::gravity);
  ASSERT_NE(replacement.host, nullptr);
  EXPECT_NE(replacement.host->name(), grav_host);

  Placement after = scheduler.plan(load);
  for (const Assignment& a : after.roles) {
    ASSERT_NE(a.host, nullptr);
    EXPECT_NE(a.host->name(), grav_host);
  }
}

TEST(Sched, LinkFaultExcludesWholeResource) {
  JungleTestbed bed;
  Scheduler scheduler(bed.network(), bed.desktop(),
                      bed.deployer().resources());
  Workload load = production_load();
  Placement before = scheduler.plan(load);
  std::string grav_resource = before.role(Role::gravity).resource;
  ASSERT_FALSE(grav_resource.empty());
  scheduler.exclude_resource(grav_resource);
  Placement after = scheduler.plan(load);
  for (const Assignment& a : after.roles) {
    EXPECT_NE(a.resource, grav_resource);
  }
}

TEST(Sched, DeadFrontendStrandsItsResource) {
  // Jobs submit through the frontend: once it is excluded, the resource's
  // surviving compute nodes are unreachable and must not be planned onto.
  JungleTestbed bed;
  Scheduler scheduler(bed.network(), bed.desktop(),
                      bed.deployer().resources());
  Workload load = production_load();
  Placement before = scheduler.plan(load);
  std::string grav_resource = before.role(Role::gravity).resource;
  ASSERT_FALSE(grav_resource.empty());
  std::string frontend =
      bed.deployer().resource(grav_resource).frontend->name();
  scheduler.exclude_host(frontend);
  Placement after = scheduler.plan(load);
  for (const Assignment& a : after.roles) {
    EXPECT_NE(a.resource, grav_resource);
  }
}

TEST(Sched, ResourceOfMapsHostsToResources) {
  JungleTestbed bed;
  Scheduler scheduler(bed.network(), bed.desktop(),
                      bed.deployer().resources());
  EXPECT_EQ(scheduler.resource_of("lgm-node"), "lgm");
  EXPECT_EQ(scheduler.resource_of("fs-lgm"), "lgm");
  EXPECT_EQ(scheduler.resource_of("dasvu3"), "das4-vu");
  EXPECT_EQ(scheduler.resource_of("desktop"), "");
}

// ------------------------------ communication term (data-path overhaul)

TEST(Sched, CommTermMatchesMeasuredSteadyStateWanBytes) {
  // The model's per-iteration wire volume is fed from what the pipelined
  // data path actually ships. Measure the steady-state bytes per step on a
  // remote-coupler run by differencing two run lengths (cancels the cold
  // start), and require the model to land within 25%.
  using jungle::amuse::scenario::Datapath;
  using jungle::amuse::scenario::Options;
  using jungle::amuse::scenario::Result;
  using jungle::amuse::scenario::run_scenario;
  Options options;
  options.n_stars = 300;
  options.n_gas = 1500;
  options.with_stellar_evolution = false;
  options.iterations = 2;
  Result short_run = run_scenario(Kind::remote_gpu, options);
  options.iterations = 4;
  Result long_run = run_scenario(Kind::remote_gpu, options);
  double measured_per_step =
      (long_run.wan_ipl_bytes - short_run.wan_ipl_bytes) / 2.0;

  Workload load;
  load.n_stars = options.n_stars;
  load.n_gas = options.n_gas;
  load.with_stellar_evolution = false;
  DatapathBytes wire = datapath_bytes(load);
  // Only the coupler is remote in the remote_gpu configuration: one fresh
  // exchange + one all-cache-hit exchange per step.
  double modeled_per_step = wire.coupler_upload + wire.coupler_reply +
                            2.0 * wire.idle_call;
  EXPECT_GT(measured_per_step, 0.75 * modeled_per_step);
  EXPECT_LT(measured_per_step, 1.25 * modeled_per_step);
}

TEST(Sched, ModeledKindOrderingsMatchThePaper) {
  // Re-pricing communication from the new data path must not reorder the
  // paper's configuration table (E1's shape, on the model side).
  using jungle::amuse::scenario::placement_for;
  jungle::amuse::scenario::Options options;
  options.n_stars = 1000;
  options.n_gas = 10000;
  JungleTestbed bed;
  double local_cpu =
      placement_for(bed, Kind::local_cpu, options).modeled_seconds_per_iteration;
  double local_gpu =
      placement_for(bed, Kind::local_gpu, options).modeled_seconds_per_iteration;
  double jungle =
      placement_for(bed, Kind::jungle, options).modeled_seconds_per_iteration;
  double autoplace =
      placement_for(bed, Kind::autoplace, options).modeled_seconds_per_iteration;
  EXPECT_GT(local_cpu, 2.0 * local_gpu);  // the CPU->GPU cliff
  EXPECT_GT(local_gpu, jungle);           // the jungle wins
  EXPECT_LE(autoplace, jungle);           // argmin can only improve on it
}

TEST(Sched, NoFeasiblePlacementThrows) {
  // A client that is excluded and no resources: nowhere to run anything.
  LocalWorld world(false);
  Scheduler scheduler(world.net, *world.desktop, world.resources);
  scheduler.exclude_host("desktop");
  EXPECT_THROW(scheduler.plan(small_load()), CodeError);
}
