#include <gtest/gtest.h>

#include <cmath>

#include "zorilla/zorilla.hpp"

using namespace jungle;
using namespace jungle::sim;
using namespace jungle::zorilla;

namespace {

struct P2PWorld {
  Simulation sim;
  Network net{sim};
  Overlay overlay{net, 20120301};
  std::vector<Host*> hosts;

  explicit P2PWorld(int host_count, int gpu_every = 0) {
    net.add_site("internet", 10e-3, 100e6 / 8);
    for (int i = 0; i < host_count; ++i) {
      Host& host =
          net.add_host("peer" + std::to_string(i), "internet", 2 + i % 7, 5);
      if (gpu_every > 0 && i % gpu_every == 0) {
        host.set_gpu(GpuSpec{"gt9600", 90});
      }
      hosts.push_back(&host);
    }
  }

  /// Chain bootstrap: node i learns about node i-1 only.
  void bootstrap_chain() {
    ZorillaNode* previous = nullptr;
    for (Host* host : hosts) {
      previous = &overlay.add_node(*host, previous);
    }
  }
};

}  // namespace

TEST(Zorilla, BootstrapViewContainsSelfAndSeed) {
  P2PWorld w(3);
  auto& a = w.overlay.add_node(*w.hosts[0]);
  auto& b = w.overlay.add_node(*w.hosts[1], &a);
  EXPECT_EQ(a.view().count("peer0"), 1u);
  EXPECT_EQ(a.view().count("peer1"), 1u);  // seed learns back
  EXPECT_EQ(b.view().count("peer0"), 1u);
  EXPECT_EQ(b.view().count("peer1"), 1u);
}

TEST(Zorilla, GossipConvergesLogarithmically) {
  // Paper: Zorilla "can turn any collection of machines into a cluster-like
  // system in minutes" — membership must spread in O(log n) rounds.
  P2PWorld w(32);
  w.bootstrap_chain();
  int rounds = w.overlay.gossip_until_converged(64);
  EXPECT_TRUE(w.overlay.converged());
  // log2(32)=5; chain bootstrap is the worst case, allow generous headroom.
  EXPECT_LE(rounds, 24);
}

TEST(Zorilla, GossipChargesControlTraffic) {
  P2PWorld w(8);
  w.bootstrap_chain();
  w.overlay.gossip_round();
  double control = 0;
  for (const auto& link : w.net.traffic_report()) {
    control += link.bytes_by_class[static_cast<int>(TrafficClass::control)];
  }
  EXPECT_GT(control, 0);
}

TEST(Zorilla, DiscoverFindsMatchingNodes) {
  P2PWorld w(16, 4);  // every 4th peer has a GPU
  w.bootstrap_chain();
  w.overlay.gossip_until_converged();
  Requirements req;
  req.needs_gpu = true;
  auto found =
      w.overlay.discover(*w.overlay.node_on("peer0"), 2, req);
  ASSERT_EQ(found.size(), 2u);
  for (auto* node : found) {
    EXPECT_TRUE(node->host().gpu().has_value());
    EXPECT_TRUE(node->busy());
  }
}

TEST(Zorilla, DiscoverReturnsEmptyWhenImpossible) {
  P2PWorld w(4, 0);  // no GPUs anywhere
  w.bootstrap_chain();
  w.overlay.gossip_until_converged();
  Requirements req;
  req.needs_gpu = true;
  auto found = w.overlay.discover(*w.overlay.node_on("peer0"), 1, req);
  EXPECT_TRUE(found.empty());
  // Nothing left marked busy after a failed discovery.
  for (auto* node : w.overlay.all_nodes()) EXPECT_FALSE(node->busy());
}

TEST(Zorilla, DiscoverSkipsBusyAndDownNodes) {
  P2PWorld w(6);
  w.bootstrap_chain();
  w.overlay.gossip_until_converged();
  w.overlay.node_on("peer1")->set_busy(true);
  w.hosts[2]->crash();
  Requirements req;
  auto found = w.overlay.discover(*w.overlay.node_on("peer0"), 3, req);
  ASSERT_EQ(found.size(), 3u);
  for (auto* node : found) {
    EXPECT_NE(node->host().name(), "peer1");
    EXPECT_NE(node->host().name(), "peer2");
  }
}

TEST(Zorilla, DeterministicDiscoveryOrder) {
  auto run_once = [] {
    P2PWorld w(10);
    w.bootstrap_chain();
    w.overlay.gossip_until_converged();
    Requirements req;
    auto found = w.overlay.discover(*w.overlay.node_on("peer0"), 3, req);
    std::vector<std::string> names;
    for (auto* node : found) names.push_back(node->host().name());
    return names;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Zorilla, ResourceSelectorPrefersCapableNodes) {
  P2PWorld w(8, 3);
  w.bootstrap_chain();
  w.overlay.gossip_until_converged();
  ResourceSelector selector(w.overlay);
  Requirements gpu_req;
  gpu_req.needs_gpu = true;
  ZorillaNode* chosen = selector.select(gpu_req);
  ASSERT_NE(chosen, nullptr);
  EXPECT_TRUE(chosen->host().gpu().has_value());

  // Excluding the winner yields a different node.
  ZorillaNode* second =
      selector.select(gpu_req, {chosen->host().name()});
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second->host().name(), chosen->host().name());
}

TEST(Zorilla, ResourceSelectorReturnsNullWhenNothingFits) {
  P2PWorld w(4, 0);
  w.bootstrap_chain();
  Requirements req;
  req.min_cores = 1000;
  ResourceSelector selector(w.overlay);
  EXPECT_EQ(selector.select(req), nullptr);
}

TEST(Zorilla, AddNodeIsIdempotent) {
  P2PWorld w(2);
  auto& first = w.overlay.add_node(*w.hosts[0]);
  auto& again = w.overlay.add_node(*w.hosts[0]);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(w.overlay.node_count(), 1u);
}
