#include <gtest/gtest.h>

#include "gat/adapters.hpp"
#include "gat/gat.hpp"
#include "zorilla/zorilla.hpp"

using namespace jungle;
using namespace jungle::sim;
using namespace jungle::gat;

namespace {

struct World {
  Simulation sim;
  Network net{sim};
  smartsockets::SmartSockets sockets{net};
  Host* client;
  Host* frontend;
  std::vector<Host*> nodes;
  Resource cluster;

  World(int node_count = 4, int gpu_nodes = 1) {
    net.add_site("home");
    net.add_site("das4", 2e-6, 32e9 / 8);
    client = &net.add_host("client", "home", 4, 10);
    frontend = &net.add_host("fs0", "das4", 8, 10);
    for (int i = 0; i < node_count; ++i) {
      Host& node =
          net.add_host("node" + std::to_string(i), "das4", 8, 10);
      if (i < gpu_nodes) node.set_gpu(GpuSpec{"gtx580", 300});
      nodes.push_back(&node);
    }
    net.add_link("home", "das4", 1e-3, 1e9 / 8);
    cluster.name = "das4-vu";
    cluster.middleware = "sge";
    cluster.frontend = frontend;
    cluster.nodes = nodes;
    cluster.queue = std::make_shared<ClusterQueue>(sim);
    cluster.queue->set_nodes(nodes);
  }

  ~World() { sim.shutdown(); }

  std::unique_ptr<Broker> make_broker() {
    auto broker = std::make_unique<Broker>(net, sockets, *client);
    broker->register_default_adapters();
    return broker;
  }
};

}  // namespace

TEST(Gat, LocalAdapterRunsOnClient) {
  World w;
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  Resource local;
  local.name = "local";
  local.middleware = "local";
  local.frontend = w.client;
  std::string ran_on;
  JobDescription desc;
  desc.name = "hello";
  desc.main = [&](JobContext& context) {
    ran_on = context.hosts.front()->name();
  };
  std::shared_ptr<Job> job;
  w.client->spawn("script", [&] {
    job = broker.submit(desc, local);
    EXPECT_EQ(job->wait_until_terminal(), JobState::stopped);
  });
  w.sim.run();
  EXPECT_EQ(ran_on, "client");
  EXPECT_EQ(job->adapter(), "local");
}

TEST(Gat, SgeJobWaitsForQueueAndRuns) {
  World w;
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  std::string ran_on;
  double started_at = -1;
  JobDescription desc;
  desc.name = "worker";
  desc.main = [&](JobContext& context) {
    ran_on = context.hosts.front()->name();
    started_at = w.sim.now();
    w.sim.sleep(1.0);
  };
  std::shared_ptr<Job> job;
  w.client->spawn("script", [&] {
    job = broker.submit(desc, w.cluster);
    EXPECT_EQ(job->wait_until_terminal(), JobState::stopped);
  });
  w.sim.run();
  // node0 carries the cluster's GPU; the queue keeps it for GPU jobs and
  // hands this CPU job the first CPU-only node.
  EXPECT_EQ(ran_on, "node1");
  EXPECT_GE(started_at, 2.0);  // sge default queue delay
  EXPECT_EQ(job->adapter(), "sge");
}

TEST(Gat, JobStateSequence) {
  World w;
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  std::vector<JobState> states;
  JobDescription desc;
  desc.name = "seq";
  desc.stage_in_bytes = 1e6;
  desc.main = [&](JobContext&) {};
  w.client->spawn("script", [&] {
    auto job = broker.submit(desc, w.cluster);
    job->on_state([&](JobState state) { states.push_back(state); });
    job->wait_until_terminal();
  });
  w.sim.run();
  // preStaging may fire before the listener attaches; require the tail.
  ASSERT_GE(states.size(), 3u);
  EXPECT_EQ(states[states.size() - 3], JobState::scheduled);
  EXPECT_EQ(states[states.size() - 2], JobState::running);
  EXPECT_EQ(states[states.size() - 1], JobState::stopped);
}

TEST(Gat, GpuRequestGetsGpuNode) {
  World w(4, 2);
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  std::string ran_on;
  bool had_gpu = false;
  JobDescription desc;
  desc.name = "cuda-worker";
  desc.needs_gpu = true;
  desc.main = [&](JobContext& context) {
    ran_on = context.hosts.front()->name();
    had_gpu = context.hosts.front()->gpu().has_value();
  };
  w.client->spawn("script", [&] {
    broker.submit(desc, w.cluster)->wait_until_terminal();
  });
  w.sim.run();
  EXPECT_TRUE(had_gpu);
}

TEST(Gat, CpuJobsLeaveGpuNodesForGpuJobs) {
  // One GPU in the cluster, CPU jobs submitted first: first-fit would park
  // a CPU job on the GPU node and starve the GPU job for the whole run.
  World w(3, 1);
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  std::string gpu_ran_on;
  JobDescription cpu_desc;
  cpu_desc.name = "cpu-worker";
  cpu_desc.main = [&](JobContext& context) {
    context.hosts.front()->simulation().sleep(5.0);  // holds its node
  };
  JobDescription gpu_desc;
  gpu_desc.name = "cuda-worker";
  gpu_desc.needs_gpu = true;
  gpu_desc.main = [&](JobContext& context) {
    gpu_ran_on = context.hosts.front()->name();
  };
  w.client->spawn("script", [&] {
    auto cpu_a = broker.submit(cpu_desc, w.cluster);
    auto cpu_b = broker.submit(cpu_desc, w.cluster);
    auto gpu = broker.submit(gpu_desc, w.cluster);
    gpu->wait_until_terminal();
    cpu_a->wait_until_terminal();
    cpu_b->wait_until_terminal();
  });
  w.sim.run();
  EXPECT_EQ(gpu_ran_on, "node0");  // the GPU node stayed free for it
}

TEST(Gat, GpuRequestOnCpuClusterFails) {
  World w(4, 0);
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  JobDescription desc;
  desc.name = "cuda-worker";
  desc.needs_gpu = true;
  desc.main = [](JobContext&) {};
  bool threw = false;
  w.client->spawn("script", [&] {
    try {
      broker.submit(desc, w.cluster);
    } catch (const GatError&) {
      threw = true;
    }
  });
  w.sim.run();
  EXPECT_TRUE(threw);
}

TEST(Gat, QueueSerializesWhenFull) {
  World w(2, 0);
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  std::vector<double> start_times;
  JobDescription desc;
  desc.name = "filler";
  desc.node_count = 2;
  desc.main = [&](JobContext&) {
    start_times.push_back(w.sim.now());
    w.sim.sleep(10.0);
  };
  w.client->spawn("script", [&] {
    auto first = broker.submit(desc, w.cluster);
    auto second = broker.submit(desc, w.cluster);
    first->wait_until_terminal();
    second->wait_until_terminal();
  });
  w.sim.run();
  ASSERT_EQ(start_times.size(), 2u);
  // Second job cannot start until the first releases both nodes.
  EXPECT_GE(start_times[1] - start_times[0], 10.0);
}

TEST(Gat, TooManyNodesFailsFast) {
  World w(2, 0);
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  JobDescription desc;
  desc.name = "big";
  desc.node_count = 16;
  desc.main = [](JobContext&) {};
  bool threw = false;
  w.client->spawn("script", [&] {
    try {
      broker.submit(desc, w.cluster);
    } catch (const GatError&) {
      threw = true;
    }
  });
  w.sim.run();
  EXPECT_TRUE(threw);
}

TEST(Gat, JobErrorCapturedNotThrown) {
  World w;
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  JobDescription desc;
  desc.name = "crasher";
  desc.main = [](JobContext&) { throw CodeError("kernel exploded"); };
  JobState final_state{};
  std::string error;
  w.client->spawn("script", [&] {
    auto job = broker.submit(desc, w.cluster);
    final_state = job->wait_until_terminal();
    error = job->error_message();
  });
  w.sim.run();
  EXPECT_EQ(final_state, JobState::error);
  EXPECT_NE(error.find("kernel exploded"), std::string::npos);
}

TEST(Gat, CancelReleasesNodes) {
  World w(1, 0);
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  JobDescription desc;
  desc.name = "longjob";
  desc.main = [&](JobContext&) { w.sim.sleep(1e6); };
  w.client->spawn("script", [&] {
    auto job = broker.submit(desc, w.cluster);
    job->wait_until_running();
    EXPECT_EQ(w.cluster.queue->busy_nodes(), 1);
    job->cancel();
    w.sim.sleep(0.1);
    EXPECT_EQ(w.cluster.queue->busy_nodes(), 0);
    // Nodes free again: a second job can run.
    JobDescription next;
    next.name = "next";
    bool ran = false;
    next.main = [&ran](JobContext&) { ran = true; };
    broker.submit(next, w.cluster)->wait_until_terminal();
    EXPECT_TRUE(ran);
  });
  w.sim.run();
}

TEST(Gat, GlobusNeedsCredential) {
  World w;
  w.cluster.middleware = "globus";
  w.cluster.gatekeeper_cert = "das-cert";
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  JobDescription desc;
  desc.name = "gridjob";
  desc.main = [](JobContext&) {};
  bool failed_without = false;
  w.client->spawn("script", [&] {
    try {
      broker.submit(desc, w.cluster);
    } catch (const GatError&) {
      failed_without = true;
    }
    broker.add_credential("das-cert");
    auto job = broker.submit(desc, w.cluster);
    EXPECT_EQ(job->wait_until_terminal(), JobState::stopped);
    EXPECT_EQ(job->adapter(), "globus");
  });
  w.sim.run();
  EXPECT_TRUE(failed_without);
}

TEST(Gat, SshBlockedByFirewallReportsFailure) {
  World w;
  w.frontend->firewall().allow_inbound = false;
  w.frontend->firewall().allow_ssh_inbound = false;  // fully filtered
  Resource ssh_box;
  ssh_box.name = "remote";
  ssh_box.middleware = "ssh";
  ssh_box.frontend = w.frontend;
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  JobDescription desc;
  desc.name = "job";
  desc.main = [](JobContext&) {};
  bool threw = false;
  w.client->spawn("script", [&] {
    try {
      broker.submit(desc, ssh_box);
    } catch (const GatError& failure) {
      threw = true;
      EXPECT_NE(std::string(failure.what()).find("ssh"), std::string::npos);
    }
  });
  w.sim.run();
  EXPECT_TRUE(threw);
}

TEST(Gat, BrokerFallsBackToZorillaWhenSshBlocked) {
  // The "automatic adapter selection" story: ssh fails through the
  // firewall, the zorilla P2P adapter picks up the job.
  World w;
  w.frontend->firewall().allow_inbound = false;
  zorilla::Overlay overlay(w.net, 42);
  auto& client_node = overlay.add_node(*w.client);
  overlay.add_node(*w.nodes[0], &client_node);
  overlay.gossip_until_converged();

  Resource hybrid;
  hybrid.name = "remote";
  hybrid.middleware = "zorilla";  // described as a zorilla resource
  hybrid.frontend = w.frontend;

  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  broker.register_adapter(
      std::make_unique<zorilla::ZorillaAdapter>(overlay));
  JobDescription desc;
  desc.name = "job";
  desc.main = [](JobContext&) {};
  std::string adapter_used;
  w.client->spawn("script", [&] {
    auto job = broker.submit(desc, hybrid);
    job->wait_until_terminal();
    adapter_used = job->adapter();
  });
  w.sim.run();
  EXPECT_EQ(adapter_used, "zorilla");
}

TEST(Gat, StageInChargesFileTraffic) {
  World w;
  auto broker_ptr = w.make_broker(); Broker& broker = *broker_ptr;
  JobDescription desc;
  desc.name = "staged";
  desc.stage_in_bytes = 10e6;
  desc.main = [](JobContext&) {};
  w.client->spawn("script", [&] {
    broker.submit(desc, w.cluster)->wait_until_terminal();
  });
  w.sim.run();
  double file_bytes = 0;
  for (const auto& link : w.net.traffic_report()) {
    file_bytes += link.bytes_by_class[static_cast<int>(TrafficClass::file)];
  }
  EXPECT_GE(file_bytes, 10e6);
}

TEST(Gat, FileServiceRetriesOverDownLink) {
  World w;
  FileService files(w.net);
  double took = -1;
  w.client->spawn("copier", [&] {
    w.net.set_link_down("home<->das4", true);
    w.sim.after(2.0, [&] { w.net.set_link_down("home<->das4", false); });
    took = files.copy(*w.client, *w.frontend, 1e6);
  });
  w.sim.run();
  EXPECT_GE(took, 2.0);  // waited out the outage, then copied
}
