#include <gtest/gtest.h>

#include "ipl/ipl.hpp"

using namespace jungle;
using namespace jungle::sim;
using namespace jungle::ipl;

namespace {

struct World {
  Simulation sim;
  Network net{sim};
  smartsockets::SmartSockets sockets{net};
  Host* client;
  Host* node_a;
  Host* node_b;

  World() {
    net.add_site("home");
    net.add_site("das4");
    net.add_site("lgm");
    client = &net.add_host("client", "home", 4, 10);
    node_a = &net.add_host("node-a", "das4", 8, 10);
    node_b = &net.add_host("node-b", "lgm", 8, 10);
    net.add_link("home", "das4", 1e-3, 1e9 / 8);
    net.add_link("das4", "lgm", 0.5e-3, 1e9 / 8);
  }

  ~World() { sim.shutdown(); }
};

}  // namespace

TEST(Ipl, MembersSeeJoins) {
  World w;
  RegistryServer registry(w.sockets, *w.client);
  std::vector<std::string> seen;
  w.client->spawn("main", [&] {
    Ibis daemon(w.sockets, *w.client, "daemon", *w.client);
    daemon.on_event([&](const RegistryEvent& event) {
      if (event.type == RegistryEventType::joined) {
        seen.push_back(event.id.name);
      }
    });
    Ibis worker_a(w.sockets, *w.node_a, "worker-a", *w.client);
    Ibis worker_b(w.sockets, *w.node_b, "worker-b", *w.client);
    daemon.wait_for_member("worker-a");
    daemon.wait_for_member("worker-b");
    EXPECT_EQ(daemon.members().size(), 3u);
  });
  w.sim.run();
  // Members receive their own join event too (snapshot excludes self).
  ASSERT_GE(seen.size(), 3u);
  EXPECT_EQ(seen[0], "daemon");
  EXPECT_EQ(seen[1], "worker-a");
  EXPECT_EQ(seen[2], "worker-b");
}

TEST(Ipl, SnapshotGivesExistingMembers) {
  World w;
  RegistryServer registry(w.sockets, *w.client);
  std::size_t late_joiner_view = 0;
  w.client->spawn("main", [&] {
    Ibis first(w.sockets, *w.client, "first", *w.client);
    first.wait_for_member("first");  // self visible
    Ibis late(w.sockets, *w.node_a, "late", *w.client);
    late.wait_for_member("first");
    late.wait_for_member("late");
    late_joiner_view = late.members().size();
  });
  w.sim.run();
  EXPECT_EQ(late_joiner_view, 2u);
}

TEST(Ipl, LeaveBroadcastsLeft) {
  World w;
  RegistryServer registry(w.sockets, *w.client);
  bool saw_left = false;
  w.client->spawn("main", [&] {
    Ibis daemon(w.sockets, *w.client, "daemon", *w.client);
    daemon.on_event([&](const RegistryEvent& event) {
      if (event.type == RegistryEventType::left &&
          event.id.name == "worker") {
        saw_left = true;
      }
    });
    {
      Ibis worker(w.sockets, *w.node_a, "worker", *w.client);
      daemon.wait_for_member("worker");
    }  // destructor -> leave()
    w.sim.sleep(1.0);
    EXPECT_EQ(daemon.members().size(), 1u);
  });
  w.sim.run();
  EXPECT_TRUE(saw_left);
}

TEST(Ipl, HostCrashBroadcastsDied) {
  // The paper's §5 fault story: a worker's machine disappears; the rest of
  // the pool learns it died (and in the paper the simulation then crashes —
  // our amuse layer adds the restart policy on top of this signal).
  World w;
  RegistryServer registry(w.sockets, *w.client);
  bool saw_died = false;
  w.client->spawn("main", [&] {
    Ibis daemon(w.sockets, *w.client, "daemon", *w.client);
    daemon.on_event([&](const RegistryEvent& event) {
      if (event.type == RegistryEventType::died &&
          event.id.name == "worker") {
        saw_died = true;
      }
    });
    auto worker = std::make_unique<Ibis>(w.sockets, *w.node_a, "worker",
                                         *w.client);
    daemon.wait_for_member("worker");
    w.node_a->crash();
    w.sim.sleep(1.0);
    EXPECT_EQ(daemon.members().size(), 1u);
    // worker object destroyed after its host died: leave() is a no-op error
    // path and must not throw.
    worker.reset();
  });
  w.sim.run();
  EXPECT_TRUE(saw_died);
}

TEST(Ipl, ElectionFirstComeWins) {
  World w;
  RegistryServer registry(w.sockets, *w.client);
  std::string winner_by_a, winner_by_b;
  w.client->spawn("main", [&] {
    Ibis a(w.sockets, *w.node_a, "a", *w.client);
    Ibis b(w.sockets, *w.node_b, "b", *w.client);
    winner_by_a = a.elect("coupler").name;
    winner_by_b = b.elect("coupler").name;
  });
  w.sim.run();
  EXPECT_EQ(winner_by_a, "a");
  EXPECT_EQ(winner_by_b, "a");  // same winner for everyone
}

TEST(Ipl, SendReceivePortsCarryTypedMessages) {
  World w;
  RegistryServer registry(w.sockets, *w.client);
  double received_value = 0;
  std::string received_from;
  w.client->spawn("main", [&] {
    Ibis daemon(w.sockets, *w.client, "daemon", *w.client);
    auto port = daemon.create_receive_port("results");

    w.node_a->spawn("worker", [&] {
      Ibis worker(w.sockets, *w.node_a, "worker", *w.client);
      auto id = worker.wait_for_member("daemon");
      auto sender = worker.create_send_port("out");
      sender->connect(id, "results");
      util::ByteWriter message;
      message.put<double>(42.5);
      sender->send(std::move(message));
      sender->close();
    });

    auto message = port->receive();
    received_from = message.source.name;
    received_value = message.reader.get<double>();
  });
  w.sim.run();
  EXPECT_EQ(received_from, "worker");
  EXPECT_DOUBLE_EQ(received_value, 42.5);
}

TEST(Ipl, SendPortFanOut) {
  World w;
  RegistryServer registry(w.sockets, *w.client);
  int deliveries = 0;
  w.client->spawn("main", [&] {
    Ibis daemon(w.sockets, *w.client, "daemon", *w.client);
    Ibis wa(w.sockets, *w.node_a, "wa", *w.client);
    Ibis wb(w.sockets, *w.node_b, "wb", *w.client);
    auto port_a = wa.create_receive_port("in");
    auto port_b = wb.create_receive_port("in");
    auto sender = daemon.create_send_port("broadcast");
    sender->connect(wa.identifier(), "in");
    sender->connect(wb.identifier(), "in");
    EXPECT_EQ(sender->connection_count(), 2u);
    util::ByteWriter message;
    message.put<int>(7);
    sender->send(std::move(message));
    auto ma = port_a->receive();
    auto mb = port_b->receive();
    EXPECT_EQ(ma.reader.get<int>(), 7);
    EXPECT_EQ(mb.reader.get<int>(), 7);
    deliveries = 2;
  });
  w.sim.run();
  EXPECT_EQ(deliveries, 2);
}

TEST(Ipl, UnconnectedSendPortThrows) {
  World w;
  RegistryServer registry(w.sockets, *w.client);
  bool threw = false;
  w.client->spawn("main", [&] {
    Ibis daemon(w.sockets, *w.client, "daemon", *w.client);
    auto sender = daemon.create_send_port("out");
    try {
      util::ByteWriter message;
      sender->send(std::move(message));
    } catch (const ConnectError&) {
      threw = true;
    }
  });
  w.sim.run();
  EXPECT_TRUE(threw);
}

TEST(Ipl, WaitForMemberThrowsIfItDiedFirst) {
  World w;
  RegistryServer registry(w.sockets, *w.client);
  bool threw = false;
  w.client->spawn("main", [&] {
    Ibis daemon(w.sockets, *w.client, "daemon", *w.client);
    auto worker =
        std::make_unique<Ibis>(w.sockets, *w.node_a, "w", *w.client);
    daemon.wait_for_member("w");
    w.node_a->crash();
    w.sim.sleep(0.5);
    try {
      daemon.wait_for_member("w");
    } catch (const CodeError&) {
      threw = true;
    }
  });
  w.sim.run();
  EXPECT_TRUE(threw);
}

TEST(Ipl, TrafficUsesIplClass) {
  World w;
  RegistryServer registry(w.sockets, *w.client);
  w.client->spawn("main", [&] {
    Ibis daemon(w.sockets, *w.client, "daemon", *w.client);
    Ibis worker(w.sockets, *w.node_a, "worker", *w.client);
    auto port = daemon.create_receive_port("in");
    auto sender = worker.create_send_port("out");
    sender->connect(daemon.identifier(), "in");
    util::ByteWriter message;
    message.put_vector(std::vector<double>(500, 1.0));
    sender->send(std::move(message));
    port->receive();
  });
  w.sim.run();
  double ipl_bytes = 0;
  for (const auto& link : w.net.traffic_report()) {
    ipl_bytes += link.bytes_by_class[static_cast<int>(TrafficClass::ipl)];
  }
  EXPECT_GT(ipl_bytes, 4000.0);
}
