#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "amuse/bridge.hpp"
#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"
#include "amuse/faults.hpp"
#include "amuse/ic.hpp"
#include "amuse/workers.hpp"
#include "zorilla/zorilla.hpp"

using namespace jungle;
using namespace jungle::amuse;

namespace {

/// Fig-12-like lab: desktop client at VU, LGM GPU cluster in Leiden,
/// DAS-4 CPU cluster in Amsterdam.
struct Lab {
  sim::Simulation sim;
  sim::Network net{sim};
  smartsockets::SmartSockets sockets{net};
  sim::Host* desktop;
  sim::Host* lgm_frontend;
  sim::Host* lgm_node;
  std::vector<sim::Host*> das_nodes;
  std::unique_ptr<deploy::Deployer> deployer;
  std::unique_ptr<IbisDaemon> daemon;

  Lab() {
    net.add_site("vu", 0.1e-3, 1e9 / 8);
    net.add_site("leiden", 0.1e-3, 1e9 / 8);
    net.add_site("uva", 2e-6, 32e9 / 8);
    desktop = &net.add_host("desktop", "vu", 4, 10);
    lgm_frontend = &net.add_host("fs-lgm", "leiden", 8, 10);
    lgm_frontend->firewall().allow_inbound = false;  // ssh only
    lgm_node = &net.add_host("lgm-node", "leiden", 8, 10);
    lgm_node->set_gpu(sim::GpuSpec{"tesla-c2050", 500});
    for (int i = 0; i < 8; ++i) {
      das_nodes.push_back(
          &net.add_host("das" + std::to_string(i), "uva", 8, 10));
    }
    net.add_link("vu", "leiden", 0.5e-3, 1e9 / 8, "vu-leiden");
    net.add_link("vu", "uva", 0.2e-3, 10e9 / 8, "vu-uva");

    deployer = std::make_unique<deploy::Deployer>(net, sockets, *desktop);
    gat::Resource local;
    local.name = "local";
    local.middleware = "local";
    local.frontend = desktop;
    deployer->add_resource(local);

    gat::Resource lgm;
    lgm.name = "lgm";
    lgm.middleware = "sge";
    lgm.frontend = lgm_frontend;
    lgm.nodes = {lgm_node};
    lgm.queue_base_delay = 0.5;
    lgm.queue = std::make_shared<gat::ClusterQueue>(sim);
    lgm.queue->set_nodes(lgm.nodes);
    deployer->add_resource(lgm);

    gat::Resource das;
    das.name = "das4";
    das.middleware = "sge";
    das.frontend = das_nodes[0];
    das.nodes = das_nodes;
    das.queue_base_delay = 0.5;
    das.queue = std::make_shared<gat::ClusterQueue>(sim);
    das.queue->set_nodes(das.nodes);
    deployer->add_resource(das);

    daemon = std::make_unique<IbisDaemon>(*deployer, net, sockets, *desktop);
  }

  ~Lab() { sim.shutdown(); }

  void run(std::function<void()> script) {
    desktop->spawn("script", std::move(script));
    sim.run();
  }
};

}  // namespace

TEST(Distributed, RemoteGravityWorkerViaDaemon) {
  Lab lab;
  double drift = 1.0;
  lab.run([&] {
    DaemonClient client(lab.sockets, *lab.desktop);
    WorkerSpec spec;
    spec.code = "phigrape-gpu";
    GravityClient gravity(client.start_worker(spec, "lgm"));
    util::Rng rng(1);
    auto model = ic::plummer_sphere(64, rng);
    gravity.add_particles(model.mass, model.position, model.velocity);
    auto [k0, p0] = gravity.energies();
    gravity.evolve(0.25);
    auto [k1, p1] = gravity.energies();
    drift = std::abs((k1 + p1) - (k0 + p0)) / std::abs(k0 + p0);
    gravity.close();
  });
  EXPECT_LT(drift, 1e-2);
  // The worker ran on the GPU node, remotely.
  EXPECT_GT(lab.lgm_node->gpu_busy_seconds(), 0.0);
  // RPC frames crossed the WAN as IPL traffic.
  double wan_ipl = 0;
  for (const auto& link : lab.net.traffic_report()) {
    if (link.name == "vu-leiden") {
      wan_ipl = link.bytes_by_class[static_cast<int>(sim::TrafficClass::ipl)];
    }
  }
  EXPECT_GT(wan_ipl, 1000.0);
}

TEST(Distributed, WorkerStartupFailureReportsError) {
  Lab lab;
  bool threw = false;
  std::string message;
  lab.run([&] {
    DaemonClient client(lab.sockets, *lab.desktop);
    WorkerSpec spec;
    spec.code = "octgrav";  // needs a GPU
    try {
      client.start_worker(spec, "das4");  // CPU-only cluster
    } catch (const CodeError& failure) {
      threw = true;
      message = failure.what();
    }
  });
  EXPECT_TRUE(threw);
  EXPECT_NE(message.find("GPU"), std::string::npos);
}

TEST(Distributed, ParallelGadgetOverIbisChannel) {
  Lab lab;
  double thermal = -1;
  lab.run([&] {
    DaemonClient client(lab.sockets, *lab.desktop);
    WorkerSpec spec;
    spec.code = "gadget";
    spec.nranks = 8;
    HydroClient hydro(client.start_worker(spec, "das4", /*nodes=*/8));
    util::Rng rng(2);
    auto gas = ic::gas_sphere(240, rng, 1.0, 1.0, 0.5);
    hydro.add_gas(gas.mass, gas.position, gas.velocity, gas.internal_energy);
    hydro.evolve(0.01);
    auto [kin, therm, pot] = hydro.energies();
    (void)kin;
    (void)pot;
    thermal = therm;
    hydro.close();
  });
  EXPECT_GT(thermal, 0.0);
  // MPI traffic stayed inside the cluster LAN.
  for (const auto& link : lab.net.traffic_report()) {
    if (link.name == "lan:uva") {
      EXPECT_GT(link.bytes_by_class[static_cast<int>(sim::TrafficClass::mpi)],
                0.0);
    }
    if (link.name == "vu-uva") {
      EXPECT_DOUBLE_EQ(
          link.bytes_by_class[static_cast<int>(sim::TrafficClass::mpi)], 0.0);
    }
  }
}

namespace {

/// A small embedded-cluster setup with all four models on local workers.
struct BridgeRig {
  std::unique_ptr<GravityClient> stars;
  std::unique_ptr<HydroClient> gas;
  std::unique_ptr<FieldClient> coupler;
  std::unique_ptr<StellarClient> se;

  BridgeRig(Lab& lab, int n_stars = 32, int n_gas = 96) {
    WorkerSpec grav{.code = "phigrape", .ncores = 2};
    WorkerSpec hydro{.code = "gadget"};
    WorkerSpec field{.code = "fi"};
    WorkerSpec sse{.code = "sse"};
    stars = std::make_unique<GravityClient>(
        start_local_worker(lab.sockets, lab.net, *lab.desktop, *lab.desktop,
                           grav, ChannelKind::mpi));
    gas = std::make_unique<HydroClient>(
        start_local_worker(lab.sockets, lab.net, *lab.desktop, *lab.desktop,
                           hydro, ChannelKind::mpi));
    coupler = std::make_unique<FieldClient>(
        start_local_worker(lab.sockets, lab.net, *lab.desktop, *lab.desktop,
                           field, ChannelKind::mpi));
    se = std::make_unique<StellarClient>(
        start_local_worker(lab.sockets, lab.net, *lab.desktop, *lab.desktop,
                           sse, ChannelKind::mpi));

    util::Rng rng(5);
    auto model = ic::plummer_sphere(n_stars, rng);
    stars->add_particles(model.mass, model.position, model.velocity);
    auto cloud = ic::gas_sphere(n_gas, rng, 2.0, 1.5);
    gas->add_gas(cloud.mass, cloud.position, cloud.velocity,
                 cloud.internal_energy);
    std::vector<double> zams = ic::salpeter_masses(n_stars, rng);
    zams[0] = 20.0;  // guarantee one massive star
    se->add_stars(zams);
  }

  void close() {
    stars->close();
    gas->close();
    coupler->close();
    se->close();
  }
};

}  // namespace

TEST(Distributed, BridgeFollowsFig7Schedule) {
  Lab lab;
  std::vector<std::string> trace;
  lab.run([&] {
    BridgeRig rig(lab);
    Bridge::Config config;
    config.dt = 1.0 / 128.0;
    config.se_every = 2;
    config.myr_per_nbody_time = 1.0;
    Bridge bridge(*rig.stars, *rig.gas, *rig.coupler, rig.se.get(), config);
    bridge.step();
    bridge.step();
    trace = bridge.trace();
    rig.close();
  });
  // One step: kick pair, parallel evolve, kick pair. SE joins every 2nd.
  std::vector<std::string> expected_step1{
      "kick:gas->stars", "kick:stars->gas", "evolve:parallel",
      "kick:gas->stars", "kick:stars->gas"};
  ASSERT_GE(trace.size(), 10u);
  for (std::size_t i = 0; i < expected_step1.size(); ++i) {
    EXPECT_EQ(trace[i], expected_step1[i]) << "position " << i;
  }
  // Step 2 ends with the stellar-evolution exchange (Fig 7: "performed at a
  // slower rate, only exchanging state every n-th time step").
  auto se_count = std::count(trace.begin(), trace.end(), "se:evolve");
  EXPECT_EQ(se_count, 1);
  EXPECT_NE(std::find(trace.begin(), trace.end(), "se:masses->gravity"),
            trace.end());
}

TEST(Distributed, BridgeParallelEvolveOverlapsAcrossResources) {
  // Gravity on the remote GPU, gas locally: the two evolve calls overlap in
  // virtual time (the Jungle payoff the paper demonstrates).
  Lab lab;
  double overlapped = -1, sequential = -1;
  lab.run([&] {
    DaemonClient client(lab.sockets, *lab.desktop);
    WorkerSpec grav{.code = "phigrape-gpu"};
    GravityClient stars(client.start_worker(grav, "lgm"));
    WorkerSpec hydro{.code = "gadget", .ncores = 2};
    HydroClient gas(start_local_worker(lab.sockets, lab.net, *lab.desktop,
                                       *lab.desktop, hydro,
                                       ChannelKind::mpi));
    util::Rng rng(5);
    auto model = ic::plummer_sphere(128, rng);
    stars.add_particles(model.mass, model.position, model.velocity);
    auto cloud = ic::gas_sphere(256, rng, 2.0, 1.5);
    gas.add_gas(cloud.mass, cloud.position, cloud.velocity,
                cloud.internal_energy);

    double t0 = lab.sim.now();
    Future fs = stars.evolve_async(0.05);
    Future fg = gas.evolve_async(0.05);
    fs.get();
    fg.get();
    overlapped = lab.sim.now() - t0;

    double t1 = lab.sim.now();
    stars.evolve(0.1);
    gas.evolve(0.1);
    sequential = lab.sim.now() - t1;
    stars.close();
    gas.close();
  });
  EXPECT_GT(overlapped, 0.0);
  EXPECT_LT(overlapped, 0.9 * sequential);
}

TEST(Distributed, WorkerHostCrashPoisonsFutures) {
  Lab lab;
  bool threw = false;
  std::string dead_worker, dead_host;
  auto cause = WorkerDiedError::Cause::unknown;
  lab.run([&] {
    DaemonClient client(lab.sockets, *lab.desktop);
    WorkerSpec spec;
    spec.code = "phigrape-gpu";
    GravityClient gravity(client.start_worker(spec, "lgm"));
    util::Rng rng(1);
    auto model = ic::plummer_sphere(256, rng);
    gravity.add_particles(model.mass, model.position, model.velocity);
    Future future = gravity.evolve_async(5.0);  // long-running
    lab.sim.sleep(0.01);
    lab.lgm_node->crash();
    try {
      future.get();
    } catch (const WorkerDiedError& failure) {
      threw = true;
      dead_worker = failure.worker();
      dead_host = failure.host();
      cause = failure.cause();
    }
  });
  EXPECT_TRUE(threw);
  // The error identifies the worker *and* the machine that died, and tells
  // a host crash from a link fault — what the scheduler's fault path keys
  // its exclusions on.
  EXPECT_EQ(dead_worker, "phigrape-gpu@lgm");
  EXPECT_EQ(dead_host, "lgm-node");
  EXPECT_EQ(cause, WorkerDiedError::Cause::host_crash);
}

TEST(Distributed, FaultPolicyRestartsOnReplacementResource) {
  // The paper's §7 wish, implemented: checkpoint, detect death, restart on
  // another resource, continue.
  Lab lab;
  double final_time = -1;
  bool restarted = false;
  lab.run([&] {
    DaemonClient client(lab.sockets, *lab.desktop);
    WorkerSpec spec;
    spec.code = "phigrape";  // CPU: can run on das4 too
    auto gravity = std::make_unique<GravityClient>(
        client.start_worker(spec, "lgm"));
    util::Rng rng(1);
    auto model = ic::plummer_sphere(64, rng);
    gravity->add_particles(model.mass, model.position, model.velocity);
    gravity->evolve(0.05);
    GravityCheckpoint save = checkpoint_gravity(*gravity);

    lab.lgm_node->crash();
    try {
      gravity->evolve(0.1);
      // Depending on message timing the evolve call may appear to succeed
      // (reply sent before the crash); the next call then fails.
      gravity->get_state();
    } catch (const CodeError&) {
      gravity = restart_gravity(client, spec, "das4", save);
      restarted = true;
    }
    // Continue the run on the replacement: it resumes on the absolute
    // clock (model time = the checkpoint's), so the next target is simply
    // the original end time.
    gravity->evolve(0.1);
    final_time = gravity->model_time();
    gravity->close();
  });
  EXPECT_TRUE(restarted);
  EXPECT_NEAR(final_time, 0.1, 1e-9);
}

TEST(Distributed, DeathNoticePoisonsInFlightBatch) {
  // The pipelined cross-kick keeps several futures in flight at once; a
  // death notice arriving mid-batch must fail every one of them with the
  // host and cause intact (the fault path keys its exclusions on those).
  Lab lab;
  int failed = 0;
  std::vector<std::string> hosts;
  std::vector<WorkerDiedError::Cause> causes;
  lab.run([&] {
    DaemonClient client(lab.sockets, *lab.desktop);
    WorkerSpec spec;
    spec.code = "phigrape-gpu";
    GravityClient gravity(client.start_worker(spec, "lgm"));
    util::Rng rng(1);
    auto model = ic::plummer_sphere(256, rng);
    gravity.add_particles(model.mass, model.position, model.velocity);
    // A long evolve plus a pipelined batch queued behind it.
    Future evolving = gravity.evolve_async(5.0);
    Future state = gravity.request_state(jungle::amuse::state_field::coupling);
    std::vector<Vec3> kicks(model.mass.size(), Vec3{1e-3, 0, 0});
    Future kicked = gravity.kick_async(kicks);
    lab.sim.sleep(0.01);
    lab.lgm_node->crash();
    for (Future* future : {&evolving, &state, &kicked}) {
      try {
        future->get();
      } catch (const WorkerDiedError& death) {
        ++failed;
        hosts.push_back(death.host());
        causes.push_back(death.cause());
      }
    }
  });
  EXPECT_EQ(failed, 3);
  for (const std::string& host : hosts) EXPECT_EQ(host, "lgm-node");
  for (auto cause : causes) {
    EXPECT_EQ(cause, WorkerDiedError::Cause::host_crash);
  }
}

TEST(Distributed, DeltaExchangeTracksChangesAndKickRepeats) {
  Lab lab;
  lab.run([&] {
    WorkerSpec spec{.code = "phigrape", .ncores = 2};
    GravityClient gravity(start_local_worker(lab.sockets, lab.net,
                                             *lab.desktop, *lab.desktop, spec,
                                             ChannelKind::mpi));
    util::Rng rng(9);
    auto model = ic::plummer_sphere(32, rng);
    gravity.add_particles(model.mass, model.position, model.velocity);
    GravityState before = gravity.get_state();
    auto id_before = gravity.coupling_sources_id();
    gravity.evolve(0.125);
    GravityState after = gravity.get_state();
    // Positions moved and the delta cache tracked them.
    EXPECT_NE(before.position[0].x, after.position[0].x);
    EXPECT_NE(gravity.coupling_sources_id(), id_before);
    EXPECT_EQ(after.mass, before.mass);  // masses unchanged, still correct

    // An identical kick sent twice: the second rides the repeat path and
    // must still be applied (velocities advance twice).
    std::vector<Vec3> kicks(model.mass.size(), Vec3{0.5, 0, 0});
    gravity.kick(kicks);
    double vx_once = gravity.get_state().velocity[0].x;
    gravity.kick(kicks);
    double vx_twice = gravity.get_state().velocity[0].x;
    EXPECT_DOUBLE_EQ(vx_twice - vx_once, 0.5);
    gravity.close();
  });
}

TEST(Distributed, FieldAccelForCachesUnchangedInputs) {
  using jungle::amuse::FieldTag;
  using jungle::amuse::make_state_id;
  Lab lab;
  lab.run([&] {
    DaemonClient client(lab.sockets, *lab.desktop);
    WorkerSpec spec{.code = "octgrav"};
    FieldClient field(client.start_worker(spec, "lgm"));
    util::Rng rng(3);
    auto model = ic::plummer_sphere(2000, rng);
    std::vector<Vec3> points{{1, 0, 0}, {0, 2, 0}, {0, 0, 3}};
    auto sources_id = make_state_id(7, 1);
    auto points_id = make_state_id(8, 1);

    double t0 = lab.sim.now();
    Future first = field.accel_for_async(FieldTag::gas_on_stars, sources_id,
                                         model.mass, model.position,
                                         points_id, points);
    std::vector<Vec3> accel_first =
        field.finish_accel(FieldTag::gas_on_stars, first);
    double first_cost = lab.sim.now() - t0;

    // Same content ids: nothing is uploaded, nothing recomputed, and the
    // cached accelerations come back bit-identical.
    double t1 = lab.sim.now();
    Future second = field.accel_for_async(FieldTag::gas_on_stars, sources_id,
                                          model.mass, model.position,
                                          points_id, points);
    const std::vector<Vec3>& accel_second =
        field.finish_accel(FieldTag::gas_on_stars, second);
    double second_cost = lab.sim.now() - t1;
    ASSERT_EQ(accel_second.size(), accel_first.size());
    for (std::size_t i = 0; i < accel_first.size(); ++i) {
      EXPECT_EQ(accel_second[i].x, accel_first[i].x);
    }
    EXPECT_LT(second_cost, 0.5 * first_cost);

    // Changed sources (new id): recompute with the fresh upload.
    std::vector<double> doubled = model.mass;
    for (double& m : doubled) m *= 2.0;
    Future third = field.accel_for_async(
        FieldTag::gas_on_stars, make_state_id(7, 2), doubled, model.position,
        points_id, points);
    const std::vector<Vec3>& accel_third =
        field.finish_accel(FieldTag::gas_on_stars, third);
    EXPECT_NEAR(accel_third[0].x, 2.0 * accel_first[0].x,
                1e-9 * std::abs(accel_first[0].x));
    field.close();
  });
}

TEST(Distributed, RestartedWorkerMintsFreshStateIds) {
  // The rollback/replay invalidation story: content ids carry a worker
  // instance nonce, so a replacement worker serving the very same particle
  // data can never alias the dead worker's entries in downstream caches
  // (the coupler's source/point/accel tags).
  Lab lab;
  lab.run([&] {
    WorkerSpec spec{.code = "phigrape", .ncores = 2};
    util::Rng rng(4);
    auto model = ic::plummer_sphere(16, rng);
    GravityClient first(start_local_worker(lab.sockets, lab.net, *lab.desktop,
                                           *lab.desktop, spec,
                                           ChannelKind::mpi));
    first.add_particles(model.mass, model.position, model.velocity);
    first.get_state();
    GravityClient second(start_local_worker(lab.sockets, lab.net,
                                            *lab.desktop, *lab.desktop, spec,
                                            ChannelKind::mpi));
    second.add_particles(model.mass, model.position, model.velocity);
    second.get_state();
    EXPECT_NE(first.coupling_sources_id(), second.coupling_sources_id());
    first.close();
    second.close();
  });
}

TEST(Distributed, PipelinedBridgeMatchesSynchronousBitExact) {
  // Acceptance: the pipelined/delta data path must be a pure wire
  // optimization — the physics trajectory is bit-identical to the serial
  // full-fetch baseline, stellar feedback and all.
  auto run_bridge = [](bool synchronous) {
    Lab lab;
    GravityState stars;
    HydroState gas;
    lab.run([&] {
      BridgeRig rig(lab);
      Bridge::Config config;
      config.dt = 1.0 / 64.0;
      config.se_every = 2;
      config.myr_per_nbody_time = 4.0;
      config.feedback_efficiency = 0.5;
      config.wind_specific_energy = 50.0;
      config.supernova_energy = 50.0;
      config.synchronous_datapath = synchronous;
      rig.stars->set_delta_exchange(!synchronous);
      rig.gas->set_delta_exchange(!synchronous);
      rig.coupler->set_delta_exchange(!synchronous);
      Bridge bridge(*rig.stars, *rig.gas, *rig.coupler, rig.se.get(), config);
      for (int i = 0; i < 4; ++i) bridge.step();
      stars = rig.stars->get_state();
      gas = rig.gas->get_state();
      rig.close();
    });
    return std::pair{stars, gas};
  };
  auto [stars_sync, gas_sync] = run_bridge(true);
  auto [stars_pipe, gas_pipe] = run_bridge(false);
  ASSERT_EQ(stars_sync.position.size(), stars_pipe.position.size());
  ASSERT_EQ(gas_sync.position.size(), gas_pipe.position.size());
  for (std::size_t i = 0; i < stars_sync.position.size(); ++i) {
    EXPECT_EQ(stars_sync.mass[i], stars_pipe.mass[i]);
    EXPECT_EQ(stars_sync.position[i].x, stars_pipe.position[i].x);
    EXPECT_EQ(stars_sync.position[i].y, stars_pipe.position[i].y);
    EXPECT_EQ(stars_sync.position[i].z, stars_pipe.position[i].z);
    EXPECT_EQ(stars_sync.velocity[i].x, stars_pipe.velocity[i].x);
  }
  for (std::size_t i = 0; i < gas_sync.position.size(); ++i) {
    EXPECT_EQ(gas_sync.position[i].x, gas_pipe.position[i].x);
    EXPECT_EQ(gas_sync.velocity[i].x, gas_pipe.velocity[i].x);
    EXPECT_EQ(gas_sync.internal_energy[i], gas_pipe.internal_energy[i]);
    EXPECT_EQ(gas_sync.density[i], gas_pipe.density[i]);
  }
}

TEST(Distributed, ResourceSelectorFindsReplacement) {
  Lab lab;
  zorilla::Overlay overlay(lab.net, 7);
  auto& origin = overlay.add_node(*lab.desktop);
  overlay.add_node(*lab.lgm_node, &origin);
  overlay.add_node(*lab.das_nodes[0], &origin);
  overlay.gossip_until_converged();
  zorilla::ResourceSelector selector(overlay);
  zorilla::Requirements req;
  req.needs_gpu = true;
  auto* gpu_node = selector.select(req);
  ASSERT_NE(gpu_node, nullptr);
  EXPECT_EQ(gpu_node->host().name(), "lgm-node");
  // After that node dies, selection falls back to nothing (no other GPU).
  lab.lgm_node->crash();
  EXPECT_EQ(selector.select(req), nullptr);
}

TEST(Distributed, DashboardReflectsWorkerJobs) {
  Lab lab;
  lab.run([&] {
    DaemonClient client(lab.sockets, *lab.desktop);
    WorkerSpec spec;
    spec.code = "sse";
    StellarClient stellar(client.start_worker(spec, "lgm"));
    std::vector<double> zams{1.0};
    stellar.add_stars(zams);
    stellar.evolve_to(1.0);
    std::string dashboard = lab.deployer->dashboard();
    EXPECT_NE(dashboard.find("sse-"), std::string::npos);
    EXPECT_NE(dashboard.find("RUNNING"), std::string::npos);
    stellar.close();
  });
}
