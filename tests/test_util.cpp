#include <gtest/gtest.h>

#include <cmath>

#include "util/bytebuffer.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace ju = jungle::util;

// ---------------------------------------------------------------- strings

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(ju::trim("  hello \t"), "hello");
  EXPECT_EQ(ju::trim(""), "");
  EXPECT_EQ(ju::trim(" \t \n"), "");
  EXPECT_EQ(ju::trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto fields = ju::split("a,b,,c", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "c");
}

TEST(Strings, SplitSingleField) {
  auto fields = ju::split("alone", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(ju::starts_with("resource das4", "resource"));
  EXPECT_FALSE(ju::starts_with("res", "resource"));
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(ju::format_bytes(512), "512.0 B");
  EXPECT_EQ(ju::format_bytes(1536), "1.5 KiB");
}

TEST(Strings, FormatBitrate) {
  EXPECT_EQ(ju::format_bitrate(8.2e9), "8.20 Gbit/s");
  EXPECT_EQ(ju::format_bitrate(100), "100.00 bit/s");
}

// ------------------------------------------------------------- bytebuffer

TEST(ByteBuffer, RoundTripPrimitives) {
  ju::ByteWriter writer;
  writer.put<std::int32_t>(-42);
  writer.put<double>(3.5);
  writer.put<std::uint8_t>(7);
  ju::ByteReader reader(std::move(writer).take());
  EXPECT_EQ(reader.get<std::int32_t>(), -42);
  EXPECT_EQ(reader.get<double>(), 3.5);
  EXPECT_EQ(reader.get<std::uint8_t>(), 7);
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteBuffer, RoundTripStringsAndVectors) {
  ju::ByteWriter writer;
  writer.put_string("phigrape");
  writer.put_vector(std::vector<double>{1.0, 2.0, 3.0});
  writer.put_string("");
  ju::ByteReader reader(std::move(writer).take());
  EXPECT_EQ(reader.get_string(), "phigrape");
  auto values = reader.get_vector<double>();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[1], 2.0);
  EXPECT_EQ(reader.get_string(), "");
}

TEST(ByteBuffer, UnderrunThrowsWireError) {
  ju::ByteWriter writer;
  writer.put<std::uint16_t>(1);
  ju::ByteReader reader(std::move(writer).take());
  EXPECT_THROW(reader.get<std::uint64_t>(), jungle::WireError);
}

TEST(ByteBuffer, TruncatedStringThrows) {
  ju::ByteWriter writer;
  writer.put<std::uint32_t>(100);  // claims 100 bytes follow; none do
  ju::ByteReader reader(std::move(writer).take());
  EXPECT_THROW(reader.get_string(), jungle::WireError);
}

TEST(ByteBuffer, SizeTracksContent) {
  ju::ByteWriter writer;
  EXPECT_EQ(writer.size(), 0u);
  writer.put<double>(1.0);
  EXPECT_EQ(writer.size(), 8u);
  writer.put_string("ab");
  EXPECT_EQ(writer.size(), 8u + 4u + 2u);
}

// ------------------------------------- scatter-gather framing (data path)

TEST(ByteBuffer, PrefixReservedAndPatched) {
  ju::ByteWriter writer(8);
  writer.put<double>(2.5);
  writer.patch<std::uint32_t>(0, 77);
  writer.patch<std::uint16_t>(4, 5);
  EXPECT_EQ(writer.size(), 16u);
  ju::ByteReader reader(std::move(writer).take());
  EXPECT_EQ(reader.get<std::uint32_t>(), 77u);
  EXPECT_EQ(reader.get<std::uint16_t>(), 5);
  reader.get<std::uint16_t>();  // untouched prefix bytes stay zero
  EXPECT_EQ(reader.get<double>(), 2.5);
}

TEST(ByteBuffer, PatchOutsidePrefixThrows) {
  ju::ByteWriter writer(4);
  EXPECT_THROW(writer.patch<std::uint64_t>(0, 1), jungle::WireError);
  ju::ByteWriter plain;
  EXPECT_THROW(plain.patch<std::uint8_t>(0, 1), jungle::WireError);
}

TEST(ByteBuffer, SpanViewFramesWithoutOwningCopy) {
  std::vector<double> bulk{1.0, 2.0, 3.0, 4.0};
  ju::ByteWriter writer(8);
  writer.put_span_view(std::span<const double>(bulk));
  EXPECT_EQ(writer.size(), 8u + 8u + 32u);
  bulk[2] = 30.0;  // still borrowed: the change is visible at take() time
  ju::ByteReader reader(std::move(writer).take(), 8);
  auto values = reader.get_vector<double>();
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(values[2], 30.0);
}

TEST(ByteBuffer, AppendSplicesSegments) {
  std::vector<double> bulk{9.0, 8.0};
  ju::ByteWriter payload;
  payload.put<std::uint64_t>(41);
  payload.put_span_view(std::span<const double>(bulk));
  payload.put_string("tail");
  ju::ByteWriter frame(8);
  frame.patch<std::uint32_t>(0, 1);
  frame.append(std::move(payload));
  EXPECT_EQ(frame.size(), 8u + 8u + (8u + 16u) + (4u + 4u));
  ju::ByteReader reader(std::move(frame).take());
  EXPECT_EQ(reader.get<std::uint32_t>(), 1u);
  reader.get<std::uint32_t>();
  EXPECT_EQ(reader.get<std::uint64_t>(), 41u);
  auto values = reader.get_vector<double>();
  EXPECT_EQ(values[1], 8.0);
  EXPECT_EQ(reader.get_string(), "tail");
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteBuffer, ReaderOffsetAndRelease) {
  ju::ByteWriter writer;
  writer.put<std::uint64_t>(7);
  writer.put<double>(1.25);
  auto bytes = std::move(writer).take();
  ju::ByteReader header(std::move(bytes));
  EXPECT_EQ(header.get<std::uint64_t>(), 7u);
  std::size_t offset = header.cursor();
  ju::ByteReader payload(std::move(header).release(), offset);
  EXPECT_EQ(payload.get<double>(), 1.25);
  EXPECT_THROW(ju::ByteReader(std::vector<std::uint8_t>{1}, 5),
               jungle::WireError);
}

TEST(ByteBuffer, HugeArrayCountThrowsInsteadOfOverflowing) {
  // A corrupt count whose byte size wraps 64-bit arithmetic must surface
  // as WireError, not as a span/vector claiming 2^61 elements.
  ju::ByteWriter writer;
  writer.put<std::uint64_t>(0x2000000000000001ULL);
  writer.put<double>(0.0);
  ju::ByteReader span_reader(std::move(writer).take());
  EXPECT_THROW(span_reader.get_span<double>(), jungle::WireError);
  ju::ByteWriter again;
  again.put<std::uint64_t>(0x2000000000000001ULL);
  again.put<double>(0.0);
  ju::ByteReader vector_reader(std::move(again).take());
  EXPECT_THROW(vector_reader.get_vector<double>(), jungle::WireError);
}

TEST(ByteBuffer, GetSpanIsViewAndChecksAlignment) {
  ju::ByteWriter writer;  // span count at 0, data 8-aligned
  writer.put_vector(std::vector<double>{4.0, 5.0});
  ju::ByteReader reader(std::move(writer).take());
  auto span = reader.get_span<double>();
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[1], 5.0);
  EXPECT_TRUE(reader.exhausted());

  ju::ByteWriter odd;
  odd.put<std::uint32_t>(1);  // forces 4-byte alignment for what follows
  odd.put_vector(std::vector<double>{1.0});
  ju::ByteReader misaligned(std::move(odd).take());
  misaligned.get<std::uint32_t>();
  EXPECT_THROW(misaligned.get_span<double>(), jungle::WireError);
}

// ----------------------------------------------------------------- config

TEST(Config, ParsesSectionsKeysComments) {
  auto config = ju::Config::parse(
      "# deployment file\n"
      "[resource das4-vu]\n"
      "middleware = sge   ; scheduler\n"
      "cores = 8\n"
      "\n"
      "[resource lgm]\n"
      "middleware = ssh\n"
      "gpu = tesla-c2050\n");
  ASSERT_EQ(config.sections().size(), 2u);
  EXPECT_EQ(config.sections()[0], "resource das4-vu");
  EXPECT_EQ(config.get("resource das4-vu", "middleware"), "sge");
  EXPECT_EQ(config.get_int("resource das4-vu", "cores"), 8);
  EXPECT_EQ(config.get("resource lgm", "gpu"), "tesla-c2050");
}

TEST(Config, MissingKeyThrows) {
  auto config = ju::Config::parse("[a]\nx = 1\n");
  EXPECT_THROW(config.get("a", "y"), jungle::ConfigError);
  EXPECT_THROW(config.get("b", "x"), jungle::ConfigError);
  EXPECT_EQ(config.get_or("a", "y", "fallback"), "fallback");
}

TEST(Config, TypeErrors) {
  auto config = ju::Config::parse("[a]\nx = notanumber\nb = maybe\n");
  EXPECT_THROW(config.get_int("a", "x"), jungle::ConfigError);
  EXPECT_THROW(config.get_double("a", "x"), jungle::ConfigError);
  EXPECT_THROW(config.get_bool_or("a", "b", false), jungle::ConfigError);
}

TEST(Config, BoolAndDoubleParsing) {
  auto config = ju::Config::parse("[a]\nflag = yes\nrate = 2.5\noff = 0\n");
  EXPECT_TRUE(config.get_bool_or("a", "flag", false));
  EXPECT_FALSE(config.get_bool_or("a", "off", true));
  EXPECT_TRUE(config.get_bool_or("a", "missing", true));
  EXPECT_DOUBLE_EQ(config.get_double("a", "rate"), 2.5);
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(ju::Config::parse("[a]\njust words\n"), jungle::ConfigError);
  EXPECT_THROW(ju::Config::parse("x = 1\n"), jungle::ConfigError);
  EXPECT_THROW(ju::Config::parse("[unterminated\n"), jungle::ConfigError);
}

TEST(Config, SetAndKeysPreserveOrder) {
  ju::Config config;
  config.set("s", "b", "1");
  config.set("s", "a", "2");
  config.set("s", "b", "3");  // overwrite keeps position
  auto keys = config.keys("s");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "b");
  EXPECT_EQ(config.get("s", "b"), "3");
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
  ju::Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkDecorrelates) {
  ju::Rng a(1);
  ju::Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, UniformRange) {
  ju::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double value = rng.uniform(2.0, 3.0);
    EXPECT_GE(value, 2.0);
    EXPECT_LT(value, 3.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  ju::Rng rng(99);
  ju::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

// ------------------------------------------------------------------ stats

TEST(Stats, RunningStatsBasics) {
  ju::RunningStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
}

TEST(Stats, PercentileInterpolates) {
  ju::SampleSet set;
  for (int i = 1; i <= 100; ++i) set.add(static_cast<double>(i));
  EXPECT_NEAR(set.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(set.percentile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(set.percentile(0.5), 50.5, 1e-9);
}

TEST(Stats, EmptySampleSetIsZero) {
  ju::SampleSet set;
  EXPECT_EQ(set.percentile(0.5), 0.0);
}

// ---------------------------------------------------------------- logging

TEST(Logging, SinkCapturesAboveThreshold) {
  std::vector<std::string> captured;
  jungle::log::ScopedSink sink(
      [&](jungle::log::Level, const std::string& component,
          const std::string& message) {
        captured.push_back(component + ":" + message);
      });
  auto previous = jungle::log::threshold();
  jungle::log::set_threshold(jungle::log::Level::info);
  jungle::log::debug("x") << "dropped";
  jungle::log::info("net") << "value=" << 42;
  jungle::log::set_threshold(previous);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "net:value=42");
}
