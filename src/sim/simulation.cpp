#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace jungle::sim {

namespace {
// Which process (if any) the *current thread* is executing. Lets blocking
// primitives find their context without passing handles everywhere.
thread_local Simulation* t_sim = nullptr;
thread_local ProcessId t_pid = 0;
thread_local bool t_in_process = false;
}  // namespace

Simulation::Simulation() = default;

Simulation::~Simulation() {
  shutdown();
  {
    std::unique_lock lock(mutex_);
    shutting_down_ = true;
  }
  for (auto& pcb : processes_) {
    if (pcb->thread.joinable()) pcb->thread.join();
  }
}

void Simulation::shutdown() {
  if (t_in_process) {
    throw Error("Simulation::shutdown() called from inside a process");
  }
  std::unique_lock lock(mutex_);
  // Index loop: a dying process's destructors may spawn further entries.
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    Pcb& pcb = *processes_[i];
    if (pcb.state == PState::finished) continue;
    pcb.kill = true;
    grant_and_wait(lock, pcb);
  }
}

bool Simulation::in_process() noexcept { return t_in_process; }

Simulation::Pcb* Simulation::pcb_of(ProcessId pid) const {
  std::unique_lock lock(mutex_);
  return processes_.at(pid).get();
}

std::string Simulation::current_name() const {
  if (!t_in_process || t_sim != this) return "";
  return pcb_of(t_pid)->name;
}

ProcessId Simulation::current_pid() const {
  assert(t_in_process && t_sim == this);
  return t_pid;
}

bool Simulation::finished(ProcessId pid) const {
  std::unique_lock lock(mutex_);
  return processes_.at(pid)->state == PState::finished;
}

std::size_t Simulation::live_processes() const {
  std::unique_lock lock(mutex_);
  std::size_t live = 0;
  for (const auto& pcb : processes_) {
    if (pcb->state != PState::finished) ++live;
  }
  return live;
}

std::vector<std::string> Simulation::live_process_names() const {
  std::unique_lock lock(mutex_);
  std::vector<std::string> names;
  for (const auto& pcb : processes_) {
    if (pcb->state != PState::finished) names.push_back(pcb->name);
  }
  return names;
}

ProcessId Simulation::spawn(std::string name, std::function<void()> body) {
  return spawn_at(now_, std::move(name), std::move(body));
}

ProcessId Simulation::spawn_at(double start_at, std::string name,
                               std::function<void()> body) {
  std::unique_lock lock(mutex_);
  auto pcb = std::make_unique<Pcb>();
  pcb->name = std::move(name);
  pcb->body = std::move(body);
  auto pid = static_cast<ProcessId>(processes_.size());
  if (shutting_down_) {
    pcb->state = PState::finished;  // too late to run anything
    processes_.push_back(std::move(pcb));
    return pid;
  }
  processes_.push_back(std::move(pcb));
  Pcb& ref = *processes_.back();
  ref.thread = std::thread([this, pid] { trampoline(pid); });
  events_.push(Event{std::max(start_at, now_), next_seq_++, {}, pid,
                     ref.wake_gen, true});
  return pid;
}

void Simulation::at(double time, std::function<void()> callback) {
  std::unique_lock lock(mutex_);
  if (shutting_down_) return;
  events_.push(
      Event{std::max(time, now_), next_seq_++, std::move(callback), 0, 0, false});
}

void Simulation::after(double delay, std::function<void()> callback) {
  at(now_ + delay, std::move(callback));
}

void Simulation::schedule_wake(double time, ProcessId pid) {
  std::unique_lock lock(mutex_);
  if (shutting_down_) return;
  Pcb& pcb = *processes_.at(pid);
  events_.push(
      Event{std::max(time, now_), next_seq_++, {}, pid, pcb.wake_gen, true});
}

void Simulation::schedule_wake_gen(double time, ProcessId pid,
                                   std::uint64_t gen) {
  std::unique_lock lock(mutex_);
  if (shutting_down_) return;
  events_.push(Event{std::max(time, now_), next_seq_++, {}, pid, gen, true});
}

void Simulation::run() { run_until(std::numeric_limits<double>::infinity()); }

void Simulation::run_until(double until) {
  if (t_in_process) {
    throw Error("Simulation::run() called from inside a process");
  }
  std::unique_lock lock(mutex_);
  while (!events_.empty()) {
    Event ev = events_.top();
    if (ev.time > until) {
      now_ = until;
      return;
    }
    events_.pop();
    now_ = ev.time;
    if (ev.is_wake) {
      Pcb& pcb = *processes_.at(ev.pid);
      if (pcb.state == PState::finished || ev.wake_gen != pcb.wake_gen) {
        continue;  // stale wake (process already resumed via another event)
      }
      grant_and_wait(lock, pcb);
      if (pcb.state == PState::finished && pcb.error) {
        std::exception_ptr error = pcb.error;
        pcb.error = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
      }
    } else {
      lock.unlock();
      ev.callback();
      lock.lock();
    }
  }
  if (until != std::numeric_limits<double>::infinity()) now_ = until;
}

void Simulation::grant_and_wait(std::unique_lock<std::mutex>& lock, Pcb& pcb) {
  // Precondition: mutex_ held by `lock`. Hands the baton to `pcb`'s thread
  // and blocks this (scheduler) thread until the process yields or finishes.
  process_active_ = true;
  pcb.baton = true;
  pcb.cv.notify_one();
  scheduler_cv_.wait(lock, [this] { return !process_active_; });
}

void Simulation::yield_and_wait(std::unique_lock<std::mutex>& lock, Pcb& pcb) {
  // Precondition: mutex_ held by `lock`, calling thread is pcb's thread and
  // currently holds the baton. Gives the baton back, waits to get it again.
  process_active_ = false;
  scheduler_cv_.notify_one();
  pcb.cv.wait(lock, [&pcb] { return pcb.baton; });
  pcb.baton = false;
  ++pcb.wake_gen;  // invalidate any other pending wake events
  if (pcb.kill) throw ProcessKilled{};
}

void Simulation::block_current() {
  assert(t_in_process && t_sim == this);
  std::unique_lock lock(mutex_);
  Pcb& pcb = *processes_.at(t_pid);
  if (pcb.kill) return;  // unwinding after a kill: do not block again
  pcb.state = PState::blocked;
  yield_and_wait(lock, pcb);
  pcb.state = PState::runnable;
}

void Simulation::sleep(double seconds) {
  if (!t_in_process || t_sim != this) {
    throw Error("sleep() outside a simulated process");
  }
  if (pcb_of(t_pid)->kill) return;
  schedule_wake(now_ + seconds, t_pid);
  block_current();
}

void Simulation::yield_now() {
  if (!t_in_process || t_sim != this) {
    throw Error("yield_now() outside a simulated process");
  }
  if (pcb_of(t_pid)->kill) return;
  schedule_wake(now_, t_pid);
  block_current();
}

void Simulation::kill(ProcessId pid) {
  bool self = t_in_process && t_sim == this && pid == t_pid;
  {
    std::unique_lock lock(mutex_);
    Pcb& pcb = *processes_.at(pid);
    if (pcb.state == PState::finished) return;
    // Marked even for a self-kill, so blocking primitives reached during the
    // unwind return immediately instead of re-blocking, and kill_pending()
    // tells teardown code to take the abnormal (no-goodbye) path.
    pcb.kill = true;
    if (!self && !shutting_down_) {
      events_.push(Event{now_, next_seq_++, {}, pid, pcb.wake_gen, true});
    }
  }
  notify_kill_observers(pid);
  if (self) throw ProcessKilled{};  // killing yourself: unwind right here
}

void Simulation::notify_kill_observers(ProcessId pid) {
  // Index loop without the lock: observers call back into the simulation
  // (breaking pipes schedules wake events) and may register further
  // observers. Defunct ones (returning false) are compacted afterwards.
  for (std::size_t i = 0; i < kill_observers_.size(); ++i) {
    if (!kill_observers_[i]) continue;
    if (!kill_observers_[i](pid)) kill_observers_[i] = nullptr;
  }
  std::erase_if(kill_observers_,
                [](const std::function<bool(ProcessId)>& observer) {
                  return observer == nullptr;
                });
}

void Simulation::on_kill(std::function<bool(ProcessId)> observer) {
  kill_observers_.push_back(std::move(observer));
}

bool Simulation::kill_matching(const std::string& prefix,
                               const std::string& segment) {
  ProcessId victim = 0;
  bool found = false;
  {
    std::unique_lock lock(mutex_);
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      const Pcb& pcb = *processes_[i];
      if (pcb.state == PState::finished) continue;
      const std::string& name = pcb.name;
      if (name.size() < prefix.size() + segment.size()) continue;
      if (name.compare(0, prefix.size(), prefix) != 0) continue;
      if (name.compare(prefix.size(), segment.size(), segment) != 0) continue;
      std::size_t end = prefix.size() + segment.size();
      if (end != name.size() && name[end] != ':') continue;
      victim = static_cast<ProcessId>(i);
      found = true;
      break;
    }
  }
  if (found) kill(victim);
  return found;
}

bool Simulation::kill_pending() const noexcept {
  if (!t_in_process || t_sim != this) return false;
  std::unique_lock lock(mutex_);
  return processes_.at(t_pid)->kill;
}

void Simulation::watch_exit(ProcessId pid, std::function<void()> callback) {
  std::unique_lock lock(mutex_);
  if (shutting_down_) return;
  Pcb& pcb = *processes_.at(pid);
  if (pcb.state == PState::finished) {
    events_.push(Event{now_, next_seq_++, std::move(callback), 0, 0, false});
    return;
  }
  pcb.exit_watchers.push_back(std::move(callback));
}

void Simulation::trampoline(ProcessId pid) {
  t_sim = this;
  t_pid = pid;
  t_in_process = true;
  Pcb* pcb_ptr = nullptr;
  {
    std::unique_lock lock(mutex_);
    pcb_ptr = processes_.at(pid).get();
    Pcb& waiting = *pcb_ptr;
    waiting.cv.wait(lock, [&waiting] { return waiting.baton; });
    waiting.baton = false;
    ++waiting.wake_gen;
    waiting.state = PState::runnable;
  }
  Pcb& pcb = *pcb_ptr;
  if (!pcb.kill) {
    try {
      pcb.body();
    } catch (const ProcessKilled&) {
      // normal teardown path
    } catch (...) {
      pcb.error = std::current_exception();
    }
  }
  std::unique_lock lock(mutex_);
  pcb.state = PState::finished;
  // Exit watchers (supervision) fire as ordinary events at the death
  // timestamp — never during shutdown, when supervisors must not respawn.
  if (!shutting_down_) {
    for (auto& watcher : pcb.exit_watchers) {
      events_.push(
          Event{now_, next_seq_++, std::move(watcher), 0, 0, false});
    }
  }
  pcb.exit_watchers.clear();
  process_active_ = false;
  scheduler_cv_.notify_one();
}

void Signal::wait() {
  if (!Simulation::in_process() || t_sim != sim_) {
    throw Error("Signal::wait() outside a simulated process");
  }
  ProcessId self = sim_->current_pid();
  if (sim_->pcb_of(self)->kill) return;
  waiters_.push_back(self);
  sim_->block_current();
  // notify_* removes the pid before scheduling the wake; erase is a no-op on
  // the normal path but cleans up after a kill-driven resume.
  std::erase(waiters_, self);
}

bool Signal::wait_for(double timeout_s) {
  if (!Simulation::in_process() || t_sim != sim_) {
    throw Error("Signal::wait_for() outside a simulated process");
  }
  ProcessId self = sim_->current_pid();
  if (sim_->pcb_of(self)->kill) return false;
  waiters_.push_back(self);
  sim_->schedule_wake(sim_->now() + timeout_s, self);
  sim_->block_current();
  // notify_* removes us from waiters_ before waking us; if we are still
  // registered, the timeout fired first.
  auto it = std::find(waiters_.begin(), waiters_.end(), self);
  if (it != waiters_.end()) {
    waiters_.erase(it);
    return false;
  }
  return true;
}

void Signal::notify_one() {
  if (waiters_.empty()) return;
  ProcessId pid = waiters_.front();
  waiters_.erase(waiters_.begin());
  sim_->schedule_wake(sim_->now(), pid);
}

void Signal::notify_all() {
  std::vector<ProcessId> pids = std::move(waiters_);
  waiters_.clear();
  for (ProcessId pid : pids) sim_->schedule_wake(sim_->now(), pid);
}

}  // namespace jungle::sim
