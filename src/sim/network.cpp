#include "sim/network.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/logging.hpp"

namespace jungle::sim {

const char* traffic_class_name(TrafficClass cls) noexcept {
  switch (cls) {
    case TrafficClass::control: return "control";
    case TrafficClass::ipl: return "ipl";
    case TrafficClass::mpi: return "mpi";
    case TrafficClass::file: return "file";
  }
  return "?";
}

Network::Network(Simulation& sim) : sim_(sim) {}

void Network::add_site(const std::string& site, double lan_latency_s,
                       double lan_bandwidth_Bps) {
  auto [it, inserted] = sites_.try_emplace(site);
  if (inserted) {
    it->second.name = site;
    it->second.lan =
        Link{"lan:" + site, site, site, lan_latency_s, lan_bandwidth_Bps};
  } else {
    it->second.lan.latency_s = lan_latency_s;
    it->second.lan.bandwidth_Bps = lan_bandwidth_Bps;
  }
}

Host& Network::add_host(const std::string& name, const std::string& site,
                        int cores, double cpu_gflops_per_core) {
  if (hosts_.count(name)) throw ConfigError("duplicate host " + name);
  if (!sites_.count(site)) add_site(site);
  auto host =
      std::make_unique<Host>(sim_, name, site, cores, cpu_gflops_per_core);
  Host& ref = *host;
  hosts_[name] = std::move(host);
  host_order_.push_back(name);
  return ref;
}

Link& Network::add_link(const std::string& site_a, const std::string& site_b,
                        double latency_s, double bandwidth_Bps,
                        const std::string& name,
                        double stream_bandwidth_Bps) {
  if (!sites_.count(site_a)) add_site(site_a);
  if (!sites_.count(site_b)) add_site(site_b);
  auto link = std::make_unique<Link>();
  link->name = name.empty() ? site_a + "<->" + site_b : name;
  link->site_a = site_a;
  link->site_b = site_b;
  link->latency_s = latency_s;
  link->bandwidth_Bps = bandwidth_Bps;
  link->stream_bandwidth_Bps = stream_bandwidth_Bps;
  wan_links_.push_back(std::move(link));
  return *wan_links_.back();
}

Host& Network::host(const std::string& name) {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) throw ConfigError("unknown host " + name);
  return *it->second;
}

const Host& Network::host(const std::string& name) const {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) throw ConfigError("unknown host " + name);
  return *it->second;
}

Host* Network::find_host(const std::string& name) {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Network::host_names() const { return host_order_; }

void Network::set_loopback(double latency_s, double bandwidth_Bps) {
  loopback_lat_ = latency_s;
  loopback_bw_ = bandwidth_Bps;
}

bool Network::can_connect(const Host& from, const Host& to) const {
  if (&from == &to) return true;
  if (from.site() == to.site()) return true;  // LAN is trusted
  if (!route(from.site(), to.site())) return false;
  if (to.firewall().nat) return false;
  return to.firewall().allow_inbound;
}

bool Network::can_ssh(const Host& from, const Host& to) const {
  if (&from == &to) return true;
  if (from.site() == to.site()) return true;
  if (!route(from.site(), to.site())) return false;
  if (to.firewall().nat) return false;
  return to.firewall().allow_inbound || to.firewall().allow_ssh_inbound;
}

std::optional<std::vector<std::size_t>> Network::route(
    const std::string& site_a, const std::string& site_b) const {
  if (site_a == site_b) return std::vector<std::size_t>{};
  // BFS over the site graph; small graphs, computed per call.
  std::map<std::string, std::pair<std::string, std::size_t>> parent;
  std::deque<std::string> frontier{site_a};
  parent[site_a] = {"", 0};
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    if (current == site_b) break;
    for (std::size_t i = 0; i < wan_links_.size(); ++i) {
      const Link& link = *wan_links_[i];
      std::string next;
      if (link.site_a == current) {
        next = link.site_b;
      } else if (link.site_b == current) {
        next = link.site_a;
      } else {
        continue;
      }
      if (parent.count(next)) continue;
      parent[next] = {current, i};
      frontier.push_back(next);
    }
  }
  if (!parent.count(site_b)) return std::nullopt;
  std::vector<std::size_t> links;
  for (std::string at = site_b; at != site_a;) {
    auto& [prev, link_index] = parent[at];
    links.push_back(link_index);
    at = prev;
  }
  std::reverse(links.begin(), links.end());
  return links;
}

std::vector<Link*> Network::path_links(const Host& from, const Host& to) {
  std::vector<Link*> links;
  if (&from == &to) {
    links.push_back(&loopback_stats_);
    return links;
  }
  Site& site_from = sites_.at(from.site());
  Site& site_to = sites_.at(to.site());
  if (from.site() == to.site()) {
    links.push_back(&site_from.lan);
    return links;
  }
  auto wan = route(from.site(), to.site());
  if (!wan) {
    throw ConnectError("no route between sites " + from.site() + " and " +
                       to.site());
  }
  links.push_back(&site_from.lan);
  for (std::size_t index : *wan) links.push_back(wan_links_[index].get());
  links.push_back(&site_to.lan);
  return links;
}

double Network::rtt(const Host& from, const Host& to) const {
  if (&from == &to) return 2 * loopback_lat_;
  double one_way = 0.0;
  const Site& site_from = sites_.at(from.site());
  const Site& site_to = sites_.at(to.site());
  if (from.site() == to.site()) {
    one_way = site_from.lan.latency_s;
  } else {
    auto wan = route(from.site(), to.site());
    if (!wan) {
      throw ConnectError("no route between sites " + from.site() + " and " +
                         to.site());
    }
    one_way = site_from.lan.latency_s + site_to.lan.latency_s;
    for (std::size_t index : *wan) one_way += wan_links_[index]->latency_s;
  }
  return 2 * one_way;
}

double Network::path_bandwidth(const Host& from, const Host& to,
                               int streams) const {
  if (&from == &to) return loopback_bw_;
  const Site& site_from = sites_.at(from.site());
  const Site& site_to = sites_.at(to.site());
  if (from.site() == to.site()) {
    return site_from.lan.effective_bandwidth(streams);
  }
  auto wan = route(from.site(), to.site());
  if (!wan) return 0.0;
  double narrowest = std::min(site_from.lan.effective_bandwidth(streams),
                              site_to.lan.effective_bandwidth(streams));
  for (std::size_t index : *wan) {
    narrowest =
        std::min(narrowest, wan_links_[index]->effective_bandwidth(streams));
  }
  return narrowest;
}

bool Network::path_fp_truncate(const Host& from, const Host& to) const {
  if (&from == &to || from.site() == to.site()) return false;
  auto wan = route(from.site(), to.site());
  if (!wan) return false;
  for (std::size_t index : *wan) {
    if (wan_links_[index]->fp_truncate) return true;
  }
  return false;
}

std::optional<double> Network::send(const Host& from, const Host& to,
                                    double bytes, TrafficClass cls,
                                    std::function<void()> on_delivery,
                                    int streams) {
  // Loopback has its own parameters but the same FIFO occupancy: a burst
  // of messages serializes at the configured bandwidth.
  if (&from == &to) {
    loopback_stats_.bytes_by_class[static_cast<int>(cls)] += bytes;
    ++loopback_stats_.messages;
    double start = std::max(sim_.now(), loopback_stats_.busy_until);
    double occupy = bytes / loopback_bw_;
    loopback_stats_.busy_until = start + occupy;
    double arrival = start + occupy + loopback_lat_;
    if (on_delivery) sim_.at(arrival, std::move(on_delivery));
    return arrival;
  }
  std::vector<Link*> links = path_links(from, to);
  double t = sim_.now();
  for (Link* link : links) {
    if (link->down) {
      log::debug("net") << "message " << from.name() << "->" << to.name()
                        << " lost: link " << link->name << " down";
      return std::nullopt;  // lost; transports above retry
    }
    int usable = streams;
    if (link->failed_streams > 0 && streams > 1) {
      usable = std::max(1, streams - link->failed_streams);
      if (usable < streams) ++degraded_transfers_;
    }
    double start = std::max(t, link->busy_until);
    double occupy = bytes / link->effective_bandwidth(usable);
    link->busy_until = start + occupy;
    link->bytes_by_class[static_cast<int>(cls)] += bytes;
    ++link->messages;
    t = start + occupy + link->latency_s;
  }
  if (on_delivery) sim_.at(t, std::move(on_delivery));
  return t;
}

void Network::set_link_down(const std::string& name, bool down) {
  for (auto& link : wan_links_) {
    if (link->name == name) {
      if (link->down == down) return;
      link->down = down;
      for (auto& watcher : link_watchers_) watcher(name, down);
      return;
    }
  }
  throw ConfigError("unknown link " + name);
}

void Network::flap_link(const std::string& name, double down_s) {
  set_link_down(name, true);
  sim_.after(down_s, [this, name] {
    // The link may have been healed (or hard-killed) meanwhile; only undo
    // our own drop.
    for (auto& link : wan_links_) {
      if (link->name == name && link->down) set_link_down(name, false);
    }
  });
}

void Network::fail_streams(const std::string& name, int failed,
                           double heal_s) {
  for (auto& link : wan_links_) {
    if (link->name != name) continue;
    link->failed_streams = std::max(0, failed);
    if (failed > 0) {
      log::warn("net") << "link " << name << ": " << failed
                       << " stripe stream(s) failed at t=" << sim_.now();
    }
    if (failed > 0 && heal_s > 0) {
      sim_.after(heal_s, [this, name] { fail_streams(name, 0); });
    }
    return;
  }
  throw ConfigError("unknown link " + name);
}

bool Network::route_up(const Host& from, const Host& to) {
  if (&from == &to) return true;
  try {
    for (const Link* link : path_links(from, to)) {
      if (link->down) return false;
    }
  } catch (const ConnectError&) {
    return false;
  }
  return true;
}

void Network::watch_links(std::function<void(const std::string&, bool)> watcher) {
  link_watchers_.push_back(std::move(watcher));
}

std::vector<Network::LinkReport> Network::traffic_report() const {
  std::vector<LinkReport> report;
  report.push_back(LinkReport{loopback_stats_.name, loopback_lat_, loopback_bw_,
                              loopback_stats_.bytes_by_class,
                              loopback_stats_.messages});
  for (const auto& [name, site] : sites_) {
    report.push_back(LinkReport{site.lan.name, site.lan.latency_s,
                                site.lan.bandwidth_Bps,
                                site.lan.bytes_by_class, site.lan.messages});
  }
  for (const auto& link : wan_links_) {
    report.push_back(LinkReport{link->name, link->latency_s,
                                link->bandwidth_Bps, link->bytes_by_class,
                                link->messages});
  }
  return report;
}

void Network::reset_traffic() {
  auto clear = [](Link& link) {
    link.bytes_by_class = {};
    link.messages = 0;
  };
  clear(loopback_stats_);
  for (auto& [name, site] : sites_) clear(site.lan);
  for (auto& link : wan_links_) clear(*link);
}

}  // namespace jungle::sim
