#include "sim/host.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace jungle::sim {

Host::Host(Simulation& sim, std::string name, std::string site, int cores,
           double cpu_gflops_per_core)
    : sim_(sim),
      name_(std::move(name)),
      site_(std::move(site)),
      cores_(cores),
      cpu_gflops_per_core_(cpu_gflops_per_core) {}

double Host::compute_time(double flops, DeviceKind kind, int ncores) const {
  if (kind == DeviceKind::gpu) {
    if (!gpu_) {
      throw CodeError("host " + name_ + " has no GPU");
    }
    return flops / (gpu_->gflops * 1e9);
  }
  int used = std::clamp(ncores, 1, cores_);
  return flops / (cpu_gflops_per_core_ * 1e9 * used);
}

void Host::compute(double flops, DeviceKind kind, int ncores) {
  if (!up_) throw CodeError("host " + name_ + " is down");
  double duration = compute_time(flops, kind, ncores);
  if (kind == DeviceKind::gpu) {
    gpu_busy_seconds_ += duration;
  } else {
    busy_core_seconds_ += duration * std::clamp(ncores, 1, cores_);
  }
  sim_.sleep(duration);
}

ProcessId Host::spawn(std::string process_name, std::function<void()> body) {
  if (!up_) throw CodeError("host " + name_ + " is down; cannot start " +
                            process_name);
  ProcessId pid = sim_.spawn(name_ + "/" + std::move(process_name),
                             std::move(body));
  pids_.push_back(pid);
  return pid;
}

bool Host::kill_process(const std::string& segment) {
  if (!up_) return false;
  bool killed = sim_.kill_matching(name_ + "/", segment);
  if (killed) {
    log::warn("sim") << "process " << segment << " on host " << name_
                     << " killed at t=" << sim_.now();
  }
  return killed;
}

void Host::crash() {
  if (!up_) return;
  up_ = false;
  log::warn("sim") << "host " << name_ << " crashed at t=" << sim_.now();
  for (auto& callback : crash_callbacks_) callback();
  // Kill our processes. If the caller *is* one of them, Simulation::kill
  // throws ProcessKilled for self — so defer self to the very end.
  std::optional<ProcessId> self;
  bool in_proc = Simulation::in_process();
  for (ProcessId pid : pids_) {
    if (in_proc && pid == sim_.current_pid()) {
      self = pid;
      continue;
    }
    sim_.kill(pid);
  }
  if (self) sim_.kill(*self);  // throws ProcessKilled
}

}  // namespace jungle::sim
