#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/host.hpp"
#include "sim/simulation.hpp"

namespace jungle::sim {

/// Units for link parameters: bandwidths are stored in bytes/second.
namespace net {
constexpr double kbit = 1e3 / 8.0;
constexpr double mbit = 1e6 / 8.0;
constexpr double gbit = 1e9 / 8.0;
constexpr double us = 1e-6;
constexpr double ms = 1e-3;
}  // namespace net

/// Category of traffic for per-link accounting — reproduces the Fig-11
/// visualization where IPL traffic (blue) and MPI traffic (orange) are shown
/// separately per connection.
enum class TrafficClass : int { control = 0, ipl = 1, mpi = 2, file = 3 };
constexpr int kTrafficClasses = 4;
const char* traffic_class_name(TrafficClass cls) noexcept;

/// One directed hop (we model links as symmetric, shared in both
/// directions). Serialization on a link is FIFO: a transfer occupies the
/// link for bytes/bandwidth starting when the link frees up, which is what
/// makes a busy coupler uplink an honest bottleneck (paper §4.1).
struct Link {
  std::string name;
  std::string site_a;
  std::string site_b;
  double latency_s;
  double bandwidth_Bps;
  /// What a *single* stream achieves on this link (long fat pipes: the TCP
  /// window over a high RTT caps a connection far below the lightpath's
  /// capacity — the reason SmartSockets stripes bulk transfers over
  /// parallel streams). 0 = no per-stream cap (a single stream fills the
  /// link, the default for LANs and short links).
  double stream_bandwidth_Bps = 0.0;
  double busy_until = 0.0;
  bool down = false;
  /// Partial stripe failure: this many of a transfer's parallel streams are
  /// currently dead. Bulk transfers *degrade* to the surviving streams
  /// (throughput drops, nothing is torn down) — the graceful-degradation
  /// tier between "healthy" and "link down".
  int failed_streams = 0;
  /// Opt-in wire truncation advice for this link: clients whose state
  /// exchanges cross it request position arrays as f32 (half the bytes of
  /// the dominant coupling field). Purely advisory — the transport does not
  /// change; the AMUSE layer honours it per model and the scheduler prices
  /// flagged paths at the narrowed volume.
  bool fp_truncate = false;
  std::array<double, kTrafficClasses> bytes_by_class{};
  std::uint64_t messages = 0;

  double total_bytes() const noexcept {
    double sum = 0;
    for (double b : bytes_by_class) sum += b;
    return sum;
  }

  /// Throughput of a transfer carried over `streams` parallel streams:
  /// per-stream caps aggregate until the link capacity saturates.
  double effective_bandwidth(int streams) const noexcept {
    if (stream_bandwidth_Bps <= 0.0) return bandwidth_Bps;
    double aggregated = stream_bandwidth_Bps * (streams < 1 ? 1 : streams);
    return aggregated < bandwidth_Bps ? aggregated : bandwidth_Bps;
  }
};

/// The Jungle's wires: sites connected by WAN links, hosts attached to
/// sites by LAN links, plus a loopback path on every host. Owns all Hosts.
class Network {
 public:
  explicit Network(Simulation& sim);

  /// Create a site with given intra-site (LAN) characteristics. Implicitly
  /// created by add_host with defaults if absent.
  void add_site(const std::string& site, double lan_latency_s = 0.1 * net::ms,
                double lan_bandwidth_Bps = 1.0 * net::gbit);

  Host& add_host(const std::string& name, const std::string& site, int cores,
                 double cpu_gflops_per_core);

  /// WAN link between two sites (e.g. the transatlantic 1G lightpath).
  /// `stream_bandwidth_Bps` caps what one stream achieves (0 = uncapped).
  Link& add_link(const std::string& site_a, const std::string& site_b,
                 double latency_s, double bandwidth_Bps,
                 const std::string& name = "",
                 double stream_bandwidth_Bps = 0.0);

  Host& host(const std::string& name);
  const Host& host(const std::string& name) const;
  Host* find_host(const std::string& name);
  std::vector<std::string> host_names() const;

  /// Loopback characteristics (paper §5: ">8 Gbit/second even on a modest
  /// laptop ... extremely small latency").
  void set_loopback(double latency_s, double bandwidth_Bps);
  double loopback_bandwidth() const noexcept { return loopback_bw_; }
  double loopback_latency() const noexcept { return loopback_lat_; }

  /// Firewall check for a *new inbound connection* at `to` from `from`.
  /// Same-site traffic is unrestricted (clusters trust their own LAN).
  bool can_connect(const Host& from, const Host& to) const;

  /// Like can_connect but for ssh: front-ends often admit ssh while
  /// filtering everything else. NAT still blocks it.
  bool can_ssh(const Host& from, const Host& to) const;

  /// Round-trip time along the routed path (connection setup cost).
  double rtt(const Host& from, const Host& to) const;

  /// Bottleneck bandwidth (bytes/s) along the routed path — the narrowest
  /// of the LAN segments and WAN links a message crosses; the loopback rate
  /// for a host talking to itself. 0 when the sites are unreachable. Cost
  /// queries only (no traffic is charged) — the placement scheduler scores
  /// candidate kernel->host assignments with this. `streams` prices a
  /// transfer striped over that many parallel streams (per-stream caps
  /// aggregate, see Link::effective_bandwidth).
  double path_bandwidth(const Host& from, const Host& to,
                        int streams = 1) const;

  /// True when any WAN link on the routed path is flagged `fp_truncate`
  /// (low-bandwidth links that opted into f32 position truncation). False
  /// for loopback, same-site paths and unreachable pairs.
  bool path_fp_truncate(const Host& from, const Host& to) const;

  /// One-way message: advances link occupancy, accounts traffic, schedules
  /// `on_delivery` at the arrival time. Returns the arrival time, or
  /// nullopt if a link on the path is down (the message is lost — transport
  /// layers above retry). No firewall check: that applies to connection
  /// setup, not established flows. `streams` is the stripe count the
  /// transport chose for this transfer (bandwidth aggregation on
  /// stream-capped links).
  std::optional<double> send(const Host& from, const Host& to, double bytes,
                             TrafficClass cls,
                             std::function<void()> on_delivery = {},
                             int streams = 1);

  /// Mark a WAN link down/up by name (transient failure injection).
  /// Notifies link watchers after flipping the state.
  void set_link_down(const std::string& name, bool down);

  /// Flap injection: the link drops *now* and heals itself after `down_s`.
  /// Distinct from a hard set_link_down — a flap shorter than
  /// tunables::kOutageGraceSeconds is survivable by construction: in-flight
  /// frames ride it out on the hop-retry budget and idle-pipe keepalives
  /// re-check after the same grace, so nothing is torn down.
  void flap_link(const std::string& name, double down_s);

  /// Partial stream failure on a link: `failed` of a transfer's parallel
  /// streams are dead, healing after `heal_s` (0 = until repaired by a
  /// later call with failed=0). Transfers degrade to surviving streams;
  /// degraded_transfers() counts how many sends were affected.
  void fail_streams(const std::string& name, int failed, double heal_s = 0.0);
  std::uint64_t degraded_transfers() const noexcept {
    return degraded_transfers_;
  }

  /// True when every link on the routed path between the hosts is up
  /// (loopback always is; false when no route exists at all). Transports
  /// use this to decide whether an established connection still has a live
  /// route under it.
  bool route_up(const Host& from, const Host& to);

  /// Observe link state changes (name, down). Fired by set_link_down for
  /// each transition — the simulated analog of carrier-loss notifications
  /// that lets idle connections discover a dead route instead of blocking
  /// on it forever. Watchers live as long as the network.
  void watch_links(std::function<void(const std::string&, bool)> watcher);

  struct LinkReport {
    std::string name;
    double latency_s;
    double bandwidth_Bps;
    std::array<double, kTrafficClasses> bytes_by_class;
    std::uint64_t messages;
  };
  std::vector<LinkReport> traffic_report() const;
  void reset_traffic();

  Simulation& simulation() noexcept { return sim_; }

 private:
  struct Site {
    std::string name;
    Link lan;  // hosts in the same site talk through this
  };

  // Shortest path (in hops) between sites; returns WAN link indices, or
  // nullopt when unreachable.
  std::optional<std::vector<std::size_t>> route(const std::string& site_a,
                                                const std::string& site_b) const;
  // All links a message (from -> to) crosses, in order.
  std::vector<Link*> path_links(const Host& from, const Host& to);

  Simulation& sim_;
  std::map<std::string, Site> sites_;
  std::vector<std::unique_ptr<Link>> wan_links_;
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  std::vector<std::string> host_order_;
  double loopback_lat_ = 5 * net::us;
  double loopback_bw_ = 10.0 * net::gbit;
  Link loopback_stats_{"loopback", "", "", 0, 0};
  std::vector<std::function<void(const std::string&, bool)>> link_watchers_;
  std::uint64_t degraded_transfers_ = 0;
};

}  // namespace jungle::sim
