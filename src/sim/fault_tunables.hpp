#pragma once

namespace jungle::sim::tunables {

/// The one failure-detection budget shared by every transport-level
/// detector. A frame stuck on a dead route retries every kHopRetryDelay
/// seconds up to kMaxHopRetries times; an *idle* pipe learns about a dead
/// route from a link watcher and re-checks after the same total grace.
/// Keeping both derived from one pair of constants means "how long until a
/// hard outage is declared" has exactly one answer (kOutageGraceSeconds) —
/// and a *flap* shorter than that is, by definition, survivable: transports
/// ride it out through retries and nothing is torn down.
inline constexpr double kHopRetryDelay = 0.05;
inline constexpr int kMaxHopRetries = 100;
inline constexpr double kOutageGraceSeconds = kMaxHopRetries * kHopRetryDelay;

}  // namespace jungle::sim::tunables
