#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "sim/simulation.hpp"

namespace jungle::sim {

/// Typed producer/consumer queue in virtual time. The universal building
/// block for blocking protocols on top of the event simulator: deliveries
/// `put` from event callbacks, processes `get` with blocking semantics.
/// Values are moved through by value (CP.31).
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulation& sim) : sim_(sim), signal_(sim) {}

  void put(T item) {
    items_.push_back(std::move(item));
    signal_.notify_one();
  }

  /// Blocks the calling process until an item is available.
  T get() {
    while (items_.empty()) signal_.wait();
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks up to `timeout_s` virtual seconds; empty optional on timeout.
  std::optional<T> get_for(double timeout_s) {
    double deadline = sim_.now() + timeout_s;
    while (items_.empty()) {
      double budget = deadline - sim_.now();
      if (budget <= 0.0) return std::nullopt;
      signal_.wait_for(budget);
      if (items_.empty() && sim_.now() >= deadline) return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::optional<T> try_get() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }

 private:
  Simulation& sim_;
  Signal signal_;
  std::deque<T> items_;
};

}  // namespace jungle::sim
