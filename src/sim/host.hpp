#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace jungle::sim {

class Network;

/// Where a computation runs. GPU compute requires the host to carry a GPU.
enum class DeviceKind { cpu, gpu };

/// An accelerator attached to a host (paper: GeForce 9600GT, Tesla C2050).
/// `gflops` is the *effective* rate for the kernels under study, not a peak.
struct GpuSpec {
  std::string model;
  double gflops = 0.0;
};

/// Connectivity restrictions of a machine (paper §2: firewalls, NATs,
/// non-routed networks). Outbound traffic is always possible — the common
/// real-world case the paper describes ("firewalls in general only block
/// traffic in one direction").
struct FirewallPolicy {
  bool allow_inbound = true;
  /// Cluster front-ends usually keep ssh reachable even when everything
  /// else is filtered — which is why job submission works where ordinary
  /// connections need the hub overlay.
  bool allow_ssh_inbound = true;
  bool nat = false;  // behind NAT: unreachable from outside even if open
};

/// A machine in the Jungle: compute rates, optional GPU, firewall, and a
/// crash switch for fault-injection. Hosts are owned by the Network.
class Host {
 public:
  Host(Simulation& sim, std::string name, std::string site, int cores,
       double cpu_gflops_per_core);

  const std::string& name() const noexcept { return name_; }
  const std::string& site() const noexcept { return site_; }
  int cores() const noexcept { return cores_; }
  double cpu_gflops_per_core() const noexcept { return cpu_gflops_per_core_; }

  void set_gpu(GpuSpec gpu) { gpu_ = std::move(gpu); }
  const std::optional<GpuSpec>& gpu() const noexcept { return gpu_; }

  FirewallPolicy& firewall() noexcept { return firewall_; }
  const FirewallPolicy& firewall() const noexcept { return firewall_; }

  /// Blocks the calling process while `flops` of work execute on this host.
  /// CPU work may use up to `ncores` cores (capped at the host's count);
  /// GPU work requires a GPU and ignores `ncores`. Throws CodeError if the
  /// device is absent. Accounts busy time for the load monitor.
  void compute(double flops, DeviceKind kind, int ncores = 1);

  /// Duration the above would block for, without blocking (cost queries).
  double compute_time(double flops, DeviceKind kind, int ncores = 1) const;

  /// Spawn a process that belongs to this host; it is killed if the host
  /// crashes, and refuses to start if the host is down.
  ProcessId spawn(std::string process_name, std::function<void()> body);

  bool is_up() const noexcept { return up_; }

  /// Fault injection: kill every process on this host and notify observers.
  /// If called from one of the host's own processes, that process dies last.
  void crash();

  /// Process-level fault injection: kill the first live process on this
  /// host whose name segment matches (see Simulation::kill_matching) — the
  /// host stays up, supervisors may respawn the victim. Returns false when
  /// no such process is alive.
  bool kill_process(const std::string& segment);
  void restart() noexcept { up_ = true; }
  void on_crash(std::function<void()> callback) {
    crash_callbacks_.push_back(std::move(callback));
  }

  /// Accumulated core-seconds / GPU-seconds of compute (Fig-11 load bars).
  double busy_core_seconds() const noexcept { return busy_core_seconds_; }
  double gpu_busy_seconds() const noexcept { return gpu_busy_seconds_; }

  Simulation& simulation() noexcept { return sim_; }

 private:
  Simulation& sim_;
  std::string name_;
  std::string site_;
  int cores_;
  double cpu_gflops_per_core_;
  std::optional<GpuSpec> gpu_;
  FirewallPolicy firewall_;
  bool up_ = true;
  std::vector<ProcessId> pids_;
  std::vector<std::function<void()>> crash_callbacks_;
  double busy_core_seconds_ = 0.0;
  double gpu_busy_seconds_ = 0.0;
};

}  // namespace jungle::sim
