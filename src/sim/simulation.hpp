#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace jungle::sim {

/// Thrown *into* a simulated process when it is killed (host crash or
/// simulation shutdown). Unwinds the process body; never escapes run().
/// Deliberately not derived from jungle::Error so that subsystem catch
/// blocks (`catch (const Error&)`) do not swallow a kill.
struct ProcessKilled {};

class Simulation;

/// Identifies a spawned process. Index into the simulation's table.
using ProcessId = std::uint32_t;

/// A virtual-time condition variable. Processes block on it with wait();
/// any code (process or event callback) wakes them with notify_one/all.
/// Follows CP.42: every wait has an explicit condition at the call site.
class Signal {
 public:
  explicit Signal(Simulation& sim) : sim_(&sim) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// Block the calling process until notified. Only valid inside a process.
  void wait();

  /// Block until notified or until `timeout_s` of virtual time passes.
  /// Returns true if notified, false on timeout.
  bool wait_for(double timeout_s);

  void notify_one();
  void notify_all();

 private:
  Simulation* sim_;
  std::vector<ProcessId> waiters_;
};

/// Deterministic discrete-event simulator with cooperative processes.
///
/// Exactly one simulated process (or event callback) executes at any moment;
/// the scheduler hands a "baton" to the process owning the earliest event.
/// Events at equal times fire in scheduling order, so runs are replayable.
/// Processes are real threads, which lets protocol code (RPC, MPI, sockets)
/// be written as straight-line blocking code (CP.4: think in tasks).
class Simulation {
 public:
  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time in seconds.
  double now() const noexcept { return now_; }

  /// Create a process; it becomes runnable at the current time (or at
  /// `start_at` if given). The body runs on its own thread, one at a time.
  ProcessId spawn(std::string name, std::function<void()> body);
  ProcessId spawn_at(double start_at, std::string name,
                     std::function<void()> body);

  /// Schedule a non-blocking callback (timers, message delivery). Callbacks
  /// run on the scheduler thread and must not call blocking primitives.
  void at(double time, std::function<void()> callback);
  void after(double delay, std::function<void()> callback);

  /// Drive the simulation until no events remain (or `until` is reached).
  /// Rethrows the first uncaught exception from any process.
  void run();
  void run_until(double until);

  /// Block the calling process for `seconds` of virtual time.
  void sleep(double seconds);

  /// Yield the baton, becoming runnable again at the same timestamp (after
  /// already-scheduled same-time events).
  void yield_now();

  /// Kill a process: ProcessKilled is raised at its next (or current)
  /// blocking point. Killing a finished process is a no-op.
  void kill(ProcessId pid);

  /// Kill the first live process whose name is `prefix` + `segment`, or
  /// `prefix` + `segment` + ":...". Segment matching (rather than substring)
  /// keeps victims crisp: "amuse-daemon" never matches
  /// "amuse-daemon-client", while "worker" matches "worker:phigrape".
  /// Returns false when nothing matched (the process-level analog of a
  /// crash injection against an already-dead host).
  bool kill_matching(const std::string& prefix, const std::string& segment);

  /// True when the *calling* process has been killed and is (or should be)
  /// unwinding. Protocol teardown consults this to pick the abnormal path:
  /// a killed process gets no goodbye frames — its peers must find out the
  /// hard way, exactly like a SIGKILLed daemon on a real machine.
  bool kill_pending() const noexcept;

  /// Observe kills injected with kill()/kill_matching() (not the mass
  /// teardown of shutdown(), which owners sequence explicitly). Fired after
  /// the kill is marked, before a self-kill unwinds. Return false to
  /// unregister (defunct watchers prune themselves).
  void on_kill(std::function<bool(ProcessId)> observer);

  /// Run `callback` (as a scheduled event) when `pid` finishes — the
  /// supervision primitive: no polling, so an idle simulation still drains.
  /// Fires immediately (well: at the current timestamp) if `pid` already
  /// finished.
  void watch_exit(ProcessId pid, std::function<void()> callback);

  /// Kill and fully unwind every live process *now*. Owners of a
  /// Simulation must call this before destroying objects that process
  /// unwind paths may still touch (sockets, networks, daemons): the
  /// destructor also unwinds, but by then sibling members are gone.
  void shutdown();

  /// True while called from inside a simulated process.
  static bool in_process() noexcept;

  /// Name of the currently running process ("" outside processes).
  std::string current_name() const;
  ProcessId current_pid() const;

  bool finished(ProcessId pid) const;

  /// Number of processes that have not finished.
  std::size_t live_processes() const;
  /// Names of the unfinished processes — the resource-leak diagnostics the
  /// fault explorer prints when a recovery leaves orphans behind.
  std::vector<std::string> live_process_names() const;

 private:
  friend class Signal;

  enum class PState { created, runnable, blocked, finished };

  struct Pcb {
    std::string name;
    std::thread thread;
    std::condition_variable cv;
    bool baton = false;        // scheduler granted execution
    bool kill = false;         // raise ProcessKilled at next wait
    std::uint64_t wake_gen = 0;  // invalidates stale wake events
    PState state = PState::created;
    std::function<void()> body;
    std::exception_ptr error;
    std::vector<std::function<void()>> exit_watchers;
  };

  struct Event {
    double time;
    std::uint64_t seq;
    // Either a callback, or a process wake (callback empty).
    std::function<void()> callback;
    ProcessId pid = 0;
    std::uint64_t wake_gen = 0;
    bool is_wake = false;
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Locked lookup of a process control block. The vector reallocates on
  // spawn; every cross-thread access must resolve the (stable, heap-owned)
  // Pcb pointer under the mutex rather than index the vector unlocked.
  Pcb* pcb_of(ProcessId pid) const;

  // Process-side: give the baton back and wait until granted again.
  // Precondition: lock held. Throws ProcessKilled if killed meanwhile.
  void yield_and_wait(std::unique_lock<std::mutex>& lock, Pcb& pcb);

  // Schedule a wake event for `pid` at `time`; bumps the wake generation so
  // earlier pending wakes become stale.
  void schedule_wake(double time, ProcessId pid);
  // Schedule a wake without bumping generation (notify & timeout pair).
  void schedule_wake_gen(double time, ProcessId pid, std::uint64_t gen);

  // Block the current process until its wake generation fires.
  void block_current();

  void grant_and_wait(std::unique_lock<std::mutex>& lock, Pcb& pcb);
  void trampoline(ProcessId pid);
  void notify_kill_observers(ProcessId pid);

  mutable std::mutex mutex_;
  std::condition_variable scheduler_cv_;
  bool process_active_ = false;  // a process currently holds the baton

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::vector<std::unique_ptr<Pcb>> processes_;
  std::vector<std::function<bool(ProcessId)>> kill_observers_;
  bool shutting_down_ = false;
};

}  // namespace jungle::sim
