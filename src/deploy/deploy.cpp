#include "deploy/deploy.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace jungle::deploy {

void build_topology(const util::Config& config, sim::Network& net) {
  using sim::net::gbit;
  using sim::net::ms;
  // Sites first so LAN parameters apply before hosts attach.
  for (const std::string& section : config.sections()) {
    auto fields = util::split(section, ' ');
    if (fields.size() == 2 && fields[0] == "site") {
      net.add_site(fields[1],
                   config.get_double_or(section, "lan_latency_ms", 0.1) * ms,
                   config.get_double_or(section, "lan_gbit", 1.0) * gbit);
    }
  }
  for (const std::string& section : config.sections()) {
    auto fields = util::split(section, ' ');
    if (fields.size() == 2 && fields[0] == "host") {
      int cores = static_cast<int>(config.get_int_or(section, "cores", 1));
      double gflops = config.get_double_or(section, "gflops", 10.0);
      // Reject nonsense rates up front: a zero/negative device would make
      // every cost query infinite or negative and poison the scheduler.
      if (cores <= 0) {
        throw ConfigError("[" + section + "] cores must be positive, got " +
                          std::to_string(cores));
      }
      if (gflops <= 0.0) {
        throw ConfigError("[" + section + "] gflops must be positive");
      }
      sim::Host& host =
          net.add_host(fields[1], config.get(section, "site"), cores, gflops);
      if (config.has_key(section, "gpu_model")) {
        double gpu_gflops = config.get_double(section, "gpu_gflops");
        if (gpu_gflops <= 0.0) {
          throw ConfigError("[" + section + "] gpu_gflops must be positive");
        }
        host.set_gpu(
            sim::GpuSpec{config.get(section, "gpu_model"), gpu_gflops});
      }
      host.firewall().allow_inbound =
          config.get_bool_or(section, "inbound", true);
      host.firewall().nat = config.get_bool_or(section, "nat", false);
    } else if (fields.size() == 3 && fields[0] == "link") {
      // `stream_mbit` caps what one stream achieves on the link (long fat
      // pipes); bulk transfers stripe across parallel streams to fill it.
      double stream_Bps =
          config.get_double_or(section, "stream_mbit", 0.0) * sim::net::mbit;
      if (stream_Bps < 0.0) {
        throw ConfigError("[" + section + "] stream_mbit must be >= 0");
      }
      sim::Link& link =
          net.add_link(fields[1], fields[2],
                       config.get_double_or(section, "latency_ms", 1.0) * ms,
                       config.get_double_or(section, "gbit", 1.0) * gbit,
                       config.get_or(section, "name", ""), stream_Bps);
      // Low-bandwidth links can opt into f32 position truncation: clients
      // whose exchanges cross this link narrow the dominant coupling field.
      link.fp_truncate = config.get_bool_or(section, "fp_truncate", false);
    }
  }
}

std::vector<gat::Resource> resources_from_config(const util::Config& config,
                                                 sim::Network& net) {
  std::vector<gat::Resource> resources;
  for (const std::string& section : config.sections()) {
    auto fields = util::split(section, ' ');
    if (fields.size() != 2 || fields[0] != "resource") continue;
    gat::Resource resource;
    resource.name = fields[1];
    resource.middleware = config.get(section, "middleware");
    std::string frontend = config.get(section, "frontend");
    if (net.find_host(frontend) == nullptr) {
      throw ConfigError("resource " + resource.name +
                        ": unknown frontend host '" + frontend + "'");
    }
    resource.frontend = &net.host(frontend);
    if (config.has_key(section, "nodes")) {
      for (const std::string& node :
           util::split(config.get(section, "nodes"), ',')) {
        std::string node_name = util::trim(node);
        if (net.find_host(node_name) == nullptr) {
          throw ConfigError("resource " + resource.name +
                            ": unknown node host '" + node_name + "'");
        }
        resource.nodes.push_back(&net.host(node_name));
      }
    }
    resource.queue_base_delay =
        config.get_double_or(section, "queue_delay", 0.0);
    resource.gatekeeper_cert = config.get_or(section, "cert", "");
    if (resource.middleware == "sge" || resource.middleware == "pbs" ||
        resource.middleware == "globus") {
      resource.queue =
          std::make_shared<gat::ClusterQueue>(net.simulation());
      resource.queue->set_meter(resource.name);
      resource.queue->set_nodes(resource.compute_hosts());
    }
    resources.push_back(std::move(resource));
  }
  return resources;
}

Deployer::Deployer(sim::Network& net, smartsockets::SmartSockets& sockets,
                   sim::Host& client)
    : net_(net),
      sockets_(sockets),
      client_(client),
      broker_(net, sockets, client) {
  broker_.register_default_adapters();
}

void Deployer::add_resource(gat::Resource resource) {
  resources_.push_back(std::move(resource));
}

void Deployer::add_resources(std::vector<gat::Resource> resources) {
  for (auto& resource : resources) add_resource(std::move(resource));
}

gat::Resource& Deployer::resource(const std::string& name) {
  for (auto& resource : resources_) {
    if (resource.name == name) return resource;
  }
  throw ConfigError("unknown resource " + name);
}

std::vector<std::string> Deployer::resource_names() const {
  std::vector<std::string> names;
  for (const auto& resource : resources_) names.push_back(resource.name);
  return names;
}

void Deployer::start_hubs() {
  if (hubs_started_) return;
  hubs_started_ = true;
  sockets_.start_hub(client_);
  for (auto& resource : resources_) {
    if (resource.frontend == nullptr) continue;
    // A front-end we can only reach outbound gets its hub through an
    // ssh tunnel (the red edges of Fig 10).
    bool tunneled = !net_.can_connect(client_, *resource.frontend);
    sockets_.start_hub(*resource.frontend, tunneled);
  }
}

std::shared_ptr<gat::Job> Deployer::submit(const gat::JobDescription& desc,
                                           const std::string& resource_name) {
  start_hubs();
  auto job = broker_.submit(desc, resource(resource_name));
  jobs_.push_back(TrackedJob{desc.name, resource_name, job});
  return job;
}

std::string Deployer::dashboard() const {
  std::ostringstream out;
  out << "=== ibis-deploy dashboard (t=" << net_.simulation().now()
      << " s) ===\n";
  out << "-- resources --\n";
  for (const auto& resource : resources_) {
    out << "  " << resource.name << " [" << resource.middleware << "] front="
        << (resource.frontend ? resource.frontend->name() : "-");
    out << " nodes=" << resource.compute_hosts().size();
    if (resource.queue) {
      out << " busy=" << resource.queue->busy_nodes() << "/"
          << resource.queue->total_nodes();
    }
    out << "\n";
  }
  out << "-- jobs --\n";
  for (const auto& tracked : jobs_) {
    out << "  " << tracked.name << " @ " << tracked.resource << " : "
        << gat::job_state_name(tracked.job->state());
    if (tracked.job->state() == gat::JobState::error) {
      out << " (" << tracked.job->error_message() << ")";
    }
    out << " via " << tracked.job->adapter() << "\n";
  }
  out << "-- overlay (fig 10) --\n";
  for (const auto& edge : sockets_.overlay_map()) {
    const char* marker = edge.kind == smartsockets::OverlayEdge::Kind::tunnel
                             ? "=tunnel="
                             : edge.kind ==
                                       smartsockets::OverlayEdge::Kind::oneway
                                   ? "-oneway->"
                                   : "<------->";
    out << "  " << edge.hub_a << " " << marker << " " << edge.hub_b << "\n";
  }
  out << "-- traffic (fig 11) --\n";
  for (const auto& link : net_.traffic_report()) {
    if (link.messages == 0) continue;
    out << "  " << link.name << ": ";
    for (int cls = 0; cls < sim::kTrafficClasses; ++cls) {
      if (link.bytes_by_class[cls] <= 0) continue;
      out << sim::traffic_class_name(static_cast<sim::TrafficClass>(cls))
          << "=" << util::format_bytes(link.bytes_by_class[cls]) << " ";
    }
    out << "(" << link.messages << " msgs)\n";
  }
  out << "-- load --\n";
  for (const std::string& name : net_.host_names()) {
    const sim::Host& host = net_.host(name);
    if (host.busy_core_seconds() <= 0 && host.gpu_busy_seconds() <= 0) {
      continue;
    }
    out << "  " << name << ": cpu=" << host.busy_core_seconds()
        << " core-s, gpu=" << host.gpu_busy_seconds() << " s\n";
  }
  return out.str();
}

}  // namespace jungle::deploy
