#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gat/gat.hpp"
#include "sim/network.hpp"
#include "smartsockets/smartsockets.hpp"
#include "util/config.hpp"

namespace jungle::deploy {

/// Build hosts/sites/links from an INI description — the "small number of
/// simple configuration files" of IbisDeploy (paper §3/§5). Sections:
///
///   [site amsterdam]        lan_latency_ms=0.1  lan_gbit=1
///   [host fs0]              site=amsterdam cores=8 gflops=10
///                           gpu_model=c2050 gpu_gflops=500
///                           inbound=false nat=false
///   [link amsterdam leiden] latency_ms=0.5 gbit=1 name=starplane
void build_topology(const util::Config& config, sim::Network& net);

/// Build GAT resources from `[resource NAME]` sections:
///
///   [resource das4-vu]
///   middleware = sge
///   frontend = fs0
///   nodes = node001,node002,node003
///   queue_delay = 2.0
///   cert = das4-grid-cert      ; globus only
std::vector<gat::Resource> resources_from_config(const util::Config& config,
                                                 sim::Network& net);

/// IbisDeploy analog: owns the resource table, bootstraps the SmartSockets
/// hub overlay (one hub per resource front-end plus the client), stages
/// files, submits jobs through the GAT broker and tracks them — and renders
/// the monitoring dashboard the paper shows as Figs 10/11.
class Deployer {
 public:
  Deployer(sim::Network& net, smartsockets::SmartSockets& sockets,
           sim::Host& client);

  void add_resource(gat::Resource resource);
  void add_resources(std::vector<gat::Resource> resources);
  gat::Resource& resource(const std::string& name);
  std::vector<std::string> resource_names() const;
  /// The discovered resource table (what the placement scheduler consumes).
  const std::vector<gat::Resource>& resources() const noexcept {
    return resources_;
  }

  /// Start a hub on every resource front-end + the client machine
  /// ("IbisDeploy automatically starts the hubs required by SmartSockets on
  /// each resource used").
  void start_hubs();

  /// Submit a job to a named resource. Tracks it for the dashboard.
  std::shared_ptr<gat::Job> submit(const gat::JobDescription& desc,
                                   const std::string& resource_name);

  gat::Broker& broker() noexcept { return broker_; }
  smartsockets::SmartSockets& sockets() noexcept { return sockets_; }
  sim::Host& client() noexcept { return client_; }

  /// Text analog of the IbisDeploy GUI: resource map, job grid, overlay
  /// edges (Fig 10) and per-link traffic with IPL/MPI split (Fig 11).
  std::string dashboard() const;

 private:
  sim::Network& net_;
  smartsockets::SmartSockets& sockets_;
  sim::Host& client_;
  gat::Broker broker_;
  std::vector<gat::Resource> resources_;
  struct TrackedJob {
    std::string name;
    std::string resource;
    std::shared_ptr<gat::Job> job;
  };
  std::vector<TrackedJob> jobs_;
  bool hubs_started_ = false;
};

}  // namespace jungle::deploy
