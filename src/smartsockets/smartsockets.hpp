#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/network.hpp"
#include "smartsockets/connection.hpp"

namespace jungle::smartsockets {

/// A listening endpoint: (host, service-name). accept() blocks until an
/// initiator completes a connection setup.
class ServerSocket {
 public:
  ServerSocket(sim::Simulation& sim, sim::Host& host, std::string service)
      : host_(&host), service_(std::move(service)), accept_queue_(sim) {}

  std::shared_ptr<ConnectionEnd> accept() { return accept_queue_.get(); }
  std::optional<std::shared_ptr<ConnectionEnd>> accept_for(double timeout_s) {
    return accept_queue_.get_for(timeout_s);
  }

  sim::Host& host() noexcept { return *host_; }
  const std::string& service() const noexcept { return service_; }

 private:
  friend class SmartSockets;
  sim::Host* host_;
  std::string service_;
  sim::Mailbox<std::shared_ptr<ConnectionEnd>> accept_queue_;
};

/// An edge of the hub overlay as shown in the IbisDeploy GUI (Fig 10):
/// plain edges are two-way reachable, `oneway` edges needed a reverse setup
/// (drawn as arrows in the paper), `tunnel` edges were bootstrapped by
/// deployment (ssh tunnels, drawn red).
struct OverlayEdge {
  std::string hub_a;
  std::string hub_b;
  enum class Kind { open, oneway, tunnel } kind;
};

/// The SmartSockets layer (paper §3): a socket factory that hides firewalls
/// and NATs behind three strategies — direct connection, reverse connection
/// (ask the target, via the hub overlay, to dial back), and hub relay.
class SmartSockets {
 public:
  explicit SmartSockets(sim::Network& net);

  /// Start a hub on `host` (typically a cluster front-end). `tunneled`
  /// marks the overlay edges of this hub as deployment-made tunnels.
  void start_hub(sim::Host& host, bool tunneled = false);

  /// Register a listening service. The returned socket lives until the
  /// SmartSockets object dies. Service names must be unique per host.
  ServerSocket& listen(sim::Host& host, const std::string& service);
  void unlisten(sim::Host& host, const std::string& service);

  /// Establish a connection from a process running on `from` to the service
  /// at `target`. Blocks the calling process for the setup cost (direct:
  /// one RTT; reverse: control path through the hubs + dial-back RTT;
  /// relayed: control path). Throws ConnectError when no strategy works or
  /// nothing is listening.
  std::shared_ptr<ConnectionEnd> connect(sim::Host& from, sim::Host& target,
                                         const std::string& service,
                                         sim::TrafficClass cls);

  /// The hub a host would use for overlay signalling (same site), if any.
  sim::Host* hub_for(const sim::Host& host) const;

  /// Hub-to-hub path (host pointers, both endpoints included); empty when
  /// src and dst hubs coincide; nullopt when overlay is partitioned.
  std::optional<std::vector<sim::Host*>> hub_path(sim::Host* from_hub,
                                                  sim::Host* to_hub) const;

  /// Overlay as drawn in Fig 10.
  std::vector<OverlayEdge> overlay_map() const;

  /// Setup statistics per strategy, for the connectivity experiment (E10).
  struct SetupStats {
    int direct = 0;
    int reverse = 0;
    int relayed = 0;
    int failed = 0;
  };
  const SetupStats& setup_stats() const noexcept { return stats_; }

  sim::Network& network() noexcept { return net_; }

 private:
  struct HubInfo {
    sim::Host* host;
    bool tunneled;
  };

  std::shared_ptr<ConnectionEnd> finish_setup(sim::Host& from,
                                              sim::Host& target,
                                              const std::string& service,
                                              sim::TrafficClass cls,
                                              ConnectionKind kind,
                                              std::vector<sim::Host*> hops,
                                              double setup_time);
  bool hubs_linked(const sim::Host& a, const sim::Host& b) const;

  sim::Network& net_;
  std::vector<HubInfo> hubs_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<ServerSocket>>
      listeners_;
  SetupStats stats_;
};

}  // namespace jungle::smartsockets
