#include "smartsockets/connection.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace jungle::smartsockets {

namespace {
// Flat per-frame overhead: sequence number, length, connection id (models
// the SmartSockets wire framing).
constexpr double kFrameOverheadBytes = 32.0;
// The outage budget is shared with every other failure detector
// (sim/fault_tunables.hpp): a frame stuck on a down link retries every
// kHopRetryDelay up to kMaxHopRetries times, and idle connections (no frame
// in flight to exhaust that budget) learn of a dead route from the
// network's link watcher and break after the same total grace
// (kOutageGraceSeconds) — both detection paths declare death on the same
// outage length.
constexpr double kRetryDelay = sim::tunables::kHopRetryDelay;
constexpr int kMaxHopRetries = sim::tunables::kMaxHopRetries;
constexpr double kLinkDetectTimeout = sim::tunables::kOutageGraceSeconds;
}  // namespace

int stripe_count(double bytes) noexcept {
  if (bytes <= kStripeThresholdBytes) return 1;
  int chunks = static_cast<int>(std::ceil(bytes / kStripeChunkBytes));
  return std::min(chunks, kMaxStripes);
}

const char* connection_kind_name(ConnectionKind kind) noexcept {
  switch (kind) {
    case ConnectionKind::direct: return "direct";
    case ConnectionKind::reverse: return "reverse";
    case ConnectionKind::relayed: return "relayed";
  }
  return "?";
}

ConnectionEnd::ConnectionEnd(sim::Simulation& sim, sim::Host* local)
    : sim_(sim), local_(local), incoming_(sim) {}

sim::Host& ConnectionEnd::remote_host() noexcept {
  return initiator_ ? *pipe_->b->local_ : *pipe_->a->local_;
}

void ConnectionEnd::send(std::vector<std::uint8_t> bytes) {
  if (broken_) throw ConnectError("send on broken connection");
  if (closed_) throw ConnectError("send on closed connection");
  bytes_sent_ += static_cast<double>(bytes.size());
  if (stripe_count(static_cast<double>(bytes.size())) > 1) ++striped_sends_;
  pipe_->route(this, Frame{next_send_seq_++, std::move(bytes), false});
}

void ConnectionEnd::close() {
  if (closed_ || broken_) return;
  closed_ = true;
  pipe_->route(this, Frame{next_send_seq_++, {}, true});
}

void ConnectionEnd::abort() {
  if (broken_) return;
  pipe_->break_both();
}

std::optional<std::vector<std::uint8_t>> ConnectionEnd::recv() {
  if (sim::Simulation::in_process()) last_user_ = sim_.current_pid();
  if (broken_ && incoming_.empty()) {
    throw ConnectError("connection to " + remote_host().name() + " broke");
  }
  Frame frame = incoming_.get();
  if (frame.eof) {
    if (broken_) {
      throw ConnectError("connection to " + remote_host().name() + " broke");
    }
    return std::nullopt;
  }
  return std::move(frame.bytes);
}

std::optional<std::vector<std::uint8_t>> ConnectionEnd::recv_for(
    double timeout_s) {
  if (sim::Simulation::in_process()) last_user_ = sim_.current_pid();
  if (broken_ && incoming_.empty()) {
    throw ConnectError("connection to " + remote_host().name() + " broke");
  }
  auto frame = incoming_.get_for(timeout_s);
  if (!frame) return std::nullopt;  // timeout
  if (frame->eof) {
    if (broken_) throw ConnectError("connection broke");
    return std::nullopt;
  }
  return std::move(frame->bytes);
}

void ConnectionEnd::deliver(Frame frame) {
  // Frames can overtake each other when an earlier one is retried across a
  // down link; reassemble FIFO order here.
  reorder_[frame.seq] = std::move(frame);
  while (true) {
    auto it = reorder_.find(next_recv_seq_);
    if (it == reorder_.end()) break;
    ++next_recv_seq_;
    incoming_.put(std::move(it->second));
    reorder_.erase(it);
  }
}

void ConnectionEnd::mark_broken() {
  if (broken_) return;
  broken_ = true;
  // Wake any blocked reader with a poisoned eof frame.
  incoming_.put(Frame{~0ULL, {}, true});
}

Pipe::Pipe(sim::Network& net, sim::TrafficClass cls,
           std::vector<sim::Host*> hops, ConnectionKind kind)
    : net_(net), cls_(cls), hops_(std::move(hops)), kind_(kind) {}

std::pair<std::shared_ptr<ConnectionEnd>, std::shared_ptr<ConnectionEnd>>
Pipe::make(sim::Network& net, sim::TrafficClass cls,
           std::vector<sim::Host*> hops, ConnectionKind kind) {
  auto pipe = std::make_shared<Pipe>(net, cls, hops, kind);
  auto a = std::make_shared<ConnectionEnd>(net.simulation(), hops.front());
  auto b = std::make_shared<ConnectionEnd>(net.simulation(), hops.back());
  a->pipe_ = pipe;
  b->pipe_ = pipe;
  a->initiator_ = true;
  a->kind_ = kind;
  b->kind_ = kind;
  pipe->a = a.get();
  pipe->b = b.get();
  // The pipe keeps both ends alive while frames are in flight; the cycle is
  // intentional and bounded by the simulation's lifetime.
  pipe->a_owner_ = a;
  pipe->b_owner_ = b;
  // A crash of either endpoint host breaks the connection (the IPL registry
  // turns this into a "died" event upstream).
  sim::Host* host_a = hops.front();
  sim::Host* host_b = hops.back();
  std::weak_ptr<Pipe> weak = pipe;
  auto breaker = [weak] {
    if (auto alive = weak.lock()) alive->break_both();
  };
  host_a->on_crash(breaker);
  host_b->on_crash(breaker);
  // A killed *process* (process-level fault injection, not a host crash)
  // takes its sockets down with it: when the last reader of either end is
  // killed, the pipe breaks and the peer sees a connection reset. Ends that
  // already closed are exempt — an orderly close followed by a teardown
  // kill (the normal pump-shutdown sequence) must stay a clean EOF.
  net.simulation().on_kill([weak](sim::ProcessId pid) {
    auto alive = weak.lock();
    if (!alive) return false;  // pipe gone: unregister
    ConnectionEnd* ea = alive->a;
    ConnectionEnd* eb = alive->b;
    if (ea == nullptr || eb == nullptr) return true;
    if (ea->closed_ || eb->closed_ || ea->broken_ || eb->broken_) return true;
    if ((ea->last_user_ && *ea->last_user_ == pid) ||
        (eb->last_user_ && *eb->last_user_ == pid)) {
      alive->break_both();
    }
    return true;
  });
  // A dead *route* must also break the connection, even when no frame is in
  // flight to exhaust the hop-retry budget — otherwise the far side of a cut
  // WAN link blocks in recv() forever (the leaked-worker hole the fault
  // explorer flags). On a link-down event, any pipe whose route lost
  // connectivity re-checks after the keepalive timeout and breaks if the
  // outage persists.
  if (host_a != host_b) {
    sim::Network* net_ptr = &net;
    net.watch_links([weak, net_ptr](const std::string&, bool down) {
      if (!down) return;
      auto alive = weak.lock();
      if (!alive || alive->route_alive()) return;
      net_ptr->simulation().after(kLinkDetectTimeout, [weak] {
        if (auto still = weak.lock()) {
          if (!still->route_alive()) still->break_both();
        }
      });
    });
  }
  return {a, b};
}

bool Pipe::route_alive() const {
  for (std::size_t i = 0; i + 1 < hops_.size(); ++i) {
    if (!net_.route_up(*hops_[i], *hops_[i + 1])) return false;
  }
  return true;
}

void Pipe::route(ConnectionEnd* from_end, ConnectionEnd::Frame frame) {
  hop(from_end == a, 0, std::move(frame));
}

void Pipe::hop(bool forward, std::size_t hop_index,
               ConnectionEnd::Frame frame) {
  // hops_ is initiator->acceptor order; walk it backwards for b->a frames.
  std::size_t hop_count = hops_.size() - 1;
  if (hop_index >= hop_count) {
    ConnectionEnd* destination = forward ? b : a;
    if (destination != nullptr && !destination->broken_) {
      destination->deliver(std::move(frame));
    }
    return;
  }
  sim::Host* from = forward ? hops_[hop_index] : hops_[hop_count - hop_index];
  sim::Host* to =
      forward ? hops_[hop_index + 1] : hops_[hop_count - hop_index - 1];
  // Bulk frames split across parallel streams: each stream pays its own
  // framing, and stream-capped links aggregate bandwidth across them.
  int streams = stripe_count(static_cast<double>(frame.bytes.size()));
  double wire_bytes = static_cast<double>(frame.bytes.size()) +
                      kFrameOverheadBytes * streams;
  auto self = shared_from_this();
  auto frame_ptr = std::make_shared<ConnectionEnd::Frame>(std::move(frame));
  auto arrival = net_.send(*from, *to, wire_bytes, cls_,
                           [self, forward, hop_index, frame_ptr]() mutable {
                             self->hop(forward, hop_index + 1,
                                       std::move(*frame_ptr));
                           },
                           streams);
  if (!arrival) {
    // Transient failure: retry this hop after a pause (paper §5: "our
    // communication library can handle transient network failures"). A
    // *persistent* outage must not retry forever — after the budget runs
    // out the connection is declared broken (the TCP-reset analog), so
    // readers wake with a ConnectError and the layers above can recover
    // instead of silently hanging behind an endless retry loop.
    if (++frame_ptr->retries > kMaxHopRetries) {
      break_both();
      return;
    }
    net_.simulation().after(kRetryDelay,
                            [self, forward, hop_index, frame_ptr]() mutable {
                              self->hop(forward, hop_index,
                                        std::move(*frame_ptr));
                            });
  }
}

void Pipe::break_both() {
  if (a != nullptr) a->mark_broken();
  if (b != nullptr) b->mark_broken();
}

}  // namespace jungle::smartsockets
