#include "smartsockets/smartsockets.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "util/logging.hpp"

namespace jungle::smartsockets {

namespace {
// Small control messages used during connection setup (SYN, reverse-request).
constexpr double kControlBytes = 128.0;
}  // namespace

SmartSockets::SmartSockets(sim::Network& net) : net_(net) {}

void SmartSockets::start_hub(sim::Host& host, bool tunneled) {
  for (const auto& hub : hubs_) {
    if (hub.host == &host) return;  // idempotent
  }
  hubs_.push_back(HubInfo{&host, tunneled});
  log::info("smartsockets") << "hub started on " << host.name() << " ("
                            << host.site() << ")";
}

ServerSocket& SmartSockets::listen(sim::Host& host, const std::string& service) {
  auto key = std::make_pair(host.name(), service);
  if (listeners_.count(key)) {
    throw ConnectError("service " + service + " already bound on " +
                       host.name());
  }
  auto socket =
      std::make_unique<ServerSocket>(net_.simulation(), host, service);
  ServerSocket& ref = *socket;
  listeners_[key] = std::move(socket);
  return ref;
}

void SmartSockets::unlisten(sim::Host& host, const std::string& service) {
  listeners_.erase(std::make_pair(host.name(), service));
}

sim::Host* SmartSockets::hub_for(const sim::Host& host) const {
  // Prefer a hub at the host's own site (IbisDeploy starts one per
  // resource); fall back to any hub the host can dial out to.
  for (const auto& hub : hubs_) {
    if (hub.host->site() == host.site() && hub.host->is_up()) return hub.host;
  }
  for (const auto& hub : hubs_) {
    if (hub.host->is_up() && net_.can_connect(host, *hub.host)) return hub.host;
  }
  return nullptr;
}

bool SmartSockets::hubs_linked(const sim::Host& a, const sim::Host& b) const {
  // Hubs establish overlay edges among themselves using reverse setups, so
  // one reachable direction suffices.
  return net_.can_connect(a, b) || net_.can_connect(b, a);
}

std::optional<std::vector<sim::Host*>> SmartSockets::hub_path(
    sim::Host* from_hub, sim::Host* to_hub) const {
  if (from_hub == nullptr || to_hub == nullptr) return std::nullopt;
  if (from_hub == to_hub) return std::vector<sim::Host*>{from_hub};
  std::map<sim::Host*, sim::Host*> parent;
  std::deque<sim::Host*> frontier{from_hub};
  parent[from_hub] = nullptr;
  while (!frontier.empty()) {
    sim::Host* current = frontier.front();
    frontier.pop_front();
    if (current == to_hub) break;
    for (const auto& hub : hubs_) {
      if (!hub.host->is_up() || parent.count(hub.host)) continue;
      if (hubs_linked(*current, *hub.host)) {
        parent[hub.host] = current;
        frontier.push_back(hub.host);
      }
    }
  }
  if (!parent.count(to_hub)) return std::nullopt;
  std::vector<sim::Host*> path;
  for (sim::Host* at = to_hub; at != nullptr; at = parent[at]) {
    path.push_back(at);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::shared_ptr<ConnectionEnd> SmartSockets::connect(sim::Host& from,
                                                     sim::Host& target,
                                                     const std::string& service,
                                                     sim::TrafficClass cls) {
  auto key = std::make_pair(target.name(), service);
  auto listener = listeners_.find(key);
  if (listener == listeners_.end()) {
    ++stats_.failed;
    throw ConnectError("connection refused: no service '" + service +
                       "' on " + target.name());
  }
  if (!target.is_up()) {
    ++stats_.failed;
    throw ConnectError("host " + target.name() + " is down");
  }

  // Strategy 1: plain direct connection (one connection-setup RTT).
  if (net_.can_connect(from, target)) {
    ++stats_.direct;
    return finish_setup(from, target, service, cls, ConnectionKind::direct,
                        {&from, &target}, net_.rtt(from, target));
  }

  // The remaining strategies need the hub overlay.
  sim::Host* from_hub = hub_for(from);
  sim::Host* to_hub = hub_for(target);
  auto hubs = hub_path(from_hub, to_hub);
  if (!hubs) {
    ++stats_.failed;
    throw ConnectError("no overlay route from " + from.name() + " to " +
                       target.name() + " for service " + service);
  }
  // Control-path latency: from -> hub_1 -> ... -> hub_k -> target. Charge a
  // small control message across each hop (accounts overlay traffic too).
  double control_time = 0.0;
  {
    std::vector<sim::Host*> control_path;
    control_path.push_back(&from);
    for (sim::Host* hub : *hubs) control_path.push_back(hub);
    control_path.push_back(&target);
    for (std::size_t i = 0; i + 1 < control_path.size(); ++i) {
      control_time += net_.rtt(*control_path[i], *control_path[i + 1]) / 2 +
                      kControlBytes / 1e9;
    }
  }

  // Strategy 2: reverse connection — the overlay asks `target` to dial back
  // (works when only the *target* side blocks inbound traffic).
  if (net_.can_connect(target, from)) {
    ++stats_.reverse;
    return finish_setup(from, target, service, cls, ConnectionKind::reverse,
                        {&from, &target},
                        control_time + net_.rtt(target, from));
  }

  // Strategy 3: relay all traffic through the hub overlay (both ends behind
  // firewalls/NATs).
  std::vector<sim::Host*> hops;
  hops.push_back(&from);
  for (sim::Host* hub : *hubs) hops.push_back(hub);
  hops.push_back(&target);
  ++stats_.relayed;
  return finish_setup(from, target, service, cls, ConnectionKind::relayed,
                      std::move(hops), control_time);
}

std::shared_ptr<ConnectionEnd> SmartSockets::finish_setup(
    sim::Host& from, sim::Host& target, const std::string& service,
    sim::TrafficClass cls, ConnectionKind kind, std::vector<sim::Host*> hops,
    double setup_time) {
  // Setup cost is only observable from inside the simulation. Connections
  // made while bootstrapping (e.g. the user starting the Ibis daemon before
  // any run, paper §5) happen "before t=0" and are free.
  if (sim::Simulation::in_process()) {
    net_.simulation().sleep(setup_time);
  }
  // Re-check liveness after the setup delay.
  auto listener = listeners_.find(std::make_pair(target.name(), service));
  if (listener == listeners_.end() || !target.is_up()) {
    ++stats_.failed;
    throw ConnectError("service " + service + " on " + target.name() +
                       " vanished during setup");
  }
  auto [initiator, acceptor] = Pipe::make(net_, cls, std::move(hops), kind);
  listener->second->accept_queue_.put(std::move(acceptor));
  log::debug("smartsockets") << from.name() << " -> " << target.name() << "/"
                             << service << " ("
                             << connection_kind_name(kind) << ")";
  return initiator;
}

std::vector<OverlayEdge> SmartSockets::overlay_map() const {
  std::vector<OverlayEdge> edges;
  for (std::size_t i = 0; i < hubs_.size(); ++i) {
    for (std::size_t j = i + 1; j < hubs_.size(); ++j) {
      const sim::Host& a = *hubs_[i].host;
      const sim::Host& b = *hubs_[j].host;
      bool ab = net_.can_connect(a, b);
      bool ba = net_.can_connect(b, a);
      if (!ab && !ba) continue;
      OverlayEdge::Kind kind = OverlayEdge::Kind::open;
      if (hubs_[i].tunneled || hubs_[j].tunneled) {
        kind = OverlayEdge::Kind::tunnel;
      } else if (ab != ba) {
        kind = OverlayEdge::Kind::oneway;
      }
      edges.push_back(OverlayEdge{a.name(), b.name(), kind});
    }
  }
  return edges;
}

}  // namespace jungle::smartsockets
