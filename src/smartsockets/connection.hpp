#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sim/fault_tunables.hpp"
#include "sim/mailbox.hpp"
#include "sim/network.hpp"

namespace jungle::smartsockets {

/// How a connection was established (paper §3 / Fig 10: plain lines, one-way
/// arrows for reverse setups, and relays through the hub overlay).
enum class ConnectionKind { direct, reverse, relayed };

const char* connection_kind_name(ConnectionKind kind) noexcept;

/// Striped bulk transfers (the SmartSockets/Ibis WAN-throughput trick the
/// paper's runs rely on): frames above the threshold are carried over
/// parallel streams, one per chunk up to the cap, so stream-capped
/// long-fat links aggregate bandwidth (sim::Link::effective_bandwidth).
inline constexpr double kStripeThresholdBytes = 64.0 * 1024.0;
inline constexpr double kStripeChunkBytes = 64.0 * 1024.0;
inline constexpr int kMaxStripes = 8;

/// Streams a payload of `bytes` is carried over.
int stripe_count(double bytes) noexcept;

class Pipe;

/// One endpoint of an established SmartSockets connection. Messages are
/// framed, FIFO-ordered (a per-frame sequence number reorders retried frames)
/// and survive transient link failures by retrying lost frames.
///
/// recv() returns nullopt on clean close by the peer and throws ConnectError
/// if the connection broke (host crash).
class ConnectionEnd {
 public:
  ConnectionEnd(sim::Simulation& sim, sim::Host* local);

  void send(std::vector<std::uint8_t> bytes);
  std::optional<std::vector<std::uint8_t>> recv();
  std::optional<std::vector<std::uint8_t>> recv_for(double timeout_s);

  /// Graceful shutdown; the peer's recv() returns nullopt after draining.
  void close();

  /// Abnormal shutdown (connection reset): both ends break immediately, the
  /// peer's recv() throws ConnectError. What a killed process's peers see.
  void abort();

  bool broken() const noexcept { return broken_; }
  ConnectionKind kind() const noexcept { return kind_; }
  sim::Host& local_host() noexcept { return *local_; }
  sim::Host& remote_host() noexcept;

  /// Total payload bytes sent from this end (monitoring).
  double bytes_sent() const noexcept { return bytes_sent_; }
  /// Frames that went out striped over parallel streams (monitoring).
  std::uint64_t striped_sends() const noexcept { return striped_sends_; }

 private:
  friend class Pipe;
  friend class SmartSockets;

  struct Frame {
    std::uint64_t seq;
    std::vector<std::uint8_t> bytes;
    bool eof = false;
    /// Down-link retries already spent on this frame. Retrying survives
    /// transient outages; a frame that exhausts its budget declares the
    /// connection dead (the TCP-reset analog) — see Pipe::hop.
    int retries = 0;
  };

  void deliver(Frame frame);  // called at the receiving side, in order seq
  void mark_broken();

  sim::Simulation& sim_;
  sim::Host* local_;
  std::shared_ptr<Pipe> pipe_;  // shared between both ends
  bool initiator_ = false;
  ConnectionKind kind_ = ConnectionKind::direct;
  sim::Mailbox<Frame> incoming_;
  std::map<std::uint64_t, Frame> reorder_;
  std::uint64_t next_recv_seq_ = 0;
  std::uint64_t next_send_seq_ = 0;
  bool broken_ = false;
  bool closed_ = false;
  double bytes_sent_ = 0;
  std::uint64_t striped_sends_ = 0;
  /// The process last blocked in recv() on this end — the one holding the
  /// "socket". When it is killed (process-level fault injection) the pipe
  /// breaks, so peers observe a connection reset instead of blocking
  /// forever on an end nobody will ever read again.
  std::optional<sim::ProcessId> last_user_;
};

/// Shared state of a connection: the two ends plus the hop path the frames
/// travel (direct: [a, b]; relayed: [a, hub1, ..., b]).
class Pipe : public std::enable_shared_from_this<Pipe> {
 public:
  Pipe(sim::Network& net, sim::TrafficClass cls, std::vector<sim::Host*> hops,
       ConnectionKind kind);

  /// Create both ends wired to this pipe. `a` is the initiator side.
  static std::pair<std::shared_ptr<ConnectionEnd>, std::shared_ptr<ConnectionEnd>>
  make(sim::Network& net, sim::TrafficClass cls, std::vector<sim::Host*> hops,
       ConnectionKind kind);

  /// Route a frame from `from_end` to the other end along the hop path,
  /// retrying hops whose link is down. Non-blocking (events do the work).
  void route(ConnectionEnd* from_end, ConnectionEnd::Frame frame);

  void break_both();

  /// True while every hop of the route still has its links up. Consulted by
  /// the link watcher: a route that stays dead past the keepalive timeout
  /// breaks the pipe even with no frame in flight.
  bool route_alive() const;

  ConnectionEnd* a = nullptr;  // initiator
  ConnectionEnd* b = nullptr;  // acceptor

 private:
  void hop(bool forward, std::size_t hop_index, ConnectionEnd::Frame frame);

  sim::Network& net_;
  sim::TrafficClass cls_;
  std::vector<sim::Host*> hops_;
  ConnectionKind kind_;
  std::shared_ptr<ConnectionEnd> a_owner_;
  std::shared_ptr<ConnectionEnd> b_owner_;
};

}  // namespace jungle::smartsockets
