#include "ipl/ipl.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace jungle::ipl {

namespace wire {

void put_identifier(util::ByteWriter& writer, const IbisIdentifier& id) {
  writer.put_string(id.name);
  writer.put_string(id.host);
  writer.put_string(id.pool);
}

IbisIdentifier get_identifier(util::ByteReader& reader) {
  IbisIdentifier id;
  id.name = reader.get_string();
  id.host = reader.get_string();
  id.pool = reader.get_string();
  return id;
}

}  // namespace wire

// ------------------------------------------------------------------ server

RegistryServer::RegistryServer(smartsockets::SmartSockets& sockets,
                               sim::Host& host)
    : sockets_(sockets), host_(host) {
  listener_ = &sockets_.listen(host_, kService);
  pids_.push_back(host_.spawn("ipl-registry", [this] { accept_loop(); }));
}

RegistryServer::~RegistryServer() {
  // The server processes capture `this`; make sure none can run again.
  for (sim::ProcessId pid : pids_) host_.simulation().kill(pid);
  sockets_.unlisten(host_, kService);
}

void RegistryServer::accept_loop() {
  while (true) {
    auto connection = listener_->accept();
    pids_.push_back(host_.spawn("ipl-registry-member", [this, connection] {
      serve_member(connection);
    }));
  }
}

void RegistryServer::serve_member(
    std::shared_ptr<smartsockets::ConnectionEnd> connection) {
  IbisIdentifier member_id;
  bool joined = false;
  try {
    while (true) {
      auto bytes = connection->recv();
      if (!bytes) {
        // Clean close without LEAVE: treat as leave.
        if (joined) remove_member(member_id, RegistryEventType::left);
        return;
      }
      util::ByteReader reader(std::move(*bytes));
      auto op = static_cast<wire::Op>(reader.get<std::uint8_t>());
      switch (op) {
        case wire::Op::join: {
          member_id = wire::get_identifier(reader);
          joined = true;
          // Snapshot of current membership for the newcomer.
          util::ByteWriter snapshot;
          snapshot.put<std::uint8_t>(
              static_cast<std::uint8_t>(wire::Op::snapshot));
          snapshot.put<std::uint32_t>(
              static_cast<std::uint32_t>(members_.size()));
          for (const auto& member : members_) {
            wire::put_identifier(snapshot, member.id);
          }
          connection->send(std::move(snapshot).take());
          members_.push_back(Member{member_id, connection});
          broadcast_event(RegistryEventType::joined, member_id);
          log::info("ipl") << "member " << member_id.name << " joined from "
                           << member_id.host;
          break;
        }
        case wire::Op::elect: {
          std::string election = reader.get_string();
          auto [it, inserted] = elections_.try_emplace(election, member_id);
          util::ByteWriter reply;
          reply.put<std::uint8_t>(
              static_cast<std::uint8_t>(wire::Op::elect_reply));
          reply.put_string(election);
          wire::put_identifier(reply, it->second);
          connection->send(std::move(reply).take());
          break;
        }
        case wire::Op::leave: {
          if (joined) remove_member(member_id, RegistryEventType::left);
          return;
        }
        default:
          throw WireError("registry: unexpected opcode");
      }
    }
  } catch (const ConnectError&) {
    // Connection broke: the member's host crashed. This is the paper's
    // fault-detection path — broadcast `died` to the pool.
    if (joined) remove_member(member_id, RegistryEventType::died);
  }
}

void RegistryServer::broadcast_event(RegistryEventType type,
                                     const IbisIdentifier& id) {
  std::uint8_t op = type == RegistryEventType::joined
                        ? static_cast<std::uint8_t>(wire::Op::joined_event)
                        : type == RegistryEventType::left
                              ? static_cast<std::uint8_t>(wire::Op::left_event)
                              : static_cast<std::uint8_t>(wire::Op::died_event);
  for (auto& member : members_) {
    util::ByteWriter writer;
    writer.put<std::uint8_t>(op);
    wire::put_identifier(writer, id);
    try {
      member.connection->send(std::move(writer).take());
    } catch (const ConnectError&) {
      // That member is gone too; its own serve loop will notice.
    }
  }
}

void RegistryServer::remove_member(const IbisIdentifier& id,
                                   RegistryEventType reason) {
  auto it = std::find_if(members_.begin(), members_.end(),
                         [&](const Member& m) { return m.id == id; });
  if (it == members_.end()) return;
  members_.erase(it);
  broadcast_event(reason, id);
  log::info("ipl") << "member " << id.name
                   << (reason == RegistryEventType::died ? " died" : " left");
}

// ------------------------------------------------------------------ client

Ibis::Ibis(smartsockets::SmartSockets& sockets, sim::Host& host,
           std::string name, sim::Host& registry_host, std::string pool)
    : sockets_(sockets),
      host_(host),
      id_{std::move(name), host.name(), std::move(pool)},
      membership_changed_(host.simulation()),
      election_replies_(host.simulation()) {
  registry_ = sockets_.connect(host_, registry_host, RegistryServer::kService,
                               sim::TrafficClass::control);
  util::ByteWriter join;
  join.put<std::uint8_t>(static_cast<std::uint8_t>(wire::Op::join));
  wire::put_identifier(join, id_);
  registry_->send(std::move(join).take());
  pump_pid_ = host_.spawn("ibis-pump:" + id_.name, [this] { pump_events(); });
}

Ibis::~Ibis() { leave(); }

void Ibis::leave() {
  if (left_) return;
  // A *killed* process gets no goodbye: unwinding through this destructor
  // after a process-level fault must look to the registry exactly like a
  // crash — connection reset, `died` broadcast — not a graceful LEAVE,
  // or the death-notice machinery downstream would never fire.
  if (host_.simulation().kill_pending()) {
    abort();
    return;
  }
  left_ = true;
  try {
    util::ByteWriter bye;
    bye.put<std::uint8_t>(static_cast<std::uint8_t>(wire::Op::leave));
    registry_->send(std::move(bye).take());
    // Close before killing the pump: the pump is the connection's reader,
    // and killing a reader of a still-open pipe breaks it (connection
    // reset) — which would turn this graceful leave into a `died`.
    registry_->close();
  } catch (const ConnectError&) {
    // Registry already unreachable; nothing to unwind.
  }
  // The pump captures `this`; stop it before the members it touches die.
  host_.simulation().kill(pump_pid_);
}

void Ibis::abort() {
  if (left_) return;
  left_ = true;
  // Break the registry connection without a LEAVE: the server's serve loop
  // sees ConnectError and broadcasts `died` — the deliberate self-report of
  // a proxy that lost its worker, and the unwind path of a killed process.
  registry_->abort();
  if (!(sim::Simulation::in_process() &&
        host_.simulation().current_pid() == pump_pid_)) {
    host_.simulation().kill(pump_pid_);
  }
}

void Ibis::pump_events() {
  try {
    while (true) {
      auto bytes = registry_->recv();
      if (!bytes) return;  // registry closed us out
      util::ByteReader reader(std::move(*bytes));
      auto op = static_cast<wire::Op>(reader.get<std::uint8_t>());
      switch (op) {
        case wire::Op::snapshot: {
          auto count = reader.get<std::uint32_t>();
          for (std::uint32_t i = 0; i < count; ++i) {
            members_.push_back(wire::get_identifier(reader));
          }
          membership_changed_.notify_all();
          break;
        }
        case wire::Op::joined_event:
          handle_event(
              RegistryEvent{RegistryEventType::joined,
                            wire::get_identifier(reader)});
          break;
        case wire::Op::left_event:
          handle_event(RegistryEvent{RegistryEventType::left,
                                     wire::get_identifier(reader)});
          break;
        case wire::Op::died_event:
          handle_event(RegistryEvent{RegistryEventType::died,
                                     wire::get_identifier(reader)});
          break;
        case wire::Op::elect_reply: {
          reader.get_string();  // election name (single outstanding call)
          election_replies_.put(wire::get_identifier(reader));
          break;
        }
        default:
          throw WireError("ibis: unexpected opcode from registry");
      }
    }
  } catch (const ConnectError&) {
    // Registry vanished; membership view freezes. Local death is handled by
    // the process being killed with the host.
  }
}

void Ibis::handle_event(const RegistryEvent& event) {
  switch (event.type) {
    case RegistryEventType::joined:
      members_.push_back(event.id);
      break;
    case RegistryEventType::left:
    case RegistryEventType::died:
      members_.erase(std::remove(members_.begin(), members_.end(), event.id),
                     members_.end());
      if (event.type == RegistryEventType::died) {
        dead_members_.push_back(event.id.name);
      }
      break;
  }
  for (auto& listener : listeners_) listener(event);
  membership_changed_.notify_all();
}

IbisIdentifier Ibis::wait_for_member(const std::string& name) {
  while (true) {
    for (const auto& member : members_) {
      if (member.name == name) return member;
    }
    if (std::find(dead_members_.begin(), dead_members_.end(), name) !=
        dead_members_.end()) {
      throw CodeError("ibis instance " + name + " died before joining");
    }
    membership_changed_.wait();
  }
}

void Ibis::wait_for_pool_size(std::size_t count) {
  while (members_.size() < count) membership_changed_.wait();
}

IbisIdentifier Ibis::elect(const std::string& election_name) {
  util::ByteWriter request;
  request.put<std::uint8_t>(static_cast<std::uint8_t>(wire::Op::elect));
  request.put_string(election_name);
  registry_->send(std::move(request).take());
  return election_replies_.get();
}

// ------------------------------------------------------------------- ports

SendPort::SendPort(Ibis& ibis, std::string name)
    : ibis_(ibis), name_(std::move(name)) {}

void SendPort::connect(const IbisIdentifier& target,
                       const std::string& port_name) {
  sim::Host* target_host = ibis_.sockets().network().find_host(target.host);
  if (target_host == nullptr) {
    throw ConnectError("unknown host " + target.host + " for " + target.name);
  }
  std::string service = "ipl:" + target.name + ":" + port_name;
  auto connection = ibis_.sockets().connect(ibis_.host(), *target_host,
                                            service, sim::TrafficClass::ipl);
  // Identify ourselves so the receive side can tag messages.
  util::ByteWriter hello;
  wire::put_identifier(hello, ibis_.identifier());
  hello.put_string(name_);
  connection->send(std::move(hello).take());
  connections_.push_back(std::move(connection));
}

void SendPort::send(util::ByteWriter message) {
  if (connections_.empty()) {
    throw ConnectError("send port " + name_ + " is not connected");
  }
  std::vector<std::uint8_t> bytes = std::move(message).take();
  for (std::size_t i = 0; i + 1 < connections_.size(); ++i) {
    connections_[i]->send(bytes);  // copy for all but the last
  }
  connections_.back()->send(std::move(bytes));
}

void SendPort::close() {
  for (auto& connection : connections_) connection->close();
  connections_.clear();
}

ReceivePort::ReceivePort(Ibis& ibis, std::string name)
    : ibis_(ibis), name_(std::move(name)), queue_(ibis.host().simulation()) {
  listener_ = &ibis_.sockets().listen(ibis_.host(), ibis_.port_service(name_));
  pids_.push_back(
      ibis_.host().spawn("ipl-recvport:" + name_, [this] { accept_loop(); }));
}

ReceivePort::~ReceivePort() {
  closed_ = true;
  // Readers capture `this`; kill them before the queue they feed dies.
  for (sim::ProcessId pid : pids_) ibis_.host().simulation().kill(pid);
  ibis_.sockets().unlisten(ibis_.host(), ibis_.port_service(name_));
}

void ReceivePort::accept_loop() {
  while (!closed_) {
    auto connection = listener_->accept();
    // Per-connection reader merging into the shared queue (fair by arrival
    // time, since delivery events are globally ordered).
    pids_.push_back(
        ibis_.host().spawn("ipl-reader:" + name_, [this, connection] {
      try {
        auto hello_bytes = connection->recv();
        if (!hello_bytes) return;
        util::ByteReader hello(std::move(*hello_bytes));
        IbisIdentifier source = wire::get_identifier(hello);
        hello.get_string();  // sending port's name (unused)
        while (true) {
          auto bytes = connection->recv();
          if (!bytes) return;  // sender closed
          queue_.put(Message{source, util::ByteReader(std::move(*bytes))});
        }
      } catch (const ConnectError&) {
        // Sender's connection reset (host crash or dead route). Poison the
        // queue so blocked receive() callers wake with a ConnectError — a
        // silent wind-down would leave them parked on a queue nobody will
        // ever feed again (the proxy-side leak the fault explorer flags).
        queue_.put(Message{{}, util::ByteReader({}), true});
      }
    }));
  }
}

ReceivePort::Message ReceivePort::receive() {
  Message message = queue_.get();
  if (message.poison) {
    // Keep the port poisoned for any other blocked reader.
    queue_.put(Message{{}, util::ByteReader({}), true});
    throw ConnectError("receive port '" + name_ + "': sender connection reset");
  }
  return message;
}

ReceivePort::Message ReceivePort::receive_consuming_poison() {
  Message message = queue_.get();
  if (message.poison) {
    // Swallow it: the caller handles the error and blocks again for the
    // next sender generation instead of spinning on a sticky marker.
    throw ConnectError("receive port '" + name_ + "': sender connection reset");
  }
  return message;
}

std::optional<ReceivePort::Message> ReceivePort::receive_for(double timeout_s) {
  auto message = queue_.get_for(timeout_s);
  if (message && message->poison) {
    queue_.put(Message{{}, util::ByteReader({}), true});
    throw ConnectError("receive port '" + name_ + "': sender connection reset");
  }
  return message;
}

}  // namespace jungle::ipl
