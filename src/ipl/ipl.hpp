#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/mailbox.hpp"
#include "smartsockets/smartsockets.hpp"
#include "util/bytebuffer.hpp"

namespace jungle::ipl {

/// Identifies one Ibis instance in a pool (paper §3: IPL registry tracks
/// the instances participating in a run).
struct IbisIdentifier {
  std::string name;
  std::string host;
  std::string pool;

  bool operator==(const IbisIdentifier& other) const noexcept {
    return name == other.name && pool == other.pool;
  }
};

enum class RegistryEventType { joined, left, died };

struct RegistryEvent {
  RegistryEventType type;
  IbisIdentifier id;
};

class Ibis;

/// Central registry server process (started by the deployment layer on the
/// user's machine, like ipl-server). Tracks pool membership, broadcasts
/// join/leave events, detects members whose host crashed and broadcasts
/// `died` — the signal the paper's fault-tolerance story hangs on.
class RegistryServer {
 public:
  static constexpr const char* kService = "ipl-registry";

  RegistryServer(smartsockets::SmartSockets& sockets, sim::Host& host);
  ~RegistryServer();
  RegistryServer(const RegistryServer&) = delete;
  RegistryServer& operator=(const RegistryServer&) = delete;

  sim::Host& host() noexcept { return host_; }
  std::size_t member_count() const noexcept { return members_.size(); }

 private:
  struct Member {
    IbisIdentifier id;
    std::shared_ptr<smartsockets::ConnectionEnd> connection;
  };

  void accept_loop();
  void serve_member(std::shared_ptr<smartsockets::ConnectionEnd> connection);
  void broadcast_event(RegistryEventType type, const IbisIdentifier& id);
  void remove_member(const IbisIdentifier& id, RegistryEventType reason);

  smartsockets::SmartSockets& sockets_;
  sim::Host& host_;
  smartsockets::ServerSocket* listener_ = nullptr;
  std::vector<Member> members_;
  std::map<std::string, IbisIdentifier> elections_;
  std::vector<sim::ProcessId> pids_;  // accept loop + member servers
};

/// A one-directional, connection-oriented, message-based send port (IPL's
/// core abstraction). Connect to one or more receive ports; every message
/// goes to all of them.
class SendPort {
 public:
  SendPort(Ibis& ibis, std::string name);

  /// Blocking connection setup to `target`'s receive port `port_name`.
  void connect(const IbisIdentifier& target, const std::string& port_name);

  /// Send one message (the ByteWriter content) to all connected ports.
  void send(util::ByteWriter message);

  void close();
  std::size_t connection_count() const noexcept { return connections_.size(); }

 private:
  Ibis& ibis_;
  std::string name_;
  std::vector<std::shared_ptr<smartsockets::ConnectionEnd>> connections_;
};

/// Receiving side: merges messages from all connected send ports into one
/// queue, tagged with the sender's identity (explicit receive style).
class ReceivePort {
 public:
  struct Message {
    IbisIdentifier source;
    util::ByteReader reader;
    /// Queued when a sender's connection breaks abnormally (host crash or
    /// dead route): receive() turns it into a ConnectError instead of
    /// leaving callers blocked on a queue nobody will ever feed again.
    bool poison = false;
  };

  ReceivePort(Ibis& ibis, std::string name);
  ~ReceivePort();

  /// Blocking receive of the next message from any connected sender.
  Message receive();
  std::optional<Message> receive_for(double timeout_s);

  /// Like receive(), but a poison marker is consumed rather than left in
  /// the queue. For a port with a single long-lived reader that outlives
  /// its senders (the daemon's reply pump spans proxy generations): the
  /// caller sees one ConnectError per dead sender, then blocks again for
  /// the successor. Every other caller wants the sticky poison of
  /// receive(), which keeps waking the remaining blocked readers.
  Message receive_consuming_poison();

  const std::string& name() const noexcept { return name_; }

 private:
  friend class SendPort;
  void accept_loop();

  Ibis& ibis_;
  std::string name_;
  smartsockets::ServerSocket* listener_ = nullptr;
  bool closed_ = false;
  sim::Mailbox<Message> queue_;
  std::vector<sim::ProcessId> pids_;  // accept loop + readers; killed in dtor
};

/// One Ibis instance: joins the registry pool on construction, keeps a live
/// membership view, answers elections, and creates ports. The registry
/// connection doubles as the liveness channel: if this instance's host
/// crashes, the server sees the break and broadcasts `died`.
class Ibis {
 public:
  Ibis(smartsockets::SmartSockets& sockets, sim::Host& host, std::string name,
       sim::Host& registry_host, std::string pool = "default");
  ~Ibis();

  Ibis(const Ibis&) = delete;
  Ibis& operator=(const Ibis&) = delete;

  const IbisIdentifier& identifier() const noexcept { return id_; }
  sim::Host& host() noexcept { return host_; }
  smartsockets::SmartSockets& sockets() noexcept { return sockets_; }

  /// Current membership view (eventually consistent with the server).
  std::vector<IbisIdentifier> members() const { return members_; }

  /// Register an event observer (joined/left/died).
  void on_event(std::function<void(const RegistryEvent&)> listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Block until an instance named `name` is in the membership view; returns
  /// its identifier. Throws CodeError if it died instead.
  IbisIdentifier wait_for_member(const std::string& name);

  /// Block until the pool has at least `count` members.
  void wait_for_pool_size(std::size_t count);

  /// First-come-first-elected election (blocking round trip to the server).
  IbisIdentifier elect(const std::string& election_name);

  /// Graceful departure (also called by the destructor). If the calling
  /// process has been killed, this degrades to abort(): SIGKILLed daemons
  /// send no goodbyes.
  void leave();

  /// Abnormal departure: break the registry connection so the server
  /// broadcasts `died` (not `left`) — the deliberate way for a proxy to
  /// report that its worker is gone and supervision should kick in.
  void abort();

  std::unique_ptr<SendPort> create_send_port(const std::string& name) {
    return std::make_unique<SendPort>(*this, name);
  }
  std::unique_ptr<ReceivePort> create_receive_port(const std::string& name) {
    return std::make_unique<ReceivePort>(*this, name);
  }

  /// Service string a receive port binds on the local host.
  std::string port_service(const std::string& port_name) const {
    return "ipl:" + id_.name + ":" + port_name;
  }

 private:
  friend class SendPort;
  friend class ReceivePort;

  void pump_events();
  void handle_event(const RegistryEvent& event);

  smartsockets::SmartSockets& sockets_;
  sim::Host& host_;
  IbisIdentifier id_;
  std::shared_ptr<smartsockets::ConnectionEnd> registry_;
  sim::ProcessId pump_pid_ = 0;
  std::vector<IbisIdentifier> members_;
  std::vector<std::string> dead_members_;
  std::vector<std::function<void(const RegistryEvent&)>> listeners_;
  sim::Signal membership_changed_;
  sim::Mailbox<IbisIdentifier> election_replies_;
  bool left_ = false;
};

/// Wire helpers shared by registry client and server.
namespace wire {
enum class Op : std::uint8_t {
  join = 1,
  joined_event = 2,
  left_event = 3,
  died_event = 4,
  elect = 5,
  elect_reply = 6,
  leave = 7,
  snapshot = 8,
};
void put_identifier(util::ByteWriter& writer, const IbisIdentifier& id);
IbisIdentifier get_identifier(util::ByteReader& reader);
}  // namespace wire

}  // namespace jungle::ipl
