#include "kernels/bhtree.hpp"

#include <algorithm>

namespace jungle::kernels {

namespace {
constexpr int kMaxDepth = 48;
}

void BarnesHutTree::build(std::span<const Vec3> positions,
                          std::span<const double> masses) {
  src_pos_.assign(positions.begin(), positions.end());
  src_mass_.assign(masses.begin(), masses.end());
  nodes_.clear();
  if (src_pos_.empty()) return;

  Vec3 lo = src_pos_[0], hi = src_pos_[0];
  for (const Vec3& p : src_pos_) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  Node root;
  root.center = 0.5 * (lo + hi);
  root.half = 0.5 * std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 1e-12}) *
              1.0001;  // guard against points exactly on the boundary
  nodes_.push_back(root);
  for (int i = 0; i < static_cast<int>(src_pos_.size()); ++i) {
    insert(0, i, 0);
  }
  finalize(0);
}

int BarnesHutTree::child_slot(const Node& node, const Vec3& p) const {
  int slot = 0;
  if (p.x >= node.center.x) slot |= 1;
  if (p.y >= node.center.y) slot |= 2;
  if (p.z >= node.center.z) slot |= 4;
  return slot;
}

int BarnesHutTree::make_child(int node_index, int slot) {
  Node child;
  const Node& parent = nodes_[node_index];
  double quarter = parent.half / 2.0;
  child.center = parent.center;
  child.center.x += (slot & 1) ? quarter : -quarter;
  child.center.y += (slot & 2) ? quarter : -quarter;
  child.center.z += (slot & 4) ? quarter : -quarter;
  child.half = quarter;
  nodes_.push_back(child);
  int index = static_cast<int>(nodes_.size()) - 1;
  nodes_[node_index].children[slot] = index;
  return index;
}

void BarnesHutTree::insert(int node_index, int body_index, int depth) {
  Node& node = nodes_[node_index];
  if (node.leaf && node.body < 0) {
    node.body = body_index;
    return;
  }
  if (depth >= kMaxDepth) {
    // Coincident points: merge into this leaf (mass handled in finalize via
    // body list; approximate by leaving the extra body at this node's com).
    // Extremely rare with physical data; treat the cell as a composite by
    // accumulating into mass/com during finalize through the body chain.
    // We simply ignore further subdivision and fold the mass here.
    node.mass += src_mass_[body_index];
    node.com += src_pos_[body_index] * src_mass_[body_index];
    return;
  }
  if (node.leaf) {
    int existing = node.body;
    node.body = -1;
    node.leaf = false;
    int slot_existing = child_slot(node, src_pos_[existing]);
    int child_existing = node.children[slot_existing] >= 0
                             ? node.children[slot_existing]
                             : make_child(node_index, slot_existing);
    insert(child_existing, existing, depth + 1);
  }
  // note: make_child may reallocate nodes_, so re-read the node each time.
  int slot = child_slot(nodes_[node_index], src_pos_[body_index]);
  int child = nodes_[node_index].children[slot] >= 0
                  ? nodes_[node_index].children[slot]
                  : make_child(node_index, slot);
  insert(child, body_index, depth + 1);
}

void BarnesHutTree::finalize(int node_index) {
  Node& node = nodes_[node_index];
  if (node.leaf) {
    if (node.body >= 0) {
      node.mass += src_mass_[node.body];
      node.com += src_pos_[node.body] * src_mass_[node.body];
    }
    if (node.mass > 0) node.com *= 1.0 / node.mass;
    return;
  }
  for (int child : node.children) {
    if (child < 0) continue;
    finalize(child);
    // children are finalized: fold their moments into us.
    nodes_[node_index].mass += nodes_[child].mass;
    nodes_[node_index].com +=
        nodes_[child].com * nodes_[child].mass;
  }
  Node& refreshed = nodes_[node_index];
  if (refreshed.mass > 0) refreshed.com *= 1.0 / refreshed.mass;
}

Vec3 BarnesHutTree::accel_at(const Vec3& point) const {
  Vec3 accel{};
  if (nodes_.empty()) return accel;
  // Explicit stack traversal (recursion depth is bounded but this is the
  // hot loop; a stack keeps it tight).
  std::vector<int> stack{0};
  while (!stack.empty()) {
    int index = stack.back();
    stack.pop_back();
    const Node& node = nodes_[index];
    if (node.mass <= 0) continue;
    Vec3 dr = node.com - point;
    double r2 = dr.norm2();
    double size = 2.0 * node.half;
    bool accept = node.leaf || (size * size < theta2_ * r2);
    if (accept) {
      ++interactions_;
      double d2 = r2 + eps2_;
      double d = std::sqrt(d2);
      accel += (node.mass / (d2 * d)) * dr;
    } else {
      for (int child : node.children) {
        if (child >= 0) stack.push_back(child);
      }
    }
  }
  return accel;
}

double BarnesHutTree::potential_at(const Vec3& point) const {
  double phi = 0.0;
  if (nodes_.empty()) return phi;
  std::vector<int> stack{0};
  while (!stack.empty()) {
    int index = stack.back();
    stack.pop_back();
    const Node& node = nodes_[index];
    if (node.mass <= 0) continue;
    Vec3 dr = node.com - point;
    double r2 = dr.norm2();
    double size = 2.0 * node.half;
    bool accept = node.leaf || (size * size < theta2_ * r2);
    if (accept) {
      ++interactions_;
      // Skip self-interaction: a leaf exactly at the query point.
      if (r2 < 1e-24 && node.leaf) continue;
      phi -= node.mass / std::sqrt(r2 + eps2_);
    } else {
      for (int child : node.children) {
        if (child >= 0) stack.push_back(child);
      }
    }
  }
  return phi;
}

std::vector<Vec3> BarnesHutTree::accel_at(std::span<const Vec3> points) const {
  std::vector<Vec3> result;
  result.reserve(points.size());
  for (const Vec3& p : points) result.push_back(accel_at(p));
  return result;
}

}  // namespace jungle::kernels
