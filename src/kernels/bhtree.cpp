#include "kernels/bhtree.hpp"

#include <algorithm>

#include "kernels/simd.hpp"
#include "util/parallel.hpp"

namespace jungle::kernels {

namespace {

constexpr int kMaxDepth = 48;

// Mutable octree used only during build; the traversal structures are
// packed from it afterwards. Bodies of a leaf live on an intrusive chain
// through `next` so inserting is allocation-free.
struct Builder {
  struct Node {
    Vec3 center;
    double half = 0.0;
    int children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    int head = -1;  // first body of the leaf chain
    int count = 0;  // bodies on the chain
    bool leaf = true;
    double mass = 0.0;
    Vec3 com;
  };

  std::span<const Vec3> pos;
  std::span<const double> mass;
  std::vector<Node> nodes;
  std::vector<int> next;  // body chain links

  int child_slot(const Node& node, const Vec3& p) const {
    int slot = 0;
    if (p.x >= node.center.x) slot |= 1;
    if (p.y >= node.center.y) slot |= 2;
    if (p.z >= node.center.z) slot |= 4;
    return slot;
  }

  int make_child(int node_index, int slot) {
    Node child;
    const Node& parent = nodes[node_index];
    double quarter = parent.half / 2.0;
    child.center = parent.center;
    child.center.x += (slot & 1) ? quarter : -quarter;
    child.center.y += (slot & 2) ? quarter : -quarter;
    child.center.z += (slot & 4) ? quarter : -quarter;
    child.half = quarter;
    nodes.push_back(child);
    int index = static_cast<int>(nodes.size()) - 1;
    nodes[node_index].children[slot] = index;
    return index;
  }

  void insert(int node_index, int body, int depth) {
    if (nodes[node_index].leaf) {
      Node& node = nodes[node_index];
      // Past kMaxDepth the leaf absorbs everything — coincident (or
      // near-coincident) bodies simply extend the body list and stay exact.
      if (node.count < BarnesHutTree::kLeafCapacity || depth >= kMaxDepth) {
        next[body] = node.head;
        node.head = body;
        ++node.count;
        return;
      }
      // Split: push the resident bodies one level down, then fall through.
      int chain = node.head;
      node.head = -1;
      node.count = 0;
      node.leaf = false;
      while (chain >= 0) {
        int following = next[chain];
        int slot = child_slot(nodes[node_index], pos[chain]);
        int child = nodes[node_index].children[slot] >= 0
                        ? nodes[node_index].children[slot]
                        : make_child(node_index, slot);
        insert(child, chain, depth + 1);
        chain = following;
      }
    }
    // note: make_child may reallocate nodes, so re-read each time.
    int slot = child_slot(nodes[node_index], pos[body]);
    int child = nodes[node_index].children[slot] >= 0
                    ? nodes[node_index].children[slot]
                    : make_child(node_index, slot);
    insert(child, body, depth + 1);
  }

  void compute_moments(int node_index) {
    Node& node = nodes[node_index];
    node.mass = 0.0;
    node.com = Vec3{};
    if (node.leaf) {
      for (int body = node.head; body >= 0; body = next[body]) {
        node.mass += mass[body];
        node.com += pos[body] * mass[body];
      }
    } else {
      for (int child : node.children) {
        if (child < 0) continue;
        compute_moments(child);
        node.mass += nodes[child].mass;
        node.com += nodes[child].com * nodes[child].mass;
      }
    }
    if (node.mass > 0) node.com *= 1.0 / node.mass;
  }
};

thread_local std::vector<std::int32_t> tl_stack;

}  // namespace

void BarnesHutTree::build(std::span<const Vec3> positions,
                          std::span<const double> masses) {
  src_pos_.assign(positions.begin(), positions.end());
  src_mass_.assign(masses.begin(), masses.end());
  cell_com_.clear();
  cell_mass_.clear();
  cell_size2_.clear();
  cell_first_child_.clear();
  cell_child_count_.clear();
  cell_body_begin_.clear();
  cell_body_count_.clear();
  leaf_bodies_.clear();
  leaf_x_.clear();
  leaf_y_.clear();
  leaf_z_.clear();
  leaf_m_.clear();
  if (src_pos_.empty()) return;

  Vec3 lo = src_pos_[0], hi = src_pos_[0];
  for (const Vec3& p : src_pos_) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  Builder builder;
  builder.pos = src_pos_;
  builder.mass = src_mass_;
  builder.next.assign(src_pos_.size(), -1);
  builder.nodes.reserve(2 * src_pos_.size() / kLeafCapacity + 16);
  Builder::Node root;
  root.center = 0.5 * (lo + hi);
  root.half = 0.5 * std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 1e-12}) *
              1.0001;  // guard against points exactly on the boundary
  builder.nodes.push_back(root);
  for (int i = 0; i < static_cast<int>(src_pos_.size()); ++i) {
    builder.insert(0, i, 0);
  }
  builder.compute_moments(0);

  // Pack breadth-first: the children of each cell land contiguously, so a
  // traversal pushes one (first, count) range instead of eight pointers.
  std::size_t total = builder.nodes.size();
  std::vector<std::int32_t> order;
  order.reserve(total);
  order.push_back(0);
  cell_com_.reserve(total);
  cell_mass_.reserve(total);
  cell_size2_.reserve(total);
  cell_first_child_.reserve(total);
  cell_child_count_.reserve(total);
  cell_body_begin_.reserve(total);
  cell_body_count_.reserve(total);
  leaf_bodies_.reserve(src_pos_.size());
  for (std::size_t head = 0; head < order.size(); ++head) {
    const Builder::Node& node = builder.nodes[order[head]];
    cell_com_.push_back(node.com);
    cell_mass_.push_back(node.mass);
    double edge = 2.0 * node.half;
    cell_size2_.push_back(edge * edge);
    if (node.leaf) {
      cell_first_child_.push_back(-1);
      cell_child_count_.push_back(0);
      cell_body_begin_.push_back(static_cast<std::int32_t>(leaf_bodies_.size()));
      cell_body_count_.push_back(node.count);
      for (int body = node.head; body >= 0; body = builder.next[body]) {
        leaf_bodies_.push_back(body);
        leaf_x_.push_back(src_pos_[body].x);
        leaf_y_.push_back(src_pos_[body].y);
        leaf_z_.push_back(src_pos_[body].z);
        leaf_m_.push_back(src_mass_[body]);
      }
    } else {
      cell_first_child_.push_back(static_cast<std::int32_t>(order.size()));
      int children = 0;
      for (int child : node.children) {
        if (child < 0) continue;
        order.push_back(child);
        ++children;
      }
      cell_child_count_.push_back(children);
      cell_body_begin_.push_back(0);
      cell_body_count_.push_back(0);
    }
  }
}

template <bool Potential>
void BarnesHutTree::field_at(const Vec3& point, Vec3* accel, double* phi,
                             std::uint64_t& interactions) const {
  if (cell_mass_.empty()) return;
  std::vector<std::int32_t>& stack = tl_stack;
  stack.clear();
  stack.push_back(0);
  std::uint64_t count = 0;
  while (!stack.empty()) {
    std::int32_t cell = stack.back();
    stack.pop_back();
    if (cell_mass_[cell] <= 0) continue;
    Vec3 dr = cell_com_[cell] - point;
    double r2 = dr.norm2();
    if (cell_size2_[cell] < theta2_ * r2) {
      // Far cell: monopole.
      ++count;
      double d2 = r2 + eps2_;
      double d = std::sqrt(d2);
      if constexpr (Potential) {
        *phi -= cell_mass_[cell] / d;
      } else {
        *accel += (cell_mass_[cell] / (d2 * d)) * dr;
      }
    } else if (cell_first_child_[cell] >= 0) {
      std::int32_t first = cell_first_child_[cell];
      for (std::int32_t c = 0; c < cell_child_count_[cell]; ++c) {
        stack.push_back(first + c);
      }
    } else {
      // Near leaf: exact body-by-body sum (coincident bodies included).
      std::int32_t begin = cell_body_begin_[cell];
      std::int32_t n = cell_body_count_[cell];
      count += static_cast<std::uint64_t>(n);
      std::int32_t k = 0;
      if constexpr (!Potential) {
        if (simd_ && simd::kWidth > 1 &&
            n >= static_cast<std::int32_t>(simd::kWidth)) {
          namespace sd = simd;
          constexpr std::int32_t W = static_cast<std::int32_t>(sd::kWidth);
          sd::VecD axv = sd::zero(), ayv = sd::zero(), azv = sd::zero();
          const sd::VecD px = sd::set1(point.x), py = sd::set1(point.y),
                         pz = sd::set1(point.z);
          const sd::VecD eps2v = sd::set1(eps2_), zerov = sd::zero();
          for (; k + W <= n; k += W) {
            sd::VecD dx = sd::load(&leaf_x_[begin + k]) - px;
            sd::VecD dy = sd::load(&leaf_y_[begin + k]) - py;
            sd::VecD dz = sd::load(&leaf_z_[begin + k]) - pz;
            sd::VecD d2 = dx * dx + dy * dy + dz * dz + eps2v;
            sd::VecD d = sd::sqrt(d2);
            sd::VecD w = sd::load(&leaf_m_[begin + k]) / (d2 * d);
            // d2 == 0 (coincident source, softening-free): the lane's w is
            // inf/NaN but the direction vanishes; the bitwise select drops
            // the whole lane, matching the scalar d2 > 0 guard.
            sd::VecD mask = sd::less(zerov, d2);
            axv = axv + sd::select(mask, w * dx, zerov);
            ayv = ayv + sd::select(mask, w * dy, zerov);
            azv = azv + sd::select(mask, w * dz, zerov);
          }
          accel->x += sd::hsum(axv);
          accel->y += sd::hsum(ayv);
          accel->z += sd::hsum(azv);
        }
      }
      for (; k < n; ++k) {
        std::int32_t body = leaf_bodies_[begin + k];
        Vec3 db = src_pos_[body] - point;
        double b2 = db.norm2();
        if constexpr (Potential) {
          // Self-potential exclusion: any source *exactly* at the query
          // point is skipped (callers evaluate phi at their own particle
          // positions). Mirrors the accel path, where a zero separation
          // contributes nothing because the direction vanishes.
          if (b2 < 1e-24) continue;
          *phi -= src_mass_[body] / std::sqrt(b2 + eps2_);
        } else {
          double d2 = b2 + eps2_;
          double d = std::sqrt(d2);
          if (d2 > 0.0) *accel += (src_mass_[body] / (d2 * d)) * db;
        }
      }
    }
  }
  interactions += count;
}

Vec3 BarnesHutTree::accel_at(const Vec3& point,
                             std::uint64_t& interactions) const {
  Vec3 accel{};
  field_at<false>(point, &accel, nullptr, interactions);
  return accel;
}

Vec3 BarnesHutTree::accel_at(const Vec3& point) const {
  return accel_at(point, interactions_);
}

double BarnesHutTree::potential_at(const Vec3& point,
                                   std::uint64_t& interactions) const {
  double phi = 0.0;
  field_at<true>(point, nullptr, &phi, interactions);
  return phi;
}

double BarnesHutTree::potential_at(const Vec3& point) const {
  return potential_at(point, interactions_);
}

template <typename T, typename EvalFn>
void BarnesHutTree::batch_eval(std::span<const Vec3> points, std::span<T> out,
                               EvalFn eval) const {
  util::ThreadPool& pool = pool_ ? *pool_ : util::ThreadPool::global();
  util::PerLane<std::uint64_t> counts(pool, 0);
  pool.parallel_for(0, points.size(), 64,
                    [&](std::size_t lo, std::size_t hi, unsigned lane) {
                      std::uint64_t local = 0;
                      for (std::size_t i = lo; i < hi; ++i) {
                        out[i] = eval(points[i], local);
                      }
                      counts[lane] += local;
                    });
  std::uint64_t total = 0;
  counts.for_each([&](std::uint64_t c) { total += c; });
  interactions_ += total;
}

void BarnesHutTree::accel_at(std::span<const Vec3> points,
                             std::span<Vec3> out) const {
  batch_eval(points, out, [this](const Vec3& p, std::uint64_t& count) {
    return accel_at(p, count);
  });
}

void BarnesHutTree::potential_at(std::span<const Vec3> points,
                                 std::span<double> out) const {
  batch_eval(points, out, [this](const Vec3& p, std::uint64_t& count) {
    return potential_at(p, count);
  });
}

std::vector<Vec3> BarnesHutTree::accel_at(std::span<const Vec3> points) const {
  std::vector<Vec3> result(points.size());
  accel_at(points, result);
  return result;
}

}  // namespace jungle::kernels
