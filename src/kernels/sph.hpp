#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/bhtree.hpp"
#include "kernels/vec3.hpp"

namespace jungle::util {
class ThreadPool;
}

namespace jungle::kernels {

/// Smoothed-particle hydrodynamics with tree self-gravity — the Gadget-2
/// analog (Springel 2005): cubic-spline kernel, adaptive smoothing lengths,
/// entropy formulation (P = A rho^gamma), Monaghan artificial viscosity,
/// leapfrog KDK with a global CFL timestep. N-body units, G = 1.
///
/// The `compute_*` methods take an index range so the parallel (MPI) worker
/// can partition the work across ranks exactly like a replicated-data
/// parallel SPH code; the serial path uses the full range.
class SphSystem {
 public:
  struct Params {
    double gamma = 5.0 / 3.0;   // adiabatic index
    double alpha_visc = 1.0;    // Monaghan viscosity
    double beta_visc = 2.0;
    double cfl = 0.25;
    double eps2 = 1e-4;         // gravitational softening^2
    double eta_h = 1.3;         // h = eta_h * (m/rho)^(1/3)
    double theta = 0.6;         // tree opening angle
    double dt_max = 0.01;
    bool self_gravity = true;
  };

  SphSystem();
  explicit SphSystem(Params params);

  int add_particle(double mass, Vec3 position, Vec3 velocity,
                   double internal_energy);
  std::size_t size() const noexcept { return mass_.size(); }

  /// Advance to t_end with global adaptive steps.
  void evolve(double t_end);
  double time() const noexcept { return time_; }

  // -- phase pieces, exposed for the parallel worker --
  /// Rebuild neighbor structures + gravity tree for the current positions.
  void prepare_step();
  /// Density & smoothing length for particles [lo, hi).
  void compute_density(std::size_t lo, std::size_t hi);
  /// Hydro + gravity accelerations and entropy rate for [lo, hi).
  /// Requires densities for *all* particles.
  void compute_forces(std::size_t lo, std::size_t hi);
  /// Global timestep from the CFL criterion over [lo, hi) (min-reduce the
  /// per-rank results before integrate()).
  double timestep(std::size_t lo, std::size_t hi) const;
  /// Kick-drift positions/velocities for [lo, hi).
  void integrate(std::size_t lo, std::size_t hi, double dt);
  void advance_time(double dt) { time_ += dt; }
  /// Restore the absolute model clock into a fresh system (checkpoint
  /// restart). Forces and density are re-derived per substep, so the clock
  /// is the only dynamic state a restarted SPH system needs back.
  void set_time(double t) noexcept { time_ = t; }

  // -- state access --
  const std::vector<double>& masses() const noexcept { return mass_; }
  const std::vector<Vec3>& positions() const noexcept { return pos_; }
  const std::vector<Vec3>& velocities() const noexcept { return vel_; }
  const std::vector<double>& densities() const noexcept { return rho_; }
  const std::vector<double>& smoothing() const noexcept { return h_; }
  std::vector<double> internal_energies() const;
  void set_position(int index, Vec3 p) { pos_.at(index) = p; }
  void set_velocity(int index, Vec3 v) { vel_.at(index) = v; }
  void kick(int index, Vec3 delta_v) { vel_.at(index) += delta_v; }

  /// Thermal feedback: add internal energy (entropy at fixed density) to a
  /// particle — how stellar winds and supernovae couple into the gas.
  void inject_energy(int index, double delta_internal_energy);

  double kinetic_energy() const;
  double thermal_energy() const;
  double potential_energy() const;

  Params& params() noexcept { return params_; }

  /// Pool for the parallel density/force passes; nullptr (default) uses
  /// util::ThreadPool::global().
  void set_thread_pool(util::ThreadPool* pool) noexcept {
    pool_ = pool;
    tree_.set_thread_pool(pool);
  }

  /// Vectorized density accumulation (simd.hpp lanes) over a gathered
  /// neighbour SoA, plus the tree's vector path. Off = the scalar loops,
  /// the reference the vector path is benched against.
  void set_simd(bool enabled) noexcept {
    simd_ = enabled;
    tree_.set_simd(enabled);
  }
  bool simd_enabled() const noexcept { return simd_; }

  /// Neighbour indices of particle `i` within `radius`, sorted ascending.
  /// Requires prepare_step() to have built the grid for current positions.
  /// Test/diagnostic helper — the hot paths use the buffer-reusing search.
  std::vector<int> neighbours_of(int i, double radius) const;

  /// Neighbour-pair and tree interaction counts (cost model input).
  std::uint64_t neighbour_interactions() const noexcept { return ngb_count_; }
  std::uint64_t tree_interactions() const noexcept { return tree_count_; }
  /// Global adaptive steps taken (prepare_step calls) — counts once per
  /// substep in both the serial and the rank-parallel evolve paths.
  std::uint64_t substeps() const noexcept { return substeps_; }
  static constexpr double kFlopsPerNeighbour = 60.0;
  static constexpr double kFlopsPerTreeInteraction = 24.0;

 private:
  double kernel_w(double r, double h) const;
  double kernel_dw(double r, double h) const;  // dW/dr
  /// Append the indices within `radius` of `p` to `out` (not cleared).
  void neighbours(const Vec3& p, double radius, std::vector<int>& out) const;
  void build_grid();
  void density_at(std::size_t i, std::vector<int>& scratch,
                  std::uint64_t& ngb) ;
  void force_at(std::size_t i, double h_max, std::vector<int>& scratch,
                std::uint64_t& ngb, std::uint64_t& tree);
  util::ThreadPool& resolve_pool() const;

  Params params_;
  double time_ = 0.0;
  std::vector<double> mass_;
  std::vector<Vec3> pos_, vel_, acc_;
  std::vector<double> entropy_;  // A in P = A rho^gamma
  std::vector<double> pending_u_;  // u awaiting first density (-1 = done)
  std::vector<double> h_, rho_;
  // Per-pass caches: pressure and sound speed from the entropy formulation,
  // computed once per compute_forces call instead of pow()-per-pair.
  std::vector<double> pressure_, csound_;
  BarnesHutTree tree_;
  bool simd_ = true;
  util::ThreadPool* pool_ = nullptr;

  // Uniform hash grid for neighbour search, CSR layout: the particles of
  // cell c are cell_items_[cell_start_[c] .. cell_start_[c+1]). Cell size
  // is 2 * max(h) so a 2h support touches at most 3^3 cells.
  double cell_size_ = 0.0;
  Vec3 grid_origin_{};
  int grid_dim_[3] = {0, 0, 0};
  std::vector<std::int32_t> cell_start_;
  std::vector<std::int32_t> cell_items_;

  std::uint64_t ngb_count_ = 0;
  std::uint64_t tree_count_ = 0;
  std::uint64_t substeps_ = 0;
};

}  // namespace jungle::kernels
