#pragma once

#include <span>
#include <vector>

#include "kernels/bhtree.hpp"

namespace jungle::kernels {

/// Gravity-field solver used as the bridge *coupling* kernel: load source
/// particles, evaluate the acceleration they exert at arbitrary points.
/// This is the role Octgrav (GPU) and Fi (CPU) play in the paper's
/// embedded-cluster run — "a model to couple the gravity interactions
/// between stars and gas".
class TreeField {
 public:
  explicit TreeField(double theta = 0.6, double eps2 = 1e-4)
      : tree_(theta, eps2) {}

  void set_sources(std::span<const double> masses,
                   std::span<const Vec3> positions) {
    tree_.build(positions, masses);
    builds_ += 1;
    built_particles_ += positions.size();
  }

  /// Batched evaluation, parallel over the thread pool; no per-call
  /// reallocation beyond the result itself.
  std::vector<Vec3> accel_at(std::span<const Vec3> points) const {
    std::vector<Vec3> out(points.size());
    tree_.accel_at(points, out);
    return out;
  }
  void accel_at(std::span<const Vec3> points, std::span<Vec3> out) const {
    tree_.accel_at(points, out);
  }

  void set_thread_pool(util::ThreadPool* pool) noexcept {
    tree_.set_thread_pool(pool);
  }

  std::size_t source_count() const noexcept { return tree_.source_count(); }
  std::uint64_t interactions() const noexcept { return tree_.interactions(); }
  std::uint64_t built_particles() const noexcept { return built_particles_; }

 private:
  BarnesHutTree tree_;
  std::uint64_t builds_ = 0;
  std::uint64_t built_particles_ = 0;
};

}  // namespace jungle::kernels
