#pragma once

#include <cmath>

namespace jungle::kernels {

/// Plain 3-vector for the kernels' inner loops. Kept trivially copyable so
/// particle state can be serialized as raw spans.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double k) noexcept {
    x *= k;
    y *= k;
    z *= k;
    return *this;
  }

  friend Vec3 operator+(Vec3 a, const Vec3& b) noexcept { return a += b; }
  friend Vec3 operator-(Vec3 a, const Vec3& b) noexcept { return a -= b; }
  friend Vec3 operator*(Vec3 a, double k) noexcept { return a *= k; }
  friend Vec3 operator*(double k, Vec3 a) noexcept { return a *= k; }

  double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  double norm2() const noexcept { return dot(*this); }
  double norm() const noexcept { return std::sqrt(norm2()); }
};

}  // namespace jungle::kernels
