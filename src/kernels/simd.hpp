#pragma once

#include <cstddef>
#include <cstdint>
#include <cmath>

// Portable fixed-width SIMD wrapper for the kernels' double-precision inner
// loops. One vector type (`simd::VecD`) whose lane count is picked at
// compile time from the target ISA:
//
//   AVX2/AVX x86-64 ....... 4 lanes (__m256d)
//   SSE2 x86-64 (baseline) . 2 lanes (__m128d)
//   NEON aarch64 ........... 2 lanes (float64x2_t)
//   anything else .......... 1 lane  (plain double)
//
// Only IEEE-754 correctly-rounded operations are exposed (+ - * / sqrt and
// bitwise selects) — no FMA contraction, no rsqrt/rcp approximations — so a
// given summation order produces bit-identical results on every ISA and at
// every width-1 fallback. Vectorized loops still reassociate sums across
// lanes, which is why the scalar paths stay around as the bit-exactness
// reference (kernels expose a runtime set_simd(false) switch).

#if defined(__AVX2__) || defined(__AVX__)
#include <immintrin.h>
#define JUNGLE_SIMD_AVX 1
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define JUNGLE_SIMD_SSE2 1
#elif defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define JUNGLE_SIMD_NEON 1
#endif

namespace jungle::kernels::simd {

#if defined(JUNGLE_SIMD_AVX)

inline constexpr std::size_t kWidth = 4;
inline constexpr const char* kIsa = "avx";

struct VecD {
  __m256d raw;
};

inline VecD load(const double* p) noexcept { return {_mm256_loadu_pd(p)}; }
inline void store(double* p, VecD v) noexcept { _mm256_storeu_pd(p, v.raw); }
inline VecD set1(double v) noexcept { return {_mm256_set1_pd(v)}; }
inline VecD zero() noexcept { return {_mm256_setzero_pd()}; }
inline VecD operator+(VecD a, VecD b) noexcept {
  return {_mm256_add_pd(a.raw, b.raw)};
}
inline VecD operator-(VecD a, VecD b) noexcept {
  return {_mm256_sub_pd(a.raw, b.raw)};
}
inline VecD operator*(VecD a, VecD b) noexcept {
  return {_mm256_mul_pd(a.raw, b.raw)};
}
inline VecD operator/(VecD a, VecD b) noexcept {
  return {_mm256_div_pd(a.raw, b.raw)};
}
inline VecD sqrt(VecD a) noexcept { return {_mm256_sqrt_pd(a.raw)}; }
/// Lane mask (all-ones / all-zeros bits) for a < b.
inline VecD less(VecD a, VecD b) noexcept {
  return {_mm256_cmp_pd(a.raw, b.raw, _CMP_LT_OQ)};
}
/// mask ? a : b, per lane.
inline VecD select(VecD mask, VecD a, VecD b) noexcept {
  return {_mm256_blendv_pd(b.raw, a.raw, mask.raw)};
}
inline double hsum(VecD v) noexcept {
  __m128d lo = _mm256_castpd256_pd128(v.raw);
  __m128d hi = _mm256_extractf128_pd(v.raw, 1);
  // Fixed reduction tree (0+1) + (2+3): deterministic regardless of data.
  __m128d pair = _mm_add_pd(lo, hi);
  __m128d swap = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
}

#elif defined(JUNGLE_SIMD_SSE2)

inline constexpr std::size_t kWidth = 2;
inline constexpr const char* kIsa = "sse2";

struct VecD {
  __m128d raw;
};

inline VecD load(const double* p) noexcept { return {_mm_loadu_pd(p)}; }
inline void store(double* p, VecD v) noexcept { _mm_storeu_pd(p, v.raw); }
inline VecD set1(double v) noexcept { return {_mm_set1_pd(v)}; }
inline VecD zero() noexcept { return {_mm_setzero_pd()}; }
inline VecD operator+(VecD a, VecD b) noexcept {
  return {_mm_add_pd(a.raw, b.raw)};
}
inline VecD operator-(VecD a, VecD b) noexcept {
  return {_mm_sub_pd(a.raw, b.raw)};
}
inline VecD operator*(VecD a, VecD b) noexcept {
  return {_mm_mul_pd(a.raw, b.raw)};
}
inline VecD operator/(VecD a, VecD b) noexcept {
  return {_mm_div_pd(a.raw, b.raw)};
}
inline VecD sqrt(VecD a) noexcept { return {_mm_sqrt_pd(a.raw)}; }
inline VecD less(VecD a, VecD b) noexcept {
  return {_mm_cmplt_pd(a.raw, b.raw)};
}
inline VecD select(VecD mask, VecD a, VecD b) noexcept {
  return {_mm_or_pd(_mm_and_pd(mask.raw, a.raw),
                    _mm_andnot_pd(mask.raw, b.raw))};
}
inline double hsum(VecD v) noexcept {
  __m128d swap = _mm_unpackhi_pd(v.raw, v.raw);
  return _mm_cvtsd_f64(_mm_add_sd(v.raw, swap));
}

#elif defined(JUNGLE_SIMD_NEON)

inline constexpr std::size_t kWidth = 2;
inline constexpr const char* kIsa = "neon";

struct VecD {
  float64x2_t raw;
};

inline VecD load(const double* p) noexcept { return {vld1q_f64(p)}; }
inline void store(double* p, VecD v) noexcept { vst1q_f64(p, v.raw); }
inline VecD set1(double v) noexcept { return {vdupq_n_f64(v)}; }
inline VecD zero() noexcept { return {vdupq_n_f64(0.0)}; }
inline VecD operator+(VecD a, VecD b) noexcept {
  return {vaddq_f64(a.raw, b.raw)};
}
inline VecD operator-(VecD a, VecD b) noexcept {
  return {vsubq_f64(a.raw, b.raw)};
}
inline VecD operator*(VecD a, VecD b) noexcept {
  return {vmulq_f64(a.raw, b.raw)};
}
inline VecD operator/(VecD a, VecD b) noexcept {
  return {vdivq_f64(a.raw, b.raw)};
}
inline VecD sqrt(VecD a) noexcept { return {vsqrtq_f64(a.raw)}; }
inline VecD less(VecD a, VecD b) noexcept {
  return {vreinterpretq_f64_u64(vcltq_f64(a.raw, b.raw))};
}
inline VecD select(VecD mask, VecD a, VecD b) noexcept {
  return {vbslq_f64(vreinterpretq_u64_f64(mask.raw), a.raw, b.raw)};
}
inline double hsum(VecD v) noexcept {
  return vgetq_lane_f64(v.raw, 0) + vgetq_lane_f64(v.raw, 1);
}

#else

inline constexpr std::size_t kWidth = 1;
inline constexpr const char* kIsa = "scalar";

struct VecD {
  double raw;
};

inline VecD load(const double* p) noexcept { return {*p}; }
inline void store(double* p, VecD v) noexcept { *p = v.raw; }
inline VecD set1(double v) noexcept { return {v}; }
inline VecD zero() noexcept { return {0.0}; }
inline VecD operator+(VecD a, VecD b) noexcept { return {a.raw + b.raw}; }
inline VecD operator-(VecD a, VecD b) noexcept { return {a.raw - b.raw}; }
inline VecD operator*(VecD a, VecD b) noexcept { return {a.raw * b.raw}; }
inline VecD operator/(VecD a, VecD b) noexcept { return {a.raw / b.raw}; }
inline VecD sqrt(VecD a) noexcept { return {std::sqrt(a.raw)}; }
inline VecD less(VecD a, VecD b) noexcept {
  std::uint64_t bits = a.raw < b.raw ? ~std::uint64_t{0} : 0;
  double mask;
  __builtin_memcpy(&mask, &bits, sizeof(mask));
  return {mask};
}
inline VecD select(VecD mask, VecD a, VecD b) noexcept {
  std::uint64_t mbits, abits, bbits;
  __builtin_memcpy(&mbits, &mask.raw, sizeof(mbits));
  __builtin_memcpy(&abits, &a.raw, sizeof(abits));
  __builtin_memcpy(&bbits, &b.raw, sizeof(bbits));
  std::uint64_t rbits = (mbits & abits) | (~mbits & bbits);
  double r;
  __builtin_memcpy(&r, &rbits, sizeof(r));
  return {r};
}
inline double hsum(VecD v) noexcept { return v.raw; }

#endif

}  // namespace jungle::kernels::simd
