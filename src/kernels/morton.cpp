#include "kernels/morton.hpp"

#include <algorithm>
#include <numeric>

namespace jungle::kernels {

namespace {

/// Spread the low 21 bits of v so there are two zero bits between each
/// (the classic magic-number dilation).
std::uint64_t dilate21(std::uint64_t v) noexcept {
  v &= 0x1fffff;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

std::uint64_t quantize(double x, double lo, double hi) noexcept {
  constexpr double kMax = 2097151.0;  // 2^21 - 1
  if (!(hi > lo)) return 0;
  double t = (x - lo) / (hi - lo);
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  return static_cast<std::uint64_t>(t * kMax);
}

}  // namespace

std::uint64_t morton_key(const Vec3& p, const Vec3& lo, const Vec3& hi) {
  std::uint64_t kx = dilate21(quantize(p.x, lo.x, hi.x));
  std::uint64_t ky = dilate21(quantize(p.y, lo.y, hi.y));
  std::uint64_t kz = dilate21(quantize(p.z, lo.z, hi.z));
  return kx | (ky << 1) | (kz << 2);
}

std::vector<std::size_t> morton_order(std::span<const Vec3> positions) {
  std::vector<std::size_t> order(positions.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (positions.empty()) return order;
  Vec3 lo = positions[0], hi = positions[0];
  for (const Vec3& p : positions) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  std::vector<std::uint64_t> keys(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    keys[i] = morton_key(positions[i], lo, hi);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return keys[a] < keys[b];
                   });
  return order;
}

std::vector<std::pair<std::size_t, std::size_t>> shard_ranges(std::size_t n,
                                                              int k) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  if (k < 1) k = 1;
  std::size_t shards = static_cast<std::size_t>(k);
  std::size_t base = n / shards;
  std::size_t extra = n % shards;
  std::size_t lo = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    std::size_t count = base + (s < extra ? 1 : 0);
    ranges.emplace_back(lo, lo + count);
    lo += count;
  }
  return ranges;
}

}  // namespace jungle::kernels
