#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "kernels/vec3.hpp"

namespace jungle::util {
class ThreadPool;
}

namespace jungle::kernels {

/// Barnes-Hut octree gravity, the shared engine behind the Octgrav
/// (GPU-costed) and Fi (CPU) coupling kernels and the SPH self-gravity.
/// Monopole cells with an opening-angle criterion; Plummer softening;
/// works in N-body units (G = 1).
///
/// Storage is a flat structure-of-arrays cell pool packed in breadth-first
/// order with the children of each cell contiguous, so the hot traversal
/// walks small dense arrays instead of pointer-chasing 100-byte nodes.
/// Leaves hold up to kLeafCapacity bodies (a body *list*, not a single
/// body), which keeps the tree shallow and — because a leaf that fails the
/// opening test is evaluated body-by-body — makes coincident particles
/// exact instead of a folded-monopole approximation.
///
/// Traversal reuses a per-thread stack (no per-query allocation) and the
/// batch `accel_at(points, out)` fans out over the thread pool. The
/// interaction counter feeds the cost model (flops = interactions *
/// kFlopsPerInteraction) and tracks the *actual* O(N log N) behaviour; the
/// counter-taking overloads accumulate into a caller-owned counter so
/// parallel callers stay race-free.
class BarnesHutTree {
 public:
  explicit BarnesHutTree(double theta = 0.6, double eps2 = 1e-4)
      : theta2_(theta * theta), eps2_(eps2) {}

  /// (Re)build over the given sources. Positions/masses are copied.
  void build(std::span<const Vec3> positions, std::span<const double> masses);

  std::size_t source_count() const noexcept { return src_pos_.size(); }

  /// Acceleration at one point (counts into the member counter; do not call
  /// concurrently — use the counter-taking overload from parallel code).
  Vec3 accel_at(const Vec3& point) const;
  /// Thread-safe variant: interactions are added to `interactions` instead
  /// of the member counter. Reuses a per-thread traversal stack.
  Vec3 accel_at(const Vec3& point, std::uint64_t& interactions) const;

  /// Potential at one point (for diagnostics / boundness checks).
  double potential_at(const Vec3& point) const;
  double potential_at(const Vec3& point, std::uint64_t& interactions) const;

  /// Batch acceleration/potential at many points, parallel over the thread
  /// pool. `out` must have points.size() elements.
  void accel_at(std::span<const Vec3> points, std::span<Vec3> out) const;
  void potential_at(std::span<const Vec3> points, std::span<double> out) const;
  /// Convenience wrapper for callers that want a fresh vector.
  std::vector<Vec3> accel_at(std::span<const Vec3> points) const;

  /// Pool for the batch evaluations; nullptr (default) = ThreadPool::global().
  void set_thread_pool(util::ThreadPool* pool) noexcept { pool_ = pool; }

  /// Vectorized near-leaf acceleration sums (simd.hpp lanes) over the packed
  /// leaf SoA. Off = the scalar body-by-body loop, the reference the vector
  /// path is benched against. The potential path is always scalar (it is a
  /// diagnostics path with exact self-exclusion semantics).
  void set_simd(bool enabled) noexcept { simd_ = enabled; }
  bool simd_enabled() const noexcept { return simd_; }

  double theta() const noexcept { return std::sqrt(theta2_); }
  double eps2() const noexcept { return eps2_; }

  /// Cell/particle interactions evaluated since construction.
  std::uint64_t interactions() const noexcept { return interactions_; }
  static constexpr double kFlopsPerInteraction = 24.0;
  /// Cost of a build, per particle (sorting/insertion work).
  static constexpr double kBuildFlopsPerParticle = 80.0;

  static constexpr int kLeafCapacity = 8;

 private:
  template <bool Potential>
  void field_at(const Vec3& point, Vec3* accel, double* phi,
                std::uint64_t& interactions) const;
  /// Pool fan-out shared by the batch overloads: evaluates
  /// eval(point, counter) per point and folds the per-lane interaction
  /// counts into the member counter after the join.
  template <typename T, typename EvalFn>
  void batch_eval(std::span<const Vec3> points, std::span<T> out,
                  EvalFn eval) const;

  double theta2_;
  double eps2_;
  bool simd_ = true;
  util::ThreadPool* pool_ = nullptr;

  // Packed cells (SoA, breadth-first, children contiguous). A cell is a
  // leaf iff cell_first_child_[c] < 0; its bodies are
  // leaf_bodies_[cell_body_begin_[c] .. +cell_body_count_[c]).
  std::vector<Vec3> cell_com_;
  std::vector<double> cell_mass_;
  std::vector<double> cell_size2_;  // (cell edge length)^2, for the MAC
  std::vector<std::int32_t> cell_first_child_;
  std::vector<std::int32_t> cell_child_count_;
  std::vector<std::int32_t> cell_body_begin_;
  std::vector<std::int32_t> cell_body_count_;
  std::vector<std::int32_t> leaf_bodies_;
  // Leaf body coordinates/masses packed parallel to leaf_bodies_, so the
  // near-leaf loop reads contiguous lanes instead of gathering through the
  // body index indirection.
  std::vector<double> leaf_x_, leaf_y_, leaf_z_, leaf_m_;

  std::vector<Vec3> src_pos_;
  std::vector<double> src_mass_;
  mutable std::uint64_t interactions_ = 0;
};

}  // namespace jungle::kernels
