#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/vec3.hpp"

namespace jungle::kernels {

/// Barnes-Hut octree gravity, the shared engine behind the Octgrav
/// (GPU-costed) and Fi (CPU) coupling kernels and the SPH self-gravity.
/// Monopole cells with an opening-angle criterion; Plummer softening;
/// works in N-body units (G = 1).
///
/// The traversal counts node interactions, which feeds the cost model:
/// flops = interactions * kFlopsPerInteraction. That makes the simulated
/// cost track the *actual* O(N log N) behaviour instead of a guess.
class BarnesHutTree {
 public:
  explicit BarnesHutTree(double theta = 0.6, double eps2 = 1e-4)
      : theta2_(theta * theta), eps2_(eps2) {}

  /// (Re)build over the given sources. Positions/masses are copied.
  void build(std::span<const Vec3> positions, std::span<const double> masses);

  std::size_t source_count() const noexcept { return src_pos_.size(); }

  /// Acceleration at one point.
  Vec3 accel_at(const Vec3& point) const;
  /// Potential at one point (for diagnostics / boundness checks).
  double potential_at(const Vec3& point) const;
  /// Batch acceleration at many points.
  std::vector<Vec3> accel_at(std::span<const Vec3> points) const;

  double theta() const noexcept { return std::sqrt(theta2_); }
  double eps2() const noexcept { return eps2_; }

  /// Cell/particle interactions evaluated since construction.
  std::uint64_t interactions() const noexcept { return interactions_; }
  static constexpr double kFlopsPerInteraction = 24.0;
  /// Cost of a build, per particle (sorting/insertion work).
  static constexpr double kBuildFlopsPerParticle = 80.0;

 private:
  struct Node {
    Vec3 center;          // geometric center of the cell
    double half = 0.0;    // half edge length
    double mass = 0.0;
    Vec3 com;             // center of mass
    int children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    int body = -1;        // leaf: index into src arrays; -1 for internal
    bool leaf = true;
  };

  void insert(int node_index, int body_index, int depth);
  void finalize(int node_index);
  int child_slot(const Node& node, const Vec3& p) const;
  int make_child(int node_index, int slot);

  double theta2_;
  double eps2_;
  std::vector<Node> nodes_;
  std::vector<Vec3> src_pos_;
  std::vector<double> src_mass_;
  mutable std::uint64_t interactions_ = 0;
};

}  // namespace jungle::kernels
