#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "kernels/vec3.hpp"

namespace jungle::kernels {

/// Space-filling-curve domain decomposition for sharded models: particles
/// are ordered along a Morton (Z-order) curve so that a contiguous index
/// range [lo, hi) of the reordered arrays is a spatially compact block of
/// the domain. Shards own contiguous ranges, which keeps the ghost-exchange
/// frames contiguous slices (span views, no gather on the wire) and gives
/// each shard a cache-friendly working set — the SoA iteration playbook.

/// 63-bit Morton key of a point inside `lo..hi` (21 bits per axis).
std::uint64_t morton_key(const Vec3& p, const Vec3& lo, const Vec3& hi);

/// Permutation that sorts `positions` by Morton key (ties broken by index,
/// so the permutation is deterministic). permutation[k] = original index of
/// the particle that lands at position k.
std::vector<std::size_t> morton_order(std::span<const Vec3> positions);

/// Apply `order` to an array: out[k] = values[order[k]].
template <typename T>
std::vector<T> permute(std::span<const T> values,
                       std::span<const std::size_t> order) {
  std::vector<T> out;
  out.reserve(values.size());
  for (std::size_t index : order) out.push_back(values[index]);
  return out;
}

/// Contiguous owned ranges [lo, hi) of `n` particles over `k` shards:
/// near-equal block sizes, the first n % k shards one larger. k = 1 yields
/// the full range.
std::vector<std::pair<std::size_t, std::size_t>> shard_ranges(std::size_t n,
                                                              int k);

}  // namespace jungle::kernels
