#include "kernels/hermite.hpp"

#include <algorithm>
#include <limits>

namespace jungle::kernels {

HermiteIntegrator::HermiteIntegrator() : HermiteIntegrator(Params{}) {}
HermiteIntegrator::HermiteIntegrator(Params params) : params_(params) {}

int HermiteIntegrator::add_particle(double mass, Vec3 position, Vec3 velocity) {
  mass_.push_back(mass);
  pos_.push_back(position);
  vel_.push_back(velocity);
  acc_.push_back({});
  jerk_.push_back({});
  dirty_ = true;
  return static_cast<int>(mass_.size()) - 1;
}

void HermiteIntegrator::compute_forces(const std::vector<Vec3>& positions,
                                       const std::vector<Vec3>& velocities,
                                       std::vector<Vec3>& acc,
                                       std::vector<Vec3>& jerk) {
  const std::size_t n = mass_.size();
  acc.assign(n, {});
  jerk.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      Vec3 dr = positions[j] - positions[i];
      Vec3 dv = velocities[j] - velocities[i];
      double r2 = dr.norm2() + params_.eps2;
      double r = std::sqrt(r2);
      double r3 = r2 * r;
      double rv = dr.dot(dv);
      // acc_i += m_j dr / r^3 ; jerk_i += m_j (dv/r^3 - 3 rv dr / r^5)
      double inv_r3 = 1.0 / r3;
      double alpha = 3.0 * rv / r2;
      Vec3 jpart = (dv - alpha * dr) * inv_r3;
      acc[i] += mass_[j] * inv_r3 * dr;
      jerk[i] += mass_[j] * jpart;
      acc[j] -= mass_[i] * inv_r3 * dr;
      jerk[j] -= mass_[i] * jpart;
    }
  }
  pairs_ += static_cast<std::uint64_t>(n) * (n - 1) / 2 * 2;  // i-j and j-i
}

double HermiteIntegrator::shared_timestep() const {
  double dt = params_.dt_max;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    double a = acc_[i].norm();
    double j = jerk_[i].norm();
    if (j > 0.0 && a > 0.0) {
      dt = std::min(dt, params_.eta * a / j);
    }
  }
  return dt;
}

void HermiteIntegrator::evolve(double t_end) {
  const std::size_t n = mass_.size();
  if (n == 0) {
    time_ = t_end;
    return;
  }
  if (dirty_) {
    compute_forces(pos_, vel_, acc_, jerk_);
    dirty_ = false;
  }
  std::vector<Vec3> pred_pos(n), pred_vel(n), new_acc(n), new_jerk(n);
  while (time_ < t_end - 1e-15) {
    double dt = std::min(shared_timestep(), t_end - time_);
    double dt2 = dt * dt / 2.0;
    double dt3 = dt2 * dt / 3.0;
    // Predictor (Taylor expansion to 3rd order in position).
    for (std::size_t i = 0; i < n; ++i) {
      pred_pos[i] = pos_[i] + dt * vel_[i] + dt2 * acc_[i] + dt3 * jerk_[i];
      pred_vel[i] = vel_[i] + dt * acc_[i] + dt2 * jerk_[i];
    }
    compute_forces(pred_pos, pred_vel, new_acc, new_jerk);
    // Hermite corrector.
    for (std::size_t i = 0; i < n; ++i) {
      Vec3 vel_corr = vel_[i] + dt / 2.0 * (acc_[i] + new_acc[i]) +
                      dt * dt / 12.0 * (jerk_[i] - new_jerk[i]);
      Vec3 pos_corr = pos_[i] + dt / 2.0 * (vel_[i] + vel_corr) +
                      dt * dt / 12.0 * (acc_[i] - new_acc[i]);
      pos_[i] = pos_corr;
      vel_[i] = vel_corr;
      acc_[i] = new_acc[i];
      jerk_[i] = new_jerk[i];
    }
    time_ += dt;
  }
  time_ = t_end;
}

double HermiteIntegrator::kinetic_energy() const {
  double energy = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    energy += 0.5 * mass_[i] * vel_[i].norm2();
  }
  return energy;
}

double HermiteIntegrator::potential_energy() const {
  double energy = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    for (std::size_t j = i + 1; j < mass_.size(); ++j) {
      double r = std::sqrt((pos_[j] - pos_[i]).norm2() + params_.eps2);
      energy -= mass_[i] * mass_[j] / r;
    }
  }
  return energy;
}

}  // namespace jungle::kernels
