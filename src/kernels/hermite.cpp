#include "kernels/hermite.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "kernels/simd.hpp"
#include "util/parallel.hpp"

namespace jungle::kernels {

namespace {
// Tile sizes for the parallel force path: an i-block's accumulators live in
// registers/stack while a j-tile of the SoA source arrays stays L1-resident
// (kJTile * 7 doubles = 28 KiB).
constexpr std::size_t kIBlock = 64;
constexpr std::size_t kJTile = 512;
}  // namespace

HermiteIntegrator::HermiteIntegrator() : HermiteIntegrator(Params{}) {}
HermiteIntegrator::HermiteIntegrator(Params params) : params_(params) {}

int HermiteIntegrator::add_particle(double mass, Vec3 position, Vec3 velocity) {
  mass_.push_back(mass);
  pos_.push_back(position);
  vel_.push_back(velocity);
  acc_.push_back({});
  jerk_.push_back({});
  dirty_ = true;
  return static_cast<int>(mass_.size()) - 1;
}

void HermiteIntegrator::compute_forces(const std::vector<Vec3>& positions,
                                       const std::vector<Vec3>& velocities,
                                       std::vector<Vec3>& acc,
                                       std::vector<Vec3>& jerk) {
  const std::size_t n = mass_.size();
  acc.assign(n, {});
  jerk.assign(n, {});
  const std::size_t rlo = owned_lo();
  const std::size_t rhi = owned_hi();
  const bool partial = rlo > 0 || rhi < n;
  util::ThreadPool& pool = pool_ ? *pool_ : util::ThreadPool::global();
  if (!partial && (n < kParallelThreshold || pool.lanes() == 1)) {
    // Sequential path: Newton's-third-law symmetric update, half the work.
    // Always scalar — this is the bit-exactness reference.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        Vec3 dr = positions[j] - positions[i];
        Vec3 dv = velocities[j] - velocities[i];
        double r2 = dr.norm2() + params_.eps2;
        double r = std::sqrt(r2);
        double r3 = r2 * r;
        double rv = dr.dot(dv);
        // acc_i += m_j dr / r^3 ; jerk_i += m_j (dv/r^3 - 3 rv dr / r^5)
        double inv_r3 = 1.0 / r3;
        double alpha = 3.0 * rv / r2;
        Vec3 jpart = (dv - alpha * dr) * inv_r3;
        acc[i] += mass_[j] * inv_r3 * dr;
        jerk[i] += mass_[j] * jpart;
        acc[j] -= mass_[i] * inv_r3 * dr;
        jerk[j] -= mass_[i] * jpart;
      }
    }
    pairs_ += static_cast<std::uint64_t>(n) * (n - 1) / 2 * 2;  // i-j and j-i
    return;
  }

  // Tiled path: each i-block owns its acc/jerk rows outright (no symmetric
  // write to row j, so no contention), and walks the sources in L1-sized
  // j-tiles of SoA arrays. For a fixed i the j order is 0..n-1 regardless
  // of lane count, so results are independent of threading. A sharded
  // integrator restricts the i rows to its owned range; the j sources
  // always span the full system.
  sx_.resize(n);
  sy_.resize(n);
  sz_.resize(n);
  svx_.resize(n);
  svy_.resize(n);
  svz_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sx_[i] = positions[i].x;
    sy_[i] = positions[i].y;
    sz_[i] = positions[i].z;
    svx_[i] = velocities[i].x;
    svy_[i] = velocities[i].y;
    svz_[i] = velocities[i].z;
  }
  const double eps2 = params_.eps2;
  const bool vectorize = simd_ && simd::kWidth > 1;
  pool.parallel_for(rlo, rhi, kIBlock, [&](std::size_t lo, std::size_t hi,
                                           unsigned /*lane*/) {
    std::array<double, kIBlock> ax{}, ay{}, az{}, jx{}, jy{}, jz{};
    for (std::size_t jb = 0; jb < n; jb += kJTile) {
      std::size_t jend = std::min(n, jb + kJTile);
      for (std::size_t i = lo; i < hi; ++i) {
        double xi = sx_[i], yi = sy_[i], zi = sz_[i];
        double vxi = svx_[i], vyi = svy_[i], vzi = svz_[i];
        double axi = 0.0, ayi = 0.0, azi = 0.0;
        double jxi = 0.0, jyi = 0.0, jzi = 0.0;
        // Scalar j-accumulation: the reference loop (also the tail and the
        // self-lane block of the vector path).
        auto scalar_range = [&](std::size_t a, std::size_t b) {
          for (std::size_t j = a; j < b; ++j) {
            if (j == i) continue;
            double dx = sx_[j] - xi;
            double dy = sy_[j] - yi;
            double dz = sz_[j] - zi;
            double dvx = svx_[j] - vxi;
            double dvy = svy_[j] - vyi;
            double dvz = svz_[j] - vzi;
            double r2 = dx * dx + dy * dy + dz * dz + eps2;
            double inv_r = 1.0 / std::sqrt(r2);
            double inv_r2 = inv_r * inv_r;
            double inv_r3 = inv_r2 * inv_r;
            double rv = dx * dvx + dy * dvy + dz * dvz;
            double alpha = 3.0 * rv * inv_r2;
            double m_r3 = mass_[j] * inv_r3;
            axi += m_r3 * dx;
            ayi += m_r3 * dy;
            azi += m_r3 * dz;
            jxi += m_r3 * (dvx - alpha * dx);
            jyi += m_r3 * (dvy - alpha * dy);
            jzi += m_r3 * (dvz - alpha * dz);
          }
        };
        if (!vectorize) {
          scalar_range(jb, jend);
        } else {
          namespace sd = simd;
          constexpr std::size_t W = sd::kWidth;
          sd::VecD axv = sd::zero(), ayv = sd::zero(), azv = sd::zero();
          sd::VecD jxv = sd::zero(), jyv = sd::zero(), jzv = sd::zero();
          const sd::VecD xiv = sd::set1(xi), yiv = sd::set1(yi),
                         ziv = sd::set1(zi);
          const sd::VecD vxiv = sd::set1(vxi), vyiv = sd::set1(vyi),
                         vziv = sd::set1(vzi);
          const sd::VecD eps2v = sd::set1(eps2);
          const sd::VecD onev = sd::set1(1.0), threev = sd::set1(3.0);
          std::size_t j = jb;
          for (; j + W <= jend; j += W) {
            if (i >= j && i < j + W) {
              // The vector block containing i: take the scalar loop so the
              // j == i self-interaction is skipped exactly, softening-free
              // configurations included.
              scalar_range(j, j + W);
              continue;
            }
            sd::VecD dx = sd::load(&sx_[j]) - xiv;
            sd::VecD dy = sd::load(&sy_[j]) - yiv;
            sd::VecD dz = sd::load(&sz_[j]) - ziv;
            sd::VecD dvx = sd::load(&svx_[j]) - vxiv;
            sd::VecD dvy = sd::load(&svy_[j]) - vyiv;
            sd::VecD dvz = sd::load(&svz_[j]) - vziv;
            sd::VecD r2 = dx * dx + dy * dy + dz * dz + eps2v;
            sd::VecD inv_r = onev / sd::sqrt(r2);
            sd::VecD inv_r2 = inv_r * inv_r;
            sd::VecD inv_r3 = inv_r2 * inv_r;
            sd::VecD rv = dx * dvx + dy * dvy + dz * dvz;
            sd::VecD alpha = threev * rv * inv_r2;
            sd::VecD m_r3 = sd::load(&mass_[j]) * inv_r3;
            axv = axv + m_r3 * dx;
            ayv = ayv + m_r3 * dy;
            azv = azv + m_r3 * dz;
            jxv = jxv + m_r3 * (dvx - alpha * dx);
            jyv = jyv + m_r3 * (dvy - alpha * dy);
            jzv = jzv + m_r3 * (dvz - alpha * dz);
          }
          scalar_range(j, jend);  // tail
          axi += sd::hsum(axv);
          ayi += sd::hsum(ayv);
          azi += sd::hsum(azv);
          jxi += sd::hsum(jxv);
          jyi += sd::hsum(jyv);
          jzi += sd::hsum(jzv);
        }
        ax[i - lo] += axi;
        ay[i - lo] += ayi;
        az[i - lo] += azi;
        jx[i - lo] += jxi;
        jy[i - lo] += jyi;
        jz[i - lo] += jzi;
      }
    }
    for (std::size_t i = lo; i < hi; ++i) {
      acc[i] = {ax[i - lo], ay[i - lo], az[i - lo]};
      jerk[i] = {jx[i - lo], jy[i - lo], jz[i - lo]};
    }
  });
  pairs_ += static_cast<std::uint64_t>(rhi - rlo) * (n - 1);
}

double HermiteIntegrator::shared_timestep() const {
  // Sharded integrators derive the step from their owned rows only (ghost
  // rows carry zero forces); the client-level protocol does not require the
  // shards to agree on dt — each shard advances its owned rows to the same
  // t_end on its own substep sequence.
  double dt = params_.dt_max;
  for (std::size_t i = owned_lo(); i < owned_hi(); ++i) {
    double a = acc_[i].norm();
    double j = jerk_[i].norm();
    if (j > 0.0 && a > 0.0) {
      dt = std::min(dt, params_.eta * a / j);
    }
  }
  return dt;
}

void HermiteIntegrator::evolve(double t_end) {
  const std::size_t n = mass_.size();
  if (n == 0) {
    time_ = t_end;
    return;
  }
  if (dirty_) {
    compute_forces(pos_, vel_, acc_, jerk_);
    dirty_ = false;
  }
  const std::size_t rlo = owned_lo();
  const std::size_t rhi = owned_hi();
  std::vector<Vec3> pred_pos(n), pred_vel(n), new_acc(n), new_jerk(n);
  while (time_ < t_end - 1e-15) {
    double dt = std::min(shared_timestep(), t_end - time_);
    double dt2 = dt * dt / 2.0;
    double dt3 = dt2 * dt / 3.0;
    // Predictor (Taylor expansion to 3rd order in position). Ghost rows of a
    // sharded integrator carry zero acc/jerk, so the same expression drifts
    // them ballistically on their last-exchanged velocity; with the default
    // full owned range the branch below is always the Hermite one and the
    // arithmetic is identical to the unsharded integrator.
    for (std::size_t i = 0; i < n; ++i) {
      pred_pos[i] = pos_[i] + dt * vel_[i] + dt2 * acc_[i] + dt3 * jerk_[i];
      pred_vel[i] = vel_[i] + dt * acc_[i] + dt2 * jerk_[i];
    }
    compute_forces(pred_pos, pred_vel, new_acc, new_jerk);
    // Hermite corrector for owned rows; ghosts keep the drifted prediction.
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= rlo && i < rhi) {
        Vec3 vel_corr = vel_[i] + dt / 2.0 * (acc_[i] + new_acc[i]) +
                        dt * dt / 12.0 * (jerk_[i] - new_jerk[i]);
        Vec3 pos_corr = pos_[i] + dt / 2.0 * (vel_[i] + vel_corr) +
                        dt * dt / 12.0 * (acc_[i] - new_acc[i]);
        pos_[i] = pos_corr;
        vel_[i] = vel_corr;
        acc_[i] = new_acc[i];
        jerk_[i] = new_jerk[i];
      } else {
        pos_[i] = pred_pos[i];
        vel_[i] = pred_vel[i];
      }
    }
    time_ += dt;
    ++substeps_;
  }
  time_ = t_end;
}

double HermiteIntegrator::kinetic_energy() const {
  double energy = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    energy += 0.5 * mass_[i] * vel_[i].norm2();
  }
  return energy;
}

double HermiteIntegrator::potential_energy() const {
  double energy = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    for (std::size_t j = i + 1; j < mass_.size(); ++j) {
      double r = std::sqrt((pos_[j] - pos_[i]).norm2() + params_.eps2);
      energy -= mass_[i] * mass_[j] / r;
    }
  }
  return energy;
}

}  // namespace jungle::kernels
