#include "kernels/sph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kernels/simd.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace jungle::kernels {

namespace {
constexpr double kPi = 3.14159265358979323846;

// Gather buffers for the vectorized density pass (neighbour positions and
// masses as SoA lanes). Thread-local so the parallel density pass needs no
// per-call allocation and no sharing.
thread_local std::vector<double> tl_gx, tl_gy, tl_gz, tl_gm;
}

SphSystem::SphSystem() : SphSystem(Params{}) {}
SphSystem::SphSystem(Params params) : params_(params) {}

int SphSystem::add_particle(double mass, Vec3 position, Vec3 velocity,
                            double internal_energy) {
  mass_.push_back(mass);
  pos_.push_back(position);
  vel_.push_back(velocity);
  acc_.push_back({});
  // Entropy from u: u = A rho^(gamma-1) / (gamma-1); rho is unknown until
  // the first density pass, so stash u and convert lazily with rho=1; the
  // first prepare/density/convert cycle fixes the scale consistently
  // because we recompute A from u after the first density pass.
  entropy_.push_back(internal_energy * (params_.gamma - 1.0));
  pending_u_.push_back(internal_energy);
  h_.push_back(0.1);
  rho_.push_back(1.0);
  return static_cast<int>(mass_.size()) - 1;
}

double SphSystem::kernel_w(double r, double h) const {
  // Cubic spline (Monaghan & Lattanzio 1985), support 2h, 3D normalization.
  double q = r / h;
  double sigma = 1.0 / (kPi * h * h * h);
  if (q < 1.0) {
    return sigma * (1.0 - 1.5 * q * q + 0.75 * q * q * q);
  }
  if (q < 2.0) {
    double t = 2.0 - q;
    return sigma * 0.25 * t * t * t;
  }
  return 0.0;
}

double SphSystem::kernel_dw(double r, double h) const {
  double q = r / h;
  double sigma = 1.0 / (kPi * h * h * h * h);
  if (q < 1.0) {
    return sigma * (-3.0 * q + 2.25 * q * q);
  }
  if (q < 2.0) {
    double t = 2.0 - q;
    return sigma * (-0.75 * t * t);
  }
  return 0.0;
}

void SphSystem::build_grid() {
  const std::size_t n = mass_.size();
  if (n == 0) return;
  // Cell size is the largest support radius (2 h_max): any 2h_i density
  // query then touches at most 3^3 cells, and the h_i + h_max force query
  // at most 5^3 (usually 3^3 too).
  double h_max = 0.0;
  for (double h : h_) h_max = std::max(h_max, h);
  Vec3 lo = pos_[0], hi = pos_[0];
  for (const Vec3& p : pos_) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  // A single runaway h (an ejected isolated particle whose rho floors and h
  // inflates) must not collapse the whole grid to one cell and turn every
  // query O(N): cap the cell at 1/8 of the largest extent, so the grid
  // keeps at least 8 cells per axis. Queries wider than a cell still see
  // every neighbour via the span loop below.
  double max_extent =
      std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 8e-6});
  cell_size_ = std::max(1e-6, std::min(2.0 * h_max, max_extent / 8.0));
  grid_origin_ = lo;
  for (int d = 0; d < 3; ++d) {
    double extent = d == 0 ? hi.x - lo.x : d == 1 ? hi.y - lo.y : hi.z - lo.z;
    grid_dim_[d] =
        std::max(1, std::min(128, static_cast<int>(extent / cell_size_) + 1));
  }
  // Counting sort into a CSR layout: one pass to count, one to place.
  std::size_t ncells = static_cast<std::size_t>(grid_dim_[0]) * grid_dim_[1] *
                       grid_dim_[2];
  auto cell_of = [&](const Vec3& p) {
    int cx = std::min(grid_dim_[0] - 1,
                      std::max(0, static_cast<int>((p.x - lo.x) / cell_size_)));
    int cy = std::min(grid_dim_[1] - 1,
                      std::max(0, static_cast<int>((p.y - lo.y) / cell_size_)));
    int cz = std::min(grid_dim_[2] - 1,
                      std::max(0, static_cast<int>((p.z - lo.z) / cell_size_)));
    return (static_cast<std::size_t>(cz) * grid_dim_[1] + cy) * grid_dim_[0] +
           cx;
  };
  cell_start_.assign(ncells + 1, 0);
  for (const Vec3& p : pos_) ++cell_start_[cell_of(p) + 1];
  for (std::size_t c = 0; c < ncells; ++c) cell_start_[c + 1] += cell_start_[c];
  cell_items_.resize(n);
  std::vector<std::int32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (int i = 0; i < static_cast<int>(n); ++i) {
    cell_items_[cursor[cell_of(pos_[i])]++] = i;
  }
}

void SphSystem::neighbours(const Vec3& p, double radius,
                           std::vector<int>& out) const {
  int span = static_cast<int>(radius / cell_size_) + 1;
  int cx = static_cast<int>((p.x - grid_origin_.x) / cell_size_);
  int cy = static_cast<int>((p.y - grid_origin_.y) / cell_size_);
  int cz = static_cast<int>((p.z - grid_origin_.z) / cell_size_);
  double r2 = radius * radius;
  for (int z = std::max(0, cz - span);
       z <= std::min(grid_dim_[2] - 1, cz + span); ++z) {
    for (int y = std::max(0, cy - span);
         y <= std::min(grid_dim_[1] - 1, cy + span); ++y) {
      for (int x = std::max(0, cx - span);
           x <= std::min(grid_dim_[0] - 1, cx + span); ++x) {
        std::size_t cell =
            (static_cast<std::size_t>(z) * grid_dim_[1] + y) * grid_dim_[0] +
            x;
        for (std::int32_t k = cell_start_[cell]; k < cell_start_[cell + 1];
             ++k) {
          int j = cell_items_[k];
          if ((pos_[j] - p).norm2() <= r2) out.push_back(j);
        }
      }
    }
  }
}

std::vector<int> SphSystem::neighbours_of(int i, double radius) const {
  std::vector<int> found;
  neighbours(pos_.at(i), radius, found);
  std::sort(found.begin(), found.end());
  return found;
}

util::ThreadPool& SphSystem::resolve_pool() const {
  return pool_ ? *pool_ : util::ThreadPool::global();
}

void SphSystem::prepare_step() {
  ++substeps_;
  build_grid();
  if (params_.self_gravity) {
    tree_ = BarnesHutTree(params_.theta, params_.eps2);
    tree_.set_thread_pool(pool_);
    tree_.build(pos_, mass_);
  }
}

void SphSystem::density_at(std::size_t i, std::vector<int>& scratch,
                           std::uint64_t& ngb) {
  // Fixed-point iteration coupling h and rho: h = eta (m/rho)^{1/3}.
  for (int iteration = 0; iteration < 2; ++iteration) {
    double rho = 0.0;
    scratch.clear();
    neighbours(pos_[i], 2.0 * h_[i], scratch);
    ngb += scratch.size();
    const std::size_t m = scratch.size();
    std::size_t k = 0;
    // The gather (4 SoA copies per neighbour) only pays for itself once the
    // list is a few vectors long; short lists stay on the scalar loop.
    constexpr std::size_t kGatherMin = 4 * simd::kWidth;
    if (simd_ && simd::kWidth > 1 && m >= kGatherMin) {
      // Gather the neighbour SoA, then evaluate the cubic spline on whole
      // lanes with the piecewise branches folded into bitwise selects. The
      // per-lane arithmetic mirrors kernel_w() exactly; only the summation
      // order across neighbours differs from the scalar loop.
      namespace sd = simd;
      constexpr std::size_t W = sd::kWidth;
      tl_gx.resize(m);
      tl_gy.resize(m);
      tl_gz.resize(m);
      tl_gm.resize(m);
      for (std::size_t g = 0; g < m; ++g) {
        int j = scratch[g];
        tl_gx[g] = pos_[j].x;
        tl_gy[g] = pos_[j].y;
        tl_gz[g] = pos_[j].z;
        tl_gm[g] = mass_[j];
      }
      const double h = h_[i];
      const sd::VecD px = sd::set1(pos_[i].x), py = sd::set1(pos_[i].y),
                     pz = sd::set1(pos_[i].z);
      const sd::VecD inv_h = sd::set1(1.0 / h);
      const sd::VecD sigma = sd::set1(1.0 / (kPi * h * h * h));
      const sd::VecD onev = sd::set1(1.0), twov = sd::set1(2.0);
      const sd::VecD c15 = sd::set1(1.5), c075 = sd::set1(0.75),
                     c025 = sd::set1(0.25);
      const sd::VecD zerov = sd::zero();
      sd::VecD rhov = sd::zero();
      for (; k + W <= m; k += W) {
        sd::VecD dx = sd::load(&tl_gx[k]) - px;
        sd::VecD dy = sd::load(&tl_gy[k]) - py;
        sd::VecD dz = sd::load(&tl_gz[k]) - pz;
        sd::VecD r = sd::sqrt(dx * dx + dy * dy + dz * dz);
        sd::VecD q = r * inv_h;
        sd::VecD q2 = q * q;
        sd::VecD inner = sigma * (onev - c15 * q2 + c075 * q2 * q);
        sd::VecD t = twov - q;
        sd::VecD outer = sigma * c025 * t * t * t;
        sd::VecD w = sd::select(sd::less(q, onev), inner,
                                sd::select(sd::less(q, twov), outer, zerov));
        rhov = rhov + sd::load(&tl_gm[k]) * w;
      }
      rho += sd::hsum(rhov);
      for (; k < m; ++k) {
        int j = scratch[k];
        double r = (pos_[j] - pos_[i]).norm();
        rho += mass_[j] * kernel_w(r, h_[i]);
      }
    } else {
      for (int j : scratch) {
        double r = (pos_[j] - pos_[i]).norm();
        rho += mass_[j] * kernel_w(r, h_[i]);
      }
    }
    rho_[i] = std::max(rho, 1e-12);
    h_[i] = params_.eta_h * std::cbrt(mass_[i] / rho_[i]);
  }
  if (!pending_u_.empty() && pending_u_[i] >= 0.0) {
    // First density known: fix the entropy constant from the stored u.
    entropy_[i] = pending_u_[i] * (params_.gamma - 1.0) /
                  std::pow(rho_[i], params_.gamma - 1.0);
    pending_u_[i] = -1.0;
  }
}

void SphSystem::compute_density(std::size_t lo, std::size_t hi) {
  util::ThreadPool& pool = resolve_pool();
  util::PerLane<std::vector<int>> scratch(pool);
  util::PerLane<std::uint64_t> counts(pool, 0);
  // Each particle writes only its own rho/h/entropy slots, so the pass is
  // thread-count independent.
  pool.parallel_for(lo, hi, 16,
                    [&](std::size_t a, std::size_t b, unsigned lane) {
                      for (std::size_t i = a; i < b; ++i) {
                        density_at(i, scratch[lane], counts[lane]);
                      }
                    });
  counts.for_each([&](std::uint64_t c) { ngb_count_ += c; });
}

void SphSystem::force_at(std::size_t i, double h_max,
                         std::vector<int>& scratch, std::uint64_t& ngb,
                         std::uint64_t& tree) {
  Vec3 accel{};
  double p_i = pressure_[i];
  double c_i = csound_[i];
  scratch.clear();
  // Symmetric pair rule: i and j interact iff r < h_i + h_j (the support
  // of W(r, h_mean)). Using 2 h_i here would drop one direction of a pair
  // with unequal h and break momentum conservation; the search radius must
  // therefore reach out to h_i + max_j h_j.
  neighbours(pos_[i], h_[i] + h_max, scratch);
  ngb += scratch.size();
  for (int j : scratch) {
    if (j == static_cast<int>(i)) continue;
    Vec3 dr = pos_[i] - pos_[j];
    double r = dr.norm();
    if (r <= 0.0) continue;
    if (r >= 0.5 * (h_[i] + h_[j]) * 2.0) continue;  // outside W support
    double p_j = pressure_[j];
    double h_mean = 0.5 * (h_[i] + h_[j]);
    double dw = kernel_dw(r, h_mean);
    // Artificial viscosity (Monaghan 1992).
    Vec3 dv = vel_[i] - vel_[j];
    double visc = 0.0;
    double rv = dv.dot(dr);
    if (rv < 0.0) {
      double c_j = csound_[j];
      double mu = h_mean * rv / (r * r + 0.01 * h_mean * h_mean);
      double rho_mean = 0.5 * (rho_[i] + rho_[j]);
      visc = (-params_.alpha_visc * 0.5 * (c_i + c_j) * mu +
              params_.beta_visc * mu * mu) /
             rho_mean;
    }
    double term = p_i / (rho_[i] * rho_[i]) + p_j / (rho_[j] * rho_[j]) +
                  visc;
    accel -= mass_[j] * term * dw * (1.0 / r) * dr;
  }
  if (params_.self_gravity) {
    accel += tree_.accel_at(pos_[i], tree);
  }
  acc_[i] = accel;
}

void SphSystem::compute_forces(std::size_t lo, std::size_t hi) {
  double h_max = 0.0;
  for (double h : h_) h_max = std::max(h_max, h);
  // Hoist pressure and sound speed out of the pair loop: they depend only
  // on per-particle entropy/density, which are fixed for the whole force
  // pass, and the pow() per pair dominated the non-neighbour-search cost.
  // Full-range fill — the pair rule reaches neighbours outside [lo, hi).
  const double gamma = params_.gamma;
  const std::size_t n = mass_.size();
  pressure_.resize(n);
  csound_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    pressure_[j] = entropy_[j] * std::pow(rho_[j], gamma);
    csound_[j] = std::sqrt(gamma * pressure_[j] / rho_[j]);
  }
  util::ThreadPool& pool = resolve_pool();
  util::PerLane<std::vector<int>> scratch(pool);
  util::PerLane<std::uint64_t> ngb(pool, 0);
  util::PerLane<std::uint64_t> tree(pool, 0);
  pool.parallel_for(lo, hi, 16,
                    [&](std::size_t a, std::size_t b, unsigned lane) {
                      for (std::size_t i = a; i < b; ++i) {
                        force_at(i, h_max, scratch[lane], ngb[lane],
                                 tree[lane]);
                      }
                    });
  ngb.for_each([&](std::uint64_t c) { ngb_count_ += c; });
  tree.for_each([&](std::uint64_t c) { tree_count_ += c; });
}

double SphSystem::timestep(std::size_t lo, std::size_t hi) const {
  double dt = params_.dt_max;
  const double gamma = params_.gamma;
  for (std::size_t i = lo; i < hi; ++i) {
    double p_i = entropy_[i] * std::pow(rho_[i], gamma);
    double c_i = std::sqrt(gamma * p_i / rho_[i]);
    double v = vel_[i].norm();
    dt = std::min(dt, params_.cfl * h_[i] / (c_i + v + 1e-12));
    double a = acc_[i].norm();
    if (a > 0) dt = std::min(dt, 0.25 * std::sqrt(h_[i] / a));
  }
  return dt;
}

void SphSystem::integrate(std::size_t lo, std::size_t hi, double dt) {
  for (std::size_t i = lo; i < hi; ++i) {
    vel_[i] += acc_[i] * dt;
    pos_[i] += vel_[i] * dt;
  }
}

void SphSystem::evolve(double t_end) {
  if (mass_.empty()) {
    time_ = t_end;
    return;
  }
  while (time_ < t_end - 1e-15) {
    prepare_step();
    compute_density(0, size());
    compute_forces(0, size());
    double dt = std::min(timestep(0, size()), t_end - time_);
    integrate(0, size(), dt);
    time_ += dt;
  }
  time_ = t_end;
}

void SphSystem::inject_energy(int index, double delta_internal_energy) {
  if (pending_u_.at(index) >= 0.0) {
    // Density not known yet: fold into the pending internal energy so the
    // first density pass converts the sum consistently.
    pending_u_[index] += delta_internal_energy;
    return;
  }
  // u = A rho^(gamma-1)/(gamma-1)  =>  dA = du (gamma-1) / rho^(gamma-1)
  entropy_.at(index) += delta_internal_energy * (params_.gamma - 1.0) /
                        std::pow(rho_.at(index), params_.gamma - 1.0);
}

std::vector<double> SphSystem::internal_energies() const {
  std::vector<double> result(mass_.size());
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    result[i] = entropy_[i] * std::pow(rho_[i], params_.gamma - 1.0) /
                (params_.gamma - 1.0);
  }
  return result;
}

double SphSystem::kinetic_energy() const {
  double energy = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    energy += 0.5 * mass_[i] * vel_[i].norm2();
  }
  return energy;
}

double SphSystem::thermal_energy() const {
  double energy = 0.0;
  auto u = internal_energies();
  for (std::size_t i = 0; i < mass_.size(); ++i) energy += mass_[i] * u[i];
  return energy;
}

double SphSystem::potential_energy() const {
  // Tree-based estimate, adequate for diagnostics.
  BarnesHutTree tree(params_.theta, params_.eps2);
  tree.set_thread_pool(pool_);
  tree.build(pos_, mass_);
  std::vector<double> phi(mass_.size());
  tree.potential_at(pos_, phi);
  double energy = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    energy += 0.5 * mass_[i] * phi[i];
  }
  return energy;
}

}  // namespace jungle::kernels
