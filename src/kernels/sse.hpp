#pragma once

#include <cstdint>
#include <vector>

namespace jungle::kernels {

/// Parameterized stellar evolution, the SSE analog (Hurley, Pols & Tout
/// 2000). The paper describes it exactly right for our purposes: "a simple
/// lookup of a star's age and initial mass to determine its current state.
/// Since this lookup is nearly trivial, SSE is simply a sequential
/// application."
///
/// We use simplified power-law fits (documented in DESIGN.md): the *shape*
/// matters — massive stars evolve fast, blow winds, and explode — because
/// that drives the embedded cluster's gas expulsion (Fig 6).
class StellarEvolution {
 public:
  enum class Phase : std::uint8_t {
    main_sequence = 0,
    giant = 1,
    white_dwarf = 2,
    neutron_star = 3,
  };

  struct Star {
    double zams_mass = 1.0;  // MSun at formation
    double mass = 1.0;       // current MSun
    double age = 0.0;        // Myr
    double luminosity = 1.0; // LSun
    double radius = 1.0;     // RSun
    Phase phase = Phase::main_sequence;
    bool exploded = false;   // supernova happened during the last evolve
  };

  /// Returns the star's index.
  int add_star(double zams_mass_msun);
  std::size_t size() const noexcept { return stars_.size(); }

  /// Evolve every star to the given age (Myr). Ages must not decrease.
  void evolve_to(double age_myr);

  const Star& star(int index) const { return stars_.at(index); }
  std::vector<double> masses() const;
  std::vector<double> luminosities() const;

  /// Indices of stars that went supernova during the last evolve_to call.
  const std::vector<int>& recent_supernovae() const noexcept {
    return recent_sn_;
  }

  /// Total mass lost by winds/ejecta during the last evolve_to (MSun).
  double recent_mass_loss() const noexcept { return recent_mass_loss_; }

  // -- the analytic fits (public for tests and documentation) --

  /// Main-sequence lifetime in Myr: ~10 Gyr * (M/MSun)^-2.5, floored at the
  /// lifetime of the most massive stars (~3 Myr).
  static double main_sequence_lifetime_myr(double zams_mass);
  /// Giant-branch duration: 15% of the MS lifetime.
  static double giant_lifetime_myr(double zams_mass);
  /// MS luminosity (LSun): (M/MSun)^3.5.
  static double ms_luminosity(double zams_mass);
  /// MS radius (RSun): (M/MSun)^0.8.
  static double ms_radius(double zams_mass);
  /// Remnant mass: WD of 0.6 MSun below 8 MSun, else a 1.4 MSun NS.
  static double remnant_mass(double zams_mass);
  static constexpr double kSupernovaThreshold = 8.0;  // MSun
  /// Canonical supernova energy (erg).
  static constexpr double kSupernovaEnergyErg = 1e51;
  /// Wind luminosity ~ mass loss: strong for massive stars. MSun/Myr.
  static double wind_mass_loss_rate(double zams_mass, Phase phase);

 private:
  void evolve_star(Star& star, double target_age, int index);

  std::vector<Star> stars_;
  std::vector<int> recent_sn_;
  double recent_mass_loss_ = 0.0;
};

}  // namespace jungle::kernels
