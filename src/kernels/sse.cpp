#include "kernels/sse.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace jungle::kernels {

int StellarEvolution::add_star(double zams_mass_msun) {
  Star star;
  star.zams_mass = zams_mass_msun;
  star.mass = zams_mass_msun;
  star.luminosity = ms_luminosity(zams_mass_msun);
  star.radius = ms_radius(zams_mass_msun);
  stars_.push_back(star);
  return static_cast<int>(stars_.size()) - 1;
}

double StellarEvolution::main_sequence_lifetime_myr(double zams_mass) {
  return std::max(3.0, 1.0e4 * std::pow(zams_mass, -2.5));
}

double StellarEvolution::giant_lifetime_myr(double zams_mass) {
  return 0.15 * main_sequence_lifetime_myr(zams_mass);
}

double StellarEvolution::ms_luminosity(double zams_mass) {
  return std::pow(zams_mass, 3.5);
}

double StellarEvolution::ms_radius(double zams_mass) {
  return std::pow(zams_mass, 0.8);
}

double StellarEvolution::remnant_mass(double zams_mass) {
  if (zams_mass >= kSupernovaThreshold) return 1.4;
  // A white dwarf cannot outweigh its progenitor.
  return std::min(0.6, zams_mass);
}

double StellarEvolution::wind_mass_loss_rate(double zams_mass, Phase phase) {
  if (phase == Phase::white_dwarf || phase == Phase::neutron_star) return 0.0;
  // Massive-star winds dominate; negligible below a few MSun. The giant
  // branch sheds the envelope at a much higher rate.
  double base = 1e-6 * std::pow(zams_mass, 2.5);
  return phase == Phase::giant ? 50.0 * base : base;
}

void StellarEvolution::evolve_to(double age_myr) {
  recent_sn_.clear();
  recent_mass_loss_ = 0.0;
  for (std::size_t i = 0; i < stars_.size(); ++i) {
    if (age_myr < stars_[i].age - 1e-12) {
      throw CodeError("SSE cannot evolve backwards in time");
    }
    evolve_star(stars_[i], age_myr, static_cast<int>(i));
  }
}

void StellarEvolution::evolve_star(Star& star, double target_age, int index) {
  star.exploded = false;
  double t_ms = main_sequence_lifetime_myr(star.zams_mass);
  double t_giant_end = t_ms + giant_lifetime_myr(star.zams_mass);
  double previous_mass = star.mass;
  double dt = target_age - star.age;
  star.age = target_age;

  if (star.phase == Phase::white_dwarf || star.phase == Phase::neutron_star) {
    return;  // remnants are inert
  }

  if (target_age < t_ms) {
    star.phase = Phase::main_sequence;
    star.luminosity = ms_luminosity(star.zams_mass) *
                      (1.0 + 0.5 * target_age / t_ms);  // mild MS brightening
    star.radius = ms_radius(star.zams_mass);
    star.mass = std::max(
        remnant_mass(star.zams_mass),
        star.mass - wind_mass_loss_rate(star.zams_mass,
                                        Phase::main_sequence) * dt);
  } else if (target_age < t_giant_end) {
    star.phase = Phase::giant;
    star.luminosity = 50.0 * ms_luminosity(star.zams_mass);
    star.radius = 100.0 * ms_radius(star.zams_mass);
    // The envelope goes during the giant phase: interpolate the mass from
    // the ZAMS value down to the remnant mass across the phase.
    double fraction = (target_age - t_ms) / (t_giant_end - t_ms);
    double envelope_target =
        star.zams_mass +
        fraction * (remnant_mass(star.zams_mass) - star.zams_mass);
    star.mass = std::min(star.mass, std::max(remnant_mass(star.zams_mass),
                                             envelope_target));
  } else {
    // Phase ended this step: collapse to the remnant.
    bool was_remnant_before = false;
    (void)was_remnant_before;
    star.mass = remnant_mass(star.zams_mass);
    if (star.zams_mass >= kSupernovaThreshold) {
      star.phase = Phase::neutron_star;
      star.exploded = true;
      recent_sn_.push_back(index);
      star.luminosity = 1e-2;
      star.radius = 1.7e-5;  // ~12 km in RSun
    } else {
      star.phase = Phase::white_dwarf;
      star.luminosity = 1e-3;
      star.radius = 0.01;
    }
  }
  recent_mass_loss_ += std::max(0.0, previous_mass - star.mass);
}

std::vector<double> StellarEvolution::masses() const {
  std::vector<double> result;
  result.reserve(stars_.size());
  for (const Star& star : stars_) result.push_back(star.mass);
  return result;
}

std::vector<double> StellarEvolution::luminosities() const {
  std::vector<double> result;
  result.reserve(stars_.size());
  for (const Star& star : stars_) result.push_back(star.luminosity);
  return result;
}

}  // namespace jungle::kernels
