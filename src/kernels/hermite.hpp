#pragma once

#include <cstdint>
#include <vector>

#include "kernels/vec3.hpp"

namespace jungle::util {
class ThreadPool;
}

namespace jungle::kernels {

/// Direct-summation gravitational N-body integrator, the phiGRAPE analog
/// (Harfst et al. 2006): 4th-order Hermite predictor-corrector with a
/// shared adaptive timestep and Plummer softening. Works in N-body units
/// (G = 1). O(N^2) per force evaluation — the regime where GRAPE/GPU
/// hardware shines, which is what the E1/E11 experiments exercise.
class HermiteIntegrator {
 public:
  struct Params {
    double eps2 = 1e-4;     // softening^2
    double eta = 0.02;      // accuracy parameter for the shared timestep
    double dt_max = 0.0625; // upper bound on a step
  };

  HermiteIntegrator();
  explicit HermiteIntegrator(Params params);

  /// Returns the particle's index.
  int add_particle(double mass, Vec3 position, Vec3 velocity);
  std::size_t size() const noexcept { return mass_.size(); }

  /// Advance to `t_end` (exactly; the last step is clipped).
  void evolve(double t_end);
  double time() const noexcept { return time_; }

  double kinetic_energy() const;
  double potential_energy() const;

  // Bulk state access (the worker protocol moves arrays, not particles).
  const std::vector<double>& masses() const noexcept { return mass_; }
  const std::vector<Vec3>& positions() const noexcept { return pos_; }
  const std::vector<Vec3>& velocities() const noexcept { return vel_; }
  void set_mass(int index, double mass) { mass_.at(index) = mass; dirty_ = true; }
  void set_position(int index, Vec3 p) { pos_.at(index) = p; dirty_ = true; }
  void set_velocity(int index, Vec3 v) { vel_.at(index) = v; dirty_ = true; }
  /// Force a fresh force evaluation at the next evolve even when no state
  /// changed — the mass-update channel invalidates unconditionally, so the
  /// sparse (delta-compressed) and full-array forms stay bit-identical.
  void invalidate_forces() noexcept { dirty_ = true; }

  /// Velocity kick (bridge coupling applies cross-forces this way).
  void kick(int index, Vec3 delta_v) { vel_.at(index) += delta_v; }

  /// Dynamic state carried across evolve() calls. The corrector stores the
  /// forces it evaluated at the *predicted* positions, which differ from a
  /// fresh evaluation at the corrected state by roundoff — so a restarted
  /// integrator that recomputes forces diverges from one that kept running.
  /// Checkpoint/restore moves these verbatim to keep replay bit-exact.
  const std::vector<Vec3>& accelerations() const noexcept { return acc_; }
  const std::vector<Vec3>& jerks() const noexcept { return jerk_; }

  /// Install checkpointed dynamics: forces as the corrector left them and
  /// the absolute model time. Marks forces clean — the next evolve() resumes
  /// the exact substep sequence the checkpointed integrator would have run.
  void restore_dynamics(std::vector<Vec3> acc, std::vector<Vec3> jerk,
                        double time) {
    acc_ = std::move(acc);
    jerk_ = std::move(jerk);
    time_ = time;
    dirty_ = false;
  }

  Params& params() noexcept { return params_; }

  /// Pool for the parallel force path; nullptr (default) uses
  /// util::ThreadPool::global(). Systems below kParallelThreshold bodies
  /// (or a 1-lane pool) take the sequential symmetric-update path.
  void set_thread_pool(util::ThreadPool* pool) noexcept { pool_ = pool; }
  static constexpr std::size_t kParallelThreshold = 256;

  /// Vectorized j-accumulation in the tiled force path (simd.hpp lanes).
  /// Off = the scalar loop, the bit-exactness reference the vector path is
  /// benched against. Ignored by the sequential symmetric path, which is
  /// always scalar.
  void set_simd(bool enabled) noexcept { simd_ = enabled; }
  bool simd_enabled() const noexcept { return simd_; }

  /// Domain-decomposed (sharded) operation: this instance holds *all* N
  /// particles but integrates only the owned rows [lo, hi) — forces for
  /// owned i over all j sources, shared timestep from owned rows only.
  /// Ghost rows (everything outside the range) drift ballistically on their
  /// last-exchanged velocity between ghost updates. The default range
  /// covers everything, and a full range takes the exact unsharded code
  /// path — that is what makes a 1-shard model bit-identical to the plain
  /// worker.
  void set_owned_range(std::size_t lo, std::size_t hi) noexcept {
    owned_lo_ = lo;
    owned_hi_ = hi;
    dirty_ = true;
  }
  std::size_t owned_lo() const noexcept {
    return owned_lo_ < mass_.size() ? owned_lo_ : mass_.size();
  }
  std::size_t owned_hi() const noexcept {
    return owned_hi_ < mass_.size() ? owned_hi_ : mass_.size();
  }
  std::size_t owned_count() const noexcept { return owned_hi() - owned_lo(); }
  bool sharded() const noexcept {
    return owned_lo() > 0 || owned_hi() < mass_.size();
  }

  /// Drop all particles and reset the clock/owned range (params and the
  /// cumulative pair/substep meters survive). Used by shard (re)priming:
  /// restore-into-a-shard is reset + add_particles + set_owned_range.
  void clear() {
    mass_.clear();
    pos_.clear();
    vel_.clear();
    acc_.clear();
    jerk_.clear();
    time_ = 0.0;
    dirty_ = true;
    owned_lo_ = 0;
    owned_hi_ = static_cast<std::size_t>(-1);
  }

  /// Pair force evaluations since construction — the honest input to the
  /// compute-cost model (flops = pairs * kFlopsPerPair).
  std::uint64_t pair_evaluations() const noexcept { return pairs_; }
  static constexpr double kFlopsPerPair = 60.0;  // acc + jerk, incl. sqrt

  /// Integrator substeps taken since construction (the adaptive shared-dt
  /// loop inside evolve) — what the scheduler's substep model estimates.
  std::uint64_t substeps() const noexcept { return substeps_; }

 private:
  void compute_forces(const std::vector<Vec3>& positions,
                      const std::vector<Vec3>& velocities,
                      std::vector<Vec3>& acc, std::vector<Vec3>& jerk);
  double shared_timestep() const;

  Params params_;
  double time_ = 0.0;
  std::vector<double> mass_;
  std::vector<Vec3> pos_, vel_, acc_, jerk_;
  bool dirty_ = true;  // forces need a fresh evaluation
  bool simd_ = true;
  std::size_t owned_lo_ = 0;
  std::size_t owned_hi_ = static_cast<std::size_t>(-1);
  std::uint64_t pairs_ = 0;
  std::uint64_t substeps_ = 0;
  util::ThreadPool* pool_ = nullptr;
  // SoA scratch for the tiled parallel force path, reused across steps.
  std::vector<double> sx_, sy_, sz_, svx_, svy_, svz_;
};

}  // namespace jungle::kernels
