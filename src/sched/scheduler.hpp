#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "amuse/workers.hpp"
#include "gat/gat.hpp"
#include "sched/model.hpp"
#include "sim/network.hpp"

namespace jungle::sched {

/// One kernel -> machine decision: which resource runs it (empty string =
/// the client machine itself, over a local channel), which worker variant
/// (GPU kernels where the host has a GPU), and the modeled per-iteration
/// cost split the dashboard reports.
struct Assignment {
  std::string resource;         // "" == local on the client host
  const sim::Host* host = nullptr;  // representative compute node
  amuse::WorkerSpec spec;
  int nodes = 1;
  double compute_seconds = 0.0;  // modeled, per iteration
  double comm_seconds = 0.0;     // modeled, per iteration
  double queue_seconds = 0.0;    // amortized startup share, per iteration

  bool local() const noexcept { return resource.empty(); }
  std::string where() const {
    return local() ? "local" : resource + (host ? "/" + host->name() : "");
  }
};

/// A full model->host mapping for an experiment graph plus its modeled
/// per-iteration cost — one Assignment per model of the (normalized)
/// Workload, in the same slot order, with the model names and role kinds
/// riding along for display and the role() compatibility accessors.
struct Placement {
  std::vector<Assignment> roles;
  std::vector<Role> kinds;
  std::vector<std::string> names;
  double modeled_seconds_per_iteration = 0.0;

  /// The classic quadruple shape (gravity, hydro, coupler, stellar) — what
  /// hand-built placements and the legacy scenario tables populate.
  Placement();
  /// One empty slot per model of the (normalized) workload's graph.
  explicit Placement(const Workload& load);

  std::size_t size() const noexcept { return roles.size(); }
  int slot_of(Role r) const noexcept;

  /// First slot of the given kernel class — the classic quadruple's
  /// accessor (every classic placement has exactly one of each).
  Assignment& role(Role r);
  const Assignment& role(Role r) const;

  /// One entry per model: "stars=phigrape-gpu@lgm/lgm-node, ..." — shown on
  /// the dashboard next to the measured cost.
  std::string describe() const;
};

/// Adaptive placement scheduler: scores candidate kernel->host assignments
/// against the jungle's discovered resources and network topology, and
/// emits the cheapest feasible Placement for an arbitrary experiment graph
/// (any number of models, not just the classic quadruple). Also the fault
/// path's brain: when a worker dies, exclude what failed and re-place the
/// affected model on the best surviving machine.
///
/// Invariants (tested):
///  - plan() is an exhaustive argmin over the candidate space (graphs too
///    large to enumerate fall back to deterministic coordinate descent),
///    so for classic-sized graphs its modeled cost is <= the modeled cost
///    of any hand-coded placement built from the same resources (in
///    particular the paper's Fig-12 map).
///  - Modeled cost is monotone in link latency and in queue delay.
///  - Excluded hosts/resources never appear in a plan or replacement.
class Scheduler {
 public:
  Scheduler(const sim::Network& net, const sim::Host& client,
            const std::vector<gat::Resource>& resources);

  /// A machine died: its resource keeps its surviving nodes.
  void exclude_host(const std::string& host_name);
  /// A resource became unreachable (link fault): drop it wholesale.
  void exclude_resource(const std::string& resource_name);

  /// Cheapest feasible placement for the workload's graph. Throws
  /// CodeError when a model cannot be placed anywhere.
  Placement plan(const Workload& load) const;
  /// Same, honoring per-slot pins (a pinned slot's assignment is fixed;
  /// empty optionals are planned). `pins` indexes the normalized graph.
  Placement plan(const Workload& load,
                 const std::vector<std::optional<Assignment>>& pins) const;

  /// Re-place one slot after a failure, keeping every other slot pinned.
  /// Accounts for the nodes the surviving models still occupy.
  Assignment replace(const Workload& load, const Placement& current,
                     int slot) const;
  Assignment replace(const Workload& load, const Placement& current,
                     Role failed) const;

  /// Score an externally built placement (e.g. a hard-coded scenario
  /// table): fills the per-slot cost fields and the total, and returns the
  /// total. The placement's slots must match the workload's graph.
  double score(const Workload& load, Placement& placement) const;

  /// Install a measured-vs-modeled compute correction: subsequent plan()/
  /// score()/replace() calls multiply each model's modeled compute seconds
  /// by its calibration scale. The experiment runner feeds this from the
  /// first traced iteration's per-role meters.
  void set_calibration(Calibration calibration) {
    calibration_ = std::move(calibration);
  }
  const Calibration& calibration() const noexcept { return calibration_; }

  /// Name of the resource whose frontend/nodes include `host_name`
  /// ("" when it is the client or unknown).
  std::string resource_of(const std::string& host_name) const;

  bool host_excluded(const std::string& host_name) const {
    return dead_hosts_.count(host_name) != 0;
  }

 private:
  std::vector<Assignment> candidates(const ModelLoad& model) const;
  bool usable(const sim::Host& host) const;
  /// Nodes of `resource` still usable (up, not excluded).
  std::vector<const sim::Host*> live_nodes(const gat::Resource& resource) const;
  bool fits(const Placement& placement) const;
  double score_graph(const Workload& normalized, Placement& placement) const;

  const sim::Network& net_;
  const sim::Host& client_;
  const std::vector<gat::Resource>& resources_;
  std::set<std::string> dead_hosts_;
  std::set<std::string> dead_resources_;
  Calibration calibration_;
};

}  // namespace jungle::sched
