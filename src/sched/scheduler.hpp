#pragma once

#include <array>
#include <set>
#include <string>
#include <vector>

#include "amuse/workers.hpp"
#include "gat/gat.hpp"
#include "sched/model.hpp"
#include "sim/network.hpp"

namespace jungle::sched {

/// The four model kernels of the embedded-cluster simulation, as placement
/// roles. `gravity` and `hydro` evolve concurrently (bridge phase 2);
/// `coupler` sits on the serial coupling path; `stellar` exchanges state
/// every n-th step.
enum class Role : int { gravity = 0, hydro = 1, coupler = 2, stellar = 3 };
inline constexpr int kRoles = 4;
const char* role_name(Role role) noexcept;

/// One kernel -> machine decision: which resource runs it (empty string =
/// the client machine itself, over a local channel), which worker variant
/// (GPU kernels where the host has a GPU), and the modeled per-iteration
/// cost split the dashboard reports.
struct Assignment {
  std::string resource;         // "" == local on the client host
  const sim::Host* host = nullptr;  // representative compute node
  amuse::WorkerSpec spec;
  int nodes = 1;
  double compute_seconds = 0.0;  // modeled, per iteration
  double comm_seconds = 0.0;     // modeled, per iteration
  double queue_seconds = 0.0;    // amortized startup share, per iteration

  bool local() const noexcept { return resource.empty(); }
  std::string where() const {
    return local() ? "local" : resource + (host ? "/" + host->name() : "");
  }
};

/// A full kernel->host mapping plus its modeled per-iteration cost — what
/// scenario::run executes instead of the hard-coded Kind tables.
struct Placement {
  std::array<Assignment, kRoles> roles;
  double modeled_seconds_per_iteration = 0.0;

  Assignment& role(Role r) { return roles[static_cast<int>(r)]; }
  const Assignment& role(Role r) const { return roles[static_cast<int>(r)]; }

  /// One line per role: "gravity=phigrape-gpu@lgm/lgm-node ..." — shown on
  /// the dashboard next to the measured cost.
  std::string describe() const;
};

/// Adaptive placement scheduler: scores candidate kernel->host assignments
/// against the jungle's discovered resources and network topology, and
/// emits the cheapest feasible Placement. Also the fault path's brain: when
/// a worker dies, exclude what failed and re-place the affected role on the
/// best surviving machine.
///
/// Invariants (tested):
///  - plan() is an exhaustive argmin over the candidate space, so its
///    modeled cost is <= the modeled cost of any hand-coded placement
///    built from the same resources (in particular the paper's Fig-12 map).
///  - Modeled cost is monotone in link latency and in queue delay.
///  - Excluded hosts/resources never appear in a plan or replacement.
class Scheduler {
 public:
  Scheduler(const sim::Network& net, const sim::Host& client,
            const std::vector<gat::Resource>& resources);

  /// A machine died: its resource keeps its surviving nodes.
  void exclude_host(const std::string& host_name);
  /// A resource became unreachable (link fault): drop it wholesale.
  void exclude_resource(const std::string& resource_name);

  /// Cheapest feasible placement for the workload. Throws CodeError when a
  /// role cannot be placed anywhere.
  Placement plan(const Workload& load) const;

  /// Re-place one role after a failure, keeping every other role pinned.
  /// Accounts for the nodes the surviving roles still occupy.
  Assignment replace(const Workload& load, const Placement& current,
                     Role failed) const;

  /// Score an externally built placement (e.g. a hard-coded Kind table):
  /// fills the per-role cost fields and the total, and returns the total.
  double score(const Workload& load, Placement& placement) const;

  /// Name of the resource whose frontend/nodes include `host_name`
  /// ("" when it is the client or unknown).
  std::string resource_of(const std::string& host_name) const;

  bool host_excluded(const std::string& host_name) const {
    return dead_hosts_.count(host_name) != 0;
  }

 private:
  std::vector<Assignment> candidates(Role role, const Workload& load) const;
  bool usable(const sim::Host& host) const;
  /// Nodes of `resource` still usable (up, not excluded).
  std::vector<const sim::Host*> live_nodes(const gat::Resource& resource) const;
  bool fits(const Placement& placement) const;

  const sim::Network& net_;
  const sim::Host& client_;
  const std::vector<gat::Resource>& resources_;
  std::set<std::string> dead_hosts_;
  std::set<std::string> dead_resources_;
};

}  // namespace jungle::sched
