#include "sched/model.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/bhtree.hpp"
#include "kernels/hermite.hpp"
#include "kernels/sph.hpp"
#include "smartsockets/connection.hpp"

namespace jungle::sched {

static_assert(LinkCost::kMaxStreams == smartsockets::kMaxStripes,
              "model must price the stripe counts the transport uses");

double LinkCost::call_seconds(double bytes) const {
  if (!reachable || bandwidth_Bps <= 0.0) return 1e18;  // effectively never
  int streams = std::clamp(smartsockets::stripe_count(bytes), 1, kMaxStreams);
  double bandwidth = bandwidth_by_streams[streams - 1];
  if (bandwidth <= 0.0) bandwidth = bandwidth_Bps;
  return rtt_s + bytes / bandwidth;
}

LinkCost link_between(const sim::Network& net, const sim::Host& client,
                      const sim::Host& host) {
  LinkCost link;
  link.bandwidth_Bps = net.path_bandwidth(client, host);
  if (link.bandwidth_Bps <= 0.0) {
    link.reachable = false;
    return link;
  }
  for (int streams = 1; streams <= LinkCost::kMaxStreams; ++streams) {
    link.bandwidth_by_streams[streams - 1] =
        net.path_bandwidth(client, host, streams);
  }
  link.rtt_s = net.rtt(client, host);
  // Hosts we cannot connect to directly are reached through the hub
  // overlay (ssh tunnels of Fig 10): same wire, extra forwarding hop.
  link.tunneled = !net.can_connect(client, host);
  if (link.tunneled) link.rtt_s *= kTunnelRttFactor;
  return link;
}

DatapathBytes datapath_bytes(const Workload& load) {
  double n_s = static_cast<double>(load.n_stars);
  double n_g = static_cast<double>(load.n_gas);
  DatapathBytes bytes;
  // A post-evolve state fetch ships the changed positions (mass unchanged,
  // velocities not requested by the coupling mask): 24 B/particle + span
  // framing, on top of the per-call overhead.
  bytes.grav_state_fetch = kCallOverheadBytes + n_s * 24.0;
  bytes.hydro_state_fetch = kCallOverheadBytes + n_g * 24.0;
  // The post-evolve coupler queries upload both directions' fresh inputs:
  // gas sources (mass+pos) + star points, star sources + gas points.
  bytes.coupler_upload = 2.0 * kCallOverheadBytes + (n_g * 32.0 + n_s * 24.0) +
                         (n_s * 32.0 + n_g * 24.0);
  bytes.coupler_reply = (n_s + n_g) * 24.0;
  bytes.grav_kick = kCallOverheadBytes + n_s * 24.0;
  bytes.hydro_kick = kCallOverheadBytes + n_g * 24.0;
  bytes.idle_call = kCallOverheadBytes;
  return bytes;
}

double tree_interactions_per_target(std::size_t n_sources) {
  double n = static_cast<double>(std::max<std::size_t>(n_sources, 2));
  return kTreeInteractionsPerTargetLog * std::log2(n);
}

double device_rate_flops(const sim::Host& host, bool gpu, int ncores) {
  if (gpu) {
    return host.gpu() ? host.gpu()->gflops * 1e9 : 0.0;
  }
  int used = std::clamp(ncores, 1, host.cores());
  return host.cpu_gflops_per_core() * 1e9 * used;
}

double gravity_compute_seconds(const Workload& load, double rate) {
  if (rate <= 0.0) return 1e18;
  double n = static_cast<double>(load.n_stars);
  double substeps = std::max(1.0, load.dt * kGravSubstepsPerTime);
  return substeps * n * n * kernels::HermiteIntegrator::kFlopsPerPair / rate;
}

double coupler_compute_seconds(const Workload& load, double rate) {
  if (rate <= 0.0) return 1e18;
  double n_s = static_cast<double>(load.n_stars);
  double n_g = static_cast<double>(load.n_gas);
  // Per cross_kick: rebuild both source trees, evaluate the field of the
  // gas at the stars and vice versa; two cross_kicks per iteration.
  double build = (n_s + n_g) * kernels::BarnesHutTree::kBuildFlopsPerParticle;
  double interactions =
      n_s * tree_interactions_per_target(load.n_gas) +
      n_g * tree_interactions_per_target(load.n_stars);
  double flops =
      2.0 * (build +
             interactions * kernels::BarnesHutTree::kFlopsPerInteraction);
  return flops / rate;
}

double stellar_compute_seconds(const Workload& load, double rate) {
  if (!load.with_stellar_evolution) return 0.0;
  if (rate <= 0.0) return 1e18;
  double per_exchange = static_cast<double>(load.n_stars) * 500.0;
  return per_exchange / rate / std::max(1, load.se_every);
}

double hydro_compute_seconds(const Workload& load, double rate, int nranks,
                             const LinkCost& interconnect) {
  if (rate <= 0.0) return 1e18;
  double n = static_cast<double>(load.n_gas);
  double substeps = std::max(1.0, load.dt * kSphSubstepsPerTime);
  double per_substep =
      n * kSphNeighbours * kernels::SphSystem::kFlopsPerNeighbour +
      n * tree_interactions_per_target(load.n_gas) *
          kernels::SphSystem::kFlopsPerTreeInteraction +
      n * kernels::BarnesHutTree::kBuildFlopsPerParticle;
  double ranks = std::max(1, nranks);
  double compute = substeps * per_substep / (rate * ranks);
  if (nranks <= 1) return compute;
  // Replicated-data slice exchanges per substep: density, positions,
  // velocities allgathers plus a barrier, over the cluster interconnect.
  double exchange_bytes = n * (8.0 + 24.0 + 24.0);
  double per_exchange =
      exchange_bytes / std::max(interconnect.bandwidth_Bps, 1.0) +
      interconnect.rtt_s * std::log2(ranks + 1.0);
  return compute + substeps * 3.0 * per_exchange;
}

}  // namespace jungle::sched
