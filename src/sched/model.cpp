#include "sched/model.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/bhtree.hpp"
#include "kernels/hermite.hpp"
#include "kernels/sph.hpp"
#include "smartsockets/connection.hpp"

namespace jungle::sched {

static_assert(LinkCost::kMaxStreams == smartsockets::kMaxStripes,
              "model must price the stripe counts the transport uses");

double LinkCost::call_seconds(double bytes) const {
  if (!reachable || bandwidth_Bps <= 0.0) return 1e18;  // effectively never
  int streams = std::clamp(smartsockets::stripe_count(bytes), 1, kMaxStreams);
  double bandwidth = bandwidth_by_streams[streams - 1];
  if (bandwidth <= 0.0) bandwidth = bandwidth_Bps;
  return rtt_s + bytes / bandwidth;
}

LinkCost link_between(const sim::Network& net, const sim::Host& client,
                      const sim::Host& host) {
  LinkCost link;
  link.bandwidth_Bps = net.path_bandwidth(client, host);
  if (link.bandwidth_Bps <= 0.0) {
    link.reachable = false;
    return link;
  }
  for (int streams = 1; streams <= LinkCost::kMaxStreams; ++streams) {
    link.bandwidth_by_streams[streams - 1] =
        net.path_bandwidth(client, host, streams);
  }
  link.rtt_s = net.rtt(client, host);
  // Hosts we cannot connect to directly are reached through the hub
  // overlay (ssh tunnels of Fig 10): same wire, extra forwarding hop.
  link.tunneled = !net.can_connect(client, host);
  if (link.tunneled) link.rtt_s *= kTunnelRttFactor;
  link.fp_truncate = net.path_fp_truncate(client, host);
  return link;
}

Workload Workload::normalized() const {
  Workload load = *this;
  if (!load.models.empty()) return load;
  // The classic embedded-cluster quadruple, in the historic planner's loop
  // nesting order (gravity, hydro, coupler, stellar).
  load.models.push_back({"gravity", Role::gravity, load.n_stars, -1, "", 0});
  load.models.push_back({"hydro", Role::hydro, load.n_gas, -1, "", 0});
  load.models.push_back({"coupler", Role::coupler, 0, -1, "", 0});
  if (load.with_stellar_evolution) {
    load.models.push_back({"stellar", Role::stellar, load.n_stars, 0, "", 0});
  }
  load.couplings.push_back({2, 0, 1, 1});
  return load;
}

double state_fetch_bytes(std::size_t n) {
  // A post-evolve state fetch ships the changed positions (mass unchanged,
  // velocities not requested by the coupling mask): 24 B/particle + span
  // framing, on top of the per-call overhead.
  return kCallOverheadBytes + static_cast<double>(n) * 24.0;
}

double state_fetch_bytes(std::size_t n, bool fp_truncate) {
  if (!fp_truncate) return state_fetch_bytes(n);
  // Positions narrowed to f32 on the wire: 12 B/particle (+ a realign pad
  // absorbed in the call overhead).
  return kCallOverheadBytes + static_cast<double>(n) * 12.0;
}

double ghost_pull_bytes(std::size_t n, int workers) {
  // All shards' owned position+velocity slices (48 B/particle, n total),
  // one concurrent get_state per shard.
  return static_cast<double>(n) * 48.0 +
         static_cast<double>(std::max(1, workers)) * kCallOverheadBytes;
}

double ghost_push_bytes(std::size_t n, int workers, bool fp_truncate) {
  int k = std::max(1, workers);
  if (k == 1) return 0.0;  // one shard owns everything: no ghosts travel
  // Each shard receives its (K-1)/K ghost rows as two contiguous frames:
  // (K-1)*n particles total, positions optionally narrowed to f32.
  double per_particle = fp_truncate ? (12.0 + 24.0) : (24.0 + 24.0);
  return static_cast<double>(k - 1) * static_cast<double>(n) * per_particle +
         2.0 * static_cast<double>(k) * kCallOverheadBytes;
}

double coupling_upload_bytes(std::size_t n_a, std::size_t n_b) {
  // The post-evolve coupler queries upload both directions' fresh inputs:
  // b's sources (mass+pos) + a's points, a's sources + b's points.
  double a = static_cast<double>(n_a);
  double b = static_cast<double>(n_b);
  return 2.0 * kCallOverheadBytes + (b * 32.0 + a * 24.0) +
         (a * 32.0 + b * 24.0);
}

double coupling_reply_bytes(std::size_t n_a, std::size_t n_b) {
  return static_cast<double>(n_a + n_b) * 24.0;
}

double kick_bytes(std::size_t n) {
  return kCallOverheadBytes + kKickHeaderBytes + static_cast<double>(n) * 24.0;
}

DatapathBytes datapath_bytes(const Workload& load) {
  DatapathBytes bytes;
  bytes.grav_state_fetch = state_fetch_bytes(load.n_stars);
  bytes.hydro_state_fetch = state_fetch_bytes(load.n_gas);
  bytes.coupler_upload = coupling_upload_bytes(load.n_stars, load.n_gas);
  bytes.coupler_reply = coupling_reply_bytes(load.n_stars, load.n_gas);
  bytes.grav_kick = kick_bytes(load.n_stars);
  bytes.hydro_kick = kick_bytes(load.n_gas);
  bytes.kick_repeat = kCallOverheadBytes + kKickHeaderBytes;
  bytes.idle_call = kCallOverheadBytes;
  return bytes;
}

double tree_interactions_per_target(std::size_t n_sources) {
  double n = static_cast<double>(std::max<std::size_t>(n_sources, 2));
  return kTreeInteractionsPerTargetLog * std::log2(n);
}

double device_rate_flops(const sim::Host& host, bool gpu, int ncores) {
  if (gpu) {
    return host.gpu() ? host.gpu()->gflops * 1e9 : 0.0;
  }
  int used = std::clamp(ncores, 1, host.cores());
  return host.cpu_gflops_per_core() * 1e9 * used;
}

double gravity_compute_seconds(std::size_t n_stars, double dt, double rate) {
  if (rate <= 0.0) return 1e18;
  double n = static_cast<double>(n_stars);
  double substeps = std::max(1.0, dt * kGravSubstepsPerTime);
  return substeps * n * n * kernels::HermiteIntegrator::kFlopsPerPair / rate;
}

double coupler_compute_seconds(std::size_t n_a, std::size_t n_b,
                               double rate) {
  if (rate <= 0.0) return 1e18;
  double a = static_cast<double>(n_a);
  double b = static_cast<double>(n_b);
  // One recompute of the pair: rebuild both source trees, evaluate the
  // field of b at a's particles and vice versa. (The coupler recomputes
  // once per bridge step — the other cross-kick is a cache hit.)
  double build = (a + b) * kernels::BarnesHutTree::kBuildFlopsPerParticle;
  double interactions = a * tree_interactions_per_target(n_b) +
                        b * tree_interactions_per_target(n_a);
  double flops =
      build + interactions * kernels::BarnesHutTree::kFlopsPerInteraction;
  return flops / rate;
}

double stellar_compute_seconds(std::size_t n, int se_every, double rate) {
  if (rate <= 0.0) return 1e18;
  double per_exchange = static_cast<double>(n) * 500.0;
  return per_exchange / rate / std::max(1, se_every);
}

double hydro_compute_seconds(std::size_t n_gas, double dt, double rate,
                             int nranks, const LinkCost& interconnect) {
  if (rate <= 0.0) return 1e18;
  double n = static_cast<double>(n_gas);
  double substeps = std::max(1.0, dt * kSphSubstepsPerTime);
  double per_substep =
      n * kSphNeighbours * kernels::SphSystem::kFlopsPerNeighbour +
      n * tree_interactions_per_target(n_gas) *
          kernels::SphSystem::kFlopsPerTreeInteraction +
      n * kernels::BarnesHutTree::kBuildFlopsPerParticle;
  double ranks = std::max(1, nranks);
  double compute = substeps * per_substep / (rate * ranks);
  if (nranks <= 1) return compute;
  // Replicated-data slice exchanges per substep: density, positions,
  // velocities allgathers plus a barrier, over the cluster interconnect.
  double exchange_bytes = n * (8.0 + 24.0 + 24.0);
  double per_exchange =
      exchange_bytes / std::max(interconnect.bandwidth_Bps, 1.0) +
      interconnect.rtt_s * std::log2(ranks + 1.0);
  return compute + substeps * 3.0 * per_exchange;
}

}  // namespace jungle::sched
