#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sim/host.hpp"
#include "sim/network.hpp"

namespace jungle::sched {

/// The model-kernel classes the scheduler knows how to place. `gravity`
/// and `hydro` evolve concurrently (bridge phase 2); `coupler` sits on the
/// serial coupling path; `stellar` exchanges state every n-th step.
enum class Role : int { gravity = 0, hydro = 1, coupler = 2, stellar = 3 };
inline constexpr int kRoles = 4;
const char* role_name(Role role) noexcept;

/// One model of an experiment graph, in the numbers the cost model prices.
struct ModelLoad {
  std::string name;
  Role role = Role::gravity;
  std::size_t n = 0;     // particles (gravity/hydro) or stars (stellar)
  int of = -1;           // stellar: index of the gravity model SE feeds
  /// Kernel restriction ("" = any candidate of the role; otherwise only
  /// candidates whose worker code matches, e.g. "phigrape-gpu").
  std::string kernel;
  /// Explicit MPI width for hydro (0 = let the scheduler size it).
  int nranks = 0;
  /// Domain decomposition (gravity only): shard the model across this many
  /// workers, each integrating a contiguous Morton range. Candidates need
  /// that many live CPU nodes on one resource; compute divides by the shard
  /// count and the per-step ghost exchange is priced on the client wire.
  int workers = 1;
};

/// One pairwise coupling of the graph: `field` (an index into models, role
/// coupler) bridges dynamic models `a` and `b` every `every`-th step.
struct CouplingLoad {
  int field = -1;
  int a = -1;
  int b = -1;
  int every = 1;
};

/// What one bridge iteration of an experiment does, in numbers the cost
/// model can price: the model graph (particle counts and coupling shape),
/// the bridge timestep (which sets the kernels' substep counts) and the
/// run length (which sets the horizon queue delays amortize over).
///
/// The legacy scalar fields describe the classic embedded-cluster
/// quadruple; when `models` is empty, normalized() derives that graph from
/// them — which is how pre-experiment callers (and the classic scenario
/// kinds) keep pricing exactly as before.
struct Workload {
  std::size_t n_stars = 1000;
  std::size_t n_gas = 10000;
  double dt = 1.0 / 32.0;
  int iterations = 2;
  bool with_stellar_evolution = true;
  int se_every = 4;

  std::vector<ModelLoad> models;
  std::vector<CouplingLoad> couplings;

  /// A copy whose graph is populated: the declared graph verbatim, or the
  /// classic gravity/hydro/coupler/stellar quadruple built from the scalar
  /// fields (slot order matches the historic planner's loop nesting).
  Workload normalized() const;
};

// ---- calibration constants (see DESIGN.md, "Placement cost model") ----
// Substep counts per unit of N-body time, matching the kernels' observed
// behaviour at the embedded-cluster scales (eta=0.02, standard Courant).
inline constexpr double kGravSubstepsPerTime = 256.0;
inline constexpr double kSphSubstepsPerTime = 64.0;
/// SPH neighbour count the density/force loops touch per particle.
inline constexpr double kSphNeighbours = 32.0;
/// Barnes-Hut interactions per target scale ~ c * log2(n_sources) at
/// theta=0.6; this is c.
inline constexpr double kTreeInteractionsPerTargetLog = 28.0;
/// Placement decisions are made for production runs (the paper's runs last
/// "about half a day"), so one-time costs — queue decisions, file staging —
/// amortize over at least this many iterations even when the measured run
/// is shorter.
inline constexpr double kAmortizeIterationsFloor = 64.0;
/// Traffic that cannot connect directly (firewall/NAT) detours through the
/// SmartSockets hub overlay; one extra store-and-forward hop ~ 1.5x the
/// direct round-trip.
inline constexpr double kTunnelRttFactor = 1.5;
/// Nominal input-file staging per deployed worker (matches the daemon's
/// JobDescription::stage_in_bytes).
inline constexpr double kStageInBytes = 1e6;

/// Wire characteristics between the coupling script and a worker host, with
/// the NAT/inbound detour folded in. All scheduler communication costs are
/// priced through this.
struct LinkCost {
  static constexpr int kMaxStreams = 8;  // == smartsockets::kMaxStripes

  double rtt_s = 0.0;
  double bandwidth_Bps = 0.0;
  /// Path throughput when a transfer rides 1..kMaxStreams parallel streams
  /// (per-stream caps on long fat links aggregate — smartsockets
  /// striping). bandwidth_by_streams[0] == bandwidth_Bps.
  std::array<double, kMaxStreams> bandwidth_by_streams{};
  bool tunneled = false;
  bool reachable = true;
  /// The path crosses a link flagged `fp_truncate`: position arrays travel
  /// as f32 (12 B/particle instead of 24 B) — state fetches and ghost
  /// pushes are priced at the narrowed volume.
  bool fp_truncate = false;

  /// Duration of one synchronous RPC moving `bytes` (request + reply),
  /// priced at the stripe count the transport would actually use for this
  /// payload (smartsockets::stripe_count).
  double call_seconds(double bytes) const;
};

/// Measure the path client->host (rtt, bottleneck bandwidth, tunneling).
LinkCost link_between(const sim::Network& net, const sim::Host& client,
                      const sim::Host& host);

// ---- per-iteration wire volume of the pipelined delta data path ----
// The communication term prices what the overhauled path actually ships
// (measured against scenario runs: see DESIGN.md "Wide-area data path"),
// not the naive full-state volumes. One bridge step runs two cross-kicks:
// the post-evolve one moves changed positions, fresh coupler sources/points
// and fresh accel+dt kicks; the post-kick one is all cache hits —
// header-only RPCs and 16-byte kick repeats.

/// Fixed per-RPC overhead: frame header (16 bytes each direction, with the
/// trace span id) + connection framing + the delta bookkeeping fields
/// (ids/masks) of a state exchange.
inline constexpr double kCallOverheadBytes = 120.0;
/// Payload of a kick frame beyond the accel span: [u64 flags][f64 dt].
inline constexpr double kKickHeaderBytes = 16.0;

// Per-call payload volumes, mirroring the frame layouts in
// amuse/clients.cpp. `n_a`/`n_b` are the two coupled systems' sizes.
double state_fetch_bytes(std::size_t n);                    // changed positions
/// Same fetch when the path opted into f32 truncation (12 B/particle).
double state_fetch_bytes(std::size_t n, bool fp_truncate);
double coupling_upload_bytes(std::size_t n_a, std::size_t n_b);
double coupling_reply_bytes(std::size_t n_a, std::size_t n_b);
double kick_bytes(std::size_t n);                           // accel + dt

struct DatapathBytes {
  double grav_state_fetch = 0;   // changed star positions after an evolve
  double hydro_state_fetch = 0;  // changed gas positions after an evolve
  double coupler_upload = 0;     // both directions' sources + points
  double coupler_reply = 0;      // both directions' accelerations
  double grav_kick = 0;          // fresh accel + dt
  double hydro_kick = 0;
  double kick_repeat = 0;        // unchanged accel: flags + dt only
  double idle_call = 0;          // header-only RPC (cache hit)
};

/// Payload-per-call volumes of one steady-state bridge iteration of the
/// classic embedded-cluster graph.
DatapathBytes datapath_bytes(const Workload& load);

/// Per-iteration ghost-exchange wire volume of a `workers`-shard gravity
/// model, both halves priced on the coordinating client's wire: the pull
/// (every shard's owned position+velocity slice, n particles total) and the
/// push (each shard's (K-1)/K ghost rows, (K-1)*n particles total, with
/// positions narrowed when the path opted into f32 truncation).
double ghost_pull_bytes(std::size_t n, int workers);
double ghost_push_bytes(std::size_t n, int workers, bool fp_truncate);

/// Mean Barnes-Hut interactions per evaluation point against `n_sources`.
double tree_interactions_per_target(std::size_t n_sources);

/// Effective device rate in flops/second for a kernel charged to `host`
/// (paper device model: effective rates, not peaks). GPU rates ignore
/// `ncores`; throws nothing — a missing GPU yields 0 (infeasible).
double device_rate_flops(const sim::Host& host, bool gpu, int ncores);

// Per-iteration *compute* seconds of each model kernel on a device of
// `rate` flops/s. The formulas mirror the flop charges in amuse/workers.cpp.
double gravity_compute_seconds(std::size_t n, double dt, double rate);
/// One cross-gravity recompute between systems of `n_a` and `n_b`
/// particles: rebuild both source trees, evaluate both directions. The
/// coupler recomputes once per bridge step (the other cross-kick is a
/// cache hit).
double coupler_compute_seconds(std::size_t n_a, std::size_t n_b, double rate);
double stellar_compute_seconds(std::size_t n, int se_every, double rate);
/// `nranks` partitions the SPH phases; `interconnect` prices the slice
/// exchanges between ranks (the resource's LAN, or loopback when single).
double hydro_compute_seconds(std::size_t n, double dt, double rate,
                             int nranks, const LinkCost& interconnect);

/// Measured-vs-modeled compute correction, fed back from the first traced
/// iteration: per-model multipliers the scorer applies to its modeled
/// compute seconds (the substep-count formulas above systematically
/// underestimate the kernels' adaptive stepping). Scales clamp to
/// [1/64, 64] so one bad measurement cannot wedge the planner.
struct Calibration {
  static constexpr double kMinScale = 1.0 / 64.0;
  static constexpr double kMaxScale = 64.0;

  std::map<std::string, double> compute_scale;  // model name -> multiplier

  bool empty() const noexcept { return compute_scale.empty(); }
  void set_scale(const std::string& model, double scale) {
    if (!(scale > 0.0)) return;  // reject nonsense (<=0, NaN)
    compute_scale[model] = std::clamp(scale, kMinScale, kMaxScale);
  }
  double scale_for(const std::string& model) const noexcept {
    auto it = compute_scale.find(model);
    return it != compute_scale.end() ? it->second : 1.0;
  }
};

}  // namespace jungle::sched
