#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "amuse/faultpoint.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace jungle::sched {

const char* role_name(Role role) noexcept {
  switch (role) {
    case Role::gravity: return "gravity";
    case Role::hydro: return "hydro";
    case Role::coupler: return "coupler";
    case Role::stellar: return "stellar";
  }
  return "?";
}

Placement::Placement() {
  // The classic quadruple shape, for hand-built placements and the legacy
  // scenario tables.
  kinds = {Role::gravity, Role::hydro, Role::coupler, Role::stellar};
  for (Role kind : kinds) names.push_back(role_name(kind));
  roles.resize(kinds.size());
}

Placement::Placement(const Workload& load) {
  Workload normal = load.normalized();
  for (const ModelLoad& model : normal.models) {
    kinds.push_back(model.role);
    names.push_back(model.name);
  }
  roles.resize(kinds.size());
}

int Placement::slot_of(Role r) const noexcept {
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (kinds[i] == r) return static_cast<int>(i);
  }
  return -1;
}

Assignment& Placement::role(Role r) {
  int slot = slot_of(r);
  if (slot < 0) {
    throw CodeError(std::string("placement has no ") + role_name(r) +
                    " slot");
  }
  return roles[static_cast<std::size_t>(slot)];
}

const Assignment& Placement::role(Role r) const {
  return const_cast<Placement*>(this)->role(r);
}

std::string Placement::describe() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < roles.size(); ++i) {
    const Assignment& a = roles[i];
    if (i) out << ", ";
    out << (i < names.size() ? names[i] : "?") << "=" << a.spec.code;
    if (a.spec.nranks > 1) out << "[" << a.spec.nranks << "]";
    out << "@" << a.where();
  }
  return out.str();
}

Scheduler::Scheduler(const sim::Network& net, const sim::Host& client,
                     const std::vector<gat::Resource>& resources)
    : net_(net), client_(client), resources_(resources) {}

void Scheduler::exclude_host(const std::string& host_name) {
  dead_hosts_.insert(host_name);
}

void Scheduler::exclude_resource(const std::string& resource_name) {
  dead_resources_.insert(resource_name);
}

bool Scheduler::usable(const sim::Host& host) const {
  return host.is_up() && dead_hosts_.count(host.name()) == 0;
}

std::vector<const sim::Host*> Scheduler::live_nodes(
    const gat::Resource& resource) const {
  std::vector<const sim::Host*> live;
  for (const sim::Host* node : resource.compute_hosts()) {
    if (node != nullptr && usable(*node)) live.push_back(node);
  }
  return live;
}

std::string Scheduler::resource_of(const std::string& host_name) const {
  for (const gat::Resource& resource : resources_) {
    if (resource.frontend != nullptr &&
        resource.frontend->name() == host_name) {
      return resource.name;
    }
    for (const sim::Host* node : resource.nodes) {
      if (node != nullptr && node->name() == host_name) return resource.name;
    }
  }
  return "";
}

namespace {

amuse::WorkerSpec gravity_spec(bool gpu) {
  amuse::WorkerSpec spec;
  spec.code = gpu ? "phigrape-gpu" : "phigrape";
  if (!gpu) spec.ncores = 2;
  return spec;
}

amuse::WorkerSpec coupler_spec(bool gpu) {
  amuse::WorkerSpec spec;
  spec.code = gpu ? "octgrav" : "fi";
  if (!gpu) spec.ncores = 2;
  return spec;
}

amuse::WorkerSpec hydro_spec(int nranks, int ncores) {
  amuse::WorkerSpec spec;
  spec.code = "gadget";
  spec.nranks = nranks;
  spec.ncores = ncores;
  return spec;
}

const sim::Host* first_gpu(const std::vector<const sim::Host*>& nodes) {
  for (const sim::Host* node : nodes) {
    if (node->gpu()) return node;
  }
  return nullptr;
}

/// Representative node for a CPU kernel: a non-GPU node when the resource
/// has one (the queue keeps GPU nodes for GPU jobs — see
/// ClusterQueue::free_matching).
const sim::Host* first_cpu(const std::vector<const sim::Host*>& nodes) {
  for (const sim::Host* node : nodes) {
    if (!node->gpu()) return node;
  }
  return nodes.front();
}

/// Couplings a slot participates in fire at most every `every`-th step;
/// its wire volume scales by the highest frequency among them.
double coupling_weight(int every) { return 1.0 / std::max(1, every); }

}  // namespace

std::vector<Assignment> Scheduler::candidates(const ModelLoad& model) const {
  std::vector<Assignment> options;
  auto add = [&](const std::string& resource, const sim::Host* host,
                 amuse::WorkerSpec spec, int nodes) {
    if (!model.kernel.empty() && model.kernel != "auto" &&
        spec.code != model.kernel) {
      return;
    }
    Assignment a;
    a.resource = resource;
    a.host = host;
    a.spec = std::move(spec);
    a.nodes = nodes;
    options.push_back(std::move(a));
  };

  // The client machine itself, over a local channel (no deployment). A
  // sharded gravity model wants K distinct nodes — the client box offers no
  // parallelism to shard over, so it is not a candidate (a pin can still
  // force it for testing).
  if (usable(client_)) {
    switch (model.role) {
      case Role::gravity:
        if (model.workers <= 1) {
          add("", &client_, gravity_spec(client_.gpu().has_value()), 1);
        }
        break;
      case Role::coupler:
        add("", &client_, coupler_spec(client_.gpu().has_value()), 1);
        break;
      case Role::hydro:
        add("", &client_, hydro_spec(model.nranks > 0 ? model.nranks : 2, 1),
            1);
        break;
      case Role::stellar:
        add("", &client_, amuse::WorkerSpec{.code = "sse"}, 1);
        break;
    }
  }

  for (const gat::Resource& resource : resources_) {
    if (dead_resources_.count(resource.name)) continue;
    // Jobs submit through the frontend: a dead one strands its nodes.
    if (resource.frontend != nullptr && !usable(*resource.frontend)) continue;
    // ... and one the client cannot even ssh to (NAT'd edge box) cannot
    // receive a deployment at all — no adapter will reach it.
    if (resource.frontend != nullptr &&
        !net_.can_ssh(client_, *resource.frontend)) {
      continue;
    }
    std::vector<const sim::Host*> live = live_nodes(resource);
    if (live.empty()) continue;
    switch (model.role) {
      case Role::gravity:
      case Role::coupler: {
        if (model.role == Role::gravity && model.workers > 1) {
          // Domain decomposition: K plain phigrape shards on K distinct CPU
          // nodes of one resource. LAN-dense resources (many live nodes,
          // short intra-site hops) are the natural winners — co-location
          // keeps every shard one queue away and the ghost all-to-all on
          // one wire.
          if (static_cast<int>(live.size()) >= model.workers) {
            add(resource.name, first_cpu(live), gravity_spec(false),
                model.workers);
          }
          break;
        }
        auto spec_for =
            model.role == Role::gravity ? gravity_spec : coupler_spec;
        if (const sim::Host* gpu_node = first_gpu(live)) {
          add(resource.name, gpu_node, spec_for(true), 1);
        }
        add(resource.name, first_cpu(live), spec_for(false), 1);
        break;
      }
      case Role::hydro: {
        if (live.size() >= 2) {
          int nodes = static_cast<int>(std::min<std::size_t>(live.size(), 8));
          if (model.nranks > 0) {
            nodes = std::min(nodes, model.nranks);
          }
          add(resource.name, first_cpu(live), hydro_spec(nodes, 2), nodes);
        } else {
          // A single live node runs one rank regardless of the requested
          // width (there is nothing to partition over).
          add(resource.name, live.front(), hydro_spec(1, 2), 1);
        }
        break;
      }
      case Role::stellar:
        add(resource.name, first_cpu(live), amuse::WorkerSpec{.code = "sse"},
            1);
        break;
    }
  }
  return options;
}

bool Scheduler::fits(const Placement& placement) const {
  std::map<std::string, int> nodes_used;
  std::map<std::string, int> gpus_used;
  for (const Assignment& a : placement.roles) {
    if (a.local()) continue;
    nodes_used[a.resource] += a.nodes;
    if (a.spec.needs_gpu()) ++gpus_used[a.resource];
  }
  for (const auto& [name, used] : nodes_used) {
    const gat::Resource* resource = nullptr;
    for (const gat::Resource& r : resources_) {
      if (r.name == name) resource = &r;
    }
    if (resource == nullptr || dead_resources_.count(name)) return false;
    std::vector<const sim::Host*> live = live_nodes(*resource);
    if (used > static_cast<int>(live.size())) return false;
    int gpus = 0;
    for (const sim::Host* node : live) {
      if (node->gpu()) ++gpus;
    }
    if (gpus_used[name] > gpus) return false;
  }
  return true;
}

double Scheduler::score(const Workload& load, Placement& placement) const {
  Workload normal = load.normalized();
  if (placement.roles.size() != normal.models.size()) {
    throw CodeError("sched: placement has " +
                    std::to_string(placement.roles.size()) +
                    " slots for a graph of " +
                    std::to_string(normal.models.size()) + " models");
  }
  return score_graph(normal, placement);
}

double Scheduler::score_graph(const Workload& load,
                              Placement& placement) const {
  const std::vector<ModelLoad>& models = load.models;
  int slots = static_cast<int>(models.size());

  std::vector<LinkCost> wire(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    const Assignment& a = placement.roles[static_cast<std::size_t>(i)];
    wire[static_cast<std::size_t>(i)] =
        a.host != nullptr ? link_between(net_, client_, *a.host)
                          : LinkCost{.reachable = false};
  }
  auto rate = [&](int i) {
    const Assignment& a = placement.roles[static_cast<std::size_t>(i)];
    return a.host != nullptr
               ? device_rate_flops(*a.host, a.spec.needs_gpu(), a.spec.ncores)
               : 0.0;
  };
  for (Assignment& a : placement.roles) {
    a.compute_seconds = 0.0;
    a.comm_seconds = 0.0;
    a.queue_seconds = 0.0;
  }

  // --- evolve phase: all dynamic models advance concurrently (Fig 7) ---
  double evolve = 0.0;
  for (int i = 0; i < slots; ++i) {
    const ModelLoad& model = models[static_cast<std::size_t>(i)];
    Assignment& a = placement.roles[static_cast<std::size_t>(i)];
    double ghost_seconds = 0.0;
    if (model.role == Role::gravity) {
      int workers = std::max(1, model.workers);
      a.compute_seconds = calibration_.scale_for(model.name) *
                          gravity_compute_seconds(model.n, load.dt, rate(i)) /
                          workers;
      if (workers > 1) {
        // The ghost exchange rides the coordinating client's wire every
        // step, serialized before the evolve fan-out: pull all owned
        // slices, push every shard its ghost rows.
        const LinkCost& link = wire[static_cast<std::size_t>(i)];
        ghost_seconds =
            link.call_seconds(ghost_pull_bytes(model.n, workers)) +
            link.call_seconds(
                ghost_push_bytes(model.n, workers, link.fp_truncate));
        a.comm_seconds += ghost_seconds;
      }
    } else if (model.role == Role::hydro) {
      LinkCost interconnect{};
      if (a.host != nullptr) {
        // Ranks sharing one machine exchange slices over loopback; a
        // cluster job pays the path between two of the resource's nodes
        // (its LAN).
        interconnect = link_between(net_, *a.host, *a.host);
        if (!a.local() && a.nodes > 1) {
          for (const gat::Resource& r : resources_) {
            if (r.name != a.resource) continue;
            auto nodes = r.compute_hosts();
            if (nodes.size() >= 2) {
              interconnect = link_between(net_, *nodes[0], *nodes[1]);
            }
          }
        }
      }
      a.compute_seconds =
          calibration_.scale_for(model.name) *
          hydro_compute_seconds(model.n, load.dt, rate(i), a.spec.nranks,
                                interconnect);
    } else {
      continue;
    }
    evolve = std::max(evolve, ghost_seconds + a.compute_seconds +
                                  wire[static_cast<std::size_t>(i)].rtt_s);
  }

  // --- coupling phases: the pipelined cross-kick, twice per step ---
  // Each phase (state fetch, field queries, kicks) issues every system's
  // calls as concurrent futures: one round trip per phase, with couplings
  // sharing a field worker adding their bytes on its wire. The post-kick
  // cross-kick is all delta-cache hits — header-only RPCs and 16-byte kick
  // repeats — while the post-evolve one moves the changed positions, fresh
  // field inputs and fresh accel+dt kicks. Couplings with a slower cadence
  // weigh in at their firing frequency.
  double coupling = 0.0;
  if (!load.couplings.empty()) {
    // Highest firing frequency per dynamic slot, 0 when uncoupled.
    std::vector<double> freq(static_cast<std::size_t>(slots), 0.0);
    for (const CouplingLoad& c : load.couplings) {
      double w = coupling_weight(c.every);
      freq[static_cast<std::size_t>(c.a)] =
          std::max(freq[static_cast<std::size_t>(c.a)], w);
      freq[static_cast<std::size_t>(c.b)] =
          std::max(freq[static_cast<std::size_t>(c.b)], w);
    }

    double fetch_fresh = 0.0, kick_fresh = 0.0;
    double fetch_idle = 0.0, kick_idle = 0.0;
    for (int i = 0; i < slots; ++i) {
      if (freq[static_cast<std::size_t>(i)] <= 0.0) continue;
      const ModelLoad& model = models[static_cast<std::size_t>(i)];
      const LinkCost& link = wire[static_cast<std::size_t>(i)];
      double w = freq[static_cast<std::size_t>(i)];
      double fetch =
          link.call_seconds(state_fetch_bytes(model.n, link.fp_truncate));
      double kick = link.call_seconds(kick_bytes(model.n));
      double idle = link.call_seconds(kCallOverheadBytes);
      double repeat =
          link.call_seconds(kCallOverheadBytes + kKickHeaderBytes);
      fetch_fresh = std::max(fetch_fresh, w * fetch);
      kick_fresh = std::max(kick_fresh, w * kick);
      fetch_idle = std::max(fetch_idle, w * idle);
      kick_idle = std::max(kick_idle, w * repeat);
      Assignment& a = placement.roles[static_cast<std::size_t>(i)];
      a.comm_seconds += w * (fetch + kick + idle + repeat) + link.rtt_s;
    }

    // Field workers answer their couplings' queries concurrently with each
    // other; couplings sharing one field worker serialize on its wire.
    double field_fresh = 0.0, field_idle = 0.0, field_compute = 0.0;
    for (int f = 0; f < slots; ++f) {
      if (models[static_cast<std::size_t>(f)].role != Role::coupler) continue;
      const LinkCost& link = wire[static_cast<std::size_t>(f)];
      double fresh_bytes = 0.0, idle_calls = 0.0, compute = 0.0;
      bool used = false;
      for (const CouplingLoad& c : load.couplings) {
        if (c.field != f) continue;
        used = true;
        double w = coupling_weight(c.every);
        std::size_t n_a = models[static_cast<std::size_t>(c.a)].n;
        std::size_t n_b = models[static_cast<std::size_t>(c.b)].n;
        fresh_bytes +=
            w * (coupling_upload_bytes(n_a, n_b) + coupling_reply_bytes(n_a, n_b));
        idle_calls += w * 2.0;
        compute += w * coupler_compute_seconds(n_a, n_b, rate(f));
      }
      if (!used) continue;
      compute *= calibration_.scale_for(models[static_cast<std::size_t>(f)].name);
      double fresh = link.call_seconds(fresh_bytes);
      double idle = link.call_seconds(idle_calls * kCallOverheadBytes);
      field_fresh = std::max(field_fresh, fresh);
      field_idle = std::max(field_idle, idle);
      field_compute = std::max(field_compute, compute);
      Assignment& a = placement.roles[static_cast<std::size_t>(f)];
      a.compute_seconds = compute;
      a.comm_seconds = fresh + idle;
    }

    coupling = (fetch_fresh + field_fresh + kick_fresh) +
               (fetch_idle + field_idle + kick_idle) + field_compute;
  }

  // --- stellar evolution: every n-th step, small delta exchanges ---
  // A stellar slot only appears in the graph when SE is on (normalized()
  // omits it otherwise), so every one present is priced.
  double stellar = 0.0;
  for (int i = 0; i < slots; ++i) {
    if (models[static_cast<std::size_t>(i)].role != Role::stellar) continue;
    const ModelLoad& model = models[static_cast<std::size_t>(i)];
    Assignment& a = placement.roles[static_cast<std::size_t>(i)];
    double n = static_cast<double>(model.n);
    a.compute_seconds = calibration_.scale_for(model.name) *
                        stellar_compute_seconds(model.n, load.se_every, rate(i));
    const LinkCost& se_link = wire[static_cast<std::size_t>(i)];
    const LinkCost& grav_link =
        model.of >= 0 && model.of < slots
            ? wire[static_cast<std::size_t>(model.of)]
            : se_link;
    // Masses over, masses back, supernovae; one delta state fetch on the
    // gravity side (mass changed by the previous update) + the changed
    // masses out.
    double per_exchange =
        3.0 * se_link.call_seconds(n * 8.0) +
        grav_link.call_seconds(n * 8.0 + kCallOverheadBytes) +
        grav_link.call_seconds(n * 8.0);
    a.comm_seconds = per_exchange / std::max(1, load.se_every);
    stellar += a.comm_seconds + a.compute_seconds;
  }

  // --- one-time costs, amortized over the production horizon ---
  double horizon =
      std::max(static_cast<double>(load.iterations), kAmortizeIterationsFloor);
  double queue_total = 0.0;
  for (int i = 0; i < slots; ++i) {
    Assignment& a = placement.roles[static_cast<std::size_t>(i)];
    a.queue_seconds = 0.0;
    if (a.local()) continue;
    for (const gat::Resource& r : resources_) {
      if (r.name != a.resource) continue;
      double startup =
          r.queue_base_delay +
          kStageInBytes /
              std::max(wire[static_cast<std::size_t>(i)].bandwidth_Bps, 1.0);
      a.queue_seconds = startup / horizon;
    }
    queue_total += a.queue_seconds;
  }

  placement.modeled_seconds_per_iteration =
      evolve + coupling + stellar + queue_total;
  return placement.modeled_seconds_per_iteration;
}

Placement Scheduler::plan(const Workload& load) const {
  return plan(load, {});
}

Placement Scheduler::plan(
    const Workload& load,
    const std::vector<std::optional<Assignment>>& pins) const {
  Workload normal = load.normalized();
  std::size_t slots = normal.models.size();
  if (!pins.empty() && pins.size() != slots) {
    throw CodeError("sched: pin vector does not match the model graph");
  }

  // Candidate set per slot (a pinned slot has exactly its pin).
  std::vector<std::vector<Assignment>> options(slots);
  double combinations = 1.0;
  for (std::size_t i = 0; i < slots; ++i) {
    if (i < pins.size() && pins[i].has_value()) {
      options[i] = {*pins[i]};
    } else {
      options[i] = candidates(normal.models[i]);
    }
    if (options[i].empty()) {
      throw CodeError("sched: no feasible placement for model '" +
                      normal.models[i].name + "'");
    }
    combinations *= static_cast<double>(options[i].size());
  }

  Placement best(normal);
  double best_cost = std::numeric_limits<double>::infinity();
  bool found = false;
  Placement trial(normal);

  // Exhaustive argmin when the product space is small (the classic
  // quadruple and every few-model experiment); deterministic coordinate
  // descent for graphs too large to enumerate.
  constexpr double kExhaustiveLimit = 200000.0;
  if (combinations <= kExhaustiveLimit) {
    std::vector<std::size_t> pick(slots, 0);
    auto evaluate = [&] {
      for (std::size_t i = 0; i < slots; ++i) trial.roles[i] = options[i][pick[i]];
      if (!fits(trial)) return;
      double cost = score_graph(normal, trial);
      if (cost < best_cost) {
        best = trial;
        best_cost = cost;
        found = true;
      }
    };
    // Odometer enumeration in slot-major order (the historic nested-loop
    // order for the classic quadruple, so tie-breaking is unchanged).
    while (true) {
      evaluate();
      std::size_t slot = slots;
      while (slot > 0) {
        --slot;
        if (++pick[slot] < options[slot].size()) break;
        pick[slot] = 0;
        if (slot == 0) {
          slot = slots;  // odometer rolled over: done
          break;
        }
      }
      if (slot == slots) break;
    }
  } else {
    // Greedy seed (first feasible candidate per slot), then coordinate
    // descent until a full pass yields no improvement.
    for (std::size_t i = 0; i < slots; ++i) trial.roles[i] = options[i][0];
    if (fits(trial)) {
      best = trial;
      best_cost = score_graph(normal, best);
      found = true;
    }
    for (int pass = 0; pass < 16; ++pass) {
      bool improved = false;
      for (std::size_t i = 0; i < slots; ++i) {
        for (const Assignment& candidate : options[i]) {
          trial = best;
          trial.roles[i] = candidate;
          if (!fits(trial)) continue;
          double cost = score_graph(normal, trial);
          if (cost < best_cost) {
            best = trial;
            best_cost = cost;
            found = true;
            improved = true;
          }
        }
      }
      if (!improved) break;
    }
  }

  if (!found) {
    throw CodeError("sched: no feasible placement for the workload");
  }
  log::info("sched") << "planned " << best.describe() << " (modeled "
                     << best.modeled_seconds_per_iteration << " s/iter)";
  return best;
}

Assignment Scheduler::replace(const Workload& load, const Placement& current,
                              int slot) const {
  Workload normal = load.normalized();
  if (slot < 0 || static_cast<std::size_t>(slot) >= normal.models.size()) {
    throw CodeError("sched: replace slot out of range");
  }
  // Named re-place step: the fault-schedule explorer injects a second
  // fault exactly here to exercise "death while re-placing the first".
  amuse::faultpoint::reach(
      amuse::faultpoint::Point::recover_replace, -1,
      normal.models[static_cast<std::size_t>(slot)].name);
  Assignment best;
  double best_cost = std::numeric_limits<double>::infinity();
  bool found = false;
  for (const Assignment& candidate :
       candidates(normal.models[static_cast<std::size_t>(slot)])) {
    Placement trial = current;
    trial.roles[static_cast<std::size_t>(slot)] = candidate;
    if (!fits(trial)) continue;
    double cost = score_graph(normal, trial);
    if (cost < best_cost) {
      best = trial.roles[static_cast<std::size_t>(slot)];
      best_cost = cost;
      found = true;
    }
  }
  if (!found) {
    throw CodeError("sched: no feasible replacement for model '" +
                    normal.models[static_cast<std::size_t>(slot)].name + "'");
  }
  log::warn("sched") << "re-placing "
                     << normal.models[static_cast<std::size_t>(slot)].name
                     << " onto " << best.where();
  return best;
}

Assignment Scheduler::replace(const Workload& load, const Placement& current,
                              Role failed) const {
  int slot = current.slot_of(failed);
  if (slot < 0) {
    throw CodeError(std::string("sched: no ") + role_name(failed) +
                    " slot to replace");
  }
  return replace(load, current, slot);
}

}  // namespace jungle::sched
