#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace jungle::sched {

const char* role_name(Role role) noexcept {
  switch (role) {
    case Role::gravity: return "gravity";
    case Role::hydro: return "hydro";
    case Role::coupler: return "coupler";
    case Role::stellar: return "stellar";
  }
  return "?";
}

std::string Placement::describe() const {
  std::ostringstream out;
  for (int i = 0; i < kRoles; ++i) {
    const Assignment& a = roles[i];
    if (i) out << ", ";
    out << role_name(static_cast<Role>(i)) << "=" << a.spec.code;
    if (a.spec.nranks > 1) out << "[" << a.spec.nranks << "]";
    out << "@" << a.where();
  }
  return out.str();
}

Scheduler::Scheduler(const sim::Network& net, const sim::Host& client,
                     const std::vector<gat::Resource>& resources)
    : net_(net), client_(client), resources_(resources) {}

void Scheduler::exclude_host(const std::string& host_name) {
  dead_hosts_.insert(host_name);
}

void Scheduler::exclude_resource(const std::string& resource_name) {
  dead_resources_.insert(resource_name);
}

bool Scheduler::usable(const sim::Host& host) const {
  return host.is_up() && dead_hosts_.count(host.name()) == 0;
}

std::vector<const sim::Host*> Scheduler::live_nodes(
    const gat::Resource& resource) const {
  std::vector<const sim::Host*> live;
  for (const sim::Host* node : resource.compute_hosts()) {
    if (node != nullptr && usable(*node)) live.push_back(node);
  }
  return live;
}

std::string Scheduler::resource_of(const std::string& host_name) const {
  for (const gat::Resource& resource : resources_) {
    if (resource.frontend != nullptr &&
        resource.frontend->name() == host_name) {
      return resource.name;
    }
    for (const sim::Host* node : resource.nodes) {
      if (node != nullptr && node->name() == host_name) return resource.name;
    }
  }
  return "";
}

namespace {

amuse::WorkerSpec gravity_spec(bool gpu) {
  amuse::WorkerSpec spec;
  spec.code = gpu ? "phigrape-gpu" : "phigrape";
  if (!gpu) spec.ncores = 2;
  return spec;
}

amuse::WorkerSpec coupler_spec(bool gpu) {
  amuse::WorkerSpec spec;
  spec.code = gpu ? "octgrav" : "fi";
  if (!gpu) spec.ncores = 2;
  return spec;
}

amuse::WorkerSpec hydro_spec(int nranks, int ncores) {
  amuse::WorkerSpec spec;
  spec.code = "gadget";
  spec.nranks = nranks;
  spec.ncores = ncores;
  return spec;
}

const sim::Host* first_gpu(const std::vector<const sim::Host*>& nodes) {
  for (const sim::Host* node : nodes) {
    if (node->gpu()) return node;
  }
  return nullptr;
}

/// Representative node for a CPU kernel: a non-GPU node when the resource
/// has one (the queue keeps GPU nodes for GPU jobs — see
/// ClusterQueue::free_matching).
const sim::Host* first_cpu(const std::vector<const sim::Host*>& nodes) {
  for (const sim::Host* node : nodes) {
    if (!node->gpu()) return node;
  }
  return nodes.front();
}

}  // namespace

std::vector<Assignment> Scheduler::candidates(Role role,
                                              const Workload& load) const {
  std::vector<Assignment> options;
  auto add = [&](const std::string& resource, const sim::Host* host,
                 amuse::WorkerSpec spec, int nodes) {
    Assignment a;
    a.resource = resource;
    a.host = host;
    a.spec = std::move(spec);
    a.nodes = nodes;
    options.push_back(std::move(a));
  };

  // The client machine itself, over a local channel (no deployment).
  if (usable(client_)) {
    switch (role) {
      case Role::gravity:
        add("", &client_, gravity_spec(client_.gpu().has_value()), 1);
        break;
      case Role::coupler:
        add("", &client_, coupler_spec(client_.gpu().has_value()), 1);
        break;
      case Role::hydro:
        add("", &client_, hydro_spec(2, 1), 1);
        break;
      case Role::stellar:
        add("", &client_, amuse::WorkerSpec{.code = "sse"}, 1);
        break;
    }
  }

  for (const gat::Resource& resource : resources_) {
    if (dead_resources_.count(resource.name)) continue;
    // Jobs submit through the frontend: a dead one strands its nodes.
    if (resource.frontend != nullptr && !usable(*resource.frontend)) continue;
    // ... and one the client cannot even ssh to (NAT'd edge box) cannot
    // receive a deployment at all — no adapter will reach it.
    if (resource.frontend != nullptr &&
        !net_.can_ssh(client_, *resource.frontend)) {
      continue;
    }
    std::vector<const sim::Host*> live = live_nodes(resource);
    if (live.empty()) continue;
    switch (role) {
      case Role::gravity:
      case Role::coupler: {
        auto spec_for = role == Role::gravity ? gravity_spec : coupler_spec;
        if (const sim::Host* gpu_node = first_gpu(live)) {
          add(resource.name, gpu_node, spec_for(true), 1);
        }
        add(resource.name, first_cpu(live), spec_for(false), 1);
        break;
      }
      case Role::hydro: {
        if (live.size() >= 2) {
          int nodes = static_cast<int>(std::min<std::size_t>(live.size(), 8));
          add(resource.name, first_cpu(live), hydro_spec(nodes, 2), nodes);
        } else {
          add(resource.name, live.front(), hydro_spec(1, 2), 1);
        }
        break;
      }
      case Role::stellar:
        add(resource.name, first_cpu(live), amuse::WorkerSpec{.code = "sse"},
            1);
        break;
    }
  }
  (void)load;
  return options;
}

bool Scheduler::fits(const Placement& placement) const {
  std::map<std::string, int> nodes_used;
  std::map<std::string, int> gpus_used;
  for (const Assignment& a : placement.roles) {
    if (a.local()) continue;
    nodes_used[a.resource] += a.nodes;
    if (a.spec.needs_gpu()) ++gpus_used[a.resource];
  }
  for (const auto& [name, used] : nodes_used) {
    const gat::Resource* resource = nullptr;
    for (const gat::Resource& r : resources_) {
      if (r.name == name) resource = &r;
    }
    if (resource == nullptr || dead_resources_.count(name)) return false;
    std::vector<const sim::Host*> live = live_nodes(*resource);
    if (used > static_cast<int>(live.size())) return false;
    int gpus = 0;
    for (const sim::Host* node : live) {
      if (node->gpu()) ++gpus;
    }
    if (gpus_used[name] > gpus) return false;
  }
  return true;
}

double Scheduler::score(const Workload& load, Placement& placement) const {
  double n_s = static_cast<double>(load.n_stars);

  std::array<LinkCost, kRoles> wire;
  for (int i = 0; i < kRoles; ++i) {
    const Assignment& a = placement.roles[i];
    wire[i] = a.host != nullptr ? link_between(net_, client_, *a.host)
                                : LinkCost{.reachable = false};
  }
  auto link = [&](Role r) -> const LinkCost& {
    return wire[static_cast<int>(r)];
  };
  auto rate = [&](Role r) {
    const Assignment& a = placement.role(r);
    return a.host != nullptr
               ? device_rate_flops(*a.host, a.spec.needs_gpu(), a.spec.ncores)
               : 0.0;
  };

  // --- evolve phase: both models advance concurrently (bridge Fig 7) ---
  Assignment& grav = placement.role(Role::gravity);
  Assignment& hydro = placement.role(Role::hydro);
  grav.compute_seconds = gravity_compute_seconds(load, rate(Role::gravity));
  LinkCost interconnect{};
  if (hydro.host != nullptr) {
    // Ranks sharing one machine exchange slices over loopback; a cluster
    // job pays the path between two of the resource's nodes (its LAN).
    interconnect = link_between(net_, *hydro.host, *hydro.host);
    if (!hydro.local() && hydro.nodes > 1) {
      for (const gat::Resource& r : resources_) {
        if (r.name != hydro.resource) continue;
        auto nodes = r.compute_hosts();
        if (nodes.size() >= 2) {
          interconnect = link_between(net_, *nodes[0], *nodes[1]);
        }
      }
    }
  }
  hydro.compute_seconds = hydro_compute_seconds(
      load, rate(Role::hydro), hydro.spec.nranks, interconnect);
  double evolve =
      std::max(grav.compute_seconds + link(Role::gravity).rtt_s,
               hydro.compute_seconds + link(Role::hydro).rtt_s);

  // --- coupling phase: the pipelined cross-kick, twice per step ---
  // Each phase (state fetch, field queries, kicks) issues both sides as
  // concurrent futures: one round trip per phase, with the two coupler
  // directions sharing the client<->coupler wire (their bytes add). The
  // post-kick cross-kick is all delta-cache hits — header-only RPCs — while
  // the post-evolve one moves the changed positions and fresh field inputs.
  DatapathBytes wire_bytes = datapath_bytes(load);
  Assignment& coup = placement.role(Role::coupler);
  coup.compute_seconds = coupler_compute_seconds(load, rate(Role::coupler));
  auto cross_kick = [&](bool fresh) {
    double fetch = std::max(
        link(Role::gravity)
            .call_seconds(fresh ? wire_bytes.grav_state_fetch
                                : wire_bytes.idle_call),
        link(Role::hydro).call_seconds(fresh ? wire_bytes.hydro_state_fetch
                                             : wire_bytes.idle_call));
    double field = link(Role::coupler)
                       .call_seconds(fresh ? wire_bytes.coupler_upload +
                                                 wire_bytes.coupler_reply
                                           : 2.0 * wire_bytes.idle_call);
    double kick = std::max(
        link(Role::gravity)
            .call_seconds(fresh ? wire_bytes.grav_kick
                                : wire_bytes.idle_call),
        link(Role::hydro).call_seconds(fresh ? wire_bytes.hydro_kick
                                             : wire_bytes.idle_call));
    return fetch + field + kick;
  };
  double grav_coupling =
      link(Role::gravity).call_seconds(wire_bytes.grav_state_fetch) +
      link(Role::gravity).call_seconds(wire_bytes.grav_kick) +
      2.0 * link(Role::gravity).call_seconds(wire_bytes.idle_call);
  double hydro_coupling =
      link(Role::hydro).call_seconds(wire_bytes.hydro_state_fetch) +
      link(Role::hydro).call_seconds(wire_bytes.hydro_kick) +
      2.0 * link(Role::hydro).call_seconds(wire_bytes.idle_call);
  double coup_transfers =
      link(Role::coupler)
          .call_seconds(wire_bytes.coupler_upload + wire_bytes.coupler_reply) +
      link(Role::coupler).call_seconds(2.0 * wire_bytes.idle_call);
  // The coupler recomputes only when its inputs changed (once per step).
  coup.compute_seconds /= 2.0;
  double coupling = cross_kick(true) + cross_kick(false) +
                    coup.compute_seconds;
  grav.comm_seconds = grav_coupling + link(Role::gravity).rtt_s;
  hydro.comm_seconds = hydro_coupling + link(Role::hydro).rtt_s;
  coup.comm_seconds = coup_transfers;

  // --- stellar evolution: every n-th step, small exchanges ---
  Assignment& se = placement.role(Role::stellar);
  se.compute_seconds = stellar_compute_seconds(load, rate(Role::stellar));
  double stellar = 0.0;
  if (load.with_stellar_evolution) {
    // Masses over, masses back, supernovae; one delta state fetch on the
    // gravity side (mass changed by the previous update) + new masses out.
    double per_exchange =
        3.0 * link(Role::stellar).call_seconds(n_s * 8.0) +
        link(Role::gravity).call_seconds(n_s * 8.0 + kCallOverheadBytes) +
        link(Role::gravity).call_seconds(n_s * 8.0);
    se.comm_seconds = per_exchange / std::max(1, load.se_every);
    stellar = se.comm_seconds + se.compute_seconds;
  }

  // --- one-time costs, amortized over the production horizon ---
  double horizon =
      std::max(static_cast<double>(load.iterations), kAmortizeIterationsFloor);
  double queue_total = 0.0;
  for (int i = 0; i < kRoles; ++i) {
    Assignment& a = placement.roles[i];
    a.queue_seconds = 0.0;
    if (a.local()) continue;
    for (const gat::Resource& r : resources_) {
      if (r.name != a.resource) continue;
      double startup = r.queue_base_delay +
                       kStageInBytes / std::max(wire[i].bandwidth_Bps, 1.0);
      a.queue_seconds = startup / horizon;
    }
    queue_total += a.queue_seconds;
  }

  placement.modeled_seconds_per_iteration =
      evolve + coupling + stellar + queue_total;
  return placement.modeled_seconds_per_iteration;
}

Placement Scheduler::plan(const Workload& load) const {
  auto gravity = candidates(Role::gravity, load);
  auto hydro = candidates(Role::hydro, load);
  auto coupler = candidates(Role::coupler, load);
  auto stellar = candidates(Role::stellar, load);

  Placement best;
  double best_cost = std::numeric_limits<double>::infinity();
  bool found = false;
  for (const Assignment& g : gravity) {
    for (const Assignment& h : hydro) {
      for (const Assignment& c : coupler) {
        for (const Assignment& s : stellar) {
          Placement trial;
          trial.role(Role::gravity) = g;
          trial.role(Role::hydro) = h;
          trial.role(Role::coupler) = c;
          trial.role(Role::stellar) = s;
          if (!fits(trial)) continue;
          double cost = score(load, trial);
          if (cost < best_cost) {
            best = trial;
            best_cost = cost;
            found = true;
          }
        }
      }
    }
  }
  if (!found) {
    throw CodeError("sched: no feasible placement for the workload");
  }
  log::info("sched") << "planned " << best.describe() << " (modeled "
                     << best.modeled_seconds_per_iteration << " s/iter)";
  return best;
}

Assignment Scheduler::replace(const Workload& load, const Placement& current,
                              Role failed) const {
  Assignment best;
  double best_cost = std::numeric_limits<double>::infinity();
  bool found = false;
  for (const Assignment& candidate : candidates(failed, load)) {
    Placement trial = current;
    trial.role(failed) = candidate;
    if (!fits(trial)) continue;
    double cost = score(load, trial);
    if (cost < best_cost) {
      best = trial.role(failed);
      best_cost = cost;
      found = true;
    }
  }
  if (!found) {
    throw CodeError(std::string("sched: no feasible replacement for ") +
                    role_name(failed));
  }
  log::warn("sched") << "re-placing " << role_name(failed) << " onto "
                     << best.where();
  return best;
}

}  // namespace jungle::sched
