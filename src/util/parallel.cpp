#include "util/parallel.hpp"

#include <algorithm>
#include <cstdlib>

namespace jungle::util {

namespace {

// True while this thread is executing chunks (worker lane or participating
// caller). A parallel_for issued from such a thread runs inline: the pool's
// lanes are already busy, and waiting on them would deadlock.
thread_local bool tl_inside_chunk = false;

struct ChunkScope {
  ChunkScope() { tl_inside_chunk = true; }
  ~ChunkScope() { tl_inside_chunk = false; }
};

}  // namespace

ThreadPool::ThreadPool(unsigned lanes) {
  if (lanes == 0) lanes = default_lanes();
  workers_.reserve(lanes - 1);
  for (unsigned lane = 1; lane < lanes; ++lane) {
    workers_.emplace_back([this, lane] { worker_main(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::default_lanes() {
  if (const char* env = std::getenv("JUNGLE_THREADS")) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(std::min(parsed, 512L));
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_lanes());
  return pool;
}

void ThreadPool::worker_main(unsigned lane) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    start_cv_.wait(lock,
                   [&] { return stop_ || (job_ && generation_ != seen); });
    if (stop_) return;
    seen = generation_;
    Job* job = job_;
    ++active_;
    lock.unlock();
    run_chunks(*job, lane);
    lock.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run_chunks(Job& job, unsigned lane) {
  ChunkScope scope;
  for (;;) {
    std::size_t lo = job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (lo >= job.end) return;
    std::size_t hi = std::min(job.end, lo + job.grain);
    try {
      (*job.fn)(lo, hi, lane);
    } catch (...) {
      std::lock_guard<std::mutex> guard(mutex_);
      if (!job.error) job.error = std::current_exception();
      // Cancel the rest of the range; in-flight chunks finish normally.
      job.next.store(job.end, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain, const ChunkFn& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  if (workers_.empty() || end - begin <= grain || tl_inside_chunk) {
    // Inline path still honours the chunk contract: callers may size
    // fixed scratch (stack arrays) to `grain`, so never deliver more.
    for (std::size_t lo = begin; lo < end; lo += grain) {
      fn(lo, std::min(end, lo + grain), 0);
    }
    return;
  }

  Job job;
  job.fn = &fn;
  job.end = end;
  job.grain = grain;
  job.next.store(begin, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Serialize concurrent callers: wait for the pool to go idle.
    done_cv_.wait(lock, [&] { return job_ == nullptr; });
    job_ = &job;
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunks(job, 0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
  }
  done_cv_.notify_all();  // admit the next waiting caller
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace jungle::util
