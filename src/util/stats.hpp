#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace jungle::util {

/// Streaming mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double value) noexcept {
    ++count_;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = count_ == 1 ? value : std::min(min_, value);
    max_ = count_ == 1 ? value : std::max(max_, value);
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples for percentile queries (used by latency reports).
class SampleSet {
 public:
  void add(double value) { samples_.push_back(value); }

  /// q in [0,1]; returns 0 for an empty set.
  double percentile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = q * static_cast<double>(sorted.size() - 1);
    auto low = static_cast<std::size_t>(rank);
    auto high = std::min(low + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(low);
    return sorted[low] * (1.0 - frac) + sorted[high] * frac;
  }

  std::size_t count() const noexcept { return samples_.size(); }
  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace jungle::util
