#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace jungle::log {

enum class Level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global threshold; messages below it are dropped before formatting cost.
/// Initialized from the JUNGLE_LOG environment variable when set (one of
/// debug|info|warn|error|off); defaults to warn.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// Parse a JUNGLE_LOG value; unknown strings fall back to `fallback`.
Level parse_level(const std::string& name, Level fallback = Level::warn) noexcept;

/// Sink receives (level, component, message). Default prints to stderr.
/// Tests install a capture sink; returns the previous sink so it can be
/// restored (RAII helper below).
using Sink = std::function<void(Level, const std::string&, const std::string&)>;
Sink set_sink(Sink sink);

/// Structured form of a log line: what the plain sink flattens to text,
/// plus the trace context captured at emit time. The default stderr sink
/// appends "(span N)" when a span is active, so log lines can be matched
/// against the trace dump.
struct Record {
  Level level = Level::info;
  std::string component;
  std::string message;
  std::uint64_t span = 0;  // obs::trace::current_span() at emit; 0 = none
};

/// Structured sink; when set it takes precedence over the plain Sink.
using StructuredSink = std::function<void(const Record&)>;
StructuredSink set_structured_sink(StructuredSink sink);

void emit(Level level, const std::string& component, const std::string& message);

const char* level_name(Level level) noexcept;

/// RAII capture of log output for tests.
class ScopedSink {
 public:
  explicit ScopedSink(Sink sink) : previous_(set_sink(std::move(sink))) {}
  ~ScopedSink() { set_sink(previous_); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Sink previous_;
};

/// RAII capture of structured records for tests.
class ScopedStructuredSink {
 public:
  explicit ScopedStructuredSink(StructuredSink sink)
      : previous_(set_structured_sink(std::move(sink))) {}
  ~ScopedStructuredSink() { set_structured_sink(previous_); }
  ScopedStructuredSink(const ScopedStructuredSink&) = delete;
  ScopedStructuredSink& operator=(const ScopedStructuredSink&) = delete;

 private:
  StructuredSink previous_;
};

namespace detail {
class Line {
 public:
  Line(Level level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~Line() { emit(level_, component_, stream_.str()); }
  Line(const Line&) = delete;
  Line& operator=(const Line&) = delete;

  template <typename T>
  Line& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::Line debug(std::string component) {
  return detail::Line(Level::debug, std::move(component));
}
inline detail::Line info(std::string component) {
  return detail::Line(Level::info, std::move(component));
}
inline detail::Line warn(std::string component) {
  return detail::Line(Level::warn, std::move(component));
}
inline detail::Line error(std::string component) {
  return detail::Line(Level::error, std::move(component));
}

}  // namespace jungle::log
