#include "util/config.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace jungle::util {

Config Config::parse(const std::string& text) {
  Config config;
  std::istringstream stream(text);
  std::string line;
  std::string section;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    // Strip comments before trimming so trailing comments work.
    std::size_t hash = line.find_first_of("#;");
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw ConfigError("unterminated section header at line " +
                          std::to_string(line_number));
      }
      section = trim(line.substr(1, line.size() - 2));
      if (section.empty()) {
        throw ConfigError("empty section name at line " +
                          std::to_string(line_number));
      }
      if (!config.values_.count(section)) {
        config.values_[section] = {};
        config.key_order_[section] = {};
        config.order_.push_back(section);
      }
      continue;
    }
    std::size_t equals = line.find('=');
    if (equals == std::string::npos) {
      throw ConfigError("expected key=value at line " +
                        std::to_string(line_number) + ": '" + line + "'");
    }
    if (section.empty()) {
      throw ConfigError("key=value before any [section] at line " +
                        std::to_string(line_number));
    }
    std::string key = trim(line.substr(0, equals));
    std::string value = trim(line.substr(equals + 1));
    if (key.empty()) {
      throw ConfigError("empty key at line " + std::to_string(line_number));
    }
    if (!config.values_[section].count(key)) {
      config.key_order_[section].push_back(key);
    }
    config.values_[section][key] = value;
  }
  return config;
}

bool Config::has_section(const std::string& section) const {
  return values_.count(section) != 0;
}

bool Config::has_key(const std::string& section, const std::string& key) const {
  auto it = values_.find(section);
  return it != values_.end() && it->second.count(key) != 0;
}

std::string Config::get(const std::string& section, const std::string& key) const {
  auto it = values_.find(section);
  if (it == values_.end()) {
    throw ConfigError("missing section [" + section + "]");
  }
  auto kv = it->second.find(key);
  if (kv == it->second.end()) {
    throw ConfigError("missing key '" + key + "' in section [" + section + "]");
  }
  return kv->second;
}

std::string Config::get_or(const std::string& section, const std::string& key,
                           const std::string& fallback) const {
  return has_key(section, key) ? get(section, key) : fallback;
}

long Config::get_int(const std::string& section, const std::string& key) const {
  const std::string value = get(section, key);
  try {
    std::size_t used = 0;
    long parsed = std::stol(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw ConfigError("key '" + key + "' in [" + section +
                      "] is not an integer: '" + value + "'");
  }
}

long Config::get_int_or(const std::string& section, const std::string& key,
                        long fallback) const {
  return has_key(section, key) ? get_int(section, key) : fallback;
}

double Config::get_double(const std::string& section,
                          const std::string& key) const {
  const std::string value = get(section, key);
  try {
    std::size_t used = 0;
    double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw ConfigError("key '" + key + "' in [" + section +
                      "] is not a number: '" + value + "'");
  }
}

double Config::get_double_or(const std::string& section, const std::string& key,
                             double fallback) const {
  return has_key(section, key) ? get_double(section, key) : fallback;
}

bool Config::get_bool_or(const std::string& section, const std::string& key,
                         bool fallback) const {
  if (!has_key(section, key)) return fallback;
  std::string value = get(section, key);
  if (value == "true" || value == "yes" || value == "1") return true;
  if (value == "false" || value == "no" || value == "0") return false;
  throw ConfigError("key '" + key + "' in [" + section +
                    "] is not a boolean: '" + value + "'");
}

void Config::set(const std::string& section, const std::string& key,
                 const std::string& value) {
  if (!values_.count(section)) {
    values_[section] = {};
    key_order_[section] = {};
    order_.push_back(section);
  }
  if (!values_[section].count(key)) key_order_[section].push_back(key);
  values_[section][key] = value;
}

std::vector<std::string> Config::keys(const std::string& section) const {
  auto it = key_order_.find(section);
  if (it == key_order_.end()) {
    throw ConfigError("missing section [" + section + "]");
  }
  return it->second;
}

}  // namespace jungle::util
