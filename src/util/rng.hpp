#pragma once

#include <cstdint>
#include <limits>

namespace jungle::util {

/// Deterministic splitmix64-based RNG. Every stochastic component in the
/// stack (initial conditions, gossip, queue jitter) owns a seeded instance so
/// whole-jungle runs replay bit-identically — a requirement for the
/// discrete-event tests.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound) (bound > 0).
  std::uint64_t below(std::uint64_t bound) noexcept {
    return next_u64() % bound;
  }

  /// Standard normal via Box-Muller (one value per call; simple, adequate).
  double normal() noexcept {
    double u1 = next_double();
    double u2 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    // sqrt(-2 ln u1) cos(2 pi u2)
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

  /// Derive an independent stream (for child components).
  Rng fork() noexcept { return Rng(next_u64() ^ 0xda3e39cb94b95bdbULL); }

 private:
  std::uint64_t state_;
};

}  // namespace jungle::util
