#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/trace.hpp"

namespace jungle::log {

namespace {

Level initial_threshold() {
  const char* env = std::getenv("JUNGLE_LOG");
  return env != nullptr ? parse_level(env) : Level::warn;
}

std::atomic<Level> g_threshold{initial_threshold()};

std::mutex g_sink_mutex;
Sink g_sink;                       // empty => default stderr sink
StructuredSink g_structured_sink;  // set => takes precedence

void default_sink(const Record& record) {
  if (record.span != 0) {
    std::fprintf(stderr, "[%-5s] %s: %s (span %llu)\n",
                 level_name(record.level), record.component.c_str(),
                 record.message.c_str(),
                 static_cast<unsigned long long>(record.span));
  } else {
    std::fprintf(stderr, "[%-5s] %s: %s\n", level_name(record.level),
                 record.component.c_str(), record.message.c_str());
  }
}

}  // namespace

Level threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

Level parse_level(const std::string& name, Level fallback) noexcept {
  if (name == "debug") return Level::debug;
  if (name == "info") return Level::info;
  if (name == "warn") return Level::warn;
  if (name == "error") return Level::error;
  if (name == "off") return Level::off;
  return fallback;
}

Sink set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mutex);
  Sink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

StructuredSink set_structured_sink(StructuredSink sink) {
  std::lock_guard lock(g_sink_mutex);
  StructuredSink previous = std::move(g_structured_sink);
  g_structured_sink = std::move(sink);
  return previous;
}

void emit(Level level, const std::string& component, const std::string& message) {
  if (level < threshold()) return;
  Record record;
  record.level = level;
  record.component = component;
  record.message = message;
  record.span = obs::trace::current_span();
  std::lock_guard lock(g_sink_mutex);
  if (g_structured_sink) {
    g_structured_sink(record);
  } else if (g_sink) {
    g_sink(level, component, message);
  } else {
    default_sink(record);
  }
}

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::debug: return "debug";
    case Level::info: return "info";
    case Level::warn: return "warn";
    case Level::error: return "error";
    case Level::off: return "off";
  }
  return "?";
}

}  // namespace jungle::log
