#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace jungle::log {

namespace {

std::atomic<Level> g_threshold{Level::warn};

std::mutex g_sink_mutex;
Sink g_sink;  // empty => default stderr sink

void default_sink(Level level, const std::string& component,
                  const std::string& message) {
  std::fprintf(stderr, "[%-5s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace

Level threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

Sink set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mutex);
  Sink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void emit(Level level, const std::string& component, const std::string& message) {
  if (level < threshold()) return;
  std::lock_guard lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, component, message);
  } else {
    default_sink(level, component, message);
  }
}

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::debug: return "debug";
    case Level::info: return "info";
    case Level::warn: return "warn";
    case Level::error: return "error";
    case Level::off: return "off";
  }
  return "?";
}

}  // namespace jungle::log
