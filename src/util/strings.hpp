#pragma once

#include <string>
#include <vector>

namespace jungle::util {

/// Strip leading/trailing whitespace.
std::string trim(const std::string& text);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> split(const std::string& text, char delimiter);

/// True if `text` starts with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

/// Render a byte count as a human-friendly string ("1.5 MiB").
std::string format_bytes(double bytes);

/// Render a rate in bit/s as e.g. "8.2 Gbit/s".
std::string format_bitrate(double bits_per_second);

}  // namespace jungle::util
