#pragma once

#include <stdexcept>
#include <string>

namespace jungle {

/// Root of the jungle error hierarchy. All library errors derive from this,
/// so callers can catch `jungle::Error` at a subsystem boundary.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Configuration / user-input problems (bad INI file, unknown resource, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

/// Connectivity problems that SmartSockets could not route around.
class ConnectError : public Error {
 public:
  explicit ConnectError(const std::string& what) : Error("connect: " + what) {}
};

/// Failures reported by middleware when submitting or running jobs.
class GatError : public Error {
 public:
  explicit GatError(const std::string& what) : Error("gat: " + what) {}
};

/// A remote model kernel raised an error or died (AMUSE CodeException analog).
class CodeError : public Error {
 public:
  explicit CodeError(const std::string& what) : Error("code: " + what) {}
};

/// A worker became unreachable mid-run. Carries everything the transport
/// layer knew about the failure, so recovery code (the placement scheduler's
/// fault path) can exclude the right resource: a *host crash* means the
/// machine is gone, a *link fault* means the machine may be fine but the
/// route to it is not, a *timeout* means the worker stopped answering (hung
/// process, or a silently black-holed route) — treated like a link fault,
/// since the machine cannot be trusted either way.
class WorkerDiedError : public CodeError {
 public:
  /// `process_crash` is the recoverable tier: the worker's *process* died
  /// but its host is healthy and a supervisor already restarted the slot in
  /// place — the client should revive and restore rather than re-place.
  /// Appended last: the values travel as a wire byte in death notices.
  enum class Cause { host_crash, link_fault, timeout, unknown, process_crash };

  WorkerDiedError(std::string worker, std::string host, Cause cause,
                  const std::string& detail)
      : CodeError("worker " + worker + " died" +
                  (host.empty() ? "" : " on " + host) + ": " + detail),
        worker_(std::move(worker)),
        host_(std::move(host)),
        cause_(cause) {}

  /// RpcClient label of the worker that died (e.g. "phigrape-gpu@lgm").
  const std::string& worker() const noexcept { return worker_; }
  /// Name of the host the worker ran on, when known ("" otherwise).
  const std::string& host() const noexcept { return host_; }
  Cause cause() const noexcept { return cause_; }

 private:
  std::string worker_;
  std::string host_;
  Cause cause_;
};

/// Incompatible physical units in an expression (AMUSE checked conversion).
class UnitError : public Error {
 public:
  explicit UnitError(const std::string& what) : Error("units: " + what) {}
};

/// Serialization framing problems (truncated / mistyped message).
class WireError : public Error {
 public:
  explicit WireError(const std::string& what) : Error("wire: " + what) {}
};

}  // namespace jungle
