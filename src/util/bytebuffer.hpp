#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace jungle::util {

/// Append-only binary writer used for all wire messages in the stack
/// (channels, IPL messages, MPI payloads). The byte size of a buffer is what
/// the simulated network charges for, so every protocol message goes through
/// here.
///
/// The writer is scatter-gather aware: besides plain appends it can
///  - reserve a fixed-size *prefix* at construction (frame headers that a
///    transport patches in later without re-copying the payload),
///  - record *borrowed* spans (`put_span_view`) that are only copied once,
///    at `take()` time, straight into the final wire buffer, and
///  - splice another writer's segments (`append`) without copying a byte.
/// This is what lets the RPC layer frame bulk arrays with exactly one copy
/// between the kernel's memory and the wire.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Reserve `prefix` zeroed bytes at the very start of the buffer. They are
  /// part of size() and take(); fill them with patch().
  explicit ByteWriter(std::size_t prefix) : prefix_(prefix) {
    tail_.resize(prefix, 0);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const auto* raw = reinterpret_cast<const std::uint8_t*>(&value);
    tail_.insert(tail_.end(), raw, raw + sizeof(T));
  }

  void put_string(const std::string& text) {
    put<std::uint32_t>(static_cast<std::uint32_t>(text.size()));
    tail_.insert(tail_.end(), text.begin(), text.end());
  }

  /// Raw bytes, no count prefix (error texts, opaque relayed frames).
  void put_bytes(std::span<const std::uint8_t> bytes) {
    tail_.insert(tail_.end(), bytes.begin(), bytes.end());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span(std::span<const T> values) {
    put<std::uint64_t>(values.size());
    const auto* raw = reinterpret_cast<const std::uint8_t*>(values.data());
    tail_.insert(tail_.end(), raw, raw + values.size_bytes());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& values) {
    put_span(std::span<const T>(values));
  }

  /// Frame `values` *by reference*: the bytes are not copied now but at
  /// take() time, directly into the gathered wire buffer. The span must stay
  /// valid (and unmodified) until then — fine for worker replies that are
  /// serialized and handed to the transport within one scheduling turn.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span_view(std::span<const T> values) {
    put<std::uint64_t>(values.size());
    if (values.empty()) return;
    seal_tail();
    Segment view;
    view.view = std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(values.data()),
        values.size_bytes());
    sealed_bytes_ += view.view.size();
    segments_.push_back(view);
  }

  /// Splice all of `other`'s content after this writer's content. Owned
  /// storage is moved, borrowed views stay borrowed: no payload bytes are
  /// copied. `other` is left empty.
  void append(ByteWriter&& other) {
    seal_tail();
    for (auto& segment : other.segments_) {
      sealed_bytes_ +=
          segment.owned.empty() ? segment.view.size() : segment.owned.size();
      segments_.push_back(std::move(segment));
    }
    if (!other.tail_.empty()) {
      sealed_bytes_ += other.tail_.size();
      segments_.push_back(Segment{std::move(other.tail_), {}});
    }
    other.segments_.clear();
    other.tail_.clear();
    other.sealed_bytes_ = 0;
  }

  /// Overwrite bytes inside the reserved prefix (frame id, function, flags).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void patch(std::size_t offset, const T& value) {
    if (offset + sizeof(T) > prefix_) {
      throw WireError("patch outside the reserved frame prefix");
    }
    std::vector<std::uint8_t>& first =
        segments_.empty() ? tail_ : segments_.front().owned;
    std::memcpy(first.data() + offset, &value, sizeof(T));
  }

  std::size_t prefix() const noexcept { return prefix_; }

  std::size_t size() const noexcept { return sealed_bytes_ + tail_.size(); }

  /// Materialize the wire buffer. Single-segment writers (the common case:
  /// header prefix + inline puts) are moved out without any copy.
  std::vector<std::uint8_t> take() && {
    if (segments_.empty()) return std::move(tail_);
    std::vector<std::uint8_t> gathered;
    gathered.reserve(size());
    for (const Segment& segment : segments_) {
      if (segment.owned.empty()) {
        gathered.insert(gathered.end(), segment.view.begin(),
                        segment.view.end());
      } else {
        gathered.insert(gathered.end(), segment.owned.begin(),
                        segment.owned.end());
      }
    }
    gathered.insert(gathered.end(), tail_.begin(), tail_.end());
    return gathered;
  }

 private:
  /// One sealed stretch of the message: owned bytes, or a borrowed view.
  struct Segment {
    std::vector<std::uint8_t> owned;
    std::span<const std::uint8_t> view;
  };

  void seal_tail() {
    if (tail_.empty()) return;
    sealed_bytes_ += tail_.size();
    segments_.push_back(Segment{std::move(tail_), {}});
    tail_.clear();
  }

  std::vector<Segment> segments_;
  std::vector<std::uint8_t> tail_;
  std::size_t sealed_bytes_ = 0;
  std::size_t prefix_ = 0;
};

/// Sequential reader over a received buffer. Throws WireError on underrun so
/// malformed frames surface as errors rather than garbage reads. A reader
/// can start at an offset into the buffer (a transport that parsed the frame
/// header hands the rest to the payload consumer without copying it out).
class ByteReader {
 public:
  explicit ByteReader(std::vector<std::uint8_t> bytes, std::size_t start = 0)
      : bytes_(std::move(bytes)), cursor_(start) {
    if (cursor_ > bytes_.size()) {
      throw WireError("reader offset beyond buffer");
    }
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  std::string get_string() {
    auto length = get<std::uint32_t>();
    require(length);
    std::string text(reinterpret_cast<const char*>(bytes_.data() + cursor_),
                     length);
    cursor_ += length;
    return text;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    std::size_t count = checked_count<T>();
    std::vector<T> values(count);
    std::memcpy(values.data(), bytes_.data() + cursor_, count * sizeof(T));
    cursor_ += count * sizeof(T);
    return values;
  }

  /// Zero-copy read of a framed array: a view straight into the receive
  /// buffer, valid for this reader's lifetime. The protocol must keep array
  /// payloads aligned for T (our RPC frames use fixed 8-byte headers and
  /// 8-byte-multiple fields ahead of spans); a misaligned read is a protocol
  /// bug and throws.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::span<const T> get_span() {
    std::size_t count = checked_count<T>();
    const std::uint8_t* data = bytes_.data() + cursor_;
    if (reinterpret_cast<std::uintptr_t>(data) % alignof(T) != 0) {
      throw WireError("misaligned span read at offset " +
                      std::to_string(cursor_));
    }
    cursor_ += count * sizeof(T);
    return std::span<const T>(reinterpret_cast<const T*>(data), count);
  }

  std::size_t cursor() const noexcept { return cursor_; }
  std::size_t remaining() const noexcept { return bytes_.size() - cursor_; }
  bool exhausted() const noexcept { return remaining() == 0; }

  /// Give the underlying buffer back (e.g. to re-seat a reader at the
  /// payload offset in another owner). The reader must not be used after.
  std::vector<std::uint8_t> release() && { return std::move(bytes_); }

 private:
  void require(std::size_t needed) const {
    if (bytes_.size() - cursor_ < needed) {
      throw WireError("buffer underrun: need " + std::to_string(needed) +
                      " bytes, have " + std::to_string(remaining()));
    }
  }

  /// Read an array count and validate it against the remaining bytes
  /// *before* multiplying — a corrupt 2^61-ish count must surface as a
  /// WireError, not wrap `count * sizeof(T)` past the underrun check.
  template <typename T>
  std::size_t checked_count() {
    auto count = get<std::uint64_t>();
    if (count > remaining() / sizeof(T)) {
      throw WireError("buffer underrun: array of " + std::to_string(count) +
                      " x " + std::to_string(sizeof(T)) + " bytes, have " +
                      std::to_string(remaining()));
    }
    return static_cast<std::size_t>(count);
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace jungle::util
