#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace jungle::util {

/// Append-only binary writer used for all wire messages in the stack
/// (channels, IPL messages, MPI payloads). The byte size of a buffer is what
/// the simulated network charges for, so every protocol message goes through
/// here.
class ByteWriter {
 public:
  ByteWriter() = default;

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const auto* raw = reinterpret_cast<const std::uint8_t*>(&value);
    bytes_.insert(bytes_.end(), raw, raw + sizeof(T));
  }

  void put_string(const std::string& text) {
    put<std::uint32_t>(static_cast<std::uint32_t>(text.size()));
    bytes_.insert(bytes_.end(), text.begin(), text.end());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span(std::span<const T> values) {
    put<std::uint64_t>(values.size());
    const auto* raw = reinterpret_cast<const std::uint8_t*>(values.data());
    bytes_.insert(bytes_.end(), raw, raw + values.size_bytes());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& values) {
    put_span(std::span<const T>(values));
  }

  std::size_t size() const noexcept { return bytes_.size(); }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over a received buffer. Throws WireError on underrun so
/// malformed frames surface as errors rather than garbage reads.
class ByteReader {
 public:
  explicit ByteReader(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  std::string get_string() {
    auto length = get<std::uint32_t>();
    require(length);
    std::string text(reinterpret_cast<const char*>(bytes_.data() + cursor_),
                     length);
    cursor_ += length;
    return text;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    auto count = get<std::uint64_t>();
    require(count * sizeof(T));
    std::vector<T> values(count);
    std::memcpy(values.data(), bytes_.data() + cursor_, count * sizeof(T));
    cursor_ += count * sizeof(T);
    return values;
  }

  std::size_t remaining() const noexcept { return bytes_.size() - cursor_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  void require(std::size_t needed) const {
    if (bytes_.size() - cursor_ < needed) {
      throw WireError("buffer underrun: need " + std::to_string(needed) +
                      " bytes, have " + std::to_string(remaining()));
    }
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace jungle::util
