#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace jungle::util {

/// Minimal INI-style configuration, matching the paper's "small number of
/// simple configuration files" for IbisDeploy. Sections hold key=value
/// pairs; `#` and `;` start comments; keys are case-sensitive.
///
///   [resource das4-vu]
///   middleware = sge
///   frontend   = fs0.das4.vu.nl
///   cores      = 8
class Config {
 public:
  static Config parse(const std::string& text);

  /// All section names, in file order.
  const std::vector<std::string>& sections() const noexcept { return order_; }

  bool has_section(const std::string& section) const;
  bool has_key(const std::string& section, const std::string& key) const;

  /// Throws ConfigError if missing.
  std::string get(const std::string& section, const std::string& key) const;
  std::string get_or(const std::string& section, const std::string& key,
                     const std::string& fallback) const;
  long get_int(const std::string& section, const std::string& key) const;
  long get_int_or(const std::string& section, const std::string& key,
                  long fallback) const;
  double get_double(const std::string& section, const std::string& key) const;
  double get_double_or(const std::string& section, const std::string& key,
                       double fallback) const;
  bool get_bool_or(const std::string& section, const std::string& key,
                   bool fallback) const;

  void set(const std::string& section, const std::string& key,
           const std::string& value);

  /// Keys of a section in file order. Throws ConfigError if missing.
  std::vector<std::string> keys(const std::string& section) const;

 private:
  std::map<std::string, std::map<std::string, std::string>> values_;
  std::map<std::string, std::vector<std::string>> key_order_;
  std::vector<std::string> order_;
};

}  // namespace jungle::util
