#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jungle::util {

/// Persistent thread pool behind every parallel kernel (Barnes-Hut batch
/// traversal, tiled Hermite forces, SPH density/force passes). One pool,
/// many `parallel_for` calls: workers park on a condition variable between
/// calls, so a force evaluation costs two lock round-trips, not N thread
/// spawns.
///
/// Sizing: `ThreadPool(0)` (and the shared `global()` instance) takes the
/// lane count from the `JUNGLE_THREADS` environment variable, falling back
/// to `std::thread::hardware_concurrency()`. A pool with L lanes owns L-1
/// worker threads; the caller of `parallel_for` always participates as
/// lane 0, so a 1-lane pool is a plain serial loop with zero overhead.
///
/// Scratch-buffer contract: the chunk function receives a lane id in
/// [0, lanes()). At most one chunk runs per lane at a time, so per-lane
/// scratch (see PerLane below) needs no further locking. Chunk-to-lane
/// assignment is dynamic (work stealing via an atomic cursor); kernels must
/// therefore produce results that do not depend on which lane ran a chunk —
/// write only to disjoint outputs indexed by the range, and reduce per-lane
/// accumulators after the join.
///
/// Concurrency notes: concurrent `parallel_for` calls from different
/// threads serialize on the pool (correct, no interleaving); a nested call
/// from inside a chunk runs inline on the calling lane. The first exception
/// thrown by a chunk cancels the remaining range and is rethrown on the
/// calling thread.
class ThreadPool {
 public:
  /// fn(lo, hi, lane): process the half-open index range [lo, hi).
  using ChunkFn = std::function<void(std::size_t, std::size_t, unsigned)>;

  /// `lanes` = total parallel lanes including the caller; 0 = default_lanes().
  explicit ThreadPool(unsigned lanes = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned lanes() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Run fn over [begin, end) in chunks of ~`grain` indices. Blocks until
  /// the whole range is done. grain 0 is treated as 1.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const ChunkFn& fn);

  /// JUNGLE_THREADS if set and valid, else hardware_concurrency (>= 1).
  /// Reads the environment on every call so tests can vary it.
  static unsigned default_lanes();

  /// Process-wide shared pool, sized once (by default_lanes) on first use.
  static ThreadPool& global();

 private:
  struct Job {
    const ChunkFn* fn = nullptr;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::atomic<std::size_t> next{0};
    std::exception_ptr error;  // guarded by the pool mutex
  };

  void worker_main(unsigned lane);
  void run_chunks(Job& job, unsigned lane);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;  // wakes workers for a new job
  std::condition_variable done_cv_;   // wakes callers waiting for idle
  Job* job_ = nullptr;                // non-null while a job is in flight
  std::uint64_t generation_ = 0;
  unsigned active_ = 0;  // workers currently inside run_chunks
  bool stop_ = false;
};

/// Per-lane scratch slots, padded to a cache line so adjacent lanes never
/// false-share. Index with the lane id passed to the chunk function.
template <typename T>
class PerLane {
 public:
  explicit PerLane(const ThreadPool& pool, const T& init = T{})
      : slots_(pool.lanes(), Slot{init}) {}

  T& operator[](unsigned lane) { return slots_[lane].value; }
  const T& operator[](unsigned lane) const { return slots_[lane].value; }
  std::size_t size() const noexcept { return slots_.size(); }

  /// Deterministic reduction in lane order (call after the join).
  template <typename Fn>
  void for_each(Fn fn) const {
    for (const Slot& slot : slots_) fn(slot.value);
  }

 private:
  struct alignas(64) Slot {
    T value;
  };
  std::vector<Slot> slots_;
};

}  // namespace jungle::util
