#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace jungle::util {

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delimiter, start);
    if (pos == std::string::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

namespace {
std::string format_scaled(double value, const char* const* units, int count) {
  int index = 0;
  while (value >= 1024.0 && index + 1 < count) {
    value /= 1024.0;
    ++index;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f %s", value, units[index]);
  return buffer;
}
}  // namespace

std::string format_bytes(double bytes) {
  static const char* const kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return format_scaled(bytes, kUnits, 5);
}

std::string format_bitrate(double bits_per_second) {
  static const char* const kUnits[] = {"bit/s", "Kbit/s", "Mbit/s", "Gbit/s",
                                       "Tbit/s"};
  double value = bits_per_second;
  int index = 0;
  while (value >= 1000.0 && index < 4) {
    value /= 1000.0;
    ++index;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f %s", value, kUnits[index]);
  return buffer;
}

}  // namespace jungle::util
