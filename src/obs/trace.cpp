#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace jungle::obs::trace {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<SpanId> g_next_id{1};

thread_local SpanId t_current = 0;

struct ClockSource {
  const void* owner = nullptr;
  std::function<double()> now;
  std::function<std::string()> process;
};

std::mutex g_clock_mutex;
std::shared_ptr<const ClockSource> g_clock;

std::mutex g_records_mutex;
std::vector<SpanRecord> g_records;

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::shared_ptr<const ClockSource> clock_source() {
  std::lock_guard lock(g_clock_mutex);
  return g_clock;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void bind_clock(const void* owner, std::function<double()> now,
                std::function<std::string()> process) {
  auto source = std::make_shared<ClockSource>();
  source->owner = owner;
  source->now = std::move(now);
  source->process = std::move(process);
  std::lock_guard lock(g_clock_mutex);
  g_clock = std::move(source);
}

void unbind_clock(const void* owner) {
  std::lock_guard lock(g_clock_mutex);
  if (g_clock && g_clock->owner == owner) g_clock.reset();
}

SpanId current_span() noexcept { return t_current; }

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    rec_ = std::move(other.rec_);
    scoped_ = other.scoped_;
    saved_ = other.saved_;
    other.scoped_ = false;
    other.saved_ = 0;
  }
  return *this;
}

SpanId Span::id() const noexcept { return rec_ ? rec_->id : 0; }

void Span::note_remote(SpanId remote) noexcept {
  if (rec_) rec_->remote = remote;
}

void Span::end() {
  if (!rec_) return;
  if (scoped_) t_current = saved_;
  rec_->wall_end_ns = wall_ns();
  if (auto clock = clock_source(); clock && clock->now) {
    rec_->sim_end = clock->now();
  }
  if (rec_->sim_end < rec_->sim_begin) rec_->sim_end = rec_->sim_begin;
  {
    std::lock_guard lock(g_records_mutex);
    g_records.push_back(std::move(*rec_));
  }
  rec_.reset();
}

Span begin(std::string_view name, std::string_view category, SpanId parent,
           bool scoped) {
  Span span;
  span.rec_ = std::make_unique<SpanRecord>();
  span.rec_->id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  span.rec_->parent = parent;
  span.rec_->name.assign(name);
  span.rec_->category.assign(category);
  span.rec_->wall_begin_ns = wall_ns();
  if (auto clock = clock_source(); clock) {
    if (clock->now) span.rec_->sim_begin = clock->now();
    if (clock->process) span.rec_->process = clock->process();
  }
  if (scoped) {
    span.scoped_ = true;
    span.saved_ = t_current;
    t_current = span.rec_->id;
  }
  return span;
}

Span span(std::string_view name, std::string_view category) {
  if (!enabled()) return Span();
  return begin(name, category, t_current, /*scoped=*/true);
}

Span server_span(std::string_view name, std::string_view category,
                 SpanId parent) {
  if (!enabled()) return Span();
  return begin(name, category, parent, /*scoped=*/true);
}

Span async_span(std::string_view name, std::string_view category) {
  if (!enabled()) return Span();
  return begin(name, category, t_current, /*scoped=*/false);
}

std::vector<SpanRecord> snapshot() {
  std::lock_guard lock(g_records_mutex);
  return g_records;
}

std::size_t recorded() noexcept {
  std::lock_guard lock(g_records_mutex);
  return g_records.size();
}

void reset() {
  std::lock_guard lock(g_records_mutex);
  g_records.clear();
}

namespace {

void json_escape(std::ostream& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
}

/// "host/process" -> host part; names with no '/' (e.g. the experiment
/// script spawned directly on the Simulation) count as their own host.
std::string host_of(const std::string& process) {
  auto slash = process.find('/');
  return slash == std::string::npos ? process : process.substr(0, slash);
}

}  // namespace

std::string chrome_trace_json() {
  std::vector<SpanRecord> records = snapshot();

  // Stable pid/tid assignment in first-appearance order.
  std::unordered_map<std::string, int> pid_of;
  std::unordered_map<std::string, int> tid_of;
  auto pid = [&](const SpanRecord& rec) {
    std::string host = host_of(rec.process);
    auto [it, fresh] = pid_of.try_emplace(host, static_cast<int>(pid_of.size()));
    (void)fresh;
    return it->second;
  };
  auto tid = [&](const SpanRecord& rec) {
    auto [it, fresh] =
        tid_of.try_emplace(rec.process, static_cast<int>(tid_of.size()));
    (void)fresh;
    return it->second;
  };

  std::ostringstream out;
  out.setf(std::ios::fmtflags(0), std::ios::floatfield);
  out.precision(15);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };

  for (const SpanRecord& rec : records) {
    double ts_us = rec.sim_begin * 1e6;
    double dur_us = (rec.sim_end - rec.sim_begin) * 1e6;
    comma();
    out << "{\"ph\":\"X\",\"name\":\"";
    json_escape(out, rec.name);
    out << "\",\"cat\":\"";
    json_escape(out, rec.category.empty() ? std::string("span") : rec.category);
    out << "\",\"pid\":" << pid(rec) << ",\"tid\":" << tid(rec)
        << ",\"ts\":" << ts_us << ",\"dur\":" << dur_us
        << ",\"args\":{\"span\":" << rec.id << ",\"parent\":" << rec.parent
        << ",\"wall_us\":"
        << static_cast<double>(rec.wall_end_ns - rec.wall_begin_ns) / 1e3
        << "}}";
    if (rec.remote != 0) {
      // Flow arrow: client RPC span -> the worker-side span that served it.
      comma();
      out << "{\"ph\":\"s\",\"id\":" << rec.remote
          << ",\"name\":\"rpc\",\"cat\":\"rpc-flow\",\"pid\":" << pid(rec)
          << ",\"tid\":" << tid(rec) << ",\"ts\":" << ts_us << "}";
    }
  }
  for (const SpanRecord& rec : records) {
    // Bind the flow arrow at every span a client pointed at.
    bool targeted = false;
    for (const SpanRecord& other : records) {
      if (other.remote == rec.id) targeted = true;
    }
    if (!targeted) continue;
    comma();
    out << "{\"ph\":\"f\",\"bp\":\"e\",\"id\":" << rec.id
        << ",\"name\":\"rpc\",\"cat\":\"rpc-flow\",\"pid\":" << pid(rec)
        << ",\"tid\":" << tid(rec) << ",\"ts\":" << rec.sim_begin * 1e6 << "}";
  }

  // Metadata: name the simulated hosts (pids) and processes (tids).
  for (const auto& [host, id] : pid_of) {
    comma();
    out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << id
        << ",\"tid\":0,\"args\":{\"name\":\"";
    json_escape(out, host);
    out << "\"}}";
  }
  for (const auto& [process, id] : tid_of) {
    comma();
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
        << pid_of[host_of(process)] << ",\"tid\":" << id
        << ",\"args\":{\"name\":\"";
    json_escape(out, process);
    out << "\"}}";
  }
  out << "]}";
  return out.str();
}

void write_chrome_trace(const std::string& path) {
  std::string json = chrome_trace_json();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    throw std::runtime_error("trace: cannot write " + path);
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
}

}  // namespace jungle::obs::trace
