#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace jungle::obs::trace {

/// Low-overhead span tracer. Spans carry *two* clocks: the simulated time
/// (the timeline the Chrome/Perfetto export draws, because that is the
/// quantity the scheduler models) and the real steady-clock time (what the
/// numerics actually cost on this machine). Tracing is off by default; the
/// disabled fast path allocates nothing and touches one relaxed atomic.
///
/// Span ids are process-global 8-byte values. The RPC layer propagates the
/// caller's current span id in the frame header, so worker-side spans
/// (evolve, get_state, accel_for) parent under the client call that caused
/// them — across simulated hosts.

using SpanId = std::uint64_t;

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;   // 0 = root
  /// For client RPC spans: the server-side span that handled the call (the
  /// exporter draws a flow arrow client -> worker).
  SpanId remote = 0;
  std::string name;
  std::string category;
  std::string process;      // simulated "host/process" that opened the span
  double sim_begin = 0.0;   // virtual seconds
  double sim_end = 0.0;
  std::uint64_t wall_begin_ns = 0;  // steady clock
  std::uint64_t wall_end_ns = 0;
};

bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Bind the virtual clock + process-identity sources (normally a
/// Simulation's now()/current_name()). `owner` disambiguates nested
/// lifetimes: unbind_clock is a no-op unless called with the owner that
/// bound last. Unbound, spans carry sim time 0 and an empty process name.
void bind_clock(const void* owner, std::function<double()> now,
                std::function<std::string()> process);
void unbind_clock(const void* owner);

/// The current span id on this thread (0 = none). Each simulated process is
/// a real thread, and exactly one runs at a time with happens-before
/// through the scheduler baton — thread_local context is race-free.
SpanId current_span() noexcept;

class Span {
 public:
  Span() = default;
  ~Span() { end(); }
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const noexcept { return rec_ != nullptr; }
  SpanId id() const noexcept;

  /// Record the server-side span that answered this (client RPC) span.
  void note_remote(SpanId remote) noexcept;

  /// Close the span (idempotent; the destructor calls it). A *scoped* span
  /// must end on the thread that opened it; async spans may end anywhere.
  void end();

 private:
  friend Span begin(std::string_view, std::string_view, SpanId, bool);
  std::unique_ptr<SpanRecord> rec_;
  bool scoped_ = false;
  SpanId saved_ = 0;  // previous thread-current span, restored at end
};

/// Nested scoped span: parent = this thread's current span, and it becomes
/// the current span until it ends. Inactive (no allocation) when disabled.
Span span(std::string_view name, std::string_view category = "");

/// Scoped span parented under a wire-propagated foreign id (the worker side
/// of an RPC hop).
Span server_span(std::string_view name, std::string_view category,
                 SpanId parent);

/// Non-scoped span (an RPC in flight): parent = current, but it does NOT
/// become the thread's current span, and may be ended from another process.
Span async_span(std::string_view name, std::string_view category);

std::vector<SpanRecord> snapshot();
std::size_t recorded() noexcept;
/// Drop recorded spans (enabled flag and clock binding survive).
void reset();

/// Serialize recorded spans as Chrome trace-event JSON ("X" complete events
/// on the simulated-time axis, wall durations in args, "M" metadata naming
/// simulated hosts/processes, flow arrows client->worker for RPC spans).
/// Loadable in chrome://tracing and Perfetto.
std::string chrome_trace_json();
void write_chrome_trace(const std::string& path);

}  // namespace jungle::obs::trace
