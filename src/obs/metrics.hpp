#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace jungle::obs::metrics {

/// Process-global metrics registry: named counters, gauges and log-bucketed
/// histograms. Instruments are registered once (mutex-protected map, stable
/// addresses) and updated lock-free with relaxed atomics — hot paths cache
/// the instrument pointer and pay one atomic RMW per update, no allocation.
/// Values accumulate across runs in one process; consumers diff snapshots.

namespace detail {
/// fetch_add for atomic<double> via CAS (portable pre-C++20-TS hardware).
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double seen = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(seen, seen + delta,
                                       std::memory_order_relaxed)) {
  }
}
inline void atomic_min(std::atomic<double>& target, double value) noexcept {
  double seen = target.load(std::memory_order_relaxed);
  while (value < seen && !target.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}
inline void atomic_max(std::atomic<double>& target, double value) noexcept {
  double seen = target.load(std::memory_order_relaxed);
  while (value > seen && !target.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

class Counter {
 public:
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }
  void increment() noexcept { add(1.0); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-spaced histogram: 4 buckets per decade over [1e-12, 1e36) — covers
/// nanoseconds to exaflops without configuration. Percentiles reconstruct
/// from bucket midpoints (quarter-decade resolution, plenty for latency
/// dashboards and CI assertions).
class Histogram {
 public:
  static constexpr int kBucketsPerDecade = 4;
  static constexpr int kDecades = 48;  // 1e-12 .. 1e36
  static constexpr int kBuckets = kBucketsPerDecade * kDecades;

  void observe(double value) noexcept;

  struct Summary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double mean() const noexcept {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };
  Summary summary() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  double percentile_from(const std::uint64_t* counts, std::uint64_t total,
                         double p) const;
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{1e300};
  std::atomic<double> max_{-1e300};
};

/// Named instruments (registered on first use; addresses stable for life of
/// the process — cache them in hot paths).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Current value of a named counter/gauge; 0 when never registered.
double counter_value(const std::string& name);
double gauge_value(const std::string& name);

struct Snapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Summary> histograms;
};
Snapshot snapshot();

/// Snapshot as a JSON object {"counters":{...},"gauges":{...},
/// "histograms":{name:{count,sum,min,max,p50,p90,p99}}}.
std::string snapshot_json();

/// Zero every registered instrument in place (registrations — and cached
/// pointers — stay valid).
void reset();

}  // namespace jungle::obs::metrics
