#include "obs/metrics.hpp"

#include <cmath>
#include <memory>
#include <mutex>
#include <sstream>

namespace jungle::obs::metrics {

namespace {

constexpr double kBucketFloorExponent = -12.0;  // bucket 0 starts at 1e-12

int bucket_index(double value) noexcept {
  if (!(value > 0.0)) return 0;
  double position = (std::log10(value) - kBucketFloorExponent) *
                    Histogram::kBucketsPerDecade;
  if (position < 0.0) return 0;
  if (position >= Histogram::kBuckets) return Histogram::kBuckets - 1;
  return static_cast<int>(position);
}

/// Geometric midpoint of a bucket — the value percentiles reconstruct to.
double bucket_mid(int index) noexcept {
  double exponent =
      kBucketFloorExponent +
      (static_cast<double>(index) + 0.5) / Histogram::kBucketsPerDecade;
  return std::pow(10.0, exponent);
}

struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

}  // namespace

void Histogram::observe(double value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
  detail::atomic_min(min_, value);
  detail::atomic_max(max_, value);
}

double Histogram::percentile_from(const std::uint64_t* counts,
                                  std::uint64_t total, double p) const {
  if (total == 0) return 0.0;
  double target = p * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= target) return bucket_mid(i);
  }
  return bucket_mid(kBuckets - 1);
}

Histogram::Summary Histogram::summary() const {
  Summary out;
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  out.count = total;
  out.sum = sum_.load(std::memory_order_relaxed);
  if (total > 0) {
    out.min = min_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
  }
  out.p50 = percentile_from(counts, total, 0.50);
  out.p90 = percentile_from(counts, total, 0.90);
  out.p99 = percentile_from(counts, total, 0.99);
  return out;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(1e300, std::memory_order_relaxed);
  max_.store(-1e300, std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  auto& slot = reg.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  auto& slot = reg.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  auto& slot = reg.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

double counter_value(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  auto it = reg.counters.find(name);
  return it != reg.counters.end() ? it->second->value() : 0.0;
}

double gauge_value(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  auto it = reg.gauges.find(name);
  return it != reg.gauges.end() ? it->second->value() : 0.0;
}

Snapshot snapshot() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  Snapshot out;
  for (const auto& [name, instrument] : reg.counters) {
    out.counters[name] = instrument->value();
  }
  for (const auto& [name, instrument] : reg.gauges) {
    out.gauges[name] = instrument->value();
  }
  for (const auto& [name, instrument] : reg.histograms) {
    out.histograms[name] = instrument->summary();
  }
  return out;
}

std::string snapshot_json() {
  Snapshot snap = snapshot();
  std::ostringstream out;
  out.precision(15);
  auto scalars = [&](const std::map<std::string, double>& values) {
    bool first = true;
    for (const auto& [name, value] : values) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":" << value;
    }
  };
  out << "{\"counters\":{";
  scalars(snap.counters);
  out << "},\"gauges\":{";
  scalars(snap.gauges);
  out << "},\"histograms\":{";
  bool first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"min\":" << h.min << ",\"max\":" << h.max << ",\"p50\":" << h.p50
        << ",\"p90\":" << h.p90 << ",\"p99\":" << h.p99 << "}";
  }
  out << "}}";
  return out.str();
}

void reset() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (auto& [name, instrument] : reg.counters) instrument->reset();
  for (auto& [name, instrument] : reg.gauges) instrument->reset();
  for (auto& [name, instrument] : reg.histograms) instrument->reset();
}

}  // namespace jungle::obs::metrics
