#include "explore/explore.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "amuse/faults.hpp"
#include "sim/network.hpp"
#include "util/error.hpp"

namespace jungle::explore {

namespace faultpoint = amuse::faultpoint;

// ---------------------------------------------------------------------------
// Schedule format
// ---------------------------------------------------------------------------

namespace {

const char* kind_name(Injection::Kind kind) {
  switch (kind) {
    case Injection::Kind::crash:
      return "crash";
    case Injection::Kind::link:
      return "link";
    case Injection::Kind::daemon:
      return "daemon";
    case Injection::Kind::proxy:
      return "proxy";
    case Injection::Kind::worker:
      return "worker";
    case Injection::Kind::timer:
      return "timer";
  }
  return "crash";
}

bool parse_kind(const std::string& text, Injection::Kind& kind) {
  if (text == "crash") {
    kind = Injection::Kind::crash;
  } else if (text == "link") {
    kind = Injection::Kind::link;
  } else if (text == "daemon") {
    kind = Injection::Kind::daemon;
  } else if (text == "proxy") {
    kind = Injection::Kind::proxy;
  } else if (text == "worker") {
    kind = Injection::Kind::worker;
  } else if (text == "timer") {
    kind = Injection::Kind::timer;
  } else {
    return false;
  }
  return true;
}

/// Timer-tier skew: off the protocol-point grid on purpose. Not a multiple
/// of the 0.05 s hop-retry tick, so the crash lands *between* whatever the
/// addressed point and its successor are doing.
constexpr double kTimerSkew = 0.075;

// FNV-1a, same constants as the checkpoint digest (amuse/faults.cpp) — two
// independent hash families buy nothing here.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix_bytes(std::uint64_t& hash, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

void mix_string(std::uint64_t& hash, const std::string& text) {
  mix_bytes(hash, text.data(), text.size());
  mix_bytes(hash, "\0", 1);  // delimit: ("ab","c") != ("a","bc")
}

void mix_int(std::uint64_t& hash, int value) {
  mix_bytes(hash, &value, sizeof(value));
}

}  // namespace

std::string format_schedule(const Schedule& schedule) {
  std::ostringstream out;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Injection& inj = schedule[i];
    if (i) out << ";";
    out << faultpoint::name(inj.point) << "@" << inj.iteration << "#"
        << inj.occurrence << "=" << kind_name(inj.kind) << ":" << inj.victim;
  }
  return out.str();
}

Schedule parse_schedule(const std::string& text) {
  Schedule schedule;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ';')) {
    if (item.empty()) continue;
    auto fail = [&](const std::string& why) {
      throw ConfigError("bad schedule entry \"" + item + "\": " + why);
    };
    auto at = item.find('@');
    auto hash = item.find('#', at == std::string::npos ? 0 : at);
    auto eq = item.find('=', hash == std::string::npos ? 0 : hash);
    auto colon = item.find(':', eq == std::string::npos ? 0 : eq);
    if (at == std::string::npos || hash == std::string::npos ||
        eq == std::string::npos || colon == std::string::npos)
      fail("expected point@iteration#occurrence=kind:victim");
    Injection inj;
    if (!faultpoint::parse(item.substr(0, at), inj.point))
      fail("unknown fault point \"" + item.substr(0, at) + "\"");
    try {
      inj.iteration = std::stoi(item.substr(at + 1, hash - at - 1));
      inj.occurrence = std::stoi(item.substr(hash + 1, eq - hash - 1));
    } catch (const std::exception&) {
      fail("iteration/occurrence must be integers");
    }
    std::string kind = item.substr(eq + 1, colon - eq - 1);
    if (!parse_kind(kind, inj.kind))
      fail("kind must be crash, link, daemon, proxy, worker or timer, "
           "got \"" + kind + "\"");
    inj.victim = item.substr(colon + 1);
    if (inj.victim.empty()) fail("empty victim");
    schedule.push_back(std::move(inj));
  }
  return schedule;
}

// ---------------------------------------------------------------------------
// ScheduleInjector
// ---------------------------------------------------------------------------

ScheduleInjector::ScheduleInjector(sim::Network& net, Schedule schedule)
    : net_(&net), schedule_(std::move(schedule)) {}

void ScheduleInjector::fire(const Injection& injection) {
  sim::Host* victim = injection.kind == Injection::Kind::link
                          ? nullptr
                          : net_->find_host(injection.victim);
  switch (injection.kind) {
    case Injection::Kind::crash:
      if (victim && victim->is_up()) victim->crash();
      break;
    case Injection::Kind::link:
      net_->set_link_down(injection.victim, true);
      break;
    // Process-tier victims: kill one process, leave the machine up. A miss
    // (no such process on this host right now) is a deliberate no-op — the
    // DFS addresses every host at every point, and most are empty.
    case Injection::Kind::daemon:
      if (victim && victim->is_up()) victim->kill_process("amuse-daemon");
      break;
    case Injection::Kind::proxy:
      if (victim && victim->is_up()) victim->kill_process("job");
      break;
    case Injection::Kind::worker:
      if (victim && victim->is_up()) victim->kill_process("worker");
      break;
    case Injection::Kind::timer:
      // Crash *between* protocol points: schedule it a fixed skew after
      // this one instead of synchronously at it.
      if (victim && victim->is_up()) {
        net_->simulation().after(kTimerSkew, [victim] {
          if (victim->is_up()) victim->crash();
        });
      }
      break;
  }
}

amuse::faultpoint::Hook ScheduleInjector::hook() {
  return [this](const faultpoint::Context& ctx) {
    if (ctx.point == faultpoint::Point::ckpt_committed)
      commits_.emplace_back(ctx.iteration + 1, ctx.digest);
    int occurrence = counts_[{static_cast<int>(ctx.point), ctx.iteration}]++;
    trace_.push_back(TraceEntry{ctx.point, ctx.iteration, occurrence, fired_});
    // Injections fire in schedule order: the next pending one whose address
    // matches this visit. Out-of-order entries simply never fire (reported
    // via fired(), so the explorer can tell a stale schedule from a hit).
    if (static_cast<std::size_t>(fired_) < schedule_.size()) {
      const Injection& next = schedule_[static_cast<std::size_t>(fired_)];
      if (next.point == ctx.point && next.iteration == ctx.iteration &&
          next.occurrence == occurrence) {
        ++fired_;
        trace_.back().fired = fired_;
        fire(next);
      }
    }
  };
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

Explorer::Explorer(util::Config config, Options options)
    : config_(std::move(config)), options_(options) {
  spec_ = amuse::experiment::ExperimentSpec::from_config(config_);
  // The explorer supplies all faults itself, on top of a checkpointing run.
  spec_.checkpointing = true;
  spec_.kill_host.clear();
  spec_.kill_after_iteration = -1;
  if (options_.iterations > 0) spec_.iterations = options_.iterations;
  spec_.validate();

  // Candidate victims: every host except the client machine (crashing the
  // script is game over, not a protocol scenario) and every WAN link. LAN
  // links and the loopback stay up — they model a machine's own wiring.
  // The process tier (PR 8): the daemon lives on the client machine — that
  // kill is survivable, so the client IS a daemon-victim; proxy/worker
  // kills address the non-client hosts (a miss is a no-op); timer crashes
  // address the same hosts as the crash tier, just off the point grid.
  amuse::experiment::JungleTestbed bed(config_);
  std::string client = bed.client_host().name();
  auto add = [&](Injection::Kind kind, const std::string& victim) {
    if (!options_.victim_kinds.empty() &&
        options_.victim_kinds.count(kind) == 0) {
      return;
    }
    Injection inj;
    inj.kind = kind;
    inj.victim = victim;
    victims_.push_back(std::move(inj));
  };
  add(Injection::Kind::daemon, client);
  for (const std::string& host : bed.network().host_names()) {
    if (host == client) continue;
    add(Injection::Kind::crash, host);
    add(Injection::Kind::timer, host);
    add(Injection::Kind::proxy, host);
    add(Injection::Kind::worker, host);
  }
  for (const auto& link : bed.network().traffic_report()) {
    if (link.name == "loopback" || link.name.rfind("lan:", 0) == 0) continue;
    add(Injection::Kind::link, link.name);
  }
}

RunReport Explorer::run_schedule(const Schedule& schedule) {
  amuse::experiment::JungleTestbed bed(config_);
  ScheduleInjector injector(bed.network(), schedule);
  RunReport report;
  {
    faultpoint::ScopedHook guard(injector.hook());
    try {
      amuse::experiment::Result result =
          amuse::experiment::run_experiment(bed, spec_);
      report.completed = true;
      report.restarts = result.restarts;
      report.placement = result.placement;
      // Digest the final model states through the same hash the checkpoint
      // layer uses — bit-for-bit comparison against the golden run.
      amuse::GraphCheckpoint fin;
      fin.epoch = result.iterations;
      fin.resize(result.models.size());
      for (std::size_t i = 0; i < result.models.size(); ++i) {
        const auto& model = result.models[i];
        if (model.role == sched::Role::gravity)
          fin.gravity[i].state = model.gravity;
        else if (model.role == sched::Role::hydro)
          fin.hydro[i].state = model.hydro;
        report.energy += model.kinetic + model.potential + model.thermal;
      }
      report.final_digest = amuse::digest(fin);
    } catch (const std::exception& error) {
      report.error = error.what();
    }
  }
  report.fired = injector.fired();
  report.trace = injector.trace();
  report.commits = injector.commits();
  report.live_processes = bed.simulation().live_processes();
  report.live_names = bed.simulation().live_process_names();

  // Interleaving-equivalence hash: two schedules that killed the same
  // victims around the same iterations and recovered onto the same
  // placement leave the run in the same state — whatever protocol point the
  // fault hit on the way. Extensions are explored from one representative.
  std::uint64_t hash = kFnvOffset;
  for (int i = 0; i < report.fired; ++i) {
    const Injection& inj = schedule[static_cast<std::size_t>(i)];
    mix_int(hash, inj.iteration);
    mix_int(hash, static_cast<int>(inj.kind));
    mix_string(hash, inj.victim);
  }
  mix_string(hash, report.placement);
  mix_int(hash, report.restarts);
  report.resume_hash = hash;
  return report;
}

const RunReport& Explorer::golden() {
  if (!have_golden_) {
    golden_ = run_schedule({});
    if (!golden_.completed)
      throw CodeError("golden (fault-free) run failed: " + golden_.error);
    have_golden_ = true;
  }
  return golden_;
}

void Explorer::check(const Schedule& schedule, const RunReport& report,
                     std::vector<Violation>& violations) {
  golden();
  const std::string text = format_schedule(schedule);
  auto flag = [&](const std::string& what) {
    violations.push_back(Violation{text, what});
  };
  if (!report.completed) {
    flag("run did not complete: " + report.error);
    return;
  }
  // Every committed checkpoint must land on the golden bits for its epoch —
  // including epochs re-committed after a rollback.
  for (const auto& [epoch, digest] : report.commits) {
    for (const auto& [gold_epoch, gold_digest] : golden_.commits) {
      if (gold_epoch != epoch) continue;
      if (gold_digest != digest)
        flag("checkpoint digest diverged from golden run at epoch " +
             std::to_string(epoch));
      break;
    }
  }
  if (report.final_digest != golden_.final_digest)
    flag("final particle state diverged from golden run");
  double drift = std::fabs(report.energy - golden_.energy);
  double scale = std::fabs(golden_.energy);
  if (scale < 1.0) scale = 1.0;
  if (drift > options_.energy_tolerance * scale)
    flag("energy drift " + std::to_string(drift) + " exceeds tolerance");
  // Crashed hosts take their processes down, so fewer survivors than the
  // golden run is expected; *more* means recovery leaked a worker, socket
  // loop or daemon relay.
  if (report.live_processes > golden_.live_processes) {
    // Name the leaks: whatever survives here but not in the golden run.
    std::vector<std::string> extra = report.live_names;
    for (const std::string& name : golden_.live_names) {
      auto it = std::find(extra.begin(), extra.end(), name);
      if (it != extra.end()) extra.erase(it);
    }
    std::string names;
    for (const std::string& name : extra) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    flag("leaked " +
         std::to_string(report.live_processes - golden_.live_processes) +
         " simulated process(es) after recovery: " + names);
  }
}

bool Explorer::budget_left(const Summary& summary) const {
  return options_.max_schedules <= 0 ||
         summary.schedules < options_.max_schedules;
}

void Explorer::dfs(const Schedule& base,
                   const std::vector<ScheduleInjector::TraceEntry>& frontier,
                   Summary& summary) {
  for (const auto& entry : frontier) {
    // Only extend past the point where the base schedule finished firing:
    // earlier points belong to runs already explored at shallower depth.
    if (entry.fired != static_cast<int>(base.size())) continue;
    for (const Injection& victim : victims_) {
      if (victim.kind == Injection::Kind::link && !options_.link_faults)
        continue;
      // Re-killing a dead victim is a no-op run: skip it statically. The
      // process tier is exempt — a supervised restart brings the victim
      // back, and killing it *again* (the double-fault mid-backoff case)
      // is exactly what this tier is here to exercise.
      bool repeatable = victim.kind == Injection::Kind::daemon ||
                        victim.kind == Injection::Kind::proxy ||
                        victim.kind == Injection::Kind::worker;
      bool already = false;
      if (!repeatable) {
        for (const Injection& prior : base)
          already |=
              prior.kind == victim.kind && prior.victim == victim.victim;
      }
      if (already) continue;
      if (!budget_left(summary)) return;

      Schedule schedule = base;
      Injection inj = victim;
      inj.point = entry.point;
      inj.iteration = entry.iteration;
      inj.occurrence = entry.occurrence;
      schedule.push_back(inj);

      RunReport report = run_schedule(schedule);
      ++summary.schedules;
      check(schedule, report, summary.violations);

      if (static_cast<int>(schedule.size()) >= options_.max_faults) continue;
      if (report.fired != static_cast<int>(schedule.size())) continue;
      if (!seen_.insert(report.resume_hash).second) {
        ++summary.pruned;
        continue;
      }
      dfs(schedule, report.trace, summary);
    }
  }
}

Explorer::Summary Explorer::explore() {
  Summary summary;
  const RunReport& gold = golden();
  seen_.clear();
  seen_.insert(gold.resume_hash);
  dfs({}, gold.trace, summary);
  return summary;
}

}  // namespace jungle::explore
