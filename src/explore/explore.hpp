#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "amuse/experiment.hpp"
#include "amuse/faultpoint.hpp"
#include "util/config.hpp"

namespace jungle::explore {

/// Systematic fault-schedule exploration over the deterministic simulator
/// (the SimGrid DFS-explorer idea applied to our checkpoint / re-place /
/// rollback protocol). A *schedule* is a list of injections, each addressed
/// by the (protocol point, bridge iteration, occurrence) tuple at which it
/// fires and naming a victim (a host to crash or a WAN link to cut). The
/// explorer runs an experiment once fault-free (the golden run), then
/// enumerates schedules depth-first — every fault point of the golden run
/// times every victim, extended through the fault points recovery itself
/// exposes (death during checkpoint commit, a second death while re-placing
/// the first, a link cut racing a re-place, a frontend dying mid-rollback)
/// — and checks after every run that recovery landed the physics bit-for-bit
/// on the golden trajectory, energy drift stays bounded, and no simulated
/// process leaked. Runs are deterministic, so any schedule is a one-line
/// repro (`explore --replay "<schedule>"`).

/// One injected fault.
struct Injection {
  amuse::faultpoint::Point point = amuse::faultpoint::Point::step_top_kick;
  /// Bridge-step index the protocol was working on (-1 for points reached
  /// outside a specific step, e.g. recovery internals).
  int iteration = 0;
  /// n-th time the run reaches (point, iteration); replays re-visit the
  /// same point after a rollback, so the occurrence index disambiguates.
  int occurrence = 0;
  /// Victim tiers (PR 8 added the process-level and timer tiers):
  ///   crash  — whole host down (the PR 2 scenario)
  ///   link   — WAN link cut, stays down
  ///   daemon — kill the amuse-daemon process on the host, machine stays up
  ///   proxy  — kill the worker-proxy job process on the host
  ///   worker — kill the native worker process on the host
  ///   timer  — host crash, but *between* protocol points: fires a fixed
  ///            skew after the addressed point instead of synchronously at
  ///            it, exercising the windows the 12 points straddle.
  enum class Kind { crash, link, daemon, proxy, worker, timer };
  Kind kind = Kind::crash;
  /// Host name (crash/daemon/proxy/worker/timer) or WAN link name (link).
  std::string victim;
};

using Schedule = std::vector<Injection>;

/// One-line replay format:
///   point@iteration#occurrence=kind:victim[;...]
/// e.g. "ckpt.commit@1#0=crash:node0;recover.replace@-1#0=link:metro-wan"
std::string format_schedule(const Schedule& schedule);
Schedule parse_schedule(const std::string& text);  // throws ConfigError

/// Fault-point hook that fires a schedule and records the trace of every
/// fault point the run reached (the DFS frontier for deeper schedules).
/// Install via faultpoint::ScopedHook for the duration of one run.
class ScheduleInjector {
 public:
  ScheduleInjector(sim::Network& net, Schedule schedule);

  amuse::faultpoint::Hook hook();

  struct TraceEntry {
    amuse::faultpoint::Point point;
    int iteration = 0;
    int occurrence = 0;
    /// Injections already fired when this point was reached — extensions
    /// of a schedule only make sense at points past its last injection.
    int fired = 0;
  };

  int fired() const noexcept { return fired_; }
  const std::vector<TraceEntry>& trace() const noexcept { return trace_; }
  /// Digest of the committed graph checkpoint per epoch, in commit order.
  /// An epoch re-committed after a rollback must re-land on the same bits.
  const std::vector<std::pair<int, std::uint64_t>>& commits() const noexcept {
    return commits_;
  }

 private:
  void fire(const Injection& injection);

  sim::Network* net_;
  Schedule schedule_;
  int fired_ = 0;
  std::map<std::pair<int, int>, int> counts_;  // (point, iteration) -> seen
  std::vector<TraceEntry> trace_;
  std::vector<std::pair<int, std::uint64_t>> commits_;
};

/// Everything one deterministic run tells the explorer.
struct RunReport {
  bool completed = false;  // ran all iterations and shut down cleanly
  std::string error;       // exception text when !completed
  int fired = 0;           // injections that actually fired
  int restarts = 0;
  std::vector<std::pair<int, std::uint64_t>> commits;  // epoch -> digest
  std::uint64_t final_digest = 0;  // digest over the final model states
  double energy = 0.0;             // sum of model energies at the end
  std::size_t live_processes = 0;  // simulated processes still alive
  std::vector<std::string> live_names;  // their names (leak diagnostics)
  std::string placement;           // placement that finished the run
  std::vector<ScheduleInjector::TraceEntry> trace;
  /// State hash for DFS pruning: schedules that leave the jungle in an
  /// equivalent state (same victims down per iteration, same surviving
  /// placement, same recovery count) are explored deeper only once.
  std::uint64_t resume_hash = 0;
};

struct Violation {
  std::string schedule;  // format_schedule() of the failing run
  std::string what;
};

struct Options {
  int max_faults = 2;      // DFS depth bound
  int max_schedules = 0;   // stop after this many runs (0 = unbounded)
  int iterations = 0;      // override the spec's iteration count (0 = keep)
  bool link_faults = true; // also cut WAN links, not just crash hosts
  /// Energy drift tolerance relative to the golden run's total energy.
  double energy_tolerance = 1e-8;
  /// Restrict the victim set to these kinds (empty = every kind). The CLI
  /// spells Kind::crash "host".
  std::set<Injection::Kind> victim_kinds;
};

class Explorer {
 public:
  /// `config` is a full experiment INI (topology + resources + graph),
  /// e.g. examples/experiments/triple-plummer.ini.
  Explorer(util::Config config, Options options);

  /// One deterministic run under `schedule` on a fresh testbed.
  RunReport run_schedule(const Schedule& schedule);

  struct Summary {
    int schedules = 0;  // fault schedules run (golden run not counted)
    int pruned = 0;     // extensions skipped via state-hash pruning
    std::vector<Violation> violations;
  };

  /// Golden run + DFS enumeration. Throws CodeError when the golden run
  /// itself fails (the explorer needs a healthy baseline).
  Summary explore();

  /// Check one report against the golden run's invariants; appends to
  /// `violations` when the run broke one. Runs the golden run on demand.
  void check(const Schedule& schedule, const RunReport& report,
             std::vector<Violation>& violations);

  const RunReport& golden();
  const std::vector<Injection>& candidate_victims() const noexcept {
    return victims_;
  }

 private:
  void dfs(const Schedule& base,
           const std::vector<ScheduleInjector::TraceEntry>& frontier,
           Summary& summary);
  bool budget_left(const Summary& summary) const;

  util::Config config_;
  Options options_;
  amuse::experiment::ExperimentSpec spec_;
  std::vector<Injection> victims_;  // point/iteration/occurrence unset
  bool have_golden_ = false;
  RunReport golden_;
  std::set<std::uint64_t> seen_;
};

}  // namespace jungle::explore
