#pragma once

#include <functional>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/network.hpp"
#include "util/bytebuffer.hpp"

namespace jungle::mpi {

/// Match any sender in recv().
constexpr int kAnySource = -1;

/// In-simulator MPI subset following the message-passing model of the LLNL
/// MPI tutorial: explicit cooperative sends/receives between ranks, plus the
/// collectives the kernels need. Payload bytes cross the simulated network
/// (TrafficClass::mpi), so MPI traffic shows up separately in the Fig-11
/// style monitoring, exactly like the paper's orange edges.
class MpiWorld;

/// Per-rank communicator handle. Methods must be called from the rank's own
/// process. Sends are asynchronous (buffered); receives block.
class Comm {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Point-to-point. Tags must be >= 0 for user messages.
  void send(int dst, int tag, util::ByteWriter message);
  util::ByteReader recv(int src, int tag);

  /// Typed convenience used heavily by the kernels.
  void send_doubles(int dst, int tag, std::span<const double> values);
  std::vector<double> recv_doubles(int src, int tag);

  /// Collectives (deterministic linear algorithms rooted at rank 0).
  void barrier();
  std::vector<std::uint8_t> bcast(std::vector<std::uint8_t> data, int root);
  double allreduce_sum(double value);
  double allreduce_min(double value);
  double allreduce_max(double value);
  /// Concatenation of every rank's `local` in rank order, on all ranks.
  std::vector<double> allgatherv(std::span<const double> local);
  /// Concatenation on root only (empty elsewhere).
  std::vector<double> gatherv(std::span<const double> local, int root);

  sim::Host& host();

 private:
  friend class MpiWorld;
  Comm(MpiWorld* world, int rank) : world_(world), rank_(rank) {}

  double reduce_generic(double value, double (*op)(double, double));

  MpiWorld* world_;
  int rank_;
};

/// A launched parallel job: `nranks` processes placed round-robin over the
/// given hosts (the paper's Gadget worker: "8 nodes, C/MPI").
class MpiWorld {
 public:
  MpiWorld(sim::Network& net, std::vector<sim::Host*> hosts, int nranks);

  /// Spawn all rank processes. Each runs `rank_main(comm)`.
  void launch(const std::string& name, std::function<void(Comm&)> rank_main);

  /// Spawn only ranks [first_rank, nranks). Used when rank 0 is driven
  /// inline by an existing process (e.g. an RPC worker server that doubles
  /// as MPI rank 0 — the paper's Gadget worker layout).
  void launch_from(int first_rank, const std::string& name,
                   std::function<void(Comm&)> rank_main);

  /// Communicator handle for direct use by an existing process.
  Comm& comm(int rank) { return *comms_.at(rank); }

  /// Block the calling process until every rank returned.
  void wait();

  int size() const noexcept { return nranks_; }
  sim::Host& host_of(int rank) { return *hosts_[rank % hosts_.size()]; }
  bool done() const noexcept { return finished_ == launched_; }

  /// Sum of user payload bytes sent (monitoring / tests).
  double bytes_sent() const noexcept { return bytes_sent_; }

 private:
  friend class Comm;

  struct Envelope {
    int src;
    int tag;
    std::vector<std::uint8_t> bytes;
  };

  struct RankState {
    explicit RankState(sim::Simulation& sim) : inbox(sim) {}
    sim::Mailbox<Envelope> inbox;
    std::list<Envelope> unmatched;
  };

  void transfer(int src, int dst, int tag, std::vector<std::uint8_t> bytes);
  util::ByteReader match(int self, int src, int tag);

  sim::Network& net_;
  std::vector<sim::Host*> hosts_;
  int nranks_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  std::vector<std::unique_ptr<Comm>> comms_;
  int finished_ = 0;
  int launched_ = 0;
  sim::Signal all_done_;
  double bytes_sent_ = 0;
};

}  // namespace jungle::mpi
