#include "mpi/mpi.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace jungle::mpi {

namespace {
// Internal collective tags live below user space.
constexpr int kBarrierTag = -10;
constexpr int kBarrierRelease = -11;
constexpr int kBcastTag = -12;
constexpr int kReduceTag = -13;
constexpr int kGatherTag = -14;
// Per-message envelope overhead on the wire.
constexpr double kHeaderBytes = 48.0;
}  // namespace

MpiWorld::MpiWorld(sim::Network& net, std::vector<sim::Host*> hosts,
                   int nranks)
    : net_(net),
      hosts_(std::move(hosts)),
      nranks_(nranks),
      all_done_(net.simulation()) {
  if (hosts_.empty()) throw Error("MpiWorld needs at least one host");
  if (nranks_ <= 0) throw Error("MpiWorld needs at least one rank");
  for (int r = 0; r < nranks_; ++r) {
    ranks_.push_back(std::make_unique<RankState>(net_.simulation()));
    comms_.push_back(std::unique_ptr<Comm>(new Comm(this, r)));
  }
}

void MpiWorld::launch(const std::string& name,
                      std::function<void(Comm&)> rank_main) {
  launch_from(0, name, std::move(rank_main));
}

void MpiWorld::launch_from(int first_rank, const std::string& name,
                           std::function<void(Comm&)> rank_main) {
  for (int r = first_rank; r < nranks_; ++r) {
    Comm* comm = comms_[r].get();
    ++launched_;
    host_of(r).spawn(name + ".r" + std::to_string(r),
                     [this, comm, rank_main] {
                       rank_main(*comm);
                       ++finished_;
                       if (finished_ == launched_) all_done_.notify_all();
                     });
  }
}

void MpiWorld::wait() {
  while (finished_ < launched_) all_done_.wait();
}

void MpiWorld::transfer(int src, int dst, int tag,
                        std::vector<std::uint8_t> bytes) {
  bytes_sent_ += static_cast<double>(bytes.size());
  RankState* state = ranks_[dst].get();
  auto payload = std::make_shared<Envelope>(
      Envelope{src, tag, std::move(bytes)});
  double wire = static_cast<double>(payload->bytes.size()) + kHeaderBytes;
  auto arrival = net_.send(host_of(src), host_of(dst), wire,
                           sim::TrafficClass::mpi, [state, payload] {
                             state->inbox.put(std::move(*payload));
                           });
  if (!arrival) {
    // Cluster interconnects in the model don't go down mid-job; losing an
    // MPI message means a topology bug — fail loudly.
    throw ConnectError("MPI message lost between ranks " +
                       std::to_string(src) + " and " + std::to_string(dst));
  }
}

util::ByteReader MpiWorld::match(int self, int src, int tag) {
  RankState& state = *ranks_[self];
  while (true) {
    for (auto it = state.unmatched.begin(); it != state.unmatched.end(); ++it) {
      if ((src == kAnySource || it->src == src) && it->tag == tag) {
        std::vector<std::uint8_t> bytes = std::move(it->bytes);
        state.unmatched.erase(it);
        return util::ByteReader(std::move(bytes));
      }
    }
    Envelope next = state.inbox.get();
    state.unmatched.push_back(std::move(next));
  }
}

int Comm::size() const noexcept { return world_->size(); }

sim::Host& Comm::host() { return world_->host_of(rank_); }

void Comm::send(int dst, int tag, util::ByteWriter message) {
  if (dst < 0 || dst >= size()) throw Error("send to invalid rank");
  world_->transfer(rank_, dst, tag, std::move(message).take());
}

util::ByteReader Comm::recv(int src, int tag) {
  return world_->match(rank_, src, tag);
}

void Comm::send_doubles(int dst, int tag, std::span<const double> values) {
  util::ByteWriter writer;
  writer.put_span(values);
  send(dst, tag, std::move(writer));
}

std::vector<double> Comm::recv_doubles(int src, int tag) {
  return recv(src, tag).get_vector<double>();
}

void Comm::barrier() {
  util::ByteWriter token;
  token.put<std::uint8_t>(1);
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) recv(kAnySource, kBarrierTag);
    for (int r = 1; r < size(); ++r) {
      util::ByteWriter release;
      release.put<std::uint8_t>(1);
      send(r, kBarrierRelease, std::move(release));
    }
  } else {
    send(0, kBarrierTag, std::move(token));
    recv(0, kBarrierRelease);
  }
}

std::vector<std::uint8_t> Comm::bcast(std::vector<std::uint8_t> data,
                                      int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      util::ByteWriter writer;
      writer.put_vector(data);
      send(r, kBcastTag, std::move(writer));
    }
    return data;
  }
  return recv(root, kBcastTag).get_vector<std::uint8_t>();
}

double Comm::reduce_generic(double value, double (*op)(double, double)) {
  if (rank_ == 0) {
    double accumulated = value;
    for (int r = 1; r < size(); ++r) {
      auto reader = recv(kAnySource, kReduceTag);
      accumulated = op(accumulated, reader.get<double>());
    }
    for (int r = 1; r < size(); ++r) {
      util::ByteWriter writer;
      writer.put<double>(accumulated);
      send(r, kReduceTag, std::move(writer));
    }
    return accumulated;
  }
  util::ByteWriter writer;
  writer.put<double>(value);
  send(0, kReduceTag, std::move(writer));
  return recv(0, kReduceTag).get<double>();
}

double Comm::allreduce_sum(double value) {
  return reduce_generic(value, [](double a, double b) { return a + b; });
}

double Comm::allreduce_min(double value) {
  return reduce_generic(value,
                        [](double a, double b) { return std::min(a, b); });
}

double Comm::allreduce_max(double value) {
  return reduce_generic(value,
                        [](double a, double b) { return std::max(a, b); });
}

std::vector<double> Comm::gatherv(std::span<const double> local, int root) {
  if (rank_ == root) {
    std::vector<std::vector<double>> parts(size());
    parts[rank_] = std::vector<double>(local.begin(), local.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      parts[r] = recv_doubles(r, kGatherTag);
    }
    std::vector<double> all;
    for (auto& part : parts) all.insert(all.end(), part.begin(), part.end());
    return all;
  }
  send_doubles(root, kGatherTag, local);
  return {};
}

std::vector<double> Comm::allgatherv(std::span<const double> local) {
  std::vector<double> gathered = gatherv(local, 0);
  util::ByteWriter writer;
  if (rank_ == 0) writer.put_vector(gathered);
  std::vector<std::uint8_t> payload =
      rank_ == 0 ? std::move(writer).take() : std::vector<std::uint8_t>{};
  payload = bcast(std::move(payload), 0);
  if (rank_ == 0) return gathered;
  return util::ByteReader(std::move(payload)).get_vector<double>();
}

}  // namespace jungle::mpi
