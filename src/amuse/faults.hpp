#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"

namespace jungle::amuse {

/// Fault-tolerance extension (the paper's §7 future work: "In theory it
/// should be possible to transparently find a replacement machine"). The
/// script checkpoints worker state after each bridge step; when a worker
/// dies (WorkerDiedError from the RPC layer), it starts a replacement on
/// another resource and reloads the checkpoint. All three evolving model
/// kinds are covered — gravity (phiGRAPE), hydro (Gadget) and the coupling
/// field kernel (Octgrav/Fi) — which is what lets the placement scheduler
/// re-place any kernel mid-run, not just the star cluster.

struct GravityCheckpoint {
  GravityState state;
  double model_time = 0.0;
  double eps2 = 1e-4;
  double eta = 0.02;
  /// Corrector-stage forces the integrator carries across evolve() calls
  /// (evaluated at *predicted* positions — a fresh evaluation at the
  /// corrected state differs by roundoff). Restored verbatim so a replayed
  /// step resumes the checkpointed substep sequence bit-for-bit. Not part
  /// of the digest: two runs agreeing on mass/position/velocity/time agree
  /// on these by construction.
  std::vector<Vec3> acc;
  std::vector<Vec3> jerk;
};

struct HydroCheckpoint {
  HydroState state;
  double model_time = 0.0;
  double eps2 = 1e-4;
  double theta = 0.6;
};

/// The field worker is stateless between kicks except for its sources; the
/// checkpoint is the last source set the client shipped. (Its eps2/theta
/// live in the WorkerSpec the replacement starts from, not here.)
struct FieldCheckpoint {
  std::vector<double> source_mass;
  std::vector<Vec3> source_position;
};

/// One consistent snapshot of the *whole* model graph. Slot-indexed in
/// declaration order; exactly one of the per-slot entries is meaningful,
/// matching the model's role (stellar models re-derive from their ZAMS
/// masses instead). Capture stages into a fresh GraphCheckpoint and the
/// runner installs it with a single move — all models commit or none, so a
/// death anywhere during checkpointing can never leave mixed-epoch saves.
struct GraphCheckpoint {
  /// Bridge steps the snapshot describes (0 = initial conditions). The
  /// rollback target is *this* number — pairing the clock with the states
  /// it belongs to by construction.
  int epoch = 0;
  /// The bridge clock at commit, bit-exact (epoch * dt re-derived by
  /// multiplication can differ from the accumulated sum in the last ulp).
  /// The rebuilt bridge restarts from these exact bits so every subsequent
  /// evolve target matches the fault-free run's.
  double time = 0.0;
  std::vector<GravityCheckpoint> gravity;
  std::vector<HydroCheckpoint> hydro;
  std::vector<FieldCheckpoint> field;

  void resize(std::size_t n_models) {
    gravity.resize(n_models);
    hydro.resize(n_models);
    field.resize(n_models);
  }
};

/// FNV-1a over the checkpoint's raw state (bit patterns of every particle
/// array plus the epoch). Two runs landing on the same digest at the same
/// epoch carry bit-for-bit identical physics — the golden-run invariant the
/// fault-schedule explorer checks after every recovery.
std::uint64_t digest(const GraphCheckpoint& save);
/// Per-model digests (same hash family) — lets the explorer pinpoint
/// *which* model diverged, not just that the graph did.
std::uint64_t digest(const GravityCheckpoint& save);
std::uint64_t digest(const HydroCheckpoint& save);
std::uint64_t digest(const FieldCheckpoint& save);

/// Snapshot live workers.
GravityCheckpoint checkpoint_gravity(GravityClient& gravity);
HydroCheckpoint checkpoint_hydro(HydroClient& hydro);
FieldCheckpoint checkpoint_field(FieldClient& field);

/// Restore a checkpoint into a *fresh* worker (local or remote). The
/// restored worker resumes on the *absolute* clock: its model time is the
/// checkpoint's, it accepts the same evolve targets as the worker it
/// replaces, and (for gravity) it carries the checkpointed corrector-stage
/// forces — so the replayed steps are bit-for-bit the fault-free ones.
void restore_gravity(GravityClient& gravity, const GravityCheckpoint& save);
void restore_hydro(HydroClient& hydro, const HydroCheckpoint& save);
void restore_field(FieldClient& field, const FieldCheckpoint& save);

/// Start a replacement worker through the daemon and restore the
/// checkpoint into it. The returned client continues from the snapshot.
std::unique_ptr<GravityClient> restart_gravity(DaemonClient& daemon,
                                               const WorkerSpec& spec,
                                               const std::string& resource,
                                               const GravityCheckpoint& save,
                                               int nodes = 1);
std::unique_ptr<HydroClient> restart_hydro(DaemonClient& daemon,
                                           const WorkerSpec& spec,
                                           const std::string& resource,
                                           const HydroCheckpoint& save,
                                           int nodes = 1);
std::unique_ptr<FieldClient> restart_field(DaemonClient& daemon,
                                           const WorkerSpec& spec,
                                           const std::string& resource,
                                           const FieldCheckpoint& save,
                                           int nodes = 1);

}  // namespace jungle::amuse
