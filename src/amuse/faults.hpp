#pragma once

#include <memory>
#include <string>

#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"

namespace jungle::amuse {

/// Fault-tolerance extension (the paper's §7 future work: "In theory it
/// should be possible to transparently find a replacement machine"). The
/// script checkpoints worker state after each bridge step; when a worker
/// dies (CodeError with worker_died from the RPC layer), it starts a
/// replacement on another resource and reloads the checkpoint.

struct GravityCheckpoint {
  GravityState state;
  double model_time = 0.0;
  double eps2 = 1e-4;
  double eta = 0.02;
};

/// Snapshot a live gravity worker.
GravityCheckpoint checkpoint_gravity(GravityClient& gravity);

/// Start a replacement worker through the daemon and restore the
/// checkpoint into it. The returned client continues from the snapshot.
std::unique_ptr<GravityClient> restart_gravity(DaemonClient& daemon,
                                               const WorkerSpec& spec,
                                               const std::string& resource,
                                               const GravityCheckpoint& save,
                                               int nodes = 1);

}  // namespace jungle::amuse
