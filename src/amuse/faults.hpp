#pragma once

#include <memory>
#include <string>

#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"

namespace jungle::amuse {

/// Fault-tolerance extension (the paper's §7 future work: "In theory it
/// should be possible to transparently find a replacement machine"). The
/// script checkpoints worker state after each bridge step; when a worker
/// dies (WorkerDiedError from the RPC layer), it starts a replacement on
/// another resource and reloads the checkpoint. All three evolving model
/// kinds are covered — gravity (phiGRAPE), hydro (Gadget) and the coupling
/// field kernel (Octgrav/Fi) — which is what lets the placement scheduler
/// re-place any kernel mid-run, not just the star cluster.

struct GravityCheckpoint {
  GravityState state;
  double model_time = 0.0;
  double eps2 = 1e-4;
  double eta = 0.02;
};

struct HydroCheckpoint {
  HydroState state;
  double model_time = 0.0;
  double eps2 = 1e-4;
  double theta = 0.6;
};

/// The field worker is stateless between kicks except for its sources; the
/// checkpoint is the last source set the client shipped. (Its eps2/theta
/// live in the WorkerSpec the replacement starts from, not here.)
struct FieldCheckpoint {
  std::vector<double> source_mass;
  std::vector<Vec3> source_position;
};

/// Snapshot live workers.
GravityCheckpoint checkpoint_gravity(GravityClient& gravity);
HydroCheckpoint checkpoint_hydro(HydroClient& hydro);
FieldCheckpoint checkpoint_field(FieldClient& field);

/// Restore a checkpoint into a *fresh* worker (local or remote). The new
/// integrator starts at t=0; callers track the clock offset (the restart
/// convention: evolving it forward to the checkpoint time would integrate).
void restore_gravity(GravityClient& gravity, const GravityCheckpoint& save);
void restore_hydro(HydroClient& hydro, const HydroCheckpoint& save);
void restore_field(FieldClient& field, const FieldCheckpoint& save);

/// Start a replacement worker through the daemon and restore the
/// checkpoint into it. The returned client continues from the snapshot.
std::unique_ptr<GravityClient> restart_gravity(DaemonClient& daemon,
                                               const WorkerSpec& spec,
                                               const std::string& resource,
                                               const GravityCheckpoint& save,
                                               int nodes = 1);
std::unique_ptr<HydroClient> restart_hydro(DaemonClient& daemon,
                                           const WorkerSpec& spec,
                                           const std::string& resource,
                                           const HydroCheckpoint& save,
                                           int nodes = 1);
std::unique_ptr<FieldClient> restart_field(DaemonClient& daemon,
                                           const WorkerSpec& spec,
                                           const std::string& resource,
                                           const FieldCheckpoint& save,
                                           int nodes = 1);

}  // namespace jungle::amuse
