#include "amuse/ic.hpp"

#include <cmath>

namespace jungle::amuse::ic {

namespace {
constexpr double kPi = 3.14159265358979323846;

Vec3 random_direction(util::Rng& rng) {
  // Uniform on the unit sphere.
  double z = rng.uniform(-1.0, 1.0);
  double phi = rng.uniform(0.0, 2.0 * kPi);
  double r = std::sqrt(std::max(0.0, 1.0 - z * z));
  return {r * std::cos(phi), r * std::sin(phi), z};
}
}  // namespace

NBodyModel plummer_sphere(std::size_t n, util::Rng& rng) {
  NBodyModel model;
  model.mass.assign(n, 1.0 / static_cast<double>(n));
  model.position.resize(n);
  model.velocity.resize(n);
  // Standard N-body units: Plummer scale a = 3*pi/16 gives virial radius 1.
  const double a = 3.0 * kPi / 16.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Radius from the cumulative mass profile (capped to avoid outliers).
    double x = rng.uniform(0.0, 1.0);
    x = std::min(x, 0.999);
    double r = a / std::sqrt(std::pow(x, -2.0 / 3.0) - 1.0);
    model.position[i] = r * random_direction(rng);
    // Velocity by von Neumann rejection from g(q) = q^2 (1-q^2)^3.5.
    double q, g;
    do {
      q = rng.uniform(0.0, 1.0);
      g = rng.uniform(0.0, 0.1);
    } while (g > q * q * std::pow(1.0 - q * q, 3.5));
    double v_escape = std::sqrt(2.0) * std::pow(r * r + a * a, -0.25);
    model.velocity[i] = q * v_escape * random_direction(rng);
  }
  centre(model);
  return model;
}

std::vector<double> salpeter_masses(std::size_t n, util::Rng& rng,
                                    double min_mass, double max_mass) {
  // Inverse-CDF sampling of m^-alpha on [min, max], alpha = 2.35.
  const double alpha = 2.35;
  const double one_minus = 1.0 - alpha;
  double lo = std::pow(min_mass, one_minus);
  double hi = std::pow(max_mass, one_minus);
  std::vector<double> masses(n);
  for (std::size_t i = 0; i < n; ++i) {
    double u = rng.uniform(0.0, 1.0);
    masses[i] = std::pow(lo + u * (hi - lo), 1.0 / one_minus);
  }
  return masses;
}

GasModel gas_sphere(std::size_t n, util::Rng& rng, double total_mass,
                    double radius, double u_frac) {
  GasModel model;
  model.mass.assign(n, total_mass / static_cast<double>(n));
  model.position.resize(n);
  model.velocity.assign(n, Vec3{});
  // Homogeneous sphere: r ~ R u^(1/3).
  for (std::size_t i = 0; i < n; ++i) {
    double r = radius * std::cbrt(rng.uniform(0.0, 1.0));
    model.position[i] = r * random_direction(rng);
  }
  // |E_bind| of a homogeneous sphere = 3/5 GM^2/R; per unit mass.
  double specific_binding = 0.6 * total_mass / radius;
  model.internal_energy.assign(n, u_frac * specific_binding);
  return model;
}

void centre(NBodyModel& model) {
  Vec3 com{}, cov{};
  double total = 0.0;
  for (std::size_t i = 0; i < model.mass.size(); ++i) {
    com += model.mass[i] * model.position[i];
    cov += model.mass[i] * model.velocity[i];
    total += model.mass[i];
  }
  if (total <= 0) return;
  com *= 1.0 / total;
  cov *= 1.0 / total;
  for (std::size_t i = 0; i < model.mass.size(); ++i) {
    model.position[i] -= com;
    model.velocity[i] -= cov;
  }
}

}  // namespace jungle::amuse::ic
