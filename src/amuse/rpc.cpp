#include "amuse/rpc.hpp"

#include "util/logging.hpp"

namespace jungle::amuse {

util::ByteReader Future::get() {
  RpcReply reply = state_->box.get();
  if (reply.status == RpcStatus::ok) {
    return util::ByteReader(std::move(reply.payload));
  }
  std::string message(reply.payload.begin(), reply.payload.end());
  if (reply.status == RpcStatus::worker_died) {
    throw WorkerDiedError(state_->worker, reply.died_host, reply.died_cause,
                          message);
  }
  throw CodeError(message);
}

RpcClient::RpcClient(sim::Host& home, std::unique_ptr<MessagePipe> pipe,
                     std::string label)
    : home_(home), pipe_(std::move(pipe)), label_(std::move(label)) {
  pump_pid_ = home_.spawn("rpc-pump:" + label_, [this] { pump(); });
}

RpcClient::~RpcClient() {
  home_.simulation().kill(pump_pid_);
  if (!closed_) {
    try {
      // Even after poisoning, closing tells a still-alive peer (e.g. the
      // daemon's relay loop) to wind down.
      pipe_->close();
    } catch (const Error&) {
      // already gone; nothing to release
    }
  }
}

void RpcClient::pump() {
  try {
    while (true) {
      auto bytes = pipe_->recv_bytes();
      if (!bytes) {
        poison("worker closed the connection");
        return;
      }
      util::ByteReader reader(std::move(*bytes));
      auto request_id = reader.get<std::uint32_t>();
      if (request_id == kDeathNoticeId) {
        // Connection-level death notice from the daemon: the registry saw
        // the worker's host die. Carries the host name and cause.
        reader.get<std::uint8_t>();  // status (always worker_died)
        auto cause =
            static_cast<WorkerDiedError::Cause>(reader.get<std::uint8_t>());
        std::string host = reader.get_string();
        std::string detail = reader.get_string();
        poison(detail, cause, host);
        continue;  // keep draining until the daemon closes the pipe
      }
      auto status = static_cast<RpcStatus>(reader.get<std::uint8_t>());
      auto payload = reader.get_vector<std::uint8_t>();
      auto it = pending_.find(request_id);
      if (it == pending_.end()) {
        log::warn("amuse") << label_ << ": reply for unknown request "
                           << request_id;
        continue;
      }
      RpcReply reply;
      reply.status = status;
      reply.payload = std::move(payload);
      it->second->box.put(std::move(reply));
      pending_.erase(it);
    }
  } catch (const ConnectError& failure) {
    poison(failure.what(), WorkerDiedError::Cause::link_fault);
  }
}

RpcReply RpcClient::death_reply() const {
  RpcReply reply;
  reply.status = RpcStatus::worker_died;
  reply.payload.assign(death_reason_.begin(), death_reason_.end());
  reply.died_host = death_host_;
  reply.died_cause = death_cause_;
  return reply;
}

void RpcClient::poison(const std::string& reason, WorkerDiedError::Cause cause,
                       const std::string& host) {
  if (!dead_) {  // first report wins: it is closest to the root cause
    dead_ = true;
    death_reason_ = reason;
    death_cause_ = cause;
    death_host_ = host;
  }
  for (auto& [id, state] : pending_) {
    state->box.put(death_reply());
  }
  pending_.clear();
}

Future RpcClient::call(Fn fn, util::ByteWriter arguments) {
  auto state = std::make_shared<Future::State>(home_.simulation());
  state->worker = label_;
  if (dead_) {
    state->box.put(death_reply());
    return Future(state);
  }
  std::uint32_t request_id = next_request_++;
  pending_[request_id] = state;
  util::ByteWriter frame;
  frame.put<std::uint32_t>(request_id);
  frame.put<std::uint16_t>(static_cast<std::uint16_t>(fn));
  frame.put_vector(std::move(arguments).take());
  try {
    pipe_->send_bytes(std::move(frame).take());
  } catch (const ConnectError& failure) {
    pending_.erase(request_id);
    poison(failure.what(), WorkerDiedError::Cause::link_fault);
    state->box.put(death_reply());
  }
  return Future(state);
}

util::ByteReader RpcClient::call_sync(Fn fn, util::ByteWriter arguments) {
  return call(fn, std::move(arguments)).get();
}

void RpcClient::close() {
  if (closed_ || dead_) return;
  closed_ = true;
  try {
    util::ByteWriter frame;
    frame.put<std::uint32_t>(0);
    frame.put<std::uint16_t>(static_cast<std::uint16_t>(Fn::stop));
    frame.put_vector(std::vector<std::uint8_t>{});
    pipe_->send_bytes(std::move(frame).take());
    pipe_->close();
  } catch (const ConnectError&) {
    // Worker already unreachable.
  }
  home_.simulation().kill(pump_pid_);
}

void WorkerServer::run() {
  try {
    while (true) {
      auto bytes = pipe_->recv_bytes();
      if (!bytes) return;  // client closed
      util::ByteReader reader(std::move(*bytes));
      auto request_id = reader.get<std::uint32_t>();
      auto fn = static_cast<Fn>(reader.get<std::uint16_t>());
      auto arguments = reader.get_vector<std::uint8_t>();
      if (fn == Fn::stop) return;
      util::ByteWriter reply_frame;
      reply_frame.put<std::uint32_t>(request_id);
      if (fn == Fn::ping) {
        reply_frame.put<std::uint8_t>(static_cast<std::uint8_t>(RpcStatus::ok));
        reply_frame.put_vector(std::vector<std::uint8_t>{});
      } else {
        try {
          util::ByteReader args(std::move(arguments));
          util::ByteWriter result = dispatcher_(fn, args);
          reply_frame.put<std::uint8_t>(
              static_cast<std::uint8_t>(RpcStatus::ok));
          reply_frame.put_vector(std::move(result).take());
        } catch (const Error& failure) {
          std::string what = failure.what();
          reply_frame.put<std::uint8_t>(
              static_cast<std::uint8_t>(RpcStatus::code_error));
          reply_frame.put_vector(
              std::vector<std::uint8_t>(what.begin(), what.end()));
        }
      }
      pipe_->send_bytes(std::move(reply_frame).take());
    }
  } catch (const ConnectError&) {
    // Client side vanished; worker just exits.
  }
}

}  // namespace jungle::amuse
