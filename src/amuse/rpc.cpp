#include "amuse/rpc.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace jungle::amuse {

namespace {

// Header field offsets (see the frame layout note in rpc.hpp).
constexpr std::size_t kIdOffset = 0;
constexpr std::size_t kFnOffset = 4;
constexpr std::size_t kFlagsOffset = 6;
constexpr std::size_t kStatusOffset = 4;
constexpr std::size_t kSpanOffset = 8;
constexpr std::size_t kDeadlineOffset = 16;

/// Frame a header-only reply (ping, death notices built client-side).
util::ByteWriter make_reply_frame(std::uint32_t request_id, RpcStatus status) {
  util::ByteWriter frame(kFrameHeaderBytes);
  frame.patch<std::uint32_t>(kIdOffset, request_id);
  frame.patch<std::uint8_t>(kStatusOffset,
                            static_cast<std::uint8_t>(status));
  return frame;
}

/// Error reply with a message payload.
util::ByteWriter make_error_frame(std::uint32_t request_id,
                                  const std::string& what) {
  util::ByteWriter reply = make_reply_frame(request_id, RpcStatus::code_error);
  reply.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(what.data()), what.size()));
  return reply;
}

/// Deterministic backoff jitter in [0.5, 1.5): an FNV-1a hash of (worker
/// label, request id, attempt) — no RNG, so a replayed fault schedule
/// resends at bit-identical times, but concurrent retryers still spread out
/// instead of thundering in lockstep.
double jitter_factor(const std::string& label, std::uint32_t request_id,
                     int attempt) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](std::uint8_t byte) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  };
  for (char c : label) mix(static_cast<std::uint8_t>(c));
  for (int i = 0; i < 4; ++i) {
    mix(static_cast<std::uint8_t>(request_id >> (8 * i)));
  }
  mix(static_cast<std::uint8_t>(attempt));
  return 0.5 + static_cast<double>(hash % 1024) / 1024.0;
}

}  // namespace

bool retry_safe(Fn fn) noexcept {
  switch (fn) {
    case Fn::ping:
    case Fn::grav_get_state:
    case Fn::grav_get_energies:
    case Fn::grav_get_time:
    case Fn::grav_get_dynamics:
    case Fn::grav_kick_all:  // repeat-kick: replay cache makes it exactly-once
    case Fn::grav_set_shard:     // last-write-wins range assignment
    case Fn::grav_ghost_update:  // absolute-index overwrite, replay-cached
    case Fn::field_accel_at:
    case Fn::field_accel_for:
    case Fn::hydro_get_state:
    case Fn::hydro_get_energies:
    case Fn::hydro_get_time:
    case Fn::hydro_kick_all:
    case Fn::se_get_masses:
    case Fn::se_get_supernovae:
    case Fn::se_get_mass_loss:
    case Fn::se_get_luminosities:
    case Fn::se_get_mass_updates:
      return true;
    default:
      return false;
  }
}

const char* fn_name(Fn fn) noexcept {
  switch (fn) {
    case Fn::ping: return "ping";
    case Fn::stop: return "stop";
    case Fn::grav_set_params: return "grav_set_params";
    case Fn::grav_add_particles: return "grav_add_particles";
    case Fn::grav_evolve: return "grav_evolve";
    case Fn::grav_get_state: return "grav_get_state";
    case Fn::grav_get_energies: return "grav_get_energies";
    case Fn::grav_kick_all: return "grav_kick_all";
    case Fn::grav_set_masses: return "grav_set_masses";
    case Fn::grav_get_time: return "grav_get_time";
    case Fn::grav_set_masses_sparse: return "grav_set_masses_sparse";
    case Fn::grav_get_dynamics: return "grav_get_dynamics";
    case Fn::grav_set_dynamics: return "grav_set_dynamics";
    case Fn::grav_reset: return "grav_reset";
    case Fn::grav_set_shard: return "grav_set_shard";
    case Fn::grav_ghost_update: return "grav_ghost_update";
    case Fn::field_set_sources: return "field_set_sources";
    case Fn::field_accel_at: return "field_accel_at";
    case Fn::field_accel_for: return "field_accel_for";
    case Fn::hydro_set_params: return "hydro_set_params";
    case Fn::hydro_add_gas: return "hydro_add_gas";
    case Fn::hydro_evolve: return "hydro_evolve";
    case Fn::hydro_get_state: return "hydro_get_state";
    case Fn::hydro_get_energies: return "hydro_get_energies";
    case Fn::hydro_kick_all: return "hydro_kick_all";
    case Fn::hydro_inject: return "hydro_inject";
    case Fn::hydro_get_time: return "hydro_get_time";
    case Fn::hydro_set_time: return "hydro_set_time";
    case Fn::se_add_stars: return "se_add_stars";
    case Fn::se_evolve_to: return "se_evolve_to";
    case Fn::se_get_masses: return "se_get_masses";
    case Fn::se_get_supernovae: return "se_get_supernovae";
    case Fn::se_get_mass_loss: return "se_get_mass_loss";
    case Fn::se_get_luminosities: return "se_get_luminosities";
    case Fn::se_get_mass_updates: return "se_get_mass_updates";
  }
  return "unknown";
}

util::ByteReader Future::get() {
  RpcReply reply;
  bool have = false;
  bool expired = false;
  double remaining = state_->timeout_s;  // 0 = wait forever
  if (state_->resend && state_->soft_delay_s > 0.0) {
    // Idempotent call: wait in soft-deadline slices, retransmitting the
    // frame between slices (same request id, resend flag) with jittered,
    // doubling backoff. A reply that was merely delayed — daemon restart,
    // flapping link — lands during one of the waits; the worker dedups the
    // extra frames and the pump drops the extra replies.
    double base = state_->soft_delay_s;
    for (int attempt = 0;; ++attempt) {
      double wait =
          base * jitter_factor(state_->worker, state_->request_id, attempt);
      if (state_->timeout_s > 0.0) {
        if (remaining <= 0.0) {
          expired = true;
          break;
        }
        wait = std::min(wait, remaining);
      }
      auto maybe = state_->box.get_for(wait);
      if (state_->timeout_s > 0.0) remaining -= wait;
      if (maybe) {
        reply = std::move(*maybe);
        have = true;
        break;
      }
      if (!state_->resend(attempt)) break;  // budget spent or pipe unusable
      base *= 2.0;
    }
  }
  if (!have) {
    if (state_->timeout_s > 0.0) {
      if (!expired) {
        auto maybe = state_->box.get_for(std::max(remaining, 0.0));
        if (maybe) {
          reply = std::move(*maybe);
          have = true;
        } else {
          expired = true;
        }
      }
      if (expired) {
        // Hard deadline passed with no reply: poison the issuing client.
        // That deposits a death reply for this call too (it is still
        // pending), which the zero-wait get below picks up immediately.
        rpc_deadline_misses_counter().increment();
        if (state_->on_timeout) state_->on_timeout();
        auto maybe = state_->box.get_for(0.0);
        if (!maybe) {
          // The call was no longer pending (defensive; should not happen).
          throw WorkerDiedError(state_->worker, "",
                                WorkerDiedError::Cause::timeout,
                                "no reply within " +
                                    std::to_string(state_->timeout_s) + " s");
        }
        reply = std::move(*maybe);
      }
    } else {
      reply = state_->box.get();
    }
  }
  if (reply.status == RpcStatus::ok) {
    return util::ByteReader(std::move(reply.frame), reply.payload_offset);
  }
  std::string message(reply.frame.begin() +
                          static_cast<std::ptrdiff_t>(reply.payload_offset),
                      reply.frame.end());
  if (reply.status == RpcStatus::worker_died) {
    throw WorkerDiedError(state_->worker, reply.died_host, reply.died_cause,
                          message);
  }
  throw CodeError(message);
}

RpcClient::RpcClient(sim::Host& home, std::unique_ptr<MessagePipe> pipe,
                     std::string label)
    : home_(home), pipe_(std::move(pipe)), label_(std::move(label)) {
  set_meter(label_);
  pump_pid_ = home_.spawn("rpc-pump:" + label_, [this] { pump(); });
}

void RpcClient::set_meter(const std::string& meter) {
  m_calls_ = &obs::metrics::counter("rpc." + meter + ".calls");
  m_bytes_out_ = &obs::metrics::counter("rpc." + meter + ".bytes_out");
  m_bytes_in_ = &obs::metrics::counter("rpc." + meter + ".bytes_in");
  m_latency_ = &obs::metrics::histogram("rpc." + meter + ".latency_s");
}

RpcClient::~RpcClient() {
  home_.simulation().kill(pump_pid_);
  if (!closed_) {
    try {
      // Even after poisoning, closing tells a still-alive peer (e.g. the
      // daemon's relay loop) to wind down.
      pipe_->close();
    } catch (const Error&) {
      // already gone; nothing to release
    }
  }
}

void RpcClient::pump() {
  try {
    while (true) {
      auto bytes = pipe_->recv_bytes();
      if (!bytes) {
        poison("worker closed the connection");
        return;
      }
      util::ByteReader reader(std::move(*bytes));
      auto request_id = reader.get<std::uint32_t>();
      auto status = static_cast<RpcStatus>(reader.get<std::uint8_t>());
      auto cause = static_cast<WorkerDiedError::Cause>(
          reader.get<std::uint8_t>());
      reader.get<std::uint16_t>();  // header padding
      auto reply_span = reader.get<std::uint64_t>();
      if (request_id == kDeathNoticeId) {
        // Connection-level death notice from the daemon: the registry saw
        // the worker's host die. Carries the host name and cause.
        std::string host = reader.get_string();
        std::string detail = reader.get_string();
        poison(detail, cause, host);
        continue;  // keep draining until the daemon closes the pipe
      }
      auto it = pending_.find(request_id);
      if (it == pending_.end()) {
        if (recently_completed(request_id)) {
          // The duplicate answer of a call that was also resent (or that
          // raced a poison): expected traffic, drop it quietly.
          log::debug("amuse") << label_ << ": dropped duplicate reply for "
                              << request_id;
        } else {
          log::warn("amuse") << label_ << ": reply for unknown request "
                             << request_id;
        }
        continue;
      }
      Future::State& state = *it->second;
      if (state.span.active()) {
        state.span.note_remote(reply_span);
        state.span.end();
      }
      m_latency_->observe(home_.simulation().now() - state.t_sent);
      RpcReply reply;
      reply.status = status;
      // Hand the whole frame over; the payload is read in place behind the
      // header — the reply bytes are never copied out of the receive buffer.
      reply.payload_offset = reader.cursor();
      reply.frame = std::move(reader).release();
      m_bytes_in_->add(static_cast<double>(reply.frame.size()));
      state.box.put(std::move(reply));
      remember_completed(request_id);
      pending_.erase(it);
    }
  } catch (const ConnectError& failure) {
    poison(failure.what(), WorkerDiedError::Cause::link_fault);
  }
}

RpcReply RpcClient::death_reply() const {
  RpcReply reply;
  reply.status = RpcStatus::worker_died;
  reply.frame.assign(death_reason_.begin(), death_reason_.end());
  reply.payload_offset = 0;
  reply.died_host = death_host_;
  reply.died_cause = death_cause_;
  return reply;
}

void RpcClient::poison(const std::string& reason, WorkerDiedError::Cause cause,
                       const std::string& host) {
  if (!dead_) {  // first report wins: it is closest to the root cause
    dead_ = true;
    death_reason_ = reason;
    death_cause_ = cause;
    death_host_ = host;
  }
  for (auto& [id, state] : pending_) {
    state->span.end();  // never answered; close so the trace stays balanced
    state->box.put(death_reply());
    // A late real reply (e.g. sent just before the worker died) should be
    // dropped as a duplicate, not warned about as unknown.
    remember_completed(id);
  }
  pending_.clear();
}

void RpcClient::revive() {
  if (closed_) return;  // a closed client is gone for good
  dead_ = false;
  death_reason_.clear();
  death_host_.clear();
  death_cause_ = WorkerDiedError::Cause::unknown;
}

void RpcClient::remember_completed(std::uint32_t request_id) {
  recent_[recent_pos_] = request_id;
  recent_pos_ = (recent_pos_ + 1) % recent_.size();
}

bool RpcClient::recently_completed(std::uint32_t request_id) const noexcept {
  if (request_id == 0) return false;
  return std::find(recent_.begin(), recent_.end(), request_id) !=
         recent_.end();
}

Future RpcClient::call(Fn fn, util::ByteWriter arguments) {
  auto state = std::make_shared<Future::State>(home_.simulation());
  state->worker = label_;
  if (call_timeout_s_ > 0.0) {
    state->timeout_s = call_timeout_s_;
    state->on_timeout = [this] {
      poison("no reply within " + std::to_string(call_timeout_s_) +
                 " s (worker hung or route black-holed)",
             WorkerDiedError::Cause::timeout);
    };
  }
  if (dead_) {
    state->box.put(death_reply());
    return Future(state);
  }
  std::uint32_t request_id = next_request_++;
  state->request_id = request_id;
  state->t_sent = home_.simulation().now();
  state->span =
      obs::trace::async_span(std::string("rpc:") + fn_name(fn), "rpc");
  pending_[request_id] = state;
  // Writers built via request() already reserve the header: patch it in
  // place and ship the buffer — the payload is not copied again. Plain
  // writers (e.g. the empty `{}` of parameterless calls) get wrapped.
  util::ByteWriter frame;
  if (arguments.prefix() >= kRequestHeaderBytes) {
    frame = std::move(arguments);
  } else {
    frame = util::ByteWriter(kRequestHeaderBytes);
    frame.append(std::move(arguments));
  }
  bool retryable = retry_safe(fn) && retry_max_resends_ > 0;
  frame.patch<std::uint32_t>(kIdOffset, request_id);
  frame.patch<std::uint16_t>(kFnOffset, static_cast<std::uint16_t>(fn));
  frame.patch<std::uint16_t>(
      kFlagsOffset, retryable ? rpc_flags::idempotent : std::uint16_t{0});
  // Trace context: the worker-side span parents under this in-flight call.
  frame.patch<std::uint64_t>(kSpanOffset, state->span.id());
  frame.patch<double>(kDeadlineOffset,
                      call_timeout_s_ > 0.0 ? state->t_sent + call_timeout_s_
                                            : 0.0);
  auto bytes = std::move(frame).take();
  if (retryable) {
    // Keep a copy of the exact frame for retransmission. Reusing the id is
    // the idempotency token: the worker replays the cached reply instead of
    // executing again, and stale duplicates are dropped by the recent ring.
    state->soft_delay_s = retry_soft_delay_s_;
    state->resend = [this, request_id, fn, copy = bytes](int attempt) {
      if (attempt >= retry_max_resends_) return false;
      if (dead_ || closed_) return false;
      if (pending_.find(request_id) == pending_.end()) return false;
      auto resend_bytes = copy;
      // Flags live at a little-endian u16; the resend bit fits the low byte.
      resend_bytes[kFlagsOffset] |= rpc_flags::resend;
      rpc_retries_counter().increment();
      log::debug("amuse") << label_ << ": resend " << fn_name(fn) << " #"
                          << request_id << " (attempt " << attempt + 1 << ")";
      try {
        pipe_->send_bytes(std::move(resend_bytes));
      } catch (const ConnectError&) {
        return false;  // pipe is gone; the pump will poison shortly
      }
      return true;
    };
  }
  m_calls_->increment();
  m_bytes_out_->add(static_cast<double>(bytes.size()));
  try {
    pipe_->send_bytes(std::move(bytes));
  } catch (const ConnectError& failure) {
    pending_.erase(request_id);
    poison(failure.what(), WorkerDiedError::Cause::link_fault);
    state->span.end();
    state->box.put(death_reply());
  }
  return Future(state);
}

util::ByteReader RpcClient::call_sync(Fn fn, util::ByteWriter arguments) {
  return call(fn, std::move(arguments)).get();
}

void RpcClient::close() {
  if (closed_ || dead_) return;
  closed_ = true;
  try {
    util::ByteWriter frame(kRequestHeaderBytes);
    frame.patch<std::uint32_t>(kIdOffset, 0);
    frame.patch<std::uint16_t>(kFnOffset,
                               static_cast<std::uint16_t>(Fn::stop));
    pipe_->send_bytes(std::move(frame).take());
    pipe_->close();
  } catch (const ConnectError&) {
    // Worker already unreachable.
  }
  home_.simulation().kill(pump_pid_);
}

void WorkerServer::cache_reply(std::uint32_t request_id,
                               const std::vector<std::uint8_t>& bytes) {
  if (replay_.emplace(request_id, bytes).second) {
    replay_order_.push_back(request_id);
    while (replay_order_.size() > kReplayCacheEntries) {
      replay_.erase(replay_order_.front());
      replay_order_.pop_front();
    }
  }
}

void WorkerServer::run() {
  try {
    while (true) {
      auto bytes = pipe_->recv_bytes();
      if (!bytes) return;  // client closed
      util::ByteReader reader(std::move(*bytes));
      auto request_id = reader.get<std::uint32_t>();
      auto fn = static_cast<Fn>(reader.get<std::uint16_t>());
      auto flags = reader.get<std::uint16_t>();
      auto wire_span = reader.get<std::uint64_t>();
      auto deadline = reader.get<double>();
      if (fn == Fn::stop) return;
      if (flags & rpc_flags::resend) {
        auto cached = replay_.find(request_id);
        if (cached != replay_.end()) {
          // Retransmission of a call that already executed: replay the
          // cached reply bytes verbatim. Exactly-once execution is what
          // makes retrying flagged state-touching calls (repeat kicks)
          // safe; the client's recent-id ring absorbs the duplicates.
          pipe_->send_bytes(cached->second);
          continue;
        }
        // Not executed yet (the original frame is still in flight behind
        // this one, or was never delivered): fall through and execute — the
        // idempotent flag below caches this execution for later duplicates.
      }
      if (deadline > 0.0 && clock_ && clock_() > deadline) {
        // The caller's hard deadline already passed: it has declared this
        // worker dead and is recovering elsewhere. Refuse instead of
        // executing — mutating state now would race the restore.
        pipe_->send_bytes(
            make_error_frame(request_id, "deadline expired before execution")
                .take());
        continue;
      }
      // The worker-side span parents under the wire-propagated client span,
      // so kernel spans opened inside the dispatcher nest correctly across
      // hosts. Its id is echoed in the reply header for the flow arrow.
      obs::trace::Span serve =
          obs::trace::server_span(fn_name(fn), "serve", wire_span);
      util::ByteWriter reply;
      if (fn == Fn::ping) {
        reply = make_reply_frame(request_id, RpcStatus::ok);
      } else {
        try {
          // The reader sits at the payload; dispatchers consume it in place
          // (span reads stay views into the receive buffer).
          util::ByteWriter result = dispatcher_(fn, reader);
          if (result.prefix() >= kFrameHeaderBytes) {
            reply = std::move(result);
          } else {
            reply = util::ByteWriter(kFrameHeaderBytes);
            reply.append(std::move(result));
          }
          reply.patch<std::uint32_t>(kIdOffset, request_id);
          reply.patch<std::uint8_t>(kStatusOffset,
                                    static_cast<std::uint8_t>(RpcStatus::ok));
        } catch (const Error& failure) {
          reply = make_error_frame(request_id, failure.what());
        }
      }
      reply.patch<std::uint64_t>(kSpanOffset, serve.id());
      serve.end();
      auto reply_bytes = std::move(reply).take();
      if (flags & rpc_flags::idempotent) cache_reply(request_id, reply_bytes);
      pipe_->send_bytes(std::move(reply_bytes));
    }
  } catch (const ConnectError&) {
    // Client side vanished; worker just exits.
  }
}

}  // namespace jungle::amuse
