#include "amuse/faults.hpp"

#include "util/logging.hpp"

namespace jungle::amuse {

GravityCheckpoint checkpoint_gravity(GravityClient& gravity) {
  GravityCheckpoint save;
  save.state = gravity.get_state();
  save.model_time = gravity.model_time();
  return save;
}

HydroCheckpoint checkpoint_hydro(HydroClient& hydro) {
  HydroCheckpoint save;
  save.state = hydro.get_state();
  save.model_time = hydro.model_time();
  return save;
}

FieldCheckpoint checkpoint_field(FieldClient& field) {
  FieldCheckpoint save;
  save.source_mass = field.last_source_mass();
  save.source_position = field.last_source_position();
  return save;
}

void restore_gravity(GravityClient& gravity, const GravityCheckpoint& save) {
  gravity.set_params(save.eps2, save.eta);
  gravity.add_particles(save.state.mass, save.state.position,
                        save.state.velocity);
  // A fresh integrator starts at t=0; evolving it forward to the checkpoint
  // time would be wrong (it would integrate). The restart convention instead
  // shifts the script's clock: callers track the offset. We evolve by 0 to
  // prime forces only.
  gravity.evolve(0.0);
}

void restore_hydro(HydroClient& hydro, const HydroCheckpoint& save) {
  hydro.set_params(save.eps2, save.theta);
  hydro.add_gas(save.state.mass, save.state.position, save.state.velocity,
                save.state.internal_energy);
}

void restore_field(FieldClient& field, const FieldCheckpoint& save) {
  if (!save.source_mass.empty()) {
    field.set_sources(save.source_mass, save.source_position);
  }
}

std::unique_ptr<GravityClient> restart_gravity(DaemonClient& daemon,
                                               const WorkerSpec& spec,
                                               const std::string& resource,
                                               const GravityCheckpoint& save,
                                               int nodes) {
  log::warn("amuse") << "restarting " << spec.code << " on " << resource
                     << " from checkpoint at t=" << save.model_time;
  auto client = std::make_unique<GravityClient>(
      daemon.start_worker(spec, resource, nodes));
  restore_gravity(*client, save);
  return client;
}

std::unique_ptr<HydroClient> restart_hydro(DaemonClient& daemon,
                                           const WorkerSpec& spec,
                                           const std::string& resource,
                                           const HydroCheckpoint& save,
                                           int nodes) {
  log::warn("amuse") << "restarting " << spec.code << " on " << resource
                     << " from checkpoint at t=" << save.model_time;
  auto client = std::make_unique<HydroClient>(
      daemon.start_worker(spec, resource, nodes));
  restore_hydro(*client, save);
  return client;
}

std::unique_ptr<FieldClient> restart_field(DaemonClient& daemon,
                                           const WorkerSpec& spec,
                                           const std::string& resource,
                                           const FieldCheckpoint& save,
                                           int nodes) {
  log::warn("amuse") << "restarting field kernel " << spec.code << " on "
                     << resource;
  auto client = std::make_unique<FieldClient>(
      daemon.start_worker(spec, resource, nodes));
  restore_field(*client, save);
  return client;
}

}  // namespace jungle::amuse
