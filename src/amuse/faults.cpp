#include "amuse/faults.hpp"

#include <cstring>

#include "amuse/faultpoint.hpp"
#include "util/logging.hpp"

namespace jungle::amuse {

namespace {

// FNV-1a, 64-bit.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix_bytes(std::uint64_t& hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
}

void mix_doubles(std::uint64_t& hash, const std::vector<double>& values) {
  mix_bytes(hash, values.data(), values.size() * sizeof(double));
}

void mix_vecs(std::uint64_t& hash, const std::vector<Vec3>& values) {
  for (const Vec3& v : values) {
    mix_bytes(hash, &v.x, sizeof(double));
    mix_bytes(hash, &v.y, sizeof(double));
    mix_bytes(hash, &v.z, sizeof(double));
  }
}

}  // namespace

namespace {

void mix_gravity(std::uint64_t& hash, const GravityCheckpoint& g) {
  mix_doubles(hash, g.state.mass);
  mix_vecs(hash, g.state.position);
  mix_vecs(hash, g.state.velocity);
  mix_bytes(hash, &g.model_time, sizeof(double));
}

void mix_hydro(std::uint64_t& hash, const HydroCheckpoint& h) {
  mix_doubles(hash, h.state.mass);
  mix_vecs(hash, h.state.position);
  mix_vecs(hash, h.state.velocity);
  mix_doubles(hash, h.state.internal_energy);
  mix_doubles(hash, h.state.density);
  mix_bytes(hash, &h.model_time, sizeof(double));
}

void mix_field(std::uint64_t& hash, const FieldCheckpoint& f) {
  mix_doubles(hash, f.source_mass);
  mix_vecs(hash, f.source_position);
}

}  // namespace

std::uint64_t digest(const GravityCheckpoint& save) {
  std::uint64_t hash = kFnvOffset;
  mix_gravity(hash, save);
  return hash;
}

std::uint64_t digest(const HydroCheckpoint& save) {
  std::uint64_t hash = kFnvOffset;
  mix_hydro(hash, save);
  return hash;
}

std::uint64_t digest(const FieldCheckpoint& save) {
  std::uint64_t hash = kFnvOffset;
  mix_field(hash, save);
  return hash;
}

std::uint64_t digest(const GraphCheckpoint& save) {
  std::uint64_t hash = kFnvOffset;
  mix_bytes(hash, &save.epoch, sizeof(save.epoch));
  for (const GravityCheckpoint& g : save.gravity) mix_gravity(hash, g);
  for (const HydroCheckpoint& h : save.hydro) mix_hydro(hash, h);
  for (const FieldCheckpoint& f : save.field) mix_field(hash, f);
  return hash;
}

GravityCheckpoint checkpoint_gravity(GravityClient& gravity) {
  GravityCheckpoint save;
  save.state = gravity.get_state();
  gravity.get_dynamics(save.acc, save.jerk, save.model_time);
  return save;
}

HydroCheckpoint checkpoint_hydro(HydroClient& hydro) {
  HydroCheckpoint save;
  save.state = hydro.get_state();
  save.model_time = hydro.model_time();
  return save;
}

FieldCheckpoint checkpoint_field(FieldClient& field) {
  FieldCheckpoint save;
  save.source_mass = field.last_source_mass();
  save.source_position = field.last_source_position();
  return save;
}

void restore_gravity(GravityClient& gravity, const GravityCheckpoint& save) {
  faultpoint::reach(faultpoint::Point::recover_restore, -1,
                    gravity.rpc().label());
  gravity.set_params(save.eps2, save.eta);
  gravity.add_particles(save.state.mass, save.state.position,
                        save.state.velocity);
  if (!save.acc.empty()) {
    // Install the checkpointed dynamics verbatim — absolute clock plus the
    // corrector-stage forces — so the replacement resumes the exact substep
    // sequence of the integrator it replaces (bit-for-bit replay).
    gravity.set_dynamics(save.acc, save.jerk, save.model_time);
  } else {
    // Initial-conditions checkpoint (epoch 0): the fault-free integrator at
    // t=0 has not evaluated forces yet — it does so inside the first evolve,
    // *after* the opening kick. Leave the restored one equally unprimed so
    // the replay matches bit-for-bit.
  }
}

void restore_hydro(HydroClient& hydro, const HydroCheckpoint& save) {
  faultpoint::reach(faultpoint::Point::recover_restore, -1,
                    hydro.rpc().label());
  hydro.set_params(save.eps2, save.theta);
  hydro.add_gas(save.state.mass, save.state.position, save.state.velocity,
                save.state.internal_energy);
  // Absolute-clock restart: the replacement accepts the same evolve targets
  // as the worker it replaces. (SPH re-derives density and forces every
  // substep, so the clock is the only dynamic state to put back.)
  hydro.set_time(save.model_time);
}

void restore_field(FieldClient& field, const FieldCheckpoint& save) {
  faultpoint::reach(faultpoint::Point::recover_restore, -1,
                    field.rpc().label());
  if (!save.source_mass.empty()) {
    field.set_sources(save.source_mass, save.source_position);
  }
}

std::unique_ptr<GravityClient> restart_gravity(DaemonClient& daemon,
                                               const WorkerSpec& spec,
                                               const std::string& resource,
                                               const GravityCheckpoint& save,
                                               int nodes) {
  log::warn("amuse") << "restarting " << spec.code << " on " << resource
                     << " from checkpoint at t=" << save.model_time;
  auto client = std::make_unique<GravityClient>(
      daemon.start_worker(spec, resource, nodes));
  restore_gravity(*client, save);
  return client;
}

std::unique_ptr<HydroClient> restart_hydro(DaemonClient& daemon,
                                           const WorkerSpec& spec,
                                           const std::string& resource,
                                           const HydroCheckpoint& save,
                                           int nodes) {
  log::warn("amuse") << "restarting " << spec.code << " on " << resource
                     << " from checkpoint at t=" << save.model_time;
  auto client = std::make_unique<HydroClient>(
      daemon.start_worker(spec, resource, nodes));
  restore_hydro(*client, save);
  return client;
}

std::unique_ptr<FieldClient> restart_field(DaemonClient& daemon,
                                           const WorkerSpec& spec,
                                           const std::string& resource,
                                           const FieldCheckpoint& save,
                                           int nodes) {
  log::warn("amuse") << "restarting field kernel " << spec.code << " on "
                     << resource;
  auto client = std::make_unique<FieldClient>(
      daemon.start_worker(spec, resource, nodes));
  restore_field(*client, save);
  return client;
}

}  // namespace jungle::amuse
