#include "amuse/faults.hpp"

#include "util/logging.hpp"

namespace jungle::amuse {

GravityCheckpoint checkpoint_gravity(GravityClient& gravity) {
  GravityCheckpoint save;
  save.state = gravity.get_state();
  save.model_time = gravity.model_time();
  return save;
}

std::unique_ptr<GravityClient> restart_gravity(DaemonClient& daemon,
                                               const WorkerSpec& spec,
                                               const std::string& resource,
                                               const GravityCheckpoint& save,
                                               int nodes) {
  log::warn("amuse") << "restarting " << spec.code << " on " << resource
                     << " from checkpoint at t=" << save.model_time;
  auto client = std::make_unique<GravityClient>(
      daemon.start_worker(spec, resource, nodes));
  client->set_params(save.eps2, save.eta);
  client->add_particles(save.state.mass, save.state.position,
                        save.state.velocity);
  // A fresh integrator starts at t=0; evolve it forward to the checkpoint
  // time is wrong (it would integrate). The restart convention instead
  // shifts the script's clock: callers track the offset. We evolve by 0 to
  // prime forces only.
  client->evolve(0.0);
  return client;
}

}  // namespace jungle::amuse
