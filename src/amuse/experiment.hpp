#pragma once

#include <memory>
#include <string>
#include <vector>

#include "amuse/bridge.hpp"
#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"
#include "amuse/diagnostics.hpp"
#include "deploy/deploy.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "util/config.hpp"

namespace jungle::amuse::experiment {

using kernels::Vec3;

/// The composable Experiment API: a declarative *model graph* — N models
/// (gravity / hydro / field / stellar), M pairwise couplings and the run's
/// global knobs — replaces the hard-coded scenario kinds. A spec can be
/// built in C++ or parsed from the `[experiment]` / `[model ...]` /
/// `[coupling ...]` sections of a deploy INI, is validated as a graph
/// (dangling references, fault policy without checkpointing, ... are
/// errors, not silent no-ops), placed by the scheduler as a full role set,
/// deployed through the daemon and run by the generalized Bridge. The six
/// classic paper configurations are canned specs flowing through this one
/// path (scenario::classic_spec).

/// Which client<->worker data path the coupling script runs.
///   pipelined   — concurrent per-phase RPCs, delta state exchange, striped
///                 bulk transfers (the wide-area data path overhaul).
///   synchronous — the pre-overhaul serial path with full state fetches;
///                 kept as the measured baseline (bit-identical physics).
enum class Datapath { pipelined, synchronous };

/// One model of the graph.
struct ModelSpec {
  std::string name;
  sched::Role role = sched::Role::gravity;
  /// Worker code ("phigrape", "phigrape-gpu", "fi", "octgrav", "gadget",
  /// "sse") or "auto" to let the scheduler pick the kernel variant.
  std::string kernel = "auto";
  std::size_t n = 0;       // particles (gravity/hydro) or stars (stellar)
  int nranks = 0;          // hydro MPI width (0 = scheduler-sized)
  int nodes = 1;           // nodes a pinned deployment occupies
  /// Domain decomposition (gravity only): shard across this many workers,
  /// each integrating a contiguous Morton range of the particle set with
  /// per-step ghost exchanges. 1 = the classic single-worker model; the
  /// bridge, couplings and fault machinery see one logical model either
  /// way (ShardedGravityClient).
  int workers = 1;
  double eps2 = 1e-4;
  double eta = 0.02;       // phigrape accuracy
  double theta = 0.6;      // tree opening angle

  // --- IC recipe ("plummer" for gravity, "gas-sphere" for hydro,
  // "salpeter" for stellar; "" = the role default). All models draw from
  // one seeded stream in declaration order, so a spec is a reproducible
  // experiment definition. ---
  std::string ic;
  double total_mass = 1.0;   // mass scale (N-body units)
  /// Length scale: gas-sphere radius / plummer scale. 0 = the role default
  /// (1.0 for a standard N-body-units plummer, 1.5 for the natal cloud).
  double radius = 0.0;
  double u_frac = 0.05;      // gas: internal energy fraction
  Vec3 offset{};             // bulk position shift (galaxy mergers)
  Vec3 bulk_velocity{};      // bulk velocity shift
  /// Stellar: force the first ZAMS mass (MSun); 0 = leave the draw alone.
  /// The classic embedded cluster guarantees one star that will go off.
  double ensure_massive = 0.0;

  // --- wiring (stellar role only) ---
  std::string of;        // gravity model SSE masses flow into
  std::string feedback;  // hydro model wind/SN energy heats ("" = none)

  /// Placement pin: "" = scheduler's choice, "local" = the client machine,
  /// "resource" or "resource/host" = that deployment target.
  std::string place;
};

/// One pairwise coupling of the graph.
struct CouplingSpec {
  std::string name;
  std::string field;  // field-role model evaluating the cross-gravity
  std::string a;      // two dynamic (gravity/hydro) models
  std::string b;
  int every = 1;      // cross-kick cadence in bridge steps
};

struct ExperimentSpec {
  std::string name = "experiment";
  std::vector<ModelSpec> models;
  std::vector<CouplingSpec> couplings;

  double dt = 1.0 / 32.0;
  int iterations = 2;
  int se_every = 4;
  std::uint64_t seed = 20120301;
  Datapath datapath = Datapath::pipelined;
  double myr_per_nbody_time = 0.47;
  double feedback_efficiency = 0.1;
  double wind_specific_energy = 5.0;
  double supernova_energy = 40.0;

  /// Fault policy: checkpoint every model after each step and re-place /
  /// roll back on worker death. kill_host/kill_after_iteration inject one
  /// host crash for testing — valid only with checkpointing on (validated).
  /// kill_process narrows the same injection to one process on that host
  /// (e.g. "amuse-daemon", "job", "worker"): the machine stays up and the
  /// supervisors recover in place instead of re-placing.
  bool checkpointing = false;
  std::string kill_host;
  int kill_after_iteration = -1;
  std::string kill_process;

  /// Link-fault injection: after iteration `flap_after_iteration`, flap
  /// `flap_link` down for `flap_down_s` virtual seconds (it heals by
  /// itself), or — when `flap_streams` > 0 — fail that many of the link's
  /// parallel streams instead, healing after `flap_streams_heal_s`. A flap
  /// shorter than the outage grace budget is survived by the retry layer
  /// without any rollback; a stream failure degrades bulk transfers to the
  /// surviving streams (fault.degraded_iterations counts the steps hit).
  std::string flap_link;
  int flap_after_iteration = -1;
  double flap_down_s = 2.0;
  int flap_streams = 0;
  double flap_streams_heal_s = 5.0;

  /// Per-call RPC reply deadline (virtual seconds; 0 disables). A worker
  /// that stops answering — hung process, silently black-holed route —
  /// surfaces as WorkerDiedError(cause=timeout) instead of deadlocking the
  /// bridge. The default is far above any modeled call, far below forever.
  double rpc_timeout = 3600.0;

  /// Host the coupling script runs on ("" = the testbed's client host).
  std::string client;

  /// Closed-loop scheduling: after the first measured iteration calibrates
  /// the cost model, re-plan proactively when the measured/modeled compute
  /// drift of any role exceeds `replan_drift` (a factor, > 1), and migrate
  /// to the new placement at the checkpoint boundary when it is actually
  /// faster. Calibration itself always runs; `replan` gates only the
  /// migration. Requires checkpointing (validated).
  bool replan = false;
  double replan_drift = 4.0;

  /// Graph validation: throws ConfigError naming the offending model or
  /// coupling. Checks (among others) that coupling endpoints resolve to
  /// dynamic models, field references resolve to field models, no field
  /// model dangles unused, stellar wiring resolves, and the fault-injection
  /// policy is only present when checkpointing can honor it.
  void validate() const;

  /// The spec's graph in the scheduler's units.
  sched::Workload workload() const;

  int find(const std::string& model_name) const;  // index, -1 if absent

  /// Parse the [experiment] / [model ...] / [coupling ...] sections.
  static ExperimentSpec from_config(const util::Config& config);
};

/// True when the INI declares an experiment graph (any `[model ...]`
/// section) rather than being a bare topology file.
bool config_declares_experiment(const util::Config& config);

/// Final state and energies of one model after a run.
struct ModelResult {
  std::string name;
  sched::Role role = sched::Role::gravity;
  GravityState gravity;  // gravity models
  HydroState hydro;      // hydro models
  double kinetic = 0.0;
  double potential = 0.0;
  double thermal = 0.0;  // hydro only
};

struct Result {
  std::string experiment;
  int iterations = 0;
  double seconds_per_iteration = 0.0;   // virtual
  double wan_bytes = 0.0;               // bytes that crossed any WAN link
  double wan_ipl_bytes = 0.0;
  /// Coupling traffic (IPL class) that crossed a WAN link, per bridge step
  /// — the wire cost the delta exchange minimizes (bench_datapath's gate).
  double wan_ipl_bytes_per_step = 0.0;
  double bound_gas_fraction = 1.0;      // after the run (1.0 when no gas)
  std::string dashboard;                // Figs 10/11 text analog
  std::string placement;                // model->host map that actually ran
  double modeled_seconds_per_iteration = 0.0;  // scheduler's prediction
  int restarts = 0;                     // fault-path re-placements performed
  std::vector<ModelResult> models;      // final states, declaration order

  // --- observability: the modeled-vs-measured loop ---
  /// Per-iteration metric/traffic deltas; replayed steps marked distinctly.
  std::vector<diagnostics::IterationReport> iteration_log;
  /// Worst per-role measured/modeled compute ratio (max of r, 1/r) before
  /// calibration — how wrong the static cost model was on this run.
  double precalibration_drift = 0.0;
  /// The same ratio after the first measured iteration calibrated the
  /// per-model flop charges (0 when no iteration completed cleanly).
  double compute_drift = 0.0;
  /// Modeled s/iter of the running placement re-scored with the calibrated
  /// cost model (modeled_seconds_per_iteration stays uncalibrated).
  double calibrated_seconds_per_iteration = 0.0;
  /// Drift-triggered migrations performed (spec.replan).
  int replans = 0;
};

/// The Jungle of Figs 9/12: Seattle laptop, VU desktop + DAS-4 VU cluster,
/// DAS-4 UvA node, DAS-4 Delft GPU nodes, LGM in Leiden; lightpaths
/// between them. Owned by the caller via this handle.
class JungleTestbed {
 public:
  explicit JungleTestbed(bool verbose = false);
  /// Build the testbed from a deploy INI instead (sites/hosts/links and
  /// [resource ...] sections, plus an optional `[scenario] client = HOST`).
  /// This is what makes any topology file a runnable experiment.
  explicit JungleTestbed(const util::Config& config, bool verbose = false);
  /// Unwind all simulated processes before the network/sockets they touch.
  ~JungleTestbed() {
    obs::trace::unbind_clock(this);
    sim_.shutdown();
  }
  JungleTestbed(const JungleTestbed&) = delete;
  JungleTestbed& operator=(const JungleTestbed&) = delete;

  sim::Simulation& simulation() noexcept { return sim_; }
  sim::Network& network() noexcept { return net_; }
  smartsockets::SmartSockets& sockets() noexcept { return sockets_; }
  deploy::Deployer& deployer() noexcept { return *deployer_; }
  IbisDaemon& daemon(sim::Host& client);

  sim::Host& desktop() { return net_.host("desktop"); }
  sim::Host& laptop() { return net_.host("laptop"); }
  /// The machine the coupling script runs on: the INI's `[scenario]`
  /// client, or the desktop on the built-in testbed.
  sim::Host& client_host();

 private:
  sim::Simulation sim_;
  sim::Network net_{sim_};
  smartsockets::SmartSockets sockets_{net_};
  std::unique_ptr<deploy::Deployer> deployer_;
  std::unique_ptr<IbisDaemon> daemon_;
  sim::Host* client_ = nullptr;
};

/// The placement an experiment runs: pinned models verbatim (scored), free
/// models planned by the scheduler — the full role set in one decision.
sched::Placement plan_experiment(JungleTestbed& bed,
                                 const ExperimentSpec& spec);

/// Validate, place, deploy and run the experiment graph; report the
/// per-iteration timings + traffic. Deterministic for a fixed spec.
Result run_experiment(JungleTestbed& bed, const ExperimentSpec& spec);
/// Same, on the built-in Fig-9/12 jungle testbed.
Result run_experiment(const ExperimentSpec& spec);
/// One INI, whole run: topology + resources + experiment graph.
Result run_experiment_config(const util::Config& config);

}  // namespace jungle::amuse::experiment
