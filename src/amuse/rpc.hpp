#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/mailbox.hpp"
#include "smartsockets/connection.hpp"
#include "util/bytebuffer.hpp"
#include "util/error.hpp"

namespace jungle::amuse {

/// AMUSE communicates with workers "in an RPC-like method. Both synchronous
/// and asynchronous calls are supported" (paper §4.1). This is that layer:
/// framed request/reply with correlation ids, futures for async calls, and
/// a worker-side dispatch loop.

/// Function ids. Ranges per interface keep dispatch tables readable.
enum class Fn : std::uint16_t {
  ping = 0,
  stop = 1,

  // GravitationalDynamics (phiGRAPE)
  grav_set_params = 10,
  grav_add_particles = 11,
  grav_evolve = 12,
  grav_get_state = 13,
  grav_get_energies = 14,
  grav_kick_all = 15,
  grav_set_masses = 16,
  grav_get_time = 17,
  /// Sparse mass update: [i32 indices][f64 masses] — the delta-compressed
  /// form of the stellar-evolution mass channel.
  grav_set_masses_sparse = 18,
  /// Dynamic integrator state for bit-exact restart: the corrector-stage
  /// accelerations/jerks carried across evolve() calls plus the absolute
  /// model time. Fetched at checkpoint capture, installed into a fresh
  /// replacement so the replayed step resumes golden's exact substep
  /// sequence instead of re-deriving forces (and diverging by roundoff).
  grav_get_dynamics = 19,
  grav_set_dynamics = 20,
  /// Drop all particles and reset the model clock/owned range (params and
  /// meters survive). Shard (re)priming: reset + add_particles + set_shard.
  grav_reset = 21,
  /// Domain decomposition: [u64 lo][u64 hi] — this worker holds all N
  /// particles but integrates only rows [lo, hi) of the Morton-ordered
  /// arrays. The delta-state reply then serves the owned slice only.
  grav_set_shard = 22,
  /// Ghost refresh from the coordinating client: [u64 base][u64 flags]
  /// [pos span][vel span] written at index `base`. flags bit 0 = positions
  /// arrive as f32 (truncated on a low-bandwidth link). No epoch bump —
  /// ghosts are not this shard's state to publish.
  grav_ghost_update = 23,

  // GravityField (Octgrav / Fi)
  field_set_sources = 30,
  field_accel_at = 31,
  /// One-shot cross-gravity query: epoch-tagged sources + evaluation points
  /// in a single frame (both directions of a cross-kick pipeline as two
  /// concurrent calls), with worker-side caching of unchanged inputs.
  field_accel_for = 32,

  // Hydrodynamics (Gadget)
  hydro_set_params = 50,
  hydro_add_gas = 51,
  hydro_evolve = 52,
  hydro_get_state = 53,
  hydro_get_energies = 54,
  hydro_kick_all = 55,
  hydro_inject = 56,
  hydro_get_time = 57,
  /// Absolute-clock restore for checkpoint restart (SPH re-derives density
  /// and forces every substep; the clock is its only carried dynamic state).
  hydro_set_time = 58,

  // StellarEvolution (SSE)
  se_add_stars = 70,
  se_evolve_to = 71,
  se_get_masses = 72,
  se_get_supernovae = 73,
  se_get_mass_loss = 74,
  se_get_luminosities = 75,
  /// Delta-compressed mass fetch: only masses that changed since the last
  /// exchange travel ([u64 flags][indices][values], or a full array).
  se_get_mass_updates = 76,
};

/// Short name of a function id, for span labels and log lines.
const char* fn_name(Fn fn) noexcept;

/// Reply status on the wire.
enum class RpcStatus : std::uint8_t { ok = 0, code_error = 1, worker_died = 2 };

/// Fixed frame headers; the payload is simply the rest of the frame (no
/// inner length prefix, no extra payload copy):
///   request: [u32 request_id][u16 fn][u16 flags][u64 span_id][f64 deadline] + payload
///   reply:   [u32 request_id][u8 status][u8 cause][u16 zero][u64 span_id]   + payload
/// span_id is the trace context: requests carry the caller's current span
/// so worker-side spans parent under the client call across hosts; replies
/// echo the server-side span that handled the call (0 = untraced). The
/// request id doubles as the call's *idempotency token*: a client-side
/// resend reuses the id (with the resend flag set) and the worker replays
/// the cached reply instead of executing twice. `deadline` is the absolute
/// virtual time after which the client gives up (0 = none); a worker that
/// receives an already-expired request refuses it instead of mutating state
/// the caller is about to restore elsewhere. Both header sizes are multiples
/// of 8, which keeps payload array fields 8-aligned in the receive buffer —
/// that is what makes ByteReader::get_span views legal.
constexpr std::size_t kFrameHeaderBytes = 16;    // reply header
constexpr std::size_t kRequestHeaderBytes = 24;  // request header

/// Request header flag bits.
namespace rpc_flags {
/// The call may execute at most once but be *asked* more than once: the
/// worker caches the reply bytes keyed by request id so a resend replays
/// the answer instead of re-executing.
constexpr std::uint16_t idempotent = 1;
/// This frame is a client-side retransmission of an earlier request (same
/// id). The worker serves it from the replay cache when possible.
constexpr std::uint16_t resend = 2;
}  // namespace rpc_flags

/// Whether a function is safe to retry across a transport wobble: state
/// fetches and field queries (re-execution returns the same answer) and the
/// repeat-kicks (the worker-side replay cache makes them exactly-once).
/// Everything that advances model state irreversibly — evolve, set_masses,
/// add_particles — is excluded and surfaces WorkerDiedError instead.
bool retry_safe(Fn fn) noexcept;

struct RpcReply {
  RpcStatus status = RpcStatus::ok;
  /// The received frame; payload starts at `payload_offset` (the reply is
  /// handed to the caller as a reader over this buffer — no copy).
  std::vector<std::uint8_t> frame;
  std::size_t payload_offset = 0;
  // Filled for worker_died: where and why the worker was lost, so the
  // thrown WorkerDiedError lets recovery exclude the right resource.
  std::string died_host;
  WorkerDiedError::Cause died_cause = WorkerDiedError::Cause::unknown;
};

/// Frames whose request id is this value are connection-level death notices
/// (sent by the daemon when the registry reports a worker's host died), not
/// replies: header cause byte is set, payload = host string, detail string.
constexpr std::uint32_t kDeathNoticeId = 0;

/// Abstract bidirectional message transport the RPC layer runs over. The
/// three AMUSE channels (MPI, socket, Ibis-via-daemon) all reduce to this.
class MessagePipe {
 public:
  virtual ~MessagePipe() = default;
  virtual void send_bytes(std::vector<std::uint8_t> bytes) = 0;
  /// Blocking; nullopt on orderly close. Throws ConnectError when broken.
  virtual std::optional<std::vector<std::uint8_t>> recv_bytes() = 0;
  virtual void close() = 0;
};

/// MessagePipe over a SmartSockets connection.
class ConnectionPipe : public MessagePipe {
 public:
  explicit ConnectionPipe(std::shared_ptr<smartsockets::ConnectionEnd> conn)
      : conn_(std::move(conn)) {}
  void send_bytes(std::vector<std::uint8_t> bytes) override {
    conn_->send(std::move(bytes));
  }
  std::optional<std::vector<std::uint8_t>> recv_bytes() override {
    return conn_->recv();
  }
  void close() override { conn_->close(); }

 private:
  std::shared_ptr<smartsockets::ConnectionEnd> conn_;
};

/// Client-side future (CP.60). get() blocks the calling process until the
/// reply lands; throws CodeError when the worker reported an error or died.
/// When the issuing client set a call timeout, get() waits at most that
/// many virtual seconds and then reports the worker dead (cause=timeout) —
/// a hung-but-alive worker surfaces as a WorkerDiedError the fault path
/// can recover from instead of deadlocking the bridge. A Future must not
/// outlive the RpcClient that issued it (the pump feeds it).
class Future {
 public:
  struct State {
    explicit State(sim::Simulation& sim) : box(sim) {}
    sim::Mailbox<RpcReply> box;
    std::string worker;  // label of the client that issued the call
    std::uint32_t request_id = 0;
    double timeout_s = 0.0;  // 0 = wait forever
    double t_sent = 0.0;     // virtual send time (latency histogram)
    /// Client-side RPC span, open while the call is in flight (the pump
    /// ends it on reply or poison). Inactive when tracing is off.
    obs::trace::Span span;
    /// Poisons the issuing client when the wait expires, so every other
    /// outstanding call on the same pipe fails too (one hung worker, one
    /// death report — not one timeout per call).
    std::function<void()> on_timeout;
    /// Retry plumbing, installed by the client for retry_safe calls: get()
    /// waits in soft-deadline slices of (jittered, doubling) `soft_delay_s`
    /// and invokes `resend(attempt)` between slices — the callback ships the
    /// original frame again with the resend flag set and returns false once
    /// the retry budget is spent or the pipe is unusable.
    double soft_delay_s = 0.0;  // 0 = no client-side resends
    std::function<bool(int)> resend;
  };

  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}

  util::ByteReader get();
  bool ready() const noexcept { return !state_->box.empty(); }

 private:
  std::shared_ptr<State> state_;
};

/// Client endpoint: correlates replies with requests and hands out futures.
/// A pump process (spawned on `home`) drains the pipe. Multiple calls may be
/// outstanding — that is what makes the bridge's parallel evolve work.
class RpcClient {
 public:
  RpcClient(sim::Host& home, std::unique_ptr<MessagePipe> pipe,
            std::string label);
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Argument writer with the request header pre-reserved: call() patches
  /// the id/function into it and ships the buffer as-is — the payload is
  /// never copied into a second framing buffer.
  static util::ByteWriter request() {
    return util::ByteWriter(kRequestHeaderBytes);
  }

  Future call(Fn fn, util::ByteWriter arguments);
  util::ByteReader call_sync(Fn fn, util::ByteWriter arguments);

  /// Send the stop function and close the pipe.
  void close();
  bool alive() const noexcept { return !dead_; }
  const std::string& label() const noexcept { return label_; }

  /// Per-call reply deadline in virtual seconds (0 = wait forever, the
  /// default). Applies to calls issued after the setter.
  void set_call_timeout(double timeout_s) noexcept {
    call_timeout_s_ = timeout_s;
  }
  double call_timeout() const noexcept { return call_timeout_s_; }

  /// What poisoned this client (meaningful once !alive()): recovery uses
  /// the cause per worker, not just the first error it happened to catch.
  WorkerDiedError::Cause death_cause() const noexcept { return death_cause_; }
  const std::string& death_host() const noexcept { return death_host_; }

  /// Fail every outstanding and future call (used by the daemon client when
  /// the registry reports the worker died). `cause`/`host` record what the
  /// transport knew about the failure for WorkerDiedError.
  void poison(const std::string& reason,
              WorkerDiedError::Cause cause = WorkerDiedError::Cause::unknown,
              const std::string& host = "");

  /// Un-poison after a supervised in-place restart (cause=process_crash):
  /// the pipe to the daemon stayed open and a fresh worker now answers on
  /// it, so this client can carry on — the caller is responsible for
  /// restoring model state into the blank worker. Outstanding calls were
  /// already failed by poison(); nothing is replayed.
  void revive();

  /// Client-side resend policy for retry_safe calls: after `soft_delay_s`
  /// of virtual time without a reply the frame is retransmitted (same
  /// request id, resend flag), with deterministic jitter and doubling
  /// backoff, up to `max_resends` times. The default soft delay is far
  /// above a healthy reply's latency, so fault-free runs never resend and
  /// golden digests are unaffected. `max_resends = 0` disables retries.
  void set_retry_policy(double soft_delay_s, int max_resends) noexcept {
    retry_soft_delay_s_ = soft_delay_s;
    retry_max_resends_ = max_resends;
  }

  /// Name this client's metrics series rpc.<meter>.{calls,bytes_out,
  /// bytes_in,latency_s}. Defaults to the label; the experiment runner sets
  /// the model name so worker meters and RPC meters line up.
  void set_meter(const std::string& meter);

 private:
  void pump();
  RpcReply death_reply() const;
  void remember_completed(std::uint32_t request_id);
  bool recently_completed(std::uint32_t request_id) const noexcept;

  sim::Host& home_;
  std::unique_ptr<MessagePipe> pipe_;
  std::string label_;
  double call_timeout_s_ = 0.0;
  double retry_soft_delay_s_ = 1.0;
  int retry_max_resends_ = 6;
  std::uint32_t next_request_ = 1;
  std::map<std::uint32_t, std::shared_ptr<Future::State>> pending_;
  /// Ring of recently answered request ids: a duplicate reply (the original
  /// answer of a call that was also resent) is dropped quietly instead of
  /// warning about an unknown request.
  std::array<std::uint32_t, 64> recent_{};
  std::size_t recent_pos_ = 0;
  bool dead_ = false;
  std::string death_reason_;
  std::string death_host_;
  WorkerDiedError::Cause death_cause_ = WorkerDiedError::Cause::unknown;
  sim::ProcessId pump_pid_ = 0;
  bool closed_ = false;
  obs::metrics::Counter* m_calls_ = nullptr;
  obs::metrics::Counter* m_bytes_out_ = nullptr;
  obs::metrics::Counter* m_bytes_in_ = nullptr;
  obs::metrics::Histogram* m_latency_ = nullptr;
};

/// Global (not per-meter) retry telemetry — what the fault story is judged
/// by: a flapping link shows up as rpc.retries > 0 with zero rollbacks, a
/// hung worker as rpc.deadline_misses > 0.
inline obs::metrics::Counter& rpc_retries_counter() {
  return obs::metrics::counter("rpc.retries");
}
inline obs::metrics::Counter& rpc_deadline_misses_counter() {
  return obs::metrics::counter("rpc.deadline_misses");
}

/// Worker-side dispatcher: maps a function id + argument reader to a result.
/// Throwing CodeError inside produces an error reply (not a crash). Build
/// results with reply_writer() so the server can patch the frame header in
/// place and send them without another framing copy.
using Dispatcher =
    std::function<util::ByteWriter(Fn, util::ByteReader&)>;

/// Result writer for dispatchers with the reply header pre-reserved.
inline util::ByteWriter reply_writer() {
  return util::ByteWriter(kFrameHeaderBytes);
}

/// Worker-side request loop. Runs on the worker's own process until the
/// client sends `stop` or the pipe closes/breaks. Requests flagged
/// idempotent have their reply bytes cached by request id; a flagged resend
/// is answered from that cache without re-executing — the exactly-once
/// guarantee that makes client-side retries of state-touching-but-safe
/// calls (repeat kicks) sound. When a `clock` is provided, requests whose
/// wire deadline already passed are refused with a code error instead of
/// executed: the client has given up and is restoring state elsewhere.
class WorkerServer {
 public:
  WorkerServer(std::unique_ptr<MessagePipe> pipe, Dispatcher dispatcher,
               std::function<double()> clock = {})
      : pipe_(std::move(pipe)),
        dispatcher_(std::move(dispatcher)),
        clock_(std::move(clock)) {}

  /// Blocking; returns when the worker is told to stop.
  void run();

 private:
  /// Replay cache entries kept (FIFO). Deep enough to cover every call a
  /// client can have in flight at once; old entries cannot be resent anyway
  /// once their reply was consumed.
  static constexpr std::size_t kReplayCacheEntries = 64;

  void cache_reply(std::uint32_t request_id,
                   const std::vector<std::uint8_t>& bytes);

  std::unique_ptr<MessagePipe> pipe_;
  Dispatcher dispatcher_;
  std::function<double()> clock_;
  std::map<std::uint32_t, std::vector<std::uint8_t>> replay_;
  std::deque<std::uint32_t> replay_order_;
};

}  // namespace jungle::amuse
