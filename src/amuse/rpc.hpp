#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/mailbox.hpp"
#include "smartsockets/connection.hpp"
#include "util/bytebuffer.hpp"
#include "util/error.hpp"

namespace jungle::amuse {

/// AMUSE communicates with workers "in an RPC-like method. Both synchronous
/// and asynchronous calls are supported" (paper §4.1). This is that layer:
/// framed request/reply with correlation ids, futures for async calls, and
/// a worker-side dispatch loop.

/// Function ids. Ranges per interface keep dispatch tables readable.
enum class Fn : std::uint16_t {
  ping = 0,
  stop = 1,

  // GravitationalDynamics (phiGRAPE)
  grav_set_params = 10,
  grav_add_particles = 11,
  grav_evolve = 12,
  grav_get_state = 13,
  grav_get_energies = 14,
  grav_kick_all = 15,
  grav_set_masses = 16,
  grav_get_time = 17,
  /// Sparse mass update: [i32 indices][f64 masses] — the delta-compressed
  /// form of the stellar-evolution mass channel.
  grav_set_masses_sparse = 18,
  /// Dynamic integrator state for bit-exact restart: the corrector-stage
  /// accelerations/jerks carried across evolve() calls plus the absolute
  /// model time. Fetched at checkpoint capture, installed into a fresh
  /// replacement so the replayed step resumes golden's exact substep
  /// sequence instead of re-deriving forces (and diverging by roundoff).
  grav_get_dynamics = 19,
  grav_set_dynamics = 20,

  // GravityField (Octgrav / Fi)
  field_set_sources = 30,
  field_accel_at = 31,
  /// One-shot cross-gravity query: epoch-tagged sources + evaluation points
  /// in a single frame (both directions of a cross-kick pipeline as two
  /// concurrent calls), with worker-side caching of unchanged inputs.
  field_accel_for = 32,

  // Hydrodynamics (Gadget)
  hydro_set_params = 50,
  hydro_add_gas = 51,
  hydro_evolve = 52,
  hydro_get_state = 53,
  hydro_get_energies = 54,
  hydro_kick_all = 55,
  hydro_inject = 56,
  hydro_get_time = 57,
  /// Absolute-clock restore for checkpoint restart (SPH re-derives density
  /// and forces every substep; the clock is its only carried dynamic state).
  hydro_set_time = 58,

  // StellarEvolution (SSE)
  se_add_stars = 70,
  se_evolve_to = 71,
  se_get_masses = 72,
  se_get_supernovae = 73,
  se_get_mass_loss = 74,
  se_get_luminosities = 75,
  /// Delta-compressed mass fetch: only masses that changed since the last
  /// exchange travel ([u64 flags][indices][values], or a full array).
  se_get_mass_updates = 76,
};

/// Short name of a function id, for span labels and log lines.
const char* fn_name(Fn fn) noexcept;

/// Reply status on the wire.
enum class RpcStatus : std::uint8_t { ok = 0, code_error = 1, worker_died = 2 };

/// Both frame directions carry a fixed 16-byte header; the payload is simply
/// the rest of the frame (no inner length prefix, no extra payload copy):
///   request:  [u32 request_id][u16 fn][u16 zero][u64 span_id]          + payload
///   reply:    [u32 request_id][u8 status][u8 cause][u16 zero][u64 span_id] + payload
/// span_id is the trace context: requests carry the caller's current span
/// so worker-side spans parent under the client call across hosts; replies
/// echo the server-side span that handled the call (0 = untraced). The
/// 16-byte size keeps payload array fields 8-aligned in the receive buffer,
/// which is what makes ByteReader::get_span views legal.
constexpr std::size_t kFrameHeaderBytes = 16;

struct RpcReply {
  RpcStatus status = RpcStatus::ok;
  /// The received frame; payload starts at `payload_offset` (the reply is
  /// handed to the caller as a reader over this buffer — no copy).
  std::vector<std::uint8_t> frame;
  std::size_t payload_offset = 0;
  // Filled for worker_died: where and why the worker was lost, so the
  // thrown WorkerDiedError lets recovery exclude the right resource.
  std::string died_host;
  WorkerDiedError::Cause died_cause = WorkerDiedError::Cause::unknown;
};

/// Frames whose request id is this value are connection-level death notices
/// (sent by the daemon when the registry reports a worker's host died), not
/// replies: header cause byte is set, payload = host string, detail string.
constexpr std::uint32_t kDeathNoticeId = 0;

/// Abstract bidirectional message transport the RPC layer runs over. The
/// three AMUSE channels (MPI, socket, Ibis-via-daemon) all reduce to this.
class MessagePipe {
 public:
  virtual ~MessagePipe() = default;
  virtual void send_bytes(std::vector<std::uint8_t> bytes) = 0;
  /// Blocking; nullopt on orderly close. Throws ConnectError when broken.
  virtual std::optional<std::vector<std::uint8_t>> recv_bytes() = 0;
  virtual void close() = 0;
};

/// MessagePipe over a SmartSockets connection.
class ConnectionPipe : public MessagePipe {
 public:
  explicit ConnectionPipe(std::shared_ptr<smartsockets::ConnectionEnd> conn)
      : conn_(std::move(conn)) {}
  void send_bytes(std::vector<std::uint8_t> bytes) override {
    conn_->send(std::move(bytes));
  }
  std::optional<std::vector<std::uint8_t>> recv_bytes() override {
    return conn_->recv();
  }
  void close() override { conn_->close(); }

 private:
  std::shared_ptr<smartsockets::ConnectionEnd> conn_;
};

/// Client-side future (CP.60). get() blocks the calling process until the
/// reply lands; throws CodeError when the worker reported an error or died.
/// When the issuing client set a call timeout, get() waits at most that
/// many virtual seconds and then reports the worker dead (cause=timeout) —
/// a hung-but-alive worker surfaces as a WorkerDiedError the fault path
/// can recover from instead of deadlocking the bridge. A Future must not
/// outlive the RpcClient that issued it (the pump feeds it).
class Future {
 public:
  struct State {
    explicit State(sim::Simulation& sim) : box(sim) {}
    sim::Mailbox<RpcReply> box;
    std::string worker;  // label of the client that issued the call
    double timeout_s = 0.0;  // 0 = wait forever
    double t_sent = 0.0;     // virtual send time (latency histogram)
    /// Client-side RPC span, open while the call is in flight (the pump
    /// ends it on reply or poison). Inactive when tracing is off.
    obs::trace::Span span;
    /// Poisons the issuing client when the wait expires, so every other
    /// outstanding call on the same pipe fails too (one hung worker, one
    /// death report — not one timeout per call).
    std::function<void()> on_timeout;
  };

  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}

  util::ByteReader get();
  bool ready() const noexcept { return !state_->box.empty(); }

 private:
  std::shared_ptr<State> state_;
};

/// Client endpoint: correlates replies with requests and hands out futures.
/// A pump process (spawned on `home`) drains the pipe. Multiple calls may be
/// outstanding — that is what makes the bridge's parallel evolve work.
class RpcClient {
 public:
  RpcClient(sim::Host& home, std::unique_ptr<MessagePipe> pipe,
            std::string label);
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Argument writer with the frame header pre-reserved: call() patches the
  /// id/function into it and ships the buffer as-is — the payload is never
  /// copied into a second framing buffer.
  static util::ByteWriter request() { return util::ByteWriter(kFrameHeaderBytes); }

  Future call(Fn fn, util::ByteWriter arguments);
  util::ByteReader call_sync(Fn fn, util::ByteWriter arguments);

  /// Send the stop function and close the pipe.
  void close();
  bool alive() const noexcept { return !dead_; }
  const std::string& label() const noexcept { return label_; }

  /// Per-call reply deadline in virtual seconds (0 = wait forever, the
  /// default). Applies to calls issued after the setter.
  void set_call_timeout(double timeout_s) noexcept {
    call_timeout_s_ = timeout_s;
  }
  double call_timeout() const noexcept { return call_timeout_s_; }

  /// What poisoned this client (meaningful once !alive()): recovery uses
  /// the cause per worker, not just the first error it happened to catch.
  WorkerDiedError::Cause death_cause() const noexcept { return death_cause_; }
  const std::string& death_host() const noexcept { return death_host_; }

  /// Fail every outstanding and future call (used by the daemon client when
  /// the registry reports the worker died). `cause`/`host` record what the
  /// transport knew about the failure for WorkerDiedError.
  void poison(const std::string& reason,
              WorkerDiedError::Cause cause = WorkerDiedError::Cause::unknown,
              const std::string& host = "");

  /// Name this client's metrics series rpc.<meter>.{calls,bytes_out,
  /// bytes_in,latency_s}. Defaults to the label; the experiment runner sets
  /// the model name so worker meters and RPC meters line up.
  void set_meter(const std::string& meter);

 private:
  void pump();
  RpcReply death_reply() const;

  sim::Host& home_;
  std::unique_ptr<MessagePipe> pipe_;
  std::string label_;
  double call_timeout_s_ = 0.0;
  std::uint32_t next_request_ = 1;
  std::map<std::uint32_t, std::shared_ptr<Future::State>> pending_;
  bool dead_ = false;
  std::string death_reason_;
  std::string death_host_;
  WorkerDiedError::Cause death_cause_ = WorkerDiedError::Cause::unknown;
  sim::ProcessId pump_pid_ = 0;
  bool closed_ = false;
  obs::metrics::Counter* m_calls_ = nullptr;
  obs::metrics::Counter* m_bytes_out_ = nullptr;
  obs::metrics::Counter* m_bytes_in_ = nullptr;
  obs::metrics::Histogram* m_latency_ = nullptr;
};

/// Worker-side dispatcher: maps a function id + argument reader to a result.
/// Throwing CodeError inside produces an error reply (not a crash). Build
/// results with reply_writer() so the server can patch the frame header in
/// place and send them without another framing copy.
using Dispatcher =
    std::function<util::ByteWriter(Fn, util::ByteReader&)>;

/// Result writer for dispatchers with the reply header pre-reserved.
inline util::ByteWriter reply_writer() {
  return util::ByteWriter(kFrameHeaderBytes);
}

/// Worker-side request loop. Runs on the worker's own process until the
/// client sends `stop` or the pipe closes/breaks.
class WorkerServer {
 public:
  WorkerServer(std::unique_ptr<MessagePipe> pipe, Dispatcher dispatcher)
      : pipe_(std::move(pipe)), dispatcher_(std::move(dispatcher)) {}

  /// Blocking; returns when the worker is told to stop.
  void run();

 private:
  std::unique_ptr<MessagePipe> pipe_;
  Dispatcher dispatcher_;
};

}  // namespace jungle::amuse
