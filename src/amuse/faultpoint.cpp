#include "amuse/faultpoint.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace jungle::amuse::faultpoint {

namespace {

// One hook per process: the explorer drives one simulated world at a time.
Hook g_hook;

constexpr const char* kNames[kPointCount] = {
    "step.top_kick",   "step.evolve",     "step.bottom_kick",
    "step.stellar",    "ckpt.capture",    "ckpt.commit",
    "ckpt.committed",  "recover.exclude", "recover.replace",
    "recover.restore", "recover.rebuild", "spawn.worker",
};

}  // namespace

const char* name(Point point) noexcept {
  int index = static_cast<int>(point);
  if (index < 0 || index >= kPointCount) return "?";
  return kNames[index];
}

bool parse(const std::string& text, Point& out) noexcept {
  for (int i = 0; i < kPointCount; ++i) {
    if (text == kNames[i]) {
      out = static_cast<Point>(i);
      return true;
    }
  }
  return false;
}

ScopedHook::ScopedHook(Hook hook) {
  if (g_hook) {
    throw CodeError("faultpoint: a hook is already installed");
  }
  g_hook = std::move(hook);
}

ScopedHook::~ScopedHook() { g_hook = nullptr; }

bool active() noexcept { return static_cast<bool>(g_hook); }

namespace {

// Count hook-visible reaches per point (fault.point.<name>), so a fault
// exploration's metrics show which schedule points actually fired. Counter
// pointers are cached; normal (hook-less) runs skip this entirely.
void meter(Point point) {
  static obs::metrics::Counter* counters[kPointCount] = {};
  int index = static_cast<int>(point);
  if (index < 0 || index >= kPointCount) return;
  if (counters[index] == nullptr) {
    counters[index] =
        &obs::metrics::counter(std::string("fault.point.") + kNames[index]);
  }
  counters[index]->increment();
}

}  // namespace

void reach(const Context& context) {
  if (!g_hook) return;
  meter(context.point);
  g_hook(context);
}

void reach(Point point, int iteration, const std::string& detail) {
  if (!g_hook) return;
  meter(point);
  Context context;
  context.point = point;
  context.iteration = iteration;
  context.detail = detail;
  g_hook(context);
}

}  // namespace jungle::amuse::faultpoint
