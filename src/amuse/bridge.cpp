#include "amuse/bridge.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>

#include "amuse/faultpoint.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace jungle::amuse {

namespace {

/// A cross-gravity query in flight: which coupling direction it answers and
/// which system the resulting acceleration kicks.
struct PendingQuery {
  int coupling;
  int dir;      // 0 = accel on a (sources b), 1 = accel on b (sources a)
  int target;   // system index the accel applies to
  int source;   // system index whose particles are the sources
  Future reply;
};

/// Accumulates one target system's per-coupling accelerations into a
/// single (accel, dt) kick frame. The common single-direction case ships
/// the coupler's accel span as-is with the worker multiplying by dt;
/// multiple directions keep a raw sum while their cadences agree, and
/// pre-scale client-side (dt = 1 on the wire) the moment they differ.
/// Shared by the pipelined and synchronous paths so the trickiest kick
/// arithmetic cannot drift between them.
class KickSum {
 public:
  void add(std::span<const Vec3> accel, double dt,
           const std::string& target) {
    if (directions_ == 0) {
      single_ = accel;
      dt_ = dt;
    } else {
      if (directions_ == 1) sum_.assign(single_.begin(), single_.end());
      if (sum_.size() != accel.size()) {
        throw CodeError("bridge: coupled accel sizes differ for system '" +
                        target + "'");
      }
      if (dt != dt_ && !mixed_) {
        for (Vec3& value : sum_) value = value * dt_;
        mixed_ = true;
        dt_ = 1.0;
      }
      for (std::size_t i = 0; i < sum_.size(); ++i) {
        sum_[i] = sum_[i] + (mixed_ ? accel[i] * dt : accel[i]);
      }
    }
    ++directions_;
  }

  /// Same, keeping an owned accel alive behind the span (the synchronous
  /// path's accel_at returns vectors).
  void add_owned(std::vector<Vec3> accel, double dt,
                 const std::string& target) {
    owned_.push_back(std::move(accel));
    add(owned_.back(), dt, target);
  }

  bool empty() const { return directions_ == 0; }
  std::span<const Vec3> accel() const {
    return directions_ == 1 ? single_ : std::span<const Vec3>(sum_);
  }
  double dt() const { return dt_; }

 private:
  std::span<const Vec3> single_;
  std::vector<Vec3> sum_;
  std::vector<std::vector<Vec3>> owned_;
  double dt_ = 0.0;
  int directions_ = 0;
  bool mixed_ = false;
};

}  // namespace

Bridge::Bridge(std::vector<System> systems, std::vector<Coupling> couplings,
               std::vector<Stellar> stellar, Config config)
    : systems_(std::move(systems)),
      couplings_(std::move(couplings)),
      config_(config),
      time_(config.t_start) {
  if (systems_.empty()) {
    throw CodeError("bridge: no systems to evolve");
  }
  for (const System& system : systems_) {
    if (system.dynamics == nullptr) {
      throw CodeError("bridge: system '" + system.name + "' has no client");
    }
  }
  int n = static_cast<int>(systems_.size());
  for (const Coupling& coupling : couplings_) {
    if (coupling.field == nullptr) {
      throw CodeError("bridge: coupling without a field client");
    }
    if (coupling.a < 0 || coupling.a >= n || coupling.b < 0 ||
        coupling.b >= n || coupling.a == coupling.b) {
      throw CodeError("bridge: coupling references invalid system indices");
    }
    if (coupling.every < 1) {
      throw CodeError("bridge: coupling cadence must be >= 1");
    }
  }
  stellar_.reserve(stellar.size());
  for (Stellar& wiring : stellar) {
    if (wiring.client == nullptr || wiring.into == nullptr) {
      throw CodeError("bridge: stellar link needs a client and a target");
    }
    StellarLink link;
    link.wiring = wiring;
    stellar_.push_back(std::move(link));
  }
}

Bridge::Bridge(GravityClient& stars, HydroClient& gas, FieldClient& coupler,
               StellarClient* stellar, Config config)
    : Bridge(
          {{"stars", &stars}, {"gas", &gas}},
          {Coupling{&coupler, 0, 1, 1}},
          stellar != nullptr
              ? std::vector<Stellar>{Stellar{stellar, &stars, &gas}}
              : std::vector<Stellar>{},
          config) {}

std::vector<int> Bridge::active_couplings(int step_index, bool bottom) const {
  // A coupling with cadence k fires at the boundaries of its k-step window:
  // at the top of step s when s % k == 0 (kick covering the window ahead)
  // and at the bottom when (s + 1) % k == 0 (closing the window), each with
  // dt = k * bridge_dt / 2 — the nested-BRIDGE scheme. k == 1 reduces to
  // the classic kick–evolve–kick of Fig 7.
  std::vector<int> active;
  for (int c = 0; c < static_cast<int>(couplings_.size()); ++c) {
    int every = couplings_[c].every;
    int phase = bottom ? step_index + 1 : step_index;
    if (phase % every == 0) active.push_back(c);
  }
  return active;
}

void Bridge::cross_kick(const std::vector<int>& active) {
  if (config_.synchronous_datapath) {
    cross_kick_synchronous(active);
    return;
  }

  // Which systems participate in this phase, in declaration order.
  std::vector<int> involved;
  for (int i = 0; i < static_cast<int>(systems_.size()); ++i) {
    for (int c : active) {
      if (couplings_[c].a == i || couplings_[c].b == i) {
        involved.push_back(i);
        break;
      }
    }
  }

  // Phase 1 — every involved system's state, fetched concurrently: one
  // round trip, and only the fields the coupling consumes (mass+position)
  // that actually changed since the cached copy.
  {
    obs::trace::Span phase = obs::trace::span("state_fetch", "bridge");
    std::vector<Future> state_replies;
    state_replies.reserve(involved.size());
    for (int i : involved) {
      state_replies.push_back(
          systems_[i].dynamics->request_state(state_field::coupling));
    }
    for (std::size_t k = 0; k < involved.size(); ++k) {
      systems_[involved[k]].dynamics->merge_state(state_replies[k],
                                                  state_field::coupling);
    }
  }

  // Phase 2 — every cross-gravity query in flight together, ordered by
  // target system. Sources and evaluation points ride along only when
  // their content id changed; an unchanged pair is answered from the
  // coupler's cache without recompute.
  obs::trace::Span queries_phase = obs::trace::span("field_queries", "bridge");
  std::vector<PendingQuery> queries;
  for (int target : involved) {
    for (int c : active) {
      const Coupling& coupling = couplings_[c];
      if (coupling.a != target && coupling.b != target) continue;
      int dir = coupling.a == target ? 0 : 1;
      int source = coupling.a == target ? coupling.b : coupling.a;
      DynamicsClient& src = *systems_[source].dynamics;
      DynamicsClient& tgt = *systems_[target].dynamics;
      PendingQuery query{
          c, dir, target, source,
          coupling.field->accel_for_async(
              pair_field_tag(c, dir), src.coupling_sources_id(), src.mass(),
              src.position(), tgt.position_id(), tgt.position())};
      queries.push_back(std::move(query));
    }
  }

  // Collect each target's accelerations (finish in issue order), then
  // phase 3 — all kicks applied concurrently as accel + dt frames (an
  // unchanged acceleration travels as a 16-byte repeat).
  std::vector<Future> kicks_done;
  std::vector<KickSum> kicks(systems_.size());
  for (int target : involved) {
    KickSum& kick = kicks[static_cast<std::size_t>(target)];
    for (PendingQuery& query : queries) {
      if (query.target != target) continue;
      const Coupling& coupling = couplings_[query.coupling];
      const std::vector<Vec3>& accel = coupling.field->finish_accel(
          pair_field_tag(query.coupling, query.dir), query.reply);
      kick.add(accel, coupling.every * config_.dt / 2.0,
               systems_[target].name);
      trace_.push_back("kick:" + systems_[query.source].name + "->" +
                       systems_[target].name);
    }
    if (kick.empty()) continue;
    kicks_done.push_back(
        systems_[target].dynamics->kick_async(kick.accel(), kick.dt()));
  }
  queries_phase.end();
  obs::trace::Span kicks_phase = obs::trace::span("kicks", "bridge");
  for (Future& done : kicks_done) done.get();
}

void Bridge::cross_kick_synchronous(const std::vector<int>& active) {
  // The pre-overhaul data path, kept as the measured baseline: full state
  // fetches and strictly serial RPCs (one WAN round trip per call).
  std::vector<int> involved;
  for (int i = 0; i < static_cast<int>(systems_.size()); ++i) {
    for (int c : active) {
      if (couplings_[c].a == i || couplings_[c].b == i) {
        involved.push_back(i);
        break;
      }
    }
  }
  for (int i : involved) {
    DynamicsClient& sys = *systems_[i].dynamics;
    Future reply = sys.request_state(sys.full_mask());
    sys.merge_state(reply, sys.full_mask());
  }

  // One serial field query per coupling direction, ordered by target.
  std::vector<KickSum> kicks(systems_.size());
  for (int target : involved) {
    for (int c : active) {
      const Coupling& coupling = couplings_[c];
      if (coupling.a != target && coupling.b != target) continue;
      int source = coupling.a == target ? coupling.b : coupling.a;
      DynamicsClient& src = *systems_[source].dynamics;
      DynamicsClient& tgt = *systems_[target].dynamics;
      coupling.field->set_sources(src.mass(), src.position());
      kicks[static_cast<std::size_t>(target)].add_owned(
          coupling.field->accel_at(tgt.position()),
          coupling.every * config_.dt / 2.0, systems_[target].name);
      trace_.push_back("kick:" + systems_[source].name + "->" +
                       systems_[target].name);
    }
  }
  for (int target : involved) {
    KickSum& kick = kicks[static_cast<std::size_t>(target)];
    if (kick.empty()) continue;
    systems_[target].dynamics->kick_async(kick.accel(), kick.dt()).get();
  }
}

void Bridge::step() {
  double dt = config_.dt;
  int step_index = config_.step_offset + steps_;

  faultpoint::reach(faultpoint::Point::step_top_kick, step_index);
  std::vector<int> top = active_couplings(step_index, /*bottom=*/false);
  if (!top.empty()) {
    obs::trace::Span phase = obs::trace::span("cross_kick:top", "bridge");
    cross_kick(top);
  }

  // Parallel evolve: all systems advance concurrently; total wall time is
  // max over the systems' evolves + messaging — the Jungle payoff.
  faultpoint::reach(faultpoint::Point::step_evolve, step_index);
  {
    obs::trace::Span phase = obs::trace::span("evolve", "bridge");
    std::vector<Future> evolving;
    evolving.reserve(systems_.size());
    for (System& system : systems_) {
      evolving.push_back(system.dynamics->evolve_async(time_ + dt));
    }
    trace_.push_back("evolve:parallel");
    for (Future& future : evolving) future.get();
  }

  faultpoint::reach(faultpoint::Point::step_bottom_kick, step_index);
  std::vector<int> bottom = active_couplings(step_index, /*bottom=*/true);
  if (!bottom.empty()) {
    obs::trace::Span phase = obs::trace::span("cross_kick:bottom", "bridge");
    cross_kick(bottom);
  }

  time_ += dt;
  ++steps_;

  if (!stellar_.empty() &&
      (config_.step_offset + steps_) % config_.se_every == 0) {
    faultpoint::reach(faultpoint::Point::step_stellar, step_index);
    obs::trace::Span phase = obs::trace::span("stellar_update", "bridge");
    stellar_update();
  }
}

std::pair<std::vector<double>, std::vector<double>> Bridge::se_mapping(
    std::size_t link) const {
  if (link >= stellar_.size()) return {};
  return {stellar_[link].zams_se, stellar_[link].zams_dynamical};
}

void Bridge::set_se_mapping(std::vector<double> zams_se,
                            std::vector<double> zams_dynamical,
                            std::size_t link) {
  if (link >= stellar_.size()) {
    throw CodeError("bridge: no stellar link " + std::to_string(link));
  }
  stellar_[link].zams_se = std::move(zams_se);
  stellar_[link].zams_dynamical = std::move(zams_dynamical);
}

void Bridge::stellar_update() {
  for (StellarLink& link : stellar_) stellar_update_one(link);
}

void Bridge::stellar_update_one(StellarLink& link) {
  // Stellar evolution runs at a slower rate, "only exchanging state every
  // n-th time step" (paper §6 / Fig 7).
  GravityClient& stars = *link.wiring.into;
  double age_myr = (config_.t_offset + time_) * config_.myr_per_nbody_time;
  link.wiring.client->evolve_to(age_myr);
  trace_.push_back("se:evolve");

  // Mass update channel: SSE masses (MSun) -> gravity code. The masses
  // must be rescaled into N-body units: the SSE side provides masses in
  // MSun, and the gravity code started from the same stars, so the ratio
  // current/zams per star is applied to the dynamical masses. The fetch is
  // delta-compressed: only stars whose mass changed since the previous
  // exchange travel.
  const std::vector<double>& se_masses = link.wiring.client->masses();
  // The baseline path fetches full states here, as before the overhaul; the
  // pipelined path only moves what the update consumes (mass + position).
  std::uint64_t grav_mask = config_.synchronous_datapath
                                ? state_field::gravity_all
                                : state_field::coupling;
  Future stars_reply = stars.request_state(grav_mask);
  const GravityState& stars_state = stars.finish_state(stars_reply, grav_mask);
  if (se_masses.size() != stars_state.mass.size()) {
    throw CodeError("bridge: SE and gravity particle counts differ");
  }
  if (!link.zams_dynamical.size()) {
    // First update: remember the mapping MSun <-> N-body mass.
    link.zams_se = se_masses;
    link.zams_dynamical = stars_state.mass;
  }
  std::vector<double> new_masses(se_masses.size());
  double wind_mass_nbody = 0.0;
  for (std::size_t i = 0; i < se_masses.size(); ++i) {
    new_masses[i] = link.zams_dynamical[i] * se_masses[i] / link.zams_se[i];
    wind_mass_nbody += std::max(0.0, stars_state.mass[i] - new_masses[i]);
  }
  if (config_.synchronous_datapath) {
    stars.set_masses(new_masses);
  } else {
    // Delta-compressed mass channel: ship only the masses that differ from
    // what the integrator holds. The (possibly empty) sparse update always
    // travels so the worker keeps the full channel's force-refresh side
    // effect — quiet SE steps cost a header, not the whole array.
    std::vector<std::int32_t> changed;
    std::vector<double> values;
    for (std::size_t i = 0; i < new_masses.size(); ++i) {
      if (new_masses[i] != stars_state.mass[i]) {
        changed.push_back(static_cast<std::int32_t>(i));
        values.push_back(new_masses[i]);
      }
    }
    stars.set_masses_sparse(changed, values);
  }
  trace_.push_back("se:masses->gravity");

  if (config_.feedback_efficiency <= 0.0) return;
  if (link.wiring.feedback == nullptr) return;
  HydroClient& gas = *link.wiring.feedback;

  // Thermal feedback into the gas: winds (continuous) and supernovae
  // (discrete). Energy goes to the gas particle nearest each massive star.
  std::uint64_t gas_mask = config_.synchronous_datapath
                               ? state_field::hydro_all
                               : state_field::coupling;
  Future gas_reply = gas.request_state(gas_mask);
  const HydroState& gas_state = gas.finish_state(gas_reply, gas_mask);
  std::vector<std::int32_t> indices;
  std::vector<double> delta_u;
  auto nearest_gas = [&](const Vec3& where) {
    std::size_t best = 0;
    double best_r2 = std::numeric_limits<double>::max();
    for (std::size_t g = 0; g < gas_state.position.size(); ++g) {
      double r2 = (gas_state.position[g] - where).norm2();
      if (r2 < best_r2) {
        best_r2 = r2;
        best = g;
      }
    }
    return static_cast<std::int32_t>(best);
  };
  if (wind_mass_nbody > 0.0 && config_.wind_specific_energy > 0.0) {
    // Deposit wind energy at the most massive star's location (the winds
    // of the cluster's O stars dominate).
    std::size_t heaviest =
        std::distance(link.zams_se.begin(),
                      std::max_element(link.zams_se.begin(),
                                       link.zams_se.end()));
    double energy = config_.feedback_efficiency * wind_mass_nbody *
                    config_.wind_specific_energy;
    std::int32_t target = nearest_gas(stars_state.position[heaviest]);
    indices.push_back(target);
    delta_u.push_back(energy / gas_state.mass[target]);
  }
  for (std::int32_t star : link.wiring.client->supernovae()) {
    double energy = config_.feedback_efficiency * config_.supernova_energy;
    std::int32_t target = nearest_gas(stars_state.position[star]);
    indices.push_back(target);
    delta_u.push_back(energy / gas_state.mass[target]);
    log::info("amuse") << "supernova of star " << star << " at t=" << time_
                       << " heats gas particle " << target;
  }
  if (!indices.empty()) {
    gas.inject(indices, delta_u);
    trace_.push_back("se:feedback->gas");
  }
}

}  // namespace jungle::amuse
