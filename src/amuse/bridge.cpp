#include "amuse/bridge.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>

#include "util/logging.hpp"

namespace jungle::amuse {

Bridge::Bridge(GravityClient& stars, HydroClient& gas, FieldClient& coupler,
               StellarClient* stellar, Config config)
    : stars_(stars),
      gas_(gas),
      coupler_(coupler),
      stellar_(stellar),
      config_(config) {}

void Bridge::cross_kick(double dt) {
  if (config_.synchronous_datapath) {
    cross_kick_synchronous(dt);
    return;
  }

  // Phase 1 — both model states, fetched concurrently: one round trip, and
  // only the fields the coupling consumes (mass+position) that actually
  // changed since the cached copy.
  Future stars_reply = stars_.request_state(state_field::coupling);
  Future gas_reply = gas_.request_state(state_field::coupling);
  stars_.finish_state(stars_reply, state_field::coupling);
  gas_.finish_state(gas_reply, state_field::coupling);
  const GravityState& stars = stars_.cached_state();
  const HydroState& gas = gas_.cached_state();

  // Phase 2 — both cross-gravity queries in flight together. Sources and
  // evaluation points ride along only when their content id changed; an
  // unchanged pair is answered from the coupler's cache without recompute.
  Future on_stars_reply = coupler_.accel_for_async(
      FieldTag::gas_on_stars, gas_.coupling_sources_id(), gas.mass,
      gas.position, stars_.position_id(), stars.position);
  Future on_gas_reply = coupler_.accel_for_async(
      FieldTag::stars_on_gas, stars_.coupling_sources_id(), stars.mass,
      stars.position, gas_.position_id(), gas.position);

  const std::vector<Vec3>& accel_on_stars =
      coupler_.finish_accel(FieldTag::gas_on_stars, on_stars_reply);
  std::vector<Vec3> star_kicks(accel_on_stars.size());
  for (std::size_t i = 0; i < star_kicks.size(); ++i) {
    star_kicks[i] = accel_on_stars[i] * dt;
  }
  trace_.push_back("kick:gas->stars");

  const std::vector<Vec3>& accel_on_gas =
      coupler_.finish_accel(FieldTag::stars_on_gas, on_gas_reply);
  std::vector<Vec3> gas_kicks(accel_on_gas.size());
  for (std::size_t i = 0; i < gas_kicks.size(); ++i) {
    gas_kicks[i] = accel_on_gas[i] * dt;
  }
  trace_.push_back("kick:stars->gas");

  // Phase 3 — both kicks applied concurrently (an identical repeat of the
  // previous half-kick travels as an 8-byte frame).
  Future star_kick_done = stars_.kick_async(star_kicks);
  Future gas_kick_done = gas_.kick_async(gas_kicks);
  star_kick_done.get();
  gas_kick_done.get();
}

void Bridge::cross_kick_synchronous(double dt) {
  // The pre-overhaul data path, kept as the measured baseline: full state
  // fetches and strictly serial RPCs (four WAN round trips per phase).
  GravityState stars = stars_.get_state();
  HydroState gas = gas_.get_state();

  // Gas pulls on stars ('p-kick' of the stars, Fig 7).
  coupler_.set_sources(gas.mass, gas.position);
  auto accel_on_stars = coupler_.accel_at(stars.position);
  std::vector<Vec3> star_kicks(accel_on_stars.size());
  for (std::size_t i = 0; i < star_kicks.size(); ++i) {
    star_kicks[i] = accel_on_stars[i] * dt;
  }
  trace_.push_back("kick:gas->stars");

  // Stars pull on gas.
  coupler_.set_sources(stars.mass, stars.position);
  auto accel_on_gas = coupler_.accel_at(gas.position);
  std::vector<Vec3> gas_kicks(accel_on_gas.size());
  for (std::size_t i = 0; i < gas_kicks.size(); ++i) {
    gas_kicks[i] = accel_on_gas[i] * dt;
  }
  trace_.push_back("kick:stars->gas");

  stars_.kick(star_kicks);
  gas_.kick(gas_kicks);
}

void Bridge::step() {
  double dt = config_.dt;
  cross_kick(dt / 2.0);

  // Parallel evolve: both models advance concurrently; total wall time is
  // max(evolve_stars, evolve_gas) + messaging — the Jungle payoff.
  Future stars_future = stars_.evolve_async(time_ + dt);
  Future gas_future = gas_.evolve_async(time_ + dt);
  trace_.push_back("evolve:parallel");
  stars_future.get();
  gas_future.get();

  cross_kick(dt / 2.0);

  time_ += dt;
  ++steps_;

  if (stellar_ != nullptr &&
      (config_.step_offset + steps_) % config_.se_every == 0) {
    stellar_update();
  }
}

void Bridge::stellar_update() {
  // Stellar evolution runs at a slower rate, "only exchanging state every
  // n-th time step" (paper §6 / Fig 7).
  double age_myr = (config_.t_offset + time_) * config_.myr_per_nbody_time;
  stellar_->evolve_to(age_myr);
  trace_.push_back("se:evolve");

  // Mass update channel: SSE masses (MSun) -> gravity code. The masses
  // must be rescaled into N-body units: the caller provides SSE masses in
  // MSun, and the gravity code started from the same stars, so the ratio
  // current/zams per star is applied to the dynamical masses.
  auto se_masses = stellar_->masses();
  // The baseline path fetches full states here, as before the overhaul; the
  // pipelined path only moves what the update consumes (mass + position).
  std::uint64_t grav_mask = config_.synchronous_datapath
                                ? state_field::gravity_all
                                : state_field::coupling;
  Future stars_reply = stars_.request_state(grav_mask);
  const GravityState& stars_state = stars_.finish_state(stars_reply, grav_mask);
  if (se_masses.size() != stars_state.mass.size()) {
    throw CodeError("bridge: SE and gravity particle counts differ");
  }
  if (!zams_dynamical_.size()) {
    // First update: remember the mapping MSun <-> N-body mass.
    zams_se_ = se_masses;
    zams_dynamical_ = stars_state.mass;
  }
  std::vector<double> new_masses(se_masses.size());
  double wind_mass_nbody = 0.0;
  for (std::size_t i = 0; i < se_masses.size(); ++i) {
    new_masses[i] = zams_dynamical_[i] * se_masses[i] / zams_se_[i];
    wind_mass_nbody += std::max(0.0, stars_state.mass[i] - new_masses[i]);
  }
  stars_.set_masses(new_masses);
  trace_.push_back("se:masses->gravity");

  if (config_.feedback_efficiency <= 0.0) return;

  // Thermal feedback into the gas: winds (continuous) and supernovae
  // (discrete). Energy goes to the gas particle nearest each massive star.
  std::uint64_t gas_mask = config_.synchronous_datapath
                               ? state_field::hydro_all
                               : state_field::coupling;
  Future gas_reply = gas_.request_state(gas_mask);
  const HydroState& gas_state = gas_.finish_state(gas_reply, gas_mask);
  std::vector<std::int32_t> indices;
  std::vector<double> delta_u;
  auto nearest_gas = [&](const Vec3& where) {
    std::size_t best = 0;
    double best_r2 = std::numeric_limits<double>::max();
    for (std::size_t g = 0; g < gas_state.position.size(); ++g) {
      double r2 = (gas_state.position[g] - where).norm2();
      if (r2 < best_r2) {
        best_r2 = r2;
        best = g;
      }
    }
    return static_cast<std::int32_t>(best);
  };
  if (wind_mass_nbody > 0.0 && config_.wind_specific_energy > 0.0) {
    // Deposit wind energy at the most massive star's location (the winds
    // of the cluster's O stars dominate).
    std::size_t heaviest = std::distance(
        zams_se_.begin(), std::max_element(zams_se_.begin(), zams_se_.end()));
    double energy = config_.feedback_efficiency * wind_mass_nbody *
                    config_.wind_specific_energy;
    std::int32_t target = nearest_gas(stars_state.position[heaviest]);
    indices.push_back(target);
    delta_u.push_back(energy / gas_state.mass[target]);
  }
  for (std::int32_t star : stellar_->supernovae()) {
    double energy = config_.feedback_efficiency * config_.supernova_energy;
    std::int32_t target = nearest_gas(stars_state.position[star]);
    indices.push_back(target);
    delta_u.push_back(energy / gas_state.mass[target]);
    log::info("amuse") << "supernova of star " << star << " at t=" << time_
                       << " heats gas particle " << target;
  }
  if (!indices.empty()) {
    gas_.inject(indices, delta_u);
    trace_.push_back("se:feedback->gas");
  }
}

}  // namespace jungle::amuse
