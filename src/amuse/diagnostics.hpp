#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kernels/vec3.hpp"

namespace jungle::amuse::diagnostics {

using kernels::Vec3;

/// Per-iteration observability record, assembled by the experiment runner
/// from metrics-registry and network-traffic deltas at each bridge-step
/// boundary: what one step cost, and whether it re-executed work that a
/// rollback threw away.
struct IterationReport {
  int iteration = 0;             // 1-based bridge step this row describes
  double seconds = 0.0;          // virtual seconds the step took
  double wan_bytes = 0.0;        // WAN bytes the step moved (all classes)
  double flops = 0.0;            // kernel flops charged across all workers
  double compute_seconds = 0.0;  // modeled kernel compute time, summed
  std::uint64_t substeps = 0;    // integrator substeps, summed
  std::uint64_t rpc_calls = 0;   // client->worker calls issued
  std::uint64_t rpc_retries = 0;  // idempotent resends within the step
  bool degraded = false;  // a bulk transfer ran on fewer streams than planned
  bool replay = false;           // step re-run after a rollback
  int restarts = 0;              // fault recoveries charged to this step
};

/// Human-readable table of the per-iteration log (dashboard panel).
/// Replayed steps are marked so recovery work is visible at a glance.
std::string iteration_table(std::span<const IterationReport> log);

/// The same log as a JSON array (machine-readable diagnostics dump).
std::string iteration_json(std::span<const IterationReport> log);

/// Mass-weighted centre of mass.
Vec3 centre_of_mass(std::span<const double> mass, std::span<const Vec3> pos);

/// Radii containing the given mass fractions, about the centre of mass —
/// the standard way to quantify the cluster expansion visible in Fig 6.
std::vector<double> lagrangian_radii(std::span<const double> mass,
                                     std::span<const Vec3> pos,
                                     std::span<const double> fractions);

/// Fraction of the gas mass that is gravitationally bound to the combined
/// (stars + gas) system: 0.5 v^2 + u + phi < 0, with phi from a BH tree
/// over everything. This is the Fig-6 observable: it starts near 1 and
/// falls as feedback drives the gas out.
double bound_gas_fraction(std::span<const double> gas_mass,
                          std::span<const Vec3> gas_pos,
                          std::span<const Vec3> gas_vel,
                          std::span<const double> gas_u,
                          std::span<const double> star_mass,
                          std::span<const Vec3> star_pos, double eps2 = 1e-4);

/// Virial ratio -2T/W of a self-gravitating set (1 = equilibrium).
double virial_ratio(std::span<const double> mass, std::span<const Vec3> pos,
                    std::span<const Vec3> vel, double eps2 = 1e-4);

}  // namespace jungle::amuse::diagnostics
