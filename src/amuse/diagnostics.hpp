#pragma once

#include <span>
#include <vector>

#include "kernels/vec3.hpp"

namespace jungle::amuse::diagnostics {

using kernels::Vec3;

/// Mass-weighted centre of mass.
Vec3 centre_of_mass(std::span<const double> mass, std::span<const Vec3> pos);

/// Radii containing the given mass fractions, about the centre of mass —
/// the standard way to quantify the cluster expansion visible in Fig 6.
std::vector<double> lagrangian_radii(std::span<const double> mass,
                                     std::span<const Vec3> pos,
                                     std::span<const double> fractions);

/// Fraction of the gas mass that is gravitationally bound to the combined
/// (stars + gas) system: 0.5 v^2 + u + phi < 0, with phi from a BH tree
/// over everything. This is the Fig-6 observable: it starts near 1 and
/// falls as feedback drives the gas out.
double bound_gas_fraction(std::span<const double> gas_mass,
                          std::span<const Vec3> gas_pos,
                          std::span<const Vec3> gas_vel,
                          std::span<const double> gas_u,
                          std::span<const double> star_mass,
                          std::span<const Vec3> star_pos, double eps2 = 1e-4);

/// Virial ratio -2T/W of a self-gravitating set (1 = equilibrium).
double virial_ratio(std::span<const double> mass, std::span<const Vec3> pos,
                    std::span<const Vec3> vel, double eps2 = 1e-4);

}  // namespace jungle::amuse::diagnostics
