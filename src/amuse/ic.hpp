#pragma once

#include <vector>

#include "kernels/vec3.hpp"
#include "util/rng.hpp"

namespace jungle::amuse::ic {

using kernels::Vec3;

/// Initial-condition generators (AMUSE ships these as part of "generating
/// initial conditions", paper §4.1). All output is in standard N-body
/// units: total mass 1, virial radius 1, G 1, virial equilibrium.

struct NBodyModel {
  std::vector<double> mass;
  std::vector<Vec3> position;
  std::vector<Vec3> velocity;
};

/// Plummer sphere (Aarseth, Henon & Wielen 1974 sampling), equal masses.
NBodyModel plummer_sphere(std::size_t n, util::Rng& rng);

/// Salpeter IMF: dN/dm ~ m^-2.35 on [min_mass, max_mass] (MSun). Returned
/// masses are in MSun (not N-body units).
std::vector<double> salpeter_masses(std::size_t n, util::Rng& rng,
                                    double min_mass = 0.3,
                                    double max_mass = 25.0);

struct GasModel {
  std::vector<double> mass;
  std::vector<Vec3> position;
  std::vector<Vec3> velocity;
  std::vector<double> internal_energy;
};

/// Homogeneous gas sphere at rest: `total_mass` (N-body units) spread over
/// `n` particles inside `radius`, with internal energy a fraction `u_frac`
/// of |binding energy|/mass — the embedded cluster's natal cloud.
GasModel gas_sphere(std::size_t n, util::Rng& rng, double total_mass,
                    double radius, double u_frac = 0.05);

/// Recentre to the centre of mass (positions and velocities).
void centre(NBodyModel& model);

}  // namespace jungle::amuse::ic
