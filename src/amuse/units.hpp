#pragma once

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace jungle::amuse {

/// Exponents of the seven SI base dimensions (m, kg, s, A, K, mol, cd).
using Dimensions = std::array<std::int8_t, 7>;

/// A physical unit: a scale factor to SI plus a dimension vector. AMUSE's
/// hallmark is *checked* unit handling — "with the large number of units
/// used in astronomy, checked conversion of all these units is a
/// requirement for combining different models" (paper §4.1). All checks are
/// at runtime; incompatible operations throw UnitError.
struct Unit {
  double si_factor = 1.0;
  Dimensions dims{};
  std::string symbol;

  bool same_dimensions(const Unit& other) const noexcept {
    return dims == other.dims;
  }

  Unit operator*(const Unit& other) const;
  Unit operator/(const Unit& other) const;
  Unit pow(int exponent) const;
};

/// A value tagged with its unit.
class Quantity {
 public:
  Quantity() = default;
  Quantity(double value, Unit unit) : value_(value), unit_(std::move(unit)) {}

  double raw() const noexcept { return value_; }
  const Unit& unit() const noexcept { return unit_; }

  /// Convert to `target` units; throws UnitError on dimension mismatch.
  double value_in(const Unit& target) const;

  Quantity operator+(const Quantity& other) const;
  Quantity operator-(const Quantity& other) const;
  Quantity operator*(const Quantity& other) const;
  Quantity operator/(const Quantity& other) const;
  Quantity operator*(double scalar) const {
    return Quantity(value_ * scalar, unit_);
  }
  Quantity operator/(double scalar) const {
    return Quantity(value_ / scalar, unit_);
  }
  Quantity operator-() const { return Quantity(-value_, unit_); }

  bool operator<(const Quantity& other) const {
    return value_in(other.unit()) < other.raw();
  }
  bool operator>(const Quantity& other) const { return other < *this; }

  /// sqrt of the quantity (dimensions must have even exponents).
  Quantity sqrt() const;

 private:
  double value_ = 0.0;
  Unit unit_;
};

inline Quantity operator*(double scalar, const Quantity& quantity) {
  return quantity * scalar;
}

/// The unit vocabulary the examples and kernels need.
namespace units {
extern const Unit none;
extern const Unit m;
extern const Unit kg;
extern const Unit s;
extern const Unit km;
extern const Unit au;
extern const Unit parsec;
extern const Unit msun;
extern const Unit yr;
extern const Unit myr;
extern const Unit kms;      // km/s
extern const Unit j;        // joule
extern const Unit erg;
extern const Unit g_cgs;    // gram
extern const Unit lsun;     // solar luminosity (J/s)
extern const Unit rsun;     // solar radius
extern const Unit kelvin;
/// Newton's constant as a Quantity (m^3 kg^-1 s^-2).
Quantity G();
}  // namespace units

/// Conversion between dimensionless N-body units (G = 1) and SI — AMUSE's
/// `nbody_system.nbody_to_si`. Fixing a mass and a length scale determines
/// the time scale: T = sqrt(L^3 / (G M)).
class NBodyConverter {
 public:
  NBodyConverter(Quantity mass_scale, Quantity length_scale);

  /// N-body value of a dimensional quantity.
  double to_nbody(const Quantity& quantity) const;
  /// Quantity (in `unit`) from an N-body value with the dims of `unit`.
  Quantity to_si(double nbody_value, const Unit& unit) const;

  Quantity mass_scale() const { return mass_; }
  Quantity length_scale() const { return length_; }
  Quantity time_scale() const { return time_; }
  Quantity speed_scale() const;
  Quantity energy_scale() const;

 private:
  double scale_for(const Dimensions& dims) const;

  Quantity mass_;
  Quantity length_;
  Quantity time_;
};

}  // namespace jungle::amuse
