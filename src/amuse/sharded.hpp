#pragma once

#include <memory>
#include <vector>

#include "amuse/clients.hpp"

namespace jungle::amuse {

/// Domain-decomposed gravity model: K phiGRAPE shard workers presented as
/// ONE logical GravityClient. Every shard holds all N particles (Morton-
/// ordered by the runner) but integrates only its contiguous owned row
/// range; before each evolve the facade pulls every shard's owned
/// position/velocity slice (delta exchange), merges them into the full-size
/// cached state, and pushes each shard the rows it does *not* own as two
/// contiguous ghost frames. Couplings, checkpoint/rollback, energy probes
/// and the fault machinery all see a single model: the facade slices kicks,
/// concatenates dynamics, broadcasts restores, and reports the first dead
/// shard's RPC as the model's fault channel.
///
/// With K = 1 the single shard owns [0, N): no ghost frames travel and the
/// worker takes the exact unsharded code path, so a 1-shard model is
/// bit-identical to a plain worker (the shard-count-independence anchor).
class ShardedGravityClient : public GravityClient {
 public:
  explicit ShardedGravityClient(
      std::vector<std::unique_ptr<GravityClient>> shards);
  ~ShardedGravityClient() override;

  int shard_count() const noexcept { return static_cast<int>(subs_.size()); }
  GravityClient& shard(int k) { return *subs_.at(static_cast<std::size_t>(k)); }

  void set_params(double eps2, double eta) override;
  /// Prime every shard: reset, load the full (Morton-ordered) arrays, and
  /// assign its owned range. Also the restore path — a revived blank worker
  /// treats the reset as a no-op and the survivors roll back with it.
  void add_particles(std::span<const double> masses,
                     std::span<const Vec3> positions,
                     std::span<const Vec3> velocities) override;

  /// Ghost-exchange + fan-out evolve. Returns shard 0's future; the other
  /// shards' futures drain at the next operation (per-connection FIFO
  /// already orders each shard's ghost frames before its evolve).
  Future evolve_async(double t_end) override;

  Future request_state(std::uint64_t want_mask) override;
  const GravityState& finish_state(Future& reply,
                                   std::uint64_t want_mask) override;

  StateId coupling_sources_id() const override;
  StateId position_id() const override;

  /// Full-system energies: refresh shard 0's ghosts with every owned slice,
  /// then one O(N^2) probe there.
  std::pair<double, double> energies() override;
  Future kick_async(std::span<const Vec3> accel, double dt) override;
  using GravityClient::kick_async;
  void set_masses(std::span<const double> masses) override;
  void set_masses_sparse(std::span<const std::int32_t> indices,
                         std::span<const double> masses) override;
  double model_time() override;
  void get_dynamics(std::vector<Vec3>& acc, std::vector<Vec3>& jerk,
                    double& model_time) override;
  void set_dynamics(std::span<const Vec3> acc, std::span<const Vec3> jerk,
                    double model_time) override;

  void set_fp32_positions(bool enabled) override;
  void set_delta_exchange(bool enabled) override;
  void reset_delta_caches() override;
  RpcClient& rpc() noexcept override;
  RpcClient& fault_rpc() override;
  void close() override;

 private:
  /// Block on every stashed future (evolves/kicks/ghost pushes of shards
  /// other than the one whose future was handed to the caller). The first
  /// error is rethrown after all are drained, so one dead shard cannot leave
  /// siblings' futures dangling.
  void drain_pending();
  /// Pull each shard's owned position/velocity slice into the merged cache,
  /// then push every shard its ghost rows as two contiguous frames.
  void exchange_ghosts();
  void pull_owned(std::uint64_t want_mask);

  std::vector<std::unique_ptr<GravityClient>> subs_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;
  std::vector<Future> pending_;
  std::vector<Future> pending_state_;  // shards 1.. of an open request_state
};

}  // namespace jungle::amuse
