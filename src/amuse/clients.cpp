#include "amuse/clients.hpp"

namespace jungle::amuse {

namespace {
template <typename T>
void put_span_of(util::ByteWriter& writer, std::span<const T> values) {
  writer.put_span(values);
}
}  // namespace

void GravityClient::set_params(double eps2, double eta) {
  util::ByteWriter args;
  args.put<double>(eps2);
  args.put<double>(eta);
  rpc_->call_sync(Fn::grav_set_params, std::move(args));
}

void GravityClient::add_particles(std::span<const double> masses,
                                  std::span<const Vec3> positions,
                                  std::span<const Vec3> velocities) {
  util::ByteWriter args;
  put_span_of(args, masses);
  put_span_of(args, positions);
  put_span_of(args, velocities);
  rpc_->call_sync(Fn::grav_add_particles, std::move(args));
}

Future GravityClient::evolve_async(double t_end) {
  util::ByteWriter args;
  args.put<double>(t_end);
  return rpc_->call(Fn::grav_evolve, std::move(args));
}

GravityState GravityClient::get_state() {
  auto reader = rpc_->call_sync(Fn::grav_get_state, {});
  GravityState state;
  state.mass = reader.get_vector<double>();
  state.position = reader.get_vector<Vec3>();
  state.velocity = reader.get_vector<Vec3>();
  return state;
}

std::pair<double, double> GravityClient::energies() {
  auto reader = rpc_->call_sync(Fn::grav_get_energies, {});
  double kinetic = reader.get<double>();
  double potential = reader.get<double>();
  return {kinetic, potential};
}

void GravityClient::kick(std::span<const Vec3> delta_v) {
  util::ByteWriter args;
  put_span_of(args, delta_v);
  rpc_->call_sync(Fn::grav_kick_all, std::move(args));
}

void GravityClient::set_masses(std::span<const double> masses) {
  util::ByteWriter args;
  put_span_of(args, masses);
  rpc_->call_sync(Fn::grav_set_masses, std::move(args));
}

double GravityClient::model_time() {
  return rpc_->call_sync(Fn::grav_get_time, {}).get<double>();
}

void FieldClient::set_sources(std::span<const double> masses,
                              std::span<const Vec3> positions) {
  util::ByteWriter args;
  put_span_of(args, masses);
  put_span_of(args, positions);
  last_mass_.assign(masses.begin(), masses.end());
  last_position_.assign(positions.begin(), positions.end());
  rpc_->call_sync(Fn::field_set_sources, std::move(args));
}

Future FieldClient::accel_at_async(std::span<const Vec3> points) {
  util::ByteWriter args;
  put_span_of(args, points);
  return rpc_->call(Fn::field_accel_at, std::move(args));
}

std::vector<Vec3> FieldClient::decode_accel(util::ByteReader reader) {
  return reader.get_vector<Vec3>();
}

void HydroClient::set_params(double eps2, double theta) {
  util::ByteWriter args;
  args.put<double>(eps2);
  args.put<double>(theta);
  rpc_->call_sync(Fn::hydro_set_params, std::move(args));
}

void HydroClient::add_gas(std::span<const double> masses,
                          std::span<const Vec3> positions,
                          std::span<const Vec3> velocities,
                          std::span<const double> internal_energies) {
  util::ByteWriter args;
  put_span_of(args, masses);
  put_span_of(args, positions);
  put_span_of(args, velocities);
  put_span_of(args, internal_energies);
  rpc_->call_sync(Fn::hydro_add_gas, std::move(args));
}

Future HydroClient::evolve_async(double t_end) {
  util::ByteWriter args;
  args.put<double>(t_end);
  return rpc_->call(Fn::hydro_evolve, std::move(args));
}

HydroState HydroClient::get_state() {
  auto reader = rpc_->call_sync(Fn::hydro_get_state, {});
  HydroState state;
  state.mass = reader.get_vector<double>();
  state.position = reader.get_vector<Vec3>();
  state.velocity = reader.get_vector<Vec3>();
  state.internal_energy = reader.get_vector<double>();
  state.density = reader.get_vector<double>();
  return state;
}

std::tuple<double, double, double> HydroClient::energies() {
  auto reader = rpc_->call_sync(Fn::hydro_get_energies, {});
  double kinetic = reader.get<double>();
  double thermal = reader.get<double>();
  double potential = reader.get<double>();
  return {kinetic, thermal, potential};
}

void HydroClient::kick(std::span<const Vec3> delta_v) {
  util::ByteWriter args;
  put_span_of(args, delta_v);
  rpc_->call_sync(Fn::hydro_kick_all, std::move(args));
}

void HydroClient::inject(std::span<const std::int32_t> indices,
                         std::span<const double> delta_u) {
  util::ByteWriter args;
  put_span_of(args, indices);
  put_span_of(args, delta_u);
  rpc_->call_sync(Fn::hydro_inject, std::move(args));
}

double HydroClient::model_time() {
  return rpc_->call_sync(Fn::hydro_get_time, {}).get<double>();
}

void StellarClient::add_stars(std::span<const double> zams_masses) {
  util::ByteWriter args;
  put_span_of(args, zams_masses);
  rpc_->call_sync(Fn::se_add_stars, std::move(args));
}

void StellarClient::evolve_to(double age_myr) {
  util::ByteWriter args;
  args.put<double>(age_myr);
  rpc_->call_sync(Fn::se_evolve_to, std::move(args));
}

std::vector<double> StellarClient::masses() {
  return rpc_->call_sync(Fn::se_get_masses, {}).get_vector<double>();
}

std::vector<double> StellarClient::luminosities() {
  return rpc_->call_sync(Fn::se_get_luminosities, {}).get_vector<double>();
}

std::vector<std::int32_t> StellarClient::supernovae() {
  return rpc_->call_sync(Fn::se_get_supernovae, {})
      .get_vector<std::int32_t>();
}

double StellarClient::mass_loss() {
  return rpc_->call_sync(Fn::se_get_mass_loss, {}).get<double>();
}

}  // namespace jungle::amuse
