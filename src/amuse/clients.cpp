#include "amuse/clients.hpp"

#include <cstring>

namespace jungle::amuse {

namespace {

template <typename T>
void put_span_of(util::ByteWriter& writer, std::span<const T> values) {
  writer.put_span(values);
}

template <typename T>
bool same_content(const std::vector<T>& cached, std::span<const T> values) {
  return cached.size() == values.size() &&
         (values.empty() ||
          std::memcmp(cached.data(), values.data(),
                      values.size() * sizeof(T)) == 0);
}

/// One field of a delta get_state reply on the client side: where the
/// decoded span lands in the cache.
template <typename T>
void merge_field(util::ByteReader& reader, std::vector<T>& into) {
  auto values = reader.get_span<T>();
  into.assign(values.begin(), values.end());
}

/// Decode an f32-truncated position span (fp32_positions was requested) and
/// widen into the f64 cache. The worker pads odd counts to keep whatever
/// span follows 8-byte aligned; consume the pad here.
void merge_positions_fp32(util::ByteReader& reader, std::vector<Vec3>& into) {
  auto packed = reader.get_vector<float>();
  const std::size_t count = packed.size() / 3;
  into.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    into[i] = Vec3{static_cast<double>(packed[3 * i]),
                   static_cast<double>(packed[3 * i + 1]),
                   static_cast<double>(packed[3 * i + 2])};
  }
  if (count % 2 != 0) reader.get<std::uint32_t>();  // realign pad
}

/// Shared request/merge halves of the delta exchange.
util::ByteWriter state_request(const DeltaCacheInfo& info,
                               std::uint64_t want_mask) {
  util::ByteWriter args = RpcClient::request();
  args.put<StateId>(info.delta_enabled ? info.id : 0);
  args.put<std::uint64_t>(info.delta_enabled ? info.mask : 0);
  args.put<std::uint64_t>(want_mask);
  return args;
}

struct DeltaHeader {
  StateId state_id;
  std::uint64_t sent_mask;
  std::uint64_t stale_mask;
};

DeltaHeader read_delta_header(util::ByteReader& reader, DeltaCacheInfo& info) {
  DeltaHeader header;
  header.state_id = reader.get<StateId>();
  header.sent_mask = reader.get<std::uint64_t>();
  header.stale_mask = reader.get<std::uint64_t>();
  for (StateId& id : info.field_ids) id = reader.get<StateId>();
  return header;
}

void commit_delta(DeltaCacheInfo& info, const DeltaHeader& header,
                  std::uint64_t want_mask) {
  info.mask = (info.mask & ~header.stale_mask) | want_mask | header.sent_mask;
  info.id = header.state_id;
}

/// Kick with repeat-suppression: kicks travel as accel + dt (the worker
/// multiplies Δv_i = a_i * dt), so an unchanged acceleration — the first
/// half-kick after an all-cache-hit coupling phase — travels as a 16-byte
/// "repeat" frame even when the half-kick dt differs (couplings firing at
/// different cadences).
Future send_kick(RpcClient& rpc, Fn fn, std::span<const Vec3> accel,
                 double dt, bool delta_enabled, std::vector<Vec3>& last_kick,
                 bool& primed) {
  util::ByteWriter args = RpcClient::request();
  if (delta_enabled && primed && same_content(last_kick, accel)) {
    args.put<std::uint64_t>(kick_flags::repeat);
    args.put<double>(dt);
  } else {
    args.put<std::uint64_t>(0);
    args.put<double>(dt);
    args.put_span(accel);
    last_kick.assign(accel.begin(), accel.end());
    primed = true;
  }
  return rpc.call(fn, std::move(args));
}

}  // namespace

void GravityClient::set_params(double eps2, double eta) {
  util::ByteWriter args = RpcClient::request();
  args.put<double>(eps2);
  args.put<double>(eta);
  rpc_->call_sync(Fn::grav_set_params, std::move(args));
}

void GravityClient::add_particles(std::span<const double> masses,
                                  std::span<const Vec3> positions,
                                  std::span<const Vec3> velocities) {
  util::ByteWriter args = RpcClient::request();
  put_span_of(args, masses);
  put_span_of(args, positions);
  put_span_of(args, velocities);
  rpc_->call_sync(Fn::grav_add_particles, std::move(args));
}

Future GravityClient::evolve_async(double t_end) {
  util::ByteWriter args = RpcClient::request();
  args.put<double>(t_end);
  return rpc_->call(Fn::grav_evolve, std::move(args));
}

Future GravityClient::request_state(std::uint64_t want_mask) {
  // The fp32 modifier rides only on the wire request; the cache mask and
  // commit bookkeeping stay in terms of real fields.
  std::uint64_t wire_mask = want_mask;
  if (fp32_positions_ && (want_mask & state_field::position)) {
    wire_mask |= state_field::fp32_positions;
  }
  return rpc_->call(Fn::grav_get_state, state_request(info_, wire_mask));
}

const GravityState& GravityClient::finish_state(Future& reply,
                                                std::uint64_t want_mask) {
  util::ByteReader reader = reply.get();
  DeltaHeader header = read_delta_header(reader, info_);
  if (header.sent_mask & state_field::mass) merge_field(reader, cache_.mass);
  if (header.sent_mask & state_field::position) {
    if (fp32_positions_) {
      merge_positions_fp32(reader, cache_.position);
    } else {
      merge_field(reader, cache_.position);
    }
  }
  if (header.sent_mask & state_field::velocity) {
    merge_field(reader, cache_.velocity);
  }
  commit_delta(info_, header, want_mask & ~state_field::fp32_positions);
  return cache_;
}

GravityState GravityClient::get_state() {
  Future reply = request_state(state_field::gravity_all);
  return finish_state(reply, state_field::gravity_all);
}

std::pair<double, double> GravityClient::energies() {
  auto reader = rpc_->call_sync(Fn::grav_get_energies, {});
  double kinetic = reader.get<double>();
  double potential = reader.get<double>();
  return {kinetic, potential};
}

Future GravityClient::kick_async(std::span<const Vec3> accel, double dt) {
  return send_kick(*rpc_, Fn::grav_kick_all, accel, dt, info_.delta_enabled,
                   last_kick_, kick_primed_);
}

void GravityClient::set_masses(std::span<const double> masses) {
  util::ByteWriter args = RpcClient::request();
  put_span_of(args, masses);
  rpc_->call_sync(Fn::grav_set_masses, std::move(args));
}

void GravityClient::set_masses_sparse(std::span<const std::int32_t> indices,
                                      std::span<const double> masses) {
  util::ByteWriter args = RpcClient::request();
  put_span_of(args, indices);
  put_span_of(args, masses);
  rpc_->call_sync(Fn::grav_set_masses_sparse, std::move(args));
}

double GravityClient::model_time() {
  return rpc_->call_sync(Fn::grav_get_time, {}).get<double>();
}

void GravityClient::get_dynamics(std::vector<Vec3>& acc,
                                 std::vector<Vec3>& jerk,
                                 double& model_time) {
  auto reader = rpc_->call_sync(Fn::grav_get_dynamics, {});
  model_time = reader.get<double>();
  acc = reader.get_vector<Vec3>();
  jerk = reader.get_vector<Vec3>();
}

void GravityClient::set_dynamics(std::span<const Vec3> acc,
                                 std::span<const Vec3> jerk,
                                 double model_time) {
  util::ByteWriter args = RpcClient::request();
  args.put<double>(model_time);
  put_span_of(args, acc);
  put_span_of(args, jerk);
  rpc_->call_sync(Fn::grav_set_dynamics, std::move(args));
}

void GravityClient::reset_model() {
  rpc_->call_sync(Fn::grav_reset, {});
}

void GravityClient::set_shard(std::size_t lo, std::size_t hi) {
  util::ByteWriter args = RpcClient::request();
  args.put<std::uint64_t>(lo);
  args.put<std::uint64_t>(hi);
  rpc_->call_sync(Fn::grav_set_shard, std::move(args));
}

Future GravityClient::ghost_update_async(std::size_t base,
                                         std::span<const Vec3> positions,
                                         std::span<const Vec3> velocities,
                                         bool fp32) {
  util::ByteWriter args = RpcClient::request();
  args.put<std::uint64_t>(base);
  args.put<std::uint64_t>(fp32 ? 1 : 0);
  if (fp32) {
    std::vector<float> packed;
    packed.reserve(positions.size() * 3);
    for (const Vec3& p : positions) {
      packed.push_back(static_cast<float>(p.x));
      packed.push_back(static_cast<float>(p.y));
      packed.push_back(static_cast<float>(p.z));
    }
    args.put_vector(packed);
    if (positions.size() % 2 != 0) args.put<std::uint32_t>(0);  // realign
  } else {
    put_span_of(args, positions);
  }
  put_span_of(args, velocities);
  return rpc_->call(Fn::grav_ghost_update, std::move(args));
}

void FieldClient::set_sources(std::span<const double> masses,
                              std::span<const Vec3> positions) {
  util::ByteWriter args = RpcClient::request();
  put_span_of(args, masses);
  put_span_of(args, positions);
  last_mass_.assign(masses.begin(), masses.end());
  last_position_.assign(positions.begin(), positions.end());
  rpc_->call_sync(Fn::field_set_sources, std::move(args));
}

Future FieldClient::accel_at_async(std::span<const Vec3> points) {
  util::ByteWriter args = RpcClient::request();
  put_span_of(args, points);
  return rpc_->call(Fn::field_accel_at, std::move(args));
}

std::vector<Vec3> FieldClient::decode_accel(util::ByteReader reader) {
  return reader.get_vector<Vec3>();
}

Future FieldClient::accel_for_async(FieldTag tag, StateId sources_id,
                                    std::span<const double> source_mass,
                                    std::span<const Vec3> source_position,
                                    StateId points_id,
                                    std::span<const Vec3> points) {
  if (!delta_enabled_) {
    sources_id = 0;
    points_id = 0;
  }
  TagRecord& record = tags_[static_cast<std::uint64_t>(tag)];
  bool send_sources = sources_id == 0 || record.sources_id != sources_id;
  bool send_points = points_id == 0 || record.points_id != points_id;
  util::ByteWriter args = RpcClient::request();
  args.put<std::uint64_t>(static_cast<std::uint64_t>(tag));
  args.put<StateId>(sources_id);
  args.put<StateId>(points_id);
  std::uint64_t flags = (send_sources ? accel_flags::has_sources : 0) |
                        (send_points ? accel_flags::has_points : 0);
  args.put<std::uint64_t>(flags);
  if (send_sources) {
    put_span_of(args, source_mass);
    put_span_of(args, source_position);
    record.sources_id = sources_id;
    // The checkpoint view of this stateless-per-kick worker: the last
    // source set that actually travelled.
    last_mass_.assign(source_mass.begin(), source_mass.end());
    last_position_.assign(source_position.begin(), source_position.end());
  }
  if (send_points) {
    put_span_of(args, points);
    record.points_id = points_id;
  }
  return rpc_->call(Fn::field_accel_for, std::move(args));
}

const std::vector<Vec3>& FieldClient::finish_accel(FieldTag tag,
                                                   Future& reply) {
  util::ByteReader reader = reply.get();
  auto flags = reader.get<std::uint64_t>();
  TagRecord& record = tags_[static_cast<std::uint64_t>(tag)];
  if (flags & accel_reply_flags::unchanged) {
    if (!record.has_accel) {
      throw CodeError("field: unchanged reply without a cached accel");
    }
    return record.accel;
  }
  record.accel = reader.get_vector<Vec3>();
  record.has_accel = true;
  return record.accel;
}

void HydroClient::set_params(double eps2, double theta) {
  util::ByteWriter args = RpcClient::request();
  args.put<double>(eps2);
  args.put<double>(theta);
  rpc_->call_sync(Fn::hydro_set_params, std::move(args));
}

void HydroClient::add_gas(std::span<const double> masses,
                          std::span<const Vec3> positions,
                          std::span<const Vec3> velocities,
                          std::span<const double> internal_energies) {
  util::ByteWriter args = RpcClient::request();
  put_span_of(args, masses);
  put_span_of(args, positions);
  put_span_of(args, velocities);
  put_span_of(args, internal_energies);
  rpc_->call_sync(Fn::hydro_add_gas, std::move(args));
}

Future HydroClient::evolve_async(double t_end) {
  util::ByteWriter args = RpcClient::request();
  args.put<double>(t_end);
  return rpc_->call(Fn::hydro_evolve, std::move(args));
}

Future HydroClient::request_state(std::uint64_t want_mask) {
  std::uint64_t wire_mask = want_mask;
  if (fp32_positions_ && (want_mask & state_field::position)) {
    wire_mask |= state_field::fp32_positions;
  }
  return rpc_->call(Fn::hydro_get_state, state_request(info_, wire_mask));
}

const HydroState& HydroClient::finish_state(Future& reply,
                                            std::uint64_t want_mask) {
  util::ByteReader reader = reply.get();
  DeltaHeader header = read_delta_header(reader, info_);
  if (header.sent_mask & state_field::mass) merge_field(reader, cache_.mass);
  if (header.sent_mask & state_field::position) {
    if (fp32_positions_) {
      merge_positions_fp32(reader, cache_.position);
    } else {
      merge_field(reader, cache_.position);
    }
  }
  if (header.sent_mask & state_field::velocity) {
    merge_field(reader, cache_.velocity);
  }
  if (header.sent_mask & state_field::internal_energy) {
    merge_field(reader, cache_.internal_energy);
  }
  if (header.sent_mask & state_field::density) {
    merge_field(reader, cache_.density);
  }
  commit_delta(info_, header, want_mask & ~state_field::fp32_positions);
  return cache_;
}

HydroState HydroClient::get_state() {
  Future reply = request_state(state_field::hydro_all);
  return finish_state(reply, state_field::hydro_all);
}

std::tuple<double, double, double> HydroClient::energies() {
  auto reader = rpc_->call_sync(Fn::hydro_get_energies, {});
  double kinetic = reader.get<double>();
  double thermal = reader.get<double>();
  double potential = reader.get<double>();
  return {kinetic, thermal, potential};
}

Future HydroClient::kick_async(std::span<const Vec3> accel, double dt) {
  return send_kick(*rpc_, Fn::hydro_kick_all, accel, dt, info_.delta_enabled,
                   last_kick_, kick_primed_);
}

void HydroClient::inject(std::span<const std::int32_t> indices,
                         std::span<const double> delta_u) {
  util::ByteWriter args = RpcClient::request();
  put_span_of(args, indices);
  put_span_of(args, delta_u);
  rpc_->call_sync(Fn::hydro_inject, std::move(args));
}

double HydroClient::model_time() {
  return rpc_->call_sync(Fn::hydro_get_time, {}).get<double>();
}

void HydroClient::set_time(double model_time) {
  util::ByteWriter args = RpcClient::request();
  args.put<double>(model_time);
  rpc_->call_sync(Fn::hydro_set_time, std::move(args));
}

void StellarClient::add_stars(std::span<const double> zams_masses) {
  util::ByteWriter args = RpcClient::request();
  put_span_of(args, zams_masses);
  rpc_->call_sync(Fn::se_add_stars, std::move(args));
}

void StellarClient::evolve_to(double age_myr) {
  util::ByteWriter args = RpcClient::request();
  args.put<double>(age_myr);
  rpc_->call_sync(Fn::se_evolve_to, std::move(args));
}

const std::vector<double>& StellarClient::masses() {
  if (!delta_enabled_) {
    mass_cache_ = rpc_->call_sync(Fn::se_get_masses, {}).get_vector<double>();
    return mass_cache_;
  }
  // Delta exchange: tell the worker how many masses we hold; only changed
  // ones (usually the handful of evolved stars) come back.
  util::ByteWriter args = RpcClient::request();
  args.put<std::uint64_t>(mass_cache_.size());
  auto reader = rpc_->call_sync(Fn::se_get_mass_updates, std::move(args));
  auto flags = reader.get<std::uint64_t>();
  if (flags & se_mass_flags::full) {
    mass_cache_ = reader.get_vector<double>();
    return mass_cache_;
  }
  auto indices = reader.get_span<std::int32_t>();
  auto values = reader.get_vector<double>();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    mass_cache_.at(static_cast<std::size_t>(indices[i])) = values[i];
  }
  return mass_cache_;
}

std::vector<double> StellarClient::luminosities() {
  return rpc_->call_sync(Fn::se_get_luminosities, {}).get_vector<double>();
}

std::vector<std::int32_t> StellarClient::supernovae() {
  return rpc_->call_sync(Fn::se_get_supernovae, {})
      .get_vector<std::int32_t>();
}

double StellarClient::mass_loss() {
  return rpc_->call_sync(Fn::se_get_mass_loss, {}).get<double>();
}

}  // namespace jungle::amuse
