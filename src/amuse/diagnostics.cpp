#include "amuse/diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "kernels/bhtree.hpp"
#include "util/strings.hpp"

namespace jungle::amuse::diagnostics {

Vec3 centre_of_mass(std::span<const double> mass, std::span<const Vec3> pos) {
  Vec3 com{};
  double total = 0.0;
  for (std::size_t i = 0; i < mass.size(); ++i) {
    com += mass[i] * pos[i];
    total += mass[i];
  }
  if (total > 0) com *= 1.0 / total;
  return com;
}

std::vector<double> lagrangian_radii(std::span<const double> mass,
                                     std::span<const Vec3> pos,
                                     std::span<const double> fractions) {
  Vec3 com = centre_of_mass(mass, pos);
  std::vector<std::pair<double, double>> radius_mass(mass.size());
  double total = 0.0;
  for (std::size_t i = 0; i < mass.size(); ++i) {
    radius_mass[i] = {(pos[i] - com).norm(), mass[i]};
    total += mass[i];
  }
  std::sort(radius_mass.begin(), radius_mass.end());
  std::vector<double> radii;
  radii.reserve(fractions.size());
  std::size_t cursor = 0;
  double cumulative = 0.0;
  for (double fraction : fractions) {
    double target = fraction * total;
    while (cursor < radius_mass.size() && cumulative < target) {
      cumulative += radius_mass[cursor].second;
      ++cursor;
    }
    radii.push_back(cursor == 0 ? 0.0 : radius_mass[cursor - 1].first);
  }
  return radii;
}

double bound_gas_fraction(std::span<const double> gas_mass,
                          std::span<const Vec3> gas_pos,
                          std::span<const Vec3> gas_vel,
                          std::span<const double> gas_u,
                          std::span<const double> star_mass,
                          std::span<const Vec3> star_pos, double eps2) {
  // One tree over everything (stars + gas).
  std::vector<Vec3> all_pos(gas_pos.begin(), gas_pos.end());
  all_pos.insert(all_pos.end(), star_pos.begin(), star_pos.end());
  std::vector<double> all_mass(gas_mass.begin(), gas_mass.end());
  all_mass.insert(all_mass.end(), star_mass.begin(), star_mass.end());
  kernels::BarnesHutTree tree(0.6, eps2);
  tree.build(all_pos, all_mass);
  std::vector<double> potentials(gas_mass.size());
  tree.potential_at(gas_pos, potentials);

  double bound = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < gas_mass.size(); ++i) {
    double phi = potentials[i];
    // Remove rough self-contribution (softened).
    phi += gas_mass[i] / std::sqrt(eps2);
    double specific = 0.5 * gas_vel[i].norm2() + gas_u[i] + phi;
    total += gas_mass[i];
    if (specific < 0.0) bound += gas_mass[i];
  }
  return total > 0 ? bound / total : 0.0;
}

double virial_ratio(std::span<const double> mass, std::span<const Vec3> pos,
                    std::span<const Vec3> vel, double eps2) {
  double kinetic = 0.0;
  for (std::size_t i = 0; i < mass.size(); ++i) {
    kinetic += 0.5 * mass[i] * vel[i].norm2();
  }
  double potential = 0.0;
  for (std::size_t i = 0; i < mass.size(); ++i) {
    for (std::size_t j = i + 1; j < mass.size(); ++j) {
      potential -=
          mass[i] * mass[j] / std::sqrt((pos[j] - pos[i]).norm2() + eps2);
    }
  }
  return potential != 0.0 ? -2.0 * kinetic / potential : 0.0;
}

std::string iteration_table(std::span<const IterationReport> log) {
  std::ostringstream out;
  out << "-- iterations --\n";
  for (const IterationReport& row : log) {
    out << "  #" << row.iteration << ": " << row.seconds << " s, wan="
        << util::format_bytes(row.wan_bytes) << ", flops=" << row.flops
        << ", compute=" << row.compute_seconds << " s, substeps="
        << row.substeps << ", rpcs=" << row.rpc_calls;
    if (row.rpc_retries > 0) out << ", retries=" << row.rpc_retries;
    if (row.degraded) out << " [DEGRADED]";
    if (row.replay) out << " [REPLAY]";
    if (row.restarts > 0) out << " [restarts=" << row.restarts << "]";
    out << "\n";
  }
  return out.str();
}

std::string iteration_json(std::span<const IterationReport> log) {
  std::ostringstream out;
  out.precision(15);
  out << "[";
  bool first = true;
  for (const IterationReport& row : log) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"iteration\": " << row.iteration
        << ", \"seconds\": " << row.seconds
        << ", \"wan_bytes\": " << row.wan_bytes
        << ", \"flops\": " << row.flops
        << ", \"compute_seconds\": " << row.compute_seconds
        << ", \"substeps\": " << row.substeps
        << ", \"rpc_calls\": " << row.rpc_calls
        << ", \"rpc_retries\": " << row.rpc_retries
        << ", \"degraded\": " << (row.degraded ? "true" : "false")
        << ", \"replay\": " << (row.replay ? "true" : "false")
        << ", \"restarts\": " << row.restarts << "}";
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace jungle::amuse::diagnostics
