#include "amuse/daemon.hpp"

#include <algorithm>

#include "amuse/faultpoint.hpp"
#include "util/logging.hpp"

namespace jungle::amuse {

namespace {

/// Supervision policy: a dead daemon/proxy process is restarted in place up
/// to kSupervisorBudget times per supervised thing, with exponential backoff
/// starting at kSupervisorBackoff and capped at kSupervisorBackoffCap. Past
/// the budget the failure escalates to the PR 2 fault path (death notice +
/// closed connection, host excluded by the experiment's scheduler).
constexpr int kSupervisorBudget = 3;
constexpr double kSupervisorBackoff = 0.5;    // virtual seconds
constexpr double kSupervisorBackoffCap = 4.0;

double supervisor_delay(int restart_index) noexcept {
  double delay = kSupervisorBackoff;
  for (int i = 0; i < restart_index; ++i) delay *= 2.0;
  return std::min(delay, kSupervisorBackoffCap);
}

/// Serialize a WorkerSpec onto the daemon wire.
void put_spec(util::ByteWriter& writer, const WorkerSpec& spec) {
  writer.put_string(spec.code);
  writer.put<std::int32_t>(spec.nranks);
  writer.put<std::int32_t>(spec.ncores);
  writer.put<double>(spec.eps2);
  writer.put<double>(spec.eta);
  writer.put<double>(spec.theta);
  writer.put_string(spec.meter);
}

WorkerSpec get_spec(util::ByteReader& reader) {
  WorkerSpec spec;
  spec.code = reader.get_string();
  spec.nranks = reader.get<std::int32_t>();
  spec.ncores = reader.get<std::int32_t>();
  spec.eps2 = reader.get<double>();
  spec.eta = reader.get<double>();
  spec.theta = reader.get<double>();
  spec.meter = reader.get_string();
  return spec;
}

}  // namespace

// ------------------------------------------------------- local channels

std::unique_ptr<RpcClient> start_local_worker(
    smartsockets::SmartSockets& sockets, sim::Network& net, sim::Host& home,
    sim::Host& host, const WorkerSpec& spec, ChannelKind kind) {
  static std::uint64_t sequence = 0;
  std::string service = "amuse-worker-" + std::to_string(++sequence);
  auto& listener = sockets.listen(host, service);
  host.spawn("worker:" + spec.code, [&listener, &sockets, &host, &net, spec,
                                     service] {
    auto connection = listener.accept();
    sockets.unlisten(host, service);
    run_worker(std::make_unique<ConnectionPipe>(std::move(connection)), spec,
               {&host}, net);
  });
  // The "MPI" channel is the in-process default; the socket channel is a
  // plain TCP loopback. Both reduce to a connection with the matching
  // traffic class so the Fig-11 accounting distinguishes them.
  auto cls = kind == ChannelKind::mpi ? sim::TrafficClass::mpi
                                      : sim::TrafficClass::control;
  auto connection = sockets.connect(home, host, service, cls);
  return std::make_unique<RpcClient>(
      home, std::make_unique<ConnectionPipe>(std::move(connection)),
      spec.code);
}

// --------------------------------------------------------------- daemon

IbisDaemon::IbisDaemon(deploy::Deployer& deployer, sim::Network& net,
                       smartsockets::SmartSockets& sockets, sim::Host& local)
    : deployer_(deployer), net_(net), sockets_(sockets), local_(local) {
  deployer_.start_hubs();
  registry_ = std::make_unique<ipl::RegistryServer>(sockets_, local_);
  ibis_ = std::make_unique<ipl::Ibis>(sockets_, local_, "amuse-daemon",
                                      local_);
  listener_ = &sockets_.listen(local_, kService);
  accept_pid_ = local_.spawn("amuse-daemon", [this] { accept_loop(); });
  pids_.push_back(accept_pid_);
  supervise_accept_loop();
}

IbisDaemon::~IbisDaemon() {
  stopping_ = true;  // supervisors must not resurrect what we tear down
  sim::Simulation& sim = local_.simulation();
  for (sim::ProcessId pid : pids_) sim.kill(pid);
  // The served processes hold ReceivePorts that reference our Ibis
  // instance; let their kills unwind *now*, while ibis_ is still alive.
  // (Only possible outside the event loop; inside a process the kills
  // drain at the next scheduling point, before any reuse.)
  if (!sim::Simulation::in_process()) {
    sim.run_until(sim.now());
  }
  sockets_.unlisten(local_, kService);
}

void IbisDaemon::accept_loop() {
  while (true) {
    auto connection = listener_->accept();
    pids_.push_back(local_.spawn(
        "amuse-daemon-client",
        [this, connection] { serve_client(connection); }));
  }
}

void IbisDaemon::supervise_accept_loop() {
  // Event-driven supervision: wake exactly when the accept loop finishes
  // (no polling — a poll loop would keep the event queue alive forever).
  // The loop never returns normally, so an exit means it was killed or its
  // host crashed; only the former is recoverable in place. The listener's
  // backlog mailbox keeps queued START connections across the gap, so a
  // start_worker issued during the outage just blocks until the restarted
  // loop accepts it.
  local_.simulation().watch_exit(accept_pid_, [this] {
    if (stopping_ || !local_.is_up()) return;
    if (accept_restarts_ >= kSupervisorBudget) {
      log::error("amuse") << "daemon accept loop died " << accept_restarts_
                          << " times; giving up on supervised restart";
      return;
    }
    double delay = supervisor_delay(accept_restarts_);
    ++accept_restarts_;
    log::warn("amuse") << "daemon accept loop died; supervised restart #"
                       << accept_restarts_ << " in " << delay << " s";
    local_.simulation().after(delay, [this] {
      if (stopping_ || !local_.is_up()) return;
      obs::metrics::counter("fault.supervisor_restarts").increment();
      accept_pid_ = local_.spawn("amuse-daemon", [this] { accept_loop(); });
      pids_.push_back(accept_pid_);
      supervise_accept_loop();
    });
  });
}

void IbisDaemon::serve_client(
    std::shared_ptr<smartsockets::ConnectionEnd> connection) {
  // One worker per client connection: read START, deploy, then relay.
  auto channel = std::make_shared<WorkerChannel>();
  channel->connection = connection;
  try {
    auto bytes = connection->recv();
    if (!bytes) return;
    util::ByteReader reader(std::move(*bytes));
    auto op = static_cast<daemon_wire::Op>(reader.get<std::uint8_t>());
    if (op != daemon_wire::Op::start) {
      throw WireError("daemon: expected START");
    }
    channel->spec = get_spec(reader);
    channel->resource = reader.get_string();
    channel->nodes = reader.get<std::int32_t>();
  } catch (const ConnectError&) {
    return;
  }

  channel->id = next_worker_id_++;
  channel->reply_port = "rep-" + std::to_string(channel->id);

  auto fail = [&](const std::string& reason) {
    log::warn("amuse") << "daemon: worker " << channel->spec.code << " on "
                       << channel->resource << " failed: " << reason;
    try {
      util::ByteWriter frame;
      frame.put<std::uint8_t>(static_cast<std::uint8_t>(daemon_wire::Op::fail));
      frame.put_string(reason);
      connection->send(std::move(frame).take());
      connection->close();
    } catch (const ConnectError&) {
    }
  };

  // The reply port is bound before the first deploy and *shared by every
  // proxy generation*: a supervised replacement connects its reply sender
  // to the same port, so the upstream pump below never has to be rebuilt.
  auto reply_receiver = ibis_->create_receive_port(channel->reply_port);

  std::string error = deploy_proxy(channel, 0);
  if (!error.empty()) {
    fail(error);
    return;
  }

  // Tell the script the worker is ready.
  {
    util::ByteWriter frame;
    frame.put<std::uint8_t>(static_cast<std::uint8_t>(daemon_wire::Op::ready));
    connection->send(std::move(frame).take());
  }

  // Upstream pump: proxy replies -> script. Survives proxy generations: the
  // port poisons once per dead sender (a ConnectError out of receive), and
  // the pump keeps receiving for the supervised successor.
  ipl::ReceivePort* replies = reply_receiver.get();
  sim::ProcessId upstream_pid = local_.spawn(
      "daemon-upstream:" + std::to_string(channel->id),
      [replies, connection] {
        while (true) {
          try {
            auto message = replies->receive_consuming_poison();
            auto payload = message.reader.get_vector<std::uint8_t>();
            try {
              connection->send(std::move(payload));
            } catch (const ConnectError&) {
              return;  // script side gone; the relay loop winds us down
            }
          } catch (const ConnectError&) {
            // A proxy generation died; the port stays open for the next.
          }
        }
      });
  pids_.push_back(upstream_pid);

  // Downstream pump: script frames -> proxy. Runs in this process and ends
  // only when the script goes away: a dead proxy merely drops frames while
  // the supervisor works (the script's RPC retry layer absorbs the gap, and
  // non-retryable calls are failed by the death notice).
  try {
    while (true) {
      auto bytes = connection->recv();
      if (!bytes) {  // script closed: tell the proxy to shut down
        if (channel->request_sender && !channel->worker_dead) {
          util::ByteWriter frame;
          frame.put_vector(std::vector<std::uint8_t>{});
          try {
            channel->request_sender->send(std::move(frame));
          } catch (const ConnectError&) {
          }
        }
        break;
      }
      if (channel->worker_dead || !channel->request_sender) {
        continue;  // supervision window: drop the frame
      }
      util::ByteWriter frame;
      frame.put_vector(*bytes);
      try {
        channel->request_sender->send(std::move(frame));
      } catch (const ConnectError&) {
        // Proxy died just now (the registry notice is still in flight):
        // drop the frame and let the supervisor sort it out.
      }
    }
  } catch (const ConnectError&) {
    // Script side went away abnormally.
  }
  channel->closed = true;  // stand down any in-flight supervision
  local_.simulation().kill(upstream_pid);
}

std::string IbisDaemon::deploy_proxy(
    const std::shared_ptr<WorkerChannel>& channel, int generation) {
  const WorkerSpec& spec = channel->spec;
  // Generation-suffixed pool name: the registry remembers dead members, and
  // the death watchers key on the name — a successor must be distinct.
  std::string proxy_name = "proxy-" + std::to_string(channel->id);
  if (generation > 0) proxy_name += "r" + std::to_string(generation);
  std::string reply_port = channel->reply_port;

  // Deploy the worker job through IbisDeploy/JavaGAT.
  gat::JobDescription desc;
  desc.name = spec.code + "-" + std::to_string(channel->id);
  desc.node_count = channel->nodes;
  desc.needs_gpu = spec.needs_gpu();
  // Worker startup ships the model's input data set (rough size: the spec
  // is tiny, but the paper stages input files; give it a nominal 1 MB).
  desc.stage_in_bytes = 1e6;
  sim::Host* daemon_host = &local_;
  sim::Network* net = &net_;
  smartsockets::SmartSockets* sockets = &sockets_;
  desc.main = [spec, daemon_host, net, sockets, proxy_name,
               reply_port](gat::JobContext& context) {
    // == proxy process (runs on the allocated node) ==
    sim::Host& node = *context.hosts.front();
    sim::ProcessId proxy_pid = node.simulation().current_pid();
    ipl::Ibis proxy_ibis(*sockets, node, proxy_name, *daemon_host);
    auto request_port = proxy_ibis.create_receive_port("req");

    // Start the native worker process and connect over node-local loopback
    // (paper: "the proxy communicates using a loopback connection with the
    // worker process", because mixing Java and MPI is not advisable).
    std::string service = "worker-local-" + proxy_name;
    smartsockets::ServerSocket* listener = &sockets->listen(node, service);
    std::vector<sim::Host*> hosts = context.hosts;
    sim::Host* node_ptr = &node;
    node.spawn("worker:" + spec.code, [listener, sockets, node_ptr, net, spec,
                                       hosts, service] {
      auto conn = listener->accept();
      sockets->unlisten(*node_ptr, service);
      run_worker(std::make_unique<ConnectionPipe>(std::move(conn)), spec,
                 hosts, *net);
    });
    auto worker_conn =
        sockets->connect(node, node, service, sim::TrafficClass::control);

    // Reply path: worker -> proxy -> daemon (IPL). If the daemon's reply
    // port is gone (the channel closed while this redeploy was in flight),
    // take the just-spawned worker down with us — leaving it parked on the
    // loopback would leak a process per failed restart attempt.
    std::unique_ptr<ipl::SendPort> reply_sender;
    try {
      auto daemon_id = proxy_ibis.wait_for_member("amuse-daemon");
      reply_sender = proxy_ibis.create_send_port("rep-out");
      reply_sender->connect(daemon_id, reply_port);
    } catch (const ConnectError&) {
      worker_conn->abort();
      throw;
    }
    ipl::Ibis* ibis_ptr = &proxy_ibis;
    sim::ProcessId upstream = node.spawn(
        "proxy-upstream:" + proxy_name,
        [&worker_conn, &reply_sender, ibis_ptr, proxy_pid, node_ptr] {
          try {
            while (auto bytes = worker_conn->recv()) {
              util::ByteWriter frame;
              frame.put_vector(*bytes);
              reply_sender->send(std::move(frame));
            }
          } catch (const ConnectError&) {
            // The loopback broke abnormally: the worker *process* is dead
            // (orderly teardown closes it, which is a clean EOF). The main
            // relay may sit blocked in receive() with nothing to flush the
            // failure out, so escalate from here: break the registry
            // connection (died -> the daemon's supervisor takes over) and
            // kill the relay so the job unwinds.
            if (!node_ptr->simulation().kill_pending()) {
              ibis_ptr->abort();
              node_ptr->simulation().kill(proxy_pid);
            }
          }
        });

    // Request path: daemon (IPL) -> proxy -> worker. Runs in this process;
    // ends when the daemon closes the port (worker stop) or dies.
    try {
      while (true) {
        auto message = request_port->receive();
        auto payload = message.reader.get_vector<std::uint8_t>();
        if (payload.empty()) break;  // orderly shutdown marker
        worker_conn->send(std::move(payload));
      }
    } catch (const ConnectError&) {
    } catch (const sim::ProcessKilled&) {
      // Killed proxy (process-level fault injection): take the worker and
      // the upstream pump down with us — a clean unwind would leave them
      // blocked on pipes nobody will ever feed again.
      worker_conn->abort();
      node.simulation().kill(upstream);
      throw;
    }
    worker_conn->close();
    node.simulation().kill(upstream);
  };

  std::shared_ptr<gat::Job> job;
  try {
    job = deployer_.submit(desc, channel->resource);
  } catch (const Error& failure) {
    return failure.what();
  }

  // Wait for the proxy to join the pool (or the job to die trying).
  ipl::IbisIdentifier proxy_id;
  bool proxy_up = false;
  try {
    // Watch both: job state errors and registry joins.
    while (!proxy_up) {
      if (job->state() == gat::JobState::error) {
        return job->error_message();
      }
      if (job->state() == gat::JobState::stopped) {
        return "worker exited before joining the pool";
      }
      for (const auto& member : ibis_->members()) {
        if (member.name == proxy_name) {
          proxy_id = member;
          proxy_up = true;
          break;
        }
      }
      if (!proxy_up) local_.simulation().sleep(0.05);
    }
  } catch (const Error& failure) {
    return failure.what();
  }

  auto request_sender = ibis_->create_send_port(
      "req-" + std::to_string(channel->id) + "g" + std::to_string(generation));
  try {
    request_sender->connect(proxy_id, "req");
  } catch (const ConnectError& failure) {
    return failure.what();
  }

  channel->job = job;
  channel->node_name = job->hosts().empty() ? "" : job->hosts().front()->name();
  channel->request_sender = std::move(request_sender);
  channel->generation = generation;
  watch_proxy(channel, proxy_name, generation);
  return "";
}

void IbisDaemon::watch_proxy(const std::shared_ptr<WorkerChannel>& channel,
                             const std::string& proxy_name, int generation) {
  // Event listeners cannot be unregistered; the generation guard makes
  // watchers of already-replaced proxies inert.
  ibis_->on_event([this, channel, proxy_name,
                   generation](const ipl::RegistryEvent& event) {
    if (event.type != ipl::RegistryEventType::died) return;
    if (event.id.name != proxy_name) return;
    if (channel->generation != generation || channel->worker_dead) return;
    if (stopping_ || channel->closed) return;
    channel->worker_dead = true;  // relay drops frames from here on
    pids_.push_back(
        local_.spawn("proxy-supervisor:" + std::to_string(channel->id),
                     [this, channel] { supervise_proxy(channel); }));
  });
}

void IbisDaemon::supervise_proxy(std::shared_ptr<WorkerChannel> channel) {
  // The registry saw this channel's proxy die. Pick the recovery tier:
  // node host down -> not a process fault, straight to the PR 2 path
  // (host_crash notice + close, scheduler excludes the host); otherwise
  // redeploy on the *same resource* with capped exponential backoff and
  // report process_crash on the still-open connection; budget exhausted or
  // redeploy failing -> PR 2 path after all.
  sim::Host* node = channel->job && !channel->job->hosts().empty()
                        ? channel->job->hosts().front()
                        : nullptr;
  if (node != nullptr && !node->is_up()) {
    send_death_notice(*channel, WorkerDiedError::Cause::host_crash,
                      "registry reported the worker proxy died", true);
    return;
  }
  while (channel->restarts < kSupervisorBudget) {
    double delay = supervisor_delay(channel->restarts);
    ++channel->restarts;
    log::warn("amuse") << "daemon: worker " << channel->spec.code << " on "
                       << channel->node_name
                       << " died; supervised restart #" << channel->restarts
                       << " in " << delay << " s";
    local_.simulation().sleep(delay);
    if (stopping_ || channel->closed) return;
    std::string error = deploy_proxy(channel, channel->generation + 1);
    if (error.empty()) {
      obs::metrics::counter("fault.supervisor_restarts").increment();
      // Notify *before* reopening the relay: the script's pending calls
      // must fail over to the revive/restore path before any resent frame
      // can reach the blank replacement worker.
      send_death_notice(*channel, WorkerDiedError::Cause::process_crash,
                        "worker process restarted in place on " +
                            channel->node_name,
                        false);
      channel->worker_dead = false;
      log::info("amuse") << "daemon: worker " << channel->spec.code
                         << " restarted in place on " << channel->node_name;
      return;
    }
    log::warn("amuse") << "daemon: supervised restart of "
                       << channel->spec.code << " failed: " << error;
    if (stopping_ || channel->closed) return;
  }
  send_death_notice(*channel, WorkerDiedError::Cause::host_crash,
                    "worker died and the in-place restart budget is spent",
                    true);
}

void IbisDaemon::send_death_notice(WorkerChannel& channel,
                                   WorkerDiedError::Cause cause,
                                   const std::string& detail,
                                   bool close_after) {
  try {
    // Same fixed header as a reply frame (id 0 marks the notice; the
    // zero-filled prefix leaves the span field 0 = untraced).
    util::ByteWriter notice(kFrameHeaderBytes);
    notice.patch<std::uint32_t>(0, kDeathNoticeId);
    notice.patch<std::uint8_t>(
        4, static_cast<std::uint8_t>(RpcStatus::worker_died));
    notice.patch<std::uint8_t>(5, static_cast<std::uint8_t>(cause));
    notice.put_string(channel.node_name);
    notice.put_string(detail);
    channel.connection->send(std::move(notice).take());
  } catch (const ConnectError&) {
    // Script side already gone; nothing left to notify.
  }
  if (close_after) {
    channel.connection->close();  // poisons the script's outstanding futures
  }
}

// -------------------------------------------------------- script client

std::unique_ptr<RpcClient> DaemonClient::start_worker(
    const WorkerSpec& spec, const std::string& resource, int nodes) {
  faultpoint::reach(faultpoint::Point::spawn_worker, -1,
                    spec.code + "@" + resource);
  // Deployment crosses a queue, a WAN and a remote frontend; transient
  // hiccups (a queue briefly full, a frontend rebooting) deserve a bounded
  // retry with backoff before the failure is escalated to the fault path.
  constexpr int kAttempts = 3;
  constexpr double kBackoff = 0.5;  // virtual seconds, doubles per retry
  for (int attempt = 1;; ++attempt) {
    try {
      return start_worker_once(spec, resource, nodes);
    } catch (const CodeError& failure) {
      if (attempt >= kAttempts) throw;
      log::warn("amuse") << "worker start attempt " << attempt << "/"
                         << kAttempts << " failed (" << failure.what()
                         << "); retrying";
      local_.simulation().sleep(kBackoff * attempt);
    }
  }
}

std::unique_ptr<RpcClient> DaemonClient::start_worker_once(
    const WorkerSpec& spec, const std::string& resource, int nodes) {
  auto connection = sockets_.connect(local_, local_, IbisDaemon::kService,
                                     sim::TrafficClass::control);
  util::ByteWriter start;
  start.put<std::uint8_t>(static_cast<std::uint8_t>(daemon_wire::Op::start));
  put_spec(start, spec);
  start.put_string(resource);
  start.put<std::int32_t>(nodes);
  connection->send(std::move(start).take());

  auto response = connection->recv();
  if (!response) throw CodeError("daemon closed during worker startup");
  util::ByteReader reader(std::move(*response));
  auto op = static_cast<daemon_wire::Op>(reader.get<std::uint8_t>());
  if (op == daemon_wire::Op::fail) {
    throw CodeError("worker " + spec.code + " startup failed on " + resource +
                    ": " + reader.get_string());
  }
  if (op != daemon_wire::Op::ready) {
    throw WireError("daemon: unexpected startup reply");
  }
  return std::make_unique<RpcClient>(
      local_, std::make_unique<ConnectionPipe>(std::move(connection)),
      spec.code + "@" + resource);
}

}  // namespace jungle::amuse
