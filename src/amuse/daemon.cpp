#include "amuse/daemon.hpp"

#include "amuse/faultpoint.hpp"
#include "util/logging.hpp"

namespace jungle::amuse {

namespace {

/// Serialize a WorkerSpec onto the daemon wire.
void put_spec(util::ByteWriter& writer, const WorkerSpec& spec) {
  writer.put_string(spec.code);
  writer.put<std::int32_t>(spec.nranks);
  writer.put<std::int32_t>(spec.ncores);
  writer.put<double>(spec.eps2);
  writer.put<double>(spec.eta);
  writer.put<double>(spec.theta);
  writer.put_string(spec.meter);
}

WorkerSpec get_spec(util::ByteReader& reader) {
  WorkerSpec spec;
  spec.code = reader.get_string();
  spec.nranks = reader.get<std::int32_t>();
  spec.ncores = reader.get<std::int32_t>();
  spec.eps2 = reader.get<double>();
  spec.eta = reader.get<double>();
  spec.theta = reader.get<double>();
  spec.meter = reader.get_string();
  return spec;
}

}  // namespace

// ------------------------------------------------------- local channels

std::unique_ptr<RpcClient> start_local_worker(
    smartsockets::SmartSockets& sockets, sim::Network& net, sim::Host& home,
    sim::Host& host, const WorkerSpec& spec, ChannelKind kind) {
  static std::uint64_t sequence = 0;
  std::string service = "amuse-worker-" + std::to_string(++sequence);
  auto& listener = sockets.listen(host, service);
  host.spawn("worker:" + spec.code, [&listener, &sockets, &host, &net, spec,
                                     service] {
    auto connection = listener.accept();
    sockets.unlisten(host, service);
    run_worker(std::make_unique<ConnectionPipe>(std::move(connection)), spec,
               {&host}, net);
  });
  // The "MPI" channel is the in-process default; the socket channel is a
  // plain TCP loopback. Both reduce to a connection with the matching
  // traffic class so the Fig-11 accounting distinguishes them.
  auto cls = kind == ChannelKind::mpi ? sim::TrafficClass::mpi
                                      : sim::TrafficClass::control;
  auto connection = sockets.connect(home, host, service, cls);
  return std::make_unique<RpcClient>(
      home, std::make_unique<ConnectionPipe>(std::move(connection)),
      spec.code);
}

// --------------------------------------------------------------- daemon

IbisDaemon::IbisDaemon(deploy::Deployer& deployer, sim::Network& net,
                       smartsockets::SmartSockets& sockets, sim::Host& local)
    : deployer_(deployer), net_(net), sockets_(sockets), local_(local) {
  deployer_.start_hubs();
  registry_ = std::make_unique<ipl::RegistryServer>(sockets_, local_);
  ibis_ = std::make_unique<ipl::Ibis>(sockets_, local_, "amuse-daemon",
                                      local_);
  listener_ = &sockets_.listen(local_, kService);
  pids_.push_back(local_.spawn("amuse-daemon", [this] { accept_loop(); }));
}

IbisDaemon::~IbisDaemon() {
  sim::Simulation& sim = local_.simulation();
  for (sim::ProcessId pid : pids_) sim.kill(pid);
  // The served processes hold ReceivePorts that reference our Ibis
  // instance; let their kills unwind *now*, while ibis_ is still alive.
  // (Only possible outside the event loop; inside a process the kills
  // drain at the next scheduling point, before any reuse.)
  if (!sim::Simulation::in_process()) {
    sim.run_until(sim.now());
  }
  sockets_.unlisten(local_, kService);
}

void IbisDaemon::accept_loop() {
  while (true) {
    auto connection = listener_->accept();
    pids_.push_back(local_.spawn(
        "amuse-daemon-client",
        [this, connection] { serve_client(connection); }));
  }
}

void IbisDaemon::serve_client(
    std::shared_ptr<smartsockets::ConnectionEnd> connection) {
  // One worker per client connection: read START, deploy, then relay.
  WorkerSpec spec;
  std::string resource_name;
  int nodes = 1;
  try {
    auto bytes = connection->recv();
    if (!bytes) return;
    util::ByteReader reader(std::move(*bytes));
    auto op = static_cast<daemon_wire::Op>(reader.get<std::uint8_t>());
    if (op != daemon_wire::Op::start) {
      throw WireError("daemon: expected START");
    }
    spec = get_spec(reader);
    resource_name = reader.get_string();
    nodes = reader.get<std::int32_t>();
  } catch (const ConnectError&) {
    return;
  }

  std::uint32_t worker_id = next_worker_id_++;
  std::string proxy_name = "proxy-" + std::to_string(worker_id);
  std::string reply_port = "rep-" + std::to_string(worker_id);

  auto fail = [&](const std::string& reason) {
    log::warn("amuse") << "daemon: worker " << spec.code << " on "
                       << resource_name << " failed: " << reason;
    try {
      util::ByteWriter frame;
      frame.put<std::uint8_t>(static_cast<std::uint8_t>(daemon_wire::Op::fail));
      frame.put_string(reason);
      connection->send(std::move(frame).take());
      connection->close();
    } catch (const ConnectError&) {
    }
  };

  // Deploy the worker job through IbisDeploy/JavaGAT.
  gat::JobDescription desc;
  desc.name = spec.code + "-" + std::to_string(worker_id);
  desc.node_count = nodes;
  desc.needs_gpu = spec.needs_gpu();
  // Worker startup ships the model's input data set (rough size: the spec
  // is tiny, but the paper stages input files; give it a nominal 1 MB).
  desc.stage_in_bytes = 1e6;
  sim::Host* daemon_host = &local_;
  sim::Network* net = &net_;
  smartsockets::SmartSockets* sockets = &sockets_;
  desc.main = [spec, daemon_host, net, sockets, proxy_name,
               reply_port](gat::JobContext& context) {
    // == proxy process (runs on the allocated node) ==
    sim::Host& node = *context.hosts.front();
    ipl::Ibis proxy_ibis(*sockets, node, proxy_name, *daemon_host);
    auto request_port = proxy_ibis.create_receive_port("req");

    // Start the native worker process and connect over node-local loopback
    // (paper: "the proxy communicates using a loopback connection with the
    // worker process", because mixing Java and MPI is not advisable).
    std::string service = "worker-local-" + proxy_name;
    smartsockets::ServerSocket* listener = &sockets->listen(node, service);
    std::vector<sim::Host*> hosts = context.hosts;
    sim::Host* node_ptr = &node;
    node.spawn("worker:" + spec.code, [listener, sockets, node_ptr, net, spec,
                                       hosts, service] {
      auto conn = listener->accept();
      sockets->unlisten(*node_ptr, service);
      run_worker(std::make_unique<ConnectionPipe>(std::move(conn)), spec,
                 hosts, *net);
    });
    auto worker_conn =
        sockets->connect(node, node, service, sim::TrafficClass::control);

    // Reply path: worker -> proxy -> daemon (IPL).
    auto daemon_id = proxy_ibis.wait_for_member("amuse-daemon");
    auto reply_sender = proxy_ibis.create_send_port("rep-out");
    reply_sender->connect(daemon_id, reply_port);
    sim::ProcessId upstream = node.spawn(
        "proxy-upstream:" + proxy_name, [&worker_conn, &reply_sender] {
          try {
            while (auto bytes = worker_conn->recv()) {
              util::ByteWriter frame;
              frame.put_vector(*bytes);
              reply_sender->send(std::move(frame));
            }
          } catch (const ConnectError&) {
          }
        });

    // Request path: daemon (IPL) -> proxy -> worker. Runs in this process;
    // ends when the daemon closes the port (worker stop) or dies.
    try {
      while (true) {
        auto message = request_port->receive();
        auto payload = message.reader.get_vector<std::uint8_t>();
        if (payload.empty()) break;  // orderly shutdown marker
        worker_conn->send(std::move(payload));
      }
    } catch (const ConnectError&) {
    }
    worker_conn->close();
    node.simulation().kill(upstream);
  };

  std::shared_ptr<gat::Job> job;
  try {
    job = deployer_.submit(desc, resource_name);
  } catch (const Error& failure) {
    fail(failure.what());
    return;
  }

  // Wait for the proxy to join the pool (or the job to die trying).
  auto reply_receiver = ibis_->create_receive_port(reply_port);
  ipl::IbisIdentifier proxy_id;
  bool proxy_up = false;
  try {
    // Watch both: job state errors and registry joins.
    while (!proxy_up) {
      if (job->state() == gat::JobState::error) {
        fail(job->error_message());
        return;
      }
      if (job->state() == gat::JobState::stopped) {
        fail("worker exited before joining the pool");
        return;
      }
      for (const auto& member : ibis_->members()) {
        if (member.name == proxy_name) {
          proxy_id = member;
          proxy_up = true;
          break;
        }
      }
      if (!proxy_up) local_.simulation().sleep(0.05);
    }
  } catch (const Error& failure) {
    fail(failure.what());
    return;
  }

  auto request_sender = ibis_->create_send_port("req-" +
                                                std::to_string(worker_id));
  try {
    request_sender->connect(proxy_id, "req");
  } catch (const ConnectError& failure) {
    fail(failure.what());
    return;
  }

  // Tell the script the worker is ready.
  {
    util::ByteWriter frame;
    frame.put<std::uint8_t>(static_cast<std::uint8_t>(daemon_wire::Op::ready));
    connection->send(std::move(frame).take());
  }

  // If the worker's host crashes, the registry broadcasts `died`. Tell the
  // script *which machine* was lost (death notice on request id 0) before
  // breaking the connection, so the fault path can exclude the right
  // resource rather than guessing; the close then poisons any future calls.
  // shared_ptr: the listener stays registered after this frame unwinds.
  auto worker_dead = std::make_shared<bool>(false);
  std::string node_name =
      job->hosts().empty() ? "" : job->hosts().front()->name();
  ibis_->on_event([worker_dead, proxy_name, node_name, connection](
                      const ipl::RegistryEvent& event) {
    if (event.type == ipl::RegistryEventType::died &&
        event.id.name == proxy_name) {
      *worker_dead = true;
      try {
        // Same fixed header as a reply frame (id 0 marks the notice; the
        // zero-filled prefix leaves the span field 0 = untraced).
        util::ByteWriter notice(kFrameHeaderBytes);
        notice.patch<std::uint32_t>(0, kDeathNoticeId);
        notice.patch<std::uint8_t>(
            4, static_cast<std::uint8_t>(RpcStatus::worker_died));
        notice.patch<std::uint8_t>(
            5, static_cast<std::uint8_t>(WorkerDiedError::Cause::host_crash));
        notice.put_string(node_name);
        notice.put_string("registry reported the worker proxy died");
        connection->send(std::move(notice).take());
      } catch (const ConnectError&) {
        // Script side already gone; nothing left to notify.
      }
      connection->close();  // poisons the script's outstanding futures
    }
  });

  // Upstream pump: proxy replies -> script.
  ipl::ReceivePort* replies = reply_receiver.get();
  sim::ProcessId upstream_pid = local_.spawn(
      "daemon-upstream:" + std::to_string(worker_id),
      [replies, connection] {
        try {
          while (true) {
            auto message = replies->receive();
            auto payload = message.reader.get_vector<std::uint8_t>();
            connection->send(std::move(payload));
          }
        } catch (const ConnectError&) {
        }
      });
  pids_.push_back(upstream_pid);

  // Downstream pump: script frames -> proxy. Runs in this process.
  try {
    while (true) {
      if (*worker_dead) break;
      auto bytes = connection->recv();
      if (!bytes) {  // script closed: tell the proxy to shut down
        util::ByteWriter frame;
        frame.put_vector(std::vector<std::uint8_t>{});
        try {
          request_sender->send(std::move(frame));
        } catch (const ConnectError&) {
        }
        break;
      }
      util::ByteWriter frame;
      frame.put_vector(*bytes);
      request_sender->send(std::move(frame));
    }
  } catch (const ConnectError&) {
    // Script side or proxy side went away.
  }
  local_.simulation().kill(upstream_pid);
}

// -------------------------------------------------------- script client

std::unique_ptr<RpcClient> DaemonClient::start_worker(
    const WorkerSpec& spec, const std::string& resource, int nodes) {
  faultpoint::reach(faultpoint::Point::spawn_worker, -1,
                    spec.code + "@" + resource);
  // Deployment crosses a queue, a WAN and a remote frontend; transient
  // hiccups (a queue briefly full, a frontend rebooting) deserve a bounded
  // retry with backoff before the failure is escalated to the fault path.
  constexpr int kAttempts = 3;
  constexpr double kBackoff = 0.5;  // virtual seconds, doubles per retry
  for (int attempt = 1;; ++attempt) {
    try {
      return start_worker_once(spec, resource, nodes);
    } catch (const CodeError& failure) {
      if (attempt >= kAttempts) throw;
      log::warn("amuse") << "worker start attempt " << attempt << "/"
                         << kAttempts << " failed (" << failure.what()
                         << "); retrying";
      local_.simulation().sleep(kBackoff * attempt);
    }
  }
}

std::unique_ptr<RpcClient> DaemonClient::start_worker_once(
    const WorkerSpec& spec, const std::string& resource, int nodes) {
  auto connection = sockets_.connect(local_, local_, IbisDaemon::kService,
                                     sim::TrafficClass::control);
  util::ByteWriter start;
  start.put<std::uint8_t>(static_cast<std::uint8_t>(daemon_wire::Op::start));
  put_spec(start, spec);
  start.put_string(resource);
  start.put<std::int32_t>(nodes);
  connection->send(std::move(start).take());

  auto response = connection->recv();
  if (!response) throw CodeError("daemon closed during worker startup");
  util::ByteReader reader(std::move(*response));
  auto op = static_cast<daemon_wire::Op>(reader.get<std::uint8_t>());
  if (op == daemon_wire::Op::fail) {
    throw CodeError("worker " + spec.code + " startup failed on " + resource +
                    ": " + reader.get_string());
  }
  if (op != daemon_wire::Op::ready) {
    throw WireError("daemon: unexpected startup reply");
  }
  return std::make_unique<RpcClient>(
      local_, std::make_unique<ConnectionPipe>(std::move(connection)),
      spec.code + "@" + resource);
}

}  // namespace jungle::amuse
