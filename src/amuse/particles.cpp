#include "amuse/particles.hpp"

namespace jungle::amuse {

std::vector<double> Column::values_in(const Unit& target) const {
  if (!unit_.same_dimensions(target)) {
    throw UnitError("column in " + unit_.symbol + " asked for as " +
                    target.symbol);
  }
  double factor = unit_.si_factor / target.si_factor;
  std::vector<double> converted(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    converted[i] = values_[i] * factor;
  }
  return converted;
}

Column& ParticleSet::add_attribute(const std::string& name, const Unit& unit) {
  auto [it, inserted] = columns_.try_emplace(name, size_, unit);
  if (inserted) order_.push_back(name);
  return it->second;
}

bool ParticleSet::has_attribute(const std::string& name) const {
  return columns_.count(name) != 0;
}

Column& ParticleSet::attribute(const std::string& name) {
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    throw ConfigError("particle set has no attribute '" + name + "'");
  }
  return it->second;
}

const Column& ParticleSet::attribute(const std::string& name) const {
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    throw ConfigError("particle set has no attribute '" + name + "'");
  }
  return it->second;
}

void ParticleSet::add_rows(std::size_t count) {
  size_ += count;
  for (auto& [name, column] : columns_) {
    column.raw().resize(size_, 0.0);
  }
}

void ParticleSet::copy_attributes_to(
    ParticleSet& target, const std::vector<std::string>& names) const {
  if (target.size() != size_) {
    throw CodeError("channel between particle sets of different sizes (" +
                    std::to_string(size_) + " vs " +
                    std::to_string(target.size()) + ")");
  }
  for (const std::string& name : names) {
    const Column& source = attribute(name);
    Column& sink = target.has_attribute(name)
                       ? target.attribute(name)
                       : target.add_attribute(name, source.unit());
    // Unit-checked copy: convert into the target column's unit.
    sink.raw() = source.values_in(sink.unit());
  }
}

std::vector<kernels::Vec3> ParticleSet::gather_vec3(const std::string& x,
                                                    const std::string& y,
                                                    const std::string& z,
                                                    const Unit& unit) const {
  auto xs = attribute(x).values_in(unit);
  auto ys = attribute(y).values_in(unit);
  auto zs = attribute(z).values_in(unit);
  std::vector<kernels::Vec3> result(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    result[i] = {xs[i], ys[i], zs[i]};
  }
  return result;
}

void ParticleSet::scatter_vec3(const std::string& x, const std::string& y,
                               const std::string& z,
                               const std::vector<kernels::Vec3>& values,
                               const Unit& unit) {
  if (values.size() != size_) {
    throw CodeError("scatter_vec3 size mismatch");
  }
  Column& cx = attribute(x);
  Column& cy = attribute(y);
  Column& cz = attribute(z);
  for (std::size_t i = 0; i < size_; ++i) {
    cx.set(i, Quantity(values[i].x, unit));
    cy.set(i, Quantity(values[i].y, unit));
    cz.set(i, Quantity(values[i].z, unit));
  }
}

}  // namespace jungle::amuse
