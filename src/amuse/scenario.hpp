#pragma once

#include <memory>
#include <string>

#include "amuse/bridge.hpp"
#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"
#include "deploy/deploy.hpp"
#include "sched/scheduler.hpp"
#include "util/config.hpp"

namespace jungle::amuse::scenario {

/// The evaluation configurations of §6 (Figs 9 and 12):
///   local_cpu  — desktop only, Fi + phiGRAPE(CPU)           (353 s/iter)
///   local_gpu  — desktop GPU, Octgrav + phiGRAPE(GPU)       ( 89 s/iter)
///   remote_gpu — Octgrav moved to an LGM Tesla, 30 km away  ( 84 s/iter)
///   jungle     — all four models on four sites (Fig 12)     (62.4 s/iter)
///   sc11       — jungle placement, coupler in Seattle (Fig 9)
///   autoplace  — the placement scheduler maps the kernels itself (§7's
///                "transparently find a replacement machine", generalized:
///                transparently find *the* machines), checkpointing each
///                step and re-placing dead workers mid-run.
enum class Kind { local_cpu, local_gpu, remote_gpu, jungle, sc11, autoplace };

const char* kind_name(Kind kind) noexcept;
double paper_seconds_per_iteration(Kind kind) noexcept;  // NaN where untimed

/// Which client<->worker data path the coupling script runs.
///   pipelined   — concurrent per-phase RPCs, delta state exchange, striped
///                 bulk transfers (the wide-area data path overhaul).
///   synchronous — the pre-overhaul serial path with full state fetches;
///                 kept as the measured baseline (bit-identical physics).
enum class Datapath { pipelined, synchronous };

struct Options {
  std::size_t n_stars = 1000;   // the embedded cluster of [11]
  std::size_t n_gas = 10000;
  int iterations = 2;
  double dt = 1.0 / 32.0;
  bool with_stellar_evolution = true;
  int se_every = 4;
  std::uint64_t seed = 20120301;
  Datapath datapath = Datapath::pipelined;
  /// Fault injection, honored by Kind::autoplace only (the one kind with a
  /// recovery path; other kinds ignore it): crash `kill_host` once
  /// `kill_after_iteration` bridge steps have completed. Empty / negative
  /// disables.
  std::string kill_host;
  int kill_after_iteration = -1;
};

struct Result {
  Kind kind;
  int iterations = 0;
  double seconds_per_iteration = 0.0;   // virtual
  double coupling_seconds_per_iteration = 0.0;
  double evolve_seconds_per_iteration = 0.0;
  double wan_bytes = 0.0;               // bytes that crossed any WAN link
  double wan_ipl_bytes = 0.0;
  /// Coupling traffic (IPL class) that crossed a WAN link, per bridge step
  /// — the wire cost the delta exchange minimizes (bench_datapath's gate).
  double wan_ipl_bytes_per_step = 0.0;
  double bound_gas_fraction = 1.0;      // after the run
  std::string dashboard;                // Figs 10/11 text analog
  std::string placement;                // kernel->host map that actually ran
  double modeled_seconds_per_iteration = 0.0;  // scheduler's prediction
  int restarts = 0;                     // fault-path re-placements performed
};

/// The Jungle of Figs 9/12: Seattle laptop, VU desktop + DAS-4 VU cluster,
/// DAS-4 UvA node, DAS-4 Delft GPU nodes, LGM in Leiden; lightpaths
/// between them. Owned by the caller via this handle.
class JungleTestbed {
 public:
  explicit JungleTestbed(bool verbose = false);
  /// Build the testbed from a deploy INI instead (sites/hosts/links and
  /// [resource ...] sections, plus an optional `[scenario] client = HOST`).
  /// This is what makes any topology file a runnable scenario.
  explicit JungleTestbed(const util::Config& config, bool verbose = false);
  /// Unwind all simulated processes before the network/sockets they touch.
  ~JungleTestbed() { sim_.shutdown(); }
  JungleTestbed(const JungleTestbed&) = delete;
  JungleTestbed& operator=(const JungleTestbed&) = delete;

  sim::Simulation& simulation() noexcept { return sim_; }
  sim::Network& network() noexcept { return net_; }
  smartsockets::SmartSockets& sockets() noexcept { return sockets_; }
  deploy::Deployer& deployer() noexcept { return *deployer_; }
  IbisDaemon& daemon(sim::Host& client);

  sim::Host& desktop() { return net_.host("desktop"); }
  sim::Host& laptop() { return net_.host("laptop"); }
  /// The machine the coupling script runs on: the INI's `[scenario]`
  /// client, or the desktop on the built-in testbed.
  sim::Host& client_host();

 private:
  sim::Simulation sim_;
  sim::Network net_{sim_};
  smartsockets::SmartSockets sockets_{net_};
  std::unique_ptr<deploy::Deployer> deployer_;
  std::unique_ptr<IbisDaemon> daemon_;
  sim::Host* client_ = nullptr;
};

/// The modeled placement a configuration runs: the hard-coded paper tables
/// for the classic kinds, the scheduler's plan for autoplace. Costs are
/// filled through the scheduler's model either way, which is how the
/// dashboard shows modeled-vs-measured and how tests check that autoplace
/// never does worse (on the model) than the Fig-12 map.
sched::Placement placement_for(JungleTestbed& bed, Kind kind,
                               const Options& options);

/// Run the embedded-cluster simulation in one configuration and report the
/// per-iteration timings + traffic. Deterministic for fixed options.
Result run_scenario(Kind kind, const Options& options);

/// Autoplace on an arbitrary INI topology: build the jungle from `config`,
/// let the scheduler place the kernels, run. No new C++ per topology.
Result run_scenario_config(const util::Config& config, const Options& options);

}  // namespace jungle::amuse::scenario
