#pragma once

#include <string>

#include "amuse/experiment.hpp"

namespace jungle::amuse::scenario {

/// The classic paper configurations, kept as thin wrappers over the
/// composable Experiment API: each Kind is a canned ExperimentSpec
/// (classic_spec) flowing through the one experiment path — declarative
/// model graph, graph validation, scheduler placement of the full role set,
/// generalized bridge. New multi-model runs should use
/// experiment::ExperimentSpec (or an INI with [model ...] / [coupling ...]
/// sections) directly instead of adding kinds here.

using experiment::Datapath;
using experiment::JungleTestbed;
using experiment::Result;

/// The evaluation configurations of §6 (Figs 9 and 12):
///   local_cpu  — desktop only, Fi + phiGRAPE(CPU)           (353 s/iter)
///   local_gpu  — desktop GPU, Octgrav + phiGRAPE(GPU)       ( 89 s/iter)
///   remote_gpu — Octgrav moved to an LGM Tesla, 30 km away  ( 84 s/iter)
///   jungle     — all four models on four sites (Fig 12)     (62.4 s/iter)
///   sc11       — jungle placement, coupler in Seattle (Fig 9)
///   autoplace  — the placement scheduler maps the kernels itself (§7's
///                "transparently find a replacement machine", generalized:
///                transparently find *the* machines), checkpointing each
///                step and re-placing dead workers mid-run.
enum class Kind { local_cpu, local_gpu, remote_gpu, jungle, sc11, autoplace };

const char* kind_name(Kind kind) noexcept;
double paper_seconds_per_iteration(Kind kind) noexcept;  // NaN where untimed

struct Options {
  std::size_t n_stars = 1000;   // the embedded cluster of [11]
  std::size_t n_gas = 10000;
  int iterations = 2;
  double dt = 1.0 / 32.0;
  bool with_stellar_evolution = true;
  int se_every = 4;
  std::uint64_t seed = 20120301;
  Datapath datapath = Datapath::pipelined;
  /// Fault injection, honored by Kind::autoplace only (the one kind with a
  /// recovery path). Setting it on any other kind is a ConfigError — a
  /// silently ignored kill switch is option loss, not a default.
  std::string kill_host;
  int kill_after_iteration = -1;
};

/// The embedded-cluster experiment of one paper configuration, as a spec:
/// four models (stars / tides / gas / se), one coupling, the kind's
/// placement pins. This is what run_scenario executes.
experiment::ExperimentSpec classic_spec(Kind kind, const Options& options);

/// The modeled placement a configuration runs: the paper tables (as spec
/// pins) for the classic kinds, the scheduler's plan for autoplace. Costs
/// are filled through the scheduler's model either way, which is how the
/// dashboard shows modeled-vs-measured and how tests check that autoplace
/// never does worse (on the model) than the Fig-12 map.
sched::Placement placement_for(JungleTestbed& bed, Kind kind,
                               const Options& options);

/// Run the embedded-cluster simulation in one configuration and report the
/// per-iteration timings + traffic. Deterministic for fixed options.
Result run_scenario(Kind kind, const Options& options);

/// Autoplace on an arbitrary INI topology: build the jungle from `config`,
/// let the scheduler place the kernels, run. When the INI declares its own
/// experiment graph ([model ...] sections) that graph runs instead of the
/// classic embedded cluster. No new C++ per topology or per experiment.
Result run_scenario_config(const util::Config& config, const Options& options);

}  // namespace jungle::amuse::scenario
