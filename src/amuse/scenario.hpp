#pragma once

#include <memory>
#include <string>

#include "amuse/bridge.hpp"
#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"
#include "deploy/deploy.hpp"

namespace jungle::amuse::scenario {

/// The evaluation configurations of §6 (Figs 9 and 12):
///   local_cpu  — desktop only, Fi + phiGRAPE(CPU)           (353 s/iter)
///   local_gpu  — desktop GPU, Octgrav + phiGRAPE(GPU)       ( 89 s/iter)
///   remote_gpu — Octgrav moved to an LGM Tesla, 30 km away  ( 84 s/iter)
///   jungle     — all four models on four sites (Fig 12)     (62.4 s/iter)
///   sc11       — jungle placement, coupler in Seattle (Fig 9)
enum class Kind { local_cpu, local_gpu, remote_gpu, jungle, sc11 };

const char* kind_name(Kind kind) noexcept;
double paper_seconds_per_iteration(Kind kind) noexcept;  // NaN for sc11

struct Options {
  std::size_t n_stars = 1000;   // the embedded cluster of [11]
  std::size_t n_gas = 10000;
  int iterations = 2;
  double dt = 1.0 / 32.0;
  bool with_stellar_evolution = true;
  int se_every = 4;
  std::uint64_t seed = 20120301;
};

struct Result {
  Kind kind;
  int iterations = 0;
  double seconds_per_iteration = 0.0;   // virtual
  double coupling_seconds_per_iteration = 0.0;
  double evolve_seconds_per_iteration = 0.0;
  double wan_bytes = 0.0;               // bytes that crossed any WAN link
  double wan_ipl_bytes = 0.0;
  double bound_gas_fraction = 1.0;      // after the run
  std::string dashboard;                // Figs 10/11 text analog
};

/// The Jungle of Figs 9/12: Seattle laptop, VU desktop + DAS-4 VU cluster,
/// DAS-4 UvA node, DAS-4 Delft GPU nodes, LGM in Leiden; lightpaths
/// between them. Owned by the caller via this handle.
class JungleTestbed {
 public:
  explicit JungleTestbed(bool verbose = false);
  /// Unwind all simulated processes before the network/sockets they touch.
  ~JungleTestbed() { sim_.shutdown(); }
  JungleTestbed(const JungleTestbed&) = delete;
  JungleTestbed& operator=(const JungleTestbed&) = delete;

  sim::Simulation& simulation() noexcept { return sim_; }
  sim::Network& network() noexcept { return net_; }
  smartsockets::SmartSockets& sockets() noexcept { return sockets_; }
  deploy::Deployer& deployer() noexcept { return *deployer_; }
  IbisDaemon& daemon(sim::Host& client);

  sim::Host& desktop() { return net_.host("desktop"); }
  sim::Host& laptop() { return net_.host("laptop"); }

 private:
  sim::Simulation sim_;
  sim::Network net_{sim_};
  smartsockets::SmartSockets sockets_{net_};
  std::unique_ptr<deploy::Deployer> deployer_;
  std::unique_ptr<IbisDaemon> daemon_;
};

/// Run the embedded-cluster simulation in one configuration and report the
/// per-iteration timings + traffic. Deterministic for fixed options.
Result run_scenario(Kind kind, const Options& options);

}  // namespace jungle::amuse::scenario
