#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace jungle::amuse {

/// Epoch-tagged delta state exchange (the wide-area data path's traffic
/// diet): workers stamp every mutation with an epoch, clients remember what
/// they last fetched, and a get_state only moves the fields that changed
/// since. Per-iteration WAN traffic is what the paper's coupling scheme must
/// minimize (§4.1); this protocol is how we minimize it.

/// Field bits shared by the gravity (mass|position|velocity) and hydro
/// (+internal_energy|density) state exchanges.
namespace state_field {
inline constexpr std::uint64_t mass = 1;
inline constexpr std::uint64_t position = 2;
inline constexpr std::uint64_t velocity = 4;
inline constexpr std::uint64_t internal_energy = 8;
inline constexpr std::uint64_t density = 16;

inline constexpr std::uint64_t gravity_all = mass | position | velocity;
inline constexpr std::uint64_t hydro_all =
    mass | position | velocity | internal_energy | density;
/// What the bridge's cross-kick actually consumes.
inline constexpr std::uint64_t coupling = mass | position;

inline constexpr int kCount = 5;

/// Modifier bit in a request's want_mask (not a field): the client asks for
/// the position span truncated to f32 on the wire — half the bytes of the
/// dominant field, for couplings crossing a low-bandwidth link that opted in
/// via `fp_truncate` on the topology link. The reply's sent/stale masks and
/// per-field StateIds never carry the bit; precision loss is confined to the
/// wire format of one reply.
inline constexpr std::uint64_t fp32_positions = 32;
}  // namespace state_field

/// 64-bit content identity: a worker-instance nonce in the top half, the
/// epoch at which the content last changed in the bottom half. Zero means
/// "unknown" and never matches. A restarted worker mints a fresh instance,
/// so ids from before a fault-path rollback can never be mistaken for
/// current content — that is what invalidates every downstream cache
/// (client state caches, the coupler's source/point/accel caches) on
/// rollback/replay.
using StateId = std::uint64_t;

inline StateId make_state_id(std::uint32_t instance,
                             std::uint32_t epoch) noexcept {
  return (static_cast<std::uint64_t>(instance) << 32) | epoch;
}

inline std::uint32_t state_id_instance(StateId id) noexcept {
  return static_cast<std::uint32_t>(id >> 32);
}

/// Identity of a combination of same-instance fields: within one instance
/// the last-changed epochs are totally ordered, so the max changes exactly
/// when any member does.
inline StateId combine_state_ids(StateId a, StateId b) noexcept {
  return a > b ? a : b;
}

/// Worker-side bookkeeping: one epoch counter, bumped on every mutation,
/// plus the epoch at which each field last changed.
struct StateEpochs {
  std::uint32_t instance;
  std::uint32_t epoch = 1;
  std::array<std::uint32_t, state_field::kCount> changed{};

  StateEpochs() : instance(next_instance()) {}

  void bump(std::uint64_t fields) {
    ++epoch;
    for (int i = 0; i < state_field::kCount; ++i) {
      if (fields & (1ULL << i)) changed[static_cast<std::size_t>(i)] = epoch;
    }
  }

  StateId id() const noexcept { return make_state_id(instance, epoch); }
  StateId field_id(int index) const noexcept {
    return make_state_id(instance, changed[static_cast<std::size_t>(index)]);
  }

  /// Should `bit` travel to a client that holds `have_mask` at `have_id`?
  bool field_changed_since(int index, StateId have_id) const noexcept {
    if (state_id_instance(have_id) != instance) return true;
    return field_id(index) > have_id;
  }

 private:
  static std::uint32_t next_instance() noexcept {
    static std::atomic<std::uint32_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }
};

/// Tags of the coupler's cross-gravity directions: which cached source/point
/// set an accel query refers to. The two classic Fig-7 directions keep their
/// historic values; an experiment graph derives one tag per coupling
/// direction with pair_field_tag (coupling 0's two directions are exactly
/// gas_on_stars / stars_on_gas).
enum class FieldTag : std::uint64_t { gas_on_stars = 0, stars_on_gas = 1 };

/// Tag of direction `dir` (0 = accel on system a, 1 = accel on system b) of
/// coupling number `coupling` — unique per (coupling, direction) even when
/// several couplings share one field worker.
inline FieldTag pair_field_tag(int coupling, int dir) noexcept {
  return static_cast<FieldTag>(static_cast<std::uint64_t>(coupling) * 2 +
                               static_cast<std::uint64_t>(dir));
}

/// Flag bits of the kick exchange. Kicks travel as *accel + dt* and the
/// worker multiplies (Δv_i = a_i * dt): the frame is
///   [u64 flags][f64 dt] (+ [accel span] unless `repeat`).
/// A half-kick whose acceleration is unchanged (the common case right after
/// an all-cache-hit coupling phase) replays the worker's cached accel under
/// a possibly different dt — 16 payload bytes instead of the whole array,
/// and robust to couplings firing at different cadences.
namespace kick_flags {
inline constexpr std::uint64_t repeat = 1;
}

/// Flag bits of the delta stellar-mass exchange (se_get_mass_updates): a
/// `full` reply carries every mass; otherwise only [indices][values] of the
/// stars whose mass changed since the last exchange travel.
namespace se_mass_flags {
inline constexpr std::uint64_t full = 1;
}

/// Flag bits of the field_accel_for exchange.
namespace accel_flags {
inline constexpr std::uint64_t has_sources = 1;
inline constexpr std::uint64_t has_points = 2;
}
namespace accel_reply_flags {
inline constexpr std::uint64_t unchanged = 1;
}

}  // namespace jungle::amuse
