#pragma once

#include <map>
#include <string>
#include <vector>

#include "amuse/units.hpp"
#include "kernels/vec3.hpp"

namespace jungle::amuse {

/// A named, unit-tagged column of a particle set.
class Column {
 public:
  Column() = default;
  Column(std::size_t n, Unit unit) : values_(n, 0.0), unit_(std::move(unit)) {}

  std::size_t size() const noexcept { return values_.size(); }
  const Unit& unit() const noexcept { return unit_; }

  Quantity at(std::size_t index) const {
    return Quantity(values_.at(index), unit_);
  }
  /// Checked: `value` must be dimensionally compatible with the column.
  void set(std::size_t index, const Quantity& value) {
    values_.at(index) = value.value_in(unit_);
  }

  /// Raw values in the column's own unit.
  const std::vector<double>& raw() const noexcept { return values_; }
  std::vector<double>& raw() noexcept { return values_; }

  /// All values converted to `target` (checked).
  std::vector<double> values_in(const Unit& target) const;

 private:
  std::vector<double> values_;
  Unit unit_;
};

/// AMUSE-style particle set: rows of particles, unit-tagged attribute
/// columns, and checked channels that copy attributes between sets. This is
/// the script-facing data model; kernels get flat N-body arrays via the
/// converter.
class ParticleSet {
 public:
  ParticleSet() = default;

  std::size_t size() const noexcept { return size_; }

  /// Add an attribute column (zero-filled).
  Column& add_attribute(const std::string& name, const Unit& unit);
  bool has_attribute(const std::string& name) const;
  Column& attribute(const std::string& name);
  const Column& attribute(const std::string& name) const;
  std::vector<std::string> attribute_names() const { return order_; }

  /// Grow by `count` rows (zero-filled in all columns).
  void add_rows(std::size_t count);

  /// Copy the named attributes to `target` (sizes must match; units are
  /// converted, incompatible dimensions throw) — AMUSE's
  /// `new_channel_to(...).copy_attributes(...)`.
  void copy_attributes_to(ParticleSet& target,
                          const std::vector<std::string>& names) const;

  /// Convenience vector-of-Vec3 access for columns named e.g. "x","y","z".
  std::vector<kernels::Vec3> gather_vec3(const std::string& x,
                                         const std::string& y,
                                         const std::string& z,
                                         const Unit& unit) const;
  void scatter_vec3(const std::string& x, const std::string& y,
                    const std::string& z,
                    const std::vector<kernels::Vec3>& values,
                    const Unit& unit);

 private:
  std::size_t size_ = 0;
  std::map<std::string, Column> columns_;
  std::vector<std::string> order_;
};

}  // namespace jungle::amuse
