#include "amuse/sharded.hpp"

#include <algorithm>
#include <exception>

#include "kernels/morton.hpp"

namespace jungle::amuse {

namespace {

/// Copy a shard's owned slice into the merged full-size array. A shard that
/// has never exchanged this field holds an empty (or wrong-sized) vector —
/// skip it; the merged view keeps whatever it had.
template <typename T>
void merge_slice(std::vector<T>& merged, const std::vector<T>& slice,
                 std::size_t lo, std::size_t count) {
  if (slice.size() != count || merged.size() < lo + count) return;
  std::copy(slice.begin(), slice.end(), merged.begin() + lo);
}

}  // namespace

ShardedGravityClient::ShardedGravityClient(
    std::vector<std::unique_ptr<GravityClient>> shards)
    : subs_(std::move(shards)) {
  if (subs_.empty()) {
    throw CodeError("sharded gravity: at least one shard client required");
  }
}

ShardedGravityClient::~ShardedGravityClient() = default;

void ShardedGravityClient::drain_pending() {
  std::exception_ptr first;
  for (Future& pending : pending_) {
    try {
      pending.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  pending_.clear();
  if (first) std::rethrow_exception(first);
}

void ShardedGravityClient::set_params(double eps2, double eta) {
  drain_pending();
  for (auto& sub : subs_) sub->set_params(eps2, eta);
}

void ShardedGravityClient::add_particles(std::span<const double> masses,
                                         std::span<const Vec3> positions,
                                         std::span<const Vec3> velocities) {
  drain_pending();
  cache_.mass.assign(masses.begin(), masses.end());
  cache_.position.assign(positions.begin(), positions.end());
  cache_.velocity.assign(velocities.begin(), velocities.end());
  ranges_ = kernels::shard_ranges(masses.size(), shard_count());
  for (std::size_t k = 0; k < subs_.size(); ++k) {
    subs_[k]->reset_model();
    subs_[k]->add_particles(masses, positions, velocities);
    subs_[k]->set_shard(ranges_[k].first, ranges_[k].second);
  }
}

void ShardedGravityClient::pull_owned(std::uint64_t want_mask) {
  std::vector<Future> replies;
  replies.reserve(subs_.size());
  for (auto& sub : subs_) replies.push_back(sub->request_state(want_mask));
  for (std::size_t k = 0; k < subs_.size(); ++k) {
    const GravityState& slice = subs_[k]->finish_state(replies[k], want_mask);
    const auto [lo, hi] = ranges_[k];
    const std::size_t count = hi - lo;
    if (want_mask & state_field::mass) {
      merge_slice(cache_.mass, slice.mass, lo, count);
    }
    if (want_mask & state_field::position) {
      merge_slice(cache_.position, slice.position, lo, count);
    }
    if (want_mask & state_field::velocity) {
      merge_slice(cache_.velocity, slice.velocity, lo, count);
    }
  }
}

void ShardedGravityClient::exchange_ghosts() {
  const std::size_t n = cache_.position.size();
  if (n == 0 || subs_.size() == 1) return;  // one shard owns [0, n): no ghosts
  pull_owned(state_field::position | state_field::velocity);
  const std::span<const Vec3> pos{cache_.position};
  const std::span<const Vec3> vel{cache_.velocity};
  for (std::size_t k = 0; k < subs_.size(); ++k) {
    const auto [lo, hi] = ranges_[k];
    if (lo > 0) {
      pending_.push_back(subs_[k]->ghost_update_async(
          0, pos.first(lo), vel.first(lo), fp32_positions_));
    }
    if (hi < n) {
      pending_.push_back(subs_[k]->ghost_update_async(
          hi, pos.subspan(hi), vel.subspan(hi), fp32_positions_));
    }
  }
}

Future ShardedGravityClient::evolve_async(double t_end) {
  drain_pending();
  // Per-connection FIFO orders each shard's ghost frames (still in flight in
  // pending_) before its evolve — no barrier needed between push and evolve.
  exchange_ghosts();
  Future head = subs_[0]->evolve_async(t_end);
  for (std::size_t k = 1; k < subs_.size(); ++k) {
    pending_.push_back(subs_[k]->evolve_async(t_end));
  }
  return head;
}

Future ShardedGravityClient::request_state(std::uint64_t want_mask) {
  // Do NOT drain here: state requests deliberately pipeline behind in-flight
  // evolves on each shard's connection. finish_state drains.
  pending_state_.clear();
  Future head = subs_[0]->request_state(want_mask);
  for (std::size_t k = 1; k < subs_.size(); ++k) {
    pending_state_.push_back(subs_[k]->request_state(want_mask));
  }
  return head;
}

const GravityState& ShardedGravityClient::finish_state(
    Future& reply, std::uint64_t want_mask) {
  drain_pending();
  for (std::size_t k = 0; k < subs_.size(); ++k) {
    Future& shard_reply = (k == 0) ? reply : pending_state_[k - 1];
    const GravityState& slice =
        subs_[k]->finish_state(shard_reply, want_mask);
    const auto [lo, hi] = ranges_[k];
    const std::size_t count = hi - lo;
    if (want_mask & state_field::mass) {
      merge_slice(cache_.mass, slice.mass, lo, count);
    }
    if (want_mask & state_field::position) {
      merge_slice(cache_.position, slice.position, lo, count);
    }
    if (want_mask & state_field::velocity) {
      merge_slice(cache_.velocity, slice.velocity, lo, count);
    }
  }
  pending_state_.clear();
  return cache_;
}

StateId ShardedGravityClient::coupling_sources_id() const {
  StateId id = 0;
  for (const auto& sub : subs_) {
    id = combine_state_ids(id, sub->coupling_sources_id());
  }
  return id;
}

StateId ShardedGravityClient::position_id() const {
  StateId id = 0;
  for (const auto& sub : subs_) {
    id = combine_state_ids(id, sub->position_id());
  }
  return id;
}

std::pair<double, double> ShardedGravityClient::energies() {
  drain_pending();
  if (subs_.size() == 1) return subs_[0]->energies();
  // Shard 0 holds all N rows; refresh its ghost rows [hi_0, n) with the
  // other shards' current state, then one full-system O(N^2) probe there.
  pull_owned(state_field::position | state_field::velocity);
  const std::size_t n = cache_.position.size();
  const auto [lo0, hi0] = ranges_[0];
  if (hi0 < n) {
    subs_[0]
        ->ghost_update_async(hi0,
                             std::span<const Vec3>{cache_.position}.subspan(hi0),
                             std::span<const Vec3>{cache_.velocity}.subspan(hi0),
                             fp32_positions_)
        .get();
  }
  return subs_[0]->energies();
}

Future ShardedGravityClient::kick_async(std::span<const Vec3> accel,
                                        double dt) {
  drain_pending();
  Future head =
      subs_[0]->kick_async(accel.subspan(ranges_[0].first,
                                         ranges_[0].second - ranges_[0].first),
                           dt);
  for (std::size_t k = 1; k < subs_.size(); ++k) {
    const auto [lo, hi] = ranges_[k];
    pending_.push_back(subs_[k]->kick_async(accel.subspan(lo, hi - lo), dt));
  }
  return head;
}

void ShardedGravityClient::set_masses(std::span<const double> masses) {
  drain_pending();
  cache_.mass.assign(masses.begin(), masses.end());
  for (auto& sub : subs_) sub->set_masses(masses);
}

void ShardedGravityClient::set_masses_sparse(
    std::span<const std::int32_t> indices, std::span<const double> masses) {
  drain_pending();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto index = static_cast<std::size_t>(indices[i]);
    if (index < cache_.mass.size()) cache_.mass[index] = masses[i];
  }
  for (auto& sub : subs_) sub->set_masses_sparse(indices, masses);
}

double ShardedGravityClient::model_time() {
  drain_pending();
  return subs_[0]->model_time();
}

void ShardedGravityClient::get_dynamics(std::vector<Vec3>& acc,
                                        std::vector<Vec3>& jerk,
                                        double& model_time) {
  drain_pending();
  acc.clear();
  jerk.clear();
  model_time = 0.0;
  for (std::size_t k = 0; k < subs_.size(); ++k) {
    std::vector<Vec3> shard_acc, shard_jerk;
    double shard_time = 0.0;
    subs_[k]->get_dynamics(shard_acc, shard_jerk, shard_time);
    if (k == 0) model_time = shard_time;
    acc.insert(acc.end(), shard_acc.begin(), shard_acc.end());
    jerk.insert(jerk.end(), shard_jerk.begin(), shard_jerk.end());
  }
}

void ShardedGravityClient::set_dynamics(std::span<const Vec3> acc,
                                        std::span<const Vec3> jerk,
                                        double model_time) {
  drain_pending();
  // Full arrays travel; a sharded worker zeroes the ghost rows on receipt so
  // the restored shard replays bit-identically to the one it replaces.
  for (auto& sub : subs_) sub->set_dynamics(acc, jerk, model_time);
}

void ShardedGravityClient::set_fp32_positions(bool enabled) {
  fp32_positions_ = enabled;
  for (auto& sub : subs_) sub->set_fp32_positions(enabled);
}

void ShardedGravityClient::set_delta_exchange(bool enabled) {
  GravityClient::set_delta_exchange(enabled);
  for (auto& sub : subs_) sub->set_delta_exchange(enabled);
}

void ShardedGravityClient::reset_delta_caches() {
  // Fault path: pending futures may belong to a poisoned pipe — drain them
  // quietly (the fault machinery has already diagnosed the death).
  for (Future& pending : pending_) {
    try {
      pending.get();
    } catch (...) {
    }
  }
  pending_.clear();
  for (Future& pending : pending_state_) {
    try {
      pending.get();
    } catch (...) {
    }
  }
  pending_state_.clear();
  GravityClient::reset_delta_caches();
  for (auto& sub : subs_) sub->reset_delta_caches();
}

RpcClient& ShardedGravityClient::rpc() noexcept { return subs_[0]->rpc(); }

RpcClient& ShardedGravityClient::fault_rpc() {
  for (auto& sub : subs_) {
    if (!sub->rpc().alive()) return sub->rpc();
  }
  return subs_[0]->rpc();
}

void ShardedGravityClient::close() {
  for (Future& pending : pending_) {
    try {
      pending.get();
    } catch (...) {
    }
  }
  pending_.clear();
  pending_state_.clear();
  for (auto& sub : subs_) sub->close();
}

}  // namespace jungle::amuse
