#include "amuse/scenario.hpp"

#include <cmath>

namespace jungle::amuse::scenario {

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::local_cpu: return "local-cpu(Fi+phiGRAPE-CPU)";
    case Kind::local_gpu: return "local-gpu(Octgrav+phiGRAPE-GPU)";
    case Kind::remote_gpu: return "remote-gpu(Octgrav@LGM)";
    case Kind::jungle: return "jungle(4 sites)";
    case Kind::sc11: return "sc11(coupler@Seattle)";
    case Kind::autoplace: return "autoplace(scheduler)";
  }
  return "?";
}

double paper_seconds_per_iteration(Kind kind) noexcept {
  switch (kind) {
    case Kind::local_cpu: return 353.0;
    case Kind::local_gpu: return 89.0;
    case Kind::remote_gpu: return 84.0;
    case Kind::jungle: return 62.4;
    case Kind::sc11: return std::nan("");  // demonstrated, not timed
    case Kind::autoplace: return std::nan("");  // ours, not the paper's
  }
  return std::nan("");
}

experiment::ExperimentSpec classic_spec(Kind kind, const Options& options) {
  using experiment::ExperimentSpec;
  using experiment::ModelSpec;
  using sched::Role;

  if (kind != Kind::autoplace &&
      (!options.kill_host.empty() || options.kill_after_iteration >= 1)) {
    throw ConfigError(std::string("Options::kill_host is only honored by "
                                  "Kind::autoplace (no recovery path on ") +
                      kind_name(kind) + "); refusing to ignore it");
  }

  ExperimentSpec spec;
  spec.name = kind_name(kind);
  spec.dt = options.dt;
  spec.iterations = options.iterations;
  spec.se_every = options.se_every;
  spec.seed = options.seed;
  spec.datapath = options.datapath;
  // time scale: ~0.47 Myr per N-body time for 1000 MSun / 1 pc; SN energy
  // scaled into N-body units for a 2 M_cluster gas cloud.
  spec.myr_per_nbody_time = 0.47;
  spec.feedback_efficiency = 0.1;
  spec.wind_specific_energy = 5.0;
  spec.supernova_energy = 40.0;

  // The four models of the embedded-cluster simulation, declared in the
  // historic worker start order (stars, coupler, gas, stellar).
  ModelSpec stars;
  stars.name = "stars";
  stars.role = Role::gravity;
  stars.n = options.n_stars;
  stars.ic = "plummer";

  ModelSpec tides;
  tides.name = "tides";
  tides.role = Role::coupler;

  ModelSpec gas;
  gas.name = "gas";
  gas.role = Role::hydro;
  gas.n = options.n_gas;
  gas.ic = "gas-sphere";
  gas.total_mass = 2.0;  // the natal cloud outweighs the cluster 2:1
  gas.radius = 1.5;

  ModelSpec se;
  se.name = "se";
  se.role = Role::stellar;
  se.n = options.n_stars;
  se.ic = "salpeter";
  se.ensure_massive = 20.0;  // at least one star that will go off
  se.of = "stars";
  se.feedback = "gas";

  // The paper's hand-coded Kind tables, expressed as placement pins so the
  // same plan/score machinery serves them and autoplace alike.
  switch (kind) {
    case Kind::local_cpu:
      stars.kernel = "phigrape";
      stars.place = "local";
      tides.kernel = "fi";
      tides.place = "local";
      gas.nranks = 2;
      gas.place = "local";
      se.place = "local";
      break;
    case Kind::local_gpu:
      stars.kernel = "phigrape-gpu";
      stars.place = "local";
      tides.kernel = "octgrav";
      tides.place = "local";
      gas.nranks = 2;
      gas.place = "local";
      se.place = "local";
      break;
    case Kind::remote_gpu:
      stars.kernel = "phigrape-gpu";
      stars.place = "local";
      tides.kernel = "octgrav";
      tides.place = "lgm/lgm-node";
      gas.nranks = 2;
      gas.place = "local";
      se.place = "local";
      break;
    case Kind::jungle:
    case Kind::sc11:
      stars.kernel = "phigrape-gpu";
      stars.place = "lgm/lgm-node";
      tides.kernel = "octgrav";
      tides.place = "das4-delft/delft-gpu0";
      gas.nranks = 8;
      gas.nodes = 8;
      gas.place = "das4-vu/dasvu0";
      se.place = "das4-uva/uva-node";
      break;
    case Kind::autoplace:
      // No pins: the scheduler places the full role set, checkpointing
      // each step so dead workers can be re-placed mid-run.
      spec.checkpointing = true;
      spec.kill_host = options.kill_host;
      spec.kill_after_iteration = options.kill_after_iteration;
      break;
  }
  if (kind == Kind::sc11) spec.client = "laptop";

  spec.models = {stars, tides, gas};
  // Without stellar evolution the SE model is simply absent from the graph
  // (the stars/gas draws come first in the IC stream, so the trajectory is
  // unchanged either way).
  if (options.with_stellar_evolution) spec.models.push_back(se);
  spec.couplings = {{"stars-gas", "tides", "stars", "gas", 1}};
  return spec;
}

sched::Placement placement_for(JungleTestbed& bed, Kind kind,
                               const Options& options) {
  return experiment::plan_experiment(bed, classic_spec(kind, options));
}

Result run_scenario(Kind kind, const Options& options) {
  JungleTestbed bed;
  return experiment::run_experiment(bed, classic_spec(kind, options));
}

Result run_scenario_config(const util::Config& config,
                           const Options& options) {
  JungleTestbed bed(config);
  if (experiment::config_declares_experiment(config)) {
    // The INI's graph defines the run; the caller's Options only
    // parameterize the *classic* embedded cluster. Accepting a fault
    // injection here and not firing it would be silent option loss.
    if (!options.kill_host.empty() || options.kill_after_iteration >= 1) {
      throw ConfigError(
          "Options::kill_host is ignored when the config declares its own "
          "[model ...] graph; put the fault policy in the [experiment] "
          "section instead");
    }
    return experiment::run_experiment(
        bed, experiment::ExperimentSpec::from_config(config));
  }
  if (config.has_section("experiment")) {
    // An [experiment] section with no [model ...] sections would have all
    // its knobs silently replaced by the caller's Options — option loss.
    throw ConfigError(
        "config has an [experiment] section but declares no [model ...] "
        "sections; declare the model graph (or drop the section to run "
        "the classic embedded cluster under autoplace)");
  }
  return experiment::run_experiment(bed, classic_spec(Kind::autoplace,
                                                      options));
}

}  // namespace jungle::amuse::scenario
