#include "amuse/scenario.hpp"

#include <cmath>

#include "amuse/diagnostics.hpp"
#include "amuse/ic.hpp"
#include "util/logging.hpp"

namespace jungle::amuse::scenario {

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::local_cpu: return "local-cpu(Fi+phiGRAPE-CPU)";
    case Kind::local_gpu: return "local-gpu(Octgrav+phiGRAPE-GPU)";
    case Kind::remote_gpu: return "remote-gpu(Octgrav@LGM)";
    case Kind::jungle: return "jungle(4 sites)";
    case Kind::sc11: return "sc11(coupler@Seattle)";
  }
  return "?";
}

double paper_seconds_per_iteration(Kind kind) noexcept {
  switch (kind) {
    case Kind::local_cpu: return 353.0;
    case Kind::local_gpu: return 89.0;
    case Kind::remote_gpu: return 84.0;
    case Kind::jungle: return 62.4;
    case Kind::sc11: return std::nan("");  // demonstrated, not timed
  }
  return std::nan("");
}

JungleTestbed::JungleTestbed(bool verbose) {
  using sim::net::gbit;
  using sim::net::ms;
  if (verbose) log::set_threshold(log::Level::info);

  // Effective per-core/GPU rates for irregular tree/N-body/SPH kernels
  // (a few percent of peak — see DESIGN.md calibration notes).
  net_.add_site("vu", 0.1 * ms, 1 * gbit);
  net_.add_site("seattle", 0.1 * ms, 1 * gbit);
  net_.add_site("uva", 0.05 * ms, 10 * gbit);
  net_.add_site("delft", 0.05 * ms, 10 * gbit);
  net_.add_site("leiden", 0.1 * ms, 1 * gbit);
  net_.add_site("das-vu", 2e-6, 32 * gbit);  // cluster interconnect

  sim::Host& desktop = net_.add_host("desktop", "vu", 4, 0.15);
  desktop.set_gpu(sim::GpuSpec{"geforce-9600gt", 1.2});
  net_.add_host("laptop", "seattle", 2, 0.12);

  sim::Host& lgm_fs = net_.add_host("fs-lgm", "leiden", 8, 0.3);
  lgm_fs.firewall().allow_inbound = false;  // ssh only, hub tunnels
  sim::Host& lgm_node = net_.add_host("lgm-node", "leiden", 8, 0.3);
  lgm_node.set_gpu(sim::GpuSpec{"tesla-c2050", 6.0});

  net_.add_host("fs-uva", "uva", 8, 0.3);
  net_.add_host("uva-node", "uva", 8, 0.3);

  net_.add_host("fs-delft", "delft", 8, 0.3);
  for (int i = 0; i < 2; ++i) {
    sim::Host& node =
        net_.add_host("delft-gpu" + std::to_string(i), "delft", 8, 0.3);
    node.set_gpu(sim::GpuSpec{"gtx480", 2.4});
  }

  net_.add_host("fs-dasvu", "das-vu", 8, 0.3);
  for (int i = 0; i < 8; ++i) {
    net_.add_host("dasvu" + std::to_string(i), "das-vu", 8, 0.3);
  }

  // Lightpaths of Figs 9/12.
  net_.add_link("vu", "uva", 0.2 * ms, 10 * gbit, "starplane-uva");
  net_.add_link("vu", "delft", 0.5 * ms, 10 * gbit, "starplane-delft");
  net_.add_link("vu", "leiden", 0.5 * ms, 1 * gbit, "lgm-lightpath");
  net_.add_link("vu", "das-vu", 0.05 * ms, 10 * gbit, "vu-campus");
  net_.add_link("seattle", "vu", 45 * ms, 1 * gbit, "transatlantic");
  net_.set_loopback(5e-6, 10 * gbit);

  deployer_ = std::make_unique<deploy::Deployer>(net_, sockets_, desktop);
  auto cluster = [&](const std::string& name, const std::string& frontend,
                     std::vector<std::string> node_names) {
    gat::Resource resource;
    resource.name = name;
    resource.middleware = "sge";
    resource.frontend = &net_.host(frontend);
    for (const auto& node : node_names) {
      resource.nodes.push_back(&net_.host(node));
    }
    resource.queue_base_delay = 1.0;
    resource.queue = std::make_shared<gat::ClusterQueue>(sim_);
    resource.queue->set_nodes(resource.nodes);
    deployer_->add_resource(resource);
  };
  cluster("lgm", "fs-lgm", {"lgm-node"});
  cluster("das4-uva", "fs-uva", {"uva-node"});
  cluster("das4-delft", "fs-delft", {"delft-gpu0", "delft-gpu1"});
  cluster("das4-vu", "fs-dasvu",
          {"dasvu0", "dasvu1", "dasvu2", "dasvu3", "dasvu4", "dasvu5",
           "dasvu6", "dasvu7"});
}

IbisDaemon& JungleTestbed::daemon(sim::Host& client) {
  if (!daemon_) {
    daemon_ = std::make_unique<IbisDaemon>(*deployer_, net_, sockets_, client);
  }
  return *daemon_;
}

namespace {

struct Workers {
  std::unique_ptr<GravityClient> stars;
  std::unique_ptr<HydroClient> gas;
  std::unique_ptr<FieldClient> coupler;
  std::unique_ptr<StellarClient> se;
};

Workers place_workers(JungleTestbed& bed, Kind kind, sim::Host& client,
                      const Options& options) {
  Workers workers;
  auto local = [&](const WorkerSpec& spec) {
    return start_local_worker(bed.sockets(), bed.network(), client, client,
                              spec, ChannelKind::mpi);
  };
  DaemonClient daemon_client(bed.sockets(), client);
  auto remote = [&](const WorkerSpec& spec, const std::string& resource,
                    int nodes = 1) {
    return daemon_client.start_worker(spec, resource, nodes);
  };

  WorkerSpec grav_cpu{.code = "phigrape", .ncores = 2};
  WorkerSpec grav_gpu{.code = "phigrape-gpu"};
  WorkerSpec fi{.code = "fi", .ncores = 2};
  WorkerSpec octgrav{.code = "octgrav"};
  WorkerSpec gadget_local{.code = "gadget", .nranks = 2, .ncores = 1};
  WorkerSpec gadget_cluster{.code = "gadget", .nranks = 8, .ncores = 2};
  WorkerSpec sse{.code = "sse"};

  switch (kind) {
    case Kind::local_cpu:
      workers.stars = std::make_unique<GravityClient>(local(grav_cpu));
      workers.coupler = std::make_unique<FieldClient>(local(fi));
      workers.gas = std::make_unique<HydroClient>(local(gadget_local));
      workers.se = std::make_unique<StellarClient>(local(sse));
      break;
    case Kind::local_gpu:
      workers.stars = std::make_unique<GravityClient>(local(grav_gpu));
      workers.coupler = std::make_unique<FieldClient>(local(octgrav));
      workers.gas = std::make_unique<HydroClient>(local(gadget_local));
      workers.se = std::make_unique<StellarClient>(local(sse));
      break;
    case Kind::remote_gpu:
      workers.stars = std::make_unique<GravityClient>(local(grav_gpu));
      workers.coupler =
          std::make_unique<FieldClient>(remote(octgrav, "lgm"));
      workers.gas = std::make_unique<HydroClient>(local(gadget_local));
      workers.se = std::make_unique<StellarClient>(local(sse));
      break;
    case Kind::jungle:
    case Kind::sc11:
      workers.stars =
          std::make_unique<GravityClient>(remote(grav_gpu, "lgm"));
      workers.coupler =
          std::make_unique<FieldClient>(remote(octgrav, "das4-delft"));
      workers.gas = std::make_unique<HydroClient>(
          remote(gadget_cluster, "das4-vu", 8));
      workers.se = std::make_unique<StellarClient>(remote(sse, "das4-uva"));
      break;
  }
  (void)options;
  return workers;
}

}  // namespace

Result run_scenario(Kind kind, const Options& options) {
  JungleTestbed bed;
  sim::Host& client =
      kind == Kind::sc11 ? bed.laptop() : bed.desktop();
  bed.daemon(client);  // paper step 3: "start the Ibis-Daemon"

  Result result;
  result.kind = kind;
  result.iterations = options.iterations;

  bed.simulation().spawn("amuse-script", [&] {
    Workers workers = place_workers(bed, kind, client, options);

    // Initial conditions: the embedded star cluster of [11].
    util::Rng rng(options.seed);
    auto model = ic::plummer_sphere(options.n_stars, rng);
    workers.stars->add_particles(model.mass, model.position, model.velocity);
    auto cloud = ic::gas_sphere(options.n_gas, rng, 2.0, 1.5);
    workers.gas->add_gas(cloud.mass, cloud.position, cloud.velocity,
                         cloud.internal_energy);
    auto zams = ic::salpeter_masses(options.n_stars, rng);
    zams[0] = 20.0;  // at least one star that will go off
    workers.se->add_stars(zams);

    Bridge::Config config;
    config.dt = options.dt;
    config.se_every = options.se_every;
    // time scale: ~0.47 Myr per N-body time for 1000 MSun / 1 pc; SN energy
    // scaled into N-body units for a 2 M_cluster gas cloud.
    config.myr_per_nbody_time = 0.47;
    config.feedback_efficiency = 0.1;
    config.wind_specific_energy = 5.0;
    config.supernova_energy = 40.0;
    Bridge bridge(*workers.stars, *workers.gas, *workers.coupler,
                  options.with_stellar_evolution ? workers.se.get() : nullptr,
                  config);

    bed.network().reset_traffic();
    double wall_start = bed.simulation().now();
    double coupling_time = 0.0;
    double evolve_time = 0.0;
    for (int i = 0; i < options.iterations; ++i) {
      std::size_t trace_before = bridge.trace().size();
      double t0 = bed.simulation().now();
      bridge.step();
      double t1 = bed.simulation().now();
      (void)trace_before;
      (void)t0;
      (void)t1;
    }
    double wall = bed.simulation().now() - wall_start;
    result.seconds_per_iteration = wall / options.iterations;
    result.coupling_seconds_per_iteration = coupling_time;
    result.evolve_seconds_per_iteration = evolve_time;

    // Fig-6 observable after the run.
    const auto& gas_state = bridge.gas_state();
    const auto& star_state = bridge.star_state();
    if (!gas_state.mass.empty()) {
      result.bound_gas_fraction = diagnostics::bound_gas_fraction(
          gas_state.mass, gas_state.position, gas_state.velocity,
          gas_state.internal_energy, star_state.mass, star_state.position);
    }

    workers.stars->close();
    workers.gas->close();
    workers.coupler->close();
    workers.se->close();
  });
  bed.simulation().run();

  for (const auto& link : bed.network().traffic_report()) {
    bool wan = link.name == "starplane-uva" || link.name == "starplane-delft" ||
               link.name == "lgm-lightpath" || link.name == "transatlantic" ||
               link.name == "vu-campus";
    if (!wan) continue;
    result.wan_bytes += link.bytes_by_class[0] + link.bytes_by_class[1] +
                        link.bytes_by_class[2] + link.bytes_by_class[3];
    result.wan_ipl_bytes +=
        link.bytes_by_class[static_cast<int>(sim::TrafficClass::ipl)];
  }
  result.dashboard = bed.deployer().dashboard();
  return result;
}

}  // namespace jungle::amuse::scenario
