#include "amuse/scenario.hpp"

#include <array>
#include <cmath>
#include <sstream>

#include "amuse/diagnostics.hpp"
#include "amuse/faults.hpp"
#include "amuse/ic.hpp"
#include "util/logging.hpp"

namespace jungle::amuse::scenario {

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::local_cpu: return "local-cpu(Fi+phiGRAPE-CPU)";
    case Kind::local_gpu: return "local-gpu(Octgrav+phiGRAPE-GPU)";
    case Kind::remote_gpu: return "remote-gpu(Octgrav@LGM)";
    case Kind::jungle: return "jungle(4 sites)";
    case Kind::sc11: return "sc11(coupler@Seattle)";
    case Kind::autoplace: return "autoplace(scheduler)";
  }
  return "?";
}

double paper_seconds_per_iteration(Kind kind) noexcept {
  switch (kind) {
    case Kind::local_cpu: return 353.0;
    case Kind::local_gpu: return 89.0;
    case Kind::remote_gpu: return 84.0;
    case Kind::jungle: return 62.4;
    case Kind::sc11: return std::nan("");  // demonstrated, not timed
    case Kind::autoplace: return std::nan("");  // ours, not the paper's
  }
  return std::nan("");
}

JungleTestbed::JungleTestbed(bool verbose) {
  using sim::net::gbit;
  using sim::net::ms;
  if (verbose) log::set_threshold(log::Level::info);

  // Effective per-core/GPU rates for irregular tree/N-body/SPH kernels
  // (a few percent of peak — see DESIGN.md calibration notes).
  net_.add_site("vu", 0.1 * ms, 1 * gbit);
  net_.add_site("seattle", 0.1 * ms, 1 * gbit);
  net_.add_site("uva", 0.05 * ms, 10 * gbit);
  net_.add_site("delft", 0.05 * ms, 10 * gbit);
  net_.add_site("leiden", 0.1 * ms, 1 * gbit);
  net_.add_site("das-vu", 2e-6, 32 * gbit);  // cluster interconnect

  sim::Host& desktop = net_.add_host("desktop", "vu", 4, 0.15);
  desktop.set_gpu(sim::GpuSpec{"geforce-9600gt", 1.2});
  net_.add_host("laptop", "seattle", 2, 0.12);

  sim::Host& lgm_fs = net_.add_host("fs-lgm", "leiden", 8, 0.3);
  lgm_fs.firewall().allow_inbound = false;  // ssh only, hub tunnels
  sim::Host& lgm_node = net_.add_host("lgm-node", "leiden", 8, 0.3);
  lgm_node.set_gpu(sim::GpuSpec{"tesla-c2050", 6.0});

  net_.add_host("fs-uva", "uva", 8, 0.3);
  net_.add_host("uva-node", "uva", 8, 0.3);

  net_.add_host("fs-delft", "delft", 8, 0.3);
  for (int i = 0; i < 2; ++i) {
    sim::Host& node =
        net_.add_host("delft-gpu" + std::to_string(i), "delft", 8, 0.3);
    node.set_gpu(sim::GpuSpec{"gtx480", 2.4});
  }

  net_.add_host("fs-dasvu", "das-vu", 8, 0.3);
  for (int i = 0; i < 8; ++i) {
    net_.add_host("dasvu" + std::to_string(i), "das-vu", 8, 0.3);
  }

  // Lightpaths of Figs 9/12.
  net_.add_link("vu", "uva", 0.2 * ms, 10 * gbit, "starplane-uva");
  net_.add_link("vu", "delft", 0.5 * ms, 10 * gbit, "starplane-delft");
  net_.add_link("vu", "leiden", 0.5 * ms, 1 * gbit, "lgm-lightpath");
  net_.add_link("vu", "das-vu", 0.05 * ms, 10 * gbit, "vu-campus");
  net_.add_link("seattle", "vu", 45 * ms, 1 * gbit, "transatlantic");
  net_.set_loopback(5e-6, 10 * gbit);

  client_ = &desktop;
  deployer_ = std::make_unique<deploy::Deployer>(net_, sockets_, desktop);
  auto cluster = [&](const std::string& name, const std::string& frontend,
                     std::vector<std::string> node_names) {
    gat::Resource resource;
    resource.name = name;
    resource.middleware = "sge";
    resource.frontend = &net_.host(frontend);
    for (const auto& node : node_names) {
      resource.nodes.push_back(&net_.host(node));
    }
    resource.queue_base_delay = 1.0;
    resource.queue = std::make_shared<gat::ClusterQueue>(sim_);
    resource.queue->set_nodes(resource.nodes);
    deployer_->add_resource(resource);
  };
  cluster("lgm", "fs-lgm", {"lgm-node"});
  cluster("das4-uva", "fs-uva", {"uva-node"});
  cluster("das4-delft", "fs-delft", {"delft-gpu0", "delft-gpu1"});
  cluster("das4-vu", "fs-dasvu",
          {"dasvu0", "dasvu1", "dasvu2", "dasvu3", "dasvu4", "dasvu5",
           "dasvu6", "dasvu7"});
}

JungleTestbed::JungleTestbed(const util::Config& config, bool verbose) {
  if (verbose) log::set_threshold(log::Level::info);
  deploy::build_topology(config, net_);
  auto names = net_.host_names();
  if (names.empty()) {
    throw ConfigError("scenario topology declares no hosts");
  }
  std::string client_name = config.has_section("scenario")
                                ? config.get_or("scenario", "client", names[0])
                                : names[0];
  client_ = &net_.host(client_name);
  deployer_ = std::make_unique<deploy::Deployer>(net_, sockets_, *client_);
  deployer_->add_resources(deploy::resources_from_config(config, net_));
}

sim::Host& JungleTestbed::client_host() {
  if (client_ == nullptr) throw ConfigError("testbed has no client host");
  return *client_;
}

IbisDaemon& JungleTestbed::daemon(sim::Host& client) {
  if (!daemon_) {
    daemon_ = std::make_unique<IbisDaemon>(*deployer_, net_, sockets_, client);
  }
  return *daemon_;
}

namespace {

struct Workers {
  std::unique_ptr<GravityClient> stars;
  std::unique_ptr<HydroClient> gas;
  std::unique_ptr<FieldClient> coupler;
  std::unique_ptr<StellarClient> se;
};

sched::Workload workload_from(const Options& options) {
  sched::Workload load;
  load.n_stars = options.n_stars;
  load.n_gas = options.n_gas;
  load.dt = options.dt;
  load.iterations = options.iterations;
  load.with_stellar_evolution = options.with_stellar_evolution;
  load.se_every = options.se_every;
  return load;
}

/// The paper's hand-coded Kind tables, expressed as placements so the same
/// start/score machinery serves them and autoplace alike.
sched::Placement builtin_placement(JungleTestbed& bed, Kind kind,
                                   sim::Host& client) {
  using sched::Role;
  sched::Placement p;
  auto local = [&](Role role, amuse::WorkerSpec spec) {
    sched::Assignment a;
    a.host = &client;
    a.spec = std::move(spec);
    p.role(role) = std::move(a);
  };
  auto remote = [&](Role role, const std::string& resource,
                    const std::string& host, amuse::WorkerSpec spec,
                    int nodes = 1) {
    sched::Assignment a;
    a.resource = resource;
    a.host = &bed.network().host(host);
    a.spec = std::move(spec);
    a.nodes = nodes;
    p.role(role) = std::move(a);
  };

  WorkerSpec grav_cpu{.code = "phigrape", .ncores = 2};
  WorkerSpec grav_gpu{.code = "phigrape-gpu"};
  WorkerSpec fi{.code = "fi", .ncores = 2};
  WorkerSpec octgrav{.code = "octgrav"};
  WorkerSpec gadget_local{.code = "gadget", .nranks = 2, .ncores = 1};
  WorkerSpec gadget_cluster{.code = "gadget", .nranks = 8, .ncores = 2};
  WorkerSpec sse{.code = "sse"};

  switch (kind) {
    case Kind::local_cpu:
      local(Role::gravity, grav_cpu);
      local(Role::coupler, fi);
      local(Role::hydro, gadget_local);
      local(Role::stellar, sse);
      break;
    case Kind::local_gpu:
      local(Role::gravity, grav_gpu);
      local(Role::coupler, octgrav);
      local(Role::hydro, gadget_local);
      local(Role::stellar, sse);
      break;
    case Kind::remote_gpu:
      local(Role::gravity, grav_gpu);
      remote(Role::coupler, "lgm", "lgm-node", octgrav);
      local(Role::hydro, gadget_local);
      local(Role::stellar, sse);
      break;
    case Kind::jungle:
    case Kind::sc11:
      remote(Role::gravity, "lgm", "lgm-node", grav_gpu);
      remote(Role::coupler, "das4-delft", "delft-gpu0", octgrav);
      remote(Role::hydro, "das4-vu", "dasvu0", gadget_cluster, 8);
      remote(Role::stellar, "das4-uva", "uva-node", sse);
      break;
    case Kind::autoplace:
      throw ConfigError("autoplace has no built-in table; use the scheduler");
  }
  return p;
}

std::unique_ptr<RpcClient> start_assignment(JungleTestbed& bed,
                                            sim::Host& client,
                                            DaemonClient& daemon_client,
                                            const sched::Assignment& a) {
  if (a.local()) {
    return start_local_worker(bed.sockets(), bed.network(), client, client,
                              a.spec, ChannelKind::mpi);
  }
  return daemon_client.start_worker(a.spec, a.resource, a.nodes);
}

Workers start_placement(JungleTestbed& bed, sim::Host& client,
                        DaemonClient& daemon_client,
                        const sched::Placement& p) {
  using sched::Role;
  Workers workers;
  workers.stars = std::make_unique<GravityClient>(
      start_assignment(bed, client, daemon_client, p.role(Role::gravity)));
  workers.coupler = std::make_unique<FieldClient>(
      start_assignment(bed, client, daemon_client, p.role(Role::coupler)));
  workers.gas = std::make_unique<HydroClient>(
      start_assignment(bed, client, daemon_client, p.role(Role::hydro)));
  workers.se = std::make_unique<StellarClient>(
      start_assignment(bed, client, daemon_client, p.role(Role::stellar)));
  return workers;
}

/// The placement a configuration runs: the scheduler's plan for autoplace,
/// the scored hard-coded table otherwise. Shared by run_in_bed and
/// placement_for so the test helper can never diverge from what actually
/// executes.
sched::Placement plan_placement(JungleTestbed& bed, Kind kind,
                                sim::Host& client,
                                const sched::Scheduler& scheduler,
                                const sched::Workload& load) {
  if (kind == Kind::autoplace) return scheduler.plan(load);
  sched::Placement plan = builtin_placement(bed, kind, client);
  scheduler.score(load, plan);
  return plan;
}

Bridge::Config bridge_config(const Options& options) {
  Bridge::Config config;
  config.dt = options.dt;
  config.se_every = options.se_every;
  config.synchronous_datapath = options.datapath == Datapath::synchronous;
  // time scale: ~0.47 Myr per N-body time for 1000 MSun / 1 pc; SN energy
  // scaled into N-body units for a 2 M_cluster gas cloud.
  config.myr_per_nbody_time = 0.47;
  config.feedback_efficiency = 0.1;
  config.wind_specific_energy = 5.0;
  config.supernova_energy = 40.0;
  return config;
}

Result run_in_bed(JungleTestbed& bed, Kind kind, const Options& options) {
  sim::Host& client =
      kind == Kind::sc11 ? bed.laptop() : bed.client_host();
  bed.daemon(client);  // paper step 3: "start the Ibis-Daemon"

  sched::Scheduler scheduler(bed.network(), client,
                             bed.deployer().resources());
  sched::Workload load = workload_from(options);
  sched::Placement plan = plan_placement(bed, kind, client, scheduler, load);

  Result result;
  result.kind = kind;
  result.iterations = options.iterations;
  result.placement = plan.describe();
  result.modeled_seconds_per_iteration = plan.modeled_seconds_per_iteration;

  bed.simulation().spawn("amuse-script", [&] {
    DaemonClient daemon_client(bed.sockets(), client);
    Workers workers = start_placement(bed, client, daemon_client, plan);
    bool synchronous = options.datapath == Datapath::synchronous;
    auto apply_datapath = [&] {
      // The baseline mode turns the delta exchange off end to end so the
      // wire behaves exactly like the pre-overhaul full-fetch path.
      workers.stars->set_delta_exchange(!synchronous);
      workers.gas->set_delta_exchange(!synchronous);
      workers.coupler->set_delta_exchange(!synchronous);
    };
    apply_datapath();

    // Initial conditions: the embedded star cluster of [11].
    util::Rng rng(options.seed);
    auto model = ic::plummer_sphere(options.n_stars, rng);
    workers.stars->add_particles(model.mass, model.position, model.velocity);
    auto cloud = ic::gas_sphere(options.n_gas, rng, 2.0, 1.5);
    workers.gas->add_gas(cloud.mass, cloud.position, cloud.velocity,
                         cloud.internal_energy);
    auto zams = ic::salpeter_masses(options.n_stars, rng);
    zams[0] = 20.0;  // at least one star that will go off
    workers.se->add_stars(zams);

    Bridge::Config config = bridge_config(options);
    StellarClient* se =
        options.with_stellar_evolution ? workers.se.get() : nullptr;
    auto bridge = std::make_unique<Bridge>(*workers.stars, *workers.gas,
                                           *workers.coupler, se, config);

    // Checkpoints start as the initial conditions: a worker lost on the
    // very first step rolls back to t=0.
    GravityCheckpoint grav_save;
    grav_save.state =
        GravityState{model.mass, model.position, model.velocity};
    HydroCheckpoint hydro_save;
    hydro_save.state = HydroState{cloud.mass, cloud.position, cloud.velocity,
                                  cloud.internal_energy, {}};
    FieldCheckpoint field_save;

    bool fault_tolerant = kind == Kind::autoplace;

    // The fault path: exclude what died, re-place the affected roles, and
    // roll every evolving worker back to the last consistent checkpoint
    // (restarted integrators start at t=0; the new bridge carries the clock
    // offset, the SE mass mapping and the SE cadence phase forward).
    auto recover = [&](const WorkerDiedError& death, int completed) {
      using sched::Role;
      log::warn("scenario") << "recovering from: " << death.what();
      if (death.cause() == WorkerDiedError::Cause::host_crash &&
          !death.host().empty()) {
        scheduler.exclude_host(death.host());
        // A dead *frontend* takes its whole resource out of play: jobs
        // submit through it even when the compute nodes survive.
        std::string owner = scheduler.resource_of(death.host());
        if (!owner.empty()) {
          const gat::Resource& res = bed.deployer().resource(owner);
          if (res.frontend != nullptr &&
              res.frontend->name() == death.host()) {
            scheduler.exclude_resource(owner);
          }
        }
      }
      std::array<std::pair<Role, bool>, sched::kRoles> liveness{{
          {Role::gravity, workers.stars->rpc().alive()},
          {Role::hydro, workers.gas->rpc().alive()},
          {Role::coupler, workers.coupler->rpc().alive()},
          {Role::stellar, workers.se->rpc().alive()},
      }};
      bool any_dead = false;
      for (auto [role, alive] : liveness) {
        if (alive) continue;
        any_dead = true;
        const sched::Assignment& was = plan.role(role);
        if (was.local()) {
          throw CodeError("the client machine lost its own worker (" +
                          std::string(sched::role_name(role)) +
                          "); nothing to re-place onto");
        }
        if (death.cause() != WorkerDiedError::Cause::host_crash) {
          scheduler.exclude_resource(was.resource);
        }
        plan.role(role) = scheduler.replace(load, plan, role);
      }
      if (!any_dead) throw death;  // stale report; cannot recover

      double t_done = completed * options.dt;
      auto [zams_se, zams_dyn] = bridge->se_mapping();

      // Gravity and hydro share the bridge clock: both roll back together
      // so their restarted integrators agree at t=0 (+ offset).
      workers.stars->close();
      workers.stars = std::make_unique<GravityClient>(start_assignment(
          bed, client, daemon_client, plan.role(Role::gravity)));
      restore_gravity(*workers.stars, grav_save);
      workers.gas->close();
      workers.gas = std::make_unique<HydroClient>(start_assignment(
          bed, client, daemon_client, plan.role(Role::hydro)));
      restore_hydro(*workers.gas, hydro_save);
      if (!workers.coupler->rpc().alive()) {
        workers.coupler->close();
        workers.coupler = std::make_unique<FieldClient>(start_assignment(
            bed, client, daemon_client, plan.role(Role::coupler)));
        restore_field(*workers.coupler, field_save);
      }
      if (!workers.se->rpc().alive()) {
        workers.se->close();
        workers.se = std::make_unique<StellarClient>(start_assignment(
            bed, client, daemon_client, plan.role(Role::stellar)));
        workers.se->add_stars(zams);
        if (t_done > 0.0) {
          workers.se->evolve_to(t_done * config.myr_per_nbody_time);
        }
      }

      // Fresh clients start with empty delta caches, and restarted workers
      // mint a fresh state-id instance: nothing cached before the rollback
      // (client states, coupler sources/accels) can be mistaken for
      // current content during the replay.
      apply_datapath();

      Bridge::Config restarted = config;
      restarted.t_offset = t_done;
      restarted.step_offset = completed;
      se = options.with_stellar_evolution ? workers.se.get() : nullptr;
      bridge = std::make_unique<Bridge>(*workers.stars, *workers.gas,
                                        *workers.coupler, se, restarted);
      bridge->set_se_mapping(std::move(zams_se), std::move(zams_dyn));
      // Re-score the whole post-fault placement so the dashboard's
      // modeled-vs-measured panel describes what is actually running.
      scheduler.score(load, plan);
      result.placement = plan.describe();
      result.modeled_seconds_per_iteration =
          plan.modeled_seconds_per_iteration;
    };

    bed.network().reset_traffic();
    double wall_start = bed.simulation().now();
    int completed = 0;
    bool killed = false;
    while (completed < options.iterations) {
      try {
        bridge->step();
        if (fault_tolerant) {
          // Checkpointing itself talks to the workers and can die mid-way:
          // stage into temporaries and commit all three together, so the
          // saves (and `completed`, bumped after) always describe one
          // consistent step — a partial set would desynchronize the
          // restarted models.
          GravityCheckpoint grav_now = checkpoint_gravity(*workers.stars);
          HydroCheckpoint hydro_now = checkpoint_hydro(*workers.gas);
          FieldCheckpoint field_now = checkpoint_field(*workers.coupler);
          grav_save = std::move(grav_now);
          hydro_save = std::move(hydro_now);
          field_save = std::move(field_now);
        }
        ++completed;
        if (fault_tolerant && !killed && !options.kill_host.empty() &&
            completed == options.kill_after_iteration) {
          killed = true;
          bed.network().host(options.kill_host).crash();
        }
      } catch (const WorkerDiedError& death) {
        if (!fault_tolerant || ++result.restarts > 2 * sched::kRoles) throw;
        recover(death, completed);
      }
    }
    double wall = bed.simulation().now() - wall_start;
    result.seconds_per_iteration = wall / options.iterations;

    // Fig-6 observable after the run. The pipelined path only moved
    // mass+position during coupling; pull the full states (velocities,
    // internal energy) once for the diagnostics.
    HydroState gas_state = workers.gas->get_state();
    GravityState star_state = workers.stars->get_state();
    if (!gas_state.mass.empty()) {
      result.bound_gas_fraction = diagnostics::bound_gas_fraction(
          gas_state.mass, gas_state.position, gas_state.velocity,
          gas_state.internal_energy, star_state.mass, star_state.position);
    }

    workers.stars->close();
    workers.gas->close();
    workers.coupler->close();
    workers.se->close();
  });
  bed.simulation().run();

  for (const auto& link : bed.network().traffic_report()) {
    // WAN = anything that is not a host loopback or an intra-site LAN.
    bool wan =
        link.name != "loopback" && link.name.rfind("lan:", 0) != 0;
    if (!wan) continue;
    result.wan_bytes += link.bytes_by_class[0] + link.bytes_by_class[1] +
                        link.bytes_by_class[2] + link.bytes_by_class[3];
    result.wan_ipl_bytes +=
        link.bytes_by_class[static_cast<int>(sim::TrafficClass::ipl)];
  }
  result.wan_ipl_bytes_per_step =
      options.iterations > 0 ? result.wan_ipl_bytes / options.iterations : 0.0;

  // Dashboard: the Figs 10/11 analog plus the placement panel — which
  // machine ran which kernel, and modeled vs. measured cost.
  std::ostringstream panel;
  panel << bed.deployer().dashboard();
  panel << "-- placement (" << kind_name(kind) << ") --\n";
  for (int i = 0; i < sched::kRoles; ++i) {
    const sched::Assignment& a = plan.roles[i];
    panel << "  " << sched::role_name(static_cast<sched::Role>(i)) << ": "
          << a.spec.code << " @ " << a.where()
          << " modeled compute=" << a.compute_seconds
          << " s comm=" << a.comm_seconds << " s\n";
  }
  panel << "  modeled=" << result.modeled_seconds_per_iteration
        << " s/iter measured=" << result.seconds_per_iteration << " s/iter";
  if (result.restarts > 0) panel << " restarts=" << result.restarts;
  panel << "\n";
  result.dashboard = panel.str();
  return result;
}

}  // namespace

sched::Placement placement_for(JungleTestbed& bed, Kind kind,
                               const Options& options) {
  sim::Host& client =
      kind == Kind::sc11 ? bed.laptop() : bed.client_host();
  sched::Scheduler scheduler(bed.network(), client,
                             bed.deployer().resources());
  return plan_placement(bed, kind, client, scheduler,
                        workload_from(options));
}

Result run_scenario(Kind kind, const Options& options) {
  JungleTestbed bed;
  return run_in_bed(bed, kind, options);
}

Result run_scenario_config(const util::Config& config,
                           const Options& options) {
  JungleTestbed bed(config);
  return run_in_bed(bed, Kind::autoplace, options);
}

}  // namespace jungle::amuse::scenario
