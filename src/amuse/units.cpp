#include "amuse/units.hpp"

namespace jungle::amuse {

namespace {

Dimensions add_dims(const Dimensions& a, const Dimensions& b) {
  Dimensions result{};
  for (std::size_t i = 0; i < result.size(); ++i) {
    result[i] = static_cast<std::int8_t>(a[i] + b[i]);
  }
  return result;
}

Dimensions sub_dims(const Dimensions& a, const Dimensions& b) {
  Dimensions result{};
  for (std::size_t i = 0; i < result.size(); ++i) {
    result[i] = static_cast<std::int8_t>(a[i] - b[i]);
  }
  return result;
}

std::string dims_text(const Dimensions& dims) {
  static const char* const kNames[7] = {"m", "kg", "s", "A", "K", "mol", "cd"};
  std::string text = "[";
  bool first = true;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == 0) continue;
    if (!first) text += " ";
    first = false;
    text += kNames[i];
    if (dims[i] != 1) text += "^" + std::to_string(dims[i]);
  }
  if (first) text += "1";
  return text + "]";
}

}  // namespace

Unit Unit::operator*(const Unit& other) const {
  return Unit{si_factor * other.si_factor, add_dims(dims, other.dims),
              symbol + "*" + other.symbol};
}

Unit Unit::operator/(const Unit& other) const {
  return Unit{si_factor / other.si_factor, sub_dims(dims, other.dims),
              symbol + "/" + other.symbol};
}

Unit Unit::pow(int exponent) const {
  Unit result{1.0, {}, symbol + "^" + std::to_string(exponent)};
  for (int i = 0; i < std::abs(exponent); ++i) {
    result.si_factor *= si_factor;
    result.dims = exponent > 0 ? add_dims(result.dims, dims)
                               : sub_dims(result.dims, dims);
  }
  return result;
}

double Quantity::value_in(const Unit& target) const {
  if (!unit_.same_dimensions(target)) {
    throw UnitError("cannot convert " + unit_.symbol + " " +
                    dims_text(unit_.dims) + " to " + target.symbol + " " +
                    dims_text(target.dims));
  }
  return value_ * unit_.si_factor / target.si_factor;
}

Quantity Quantity::operator+(const Quantity& other) const {
  return Quantity(value_ + other.value_in(unit_), unit_);
}

Quantity Quantity::operator-(const Quantity& other) const {
  return Quantity(value_ - other.value_in(unit_), unit_);
}

Quantity Quantity::operator*(const Quantity& other) const {
  return Quantity(value_ * other.value_, unit_ * other.unit_);
}

Quantity Quantity::operator/(const Quantity& other) const {
  return Quantity(value_ / other.value_, unit_ / other.unit_);
}

Quantity Quantity::sqrt() const {
  Unit half{std::sqrt(unit_.si_factor), {}, "sqrt(" + unit_.symbol + ")"};
  for (std::size_t i = 0; i < half.dims.size(); ++i) {
    if (unit_.dims[i] % 2 != 0) {
      throw UnitError("sqrt of unit with odd exponent: " + unit_.symbol);
    }
    half.dims[i] = static_cast<std::int8_t>(unit_.dims[i] / 2);
  }
  return Quantity(std::sqrt(value_), half);
}

namespace units {

// dims: {m, kg, s, A, K, mol, cd}
const Unit none{1.0, {0, 0, 0, 0, 0, 0, 0}, ""};
const Unit m{1.0, {1, 0, 0, 0, 0, 0, 0}, "m"};
const Unit kg{1.0, {0, 1, 0, 0, 0, 0, 0}, "kg"};
const Unit s{1.0, {0, 0, 1, 0, 0, 0, 0}, "s"};
const Unit km{1e3, {1, 0, 0, 0, 0, 0, 0}, "km"};
const Unit au{1.495978707e11, {1, 0, 0, 0, 0, 0, 0}, "AU"};
const Unit parsec{3.0856775814913673e16, {1, 0, 0, 0, 0, 0, 0}, "pc"};
const Unit msun{1.98892e30, {0, 1, 0, 0, 0, 0, 0}, "MSun"};
const Unit yr{3.15576e7, {0, 0, 1, 0, 0, 0, 0}, "yr"};
const Unit myr{3.15576e13, {0, 0, 1, 0, 0, 0, 0}, "Myr"};
const Unit kms{1e3, {1, 0, -1, 0, 0, 0, 0}, "km/s"};
const Unit j{1.0, {2, 1, -2, 0, 0, 0, 0}, "J"};
const Unit erg{1e-7, {2, 1, -2, 0, 0, 0, 0}, "erg"};
const Unit g_cgs{1e-3, {0, 1, 0, 0, 0, 0, 0}, "g"};
const Unit lsun{3.846e26, {2, 1, -3, 0, 0, 0, 0}, "LSun"};
const Unit rsun{6.957e8, {1, 0, 0, 0, 0, 0, 0}, "RSun"};
const Unit kelvin{1.0, {0, 0, 0, 0, 1, 0, 0}, "K"};

Quantity G() {
  Unit g_unit = (m.pow(3) / kg) / s.pow(2);
  return Quantity(6.67430e-11, g_unit);
}

}  // namespace units

NBodyConverter::NBodyConverter(Quantity mass_scale, Quantity length_scale)
    : mass_(std::move(mass_scale)), length_(std::move(length_scale)) {
  if (!mass_.unit().same_dimensions(units::kg)) {
    throw UnitError("NBodyConverter mass scale is not a mass");
  }
  if (!length_.unit().same_dimensions(units::m)) {
    throw UnitError("NBodyConverter length scale is not a length");
  }
  // T = sqrt(L^3 / (G M))
  Quantity l3 = length_ * length_ * length_;
  time_ = (l3 / (units::G() * mass_)).sqrt();
}

double NBodyConverter::scale_for(const Dimensions& dims) const {
  double m_si = mass_.value_in(units::kg);
  double l_si = length_.value_in(units::m);
  double t_si = time_.value_in(units::s);
  double scale = 1.0;
  for (int i = 0; i < dims[0]; ++i) scale *= l_si;
  for (int i = 0; i > dims[0]; --i) scale /= l_si;
  for (int i = 0; i < dims[1]; ++i) scale *= m_si;
  for (int i = 0; i > dims[1]; --i) scale /= m_si;
  for (int i = 0; i < dims[2]; ++i) scale *= t_si;
  for (int i = 0; i > dims[2]; --i) scale /= t_si;
  for (std::size_t d = 3; d < dims.size(); ++d) {
    if (dims[d] != 0) {
      throw UnitError("N-body conversion only covers mechanical dimensions");
    }
  }
  return scale;
}

double NBodyConverter::to_nbody(const Quantity& quantity) const {
  double si_value = quantity.raw() * quantity.unit().si_factor;
  return si_value / scale_for(quantity.unit().dims);
}

Quantity NBodyConverter::to_si(double nbody_value, const Unit& unit) const {
  double si_value = nbody_value * scale_for(unit.dims);
  return Quantity(si_value / unit.si_factor, unit);
}

Quantity NBodyConverter::speed_scale() const {
  return Quantity(length_.value_in(units::m) / time_.value_in(units::s),
                  units::m / units::s);
}

Quantity NBodyConverter::energy_scale() const {
  double m_si = mass_.value_in(units::kg);
  double l_si = length_.value_in(units::m);
  double t_si = time_.value_in(units::s);
  return Quantity(m_si * l_si * l_si / (t_si * t_si), units::j);
}

}  // namespace jungle::amuse
