#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace jungle::amuse::faultpoint {

/// Named, injectable steps of the checkpoint / re-place / rollback
/// protocol. The fault-schedule explorer (src/explore/) installs a hook and
/// crashes hosts or drops links exactly when the run reaches one of these
/// points — turning "a worker died during checkpoint commit" or "a second
/// death while re-placing the first" from a race into a replayable
/// schedule. Instrumented code calls reach() at each point; with no hook
/// installed the calls are a branch on a bool.
enum class Point : int {
  // Bridge phases of one kick-evolve-kick step (Fig 7).
  step_top_kick = 0,
  step_evolve,
  step_bottom_kick,
  step_stellar,
  // Checkpointing: per-model capture, per-model commit slot (the window
  // the atomic graph commit closes), and the committed snapshot (carries
  // the state digest golden-run comparisons key on).
  ckpt_capture,
  ckpt_commit,
  ckpt_committed,
  // Recovery: exclusion of what died, per-slot re-place decision,
  // per-model state restore, and the bridge rebuild that re-arms the run.
  recover_exclude,
  recover_replace,
  recover_restore,
  recover_rebuild,
  // Worker deployment through the daemon (initial start and re-place).
  spawn_worker,
};
constexpr int kPointCount = 12;

const char* name(Point point) noexcept;
/// Inverse of name(); false when `text` names no point.
bool parse(const std::string& text, Point& out) noexcept;

/// What the run was doing when it reached a fault point.
struct Context {
  Point point = Point::step_top_kick;
  /// 0-based bridge-step index the protocol is working on; -1 for points
  /// reached outside a specific step (recovery internals, worker spawn).
  int iteration = -1;
  /// Model / worker / resource label ("" when not applicable).
  std::string detail;
  /// ckpt_committed only: digest of the just-committed graph checkpoint.
  std::uint64_t digest = 0;
};

using Hook = std::function<void(const Context&)>;

/// Installs a process-wide hook for the lifetime of the object (RAII).
/// One hook at a time; the simulator runs one process at a time, so no
/// synchronization is needed. The hook may crash hosts / drop links but
/// must not throw.
class ScopedHook {
 public:
  explicit ScopedHook(Hook hook);
  ~ScopedHook();
  ScopedHook(const ScopedHook&) = delete;
  ScopedHook& operator=(const ScopedHook&) = delete;
};

/// True when a hook is installed (lets call sites skip digest computation
/// and other reach-only work on normal runs).
bool active() noexcept;

void reach(const Context& context);
void reach(Point point, int iteration = -1, const std::string& detail = "");

}  // namespace jungle::amuse::faultpoint
