#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "amuse/rpc.hpp"
#include "amuse/workers.hpp"
#include "deploy/deploy.hpp"
#include "ipl/ipl.hpp"

namespace jungle::amuse {

/// The AMUSE worker channels (paper §4.1/§5): the default MPI channel and
/// the socket channel run the worker locally; the Ibis channel goes through
/// the daemon to any resource in the Jungle.
enum class ChannelKind { mpi, socket, ibis };

/// Start a worker on `host` and return the RPC client for it, using the
/// local MPI or socket channel. `home` is the script's machine (the client
/// side of the pipe; usually the same host).
std::unique_ptr<RpcClient> start_local_worker(
    smartsockets::SmartSockets& sockets, sim::Network& net, sim::Host& home,
    sim::Host& host, const WorkerSpec& spec, ChannelKind kind);

/// The Ibis daemon (Fig 5): a process on the user's machine that the
/// coupling script talks to over a local loopback socket. For every worker
/// request it deploys a job in the Jungle through IbisDeploy/JavaGAT,
/// waits for the worker's proxy to join the IPL pool, and then relays
/// request/reply frames between script and proxy over IPL.
///
/// Since PR 8 the daemon is *supervised*: its accept loop is watched and
/// restarted in place (capped exponential backoff) when the process dies
/// while the host is healthy, and every worker proxy gets a per-generation
/// supervisor that redeploys a crashed proxy/worker pair on the same
/// resource before falling back to the PR 2 re-placement path. A
/// successful in-place restart reaches the script as a death notice with
/// cause=process_crash on the *still-open* connection — the signal to
/// revive the RPC client and restore state rather than exclude the host.
class IbisDaemon {
 public:
  static constexpr const char* kService = "amuse-daemon";

  /// Starts the registry server, the daemon's Ibis instance and the
  /// loopback accept loop, and bootstraps the hub overlay.
  IbisDaemon(deploy::Deployer& deployer, sim::Network& net,
             smartsockets::SmartSockets& sockets, sim::Host& local);
  ~IbisDaemon();
  IbisDaemon(const IbisDaemon&) = delete;
  IbisDaemon& operator=(const IbisDaemon&) = delete;

  sim::Host& host() noexcept { return local_; }
  int workers_started() const noexcept { return next_worker_id_ - 1; }

 private:
  /// Everything one script<->worker relay needs across proxy generations.
  /// Shared between the serve_client relay loop, the per-generation death
  /// watchers and the supervisor process; `generation` disambiguates events
  /// from proxies that were already replaced.
  struct WorkerChannel {
    std::uint32_t id = 0;
    WorkerSpec spec;
    std::string resource;
    int nodes = 1;
    std::string reply_port;
    std::shared_ptr<smartsockets::ConnectionEnd> connection;
    std::shared_ptr<gat::Job> job;
    std::unique_ptr<ipl::SendPort> request_sender;
    std::string node_name;
    /// True from the moment the proxy is known dead until a supervised
    /// restart brings a successor up; the relay drops frames meanwhile.
    bool worker_dead = false;
    /// Set when the script's connection winds down: the reply port dies
    /// with the relay, so any in-flight supervision must stand down
    /// instead of redeploying a worker nobody will ever talk to.
    bool closed = false;
    int generation = 0;
    int restarts = 0;
  };

  void accept_loop();
  void supervise_accept_loop();
  void serve_client(std::shared_ptr<smartsockets::ConnectionEnd> connection);

  /// Deploy proxy generation `generation` for this channel: submit the job,
  /// wait for the proxy to join the pool, connect the request path and arm
  /// the death watcher. Returns "" on success, the failure reason otherwise.
  std::string deploy_proxy(const std::shared_ptr<WorkerChannel>& channel,
                           int generation);
  /// Arm a died-event watcher for one proxy generation.
  void watch_proxy(const std::shared_ptr<WorkerChannel>& channel,
                   const std::string& proxy_name, int generation);
  /// Supervisor body (own process): backoff, redeploy in place, and notify
  /// the script — process_crash on success, host_crash (PR 2 fallback,
  /// connection closed) when the node is gone or the budget is spent.
  void supervise_proxy(std::shared_ptr<WorkerChannel> channel);
  /// Death notice on request id 0; closes the connection when `close_after`
  /// (the non-recoverable tier).
  void send_death_notice(WorkerChannel& channel, WorkerDiedError::Cause cause,
                         const std::string& detail, bool close_after);

  deploy::Deployer& deployer_;
  sim::Network& net_;
  smartsockets::SmartSockets& sockets_;
  sim::Host& local_;
  std::unique_ptr<ipl::RegistryServer> registry_;
  std::unique_ptr<ipl::Ibis> ibis_;
  smartsockets::ServerSocket* listener_ = nullptr;
  std::uint32_t next_worker_id_ = 1;
  std::vector<sim::ProcessId> pids_;
  sim::ProcessId accept_pid_ = 0;
  int accept_restarts_ = 0;
  bool stopping_ = false;
};

/// Script-side access to the daemon. start_worker blocks until the remote
/// worker is up (job submitted, proxy joined, ports connected) and returns
/// the RPC client whose frames flow through the daemon.
class DaemonClient {
 public:
  DaemonClient(smartsockets::SmartSockets& sockets, sim::Host& local)
      : sockets_(sockets), local_(local) {}

  /// Throws CodeError when the daemon reports a startup failure (e.g. the
  /// resource has no GPU or the middleware is unreachable). Startup
  /// failures are retried a few times with backoff first — deployment
  /// crosses queues and WANs, where transient refusals are normal.
  std::unique_ptr<RpcClient> start_worker(const WorkerSpec& spec,
                                          const std::string& resource,
                                          int nodes = 1);

 private:
  std::unique_ptr<RpcClient> start_worker_once(const WorkerSpec& spec,
                                               const std::string& resource,
                                               int nodes);

  smartsockets::SmartSockets& sockets_;
  sim::Host& local_;
};

/// Wire opcodes on the script<->daemon loopback connection.
namespace daemon_wire {
enum class Op : std::uint8_t { start = 1, ready = 2, fail = 3, frame = 4 };
}

}  // namespace jungle::amuse
