#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "amuse/rpc.hpp"
#include "amuse/workers.hpp"
#include "deploy/deploy.hpp"
#include "ipl/ipl.hpp"

namespace jungle::amuse {

/// The AMUSE worker channels (paper §4.1/§5): the default MPI channel and
/// the socket channel run the worker locally; the Ibis channel goes through
/// the daemon to any resource in the Jungle.
enum class ChannelKind { mpi, socket, ibis };

/// Start a worker on `host` and return the RPC client for it, using the
/// local MPI or socket channel. `home` is the script's machine (the client
/// side of the pipe; usually the same host).
std::unique_ptr<RpcClient> start_local_worker(
    smartsockets::SmartSockets& sockets, sim::Network& net, sim::Host& home,
    sim::Host& host, const WorkerSpec& spec, ChannelKind kind);

/// The Ibis daemon (Fig 5): a process on the user's machine that the
/// coupling script talks to over a local loopback socket. For every worker
/// request it deploys a job in the Jungle through IbisDeploy/JavaGAT,
/// waits for the worker's proxy to join the IPL pool, and then relays
/// request/reply frames between script and proxy over IPL.
class IbisDaemon {
 public:
  static constexpr const char* kService = "amuse-daemon";

  /// Starts the registry server, the daemon's Ibis instance and the
  /// loopback accept loop, and bootstraps the hub overlay.
  IbisDaemon(deploy::Deployer& deployer, sim::Network& net,
             smartsockets::SmartSockets& sockets, sim::Host& local);
  ~IbisDaemon();
  IbisDaemon(const IbisDaemon&) = delete;
  IbisDaemon& operator=(const IbisDaemon&) = delete;

  sim::Host& host() noexcept { return local_; }
  int workers_started() const noexcept { return next_worker_id_ - 1; }

 private:
  void accept_loop();
  void serve_client(std::shared_ptr<smartsockets::ConnectionEnd> connection);

  deploy::Deployer& deployer_;
  sim::Network& net_;
  smartsockets::SmartSockets& sockets_;
  sim::Host& local_;
  std::unique_ptr<ipl::RegistryServer> registry_;
  std::unique_ptr<ipl::Ibis> ibis_;
  smartsockets::ServerSocket* listener_ = nullptr;
  std::uint32_t next_worker_id_ = 1;
  std::vector<sim::ProcessId> pids_;
};

/// Script-side access to the daemon. start_worker blocks until the remote
/// worker is up (job submitted, proxy joined, ports connected) and returns
/// the RPC client whose frames flow through the daemon.
class DaemonClient {
 public:
  DaemonClient(smartsockets::SmartSockets& sockets, sim::Host& local)
      : sockets_(sockets), local_(local) {}

  /// Throws CodeError when the daemon reports a startup failure (e.g. the
  /// resource has no GPU or the middleware is unreachable). Startup
  /// failures are retried a few times with backoff first — deployment
  /// crosses queues and WANs, where transient refusals are normal.
  std::unique_ptr<RpcClient> start_worker(const WorkerSpec& spec,
                                          const std::string& resource,
                                          int nodes = 1);

 private:
  std::unique_ptr<RpcClient> start_worker_once(const WorkerSpec& spec,
                                               const std::string& resource,
                                               int nodes);

  smartsockets::SmartSockets& sockets_;
  sim::Host& local_;
};

/// Wire opcodes on the script<->daemon loopback connection.
namespace daemon_wire {
enum class Op : std::uint8_t { start = 1, ready = 2, fail = 3, frame = 4 };
}

}  // namespace jungle::amuse
