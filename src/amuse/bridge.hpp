#pragma once

#include <string>
#include <vector>

#include "amuse/clients.hpp"

namespace jungle::amuse {

/// The combined gravitational/hydro/stellar solver of Fig 7 (Pelupessy &
/// Portegies Zwart 2011): a BRIDGE-style kick–evolve–kick scheme where a
/// tree *coupling* kernel (Octgrav or Fi) provides the cross-gravity
/// between the star system (phiGRAPE) and the gas (Gadget), and stellar
/// evolution (SSE) is folded in every n-th step at a slower rate.
///
/// The coupling data path is pipelined: each cross-kick phase (state fetch,
/// field queries, kicks) issues both sides as concurrent futures, so one
/// WAN round trip is paid per phase instead of one per call, and the delta
/// state exchange keeps unchanged fields off the wire entirely. The
/// pre-overhaul serial path is kept behind Config::synchronous_datapath as
/// the baseline the data-path bench compares against (bit-identical
/// physics, more round trips and bytes).
class Bridge {
 public:
  struct Config {
    double dt = 1.0 / 64.0;       // bridge timestep (N-body units)
    int se_every = 4;             // stellar evolution cadence (paper: n-th)
    double myr_per_nbody_time = 1.0;  // converter: SE ages are in Myr
    /// Thermal feedback efficiency: fraction of wind/SN energy retained by
    /// the gas. 0 disables feedback.
    double feedback_efficiency = 0.1;
    /// Energy per unit wind mass loss (N-body specific-energy units) and
    /// per supernova (N-body energy units); set by the example from
    /// physical numbers through the converter.
    double wind_specific_energy = 0.0;
    double supernova_energy = 0.0;
    /// Restart support (the fault path's clock-shift convention): model
    /// time and steps completed by a *previous* bridge before its workers
    /// were restarted at t=0. Stellar-evolution ages and the SE cadence
    /// continue from the sum, while evolve targets restart at zero.
    double t_offset = 0.0;
    int step_offset = 0;
    /// Run the pre-overhaul serial coupling path (full state fetches, one
    /// RPC at a time). Benchmarks and the bit-exactness test use it.
    bool synchronous_datapath = false;
  };

  Bridge(GravityClient& stars, HydroClient& gas, FieldClient& coupler,
         StellarClient* stellar, Config config);

  /// One Fig-7 iteration. The two evolve calls run concurrently (async
  /// futures) — the "evolve step can be done in parallel" of the paper.
  void step();

  double time() const noexcept { return time_; }
  int steps_done() const noexcept { return steps_; }

  /// Call-sequence trace ("kick:gas->stars", "evolve:parallel", ...) — the
  /// E6 experiment asserts this matches the Fig-7 schedule.
  const std::vector<std::string>& trace() const noexcept { return trace_; }
  void clear_trace() { trace_.clear(); }

  // No state accessors here on purpose: the pipelined path fetches only
  // mass+position each half-kick, so the clients' caches can hold stale
  // velocities/energies between full fetches. Diagnostics must ask the
  // clients for a full get_state() instead (scenario.cpp does).

  /// The MSun <-> N-body mass mapping fixed at the first stellar update.
  /// A bridge rebuilt after a worker restart must inherit it — the current
  /// dynamical masses are no longer the ZAMS masses.
  std::pair<std::vector<double>, std::vector<double>> se_mapping() const {
    return {zams_se_, zams_dynamical_};
  }
  void set_se_mapping(std::vector<double> zams_se,
                      std::vector<double> zams_dynamical) {
    zams_se_ = std::move(zams_se);
    zams_dynamical_ = std::move(zams_dynamical);
  }

 private:
  void cross_kick(double dt);
  void cross_kick_synchronous(double dt);
  void stellar_update();

  GravityClient& stars_;
  HydroClient& gas_;
  FieldClient& coupler_;
  StellarClient* stellar_;
  Config config_;
  double time_ = 0.0;
  int steps_ = 0;
  std::vector<std::string> trace_;
  // MSun <-> N-body mass mapping fixed at the first stellar update.
  std::vector<double> zams_se_;
  std::vector<double> zams_dynamical_;
};

}  // namespace jungle::amuse
