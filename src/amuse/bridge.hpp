#pragma once

#include <string>
#include <utility>
#include <vector>

#include "amuse/clients.hpp"

namespace jungle::amuse {

/// The combined multi-model solver of Fig 7 (Pelupessy & Portegies Zwart
/// 2011), generalized from the hard-wired stars+gas pair to a *vector* of
/// coupled systems: a BRIDGE-style kick–evolve–kick scheme where tree
/// *coupling* kernels (Octgrav or Fi) provide the cross-gravity between any
/// pair of evolving systems (phiGRAPE star clusters, Gadget gas, ...), and
/// stellar evolution (SSE) is folded into its target system every n-th step
/// at a slower rate. The classic embedded-cluster bridge is the two-system,
/// one-coupling instance of this scheme and its physics is bit-identical to
/// the pre-generalization code path (tested).
///
/// The coupling data path is pipelined: each cross-kick phase (state fetch,
/// field queries, kicks) issues every system's calls as concurrent futures,
/// so one WAN round trip is paid per phase instead of one per call, and the
/// delta state exchange keeps unchanged fields off the wire entirely. The
/// pre-overhaul serial path is kept behind Config::synchronous_datapath as
/// the baseline the data-path bench compares against (bit-identical
/// physics, more round trips and bytes).
class Bridge {
 public:
  /// One evolving model in the graph. The name feeds the call trace
  /// ("kick:gas->stars") and error messages.
  struct System {
    std::string name;
    DynamicsClient* dynamics = nullptr;
  };

  /// One pairwise coupling: `field` evaluates the cross-gravity between
  /// systems `a` and `b` every `every`-th bridge step (1 = the classic
  /// every-step Fig-7 cadence; a larger cadence pays kicks of every*dt/2 at
  /// the boundaries of its window, nested-BRIDGE style).
  struct Coupling {
    FieldClient* field = nullptr;
    int a = 0;
    int b = 1;
    int every = 1;
  };

  /// Stellar-evolution wiring: SSE masses flow into the gravity system
  /// `into`; wind/supernova feedback (if any) heats the hydro system
  /// `feedback`.
  struct Stellar {
    StellarClient* client = nullptr;
    GravityClient* into = nullptr;
    HydroClient* feedback = nullptr;
  };

  struct Config {
    double dt = 1.0 / 64.0;       // bridge timestep (N-body units)
    int se_every = 4;             // stellar evolution cadence (paper: n-th)
    double myr_per_nbody_time = 1.0;  // converter: SE ages are in Myr
    /// Thermal feedback efficiency: fraction of wind/SN energy retained by
    /// the gas. 0 disables feedback.
    double feedback_efficiency = 0.1;
    /// Energy per unit wind mass loss (N-body specific-energy units) and
    /// per supernova (N-body energy units); set by the example from
    /// physical numbers through the converter.
    double wind_specific_energy = 0.0;
    double supernova_energy = 0.0;
    /// Restart support (the fault path's clock-shift convention): model
    /// time and steps completed by a *previous* bridge before its workers
    /// were restarted at t=0. Stellar-evolution ages and the SE cadence
    /// continue from the sum, while evolve targets restart at zero.
    double t_offset = 0.0;
    int step_offset = 0;
    /// Absolute-clock restart (the bit-exact rollback convention): the
    /// bridge clock begins at these exact bits — the committed checkpoint's
    /// time — and workers restored at the same absolute time receive evolve
    /// targets identical to the fault-free run's. Leave 0 with t_offset for
    /// the legacy shifted-clock convention.
    double t_start = 0.0;
    /// Run the pre-overhaul serial coupling path (full state fetches, one
    /// RPC at a time). Benchmarks and the bit-exactness test use it.
    bool synchronous_datapath = false;
  };

  Bridge(std::vector<System> systems, std::vector<Coupling> couplings,
         std::vector<Stellar> stellar, Config config);

  /// The classic Fig-7 bridge: stars + gas coupled through one field
  /// kernel, optional stellar evolution into the stars with feedback into
  /// the gas. A thin wrapper over the graph constructor.
  Bridge(GravityClient& stars, HydroClient& gas, FieldClient& coupler,
         StellarClient* stellar, Config config);

  /// One Fig-7 iteration. All systems' evolve calls run concurrently
  /// (async futures) — the "evolve step can be done in parallel" of the
  /// paper.
  void step();

  double time() const noexcept { return time_; }
  int steps_done() const noexcept { return steps_; }

  /// Call-sequence trace ("kick:gas->stars", "evolve:parallel", ...) — the
  /// E6 experiment asserts this matches the Fig-7 schedule.
  const std::vector<std::string>& trace() const noexcept { return trace_; }
  void clear_trace() { trace_.clear(); }

  // No state accessors here on purpose: the pipelined path fetches only
  // mass+position each half-kick, so the clients' caches can hold stale
  // velocities/energies between full fetches. Diagnostics must ask the
  // clients for a full get_state() instead (the experiment runner does).

  /// The MSun <-> N-body mass mapping fixed at the first stellar update of
  /// link `link` (0 = the classic single SE channel). A bridge rebuilt
  /// after a worker restart must inherit it — the current dynamical masses
  /// are no longer the ZAMS masses.
  std::pair<std::vector<double>, std::vector<double>> se_mapping(
      std::size_t link = 0) const;
  void set_se_mapping(std::vector<double> zams_se,
                      std::vector<double> zams_dynamical,
                      std::size_t link = 0);

 private:
  /// Per-link SE bookkeeping (the MSun <-> N-body mapping).
  struct StellarLink {
    Stellar wiring;
    std::vector<double> zams_se;
    std::vector<double> zams_dynamical;
  };

  /// Couplings that fire on a phase, given the step they belong to.
  std::vector<int> active_couplings(int step_index, bool bottom) const;
  void cross_kick(const std::vector<int>& active);
  void cross_kick_synchronous(const std::vector<int>& active);
  void stellar_update();
  void stellar_update_one(StellarLink& link);

  std::vector<System> systems_;
  std::vector<Coupling> couplings_;
  std::vector<StellarLink> stellar_;
  Config config_;
  double time_ = 0.0;
  int steps_ = 0;
  std::vector<std::string> trace_;
};

}  // namespace jungle::amuse
