#pragma once

#include <memory>
#include <string>
#include <vector>

#include "amuse/rpc.hpp"
#include "kernels/hermite.hpp"
#include "kernels/sph.hpp"
#include "kernels/sse.hpp"
#include "kernels/treefield.hpp"
#include "mpi/mpi.hpp"
#include "sim/host.hpp"
#include "sim/network.hpp"

namespace jungle::amuse {

/// Where and how a worker's compute is charged in the jungle model.
struct WorkerCost {
  sim::Host* host = nullptr;
  sim::DeviceKind device = sim::DeviceKind::cpu;
  int ncores = 1;
  /// Worker-side meters (null = unmetered). run_worker wires them to
  /// worker.<meter>.{flops,compute_s,substeps} so the scheduler can compare
  /// measured compute against its model per role.
  obs::metrics::Counter* flops = nullptr;
  obs::metrics::Counter* compute_s = nullptr;
  obs::metrics::Counter* substeps = nullptr;
};

/// The model kernels of the embedded-cluster simulation (paper §6), by
/// their community-code names. The "-gpu" variants run the same numerics
/// with the cost charged to the host's GPU — the paper's core Multi-Kernel
/// point: "Which kernel is used has no influence in the result ... but may
/// have a dramatic effect on performance."
struct WorkerSpec {
  std::string code;    // phigrape | phigrape-gpu | octgrav | fi | gadget | sse
  int nranks = 1;      // gadget: MPI ranks
  int ncores = 1;      // CPU cores charged per rank
  double eps2 = 1e-4;
  double eta = 0.02;   // phigrape accuracy
  double theta = 0.6;  // tree opening angle
  /// Metrics series name for this worker's meters (empty = use `code`).
  /// The experiment runner sets the model name so two workers running the
  /// same code keep separate series.
  std::string meter;

  bool needs_gpu() const {
    return code == "phigrape-gpu" || code == "octgrav";
  }
};

/// phiGRAPE worker: direct N-body over the RPC protocol.
Dispatcher make_gravity_dispatcher(
    std::shared_ptr<kernels::HermiteIntegrator> integrator, WorkerCost cost);

/// Octgrav/Fi worker: tree gravity field evaluations.
Dispatcher make_field_dispatcher(std::shared_ptr<kernels::TreeField> field,
                                 WorkerCost cost);

/// SSE worker: parameterized stellar evolution (compute cost ~ trivial).
Dispatcher make_se_dispatcher(
    std::shared_ptr<kernels::StellarEvolution> stellar, WorkerCost cost);

/// Serial Gadget worker.
Dispatcher make_hydro_dispatcher(std::shared_ptr<kernels::SphSystem> sph,
                                 WorkerCost cost);

/// Parallel Gadget worker: SPH with the density/force/integrate phases
/// partitioned over MPI ranks and slice exchanges over the simulated
/// interconnect — the paper's "8 nodes, C/MPI/Ibis gas dynamics (Gadget)".
class ParallelSph {
 public:
  ParallelSph(sim::Network& net, std::vector<sim::Host*> hosts, int nranks,
              kernels::SphSystem::Params params, int ncores_per_rank);

  kernels::SphSystem& sph() noexcept { return sph_; }

  /// Called on the driver (rank 0) process.
  void evolve(double t_end);
  void stop();

  /// Meter rank-0's compute (flops + modeled seconds — representative of
  /// elapsed time, the ranks being symmetric).
  void set_meters(obs::metrics::Counter* flops,
                  obs::metrics::Counter* compute_s) noexcept {
    m_flops_ = flops;
    m_compute_s_ = compute_s;
  }

  mpi::MpiWorld& world() noexcept { return world_; }

 private:
  void rank_loop(mpi::Comm& comm);
  void parallel_steps(mpi::Comm& comm, double t_end);
  std::pair<std::size_t, std::size_t> slice(int rank) const;

  kernels::SphSystem sph_;
  mpi::MpiWorld world_;
  int ncores_per_rank_;
  bool stopped_ = false;
  obs::metrics::Counter* m_flops_ = nullptr;
  obs::metrics::Counter* m_compute_s_ = nullptr;
};

Dispatcher make_parallel_hydro_dispatcher(std::shared_ptr<ParallelSph> sph,
                                          WorkerCost cost);

/// Build the kernel named by `spec` and serve RPC on `pipe` until stopped.
/// `hosts` are the allocated nodes (first one runs the server; a parallel
/// gadget spreads ranks over all of them). Blocks; run inside the worker's
/// own process.
void run_worker(std::unique_ptr<MessagePipe> pipe, const WorkerSpec& spec,
                std::vector<sim::Host*> hosts, sim::Network& net);

}  // namespace jungle::amuse
