#include "amuse/workers.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "amuse/delta.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace jungle::amuse {

using kernels::Vec3;

namespace {

// Charge `flops` to the worker's host/device, blocking its process for the
// modelled duration. Small trivial calls stay cheap via a floor of zero.
// Metered cost structs also record the flops and modeled seconds, and the
// blocking interval shows up as a "compute" span nested under the serving
// RPC span.
void charge(const WorkerCost& cost, double flops) {
  if (flops <= 0.0 || cost.host == nullptr) return;
  if (cost.flops != nullptr) {
    cost.flops->add(flops);
    cost.compute_s->add(
        cost.host->compute_time(flops, cost.device, cost.ncores));
  }
  obs::trace::Span span = obs::trace::span("compute", "kernel");
  cost.host->compute(flops, cost.device, cost.ncores);
}

std::vector<Vec3> read_vec3s(util::ByteReader& reader) {
  return reader.get_vector<Vec3>();
}

// ---------------------------------------------- delta state exchange

/// One field of a delta get_state reply: its bit, its index in the epochs
/// table, and a writer that frames the current content (as a borrowed view
/// where the kernel exposes stable storage). The writer receives the
/// request's modifier bits (state_field::fp32_positions et al.) so a field
/// can pick a truncated wire format.
struct StateFieldWriter {
  std::uint64_t bit;
  int index;
  std::function<void(util::ByteWriter&, std::uint64_t)> write;
};

/// Frame a position array, full f64 by default or truncated to f32 when the
/// request carried the fp32_positions modifier (opt-in on low-bandwidth
/// links). The f32 form is padded to an 8-byte boundary so any following
/// span stays alignment-safe for zero-copy reads.
void put_positions(util::ByteWriter& out, std::span<const Vec3> positions,
                   std::uint64_t modifiers) {
  if (modifiers & state_field::fp32_positions) {
    std::vector<float> packed;
    packed.reserve(positions.size() * 3);
    for (const Vec3& p : positions) {
      packed.push_back(static_cast<float>(p.x));
      packed.push_back(static_cast<float>(p.y));
      packed.push_back(static_cast<float>(p.z));
    }
    out.put_vector(packed);
    if (positions.size() % 2 != 0) out.put<std::uint32_t>(0);  // realign
  } else {
    out.put_span_view(positions);
  }
}

/// Serve a delta get_state: reply only the requested fields that changed
/// since the client's cached id, and tell it which cached fields went stale.
/// Layout: [u64 state_id][u64 sent_mask][u64 stale_mask]
///         [u64 field_id x kCount] [span per sent field, bit order].
util::ByteWriter delta_state_reply(const StateEpochs& epochs,
                                   util::ByteReader& args,
                                   std::span<const StateFieldWriter> fields) {
  auto have_id = args.get<StateId>();
  auto have_mask = args.get<std::uint64_t>();
  auto want_mask = args.get<std::uint64_t>();
  const std::uint64_t modifiers = want_mask & state_field::fp32_positions;
  want_mask &= ~state_field::fp32_positions;

  std::uint64_t sent_mask = 0;
  std::uint64_t stale_mask = 0;
  for (const StateFieldWriter& field : fields) {
    bool have = (have_mask & field.bit) != 0;
    bool changed = epochs.field_changed_since(field.index, have_id);
    if ((want_mask & field.bit) && (!have || changed)) {
      sent_mask |= field.bit;
    } else if (have && !(want_mask & field.bit) && changed) {
      stale_mask |= field.bit;
    }
  }

  util::ByteWriter result = reply_writer();
  result.put<StateId>(epochs.id());
  result.put<std::uint64_t>(sent_mask);
  result.put<std::uint64_t>(stale_mask);
  for (int i = 0; i < state_field::kCount; ++i) {
    result.put<StateId>(epochs.field_id(i));
  }
  for (const StateFieldWriter& field : fields) {
    if (sent_mask & field.bit) field.write(result, modifiers);
  }
  return result;
}

/// A decoded kick frame: the acceleration to apply and the dt to multiply
/// it by on this side of the wire (Δv_i = accel_i * dt).
struct KickFrame {
  std::span<const Vec3> accel;
  double dt = 1.0;
};

/// Apply a kick frame: either the shipped accel array (cached for later) or
/// a replay of the previous one (flags: kick_flags::repeat) under the dt
/// that always rides along.
KickFrame read_kick(util::ByteReader& args, std::vector<Vec3>& cache) {
  auto flags = args.get<std::uint64_t>();
  double dt = args.get<double>();
  if (flags & kick_flags::repeat) {
    if (cache.empty()) {
      throw CodeError("kick repeat with no cached kick");
    }
    return {cache, dt};
  }
  auto accel = args.get_span<Vec3>();
  cache.assign(accel.begin(), accel.end());
  return {cache, dt};
}

}  // namespace

Dispatcher make_gravity_dispatcher(
    std::shared_ptr<kernels::HermiteIntegrator> integrator, WorkerCost cost) {
  auto epochs = std::make_shared<StateEpochs>();
  auto kick_cache = std::make_shared<std::vector<Vec3>>();
  return [integrator, cost, epochs,
          kick_cache](Fn fn, util::ByteReader& args) -> util::ByteWriter {
    util::ByteWriter result = reply_writer();
    switch (fn) {
      case Fn::grav_set_params: {
        integrator->params().eps2 = args.get<double>();
        integrator->params().eta = args.get<double>();
        return result;
      }
      case Fn::grav_add_particles: {
        auto masses = args.get_span<double>();
        auto positions = args.get_span<Vec3>();
        auto velocities = args.get_span<Vec3>();
        for (std::size_t i = 0; i < masses.size(); ++i) {
          integrator->add_particle(masses[i], positions[i], velocities[i]);
        }
        epochs->bump(state_field::gravity_all);
        return result;
      }
      case Fn::grav_evolve: {
        double t_end = args.get<double>();
        auto before = integrator->pair_evaluations();
        auto steps_before = integrator->substeps();
        integrator->evolve(t_end);
        if (cost.substeps != nullptr) {
          cost.substeps->add(
              static_cast<double>(integrator->substeps() - steps_before));
        }
        charge(cost, static_cast<double>(integrator->pair_evaluations() -
                                         before) *
                         kernels::HermiteIntegrator::kFlopsPerPair);
        epochs->bump(state_field::position | state_field::velocity);
        return result;
      }
      case Fn::grav_get_state: {
        // A sharded worker publishes only its owned slice: the coordinating
        // client owns the merged full-size view and the ghost rows here are
        // its property, not ours to re-export.
        const std::size_t lo = integrator->owned_lo();
        const std::size_t count = integrator->owned_count();
        const StateFieldWriter fields[] = {
            {state_field::mass, 0,
             [&](util::ByteWriter& out, std::uint64_t) {
               out.put_span_view(
                   std::span<const double>(integrator->masses())
                       .subspan(lo, count));
             }},
            {state_field::position, 1,
             [&](util::ByteWriter& out, std::uint64_t modifiers) {
               put_positions(out,
                             std::span<const Vec3>(integrator->positions())
                                 .subspan(lo, count),
                             modifiers);
             }},
            {state_field::velocity, 2,
             [&](util::ByteWriter& out, std::uint64_t) {
               out.put_span_view(
                   std::span<const Vec3>(integrator->velocities())
                       .subspan(lo, count));
             }},
        };
        return delta_state_reply(*epochs, args, fields);
      }
      case Fn::grav_get_energies: {
        // Energies cost one O(N^2) potential pass.
        double n = static_cast<double>(integrator->size());
        charge(cost, n * n * 12.0);
        result.put<double>(integrator->kinetic_energy());
        result.put<double>(integrator->potential_energy());
        return result;
      }
      case Fn::grav_kick_all: {
        // Sharded: the frame carries the owned slice of the full accel
        // array, applied at the owned offset.
        KickFrame kick = read_kick(args, *kick_cache);
        const std::size_t base = integrator->owned_lo();
        for (std::size_t i = 0; i < kick.accel.size(); ++i) {
          integrator->kick(static_cast<int>(base + i),
                           kick.accel[i] * kick.dt);
        }
        epochs->bump(state_field::velocity);
        return result;
      }
      case Fn::grav_set_masses: {
        auto masses = args.get_span<double>();
        for (std::size_t i = 0; i < masses.size(); ++i) {
          integrator->set_mass(static_cast<int>(i), masses[i]);
        }
        epochs->bump(state_field::mass);
        return result;
      }
      case Fn::grav_set_masses_sparse: {
        auto indices = args.get_span<std::int32_t>();
        // An odd index count leaves the next span 4-byte aligned; copy out.
        auto masses = args.get_vector<double>();
        for (std::size_t i = 0; i < indices.size(); ++i) {
          integrator->set_mass(indices[i], masses[i]);
        }
        // Same side effect as the full-array channel even when nothing
        // changed: the next evolve starts from a fresh force evaluation,
        // keeping the delta-compressed form bit-identical to the baseline.
        integrator->invalidate_forces();
        if (!indices.empty()) epochs->bump(state_field::mass);
        return result;
      }
      case Fn::grav_get_time: {
        result.put<double>(integrator->time());
        return result;
      }
      case Fn::grav_get_dynamics: {
        const std::size_t lo = integrator->owned_lo();
        const std::size_t count = integrator->owned_count();
        result.put<double>(integrator->time());
        result.put_span_view(
            std::span<const Vec3>(integrator->accelerations())
                .subspan(lo, count));
        result.put_span_view(
            std::span<const Vec3>(integrator->jerks()).subspan(lo, count));
        return result;
      }
      case Fn::grav_set_dynamics: {
        double time = args.get<double>();
        auto acc = args.get_vector<Vec3>();
        auto jerk = args.get_vector<Vec3>();
        if (integrator->sharded()) {
          // A running shard keeps zero acc/jerk in ghost rows (the force
          // pass never fills them); a restored shard must match, or the
          // ghost drift between updates would differ from the original's
          // and break bit-exact replay.
          const std::size_t lo = integrator->owned_lo();
          const std::size_t hi = integrator->owned_hi();
          for (std::size_t i = 0; i < acc.size(); ++i) {
            if (i < lo || i >= hi) {
              acc[i] = Vec3{};
              jerk[i] = Vec3{};
            }
          }
        }
        integrator->restore_dynamics(std::move(acc), std::move(jerk), time);
        return result;
      }
      case Fn::grav_reset: {
        integrator->clear();
        epochs->bump(state_field::gravity_all);
        return result;
      }
      case Fn::grav_set_shard: {
        auto lo = args.get<std::uint64_t>();
        auto hi = args.get<std::uint64_t>();
        integrator->set_owned_range(static_cast<std::size_t>(lo),
                                    static_cast<std::size_t>(hi));
        return result;
      }
      case Fn::grav_ghost_update: {
        // Ghost refresh: overwrite [base, base+count) positions/velocities
        // with the coordinator's merged view. No epoch bump — ghosts are
        // not this shard's state to publish; set_position/velocity mark the
        // forces dirty so the next evolve sees the new neighbours.
        auto base = args.get<std::uint64_t>();
        auto flags = args.get<std::uint64_t>();
        if (flags & 1) {  // f32-truncated positions (low-bandwidth link)
          auto packed = args.get_vector<float>();
          const std::size_t count = packed.size() / 3;
          if (count % 2 != 0) args.get<std::uint32_t>();  // realign pad
          for (std::size_t i = 0; i < count; ++i) {
            integrator->set_position(
                static_cast<int>(base + i),
                Vec3{static_cast<double>(packed[3 * i]),
                     static_cast<double>(packed[3 * i + 1]),
                     static_cast<double>(packed[3 * i + 2])});
          }
          auto velocities = args.get_vector<Vec3>();
          for (std::size_t i = 0; i < velocities.size(); ++i) {
            integrator->set_velocity(static_cast<int>(base + i),
                                     velocities[i]);
          }
        } else {
          auto positions = args.get_span<Vec3>();
          auto velocities = args.get_span<Vec3>();
          for (std::size_t i = 0; i < positions.size(); ++i) {
            integrator->set_position(static_cast<int>(base + i),
                                     positions[i]);
          }
          for (std::size_t i = 0; i < velocities.size(); ++i) {
            integrator->set_velocity(static_cast<int>(base + i),
                                     velocities[i]);
          }
        }
        return result;
      }
      default:
        throw CodeError("phigrape: unsupported function id " +
                        std::to_string(static_cast<int>(fn)));
    }
  };
}

namespace {

/// Per-direction cache of the coupler worker: the last sources and points a
/// client shipped under a tag (with their content ids), and the accel that
/// was computed from them. An unchanged cross-kick half (same source and
/// point ids) is answered without recomputation or payload bytes.
struct FieldTagCache {
  std::vector<double> source_mass;
  std::vector<Vec3> source_position;
  StateId sources_id = 0;
  std::vector<Vec3> points;
  StateId points_id = 0;
  std::vector<Vec3> accel;
  StateId accel_sources_id = 0;
  StateId accel_points_id = 0;
  bool has_accel = false;
};

}  // namespace

Dispatcher make_field_dispatcher(std::shared_ptr<kernels::TreeField> field,
                                 WorkerCost cost) {
  auto tags = std::make_shared<std::map<std::uint64_t, FieldTagCache>>();
  return [field, cost, tags](Fn fn,
                             util::ByteReader& args) -> util::ByteWriter {
    util::ByteWriter result = reply_writer();
    switch (fn) {
      case Fn::field_set_sources: {
        auto masses = args.get_vector<double>();
        auto positions = read_vec3s(args);
        field->set_sources(masses, positions);
        charge(cost, static_cast<double>(positions.size()) *
                         kernels::BarnesHutTree::kBuildFlopsPerParticle);
        return result;
      }
      case Fn::field_accel_at: {
        auto points = args.get_span<Vec3>();
        auto before = field->interactions();
        auto accel = field->accel_at(points);
        charge(cost, static_cast<double>(field->interactions() - before) *
                         kernels::BarnesHutTree::kFlopsPerInteraction);
        result.put_vector(accel);
        return result;
      }
      case Fn::field_accel_for: {
        auto tag = args.get<std::uint64_t>();
        auto sources_id = args.get<StateId>();
        auto points_id = args.get<StateId>();
        auto flags = args.get<std::uint64_t>();
        FieldTagCache& cache = (*tags)[tag];
        if (flags & accel_flags::has_sources) {
          auto mass = args.get_span<double>();
          auto position = args.get_span<Vec3>();
          cache.source_mass.assign(mass.begin(), mass.end());
          cache.source_position.assign(position.begin(), position.end());
          cache.sources_id = sources_id;
        } else if (cache.sources_id == 0 || cache.sources_id != sources_id) {
          throw CodeError("field: no cached sources for tag " +
                          std::to_string(tag));
        }
        if (flags & accel_flags::has_points) {
          auto points = args.get_span<Vec3>();
          cache.points.assign(points.begin(), points.end());
          cache.points_id = points_id;
        } else if (cache.points_id == 0 || cache.points_id != points_id) {
          throw CodeError("field: no cached points for tag " +
                          std::to_string(tag));
        }
        // Identical inputs (nonzero ids, same as last computation): the
        // accel is byte-identical too — reply "unchanged", no payload, no
        // recompute. This is what empties the first half-kick of every step.
        if (cache.has_accel && sources_id != 0 && points_id != 0 &&
            cache.accel_sources_id == sources_id &&
            cache.accel_points_id == points_id) {
          result.put<std::uint64_t>(accel_reply_flags::unchanged);
          return result;
        }
        field->set_sources(cache.source_mass, cache.source_position);
        charge(cost, static_cast<double>(cache.source_position.size()) *
                         kernels::BarnesHutTree::kBuildFlopsPerParticle);
        auto before = field->interactions();
        cache.accel = field->accel_at(cache.points);
        charge(cost, static_cast<double>(field->interactions() - before) *
                         kernels::BarnesHutTree::kFlopsPerInteraction);
        cache.accel_sources_id = sources_id;
        cache.accel_points_id = points_id;
        cache.has_accel = true;
        result.put<std::uint64_t>(0);
        result.put_span_view(std::span<const Vec3>(cache.accel));
        return result;
      }
      default:
        throw CodeError("field: unsupported function id " +
                        std::to_string(static_cast<int>(fn)));
    }
  };
}

Dispatcher make_se_dispatcher(
    std::shared_ptr<kernels::StellarEvolution> stellar, WorkerCost cost) {
  // Masses as of the last delta exchange: the baseline the changed-star
  // diff is taken against. A restarted worker starts empty, so the first
  // exchange after a fault rollback is always a full one.
  auto reported = std::make_shared<std::vector<double>>();
  return [stellar, cost,
          reported](Fn fn, util::ByteReader& args) -> util::ByteWriter {
    util::ByteWriter result = reply_writer();
    switch (fn) {
      case Fn::se_add_stars: {
        auto masses = args.get_vector<double>();
        for (double mass : masses) stellar->add_star(mass);
        return result;
      }
      case Fn::se_get_mass_updates: {
        auto client_holds = args.get<std::uint64_t>();
        std::vector<double> current = stellar->masses();
        if (client_holds != current.size() ||
            reported->size() != current.size()) {
          result.put<std::uint64_t>(se_mass_flags::full);
          result.put_vector(current);
        } else {
          std::vector<std::int32_t> indices;
          std::vector<double> values;
          for (std::size_t i = 0; i < current.size(); ++i) {
            if (current[i] != (*reported)[i]) {
              indices.push_back(static_cast<std::int32_t>(i));
              values.push_back(current[i]);
            }
          }
          result.put<std::uint64_t>(0);
          result.put_vector(indices);
          result.put_vector(values);
        }
        *reported = std::move(current);
        return result;
      }
      case Fn::se_evolve_to: {
        double age = args.get<double>();
        stellar->evolve_to(age);
        // "nearly trivial" lookups: ~500 flops per star.
        charge(cost, static_cast<double>(stellar->size()) * 500.0);
        return result;
      }
      case Fn::se_get_masses: {
        result.put_vector(stellar->masses());
        return result;
      }
      case Fn::se_get_supernovae: {
        std::vector<std::int32_t> indices(
            stellar->recent_supernovae().begin(),
            stellar->recent_supernovae().end());
        result.put_vector(indices);
        return result;
      }
      case Fn::se_get_mass_loss: {
        result.put<double>(stellar->recent_mass_loss());
        return result;
      }
      case Fn::se_get_luminosities: {
        result.put_vector(stellar->luminosities());
        return result;
      }
      default:
        throw CodeError("sse: unsupported function id " +
                        std::to_string(static_cast<int>(fn)));
    }
  };
}

namespace {

// Shared by the serial and parallel hydro dispatchers: everything except
// evolve, which differs.
util::ByteWriter hydro_common(kernels::SphSystem& sph, Fn fn,
                              util::ByteReader& args, const WorkerCost& cost,
                              StateEpochs& epochs,
                              std::vector<Vec3>& kick_cache) {
  util::ByteWriter result = reply_writer();
  switch (fn) {
    case Fn::hydro_set_params: {
      sph.params().eps2 = args.get<double>();
      sph.params().theta = args.get<double>();
      return result;
    }
    case Fn::hydro_add_gas: {
      auto masses = args.get_span<double>();
      auto positions = args.get_span<Vec3>();
      auto velocities = args.get_span<Vec3>();
      auto energies = args.get_span<double>();
      for (std::size_t i = 0; i < masses.size(); ++i) {
        sph.add_particle(masses[i], positions[i], velocities[i], energies[i]);
      }
      epochs.bump(state_field::hydro_all);
      return result;
    }
    case Fn::hydro_get_state: {
      // internal_energies() materializes (u is stored as entropy inside);
      // keep the copy alive across the reply serialization.
      std::vector<double> energies = sph.internal_energies();
      const StateFieldWriter fields[] = {
          {state_field::mass, 0,
           [&](util::ByteWriter& out, std::uint64_t) {
             out.put_span_view(std::span<const double>(sph.masses()));
           }},
          {state_field::position, 1,
           [&](util::ByteWriter& out, std::uint64_t modifiers) {
             put_positions(out, std::span<const Vec3>(sph.positions()),
                           modifiers);
           }},
          {state_field::velocity, 2,
           [&](util::ByteWriter& out, std::uint64_t) {
             out.put_span_view(std::span<const Vec3>(sph.velocities()));
           }},
          {state_field::internal_energy, 3,
           [&](util::ByteWriter& out, std::uint64_t) {
             out.put_span(std::span<const double>(energies));
           }},
          {state_field::density, 4,
           [&](util::ByteWriter& out, std::uint64_t) {
             out.put_span_view(std::span<const double>(sph.densities()));
           }},
      };
      return delta_state_reply(epochs, args, fields);
    }
    case Fn::hydro_get_energies: {
      double n = static_cast<double>(sph.size());
      charge(cost, n * std::max(1.0, std::log2(std::max(2.0, n))) * 100.0);
      result.put<double>(sph.kinetic_energy());
      result.put<double>(sph.thermal_energy());
      result.put<double>(sph.potential_energy());
      return result;
    }
    case Fn::hydro_kick_all: {
      KickFrame kick = read_kick(args, kick_cache);
      for (std::size_t i = 0; i < kick.accel.size(); ++i) {
        sph.kick(static_cast<int>(i), kick.accel[i] * kick.dt);
      }
      epochs.bump(state_field::velocity);
      return result;
    }
    case Fn::hydro_inject: {
      auto indices = args.get_span<std::int32_t>();
      // An odd index count leaves the next span 4-byte aligned; copy out.
      auto amounts = args.get_vector<double>();
      for (std::size_t i = 0; i < indices.size(); ++i) {
        sph.inject_energy(indices[i], amounts[i]);
      }
      epochs.bump(state_field::internal_energy);
      return result;
    }
    case Fn::hydro_get_time: {
      result.put<double>(sph.time());
      return result;
    }
    case Fn::hydro_set_time: {
      sph.set_time(args.get<double>());
      return result;
    }
    default:
      throw CodeError("gadget: unsupported function id " +
                      std::to_string(static_cast<int>(fn)));
  }
}

constexpr std::uint64_t kHydroEvolveBumps =
    state_field::position | state_field::velocity |
    state_field::internal_energy | state_field::density;

}  // namespace

Dispatcher make_hydro_dispatcher(std::shared_ptr<kernels::SphSystem> sph,
                                 WorkerCost cost) {
  auto epochs = std::make_shared<StateEpochs>();
  auto kick_cache = std::make_shared<std::vector<Vec3>>();
  return [sph, cost, epochs,
          kick_cache](Fn fn, util::ByteReader& args) -> util::ByteWriter {
    if (fn == Fn::hydro_evolve) {
      util::ByteWriter result = reply_writer();
      double t_end = args.get<double>();
      auto ngb_before = sph->neighbour_interactions();
      auto tree_before = sph->tree_interactions();
      auto steps_before = sph->substeps();
      sph->evolve(t_end);
      if (cost.substeps != nullptr) {
        cost.substeps->add(
            static_cast<double>(sph->substeps() - steps_before));
      }
      charge(cost,
             static_cast<double>(sph->neighbour_interactions() - ngb_before) *
                     kernels::SphSystem::kFlopsPerNeighbour +
                 static_cast<double>(sph->tree_interactions() - tree_before) *
                     kernels::SphSystem::kFlopsPerTreeInteraction);
      epochs->bump(kHydroEvolveBumps);
      return result;
    }
    return hydro_common(*sph, fn, args, cost, *epochs, *kick_cache);
  };
}

// ---------------------------------------------------------- parallel SPH

ParallelSph::ParallelSph(sim::Network& net, std::vector<sim::Host*> hosts,
                         int nranks, kernels::SphSystem::Params params,
                         int ncores_per_rank)
    : sph_(params),
      world_(net, std::move(hosts), nranks),
      ncores_per_rank_(ncores_per_rank) {
  // Ranks 1..n-1 are persistent helpers waiting for broadcast commands;
  // rank 0 is driven inline by the worker server process.
  world_.launch_from(1, "gadget", [this](mpi::Comm& comm) { rank_loop(comm); });
}

std::pair<std::size_t, std::size_t> ParallelSph::slice(int rank) const {
  std::size_t n = sph_.size();
  std::size_t per = (n + world_.size() - 1) / world_.size();
  std::size_t lo = std::min(n, per * static_cast<std::size_t>(rank));
  std::size_t hi = std::min(n, lo + per);
  return {lo, hi};
}

void ParallelSph::rank_loop(mpi::Comm& comm) {
  while (true) {
    auto command = comm.bcast({}, 0);
    util::ByteReader reader(std::move(command));
    auto opcode = reader.get<std::uint8_t>();
    if (opcode == 0) return;  // stop
    double t_end = reader.get<double>();
    parallel_steps(comm, t_end);
  }
}

void ParallelSph::evolve(double t_end) {
  util::ByteWriter command;
  command.put<std::uint8_t>(1);
  command.put<double>(t_end);
  world_.comm(0).bcast(std::move(command).take(), 0);
  parallel_steps(world_.comm(0), t_end);
  sph_.advance_time(t_end - sph_.time());
}

void ParallelSph::stop() {
  if (stopped_) return;
  stopped_ = true;
  util::ByteWriter command;
  command.put<std::uint8_t>(0);
  world_.comm(0).bcast(std::move(command).take(), 0);
}

void ParallelSph::parallel_steps(mpi::Comm& comm, double t_end) {
  // Replicated-data parallel SPH: every rank sees the full particle set,
  // computes its slice, and slice results travel over the (simulated)
  // interconnect. Identical structure to small-scale Gadget runs.
  sim::Host& my_host = comm.host();
  // Rank 0 doubles as the meter: its flops/seconds are representative of
  // the elapsed compute (ranks run the same-sized slices in lockstep).
  auto charge_rank = [&](double flops) {
    if (comm.rank() == 0 && m_flops_ != nullptr) {
      m_flops_->add(flops);
      m_compute_s_->add(my_host.compute_time(flops, sim::DeviceKind::cpu,
                                             ncores_per_rank_));
    }
    my_host.compute(flops, sim::DeviceKind::cpu, ncores_per_rank_);
  };
  auto flatten = [](std::span<const Vec3> values, std::size_t lo,
                    std::size_t hi) {
    std::vector<double> flat;
    flat.reserve((hi - lo) * 3);
    for (std::size_t i = lo; i < hi; ++i) {
      flat.push_back(values[i].x);
      flat.push_back(values[i].y);
      flat.push_back(values[i].z);
    }
    return flat;
  };
  double t = sph_.time();
  while (t < t_end - 1e-15) {
    auto [lo, hi] = slice(comm.rank());
    // Tree + grid build: rank 0 builds the real structures (shared memory);
    // every rank pays the build cost, as in a replicated tree code.
    if (comm.rank() == 0) sph_.prepare_step();
    charge_rank(static_cast<double>(sph_.size()) *
                kernels::BarnesHutTree::kBuildFlopsPerParticle);
    comm.barrier();

    auto ngb0 = sph_.neighbour_interactions();
    sph_.compute_density(lo, hi);
    charge_rank(static_cast<double>(sph_.neighbour_interactions() - ngb0) *
                kernels::SphSystem::kFlopsPerNeighbour);
    // Exchange the density/smoothing slices (real values, real bytes).
    std::vector<double> rho_slice(sph_.densities().begin() + lo,
                                  sph_.densities().begin() + hi);
    comm.allgatherv(rho_slice);

    auto ngb1 = sph_.neighbour_interactions();
    auto tree1 = sph_.tree_interactions();
    sph_.compute_forces(lo, hi);
    charge_rank(static_cast<double>(sph_.neighbour_interactions() - ngb1) *
                    kernels::SphSystem::kFlopsPerNeighbour +
                static_cast<double>(sph_.tree_interactions() - tree1) *
                    kernels::SphSystem::kFlopsPerTreeInteraction);

    double dt = comm.allreduce_min(sph_.timestep(lo, hi));
    dt = std::min(dt, t_end - t);
    sph_.integrate(lo, hi, dt);
    comm.allgatherv(flatten(sph_.positions(), lo, hi));
    comm.allgatherv(flatten(sph_.velocities(), lo, hi));
    t += dt;
    if (comm.rank() == 0) sph_.advance_time(dt);
  }
}

Dispatcher make_parallel_hydro_dispatcher(std::shared_ptr<ParallelSph> sph,
                                          WorkerCost cost) {
  auto epochs = std::make_shared<StateEpochs>();
  auto kick_cache = std::make_shared<std::vector<Vec3>>();
  return [sph, cost, epochs,
          kick_cache](Fn fn, util::ByteReader& args) -> util::ByteWriter {
    if (fn == Fn::hydro_evolve) {
      util::ByteWriter result = reply_writer();
      double t_end = args.get<double>();
      auto steps_before = sph->sph().substeps();
      sph->evolve(t_end);  // cost charged per rank inside
      if (cost.substeps != nullptr) {
        cost.substeps->add(
            static_cast<double>(sph->sph().substeps() - steps_before));
      }
      epochs->bump(kHydroEvolveBumps);
      return result;
    }
    return hydro_common(sph->sph(), fn, args, cost, *epochs, *kick_cache);
  };
}

// -------------------------------------------------------------- factory

void run_worker(std::unique_ptr<MessagePipe> pipe, const WorkerSpec& spec,
                std::vector<sim::Host*> hosts, sim::Network& net) {
  sim::Host* primary = hosts.front();
  WorkerCost cost;
  cost.host = primary;
  cost.ncores = spec.ncores;
  cost.device = spec.needs_gpu() ? sim::DeviceKind::gpu : sim::DeviceKind::cpu;
  const std::string meter = spec.meter.empty() ? spec.code : spec.meter;
  cost.flops = &obs::metrics::counter("worker." + meter + ".flops");
  cost.compute_s = &obs::metrics::counter("worker." + meter + ".compute_s");
  cost.substeps = &obs::metrics::counter("worker." + meter + ".substeps");

  // All kernels share the process-wide thread pool (JUNGLE_THREADS lanes):
  // the simulated hosts model *virtual* cost, while the pool makes the real
  // numerics run on every available core.
  util::ThreadPool& pool = util::ThreadPool::global();

  Dispatcher dispatcher;
  std::shared_ptr<ParallelSph> parallel;  // kept alive for stop()
  if (spec.code == "phigrape" || spec.code == "phigrape-gpu") {
    kernels::HermiteIntegrator::Params params;
    params.eps2 = spec.eps2;
    params.eta = spec.eta;
    auto integrator = std::make_shared<kernels::HermiteIntegrator>(params);
    integrator->set_thread_pool(&pool);
    dispatcher = make_gravity_dispatcher(std::move(integrator), cost);
  } else if (spec.code == "octgrav" || spec.code == "fi") {
    auto field = std::make_shared<kernels::TreeField>(spec.theta, spec.eps2);
    field->set_thread_pool(&pool);
    dispatcher = make_field_dispatcher(std::move(field), cost);
  } else if (spec.code == "sse") {
    dispatcher =
        make_se_dispatcher(std::make_shared<kernels::StellarEvolution>(), cost);
  } else if (spec.code == "gadget") {
    kernels::SphSystem::Params params;
    params.eps2 = spec.eps2;
    params.theta = spec.theta;
    if (spec.nranks <= 1) {
      auto sph = std::make_shared<kernels::SphSystem>(params);
      sph->set_thread_pool(&pool);
      dispatcher = make_hydro_dispatcher(std::move(sph), cost);
    } else {
      parallel = std::make_shared<ParallelSph>(net, hosts, spec.nranks,
                                               params, spec.ncores);
      parallel->set_meters(cost.flops, cost.compute_s);
      parallel->sph().set_thread_pool(&pool);
      dispatcher = make_parallel_hydro_dispatcher(parallel, cost);
    }
  } else {
    throw CodeError("unknown worker code '" + spec.code + "'");
  }

  log::info("amuse") << "worker " << spec.code << " serving on "
                     << primary->name() << " (" << pool.lanes()
                     << " kernel lanes)";
  WorkerServer server(std::move(pipe), std::move(dispatcher),
                      [&net] { return net.simulation().now(); });
  server.run();
  if (parallel) {
    parallel->stop();
    // The rank processes reference MpiWorld state; let them drain the stop
    // broadcast before this frame (and ParallelSph with it) unwinds.
    parallel->world().wait();
  }
}

}  // namespace jungle::amuse
