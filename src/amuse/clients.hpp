#pragma once

#include <memory>
#include <span>
#include <vector>

#include "amuse/rpc.hpp"
#include "kernels/vec3.hpp"

namespace jungle::amuse {

using kernels::Vec3;

/// Typed client-side proxies over the RPC protocol — what an AMUSE script
/// holds instead of raw channels. All bulk state moves as flat arrays (the
/// real AMUSE does the same for performance).

struct GravityState {
  std::vector<double> mass;
  std::vector<Vec3> position;
  std::vector<Vec3> velocity;
};

struct HydroState {
  std::vector<double> mass;
  std::vector<Vec3> position;
  std::vector<Vec3> velocity;
  std::vector<double> internal_energy;
  std::vector<double> density;
};

/// GravitationalDynamics interface (phiGRAPE worker).
class GravityClient {
 public:
  explicit GravityClient(std::unique_ptr<RpcClient> rpc)
      : rpc_(std::move(rpc)) {}

  void set_params(double eps2, double eta);
  void add_particles(std::span<const double> masses,
                     std::span<const Vec3> positions,
                     std::span<const Vec3> velocities);
  void evolve(double t_end) { evolve_async(t_end).get(); }
  Future evolve_async(double t_end);
  GravityState get_state();
  /// (kinetic, potential) in N-body units.
  std::pair<double, double> energies();
  void kick(std::span<const Vec3> delta_v);
  void set_masses(std::span<const double> masses);
  double model_time();

  RpcClient& rpc() noexcept { return *rpc_; }
  void close() { rpc_->close(); }

 private:
  std::unique_ptr<RpcClient> rpc_;
};

/// GravityField interface (Octgrav / Fi worker) — the coupling kernel.
class FieldClient {
 public:
  explicit FieldClient(std::unique_ptr<RpcClient> rpc) : rpc_(std::move(rpc)) {}

  void set_sources(std::span<const double> masses,
                   std::span<const Vec3> positions);
  /// Client-side copy of the last sources sent — what a checkpoint of this
  /// otherwise stateless-per-kick worker consists of.
  const std::vector<double>& last_source_mass() const noexcept {
    return last_mass_;
  }
  const std::vector<Vec3>& last_source_position() const noexcept {
    return last_position_;
  }
  std::vector<Vec3> accel_at(std::span<const Vec3> points) {
    return decode_accel(accel_at_async(points).get());
  }
  Future accel_at_async(std::span<const Vec3> points);
  static std::vector<Vec3> decode_accel(util::ByteReader reader);

  RpcClient& rpc() noexcept { return *rpc_; }
  void close() { rpc_->close(); }

 private:
  std::unique_ptr<RpcClient> rpc_;
  std::vector<double> last_mass_;
  std::vector<Vec3> last_position_;
};

/// Hydrodynamics interface (Gadget worker).
class HydroClient {
 public:
  explicit HydroClient(std::unique_ptr<RpcClient> rpc) : rpc_(std::move(rpc)) {}

  void set_params(double eps2, double theta);
  void add_gas(std::span<const double> masses,
               std::span<const Vec3> positions,
               std::span<const Vec3> velocities,
               std::span<const double> internal_energies);
  void evolve(double t_end) { evolve_async(t_end).get(); }
  Future evolve_async(double t_end);
  HydroState get_state();
  /// (kinetic, thermal, potential) in N-body units.
  std::tuple<double, double, double> energies();
  void kick(std::span<const Vec3> delta_v);
  void inject(std::span<const std::int32_t> indices,
              std::span<const double> delta_u);
  double model_time();

  RpcClient& rpc() noexcept { return *rpc_; }
  void close() { rpc_->close(); }

 private:
  std::unique_ptr<RpcClient> rpc_;
};

/// StellarEvolution interface (SSE worker).
class StellarClient {
 public:
  explicit StellarClient(std::unique_ptr<RpcClient> rpc)
      : rpc_(std::move(rpc)) {}

  void add_stars(std::span<const double> zams_masses);
  void evolve_to(double age_myr);
  std::vector<double> masses();
  std::vector<double> luminosities();
  /// Stars that exploded during the last evolve_to.
  std::vector<std::int32_t> supernovae();
  double mass_loss();

  RpcClient& rpc() noexcept { return *rpc_; }
  void close() { rpc_->close(); }

 private:
  std::unique_ptr<RpcClient> rpc_;
};

}  // namespace jungle::amuse
