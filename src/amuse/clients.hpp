#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "amuse/delta.hpp"
#include "amuse/rpc.hpp"
#include "kernels/vec3.hpp"

namespace jungle::amuse {

using kernels::Vec3;

/// Typed client-side proxies over the RPC protocol — what an AMUSE script
/// holds instead of raw channels. All bulk state moves as flat arrays (the
/// real AMUSE does the same for performance).
///
/// The gravity and hydro proxies keep an epoch-tagged *state cache*: a
/// get_state tells the worker what the client already holds, and only the
/// fields that changed since travel back (delta exchange). The field proxy
/// keeps per-direction source/point/accel caches mirroring the coupler
/// worker's. `set_delta_exchange(false)` restores the pre-delta full-fetch
/// wire behaviour (the synchronous baseline the benches compare against).

struct GravityState {
  std::vector<double> mass;
  std::vector<Vec3> position;
  std::vector<Vec3> velocity;
};

struct HydroState {
  std::vector<double> mass;
  std::vector<Vec3> position;
  std::vector<Vec3> velocity;
  std::vector<double> internal_energy;
  std::vector<double> density;
};

/// Client half of the delta state exchange, shared by the gravity and hydro
/// proxies: what we hold, at which content id, and the per-field change ids
/// the last reply reported (these feed the coupler's source/point tags).
/// Cache invalidation is by construction, not by reset: the fault path
/// builds fresh clients (empty caches) and restarted workers mint fresh
/// state-id instances, so stale entries can never match.
struct DeltaCacheInfo {
  StateId id = 0;
  std::uint64_t mask = 0;
  std::array<StateId, state_field::kCount> field_ids{};
  bool delta_enabled = true;
};

/// Role-generic client surface of an *evolving* model (a system the Bridge
/// can couple): concurrent evolve, pipelined delta state exchange of the
/// coupling fields (mass + position), accel+dt kicks, and a model clock.
/// GravityClient and HydroClient implement it; the generalized Bridge and
/// the Experiment runner hold systems through this interface instead of
/// being hard-wired to exactly one gravity and one hydro proxy.
class DynamicsClient {
 public:
  virtual ~DynamicsClient() = default;

  virtual Future evolve_async(double t_end) = 0;
  void evolve(double t_end) { evolve_async(t_end).get(); }

  /// Pipelined fetch: issue now, merge the delta into the cache later.
  virtual Future request_state(std::uint64_t want_mask) = 0;
  virtual void merge_state(Future& reply, std::uint64_t want_mask) = 0;
  /// Every state field this model exchanges (the full-fetch mask).
  virtual std::uint64_t full_mask() const = 0;

  /// Views over the cached coupling fields (valid until the next merge).
  virtual std::span<const double> mass() const = 0;
  virtual std::span<const Vec3> position() const = 0;

  /// Content ids for the coupler's caches (0 until the field was fetched).
  virtual StateId coupling_sources_id() const = 0;
  virtual StateId position_id() const = 0;

  /// Apply Δv_i = accel_i * dt, multiplied on the worker. An unchanged
  /// accel travels as a 16-byte repeat frame regardless of dt.
  virtual Future kick_async(std::span<const Vec3> accel, double dt) = 0;
  void kick(std::span<const Vec3> delta_v) { kick_async(delta_v, 1.0).get(); }

  virtual double model_time() = 0;
  /// Opt-in wire truncation: request position arrays as f32 (half the bytes
  /// of the dominant coupling field) — set by the runner when the model sits
  /// across a link flagged `fp_truncate` in the topology. Default off; the
  /// cached state is still held as f64, only the wire format narrows.
  virtual void set_fp32_positions(bool enabled) = 0;
  virtual void set_delta_exchange(bool enabled) = 0;
  /// Forget everything the delta protocol believes the *worker* holds —
  /// called after a supervised in-place worker restart (cause=
  /// process_crash), where the client object survives but the worker came
  /// back blank. The state cache itself is kept: it is what gets restored
  /// into the fresh worker. (The state-id instance nonce already makes
  /// stale ids unmatchable; this clears the client half explicitly.)
  virtual void reset_delta_caches() = 0;
  virtual RpcClient& rpc() = 0;
  /// The RPC whose death/liveness the fault machinery should watch. For a
  /// plain client this is rpc(); a sharded facade reports the first dead
  /// shard's RPC so death_cause/try_revive see the actual casualty.
  virtual RpcClient& fault_rpc() { return rpc(); }
  virtual void close() = 0;
};

/// GravitationalDynamics interface (phiGRAPE worker). The bulk operations
/// are virtual so ShardedGravityClient can present K shard workers as one
/// logical model behind the same typed surface.
class GravityClient : public DynamicsClient {
 public:
  explicit GravityClient(std::unique_ptr<RpcClient> rpc)
      : rpc_(std::move(rpc)) {}

  virtual void set_params(double eps2, double eta);
  virtual void add_particles(std::span<const double> masses,
                             std::span<const Vec3> positions,
                             std::span<const Vec3> velocities);
  Future evolve_async(double t_end) override;

  /// Sync full-state fetch (delta-aware: only changed fields travel).
  GravityState get_state();
  Future request_state(std::uint64_t want_mask) override;
  Future request_state() { return request_state(state_field::gravity_all); }
  virtual const GravityState& finish_state(Future& reply,
                                           std::uint64_t want_mask);
  void merge_state(Future& reply, std::uint64_t want_mask) override {
    finish_state(reply, want_mask);
  }
  std::uint64_t full_mask() const override { return state_field::gravity_all; }
  const GravityState& cached_state() const noexcept { return cache_; }
  std::span<const double> mass() const override { return cache_.mass; }
  std::span<const Vec3> position() const override { return cache_.position; }

  StateId coupling_sources_id() const override {
    return combine_state_ids(info_.field_ids[0], info_.field_ids[1]);
  }
  StateId position_id() const override { return info_.field_ids[1]; }

  /// (kinetic, potential) in N-body units.
  virtual std::pair<double, double> energies();
  using DynamicsClient::kick;
  Future kick_async(std::span<const Vec3> accel, double dt) override;
  Future kick_async(std::span<const Vec3> delta_v) {
    return kick_async(delta_v, 1.0);
  }
  virtual void set_masses(std::span<const double> masses);
  /// Delta-compressed mass channel: update only the listed particles.
  virtual void set_masses_sparse(std::span<const std::int32_t> indices,
                                 std::span<const double> masses);
  double model_time() override;
  /// Fetch the integrator's dynamic state — corrector-stage forces plus the
  /// absolute model time — for checkpointing.
  virtual void get_dynamics(std::vector<Vec3>& acc, std::vector<Vec3>& jerk,
                            double& model_time);
  /// Install checkpointed dynamics into a fresh worker: the replayed step
  /// then resumes the checkpointed integrator's exact substep sequence.
  virtual void set_dynamics(std::span<const Vec3> acc,
                            std::span<const Vec3> jerk, double model_time);

  void set_fp32_positions(bool enabled) override {
    fp32_positions_ = enabled;
  }
  bool fp32_positions() const noexcept { return fp32_positions_; }

  void set_delta_exchange(bool enabled) override {
    info_.delta_enabled = enabled;
    kick_primed_ = false;
  }

  void reset_delta_caches() override {
    bool delta = info_.delta_enabled;
    info_ = DeltaCacheInfo{};
    info_.delta_enabled = delta;
    last_kick_.clear();
    kick_primed_ = false;
  }

  RpcClient& rpc() noexcept override { return *rpc_; }
  void close() override { rpc_->close(); }

  // -- shard-worker primitives (used by ShardedGravityClient) --
  /// Drop the worker's particles/clock/owned range (params survive).
  void reset_model();
  /// Assign the worker its owned row range of the Morton-ordered arrays.
  void set_shard(std::size_t lo, std::size_t hi);
  /// Push fresh ghost rows [base, base+positions.size()): the other shards'
  /// positions/velocities from the coordinator's merged view. `fp32`
  /// truncates positions to f32 on the wire.
  Future ghost_update_async(std::size_t base, std::span<const Vec3> positions,
                            std::span<const Vec3> velocities, bool fp32);

 protected:
  /// For facades (ShardedGravityClient) that have no single worker RPC of
  /// their own; every member that touches rpc_ is virtual in that case.
  GravityClient() = default;

  std::unique_ptr<RpcClient> rpc_;
  GravityState cache_;
  DeltaCacheInfo info_;
  std::vector<Vec3> last_kick_;
  bool kick_primed_ = false;
  bool fp32_positions_ = false;
};

/// GravityField interface (Octgrav / Fi worker) — the coupling kernel.
class FieldClient {
 public:
  explicit FieldClient(std::unique_ptr<RpcClient> rpc) : rpc_(std::move(rpc)) {}

  void set_sources(std::span<const double> masses,
                   std::span<const Vec3> positions);
  /// Client-side copy of the last sources sent — what a checkpoint of this
  /// otherwise stateless-per-kick worker consists of.
  const std::vector<double>& last_source_mass() const noexcept {
    return last_mass_;
  }
  const std::vector<Vec3>& last_source_position() const noexcept {
    return last_position_;
  }
  std::vector<Vec3> accel_at(std::span<const Vec3> points) {
    return decode_accel(accel_at_async(points).get());
  }
  Future accel_at_async(std::span<const Vec3> points);
  static std::vector<Vec3> decode_accel(util::ByteReader reader);

  /// One-shot epoch-tagged cross-gravity query (the pipelined data path):
  /// sources and points are only uploaded when their content id differs
  /// from what the worker already caches under `tag`, and a reply of
  /// "unchanged" re-uses the locally cached accel of the same inputs.
  Future accel_for_async(FieldTag tag, StateId sources_id,
                         std::span<const double> source_mass,
                         std::span<const Vec3> source_position,
                         StateId points_id, std::span<const Vec3> points);
  const std::vector<Vec3>& finish_accel(FieldTag tag, Future& reply);

  void set_delta_exchange(bool enabled) { delta_enabled_ = enabled; }

  /// Forget what the (restarted, blank) worker caches per tag; the last
  /// sources sent are kept — they are the checkpoint to restore from.
  void reset_delta_caches() { tags_.clear(); }

  RpcClient& rpc() noexcept { return *rpc_; }
  void close() { rpc_->close(); }

 private:
  struct TagRecord {
    StateId sources_id = 0;
    StateId points_id = 0;
    std::vector<Vec3> accel;
    bool has_accel = false;
  };

  std::unique_ptr<RpcClient> rpc_;
  std::vector<double> last_mass_;
  std::vector<Vec3> last_position_;
  std::map<std::uint64_t, TagRecord> tags_;
  bool delta_enabled_ = true;
};

/// Hydrodynamics interface (Gadget worker).
class HydroClient : public DynamicsClient {
 public:
  explicit HydroClient(std::unique_ptr<RpcClient> rpc) : rpc_(std::move(rpc)) {}

  void set_params(double eps2, double theta);
  void add_gas(std::span<const double> masses,
               std::span<const Vec3> positions,
               std::span<const Vec3> velocities,
               std::span<const double> internal_energies);
  Future evolve_async(double t_end) override;

  HydroState get_state();
  Future request_state(std::uint64_t want_mask) override;
  Future request_state() { return request_state(state_field::hydro_all); }
  const HydroState& finish_state(Future& reply, std::uint64_t want_mask);
  void merge_state(Future& reply, std::uint64_t want_mask) override {
    finish_state(reply, want_mask);
  }
  std::uint64_t full_mask() const override { return state_field::hydro_all; }
  const HydroState& cached_state() const noexcept { return cache_; }
  std::span<const double> mass() const override { return cache_.mass; }
  std::span<const Vec3> position() const override { return cache_.position; }

  StateId coupling_sources_id() const override {
    return combine_state_ids(info_.field_ids[0], info_.field_ids[1]);
  }
  StateId position_id() const override { return info_.field_ids[1]; }

  /// (kinetic, thermal, potential) in N-body units.
  std::tuple<double, double, double> energies();
  using DynamicsClient::kick;
  Future kick_async(std::span<const Vec3> accel, double dt) override;
  Future kick_async(std::span<const Vec3> delta_v) {
    return kick_async(delta_v, 1.0);
  }
  void inject(std::span<const std::int32_t> indices,
              std::span<const double> delta_u);
  double model_time() override;
  /// Restore the absolute model clock into a fresh worker (checkpoint
  /// restart) so it accepts the same absolute evolve targets as the one it
  /// replaces.
  void set_time(double model_time);

  void set_fp32_positions(bool enabled) override {
    fp32_positions_ = enabled;
  }

  void set_delta_exchange(bool enabled) override {
    info_.delta_enabled = enabled;
    kick_primed_ = false;
  }

  void reset_delta_caches() override {
    bool delta = info_.delta_enabled;
    info_ = DeltaCacheInfo{};
    info_.delta_enabled = delta;
    last_kick_.clear();
    kick_primed_ = false;
  }

  RpcClient& rpc() noexcept override { return *rpc_; }
  void close() override { rpc_->close(); }

 private:
  std::unique_ptr<RpcClient> rpc_;
  HydroState cache_;
  DeltaCacheInfo info_;
  std::vector<Vec3> last_kick_;
  bool kick_primed_ = false;
  bool fp32_positions_ = false;
};

/// StellarEvolution interface (SSE worker). The mass channel is
/// delta-compressed: masses() normally fetches only the stars whose mass
/// changed since the previous exchange (most stars sit quietly on the main
/// sequence between SE steps) and merges them into a client-side cache.
class StellarClient {
 public:
  explicit StellarClient(std::unique_ptr<RpcClient> rpc)
      : rpc_(std::move(rpc)) {}

  void add_stars(std::span<const double> zams_masses);
  void evolve_to(double age_myr);
  const std::vector<double>& masses();
  std::vector<double> luminosities();
  /// Stars that exploded during the last evolve_to.
  std::vector<std::int32_t> supernovae();
  double mass_loss();

  /// `false` restores the pre-delta full-array wire behaviour (the
  /// synchronous baseline).
  void set_delta_exchange(bool enabled) { delta_enabled_ = enabled; }

  /// Drop the client-side mass cache so the next masses() exchange fetches
  /// the full array from a restarted (blank) worker.
  void reset_delta_caches() { mass_cache_.clear(); }

  RpcClient& rpc() noexcept { return *rpc_; }
  void close() { rpc_->close(); }

 private:
  std::unique_ptr<RpcClient> rpc_;
  std::vector<double> mass_cache_;
  bool delta_enabled_ = true;
};

}  // namespace jungle::amuse
